// Package repro is the public API of the heterogeneous process migration
// library, a reproduction of "Data Collection and Restoration for
// Heterogeneous Process Migration" (Chanchio and Sun, IPPS 2001).
//
// The library migrates running processes written in MigC — a migration-safe
// C subset — between simulated machines with different architectures
// (endianness, word sizes, data layout). A program is compiled into
// migratable format (poll-points plus live-variable sets), run on a virtual
// machine over a simulated process address space, and can be checkpointed
// at any poll-point into a machine-independent stream that any other
// machine restores and resumes, pointers and all.
//
// # Quick start
//
//	prog, err := repro.Compile(src, repro.PollAtLoops)
//	res, err := prog.Migrate(repro.DEC5000, repro.SPARC20, nil)
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package repro

import (
	"io"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/sched"
	"repro/internal/vm"
)

// Machine describes a computation platform: byte order, word width, type
// sizes and alignments. Programs migrate between machines with different
// descriptors.
type Machine = arch.Machine

// Pre-defined machines, including the platforms of the paper's evaluation.
var (
	// DEC5000 is the DEC 5000/120 running Ultrix: little-endian ILP32.
	DEC5000 = arch.DEC5000
	// SPARC20 is the SPARCstation 20 running Solaris: big-endian ILP32.
	SPARC20 = arch.SPARC20
	// Ultra5 is the Sun Ultra 5 running Solaris (32-bit ABI).
	Ultra5 = arch.Ultra5
	// I386 is a 32-bit x86 Linux machine (4-byte double alignment).
	I386 = arch.I386
	// AMD64 is a 64-bit x86 Linux machine: little-endian LP64.
	AMD64 = arch.AMD64
	// SPARCV9 is a 64-bit UltraSPARC running Solaris: big-endian LP64.
	SPARCV9 = arch.SPARCV9
	// Alpha is a DEC Alpha running OSF/1: little-endian LP64.
	Alpha = arch.Alpha
)

// Machines returns all registered machine descriptors.
func Machines() []*Machine { return arch.Machines() }

// MachineByName returns the registered machine with the given name, or nil.
func MachineByName(name string) *Machine { return arch.Lookup(name) }

// PollPolicy controls where the pre-compiler inserts poll-points; the
// explicit migrate_here(); intrinsic is always honored.
type PollPolicy = minic.PollPolicy

// Common policies.
var (
	// PollAtLoops inserts a poll-point at the top of every loop body,
	// the paper's recommended placement.
	PollAtLoops = minic.DefaultPolicy
	// PollExplicitOnly inserts no automatic poll-points; only
	// migrate_here(); intrinsics remain.
	PollExplicitOnly = minic.PollPolicy{}
)

// Program is a compiled migratable program, pre-distributable to any
// machine.
type Program struct {
	engine *core.Engine
}

// Compile transforms MigC source into migratable format: it parses and
// type-checks the program, rejects migration-unsafe C features, inserts
// poll-points per the policy, and computes the live-variable set of every
// migration site.
func Compile(source string, policy PollPolicy) (*Program, error) {
	e, err := core.NewEngine(source, policy)
	if err != nil {
		return nil, err
	}
	return &Program{engine: e}, nil
}

// Engine exposes the underlying migration engine for advanced use
// (envelopes, transports).
func (p *Program) Engine() *core.Engine { return p.engine }

// Process is a running (or restorable) instance of a program on one
// machine.
type Process = vm.Process

// Options configures a process instance.
type Options struct {
	// Stdout receives printf output (default: discard).
	Stdout io.Writer
	// MaxSteps bounds execution (0 = the library default of 4e9).
	MaxSteps int64
	// Instrument enables the fine-grained cost decomposition in the
	// capture/restore statistics.
	Instrument bool
	// Trace receives one line per executed statement and per
	// call/return/migration event — a debugging aid for comparing a
	// migrated run against an unmigrated one.
	Trace io.Writer
}

func (o *Options) apply(p *vm.Process) {
	if o == nil {
		p.MaxSteps = 4_000_000_000
		return
	}
	if o.Stdout != nil {
		p.Stdout = o.Stdout
	}
	if o.MaxSteps > 0 {
		p.MaxSteps = o.MaxSteps
	} else {
		p.MaxSteps = 4_000_000_000
	}
	p.Instrument = o.Instrument
	if o.Trace != nil {
		p.TraceTo(o.Trace)
	}
}

// Result is the outcome of running a program.
type Result struct {
	// ExitCode is main's return value.
	ExitCode int
	// Migrated reports whether the run included a migration.
	Migrated bool
	// Timing decomposes the migration cost (Collect/Tx/Restore), when a
	// migration happened.
	Timing core.Timing
	// Process is the final process image, inspectable by tests and
	// tools.
	Process *vm.Process
}

// Run executes the program to completion on machine m without migrating.
func (p *Program) Run(m *Machine, opts *Options) (*Result, error) {
	proc, err := p.engine.NewProcess(m)
	if err != nil {
		return nil, err
	}
	opts.apply(proc)
	res, err := proc.Run()
	if err != nil {
		return nil, err
	}
	return &Result{ExitCode: res.ExitCode, Process: proc}, nil
}

// Migrate runs the program on src, migrates it to dst at the first
// poll-point, and completes it there. The result records the collect,
// transfer, and restore times.
func (p *Program) Migrate(src, dst *Machine, opts *Options) (*Result, error) {
	res, err := p.engine.RunWithMigration(src, dst, func(proc *vm.Process) {
		opts.apply(proc)
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ExitCode: res.ExitCode,
		Migrated: res.Migrated,
		Timing:   res.Timing,
		Process:  res.Process,
	}, nil
}

// Timing re-exports the migration time decomposition.
type Timing = core.Timing

// Cluster is the distributed environment: named nodes hosting processes,
// with a scheduler that serves migration requests at poll-points.
type Cluster = sched.Cluster

// Handle tracks one process managed by a cluster's scheduler.
type Handle = sched.Handle

// NewCluster builds a distributed environment running the program.
func (p *Program) NewCluster(opts *Options) *Cluster {
	c := sched.NewCluster(p.engine)
	c.Configure = func(proc *vm.Process) { opts.apply(proc) }
	return c
}
