// MSR graph visualization: runs the example program of the paper's
// Figure 1 up to the migration point in foo (fifth iteration), builds the
// explicit Memory Space Representation graph of the process snapshot —
// vertices are memory blocks, edges are pointer references — prints it,
// optionally as Graphviz DOT, and then completes the migration to a
// machine of opposite endianness, showing the restored graph is
// isomorphic.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/msr"
	"repro/internal/vm"
)

// figure1 is the example program of the paper's Figure 1(a), with the
// poll-point placed right before the allocation at line 20, as in the
// paper's Section 3.2 walkthrough.
const figure1 = `
	struct node {
		float data;
		struct node *link;
	};
	struct node *first, *last;

	void foo(struct node **p, int **q) {
		migrate_here();
		*p = (struct node *) malloc(sizeof(struct node));
		(*p)->data = 10.0;
		(**q)++;
	}

	int main() {
		int i;
		int a, *b;
		struct node *parray[10];
		a = 1;
		b = &a;
		for (i = 0; i < 10; i++) {
			foo(parray + i, &b);
			first = parray[0];
			last = parray[i];
			first->link = last;
			if (i > 0) parray[i]->link = parray[i-1];
		}
		return 0;
	}
`

func main() {
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the listing")
	flag.Parse()

	e, err := core.NewEngine(figure1, minic.PollPolicy{})
	if err != nil {
		log.Fatal(err)
	}

	// Run until the fifth poll (the snapshot of Figure 1(b): the for
	// loop has executed four times, four heap nodes exist).
	p, err := e.NewProcess(arch.DEC5000)
	if err != nil {
		log.Fatal(err)
	}
	p.MaxSteps = 1_000_000
	polls := 0
	p.PollHook = func(*vm.Process, *minic.Site) bool {
		polls++
		return polls == 5
	}
	res, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Migrated {
		log.Fatal("program finished before the snapshot point")
	}

	g, err := msr.BuildGraph(p.Space, p.Table, e.Prog.TI)
	if err != nil {
		log.Fatal(err)
	}
	if *dot {
		fmt.Print(g.Dot())
	} else {
		st := g.Stats(p.Mach)
		fmt.Printf("MSR snapshot on %s before the 5th allocation:\n", p.Mach.Name)
		fmt.Printf("  %d memory blocks (%v per segment), %d pointer edges, %d data bytes\n",
			st.Blocks, st.PerSegment, st.Edges, st.Bytes)
		fmt.Println()
		for _, v := range g.Vertices {
			name := v.Name
			if name == "" {
				name = "(heap)"
			}
			fmt.Printf("  %-12s %-10s %s x%d\n", v.ID, name, v.Type, v.Count)
		}
		fmt.Println()
		for _, edge := range g.Edges {
			fmt.Printf("  %s[%d] -> %s[%d]\n", edge.From, edge.FromOrdinal, edge.To, edge.ToOrdinal)
		}
	}

	// Complete the migration to the big-endian SPARC 20 and compare.
	q, err := e.Restore(arch.SPARC20, e.Seal(res.State, p.Mach))
	if err != nil {
		log.Fatal(err)
	}
	g2, err := msr.BuildGraph(q.Space, q.Table, e.Prog.TI)
	if err != nil {
		log.Fatal(err)
	}
	if g.Canonical() == g2.Canonical() {
		fmt.Printf("\nrestored on %s: MSR graph is isomorphic to the source snapshot\n", q.Mach.Name)
	} else {
		log.Fatal("restored graph differs from the source snapshot")
	}
	res2, err := q.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed to completion with exit code %d\n", res2.ExitCode)
}
