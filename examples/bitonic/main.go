// Bitonic migration: the paper's allocation-heavy workload. A binary tree
// of n pseudo-random integers is built on one machine (n heap blocks, one
// per node), migrated — every node and pointer collected by depth-first
// traversal without duplication — and verified sorted by in-order
// traversal on the destination.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 20000, "numbers to sort")
	seed := flag.Int("seed", 20010415, "random seed")
	flag.Parse()

	prog, err := repro.Compile(workload.BitonicSource(*n, *seed), repro.PollExplicitOnly)
	if err != nil {
		log.Fatalf("pre-compile: %v", err)
	}

	src, dst := repro.SPARC20, repro.AMD64 // 32-bit BE -> 64-bit LE
	fmt.Printf("bitonic sort of %d integers: build on %s, verify on %s\n", *n, src.Name, dst.Name)
	res, err := prog.Migrate(src, dst, &repro.Options{Stdout: os.Stdout})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if !res.Migrated {
		log.Fatal("no migration occurred")
	}
	fmt.Printf("transferred %d tree nodes in %d bytes\n",
		res.Process.Space.HeapLive(), res.Timing.Bytes)
	fmt.Printf("timing: %s\n", res.Timing)
	switch res.ExitCode {
	case 0:
		fmt.Println("verified: in-order traversal visits all nodes in sorted order")
	case 1:
		fmt.Println("FAILED: node count changed across migration")
		os.Exit(1)
	case 2:
		fmt.Println("FAILED: tree no longer sorted after migration")
		os.Exit(1)
	}
}
