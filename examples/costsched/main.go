// Cost-aware scheduling: the migration-decision policy the paper lists as
// future work. A heterogeneous cluster has a slow loaded node and a fast
// idle one; the cost model weighs the predicted compute savings against
// the state transfer time and only migrates when it pays off.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/sched"
	"repro/internal/vm"
)

const worker = `
	int main() {
		int i, n, steps;
		steps = 0;
		for (i = 2; i < 4000; i++) {
			n = i;
			while (n != 1) {
				if (n % 2) { n = 3 * n + 1; } else { n = n / 2; }
				steps++;
			}
		}
		return steps % 251;
	}
`

func main() {
	engine, err := core.NewEngine(worker, minic.DefaultPolicy)
	if err != nil {
		log.Fatal(err)
	}
	cluster := sched.NewCluster(engine)
	cluster.Configure = func(p *vm.Process) { p.MaxSteps = 500_000_000 }
	cluster.AddNode("old-dec", arch.DEC5000)
	cluster.AddNode("new-amd64", arch.AMD64)

	model := sched.NewCostModel(cluster)
	model.SetSpec("old-dec", sched.NodeSpec{Speed: 1.0, Link: link.Ethernet100})
	model.SetSpec("new-amd64", sched.NodeSpec{Speed: 6.0, Link: link.Ethernet100})

	var handles []*sched.Handle
	for i := 0; i < 4; i++ {
		h, err := cluster.Spawn("old-dec")
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}
	fmt.Printf("4 workers on old-dec (speed 1.0); new-amd64 (speed 6.0) idle\n")

	// Each worker has ~10 s of remaining work and ~64 KB of state.
	for i, h := range handles {
		d := model.Advise(h, 10*time.Second, 64<<10)
		fmt.Printf("worker %d: advise migrate=%v target=%s predicted gain=%.2fs\n",
			i, d.Migrate, d.Target, d.Gain.Seconds())
		if d.Migrate {
			h.Migrate(d.Target)
		}
	}

	for i, h := range handles {
		o := h.Wait()
		if o.Err != nil {
			log.Fatal(o.Err)
		}
		fmt.Printf("worker %d finished on %s after %d migration(s), exit %d\n",
			i, o.Node, len(o.Migrations), o.ExitCode)
	}
}
