// Jacobi relay: an iterative heat-diffusion solve that hops to a different
// machine every few sweeps — the "reconfigurable computing" scenario from
// the paper's introduction, where a long-running computation follows
// whatever capacity is available. The final checksum is compared against
// an unmigrated run to show the numerics are unaffected by seven
// migrations across four architectures.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	const grid, sweeps = 32, 40
	engine, err := core.NewEngine(workload.JacobiSource(grid, sweeps), minic.PollPolicy{})
	if err != nil {
		log.Fatal(err)
	}

	// Reference run, no migration.
	ref, err := engine.NewProcess(arch.Ultra5)
	if err != nil {
		log.Fatal(err)
	}
	ref.MaxSteps = 500_000_000
	refRes, err := ref.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Relay run: migrate every 5 sweeps, rotating through machines.
	route := []*arch.Machine{arch.DEC5000, arch.SPARC20, arch.I386, arch.SPARCV9}
	p, err := engine.NewProcess(route[0])
	if err != nil {
		log.Fatal(err)
	}
	p.MaxSteps = 500_000_000
	hops := 0
	for {
		sweepsHere := 0
		p.PollHook = func(*vm.Process, *minic.Site) bool {
			sweepsHere++
			return sweepsHere == 5
		}
		res, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		if !res.Migrated {
			fmt.Printf("converged on %s after %d migrations\n", p.Mach.Name, hops)
			if res.ExitCode != refRes.ExitCode {
				log.Fatalf("checksum diverged: relay %d vs reference %d",
					res.ExitCode, refRes.ExitCode)
			}
			fmt.Printf("checksum matches the unmigrated reference (code %d)\n", res.ExitCode)
			return
		}
		hops++
		next := route[hops%len(route)]
		fmt.Printf("hop %d: %s -> %s (%d bytes of grid state)\n",
			hops, p.Mach.Name, next.Name, len(res.State))
		p, err = vm.RestoreProcess(engine.Prog, next, res.State)
		if err != nil {
			log.Fatal(err)
		}
		p.MaxSteps = 500_000_000
	}
}
