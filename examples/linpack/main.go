// Linpack migration: the paper's computation-intensive workload. The
// program generates an n x n linear system on one machine, migrates right
// after generation (so the full matrix is live data), then factors and
// solves on a machine with the opposite endianness — and verifies the
// solution, demonstrating that high-order floating point accuracy is
// preserved by the transfer (Section 4.1 of the paper).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	n := flag.Int("n", 200, "matrix order")
	srcName := flag.String("from", "dec5000", "source machine")
	dstName := flag.String("to", "sparc20", "destination machine")
	flag.Parse()

	src, dst := repro.MachineByName(*srcName), repro.MachineByName(*dstName)
	if src == nil || dst == nil {
		log.Fatalf("unknown machine (have %v)", names())
	}

	prog, err := repro.Compile(workload.LinpackSource(*n, true), repro.PollExplicitOnly)
	if err != nil {
		log.Fatalf("pre-compile: %v", err)
	}

	fmt.Printf("linpack %dx%d: generate on %s, solve on %s\n", *n, *n, src.Name, dst.Name)
	res, err := prog.Migrate(src, dst, &repro.Options{Stdout: os.Stdout})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if !res.Migrated {
		log.Fatal("no migration occurred")
	}
	fmt.Printf("state: %d bytes (%.2f MB of matrix data)\n",
		res.Timing.Bytes, float64(res.Timing.Bytes)/(1<<20))
	fmt.Printf("timing: %s\n", res.Timing)
	switch res.ExitCode {
	case 0:
		fmt.Println("solution verified: residual against the exact all-ones solution is < 1e-6")
	case 2:
		fmt.Println("FAILED: matrix became singular after migration")
		os.Exit(1)
	case 3:
		fmt.Println("FAILED: solution residual too large after migration")
		os.Exit(1)
	default:
		fmt.Printf("FAILED: exit code %d\n", res.ExitCode)
		os.Exit(1)
	}
}

func names() []string {
	var out []string
	for _, m := range repro.Machines() {
		out = append(out, m.Name)
	}
	return out
}
