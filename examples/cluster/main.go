// Cluster: the distributed environment of the paper's Section 2. A
// heterogeneous cluster of simulated machines runs a batch of processes;
// all start on one overloaded node, and the scheduler rebalances them
// across the cluster — each process migrates at its next poll-point and
// completes on its new home.
package main

import (
	"fmt"
	"log"

	"repro"
)

const worker = `
	/* a long-running worker: iterative Collatz over a range */
	int main() {
		int i, n, steps;
		steps = 0;
		for (i = 2; i < 3000; i++) {
			n = i;
			while (n != 1) {
				if (n % 2) { n = 3 * n + 1; } else { n = n / 2; }
				steps++;
			}
		}
		return steps % 251;
	}
`

func main() {
	prog, err := repro.Compile(worker, repro.PollAtLoops)
	if err != nil {
		log.Fatal(err)
	}

	c := prog.NewCluster(nil)
	c.AddNode("dec-ultrix", repro.DEC5000)
	c.AddNode("sparc-solaris", repro.SPARC20)
	c.AddNode("amd64-linux", repro.AMD64)

	// Overload one node with the whole batch.
	var handles []*repro.Handle
	for i := 0; i < 9; i++ {
		h, err := c.Spawn("dec-ultrix")
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}
	fmt.Printf("spawned %d processes on dec-ultrix (load %d)\n",
		len(handles), c.Node("dec-ultrix").Active())

	moved := c.Rebalance(handles)
	fmt.Printf("scheduler planned %d migrations to balance the load\n", len(moved))

	perNode := map[string]int{}
	for i, h := range handles {
		o := h.Wait()
		if o.Err != nil {
			log.Fatalf("process %d: %v", i, o.Err)
		}
		perNode[o.Node]++
		if len(o.Migrations) > 0 {
			m := o.Migrations[0]
			fmt.Printf("process %d: %s -> %s (%d bytes, total %.4fs), exit %d\n",
				i, m.From, m.To, m.Timing.Bytes, m.Timing.Total().Seconds(), o.ExitCode)
		} else {
			fmt.Printf("process %d: stayed on %s, exit %d\n", i, o.Node, o.ExitCode)
		}
	}
	fmt.Printf("completed per node: %v\n", perNode)
}
