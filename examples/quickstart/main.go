// Quickstart: compile a MigC program into migratable format, run it on a
// little-endian DEC 5000, migrate it mid-loop to a big-endian SPARC 20,
// and let it finish there — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

const source = `
	/* Sum the first 1000 squares, with a poll-point at the loop head
	   (inserted automatically by the pre-compiler). */
	int main() {
		int i;
		long sum;
		sum = 0;
		for (i = 1; i <= 1000; i++) {
			sum += i * i;
		}
		printf("sum of squares = %ld\n", sum);
		return 0;
	}
`

func main() {
	prog, err := repro.Compile(source, repro.PollAtLoops)
	if err != nil {
		log.Fatalf("pre-compile: %v", err)
	}

	fmt.Printf("migrating from %s to %s...\n", repro.DEC5000, repro.SPARC20)
	res, err := prog.Migrate(repro.DEC5000, repro.SPARC20, &repro.Options{Stdout: os.Stdout})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if !res.Migrated {
		log.Fatal("the program finished before the migration request was served")
	}
	fmt.Printf("migrated %d bytes of state: %s\n", res.Timing.Bytes, res.Timing)
	fmt.Printf("exit code %d on %s\n", res.ExitCode, res.Process.Mach.Name)
}
