// Checkpoint/restart: the same data collection and restoration machinery
// that migrates a process also checkpoints it. This example runs a
// long computation, writes a checkpoint file at a poll-point, "crashes",
// and then restarts the process from the file — on a machine with a
// different architecture than the one that wrote the checkpoint.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/vm"
)

const job = `
	/* accumulate a slowly converging series */
	double partial;
	int done_iterations = 0;
	int main() {
		int i, target;
		target = 200000;
		partial = 0.0;
		for (i = 1; i <= target; i++) {
			partial += 1.0 / (1.0 * i * i);
			done_iterations = i;
		}
		printf("sum of 1/n^2 over %d terms = %.6f\n", target, partial);
		return 0;
	}
`

func main() {
	engine, err := core.NewEngine(job, minic.DefaultPolicy)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "job.ckpt")

	// Phase 1: run on a little-endian machine; checkpoint half-way.
	p, err := engine.NewProcess(arch.AMD64)
	if err != nil {
		log.Fatal(err)
	}
	p.Stdout = os.Stdout
	p.MaxSteps = 100_000_000
	polls := 0
	p.PollHook = func(*vm.Process, *minic.Site) bool {
		polls++
		return polls == 100_000 // checkpoint at the 100000th iteration
	}
	res, err := p.Run()
	if err != nil {
		log.Fatal(err)
	}
	if !res.Migrated {
		log.Fatal("job finished before the checkpoint fired")
	}
	if err := engine.SaveToFile(ckpt, res.State, p.Mach); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(ckpt)
	fmt.Printf("checkpointed on %s after %d iterations (%d bytes)\n",
		p.Mach.Name, polls, info.Size())
	fmt.Println("... simulated crash; process gone ...")

	// Phase 2: restart from the file on a big-endian machine.
	q, err := engine.RestoreFromFile(ckpt, arch.SPARCV9)
	if err != nil {
		log.Fatal(err)
	}
	q.Stdout = os.Stdout
	q.MaxSteps = 100_000_000
	final, err := q.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted on %s, completed with exit code %d\n", q.Mach.Name, final.ExitCode)
}
