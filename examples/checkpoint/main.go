// Checkpoint/restart: the same data collection and restoration machinery
// that migrates a process also checkpoints it. This example runs a long
// computation and checkpoints it periodically into a content-addressed
// store (internal/store) — each checkpoint a small manifest chaining to
// its parent, with unchanged section bodies stored once. The process then
// "crashes", and the chain head is restored — on a machine with a
// different architecture than the one that wrote the checkpoints.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vm"
)

const job = `
	/* accumulate a slowly converging series */
	double partial;
	int done_iterations = 0;
	int main() {
		int i, target;
		target = 200000;
		partial = 0.0;
		for (i = 1; i <= target; i++) {
			partial += 1.0 / (1.0 * i * i);
			done_iterations = i;
		}
		printf("sum of 1/n^2 over %d terms = %.6f\n", target, partial);
		return 0;
	}
`

func main() {
	engine, err := core.NewEngine(job, minic.DefaultPolicy)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, obs.NewRegistry())
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: run on a little-endian machine, checkpointing into the
	// store every 50000 iterations. Each hop restores from the captured
	// state, exactly as a real checkpoint-resume cycle would.
	p, err := engine.NewProcess(arch.AMD64)
	if err != nil {
		log.Fatal(err)
	}
	iterations := 0
	for hops := 0; hops < 3; hops++ {
		p.Stdout = os.Stdout
		p.MaxSteps = 100_000_000
		polls := 0
		p.PollHook = func(*vm.Process, *minic.Site) bool {
			polls++
			return polls == 50_000
		}
		res, err := p.Run()
		if err != nil {
			log.Fatal(err)
		}
		if !res.Migrated {
			log.Fatal("job finished before its checkpoints were done")
		}
		iterations += polls
		m, h, cst, err := engine.CheckpointProcess(st, p, p.Mach, "job", 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpointed on %s after %d iterations: seq %d %s (%s)\n",
			p.Mach.Name, iterations, m.Seq, h.Short(), cst)
		if p, err = vm.RestoreProcess(engine.Prog, p.Mach, res.State); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("... simulated crash; process gone ...")

	// Phase 2: restart the chain head from the store on a big-endian
	// machine. Every section body is re-verified against its content hash
	// and CRC on the way back in.
	head, ok, err := st.Ref("job")
	if err != nil || !ok {
		log.Fatalf("chain head: ok=%v err=%v", ok, err)
	}
	chain, err := st.Chain(head)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store holds a chain of %d checkpoints; restarting from seq %d\n",
		len(chain), chain[0].Seq)
	q, _, err := engine.RestoreFromStore(st, head, arch.SPARCV9)
	if err != nil {
		log.Fatal(err)
	}
	q.Stdout = os.Stdout
	q.MaxSteps = 100_000_000
	final, err := q.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restarted on %s, completed with exit code %d\n", q.Mach.Name, final.ExitCode)
}
