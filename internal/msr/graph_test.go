package msr

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/types"
)

// buildExample reconstructs (a simplified form of) the paper's Figure 1
// snapshot on machine m: two global node pointers, a local array of node
// pointers, and heap nodes linked into a chain.
func buildExample(t *testing.T, m *arch.Machine) (*memory.Space, *Table, *types.TI, *types.Type) {
	t.Helper()
	n := nodeType("fig1node")
	ti := types.NewTI()
	ti.Add(types.PointerTo(n))
	ti.Add(types.ArrayOf(types.PointerTo(n), 10))

	sp := memory.NewSpace(m)
	tbl := NewTable()

	// Globals: struct node *first, *last;
	pfirst, _ := sp.GlobalAlloc(m.PtrSize(), m.PtrSize())
	plast, _ := sp.GlobalAlloc(m.PtrSize(), m.PtrSize())
	reg := func(id BlockID, addr memory.Address, ty *types.Type, count int, name string) *Block {
		b := &Block{ID: id, Addr: addr, Type: ty, Count: count, Name: name}
		if err := tbl.Register(b); err != nil {
			t.Fatal(err)
		}
		return b
	}
	reg(globalID(0), pfirst, types.PointerTo(n), 1, "first")
	reg(globalID(1), plast, types.PointerTo(n), 1, "last")

	// Stack: struct node *parray[10] in main (frame 1).
	arrT := types.ArrayOf(types.PointerTo(n), 10)
	fb, _ := sp.PushFrame(arrT.SizeOf(m))
	parray := reg(stackID(1, 0), fb, arrT, 1, "parray")

	// Heap: four nodes, as after four loop iterations.
	var nodes []*Block
	for i := 0; i < 4; i++ {
		a, _ := sp.Malloc(n.SizeOf(m))
		nb := reg(tbl.NextHeapID(), a, n, 1, "")
		nodes = append(nodes, nb)
		// parray[i] = node
		sp.StorePtr(parray.Addr+memory.Address(i*m.PtrSize()), a)
	}
	// first = parray[0]; last = parray[3]; first->link = last;
	sp.StorePtr(pfirst, nodes[0].Addr)
	sp.StorePtr(plast, nodes[3].Addr)
	linkOff := memory.Address(n.OffsetOf(m, 1))
	sp.StorePtr(nodes[0].Addr+linkOff, nodes[3].Addr)
	// parray[i]->link = parray[i-1] for i > 0.
	for i := 1; i < 4; i++ {
		sp.StorePtr(nodes[i].Addr+linkOff, nodes[i-1].Addr)
	}
	return sp, tbl, ti, n
}

func TestBuildGraphExample(t *testing.T) {
	sp, tbl, ti, _ := buildExample(t, arch.DEC5000)
	g, err := BuildGraph(sp, tbl, ti)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices: first, last, parray, 4 nodes = 7.
	if len(g.Vertices) != 7 {
		t.Errorf("vertices = %d, want 7", len(g.Vertices))
	}
	// Edges: first, last (2), parray[0..3] (4), first->link plus the
	// three back links (4) = 10.
	if len(g.Edges) != 10 {
		t.Errorf("edges = %d, want 10", len(g.Edges))
	}
	// Everything is one connected component.
	comps := g.Components()
	if len(comps) != 1 {
		t.Errorf("components = %d, want 1", len(comps))
	}
	// All nodes reachable from parray.
	reach := g.Reachable([]BlockID{stackID(1, 0)})
	if len(reach) != 5 { // parray + 4 nodes
		t.Errorf("reachable from parray = %d blocks, want 5", len(reach))
	}
}

func TestGraphCanonicalMachineIndependent(t *testing.T) {
	// The same logical state built on a little-endian 32-bit machine and
	// a big-endian 64-bit machine must canonicalize identically — this is
	// the property that makes graph comparison a valid post-migration
	// correctness check.
	sp1, tbl1, ti1, _ := buildExample(t, arch.DEC5000)
	g1, err := BuildGraph(sp1, tbl1, ti1)
	if err != nil {
		t.Fatal(err)
	}
	sp2, tbl2, ti2, _ := buildExample(t, arch.SPARCV9)
	g2, err := BuildGraph(sp2, tbl2, ti2)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := g1.Canonical(), g2.Canonical()
	if c1 != c2 {
		t.Errorf("canonical forms differ:\n--- dec5000 ---\n%s\n--- sparcv9 ---\n%s", c1, c2)
	}
}

func TestGraphDanglingPointerDetected(t *testing.T) {
	m := arch.Ultra5
	sp := memory.NewSpace(m)
	tbl := NewTable()
	ti := types.NewTI()
	pt := types.PointerTo(types.Int)
	ti.Add(pt)
	a, _ := sp.GlobalAlloc(m.PtrSize(), m.PtrSize())
	b := &Block{ID: globalID(0), Addr: a, Type: pt, Count: 1, Name: "p"}
	tbl.Register(b)
	// Store a pointer to unregistered memory.
	other, _ := sp.Malloc(8)
	sp.StorePtr(a, other)
	if _, err := BuildGraph(sp, tbl, ti); err == nil {
		t.Error("dangling pointer not detected")
	}
}

func TestGraphInteriorPointerOrdinal(t *testing.T) {
	m := arch.Ultra5
	sp := memory.NewSpace(m)
	tbl := NewTable()
	ti := types.NewTI()
	pt := types.PointerTo(types.Double)
	ti.Add(pt)
	ti.Add(types.Double)

	arr, _ := sp.Malloc(10 * 8)
	ab := &Block{ID: tbl.NextHeapID(), Addr: arr, Type: types.Double, Count: 10}
	tbl.Register(ab)
	p, _ := sp.GlobalAlloc(m.PtrSize(), m.PtrSize())
	pb := &Block{ID: globalID(0), Addr: p, Type: pt, Count: 1, Name: "p"}
	tbl.Register(pb)
	sp.StorePtr(p, arr+7*8) // &arr[7]

	g, err := BuildGraph(sp, tbl, ti)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.OutEdges(pb.ID)
	if len(edges) != 1 || edges[0].ToOrdinal != 7 {
		t.Errorf("edges = %+v, want one edge to ordinal 7", edges)
	}
}

func TestGraphStats(t *testing.T) {
	sp, tbl, ti, n := buildExample(t, arch.DEC5000)
	g, err := BuildGraph(sp, tbl, ti)
	if err != nil {
		t.Fatal(err)
	}
	st := g.Stats(arch.DEC5000)
	if st.Blocks != 7 || st.Edges != 10 {
		t.Errorf("stats = %+v", st)
	}
	wantBytes := 2*4 + 10*4 + 4*n.SizeOf(arch.DEC5000)
	if st.Bytes != wantBytes {
		t.Errorf("bytes = %d, want %d", st.Bytes, wantBytes)
	}
	if st.PerSegment[memory.Heap] != 4 || st.PerSegment[memory.Global] != 2 || st.PerSegment[memory.Stack] != 1 {
		t.Errorf("per segment = %v", st.PerSegment)
	}
}

func TestGraphDot(t *testing.T) {
	sp, tbl, ti, _ := buildExample(t, arch.DEC5000)
	g, _ := BuildGraph(sp, tbl, ti)
	dot := g.Dot()
	if !strings.Contains(dot, "digraph msr") || !strings.Contains(dot, "parray") {
		t.Errorf("dot output missing content:\n%s", dot)
	}
}

func TestComponentsDisconnected(t *testing.T) {
	m := arch.Ultra5
	sp := memory.NewSpace(m)
	tbl := NewTable()
	ti := types.NewTI()
	ti.Add(types.Int)
	a1, _ := sp.GlobalAlloc(4, 4)
	a2, _ := sp.GlobalAlloc(4, 4)
	tbl.Register(&Block{ID: globalID(0), Addr: a1, Type: types.Int, Count: 1, Name: "a"})
	tbl.Register(&Block{ID: globalID(1), Addr: a2, Type: types.Int, Count: 1, Name: "b"})
	g, err := BuildGraph(sp, tbl, ti)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Components()) != 2 {
		t.Errorf("components = %d, want 2", len(g.Components()))
	}
}
