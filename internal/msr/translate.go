package msr

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/types"
)

// This file implements the two directions of pointer translation between
// the machine-specific and machine-independent representations. The paper
// encodes a pointer as a header (the logical identification of the memory
// block the pointer refers to) and an offset (the ordering number of the
// data element inside that block).

// Ref is the machine-independent form of a pointer value.
type Ref struct {
	ID      BlockID
	Ordinal int
}

// NullRef is the encoding of a null pointer.
var NullRef = Ref{ID: BlockID{Seg: memory.NumSegments}, Ordinal: 0}

// IsNull reports whether the reference encodes a null pointer.
func (r Ref) IsNull() bool { return r.ID.Seg >= memory.NumSegments }

// String formats the reference for diagnostics.
func (r Ref) String() string {
	if r.IsNull() {
		return "null"
	}
	return fmt.Sprintf("%s+%d", r.ID, r.Ordinal)
}

// Resolve translates a machine-specific pointer value into its
// machine-independent (header, offset) form using the MSRLT. The machine is
// needed to interpret element sizes. A zero address resolves to NullRef.
func Resolve(t *Table, m *arch.Machine, addr memory.Address) (Ref, error) {
	return ResolveStats(t, m, addr, &t.Stats)
}

// ResolveStats is Resolve with the MSRLT counters recorded into st, so
// concurrent section encoders can translate pointers without racing on
// the table's Stats (see Table.LookupStats).
func ResolveStats(t *Table, m *arch.Machine, addr memory.Address, st *Stats) (Ref, error) {
	if addr == 0 {
		return NullRef, nil
	}
	b, off, err := t.LookupStats(addr, func(ty *types.Type) int { return ty.SizeOf(m) }, st)
	if err != nil {
		return Ref{}, err
	}
	es := b.Type.SizeOf(m)
	if es == 0 {
		return Ref{}, fmt.Errorf("msr: block %s has zero-size element type %s", b.ID, b.Type)
	}
	if off == b.Count*es {
		// One past the end of the block.
		return Ref{ID: b.ID, Ordinal: b.ScalarCount()}, nil
	}
	elem := off / es
	within, ok := b.Type.OffsetToOrdinal(m, off%es)
	if !ok {
		return Ref{}, fmt.Errorf("msr: address %#x falls in padding of block %s (%s)",
			uint64(addr), b.ID, b.Type)
	}
	return Ref{ID: b.ID, Ordinal: elem*b.Type.ScalarCount() + within}, nil
}

// AddrOf translates a machine-independent reference back to a
// machine-specific address, the restoration direction.
func AddrOf(t *Table, m *arch.Machine, r Ref) (memory.Address, error) {
	return AddrOfStats(t, m, r, &t.Stats)
}

// AddrOfStats is AddrOf with the resolve counter recorded into st, so
// concurrent section restorers can translate references without racing on
// the table's Stats — the restoration-direction twin of ResolveStats (the
// block index is read-only once every section's blocks are registered).
func AddrOfStats(t *Table, m *arch.Machine, r Ref, st *Stats) (memory.Address, error) {
	if r.IsNull() {
		return 0, nil
	}
	b, ok := t.ByIDStats(r.ID, st)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownID, r.ID)
	}
	return BlockAddr(b, m, r.Ordinal)
}

// BlockAddr computes the address of the ordinal-th scalar of block b on
// machine m. ordinal may equal the block's scalar count (one past the end).
func BlockAddr(b *Block, m *arch.Machine, ordinal int) (memory.Address, error) {
	total := b.ScalarCount()
	if ordinal < 0 || ordinal > total {
		return 0, fmt.Errorf("%w: %d of %d in %s", ErrBadOrdinal, ordinal, total, b.ID)
	}
	es := b.Type.SizeOf(m)
	if ordinal == total {
		return b.Addr + memory.Address(b.Count*es), nil
	}
	per := b.Type.ScalarCount()
	elem, within := ordinal/per, ordinal%per
	return b.Addr + memory.Address(elem*es+b.Type.OrdinalToOffset(m, within)), nil
}
