package msr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/types"
)

// This file materializes the MSR graph G = (V, E) from a memory snapshot.
// The collection algorithm itself never builds the explicit graph — it
// traverses implicitly — but the explicit form supports verification
// (comparing graphs before and after migration), analysis, and the
// illustrative traces of the paper's Section 3.2.

// Edge is a pointer relationship: the scalar at ordinal FromOrdinal of
// block From holds a pointer to ordinal ToOrdinal of block To.
type Edge struct {
	From        BlockID
	FromOrdinal int
	To          BlockID
	ToOrdinal   int
}

// Graph is an explicit MSR snapshot.
type Graph struct {
	Vertices []*Block
	Edges    []Edge

	index map[BlockID]int
}

// Space is the subset of the memory space the graph builder needs.
// *memory.Space satisfies it.
type Space interface {
	Machine() *arch.Machine
	Bytes(addr memory.Address, n int) ([]byte, error)
}

// BuildGraph scans every registered block for pointer scalars and resolves
// them into edges. Dangling pointers (values that resolve to no block) are
// reported as errors: the MSR model requires every edge to land in V.
func BuildGraph(sp Space, t *Table, ti *types.TI) (*Graph, error) {
	m := sp.Machine()
	g := &Graph{index: make(map[BlockID]int)}
	for _, b := range t.Blocks() {
		g.index[b.ID] = len(g.Vertices)
		g.Vertices = append(g.Vertices, b)
	}
	for _, b := range t.Blocks() {
		plan := ti.Plan(b.Type, m)
		if !plan.HasPtr {
			continue
		}
		es := b.Type.SizeOf(m)
		for elem := 0; elem < b.Count; elem++ {
			base := b.Addr + memory.Address(elem*es)
			if err := scanOps(sp, t, m, plan.Ops, base, b, elem*b.Type.ScalarCount(), g); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// scanOps walks plan operations at the given base address, appending an
// edge for every non-null pointer scalar. ordBase tracks the ordinal of the
// first scalar covered by ops within the block.
func scanOps(sp Space, t *Table, m *arch.Machine, ops []types.PlanOp, base memory.Address, b *Block, ordBase int, g *Graph) error {
	ord := ordBase
	for _, op := range ops {
		if op.Sub != nil {
			per := countScalars(op.Sub)
			for i := 0; i < op.Count; i++ {
				if err := scanOps(sp, t, m, op.Sub, base+memory.Address(op.Off+i*op.Stride), b, ord, g); err != nil {
					return err
				}
				ord += per
			}
			continue
		}
		if op.Kind != arch.Ptr {
			ord += op.Count
			continue
		}
		for i := 0; i < op.Count; i++ {
			addr := base + memory.Address(op.Off+i*op.Stride)
			raw, err := sp.Bytes(addr, m.PtrSize())
			if err != nil {
				return err
			}
			val := memory.Address(m.Uint(raw, m.PtrSize()))
			if val == 0 {
				ord++
				continue
			}
			ref, err := Resolve(t, m, val)
			if err != nil {
				return fmt.Errorf("msr: dangling pointer %#x in %s scalar %d: %w",
					uint64(val), b.ID, ord, err)
			}
			g.Edges = append(g.Edges, Edge{
				From: b.ID, FromOrdinal: ord,
				To: ref.ID, ToOrdinal: ref.Ordinal,
			})
			ord++
		}
	}
	return nil
}

// countScalars totals the scalar coverage of a plan fragment.
func countScalars(ops []types.PlanOp) int {
	n := 0
	for _, op := range ops {
		if op.Sub != nil {
			n += op.Count * countScalars(op.Sub)
		} else {
			n += op.Count
		}
	}
	return n
}

// Vertex returns the block with the given ID, or nil.
func (g *Graph) Vertex(id BlockID) *Block {
	if i, ok := g.index[id]; ok {
		return g.Vertices[i]
	}
	return nil
}

// OutEdges returns the edges leaving the given block, ordered by source
// ordinal.
func (g *Graph) OutEdges(id BlockID) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FromOrdinal < out[j].FromOrdinal })
	return out
}

// Components returns the weakly connected components of the graph as sets
// of block IDs, each sorted, with components ordered by their smallest ID.
func (g *Graph) Components() [][]BlockID {
	parent := make([]int, len(g.Vertices))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, e := range g.Edges {
		union(g.index[e.From], g.index[e.To])
	}
	groups := map[int][]BlockID{}
	for i, v := range g.Vertices {
		r := find(i)
		groups[r] = append(groups[r], v.ID)
	}
	var comps [][]BlockID
	for _, ids := range groups {
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		comps = append(comps, ids)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0].Less(comps[j][0]) })
	return comps
}

// Reachable returns the set of blocks reachable from the given roots by
// following edges, including the roots themselves.
func (g *Graph) Reachable(roots []BlockID) map[BlockID]bool {
	adj := map[BlockID][]BlockID{}
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	seen := map[BlockID]bool{}
	var stack []BlockID
	for _, r := range roots {
		if g.Vertex(r) != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, to := range adj[id] {
			if !seen[to] {
				seen[to] = true
				stack = append(stack, to)
			}
		}
	}
	return seen
}

// GraphStats summarizes a snapshot, the n and ΣDᵢ of the complexity model.
type GraphStats struct {
	Blocks     int
	Edges      int
	Bytes      int // ΣDᵢ on the snapshot machine
	PerSegment map[memory.Segment]int
}

// Stats computes summary statistics for the graph on machine m.
func (g *Graph) Stats(m *arch.Machine) GraphStats {
	s := GraphStats{
		Blocks:     len(g.Vertices),
		Edges:      len(g.Edges),
		PerSegment: map[memory.Segment]int{},
	}
	for _, b := range g.Vertices {
		s.Bytes += b.Count * b.Type.SizeOf(m)
		s.PerSegment[b.ID.Seg]++
	}
	return s
}

// Dot renders the graph in Graphviz format, labelling vertices with their
// variable names (as in the paper's Figure 1(b)).
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph msr {\n  rankdir=LR;\n")
	for _, v := range g.Vertices {
		label := v.ID.String()
		if v.Name != "" {
			label += " (" + v.Name + ")"
		}
		fmt.Fprintf(&b, "  %q [label=%q];\n", v.ID.String(), label)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%d->%d\"];\n",
			e.From.String(), e.To.String(), e.FromOrdinal, e.ToOrdinal)
	}
	b.WriteString("}\n")
	return b.String()
}

// Canonical returns a deterministic textual form of the graph with
// machine-independent vertex and edge descriptions. Two snapshots of the
// same logical state on different machines must canonicalize identically;
// the heterogeneity tests rely on this.
func (g *Graph) Canonical() string {
	verts := make([]string, 0, len(g.Vertices))
	for _, v := range g.Vertices {
		verts = append(verts, fmt.Sprintf("v %s type=%s count=%d name=%s",
			v.ID, v.Type.Signature(), v.Count, v.Name))
	}
	sort.Strings(verts)
	edges := make([]string, 0, len(g.Edges))
	for _, e := range g.Edges {
		edges = append(edges, fmt.Sprintf("e %s+%d -> %s+%d",
			e.From, e.FromOrdinal, e.To, e.ToOrdinal))
	}
	sort.Strings(edges)
	return strings.Join(verts, "\n") + "\n" + strings.Join(edges, "\n") + "\n"
}
