package msr

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/types"
)

func nodeType(tag string) *types.Type {
	n := types.NewStruct(tag)
	n.DefineFields([]types.Field{
		{Name: "data", Type: types.Float},
		{Name: "link", Type: types.PointerTo(n)},
	})
	return n
}

func globalID(i uint32) BlockID { return BlockID{Seg: memory.Global, Minor: i} }
func stackID(d, v uint32) BlockID {
	return BlockID{Seg: memory.Stack, Major: d, Minor: v}
}

func TestBlockIDString(t *testing.T) {
	if got := (BlockID{Seg: memory.Heap, Major: 42}).String(); got != "heap:42" {
		t.Errorf("heap id = %q", got)
	}
	if got := stackID(3, 1).String(); got != "stack:3.1" {
		t.Errorf("stack id = %q", got)
	}
}

func TestRegisterLookup(t *testing.T) {
	sp := memory.NewSpace(arch.Ultra5)
	tbl := NewTable()
	addr, _ := sp.GlobalAlloc(40, 8)
	b := &Block{ID: globalID(0), Addr: addr, Type: types.ArrayOf(types.Int, 10), Count: 1, Name: "xs"}
	if err := tbl.Register(b); err != nil {
		t.Fatal(err)
	}
	esz := func(ty *types.Type) int { return ty.SizeOf(arch.Ultra5) }

	got, off, err := tbl.Lookup(addr+8, esz)
	if err != nil || got != b || off != 8 {
		t.Errorf("Lookup = %v, %d, %v", got, off, err)
	}
	// One past the end is legal.
	if _, off, err := tbl.Lookup(addr+40, esz); err != nil || off != 40 {
		t.Errorf("one-past-end lookup: off=%d err=%v", off, err)
	}
	// Beyond that is not.
	if _, _, err := tbl.Lookup(addr+41, esz); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup past block: %v", err)
	}
	// Before the block is not found either.
	if _, _, err := tbl.Lookup(addr-1, esz); !errors.Is(err, ErrNotFound) {
		t.Errorf("lookup before block: %v", err)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	sp := memory.NewSpace(arch.Ultra5)
	tbl := NewTable()
	addr, _ := sp.GlobalAlloc(8, 8)
	b := &Block{ID: globalID(0), Addr: addr, Type: types.Double, Count: 1}
	if err := tbl.Register(b); err != nil {
		t.Fatal(err)
	}
	dup := &Block{ID: globalID(0), Addr: addr + 8, Type: types.Double, Count: 1}
	if err := tbl.Register(dup); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate ID: %v", err)
	}
}

func TestSegmentMismatch(t *testing.T) {
	sp := memory.NewSpace(arch.Ultra5)
	tbl := NewTable()
	addr, _ := sp.GlobalAlloc(8, 8)
	b := &Block{ID: BlockID{Seg: memory.Heap}, Addr: addr, Type: types.Double, Count: 1}
	if err := tbl.Register(b); err == nil {
		t.Error("register with mismatched segment succeeded")
	}
}

func TestUnregister(t *testing.T) {
	sp := memory.NewSpace(arch.Ultra5)
	tbl := NewTable()
	a, _ := sp.Malloc(16)
	b := &Block{ID: tbl.NextHeapID(), Addr: a, Type: types.Double, Count: 2}
	if err := tbl.Register(b); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Unregister(a); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Error("table not empty after unregister")
	}
	if err := tbl.Unregister(a); !errors.Is(err, ErrNotFound) {
		t.Errorf("double unregister: %v", err)
	}
	if _, ok := tbl.ByID(b.ID); ok {
		t.Error("ID still resolvable after unregister")
	}
}

func TestLookupManyBlocks(t *testing.T) {
	sp := memory.NewSpace(arch.SPARC20)
	tbl := NewTable()
	esz := func(ty *types.Type) int { return ty.SizeOf(arch.SPARC20) }
	var blocks []*Block
	for i := 0; i < 100; i++ {
		a, _ := sp.Malloc(24)
		b := &Block{ID: tbl.NextHeapID(), Addr: a, Type: types.Double, Count: 3}
		if err := tbl.Register(b); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		got, off, err := tbl.Lookup(b.Addr+16, esz)
		if err != nil || got != b || off != 16 {
			t.Fatalf("lookup of %s failed: %v %d %v", b.ID, got, off, err)
		}
	}
	// Search steps should be logarithmic: ~log2(100) per search.
	perSearch := float64(tbl.Stats.SearchSteps) / float64(tbl.Stats.Searches)
	if perSearch < 3 || perSearch > 10 {
		t.Errorf("search steps per lookup = %.1f, expected ~log2(100)≈6.6", perSearch)
	}
}

func TestHeapIDSequenceAndFloor(t *testing.T) {
	tbl := NewTable()
	id0 := tbl.NextHeapID()
	id1 := tbl.NextHeapID()
	if id0.Major != 0 || id1.Major != 1 {
		t.Errorf("heap sequence: %v %v", id0, id1)
	}
	tbl.RestoreFloor(BlockID{Seg: memory.Heap, Major: 50})
	if id := tbl.NextHeapID(); id.Major != 51 {
		t.Errorf("after floor, next = %v", id)
	}
	// Floor below current must not move backwards.
	tbl.RestoreFloor(BlockID{Seg: memory.Heap, Major: 10})
	if id := tbl.NextHeapID(); id.Major != 52 {
		t.Errorf("floor moved backwards: %v", id)
	}
}

func TestResolveAndAddrOf(t *testing.T) {
	n := nodeType("node1")
	for _, m := range []*arch.Machine{arch.DEC5000, arch.SPARCV9, arch.I386} {
		sp := memory.NewSpace(m)
		tbl := NewTable()
		a, _ := sp.Malloc(5 * n.SizeOf(m)) // five nodes
		b := &Block{ID: tbl.NextHeapID(), Addr: a, Type: n, Count: 5}
		if err := tbl.Register(b); err != nil {
			t.Fatal(err)
		}
		// Pointer to the link field of element 3: ordinal 3*2+1 = 7.
		addr := a + memory.Address(3*n.SizeOf(m)+n.OffsetOf(m, 1))
		ref, err := Resolve(tbl, m, addr)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if ref.ID != b.ID || ref.Ordinal != 7 {
			t.Errorf("%s: ref = %v, want %s+7", m.Name, ref, b.ID)
		}
		back, err := AddrOf(tbl, m, ref)
		if err != nil || back != addr {
			t.Errorf("%s: AddrOf = %#x, %v; want %#x", m.Name, uint64(back), err, uint64(addr))
		}
	}
}

func TestResolveNull(t *testing.T) {
	tbl := NewTable()
	ref, err := Resolve(tbl, arch.Ultra5, 0)
	if err != nil || !ref.IsNull() {
		t.Errorf("null resolve: %v, %v", ref, err)
	}
	a, err := AddrOf(tbl, arch.Ultra5, NullRef)
	if err != nil || a != 0 {
		t.Errorf("null AddrOf: %#x, %v", uint64(a), err)
	}
	if NullRef.String() != "null" {
		t.Error("null ref string")
	}
}

func TestResolveOnePastEnd(t *testing.T) {
	m := arch.Ultra5
	sp := memory.NewSpace(m)
	tbl := NewTable()
	a, _ := sp.Malloc(80)
	b := &Block{ID: tbl.NextHeapID(), Addr: a, Type: types.Double, Count: 10}
	tbl.Register(b)
	ref, err := Resolve(tbl, m, a+80)
	if err != nil || ref.Ordinal != 10 {
		t.Errorf("one-past-end: %v, %v", ref, err)
	}
	back, err := AddrOf(tbl, m, ref)
	if err != nil || back != a+80 {
		t.Errorf("one-past-end AddrOf: %#x, %v", uint64(back), err)
	}
}

func TestResolveCrossMachineOrdinalStable(t *testing.T) {
	// Encode a pointer on a 32-bit LE machine, and verify the ordinal
	// addresses the same logical element on a 64-bit BE machine.
	n := nodeType("node2")
	src, dst := arch.I386, arch.SPARCV9

	mkProc := func(m *arch.Machine) (*memory.Space, *Table, *Block) {
		sp := memory.NewSpace(m)
		tbl := NewTable()
		a, _ := sp.Malloc(4 * n.SizeOf(m))
		b := &Block{ID: BlockID{Seg: memory.Heap, Major: 7}, Addr: a, Type: n, Count: 4}
		if err := tbl.Register(b); err != nil {
			t.Fatal(err)
		}
		return sp, tbl, b
	}
	_, stbl, sb := mkProc(src)
	_, dtbl, db := mkProc(dst)

	// &elem[2].link on the source.
	srcAddr := sb.Addr + memory.Address(2*n.SizeOf(src)+n.OffsetOf(src, 1))
	ref, err := Resolve(stbl, src, srcAddr)
	if err != nil {
		t.Fatal(err)
	}
	dstAddr, err := AddrOf(dtbl, dst, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := db.Addr + memory.Address(2*n.SizeOf(dst)+n.OffsetOf(dst, 1))
	if dstAddr != want {
		t.Errorf("cross-machine translation: got %#x, want %#x", uint64(dstAddr), uint64(want))
	}
}

func TestAddrOfErrors(t *testing.T) {
	tbl := NewTable()
	if _, err := AddrOf(tbl, arch.Ultra5, Ref{ID: BlockID{Seg: memory.Heap, Major: 9}}); !errors.Is(err, ErrUnknownID) {
		t.Errorf("unknown id: %v", err)
	}
	sp := memory.NewSpace(arch.Ultra5)
	a, _ := sp.Malloc(8)
	b := &Block{ID: tbl.NextHeapID(), Addr: a, Type: types.Double, Count: 1}
	tbl.Register(b)
	if _, err := AddrOf(tbl, arch.Ultra5, Ref{ID: b.ID, Ordinal: 5}); !errors.Is(err, ErrBadOrdinal) {
		t.Errorf("bad ordinal: %v", err)
	}
}

func TestStatsReset(t *testing.T) {
	tbl := NewTable()
	sp := memory.NewSpace(arch.Ultra5)
	a, _ := sp.Malloc(8)
	tbl.Register(&Block{ID: tbl.NextHeapID(), Addr: a, Type: types.Double, Count: 1})
	tbl.Lookup(a, func(ty *types.Type) int { return 8 })
	if tbl.Stats.Searches == 0 || tbl.Stats.Registrations == 0 {
		t.Error("stats not counted")
	}
	tbl.ResetStats()
	if tbl.Stats.Searches != 0 {
		t.Error("stats not reset")
	}
}
