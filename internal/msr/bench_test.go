package msr

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/types"
)

// buildTable registers n heap blocks and returns the table plus their
// base addresses.
func buildTable(b *testing.B, n int, useIndex bool) (*Table, []memory.Address, *arch.Machine) {
	b.Helper()
	m := arch.Ultra5
	sp := memory.NewSpace(m)
	tbl := NewTable()
	tbl.UseBaseIndex = useIndex
	addrs := make([]memory.Address, n)
	for i := 0; i < n; i++ {
		a, err := sp.Malloc(24)
		if err != nil {
			b.Fatal(err)
		}
		addrs[i] = a
		if err := tbl.Register(&Block{ID: tbl.NextHeapID(), Addr: a, Type: types.Double, Count: 3}); err != nil {
			b.Fatal(err)
		}
	}
	return tbl, addrs, m
}

func benchLookup(b *testing.B, n int, useIndex bool, interior bool) {
	tbl, addrs, m := buildTable(b, n, useIndex)
	off := memory.Address(0)
	if interior {
		off = 8
	}
	esz := func(ty *types.Type) int { return ty.SizeOf(m) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := tbl.Lookup(addrs[i%n]+off, esz); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLookupBinarySearch1k(b *testing.B)   { benchLookup(b, 1000, false, false) }
func BenchmarkLookupBinarySearch100k(b *testing.B) { benchLookup(b, 100000, false, false) }
func BenchmarkLookupHashIndex1k(b *testing.B)      { benchLookup(b, 1000, true, false) }
func BenchmarkLookupHashIndex100k(b *testing.B)    { benchLookup(b, 100000, true, false) }
func BenchmarkLookupInterior100k(b *testing.B)     { benchLookup(b, 100000, true, true) }

func BenchmarkRegisterUnregister(b *testing.B) {
	m := arch.Ultra5
	sp := memory.NewSpace(m)
	tbl := NewTable()
	a, _ := sp.Malloc(24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := &Block{ID: tbl.NextHeapID(), Addr: a, Type: types.Double, Count: 3}
		if err := tbl.Register(blk); err != nil {
			b.Fatal(err)
		}
		if err := tbl.Unregister(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResolve(b *testing.B) {
	tbl, addrs, m := buildTable(b, 10000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Resolve(tbl, m, addrs[i%len(addrs)]+16); err != nil {
			b.Fatal(err)
		}
	}
}
