// Package msr implements the Memory Space Representation model of the
// paper and its supporting MSR Lookup Table (MSRLT).
//
// A snapshot of a process memory space is modelled as a graph G = (V, E):
// each vertex is a memory block (a global variable, a local variable of an
// active function invocation, or a dynamically allocated heap block), and
// each edge represents a pointer stored in one block referring to a location
// inside another.
//
// The MSRLT is the runtime data structure that keeps track of memory blocks,
// provides them with machine-independent identifications, and supports the
// address translation both directions of a migration need:
//
//   - during data collection, a machine-specific pointer value is translated
//     to (block identification, element ordinal);
//   - during data restoration, that pair is translated back to a
//     machine-specific address in the destination's memory space.
package msr

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/memory"
	"repro/internal/types"
)

// BlockID is the machine-independent identification of a memory block.
// The meaning of Major/Minor depends on the segment, chosen so that both
// ends of a migration derive the same IDs independently:
//
//   - Global: Major = 0, Minor = declaration index of the variable.
//   - Stack:  Major = frame depth of the invocation (1 = outermost),
//     Minor = variable index within the frame.
//   - Heap:   Major = allocation sequence number, Minor = 0.
//
// Stack and global IDs are reproducible on the destination because the
// migrated program pushes the same frames and declares the same globals;
// heap IDs are stream-local labels resolved through the table.
type BlockID struct {
	Seg   memory.Segment
	Major uint32
	Minor uint32
}

// String formats the ID as e.g. "global:2", "heap:42", or "stack:3.1".
func (id BlockID) String() string {
	switch id.Seg {
	case memory.Global:
		return fmt.Sprintf("global:%d", id.Minor)
	case memory.Heap:
		return fmt.Sprintf("heap:%d", id.Major)
	case memory.Stack:
		return fmt.Sprintf("stack:%d.%d", id.Major, id.Minor)
	}
	return fmt.Sprintf("%s:%d.%d", id.Seg, id.Major, id.Minor)
}

// Less orders IDs lexicographically; used for deterministic iteration.
func (id BlockID) Less(o BlockID) bool {
	if id.Seg != o.Seg {
		return id.Seg < o.Seg
	}
	if id.Major != o.Major {
		return id.Major < o.Major
	}
	return id.Minor < o.Minor
}

// Block is one vertex of the MSR graph: a contiguous memory block with a
// type. Count is the number of elements of Type the block holds; it is 1
// for variables and may be larger for heap blocks allocated as arrays
// (malloc(n * sizeof(T))).
type Block struct {
	ID    BlockID
	Addr  memory.Address
	Type  *types.Type
	Count int
	// Name is the source-level variable name, for diagnostics and the
	// example traces; empty for heap blocks.
	Name string
}

// Size returns the block's byte size on machine described by the space it
// lives in; the caller supplies the per-machine element size.
func (b *Block) Size(elemSize int) int { return b.Count * elemSize }

// ScalarCount returns the number of scalar elements in the block.
func (b *Block) ScalarCount() int { return b.Count * b.Type.ScalarCount() }

// Errors reported by the table.
var (
	ErrNotFound   = errors.New("msr: address not inside any registered block")
	ErrDuplicate  = errors.New("msr: block already registered")
	ErrUnknownID  = errors.New("msr: unknown block identification")
	ErrBadOrdinal = errors.New("msr: element ordinal out of range")
)

// Stats counts MSRLT activity. The split between search work (data
// collection) and update work (data restoration) quantifies the complexity
// decomposition of the paper's Section 4.2.
type Stats struct {
	// Registrations counts blocks added over the table's lifetime.
	Registrations int64
	// Searches counts address->block lookups.
	Searches int64
	// SearchSteps counts binary-search probe steps across all lookups;
	// SearchSteps/Searches ≈ log2(n).
	SearchSteps int64
	// IDResolves counts id->block lookups (the restoration direction).
	IDResolves int64
	// BaseHits counts lookups served by the base-address hash index
	// when it is enabled (see Table.UseBaseIndex).
	BaseHits int64
}

// Add folds another counter set into s (used to merge the per-worker
// counters of a parallel collection back into the table's totals).
func (s *Stats) Add(o Stats) {
	s.Registrations += o.Registrations
	s.Searches += o.Searches
	s.SearchSteps += o.SearchSteps
	s.IDResolves += o.IDResolves
	s.BaseHits += o.BaseHits
}

// Table is the MSRLT. Blocks are kept per segment in address order for
// O(log n) containment search, plus an ID index for the restoration path.
type Table struct {
	segs [memory.NumSegments][]*Block // sorted by Addr
	byID map[BlockID]*Block

	// UseBaseIndex enables a hash index over block base addresses,
	// consulted before the binary search. Most pointers in real
	// programs refer to block bases (list links, malloc results), so
	// the index converts the dominant lookup case from O(log n) to
	// O(1); interior pointers still fall back to the search. This is
	// the D3 design-ablation of DESIGN.md — the paper's MSRLT is the
	// ordered table whose O(n log n) collection term Figure 2(b)
	// exhibits, and this switch quantifies the modern alternative.
	UseBaseIndex bool
	baseIdx      map[memory.Address]*Block

	heapSeq uint32 // next heap Major

	Stats Stats
}

// NewTable returns an empty MSRLT.
func NewTable() *Table {
	return &Table{
		byID:    make(map[BlockID]*Block),
		baseIdx: make(map[memory.Address]*Block),
	}
}

// Len returns the number of registered blocks.
func (t *Table) Len() int {
	n := 0
	for _, s := range t.segs {
		n += len(s)
	}
	return n
}

// LenSegment returns the number of registered blocks in one segment.
func (t *Table) LenSegment(seg memory.Segment) int { return len(t.segs[seg]) }

// NextHeapID returns a fresh heap block identification. The sequence is
// monotonic over the life of the process; RestoreFloor advances it past
// identifications received in a migration stream.
func (t *Table) NextHeapID() BlockID {
	id := BlockID{Seg: memory.Heap, Major: t.heapSeq}
	t.heapSeq++
	return id
}

// RestoreFloor ensures future heap identifications do not collide with id,
// which was assigned by the source process and received in the stream.
func (t *Table) RestoreFloor(id BlockID) {
	if id.Seg == memory.Heap && id.Major >= t.heapSeq {
		t.heapSeq = id.Major + 1
	}
}

// Register adds a block to the table. The block must not overlap any
// registered block and its ID must be fresh.
func (t *Table) Register(b *Block) error {
	if b.Addr == 0 {
		return fmt.Errorf("msr: register of null address")
	}
	if _, ok := t.byID[b.ID]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicate, b.ID)
	}
	seg, ok := memory.SegmentOf(b.Addr)
	if !ok || seg != b.ID.Seg {
		return fmt.Errorf("msr: block %s address %#x not in its segment", b.ID, uint64(b.Addr))
	}
	s := t.segs[seg]
	i := sort.Search(len(s), func(i int) bool { return s[i].Addr > b.Addr })
	// Overlap checks against neighbours are performed by the caller via
	// sizes; the table itself only requires unique base addresses.
	if i > 0 && s[i-1].Addr == b.Addr {
		return fmt.Errorf("%w: address %#x", ErrDuplicate, uint64(b.Addr))
	}
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = b
	t.segs[seg] = s
	t.byID[b.ID] = b
	t.baseIdx[b.Addr] = b
	t.Stats.Registrations++
	return nil
}

// Unregister removes the block with the given base address (used when a
// heap block is freed or a stack frame is popped).
func (t *Table) Unregister(addr memory.Address) error {
	seg, ok := memory.SegmentOf(addr)
	if !ok {
		return fmt.Errorf("%w: %#x", ErrNotFound, uint64(addr))
	}
	s := t.segs[seg]
	i := sort.Search(len(s), func(i int) bool { return s[i].Addr >= addr })
	if i == len(s) || s[i].Addr != addr {
		return fmt.Errorf("%w: %#x", ErrNotFound, uint64(addr))
	}
	delete(t.byID, s[i].ID)
	delete(t.baseIdx, addr)
	t.segs[seg] = append(s[:i], s[i+1:]...)
	return nil
}

// Lookup finds the block containing addr, given the element size function
// for the current machine. It returns the block and the byte offset of addr
// within it. This is the MSRLT search of the collection path; its cost is
// counted in Stats.
func (t *Table) Lookup(addr memory.Address, elemSize func(*types.Type) int) (*Block, int, error) {
	return t.LookupStats(addr, elemSize, &t.Stats)
}

// LookupStats is Lookup with the activity counters recorded into st
// instead of the table's own Stats. The table's block index is read-only
// during a collection, so concurrent section encoders may call
// LookupStats simultaneously as long as each passes its own Stats; the
// caller folds them back with Stats.Add after the workers join.
func (t *Table) LookupStats(addr memory.Address, elemSize func(*types.Type) int, st *Stats) (*Block, int, error) {
	seg, ok := memory.SegmentOf(addr)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %#x", ErrNotFound, uint64(addr))
	}
	st.Searches++
	if t.UseBaseIndex {
		if b, ok := t.baseIdx[addr]; ok {
			st.BaseHits++
			return b, 0, nil
		}
	}
	s := t.segs[seg]
	// Binary search for the last block with base <= addr, counting steps.
	lo, hi := 0, len(s)
	for lo < hi {
		st.SearchSteps++
		mid := (lo + hi) / 2
		if s[mid].Addr <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil, 0, fmt.Errorf("%w: %#x", ErrNotFound, uint64(addr))
	}
	b := s[lo-1]
	off := int(addr - b.Addr)
	if off > b.Size(elemSize(b.Type)) { // == size allowed: one past the end
		return nil, 0, fmt.Errorf("%w: %#x past block %s", ErrNotFound, uint64(addr), b.ID)
	}
	return b, off, nil
}

// ByID resolves a machine-independent identification to its block. This is
// the restoration-direction lookup; the paper observes it takes constant
// time per block, so restoration's MSRLT cost is O(n) overall.
func (t *Table) ByID(id BlockID) (*Block, bool) {
	return t.ByIDStats(id, &t.Stats)
}

// ByIDStats is ByID with the resolve counter recorded into st; see
// LookupStats for the concurrency discipline.
func (t *Table) ByIDStats(id BlockID, st *Stats) (*Block, bool) {
	st.IDResolves++
	b, ok := t.byID[id]
	return b, ok
}

// Blocks returns all registered blocks in (segment, address) order.
func (t *Table) Blocks() []*Block {
	out := make([]*Block, 0, t.Len())
	for _, s := range t.segs {
		out = append(out, s...)
	}
	return out
}

// SegmentBlocks returns the registered blocks of one segment in address
// order.
func (t *Table) SegmentBlocks(seg memory.Segment) []*Block {
	out := make([]*Block, len(t.segs[seg]))
	copy(out, t.segs[seg])
	return out
}

// ResetStats clears the activity counters (between experiment phases).
func (t *Table) ResetStats() { t.Stats = Stats{} }
