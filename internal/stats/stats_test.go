package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestLinearFitExact(t *testing.T) {
	var s Series
	for x := 1.0; x <= 10; x++ {
		s.Add(x, 3*x+2)
	}
	f := s.LinearFit()
	if math.Abs(f.Slope-3) > 1e-9 || math.Abs(f.Intercept-2) > 1e-9 {
		t.Errorf("fit = %+v", f)
	}
	if f.R2 < 0.999999 {
		t.Errorf("R2 = %g", f.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	var s Series
	noise := []float64{0.1, -0.2, 0.05, -0.1, 0.15, 0.0, -0.05, 0.2}
	for i, n := range noise {
		x := float64(i + 1)
		s.Add(x, 5*x+n)
	}
	f := s.LinearFit()
	if math.Abs(f.Slope-5) > 0.1 {
		t.Errorf("slope = %g", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %g", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	var s Series
	if f := s.LinearFit(); f.Slope != 0 {
		t.Error("empty series fit not zero")
	}
	s.Add(1, 1)
	if f := s.LinearFit(); f.Slope != 0 {
		t.Error("single point fit not zero")
	}
	// Vertical series (all same x).
	s.Add(1, 2)
	if f := s.LinearFit(); f.Slope != 0 {
		t.Error("degenerate x fit not zero")
	}
}

func TestGrowthExponent(t *testing.T) {
	var lin, quad, nlogn Series
	for x := 1.0; x <= 64; x *= 2 {
		lin.Add(x, 7*x)
		quad.Add(x, 0.5*x*x)
		nlogn.Add(x, x*math.Log2(x+1))
	}
	if k := lin.GrowthExponent(); math.Abs(k-1) > 0.05 {
		t.Errorf("linear exponent = %g", k)
	}
	if k := quad.GrowthExponent(); math.Abs(k-2) > 0.05 {
		t.Errorf("quadratic exponent = %g", k)
	}
	if k := nlogn.GrowthExponent(); k < 1.05 || k > 1.6 {
		t.Errorf("n log n exponent = %g, expected between 1 and 2", k)
	}
}

func TestMonotonic(t *testing.T) {
	var s Series
	s.Add(1, 1)
	s.Add(2, 2)
	s.Add(3, 2)
	if !s.Monotonic() {
		t.Error("non-decreasing series reported non-monotonic")
	}
	s.Add(4, 1)
	if s.Monotonic() {
		t.Error("decreasing series reported monotonic")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:   "Timing results (in seconds)",
		Headers: []string{"Programs", "Collect", "Tx", "Restore"},
	}
	tbl.AddRow("Linpack 1000x1000", 0.85, 1.4, 0.91)
	tbl.AddRow("bitonic 100000", 250*time.Millisecond, 0.3, 0.2)
	out := tbl.String()
	for _, want := range []string{"Programs", "Linpack", "0.8500", "0.2500", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRepeat(t *testing.T) {
	calls := 0
	d := Repeat(5, func() { calls++ })
	if calls != 5 {
		t.Errorf("calls = %d", calls)
	}
	if d < 0 {
		t.Error("negative duration")
	}
}
