// Package stats provides the small measurement toolkit used by the
// experiment harness: series of (x, y) observations, least-squares fits for
// verifying the scaling claims of the paper's Section 4.2, and plain-text
// table rendering in the style of the paper's Table 1.
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Point is one observation in a series.
type Point struct {
	X float64
	Y float64
}

// Series is an ordered set of observations with a name, such as
// "data collection time vs data size".
type Series struct {
	Name   string
	Points []Point
}

// Add appends an observation.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.Points) }

// Fit holds a least-squares linear fit y = Slope*x + Intercept with its
// coefficient of determination.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the least-squares line through the series. It returns
// a zero fit for fewer than two points.
func (s *Series) LinearFit() Fit {
	n := float64(len(s.Points))
	if n < 2 {
		return Fit{}
	}
	var sx, sy, sxx, sxy float64
	for _, p := range s.Points {
		sx += p.X
		sy += p.Y
		sxx += p.X * p.X
		sxy += p.X * p.Y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for _, p := range s.Points {
		ssTot += (p.Y - meanY) * (p.Y - meanY)
		pred := slope*p.X + intercept
		ssRes += (p.Y - pred) * (p.Y - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// GrowthExponent estimates k in y ~ x^k by fitting log y against log x.
// Points with non-positive coordinates are skipped.
func (s *Series) GrowthExponent() float64 {
	var logs Series
	for _, p := range s.Points {
		if p.X > 0 && p.Y > 0 {
			logs.Add(math.Log(p.X), math.Log(p.Y))
		}
	}
	return logs.LinearFit().Slope
}

// Monotonic reports whether the Y values are non-decreasing in X order.
func (s *Series) Monotonic() bool {
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].Y < s.Points[i-1].Y {
			return false
		}
	}
	return true
}

// Table renders aligned plain-text tables, in the visual style of the
// paper's timing tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells, formatting each with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.4f", v.Seconds())
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Repeat runs f n times and returns the minimum elapsed wall time, the
// standard technique for stable small-scale timing measurements.
func Repeat(n int, f func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}
