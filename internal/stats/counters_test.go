package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestSessionCountersConcurrent(t *testing.T) {
	var c SessionCounters
	const workers = 8
	const per = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Accepted()
				if i%4 == 0 {
					c.Failed()
				} else {
					c.Restored(10)
				}
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Accepted != workers*per {
		t.Errorf("accepted = %d, want %d", s.Accepted, workers*per)
	}
	if s.Failed != workers*per/4 {
		t.Errorf("failed = %d, want %d", s.Failed, workers*per/4)
	}
	if s.Restored != workers*per*3/4 || s.Bytes != s.Restored*10 {
		t.Errorf("restored = %d bytes = %d", s.Restored, s.Bytes)
	}
	if !strings.Contains(s.String(), "restored=") {
		t.Errorf("snapshot string = %q", s.String())
	}
}
