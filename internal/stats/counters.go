package stats

import (
	"fmt"
	"sync/atomic"
)

// SessionCounters aggregates the lifecycle counters of a migration daemon:
// sessions accepted off the wire, processes successfully restored, failed
// sessions, and payload bytes restored. All methods are safe for concurrent
// use by the daemon's worker pool.
type SessionCounters struct {
	accepted atomic.Int64
	restored atomic.Int64
	failed   atomic.Int64
	bytes    atomic.Int64
}

// Accepted records one accepted connection.
func (c *SessionCounters) Accepted() { c.accepted.Add(1) }

// Restored records one successful restoration of n payload bytes.
func (c *SessionCounters) Restored(n int) {
	c.restored.Add(1)
	c.bytes.Add(int64(n))
}

// Failed records one session that ended in an error (handshake, transfer,
// or restoration).
func (c *SessionCounters) Failed() { c.failed.Add(1) }

// SessionSnapshot is a point-in-time copy of the counters.
type SessionSnapshot struct {
	Accepted int64
	Restored int64
	Failed   int64
	Bytes    int64
}

// Snapshot returns the current counter values. Each counter is read
// atomically; a snapshot taken while sessions are in flight may be mid-way
// through one session's transitions.
func (c *SessionCounters) Snapshot() SessionSnapshot {
	return SessionSnapshot{
		Accepted: c.accepted.Load(),
		Restored: c.restored.Load(),
		Failed:   c.failed.Load(),
		Bytes:    c.bytes.Load(),
	}
}

// String renders the snapshot for daemon diagnostics.
func (s SessionSnapshot) String() string {
	return fmt.Sprintf("accepted=%d restored=%d failed=%d bytes=%d",
		s.Accepted, s.Restored, s.Failed, s.Bytes)
}
