package stats

import (
	"fmt"
	"strings"
	"time"
)

// SectionMetric describes one section of a sectioned (v3) snapshot: its
// kind and identifier, the encoded body size, and the wall time spent
// encoding or decoding it.
type SectionMetric struct {
	Kind    string
	ID      uint32
	Bytes   int
	Elapsed time.Duration
}

// SectionBreakdown is the per-section cost profile of one capture or one
// restoration, in section order.
type SectionBreakdown []SectionMetric

// TotalBytes sums the body sizes of every section.
func (b SectionBreakdown) TotalBytes() int {
	n := 0
	for _, s := range b {
		n += s.Bytes
	}
	return n
}

// TotalElapsed sums the per-section wall times. For a parallel encode
// this is CPU-ish time, larger than the capture's wall time.
func (b SectionBreakdown) TotalElapsed() time.Duration {
	var d time.Duration
	for _, s := range b {
		d += s.Elapsed
	}
	return d
}

// String formats the breakdown as a compact one-line-per-section table.
func (b SectionBreakdown) String() string {
	var sb strings.Builder
	for _, s := range b {
		fmt.Fprintf(&sb, "  %-7s #%-3d %8d B  %s\n", s.Kind, s.ID, s.Bytes, s.Elapsed)
	}
	return sb.String()
}
