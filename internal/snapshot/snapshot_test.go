package snapshot

import (
	"errors"
	"testing"

	"repro/internal/xdr"
)

func sample() []Section {
	return []Section{
		{Kind: KindExec, ID: 0, Body: []byte{1, 2, 3, 4, 5}},
		{Kind: KindHeap, ID: 0, Body: []byte("heap component zero")},
		{Kind: KindHeap, ID: 1, Body: nil},
		{Kind: KindFrame, ID: 2, Body: []byte{0xff}},
		{Kind: KindGlobals, ID: 0, Body: []byte("globals")},
	}
}

func TestRoundTrip(t *testing.T) {
	in := sample()
	buf := Encode(in)
	rd, err := NewReader(xdr.NewDecoder(buf))
	if err != nil {
		t.Fatal(err)
	}
	out, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d sections, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Kind != in[i].Kind || out[i].ID != in[i].ID {
			t.Errorf("section %d header = (%v,%d), want (%v,%d)",
				i, out[i].Kind, out[i].ID, in[i].Kind, in[i].ID)
		}
		if string(out[i].Body) != string(in[i].Body) {
			t.Errorf("section %d body = %q, want %q", i, out[i].Body, in[i].Body)
		}
	}
	if rd.Remaining() != 0 {
		t.Errorf("Remaining = %d after ReadAll", rd.Remaining())
	}
}

func TestBadPrologue(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"bad magic", Encode(sample())[1:]},
		{"zero count", func() []byte {
			enc := xdr.NewEncoder(8)
			PutPrologue(enc, 0)
			return enc.Bytes()
		}()},
		{"implausible count", func() []byte {
			enc := xdr.NewEncoder(8)
			PutPrologue(enc, maxSections+1)
			return enc.Bytes()
		}()},
	}
	for _, c := range cases {
		if _, err := NewReader(xdr.NewDecoder(c.buf)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", c.name, err)
		}
	}
}

func TestCorruptBody(t *testing.T) {
	buf := Encode(sample())
	// Flip one byte inside the first section's body (prologue 8 + header
	// 16 bytes in).
	buf[8+16] ^= 0x40
	rd, err := NewReader(xdr.NewDecoder(buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum", err)
	}
}

func TestTruncated(t *testing.T) {
	buf := Encode(sample())
	for _, cut := range []int{9, 20, len(buf) / 2, len(buf) - 1} {
		rd, err := NewReader(xdr.NewDecoder(buf[:cut]))
		if err != nil {
			t.Fatalf("cut %d: prologue: %v", cut, err)
		}
		var last error
		for rd.Remaining() > 0 {
			if _, last = rd.Next(); last != nil {
				break
			}
		}
		if !errors.Is(last, ErrTruncated) && !errors.Is(last, ErrChecksum) {
			t.Errorf("cut %d: err = %v, want ErrTruncated or ErrChecksum", cut, last)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	buf := Encode([]Section{{Kind: Kind(9), ID: 0, Body: []byte("x")}})
	rd, err := NewReader(xdr.NewDecoder(buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrBadSection) {
		t.Errorf("err = %v, want ErrBadSection", err)
	}
}

func TestLengthPastEnd(t *testing.T) {
	enc := xdr.NewEncoder(64)
	PutPrologue(enc, 1)
	enc.PutUint32(uint32(KindHeap))
	enc.PutUint32(0)
	enc.PutUint32(1 << 30) // declared length far past the buffer
	enc.PutUint32(0)
	rd, err := NewReader(xdr.NewDecoder(enc.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestNextPastCount(t *testing.T) {
	buf := Encode(sample())
	rd, err := NewReader(xdr.NewDecoder(buf))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.ReadAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("Next past count: err = %v, want ErrBadSnapshot", err)
	}
}
