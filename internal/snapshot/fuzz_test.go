package snapshot

import (
	"testing"

	"repro/internal/xdr"
)

// FuzzDecodeSection feeds arbitrary bytes to the section reader. The
// decoder must reject malformed input with an error — never panic, never
// loop — and anything it accepts must survive a re-encode round trip.
func FuzzDecodeSection(f *testing.F) {
	f.Add(Encode(sample()))
	f.Add(Encode([]Section{{Kind: KindExec, ID: 0, Body: []byte{0, 0, 0, 1}}}))
	f.Add(Encode(nil)[:8])
	full := Encode(sample())
	f.Add(full[:len(full)-3]) // truncated final body
	f.Add(full[:23])          // truncated header
	bad := append([]byte(nil), full...)
	bad[30] ^= 0xa5 // body corruption -> CRC failure
	f.Add(bad)
	f.Add([]byte("MSN3"))
	// Chaos-shaped truncations: a connection killed at a frame boundary
	// leaves the receiver with a prefix of the section stream. Seed the
	// cut at every section edge and at the split points a mid-frame death
	// would leave behind.
	for i := 1; i < len(full); i += len(full)/8 + 1 {
		f.Add(full[:i])
	}
	multi := Encode(append(sample(), Section{Kind: KindHeap, ID: 7, Body: []byte("chaos")}))
	f.Add(multi[:len(multi)/2])
	f.Add(multi[:len(multi)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(xdr.NewDecoder(data))
		if err != nil {
			return
		}
		var secs []Section
		for rd.Remaining() > 0 {
			s, err := rd.Next()
			if err != nil {
				return
			}
			secs = append(secs, s)
		}
		// Accepted input: framing must be stable under re-encode.
		again, err := NewReader(xdr.NewDecoder(Encode(secs)))
		if err != nil {
			t.Fatalf("re-encode rejected: %v", err)
		}
		out, err := again.ReadAll()
		if err != nil {
			t.Fatalf("re-encode reread: %v", err)
		}
		if len(out) != len(secs) {
			t.Fatalf("re-encode: %d sections, want %d", len(out), len(secs))
		}
		for i := range secs {
			if out[i].Kind != secs[i].Kind || out[i].ID != secs[i].ID ||
				string(out[i].Body) != string(secs[i].Body) {
				t.Fatalf("re-encode: section %d differs", i)
			}
		}
	})
}
