// Package snapshot defines the sectioned snapshot format (envelope
// version 3): the captured process state is not one opaque MSRM byte
// stream but a sequence of typed, independently framed sections, each
// carrying its own length and CRC.
//
// The section kinds mirror the MSR graph partition of the paper's
// Section 3: the execution state (the chain of active invocations and
// their migration sites), one section per connected component of the
// heap subgraph, one section per stack frame, and one for the globals.
// Because every section is self-describing, a receiver can verify
// integrity per section, rebuild the MSRLT section by section, and
// account bytes and time per section — none of which the monolithic
// stream allows.
//
// # Wire format
//
//	snapshot = magic "MSN3", count u32, section*count
//	section  = kind u32, id u32, length u32, crc u32, body (padded to 4)
//
// crc is the IEEE CRC-32 of the unpadded body. Sections appear in
// deterministic order — exec, heap components (by component number),
// frames (innermost first), globals — so two captures of the same
// stopped process are byte-identical regardless of how many workers
// encoded them.
//
// This package is pure framing: it knows nothing about what the bodies
// contain (internal/collect encodes and decodes those).
package snapshot

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/xdr"
)

// Magic opens every sectioned snapshot ("MSN3").
const Magic = 0x4d534e33

// Kind identifies what a section's body holds.
type Kind uint32

// Section kinds, in their deterministic stream order.
const (
	// KindExec is the execution state: the frame chain and the
	// migration site each frame is stopped at. Always the first section.
	KindExec Kind = 1
	// KindHeap is one connected component of the heap subgraph of the
	// MSR; ID is the component number in first-visit order.
	KindHeap Kind = 2
	// KindFrame is the live data of one stack frame; ID is the frame
	// depth (1 = outermost). Frames appear innermost first.
	KindFrame Kind = 3
	// KindGlobals is the global variables' live data. Always last.
	KindGlobals Kind = 4

	kindMax = uint32(KindGlobals)
)

// String names the kind for diagnostics and metrics.
func (k Kind) String() string {
	switch k {
	case KindExec:
		return "exec"
	case KindHeap:
		return "heap"
	case KindFrame:
		return "frame"
	case KindGlobals:
		return "globals"
	}
	return fmt.Sprintf("kind%d", uint32(k))
}

// Section is one framed unit of a sectioned snapshot.
type Section struct {
	Kind Kind
	ID   uint32
	Body []byte
}

// Errors reported by the decoder. All of them mean the stream cannot be
// trusted (as opposed to a stream that is well-formed but belongs to a
// different program, which the body decoders report).
var (
	// ErrBadSnapshot is a malformed snapshot prologue: wrong magic or an
	// implausible section count.
	ErrBadSnapshot = errors.New("snapshot: malformed snapshot prologue")
	// ErrBadSection is a malformed section header: unknown kind.
	ErrBadSection = errors.New("snapshot: malformed section header")
	// ErrTruncated is a section whose declared length exceeds the data.
	ErrTruncated = errors.New("snapshot: truncated section")
	// ErrChecksum is a section body failing its CRC.
	ErrChecksum = errors.New("snapshot: section checksum mismatch")
)

// maxSections bounds the declared section count: 1 exec + 1 globals +
// 2^16 frames (the vm's own frame bound) + heap components, with room.
const maxSections = 1 << 20

// PutPrologue writes the snapshot magic and section count.
func PutPrologue(enc *xdr.Encoder, sections int) {
	enc.Put2Uint32(Magic, uint32(sections))
}

// Append frames one section onto enc: header, CRC, padded body. The
// header is written as one slab, and the body goes through WriteRaw — so
// when enc streams to a chunk sink (core.SendSectioned), a section body
// built by a pool worker flows from its encode buffer straight into the
// stream chunks, never staging through enc's own buffer.
func Append(enc *xdr.Encoder, s Section) {
	enc.Put4Uint32(uint32(s.Kind), s.ID, uint32(len(s.Body)), crc32.ChecksumIEEE(s.Body))
	enc.WriteRaw(s.Body)
}

// Encode frames a whole snapshot into a fresh buffer (prologue plus
// every section in the given order).
func Encode(sections []Section) []byte {
	size := 8
	for _, s := range sections {
		size += 16 + len(s.Body) + 3
	}
	enc := xdr.NewEncoder(size)
	PutPrologue(enc, len(sections))
	for _, s := range sections {
		Append(enc, s)
	}
	return enc.Bytes()
}

// Reader decodes a sectioned snapshot from dec, verifying each section's
// CRC as it is read.
type Reader struct {
	dec       *xdr.Decoder
	remaining int
}

// NewReader reads and validates the snapshot prologue.
func NewReader(dec *xdr.Decoder) (*Reader, error) {
	magic, err := dec.Uint32()
	if err != nil || magic != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	count, err := dec.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: missing section count", ErrBadSnapshot)
	}
	if count == 0 || count > maxSections {
		return nil, fmt.Errorf("%w: implausible section count %d", ErrBadSnapshot, count)
	}
	return &Reader{dec: dec, remaining: int(count)}, nil
}

// Remaining reports how many sections have not been read yet.
func (r *Reader) Remaining() int { return r.remaining }

// Next reads, verifies, and returns the next section. The returned body
// aliases the underlying buffer.
func (r *Reader) Next() (Section, error) {
	if r.remaining == 0 {
		return Section{}, fmt.Errorf("%w: no sections remain", ErrBadSnapshot)
	}
	kind, err := r.dec.Uint32()
	if err != nil {
		return Section{}, fmt.Errorf("%w: missing header", ErrTruncated)
	}
	if kind == 0 || kind > kindMax {
		return Section{}, fmt.Errorf("%w: unknown kind %d", ErrBadSection, kind)
	}
	id, err := r.dec.Uint32()
	if err != nil {
		return Section{}, fmt.Errorf("%w: missing header", ErrTruncated)
	}
	length, err := r.dec.Uint32()
	if err != nil {
		return Section{}, fmt.Errorf("%w: missing header", ErrTruncated)
	}
	sum, err := r.dec.Uint32()
	if err != nil {
		return Section{}, fmt.Errorf("%w: missing header", ErrTruncated)
	}
	if int64(length) > int64(r.dec.Remaining()) {
		return Section{}, fmt.Errorf("%w: %s section %d declares %d bytes, %d remain",
			ErrTruncated, Kind(kind), id, length, r.dec.Remaining())
	}
	body, err := r.dec.FixedOpaque(int(length))
	if err != nil {
		return Section{}, fmt.Errorf("%w: %s section %d body", ErrTruncated, Kind(kind), id)
	}
	if crc32.ChecksumIEEE(body) != sum {
		return Section{}, fmt.Errorf("%w: %s section %d", ErrChecksum, Kind(kind), id)
	}
	r.remaining--
	return Section{Kind: Kind(kind), ID: id, Body: body}, nil
}

// ReadAll decodes every remaining section.
func (r *Reader) ReadAll() ([]Section, error) {
	out := make([]Section, 0, r.remaining)
	for r.remaining > 0 {
		s, err := r.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
