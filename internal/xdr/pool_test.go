package xdr

import (
	"bytes"
	"errors"
	"testing"
)

// TestPooledEncoderReuse pins the pool contract: a released encoder comes
// back reset (empty stream, no sink, zero counters) and retains its grown
// buffer capacity, so steady-state captures stop allocating.
func TestPooledEncoderReuse(t *testing.T) {
	e := GetEncoder(64)
	e.SetSink(8, func([]byte) error { return errors.New("sink dies") })
	e.PutFixedOpaque(make([]byte, 4096))
	if e.SinkErr() == nil {
		t.Fatal("sink error not recorded")
	}
	grown := cap(e.buf)
	e.Release()

	// Drain the pool until we get the same encoder back (the pool is
	// per-P, so with GOMAXPROCS=1 in tests the first Get returns it; be
	// defensive and just check the invariants on whatever comes back).
	f := GetEncoder(64)
	if f.Len() != 0 || f.Calls() != 0 {
		t.Fatalf("pooled encoder not reset: len=%d calls=%d", f.Len(), f.Calls())
	}
	if f.SinkErr() != nil {
		t.Fatal("pooled encoder retains sink error")
	}
	if f.sink != nil || f.sinkThreshold != 0 {
		t.Fatal("pooled encoder retains sink")
	}
	if f == e && cap(f.buf) != grown {
		t.Fatalf("released encoder lost its buffer: cap=%d want %d", cap(f.buf), grown)
	}
	// A larger capacity request must be honored even on a recycled encoder.
	g := GetEncoder(1 << 20)
	if cap(g.buf) < 1<<20 {
		t.Fatalf("GetEncoder(1MB) returned cap %d", cap(g.buf))
	}
	f.Release()
	g.Release()
}

// TestBatchedPutsMatchScalarPuts requires the slab writers (Put2Uint32,
// Put4Uint32, PutUint32s) to produce byte-identical streams to the
// equivalent sequence of PutUint32 calls — batching is a pure call-count
// optimization, never a format change.
func TestBatchedPutsMatchScalarPuts(t *testing.T) {
	vals := []uint32{0, 1, 0xdeadbeef, 0x7fffffff, 0x80000000, 42, 7, 0xffffffff}

	var want Encoder
	for _, v := range vals {
		want.PutUint32(v)
	}

	var e2 Encoder
	for i := 0; i < len(vals); i += 2 {
		e2.Put2Uint32(vals[i], vals[i+1])
	}
	if !bytes.Equal(e2.Bytes(), want.Bytes()) {
		t.Error("Put2Uint32 stream differs from PutUint32 stream")
	}
	if e2.Calls() != len(vals)/2 {
		t.Errorf("Put2Uint32 made %d grow calls, want %d", e2.Calls(), len(vals)/2)
	}

	var e4 Encoder
	for i := 0; i < len(vals); i += 4 {
		e4.Put4Uint32(vals[i], vals[i+1], vals[i+2], vals[i+3])
	}
	if !bytes.Equal(e4.Bytes(), want.Bytes()) {
		t.Error("Put4Uint32 stream differs from PutUint32 stream")
	}
	if e4.Calls() != len(vals)/4 {
		t.Errorf("Put4Uint32 made %d grow calls, want %d", e4.Calls(), len(vals)/4)
	}

	var es Encoder
	es.PutUint32s(vals)
	if !bytes.Equal(es.Bytes(), want.Bytes()) {
		t.Error("PutUint32s stream differs from PutUint32 stream")
	}
	if es.Calls() != 1 {
		t.Errorf("PutUint32s without a sink made %d grow calls, want 1", es.Calls())
	}
}

// TestPutUint32sSegmentsUnderSink checks that a sink-attached PutUint32s
// streams in threshold-sized segments and still yields the identical
// encoded bytes.
func TestPutUint32sSegmentsUnderSink(t *testing.T) {
	vals := make([]uint32, 100)
	for i := range vals {
		vals[i] = uint32(i * 2654435761)
	}
	var want Encoder
	want.PutUint32s(vals)

	var got bytes.Buffer
	var flushes int
	var e Encoder
	e.SetSink(64, func(p []byte) error {
		flushes++
		got.Write(p)
		return nil
	})
	e.PutUint32s(vals)
	if err := e.FlushSink(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("sink-segmented PutUint32s differs from buffered encoding")
	}
	if flushes < 2 {
		t.Errorf("400 bytes over a 64-byte threshold flushed %d times, want several", flushes)
	}
	if e.Len() != 4*len(vals) {
		t.Errorf("Len = %d, want %d", e.Len(), 4*len(vals))
	}
}

// TestUint32x3x4RoundTrip pins the bulk decoders against the scalar one,
// including the short-buffer error on truncation.
func TestUint32x3x4RoundTrip(t *testing.T) {
	var e Encoder
	e.Put4Uint32(10, 20, 30, 40)
	e.Put4Uint32(0xaabbccdd, 0, 0xffffffff, 1)

	d := NewDecoder(e.Bytes())
	a, b, c, err := d.Uint32x3()
	if err != nil || a != 10 || b != 20 || c != 30 {
		t.Fatalf("Uint32x3 = %d,%d,%d (%v)", a, b, c, err)
	}
	w, x, y, z, err := d.Uint32x4()
	if err != nil || w != 40 || x != 0xaabbccdd || y != 0 || z != 0xffffffff {
		t.Fatalf("Uint32x4 = %d,%d,%d,%d (%v)", w, x, y, z, err)
	}
	if v, err := d.Uint32(); err != nil || v != 1 {
		t.Fatalf("trailing Uint32 = %d (%v)", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}

	short := NewDecoder(e.Bytes()[:10])
	if _, _, _, err := short.Uint32x3(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Uint32x3 on 10 bytes: %v, want ErrShortBuffer", err)
	}
	if _, _, _, _, err := short.Uint32x4(); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("Uint32x4 on 10 bytes: %v, want ErrShortBuffer", err)
	}
}

// TestWriteRawMatchesPutFixedOpaque requires the zero-copy raw path to be
// byte-identical to PutFixedOpaque for every padding residue, with and
// without a sink.
func TestWriteRawMatchesPutFixedOpaque(t *testing.T) {
	for n := 0; n <= 9; n++ {
		p := make([]byte, n)
		for i := range p {
			p[i] = byte(0xA0 + i)
		}
		var want Encoder
		want.PutUint32(7)
		want.PutFixedOpaque(p)
		want.PutUint32(9)

		// Buffered path.
		var e Encoder
		e.PutUint32(7)
		e.WriteRaw(p)
		e.PutUint32(9)
		if !bytes.Equal(e.Bytes(), want.Bytes()) {
			t.Errorf("n=%d: buffered WriteRaw differs from PutFixedOpaque", n)
		}

		// Sink path, with a threshold small enough to segment the body.
		var got bytes.Buffer
		var s Encoder
		s.SetSink(4, func(b []byte) error {
			got.Write(b)
			return nil
		})
		s.PutUint32(7)
		s.WriteRaw(p)
		s.PutUint32(9)
		if err := s.FlushSink(); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("n=%d: sink WriteRaw differs from PutFixedOpaque", n)
		}
		if s.Len() != want.Len() {
			t.Errorf("n=%d: sink WriteRaw Len = %d, want %d", n, s.Len(), want.Len())
		}
	}
}

// TestWriteRawSinkDoesNotRetain pins the ownership contract of the
// zero-copy path: the sink sees the caller's bytes during the call, and
// the caller is free to reuse the slice the moment WriteRaw returns —
// anything the sink kept must have been copied by the sink itself.
func TestWriteRawSinkDoesNotRetain(t *testing.T) {
	var copied bytes.Buffer
	var e Encoder
	e.SetSink(8, func(p []byte) error {
		copied.Write(p) // a correct sink copies before returning
		return nil
	})
	p := bytes.Repeat([]byte{0x55}, 32)
	e.WriteRaw(p)
	for i := range p {
		p[i] = 0xEE // caller reuses its buffer immediately
	}
	if err := e.FlushSink(); err != nil {
		t.Fatal(err)
	}
	if want := bytes.Repeat([]byte{0x55}, 32); !bytes.Equal(copied.Bytes(), want) {
		t.Fatal("sink-side copy was corrupted by caller reuse: the sink must have been handed a live alias after the call returned")
	}
}

// TestWriteRawAfterSinkError checks a dead sink stays dead: WriteRaw keeps
// accounting (Len) but drops the bytes instead of growing the buffer.
func TestWriteRawAfterSinkError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	var e Encoder
	e.SetSink(4, func(p []byte) error {
		calls++
		return boom
	})
	e.WriteRaw(bytes.Repeat([]byte{1}, 16))
	if calls != 1 {
		t.Errorf("sink called %d times after its first error, want 1", calls)
	}
	if !errors.Is(e.FlushSink(), boom) {
		t.Errorf("FlushSink = %v, want the sink error", e.FlushSink())
	}
	if e.Len() != 16 {
		t.Errorf("Len = %d after dead-sink WriteRaw, want 16", e.Len())
	}
}
