package xdr

import "testing"

func BenchmarkPutFloat64s(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	e := NewEncoder(8 * len(vals))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutFloat64s(vals)
	}
}

func BenchmarkPutFloat64Loop(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	e := NewEncoder(8 * len(vals))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for _, v := range vals {
			e.PutFloat64(v)
		}
	}
}

func BenchmarkDecodeFloat64s(b *testing.B) {
	vals := make([]float64, 1024)
	e := NewEncoder(8 * len(vals))
	e.PutFloat64s(vals)
	b.SetBytes(int64(e.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(e.Bytes())
		if _, err := d.Float64s(len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPooledEncoderSteadyState is the allocation guard on the
// pooled capture path: a full get/encode/release cycle shaped like one
// section encode (directory entries as Put4Uint32 slabs plus an opaque
// body). At steady state — the buffer grown on the first iterations and
// recycled through the pool — this must run at 0 allocs/op; CI's bench
// smoke step fails if an allocation creeps in.
func BenchmarkPooledEncoderSteadyState(b *testing.B) {
	body := make([]byte, 16*1024)
	b.SetBytes(int64(len(body) + 64*16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := GetEncoder(32 * 1024)
		for j := 0; j < 64; j++ {
			e.Put4Uint32(uint32(j), 1, 2, 3)
		}
		e.WriteRaw(body)
		if e.Len() == 0 {
			b.Fatal("empty stream")
		}
		e.Release()
	}
}

// BenchmarkPooledEncoderRefs measures the batched pointer-reference shape
// (thousands of 4-word records per capture) on a pooled encoder. Also a
// 0 allocs/op guard at steady state.
func BenchmarkPooledEncoderRefs(b *testing.B) {
	const refs = 4096
	b.SetBytes(int64(16 * refs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := GetEncoder(16 * refs)
		for j := 0; j < refs; j++ {
			e.Put4Uint32(2, uint32(j), 0, uint32(j)%7)
		}
		e.Release()
	}
}

func BenchmarkPutString(b *testing.B) {
	s := "a moderately sized identifier string"
	var e Encoder
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutString(s)
	}
}
