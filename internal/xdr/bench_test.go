package xdr

import "testing"

func BenchmarkPutFloat64s(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	e := NewEncoder(8 * len(vals))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutFloat64s(vals)
	}
}

func BenchmarkPutFloat64Loop(b *testing.B) {
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	e := NewEncoder(8 * len(vals))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		for _, v := range vals {
			e.PutFloat64(v)
		}
	}
}

func BenchmarkDecodeFloat64s(b *testing.B) {
	vals := make([]float64, 1024)
	e := NewEncoder(8 * len(vals))
	e.PutFloat64s(vals)
	b.SetBytes(int64(e.Len()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(e.Bytes())
		if _, err := d.Float64s(len(vals)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutString(b *testing.B) {
	s := "a moderately sized identifier string"
	var e Encoder
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.PutString(s)
	}
}
