package xdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUint32WireFormat(t *testing.T) {
	var e Encoder
	e.PutUint32(0x01020304)
	if !bytes.Equal(e.Bytes(), []byte{1, 2, 3, 4}) {
		t.Errorf("wire bytes = % x, want 01 02 03 04", e.Bytes())
	}
}

func TestInt32Negative(t *testing.T) {
	var e Encoder
	e.PutInt32(-1)
	if !bytes.Equal(e.Bytes(), []byte{0xff, 0xff, 0xff, 0xff}) {
		t.Errorf("wire bytes = % x", e.Bytes())
	}
	d := NewDecoder(e.Bytes())
	v, err := d.Int32()
	if err != nil || v != -1 {
		t.Errorf("decoded %d, %v", v, err)
	}
}

func TestScalarRoundTrips(t *testing.T) {
	var e Encoder
	e.PutInt32(-42)
	e.PutUint32(42)
	e.PutInt64(-1 << 40)
	e.PutUint64(1 << 40)
	e.PutBool(true)
	e.PutBool(false)
	e.PutFloat32(1.5)
	e.PutFloat64(math.Pi)

	d := NewDecoder(e.Bytes())
	if v, _ := d.Int32(); v != -42 {
		t.Errorf("Int32 = %d", v)
	}
	if v, _ := d.Uint32(); v != 42 {
		t.Errorf("Uint32 = %d", v)
	}
	if v, _ := d.Int64(); v != -1<<40 {
		t.Errorf("Int64 = %d", v)
	}
	if v, _ := d.Uint64(); v != 1<<40 {
		t.Errorf("Uint64 = %d", v)
	}
	if v, _ := d.Bool(); !v {
		t.Error("Bool = false, want true")
	}
	if v, _ := d.Bool(); v {
		t.Error("Bool = true, want false")
	}
	if v, _ := d.Float32(); v != 1.5 {
		t.Errorf("Float32 = %g", v)
	}
	if v, _ := d.Float64(); v != math.Pi {
		t.Errorf("Float64 = %g", v)
	}
	if d.Remaining() != 0 {
		t.Errorf("remaining = %d, want 0", d.Remaining())
	}
}

func TestStringPadding(t *testing.T) {
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		var e Encoder
		e.PutString(s)
		if e.Len()%4 != 0 {
			t.Errorf("string %q: stream length %d not a multiple of 4", s, e.Len())
		}
		d := NewDecoder(e.Bytes())
		got, err := d.String()
		if err != nil || got != s {
			t.Errorf("string %q round trip: %q, %v", s, got, err)
		}
		if d.Remaining() != 0 {
			t.Errorf("string %q: %d bytes remain", s, d.Remaining())
		}
	}
}

func TestOpaque(t *testing.T) {
	payload := []byte{9, 8, 7, 6, 5}
	var e Encoder
	e.PutOpaque(payload)
	e.PutUint32(0xcafe) // guard value after the padding
	d := NewDecoder(e.Bytes())
	got, err := d.Opaque()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("opaque round trip: % x, %v", got, err)
	}
	if v, _ := d.Uint32(); v != 0xcafe {
		t.Errorf("guard after padding = %#x", v)
	}
}

func TestFixedOpaque(t *testing.T) {
	var e Encoder
	e.PutFixedOpaque([]byte{1, 2, 3})
	if e.Len() != 4 {
		t.Errorf("fixed opaque of 3 bytes encoded as %d bytes, want 4", e.Len())
	}
	d := NewDecoder(e.Bytes())
	got, err := d.FixedOpaque(3)
	if err != nil || !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("fixed opaque = % x, %v", got, err)
	}
	if d.Remaining() != 0 {
		t.Error("padding not consumed")
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Uint32(); err != ErrShortBuffer {
		t.Errorf("Uint32 on short buffer: %v", err)
	}
	d = NewDecoder([]byte{0, 0, 0, 9, 'h', 'i'})
	if _, err := d.Opaque(); err != ErrLength {
		t.Errorf("Opaque with oversized length: %v", err)
	}
	d = NewDecoder(nil)
	if _, err := d.Float64(); err != ErrShortBuffer {
		t.Errorf("Float64 on empty buffer: %v", err)
	}
}

func TestBoolStrict(t *testing.T) {
	d := NewDecoder([]byte{0, 0, 0, 2})
	if _, err := d.Bool(); err == nil {
		t.Error("Bool accepted invalid enum value 2")
	}
}

func TestFloat64sBatch(t *testing.T) {
	vals := []float64{0, 1, -1, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	var e Encoder
	e.PutFloat64s(vals)
	if e.Len() != 8*len(vals) {
		t.Fatalf("batch length = %d", e.Len())
	}
	// The batch encoding must be identical to element-wise encoding.
	var ref Encoder
	for _, v := range vals {
		ref.PutFloat64(v)
	}
	if !bytes.Equal(e.Bytes(), ref.Bytes()) {
		t.Error("batch encoding differs from element-wise encoding")
	}
	d := NewDecoder(e.Bytes())
	got, err := d.Float64s(len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Errorf("element %d: %g != %g", i, got[i], vals[i])
		}
	}
}

func TestEncoderReset(t *testing.T) {
	var e Encoder
	e.PutUint32(1)
	e.Reset()
	if e.Len() != 0 {
		t.Error("Reset did not clear the buffer")
	}
	e.PutUint32(2)
	d := NewDecoder(e.Bytes())
	if v, _ := d.Uint32(); v != 2 {
		t.Errorf("after reset, decoded %d", v)
	}
}

func TestGrowTake(t *testing.T) {
	var e Encoder
	copy(e.Grow(4), []byte{1, 2, 3, 4})
	d := NewDecoder(e.Bytes())
	b, err := d.Take(4)
	if err != nil || !bytes.Equal(b, []byte{1, 2, 3, 4}) {
		t.Errorf("Grow/Take: % x, %v", b, err)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(i32 int32, u32 uint32, i64 int64, u64 uint64, f64 float64, s string, op []byte) bool {
		var e Encoder
		e.PutInt32(i32)
		e.PutUint32(u32)
		e.PutInt64(i64)
		e.PutUint64(u64)
		e.PutFloat64(f64)
		e.PutString(s)
		e.PutOpaque(op)
		d := NewDecoder(e.Bytes())
		gi32, _ := d.Int32()
		gu32, _ := d.Uint32()
		gi64, _ := d.Int64()
		gu64, _ := d.Uint64()
		gf64, _ := d.Float64()
		gs, _ := d.String()
		gop, err := d.Opaque()
		if err != nil {
			return false
		}
		if math.IsNaN(f64) {
			if !math.IsNaN(gf64) {
				return false
			}
		} else if gf64 != f64 {
			return false
		}
		return gi32 == i32 && gu32 == u32 && gi64 == i64 && gu64 == u64 &&
			gs == s && bytes.Equal(gop, op) && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickAlignmentInvariant(t *testing.T) {
	// Property: after any sequence of Put operations the stream length is
	// a multiple of four (XDR's fundamental alignment invariant).
	f := func(ops []byte, s string, op []byte) bool {
		var e Encoder
		for _, o := range ops {
			switch o % 5 {
			case 0:
				e.PutUint32(uint32(o))
			case 1:
				e.PutUint64(uint64(o))
			case 2:
				e.PutString(s)
			case 3:
				e.PutOpaque(op)
			case 4:
				e.PutFloat64(float64(o))
			}
		}
		return e.Len()%4 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncoderSinkStreamsPrefixes(t *testing.T) {
	var streamed []byte
	var calls int
	e := NewEncoder(0)
	e.SetSink(64, func(p []byte) error {
		calls++
		streamed = append(streamed, p...)
		return nil
	})
	want := NewEncoder(0)
	for i := 0; i < 100; i++ {
		e.PutUint32(uint32(i))
		e.PutString("chunked")
		want.PutUint32(uint32(i))
		want.PutString("chunked")
	}
	if err := e.FlushSink(); err != nil {
		t.Fatal(err)
	}
	if calls < 2 {
		t.Errorf("sink called %d times, expected several flushes", calls)
	}
	if e.Len() != want.Len() {
		t.Errorf("Len = %d, want %d", e.Len(), want.Len())
	}
	if !bytes.Equal(streamed, want.Bytes()) {
		t.Error("streamed bytes differ from monolithic encoding")
	}
	if len(e.Bytes()) != 0 {
		t.Errorf("%d bytes left buffered after FlushSink", len(e.Bytes()))
	}
}

func TestEncoderSinkErrorBoundsBuffer(t *testing.T) {
	sinkErr := errors.New("wire died")
	e := NewEncoder(0)
	e.SetSink(32, func(p []byte) error { return sinkErr })
	for i := 0; i < 10000; i++ {
		e.PutUint64(uint64(i))
	}
	if err := e.FlushSink(); err != sinkErr {
		t.Errorf("FlushSink = %v, want sink error", err)
	}
	if e.SinkErr() != sinkErr {
		t.Errorf("SinkErr = %v", e.SinkErr())
	}
	// After the sink fails, completed prefixes are dropped, not retained.
	if len(e.Bytes()) > 1024 {
		t.Errorf("buffer grew to %d bytes after sink error", len(e.Bytes()))
	}
	if e.Len() != 10000*8 {
		t.Errorf("Len = %d, want %d", e.Len(), 10000*8)
	}
}

func TestEncoderSinkSegmentsLargeBlocks(t *testing.T) {
	// One block much larger than the threshold must still stream out in
	// roughly threshold-sized pieces, byte-identical to the monolithic
	// encoding — the linpack-matrix case of pipelined collection.
	doubles := make([]float64, 4096) // 32 KiB
	for i := range doubles {
		doubles[i] = float64(i) * 1.5
	}
	opaque := make([]byte, 30000+3) // forces padding on the final segment
	for i := range opaque {
		opaque[i] = byte(i)
	}

	var streamed []byte
	var calls, maxFlush int
	e := NewEncoder(0)
	e.SetSink(1024, func(p []byte) error {
		calls++
		if len(p) > maxFlush {
			maxFlush = len(p)
		}
		streamed = append(streamed, p...)
		return nil
	})
	e.PutFloat64s(doubles)
	e.PutOpaque(opaque)
	if err := e.FlushSink(); err != nil {
		t.Fatal(err)
	}

	want := NewEncoder(0)
	want.PutFloat64s(doubles)
	want.PutOpaque(opaque)
	if !bytes.Equal(streamed, want.Bytes()) {
		t.Fatal("segmented streaming differs from monolithic encoding")
	}
	if calls < 20 {
		t.Errorf("sink called %d times; large blocks not segmented", calls)
	}
	if maxFlush > 2*1024+8 {
		t.Errorf("largest flush was %d bytes for a 1024-byte threshold", maxFlush)
	}
}
