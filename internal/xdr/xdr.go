// Package xdr implements the subset of Sun's External Data Representation
// (RFC 1014 / RFC 1832) used as the machine-independent wire format for
// primitive values.
//
// The paper's layer-2 routines translate primitive data values of a specific
// architecture into a machine-independent format; this package is that
// layer, written from scratch on the standard library. All quantities are
// encoded big-endian and padded to a multiple of four bytes, exactly as XDR
// specifies, so a stream produced on a little-endian source decodes
// identically on a big-endian destination.
package xdr

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrShortBuffer is returned when a decode runs past the end of the stream.
var ErrShortBuffer = errors.New("xdr: unexpected end of stream")

// ErrLength is returned when a decoded length prefix is implausible
// (negative or beyond the remaining stream).
var ErrLength = errors.New("xdr: invalid length")

// Encoder appends XDR-encoded values to an internal buffer.
// The zero value is ready to use.
//
// An encoder can optionally stream: SetSink attaches a function that
// receives completed prefixes of the stream whenever the buffer passes a
// threshold, so a producer (the MSRM collector) overlaps encoding with
// transmission instead of materializing the whole stream first.
type Encoder struct {
	buf []byte

	// sink, when non-nil, receives completed prefixes of the stream.
	sink          func([]byte) error
	sinkThreshold int
	sinkErr       error
	// flushed counts bytes already handed to the sink.
	flushed int
	// calls counts Put/Grow operations, the encoder's observability
	// counter. A plain int incremented on the grow path: the owner of the
	// encoder flushes it to a metrics registry in bulk, so the hot path
	// never touches an atomic.
	calls int
}

// NewEncoder returns an encoder whose buffer has the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// encPool recycles encoders (and, through them, their grown buffers)
// across captures. Buffers reach steady-state capacity after the first
// few uses, so the hot path stops allocating.
var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// GetEncoder returns a pooled encoder whose buffer has at least the given
// capacity. The encoder is reset and has no sink.
//
// Ownership contract: every slice obtained from a pooled encoder —
// Bytes(), Grow() reservations, and slices handed to a sink — aliases the
// encoder's internal buffer and dies at Release. A caller that needs the
// encoded stream beyond Release must copy it first.
func GetEncoder(capacity int) *Encoder {
	e := encPool.Get().(*Encoder)
	if cap(e.buf) < capacity {
		e.buf = make([]byte, 0, capacity)
	}
	return e
}

// Release resets the encoder and returns it to the pool, retaining its
// buffer capacity for the next GetEncoder. The caller must not touch the
// encoder, or any slice it handed out, after Release.
func (e *Encoder) Release() {
	e.sink = nil
	e.sinkThreshold = 0
	e.Reset()
	encPool.Put(e)
}

// SetSink attaches fn to receive completed prefixes of the encoded stream.
// Whenever a Put begins with at least threshold buffered bytes, the buffer
// is passed to fn and reset; the slice is only valid for the duration of
// the call. Call FlushSink after the last Put to deliver the tail. Once fn
// returns an error the sink is abandoned: further completed prefixes are
// discarded (keeping memory bounded) and the error is reported by
// FlushSink and SinkErr.
func (e *Encoder) SetSink(threshold int, fn func([]byte) error) {
	if threshold <= 0 {
		threshold = 32 * 1024
	}
	e.sink = fn
	e.sinkThreshold = threshold
}

// SinkErr returns the first error returned by the sink, if any.
func (e *Encoder) SinkErr() error { return e.sinkErr }

// FlushSink delivers any buffered tail to the sink and returns the first
// sink error. It is a no-op on an encoder without a sink.
func (e *Encoder) FlushSink() error {
	if e.sink != nil && len(e.buf) > 0 {
		e.emit()
	}
	return e.sinkErr
}

// emit hands the current buffer to the sink and resets it. Bytes handed
// over after a sink error are dropped so a dead sink does not grow the
// buffer without bound.
func (e *Encoder) emit() {
	if e.sinkErr == nil {
		if err := e.sink(e.buf); err != nil {
			e.sinkErr = err
		}
	}
	e.flushed += len(e.buf)
	e.buf = e.buf[:0]
}

// Bytes returns the encoded stream not yet handed to a sink. The slice
// aliases the encoder's internal buffer and is valid until the next Put
// call. For an encoder without a sink this is the whole stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the total number of encoded bytes, including any already
// delivered to a sink.
func (e *Encoder) Len() int { return e.flushed + len(e.buf) }

// Reset discards the encoded stream, retaining the buffer and sink.
func (e *Encoder) Reset() {
	e.buf = e.buf[:0]
	e.flushed = 0
	e.sinkErr = nil
	e.calls = 0
}

// Calls returns the number of encode operations (Put/Grow calls) performed
// since creation or Reset — the call counter the obs layer aggregates.
func (e *Encoder) Calls() int { return e.calls }

func (e *Encoder) grow(n int) []byte {
	e.calls++
	// All bytes currently buffered were filled by completed Put/Grow calls
	// (a Grow caller fills its slice before the next encoder call), so the
	// prefix is complete and may be streamed out before appending.
	if e.sink != nil && len(e.buf) >= e.sinkThreshold {
		e.emit()
	}
	l := len(e.buf)
	if l+n <= cap(e.buf) {
		e.buf = e.buf[:l+n]
	} else {
		nb := make([]byte, l+n, (l+n)*2)
		copy(nb, e.buf)
		e.buf = nb
	}
	return e.buf[l : l+n]
}

// PutUint32 encodes a 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	b := e.grow(4)
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// PutInt32 encodes a 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// Put2Uint32 encodes two 32-bit unsigned integers in one slab write —
// one grow instead of two, for fixed small records on the hot path.
func (e *Encoder) Put2Uint32(a, b uint32) {
	s := e.grow(8)
	s[0] = byte(a >> 24)
	s[1] = byte(a >> 16)
	s[2] = byte(a >> 8)
	s[3] = byte(a)
	s[4] = byte(b >> 24)
	s[5] = byte(b >> 16)
	s[6] = byte(b >> 8)
	s[7] = byte(b)
}

// Put4Uint32 encodes four 32-bit unsigned integers in one slab write.
// This is the shape of a pointer reference (segment, major, minor,
// ordinal) and of a section-directory entry, the two records the
// collector emits thousands of per capture; batching them collapses four
// grow calls into one.
func (e *Encoder) Put4Uint32(a, b, c, d uint32) {
	s := e.grow(16)
	s[0] = byte(a >> 24)
	s[1] = byte(a >> 16)
	s[2] = byte(a >> 8)
	s[3] = byte(a)
	s[4] = byte(b >> 24)
	s[5] = byte(b >> 16)
	s[6] = byte(b >> 8)
	s[7] = byte(b)
	s[8] = byte(c >> 24)
	s[9] = byte(c >> 16)
	s[10] = byte(c >> 8)
	s[11] = byte(c)
	s[12] = byte(d >> 24)
	s[13] = byte(d >> 16)
	s[14] = byte(d >> 8)
	s[15] = byte(d)
}

// PutUint32s encodes a slice of 32-bit unsigned integers without a length
// prefix (an XDR fixed-length array), in sink-threshold segments like
// PutFloat64s so large arrays still stream incrementally.
func (e *Encoder) PutUint32s(vs []uint32) {
	for len(vs) > 0 {
		seg := len(vs)
		if e.sink != nil {
			if max := e.sinkThreshold / 4; max >= 1 && seg > max {
				seg = max
			}
		}
		b := e.grow(4 * seg)
		for i, v := range vs[:seg] {
			off := 4 * i
			b[off+0] = byte(v >> 24)
			b[off+1] = byte(v >> 16)
			b[off+2] = byte(v >> 8)
			b[off+3] = byte(v)
		}
		vs = vs[seg:]
	}
}

// PutUint64 encodes a 64-bit unsigned integer (XDR unsigned hyper).
func (e *Encoder) PutUint64(v uint64) {
	b := e.grow(8)
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// PutInt64 encodes a 64-bit signed integer (XDR hyper).
func (e *Encoder) PutInt64(v int64) { e.PutUint64(uint64(v)) }

// PutBool encodes a boolean as an XDR enum with values 0 and 1.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFloat32 encodes an IEEE 754 single-precision value.
func (e *Encoder) PutFloat32(v float32) { e.PutUint32(math.Float32bits(v)) }

// PutFloat64 encodes an IEEE 754 double-precision value.
func (e *Encoder) PutFloat64(v float64) { e.PutUint64(math.Float64bits(v)) }

// PutFixedOpaque encodes fixed-length opaque data: the bytes followed by
// zero padding to a four-byte boundary. The decoder must know the length.
// With a sink attached the block is appended in threshold-sized segments,
// so even one block much larger than the chunk size streams out
// incrementally; the encoded bytes are identical either way.
func (e *Encoder) PutFixedOpaque(p []byte) {
	total := (len(p) + 3) &^ 3
	off := 0
	for off < total {
		seg := total - off
		if e.sink != nil && e.sinkThreshold >= 4 && seg > e.sinkThreshold {
			seg = e.sinkThreshold &^ 3
		}
		b := e.grow(seg)
		var m int
		if off < len(p) {
			m = copy(b, p[off:])
		}
		for i := m; i < seg; i++ {
			b[i] = 0
		}
		off += seg
	}
}

// WriteRaw appends fixed-length opaque data like PutFixedOpaque, but when
// a sink is attached the caller's bytes are handed to the sink directly —
// the zero-copy framing path: a section body built by a pool worker
// reaches the chunk writer without an intermediate copy into this
// encoder's buffer. The encoded stream is byte-identical either way.
//
// Ownership: the sink receives p (in threshold-sized segments) under the
// standard sink contract — valid only for the duration of the call, never
// retained. Without a sink the bytes are copied, so the caller keeps
// ownership of p in every case.
func (e *Encoder) WriteRaw(p []byte) {
	if e.sink == nil {
		e.PutFixedOpaque(p)
		return
	}
	// Flush the buffered prefix first so the raw bytes splice into the
	// stream in order.
	if len(e.buf) > 0 {
		e.emit()
	}
	th := e.sinkThreshold
	if th < 4 {
		th = 32 * 1024
	}
	for off := 0; off < len(p); off += th {
		end := off + th
		if end > len(p) {
			end = len(p)
		}
		e.calls++
		if e.sinkErr == nil {
			if err := e.sink(p[off:end]); err != nil {
				e.sinkErr = err
			}
		}
		e.flushed += end - off
	}
	if pad := (4 - len(p)&3) & 3; pad > 0 {
		b := e.grow(pad)
		for i := range b {
			b[i] = 0
		}
	}
}

// PutOpaque encodes variable-length opaque data: a length prefix followed
// by the bytes and padding.
func (e *Encoder) PutOpaque(p []byte) {
	e.PutUint32(uint32(len(p)))
	e.PutFixedOpaque(p)
}

// PutString encodes a string as XDR variable-length opaque data.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	n := (len(s) + 3) &^ 3
	b := e.grow(n)
	copy(b, s)
	for i := len(s); i < n; i++ {
		b[i] = 0
	}
}

// PutFloat64s encodes a slice of doubles without a length prefix
// (an XDR fixed-length array). This is the hot path when collecting
// large numeric blocks such as the linpack matrices. With a sink attached
// the array is appended in threshold-sized segments so it streams out
// incrementally; the encoded bytes are identical either way.
func (e *Encoder) PutFloat64s(vs []float64) {
	for len(vs) > 0 {
		seg := len(vs)
		if e.sink != nil {
			if max := e.sinkThreshold / 8; max >= 1 && seg > max {
				seg = max
			}
		}
		b := e.grow(8 * seg)
		for i, v := range vs[:seg] {
			bits := math.Float64bits(v)
			off := 8 * i
			b[off+0] = byte(bits >> 56)
			b[off+1] = byte(bits >> 48)
			b[off+2] = byte(bits >> 40)
			b[off+3] = byte(bits >> 32)
			b[off+4] = byte(bits >> 24)
			b[off+5] = byte(bits >> 16)
			b[off+6] = byte(bits >> 8)
			b[off+7] = byte(bits)
		}
		vs = vs[seg:]
	}
}

// Grow exposes raw append space of exactly n bytes for callers that encode
// runs of scalars directly (the type-specific saving functions). The
// caller must fill all n bytes and keep the stream four-byte aligned.
func (e *Encoder) Grow(n int) []byte { return e.grow(n) }

// SegmentHint returns the sink flush threshold when a sink is attached, or
// 0 without one. Callers reserving large runs through Grow should bound
// each reservation by this value so the stream keeps flushing; a single
// oversized reservation cannot be delivered until it is completely filled.
func (e *Encoder) SegmentHint() int {
	if e.sink == nil {
		return 0
	}
	return e.sinkThreshold
}

// Decoder reads XDR-encoded values from a byte slice.
type Decoder struct {
	buf []byte
	off int
	// calls counts decode operations (take calls); like Encoder.calls it
	// is a plain int the owner flushes to a registry in bulk.
	calls int
}

// NewDecoder returns a decoder reading from p. The decoder does not copy p.
func NewDecoder(p []byte) *Decoder { return &Decoder{buf: p} }

// Offset returns the number of bytes consumed so far.
func (d *Decoder) Offset() int { return d.off }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Calls returns the number of decode operations performed so far — the
// call counter the obs layer aggregates.
func (d *Decoder) Calls() int { return d.calls }

// take consumes n bytes from the stream.
func (d *Decoder) take(n int) ([]byte, error) {
	d.calls++
	if n < 0 || d.off+n > len(d.buf) {
		return nil, ErrShortBuffer
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]), nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint32x3 decodes three 32-bit unsigned integers in one take — the tail
// of a non-null pointer reference after its segment word.
func (d *Decoder) Uint32x3() (a, b, c uint32, err error) {
	s, err := d.take(12)
	if err != nil {
		return 0, 0, 0, err
	}
	a = uint32(s[0])<<24 | uint32(s[1])<<16 | uint32(s[2])<<8 | uint32(s[3])
	b = uint32(s[4])<<24 | uint32(s[5])<<16 | uint32(s[6])<<8 | uint32(s[7])
	c = uint32(s[8])<<24 | uint32(s[9])<<16 | uint32(s[10])<<8 | uint32(s[11])
	return a, b, c, nil
}

// Uint32x4 decodes four 32-bit unsigned integers in one take — the shape
// of a section-directory entry.
func (d *Decoder) Uint32x4() (a, b, c, e uint32, err error) {
	s, err := d.take(16)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	a = uint32(s[0])<<24 | uint32(s[1])<<16 | uint32(s[2])<<8 | uint32(s[3])
	b = uint32(s[4])<<24 | uint32(s[5])<<16 | uint32(s[6])<<8 | uint32(s[7])
	c = uint32(s[8])<<24 | uint32(s[9])<<16 | uint32(s[10])<<8 | uint32(s[11])
	e = uint32(s[12])<<24 | uint32(s[13])<<16 | uint32(s[14])<<8 | uint32(s[15])
	return a, b, c, e, nil
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7]), nil
}

// Int64 decodes a 64-bit signed integer.
func (d *Decoder) Int64() (int64, error) {
	v, err := d.Uint64()
	return int64(v), err
}

// Bool decodes an XDR boolean. Any nonzero value is an error, matching the
// strictness of the XDR specification for enums.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("xdr: invalid boolean value %d", v)
}

// Float32 decodes an IEEE 754 single-precision value.
func (d *Decoder) Float32() (float32, error) {
	v, err := d.Uint32()
	return math.Float32frombits(v), err
}

// Float64 decodes an IEEE 754 double-precision value.
func (d *Decoder) Float64() (float64, error) {
	v, err := d.Uint64()
	return math.Float64frombits(v), err
}

// FixedOpaque decodes n bytes of fixed-length opaque data, consuming the
// padding. The returned slice aliases the stream.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	padded := (n + 3) &^ 3
	b, err := d.take(padded)
	if err != nil {
		return nil, err
	}
	return b[:n], nil
}

// Opaque decodes variable-length opaque data.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > d.Remaining() {
		return nil, ErrLength
	}
	return d.FixedOpaque(int(n))
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	b, err := d.Opaque()
	return string(b), err
}

// Float64s decodes n doubles encoded as a fixed-length array.
func (d *Decoder) Float64s(n int) ([]float64, error) {
	b, err := d.take(8 * n)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		off := 8 * i
		bits := uint64(b[off+0])<<56 | uint64(b[off+1])<<48 | uint64(b[off+2])<<40 |
			uint64(b[off+3])<<32 | uint64(b[off+4])<<24 | uint64(b[off+5])<<16 |
			uint64(b[off+6])<<8 | uint64(b[off+7])
		out[i] = math.Float64frombits(bits)
	}
	return out, nil
}

// Take exposes n raw stream bytes for callers that decode runs of scalars
// directly (the type-specific restoring functions).
func (d *Decoder) Take(n int) ([]byte, error) { return d.take(n) }
