package vm

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestMonoCaptureClearsSectionMetrics pins the SectionCaptureMetrics
// contract: the breakdown describes the LAST capture, so a monolithic
// capture after a sectioned one must leave it empty rather than serving
// the stale sectioned profile.
func TestMonoCaptureClearsSectionMetrics(t *testing.T) {
	p, _, _, _ := stopSectioned(t, workload.ShardedListsSource(4, 30))
	if _, err := p.CaptureSections(2); err != nil {
		t.Fatal(err)
	}
	if len(p.SectionCaptureMetrics()) == 0 {
		t.Fatal("sectioned capture produced no breakdown")
	}
	if p.SectionWorkersEngaged() == 0 {
		t.Fatal("sectioned capture engaged no workers")
	}
	if _, err := p.Recapture(); err != nil {
		t.Fatal(err)
	}
	if got := p.SectionCaptureMetrics(); len(got) != 0 {
		t.Errorf("monolithic capture left %d stale section entries", len(got))
	}
	if got := p.SectionWorkersEngaged(); got != 0 {
		t.Errorf("monolithic capture left stale worker count %d", got)
	}
}

// TestCaptureSpans checks the phase-span shape of both capture formats:
// a sectioned capture records collect/partition/encode with per-section
// children, a monolithic capture records a bare collect span.
func TestCaptureSpans(t *testing.T) {
	p, _, _, _ := stopSectioned(t, workload.ShardedListsSource(4, 30))
	tr := obs.NewTracer()
	p.Obs = tr.Start("capture")
	if _, err := p.CaptureSections(2); err != nil {
		t.Fatal(err)
	}
	p.Obs.End()
	spans := tr.Export()
	if len(spans) != 1 {
		t.Fatalf("exported %d roots, want 1", len(spans))
	}
	collect := spans[0].Children[0]
	if collect.Name != "collect" || collect.Attrs["format"] != "sectioned" {
		t.Fatalf("first child = %q (%v), want sectioned collect", collect.Name, collect.Attrs)
	}
	names := map[string]bool{}
	sections := 0
	for _, c := range collect.Children {
		names[c.Name] = true
		if c.Name == "section" {
			sections++
		}
	}
	if !names["partition"] || !names["encode"] {
		t.Errorf("collect children %v missing partition/encode", names)
	}
	if sections == 0 {
		t.Error("no per-section spans recorded")
	}
	if collect.Bytes == 0 {
		t.Error("collect span has no byte count")
	}

	tr2 := obs.NewTracer()
	p.Obs = tr2.Start("capture")
	if _, err := p.Recapture(); err != nil {
		t.Fatal(err)
	}
	p.Obs.End()
	mono := tr2.Export()[0].Children[0]
	if mono.Name != "collect" || mono.Attrs["format"] != "mono" {
		t.Errorf("mono capture span = %q (%v), want mono collect", mono.Name, mono.Attrs)
	}
}
