package vm

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/minic"
)

// fuzzSource is pointer-rich on purpose: a linked list reached both from
// a global and a local, so the captured state exercises heap refs, stack
// refs, and global refs.
const fuzzSource = `
	struct node { double data; struct node *link; };
	struct node *head;
	int main() {
		struct node *cur;
		int i, sum;
		head = 0;
		for (i = 1; i <= 12; i++) {
			cur = (struct node *) malloc(sizeof(struct node));
			cur->data = i;
			cur->link = head;
			head = cur;
		}
		sum = 0;
		cur = head;
		while (cur) {
			sum += (int)cur->data;
			cur = cur->link;
		}
		return sum;
	}
`

// fuzzStates compiles fuzzSource, runs it to the n-th poll on Ultra 5,
// and returns the program plus its captured v1 and v3 (sectioned) states.
func fuzzStates(f *testing.F) (*minic.Program, []byte, []byte) {
	prog, err := minic.Compile(fuzzSource, minic.DefaultPolicy)
	if err != nil {
		f.Fatal(err)
	}
	p, err := NewProcess(prog, arch.Ultra5)
	if err != nil {
		f.Fatal(err)
	}
	p.Stdout = &bytes.Buffer{}
	p.MaxSteps = 1_000_000
	polls := 0
	p.PollHook = func(_ *Process, _ *minic.Site) bool {
		polls++
		return polls == 7
	}
	res, err := p.Run()
	if err != nil {
		f.Fatal(err)
	}
	if !res.Migrated {
		f.Fatal("program finished before migration point")
	}
	v3, err := p.CaptureSections(1)
	if err != nil {
		f.Fatal(err)
	}
	return prog, res.State, v3
}

// FuzzDecodeRef feeds arbitrary bytes — seeded with real v1 and v3
// snapshots and mutations of them — to the full restore path. Both the
// monolithic and the sectioned decoder sit behind RestoreProcess, and
// whatever the fuzzer invents, restore must either succeed or return an
// error: no panic, no runaway allocation.
func FuzzDecodeRef(f *testing.F) {
	prog, v1, v3 := fuzzStates(f)
	f.Add(v1)
	f.Add(v3)
	f.Add(v1[:len(v1)/2])
	f.Add(v3[:len(v3)/2])
	for _, seed := range [][]byte{v1, v3} {
		for _, off := range []int{4, len(seed) / 3, len(seed) - 8} {
			mut := append([]byte(nil), seed...)
			mut[off] ^= 0x81
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := RestoreProcess(prog, arch.I386, data)
		if err != nil {
			return
		}
		// A state the decoder accepted must also execute without crashing
		// the vm. A mutated-but-well-formed state may legitimately hit the
		// step limit or exit nonzero, so only panics count as failures.
		q.Stdout = &bytes.Buffer{}
		q.MaxSteps = 1_000_000
		_, _ = q.Run()
	})
}
