package vm

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/minic"
	"repro/internal/workload"
)

// newMutatingProcess compiles the mutating-shards workload and stops the
// process at its first poll in NoAutoCapture mode.
func newMutatingProcess(t *testing.T, m *arch.Machine, rounds int) (*Process, *minic.Program) {
	t.Helper()
	prog, err := minic.Compile(workload.MutatingShardsSource(4, 30, rounds), minic.PollPolicy{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := NewProcess(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 50_000_000
	p.NoAutoCapture = true
	p.PollHook = func(_ *Process, _ *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil {
		t.Fatalf("run to first poll: %v", err)
	}
	if !res.Migrated || res.State != nil {
		t.Fatalf("NoAutoCapture stop: Migrated=%v State=%v, want true/nil", res.Migrated, res.State)
	}
	return p, prog
}

// TestLiveRoundsByteIdenticalToStopAndCopy drives the pre-copy capture
// across every poll of a mutating workload and checks the core delta
// invariant: each round's assembled snapshot is byte-identical to a full
// stop-and-copy sectioned capture of the same paused state, even though
// most sections were carried over from the cache.
func TestLiveRoundsByteIdenticalToStopAndCopy(t *testing.T) {
	p, prog := newMutatingProcess(t, arch.Ultra5, 6)
	lc := p.NewLiveCapture(1)
	defer lc.Close()

	totalReused := 0
	var mid []byte
	for round := 0; ; round++ {
		r, err := lc.Round()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		direct, err := p.CaptureSections(1)
		if err != nil {
			t.Fatalf("round %d direct capture: %v", round, err)
		}
		if !bytes.Equal(r.Snapshot(), direct) {
			t.Fatalf("round %d: assembled snapshot differs from stop-and-copy capture", round)
		}
		if round == 0 {
			if r.Reused != 0 || r.DirtyBlocks != 0 {
				t.Fatalf("round 0 reused %d sections, dirty %d; want 0/0", r.Reused, r.DirtyBlocks)
			}
		} else {
			if r.DirtyBlocks == 0 {
				t.Fatalf("round %d observed an empty dirty set despite mutations", round)
			}
			totalReused += r.Reused
		}
		if round == 3 {
			mid = r.Snapshot()
		}
		res, err := p.ResumeRun()
		if err != nil {
			t.Fatalf("resume after round %d: %v", round, err)
		}
		if !res.Migrated {
			if res.ExitCode != 0 {
				t.Fatalf("source ran to exit %d, want 0", res.ExitCode)
			}
			break
		}
	}
	if totalReused == 0 {
		t.Fatal("no section was ever reused across rounds")
	}

	// A mid-sequence round restores like any v3 snapshot — on a machine
	// with different byte order and widths — and runs to completion.
	q, err := RestoreProcess(prog, arch.SPARC20, mid)
	if err != nil {
		t.Fatalf("restore mid-round snapshot: %v", err)
	}
	q.MaxSteps = 50_000_000
	res, err := q.Run()
	if err != nil {
		t.Fatalf("run restored process: %v", err)
	}
	if res.Migrated || res.ExitCode != 0 {
		t.Fatalf("restored process: migrated=%v exit=%d, want false/0", res.Migrated, res.ExitCode)
	}
}

// TestLiveRoundReuseTracksDirtySet pins the selective re-encode: with 4
// independent lists and one mutated per round, a steady-state round
// re-encodes the touched component, the frame, and the globals, and
// reuses the other three heap components.
func TestLiveRoundReuseTracksDirtySet(t *testing.T) {
	p, _ := newMutatingProcess(t, arch.Ultra5, 6)
	lc := p.NewLiveCapture(1)
	defer lc.Close()

	if _, err := lc.Round(); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		if res, err := p.ResumeRun(); err != nil || !res.Migrated {
			t.Fatalf("resume: res=%+v err=%v", res, err)
		}
		r, err := lc.Round()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// 4 heap components; exactly one list was mutated between polls.
		reusedHeap := 0
		for _, s := range r.Sections {
			if s.Kind.String() == "heap" && s.Reused {
				reusedHeap++
			}
		}
		if reusedHeap != 3 {
			t.Fatalf("round %d reused %d heap components, want 3", round, reusedHeap)
		}
		if r.FreshBytes >= r.Bytes {
			t.Fatalf("round %d fresh bytes %d not below total %d", round, r.FreshBytes, r.Bytes)
		}
	}
}

// TestResumeRunWithoutCapture checks the NoAutoCapture stop/resume cycle
// leaves execution unperturbed: stopping at every poll and resuming each
// time finishes with the same exit code as an uninterrupted run.
func TestResumeRunWithoutCapture(t *testing.T) {
	p, prog := newMutatingProcess(t, arch.Ultra5, 5)
	stops := 1
	for {
		res, err := p.ResumeRun()
		if err != nil {
			t.Fatalf("resume %d: %v", stops, err)
		}
		if !res.Migrated {
			if res.ExitCode != 0 {
				t.Fatalf("exit %d after %d stops, want 0", res.ExitCode, stops)
			}
			break
		}
		stops++
	}
	if stops != 5 {
		t.Fatalf("stopped %d times, want 5 (one per program round)", stops)
	}

	// The uninterrupted baseline.
	q, err := NewProcess(prog, arch.Ultra5)
	if err != nil {
		t.Fatal(err)
	}
	q.MaxSteps = 50_000_000
	res, err := q.Run()
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("baseline run: exit=%d err=%v", res.ExitCode, err)
	}
}
