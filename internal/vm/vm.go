// Package vm executes checked MigC programs against a simulated process
// address space laid out for a specific machine.
//
// The VM is the "process" of the reproduction: globals live in the global
// segment, each function invocation pushes a frame of local variable blocks
// onto the stack segment, and malloc allocates typed blocks on the heap —
// all registered in the MSRLT exactly as the paper's annotated C processes
// maintain it at run time. Poll-points compiled into the program invoke a
// hook; when the hook requests migration, the VM captures the execution
// state (the chain of active functions and their migration sites) and the
// memory state (live data collected through the MSRM library) into a
// machine-independent stream, and a fresh VM on any other machine restores
// the stream and resumes execution from the migration point — including
// inside nested function calls.
package vm

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/arch"
	"repro/internal/collect"
	"repro/internal/memory"
	"repro/internal/minic"
	"repro/internal/msr"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/types"
)

// ctrl is the control-flow signal of statement execution.
type ctrl uint8

const (
	ctrlNext ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
	ctrlMigrate
)

// RuntimeError is an error raised by program execution, with position.
type RuntimeError struct {
	Pos minic.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg) }

func rtErr(pos minic.Pos, format string, args ...interface{}) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// errExit is the internal unwinding signal of the exit() builtin.
var errExit = errors.New("vm: exit")

// ErrStepLimit is returned when execution exceeds MaxSteps.
var ErrStepLimit = errors.New("vm: step limit exceeded")

// Stats counts run-time activity relevant to the overhead analysis.
type Stats struct {
	// Steps counts executed statements.
	Steps int64
	// PollChecks counts poll-point evaluations — the "is a migration
	// request pending" checks of the inserted macros.
	PollChecks int64
	// Calls counts user function invocations.
	Calls int64
	// MSRLTOps counts MSRLT register/unregister operations performed for
	// frames and heap blocks.
	MSRLTOps int64
}

// Frame is one active function invocation.
type Frame struct {
	Fn   *minic.FuncSymbol
	Base memory.Address
	// Depth is 1 for the outermost frame (main).
	Depth int
	// curSite is the migration site of the call statement currently
	// executing in this frame, when that call is to a migratory
	// function.
	curSite *minic.Site

	offsets []int
	retVal  value
}

// frameLayout is the per-machine layout of a function's frame.
type frameLayout struct {
	offsets []int
	size    int
}

// Process is a runnable MigC process image.
type Process struct {
	Prog  *minic.Program
	Mach  *arch.Machine
	Space *memory.Space
	Table *msr.Table
	TI    *types.TI

	// PollHook is consulted at every poll-point; returning true
	// triggers migration (state capture and unwinding). A nil hook
	// never migrates.
	PollHook func(p *Process, site *minic.Site) bool

	// DisableMigration runs the program "unannotated": poll-points and
	// MSRLT maintenance are skipped. This is the baseline of the
	// paper's Section 4.3 overhead comparison. A disabled process
	// cannot migrate.
	DisableMigration bool

	// NoAutoCapture changes what a granted poll-point request does:
	// instead of capturing the monolithic state and retiring the
	// process, execution simply stops at the site (Result.Migrated true,
	// State nil) and the process stays fully usable — it can be captured
	// with any Capture variant, or continued with ResumeRun. The
	// pre-copy driver uses this to stop at round boundaries without
	// paying a capture it does not want.
	NoAutoCapture bool

	// Stdout receives printf output; defaults to io.Discard.
	Stdout io.Writer

	// MaxSteps aborts runaway programs (0 = unlimited).
	MaxSteps int64

	// Instrument enables fine-grained timing in capture/restore stats.
	Instrument bool

	// RestoreWorkers bounds the worker pool that fills heap-component
	// sections during a sectioned (v3) restore: 1 is fully serial,
	// 0 (the default) selects GOMAXPROCS capped by SetMaxRestoreWorkers,
	// and a negative value also selects GOMAXPROCS but ignores the cap.
	// The restored memory image is identical for every worker count.
	RestoreWorkers int

	// Obs, when set, receives one child span per capture/restore phase
	// (partition, encode, per-section work). Nil disables tracing at the
	// cost of a nil-check — the default.
	Obs *obs.Span

	// trace, when set via TraceTo, receives one line per executed
	// statement and per call/return/migration event.
	trace io.Writer

	Stats Stats

	captureStats   StateStats
	restoreStats   collect.RestoreStats
	restoreElapsed time.Duration

	// Per-section cost profiles of the last sectioned (v3) capture and
	// restore, empty when the monolithic format was used.
	sectionCapture stats.SectionBreakdown
	sectionRestore stats.SectionBreakdown
	sectionWorkers int
	restoreWorkers int

	globalAddrs []memory.Address
	frames      []*Frame
	layouts     map[*minic.FuncSymbol]*frameLayout

	// rng is the state of the rand() builtin, a classic 48-bit LCG.
	// Like the libc state in the paper's prototype, it is run-time
	// library state, not program memory, and is not migrated.
	rng uint64

	start time.Time

	// resumeSites is non-nil while fast-forwarding after a restore:
	// resumeSites[d] is the site frame depth d+1 is stopped at.
	resumeSites []*minic.Site

	// lastSite is the poll site of the most recent capture (Recapture).
	lastSite *minic.Site

	// migrated is the captured state after a poll-triggered migration.
	migrated []byte
	// exit code after the program ends.
	exitCode int
}

// NewProcess lays out a process image for the program on machine m:
// global blocks are allocated and registered, and string literal contents
// initialized. The program counter is before main.
func NewProcess(prog *minic.Program, m *arch.Machine) (*Process, error) {
	p := &Process{
		Prog:    prog,
		Mach:    m,
		Space:   memory.NewSpace(m),
		Table:   msr.NewTable(),
		TI:      prog.TI,
		Stdout:  io.Discard,
		layouts: map[*minic.FuncSymbol]*frameLayout{},
		rng:     0x330e, // srand(0) equivalent seed
		start:   time.Now(),
	}
	for _, g := range prog.Globals {
		addr, err := p.Space.GlobalAlloc(g.Type.SizeOf(m), g.Type.AlignOf(m))
		if err != nil {
			return nil, err
		}
		p.globalAddrs = append(p.globalAddrs, addr)
		b := &msr.Block{
			ID:    msr.BlockID{Seg: memory.Global, Minor: uint32(g.Index)},
			Addr:  addr,
			Type:  g.Type,
			Count: 1,
			Name:  g.Name,
		}
		if err := p.Table.Register(b); err != nil {
			return nil, err
		}
		if g.Str != "" {
			if err := p.Space.WriteBytes(addr, append([]byte(g.Str), 0)); err != nil {
				return nil, err
			}
		}
		if g.Init.Valid && g.Type.Kind == types.KPrim {
			var bits uint64
			switch {
			case g.Type.Prim == arch.Float:
				bits = uint64(math.Float32bits(float32(g.Init.AsFloat())))
			case g.Type.Prim == arch.Double:
				bits = math.Float64bits(g.Init.AsFloat())
			default:
				bits = uint64(g.Init.AsInt())
			}
			if err := p.Space.StorePrim(addr, g.Type.Prim, bits); err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// GlobalAddr returns the address of a global symbol.
func (p *Process) GlobalAddr(sym *minic.VarSymbol) memory.Address {
	return p.globalAddrs[sym.Index]
}

// GlobalByName returns the address and symbol of the named global.
func (p *Process) GlobalByName(name string) (memory.Address, *minic.VarSymbol, bool) {
	for _, g := range p.Prog.Globals {
		if g.Name == name {
			return p.globalAddrs[g.Index], g, true
		}
	}
	return 0, nil, false
}

// layout computes (and caches) the frame layout of fn on this machine.
func (p *Process) layout(fn *minic.FuncSymbol) *frameLayout {
	if l, ok := p.layouts[fn]; ok {
		return l
	}
	l := &frameLayout{offsets: make([]int, len(fn.Locals))}
	off := 0
	for i, v := range fn.Locals {
		off = arch.Align(off, v.Type.AlignOf(p.Mach))
		l.offsets[i] = off
		off += v.Type.SizeOf(p.Mach)
	}
	l.size = off
	p.layouts[fn] = l
	return l
}

// VarAddr returns the address of a variable in the given frame (or of a
// global when the symbol is global).
func (p *Process) VarAddr(f *Frame, sym *minic.VarSymbol) memory.Address {
	if sym.Kind == minic.GlobalVar {
		return p.globalAddrs[sym.Index]
	}
	return f.Base + memory.Address(f.offsets[sym.Index])
}

// pushFrame creates and registers the frame for fn at the next depth.
func (p *Process) pushFrame(fn *minic.FuncSymbol) (*Frame, error) {
	l := p.layout(fn)
	base, err := p.Space.PushFrame(l.size)
	if err != nil {
		return nil, err
	}
	f := &Frame{Fn: fn, Base: base, Depth: len(p.frames) + 1, offsets: l.offsets}
	p.frames = append(p.frames, f)
	if !p.DisableMigration {
		for i, v := range fn.Locals {
			b := &msr.Block{
				ID:    msr.BlockID{Seg: memory.Stack, Major: uint32(f.Depth), Minor: uint32(i)},
				Addr:  f.Base + memory.Address(l.offsets[i]),
				Type:  v.Type,
				Count: 1,
				Name:  v.Name,
			}
			if err := p.Table.Register(b); err != nil {
				return nil, err
			}
			p.Stats.MSRLTOps++
		}
	}
	return f, nil
}

// popFrame unwinds the innermost frame.
func (p *Process) popFrame() error {
	f := p.frames[len(p.frames)-1]
	if !p.DisableMigration {
		for i := len(f.Fn.Locals) - 1; i >= 0; i-- {
			addr := f.Base + memory.Address(f.offsets[i])
			if err := p.Table.Unregister(addr); err != nil {
				return err
			}
			p.Stats.MSRLTOps++
		}
	}
	p.frames = p.frames[:len(p.frames)-1]
	return p.Space.PopFrame()
}

// Result is the outcome of Run.
type Result struct {
	// Migrated is true when execution stopped at a poll-point with a
	// granted migration request; State then holds the encoded process
	// state and the process must not be used further.
	Migrated bool
	State    []byte
	// ExitCode is main's return value (or the exit() argument) when the
	// program ran to completion.
	ExitCode int
}

// Run executes the program from main, or resumes a restored process from
// its migration point. It returns when the program completes, exits, or
// migrates.
func (p *Process) Run() (*Result, error) {
	if p.resumeSites != nil {
		return p.runResume()
	}
	main := p.Prog.Func("main")
	if main == nil {
		return nil, errors.New("vm: program has no main")
	}
	f, err := p.pushFrame(main)
	if err != nil {
		return nil, err
	}
	c, err := p.execStmt(f, main.Body)
	return p.finishRun(f, c, err)
}

// finishRun interprets the final control signal of the outermost frame.
func (p *Process) finishRun(f *Frame, c ctrl, err error) (*Result, error) {
	if err != nil {
		if errors.Is(err, errExit) {
			return &Result{ExitCode: p.exitCode}, nil
		}
		return nil, err
	}
	switch c {
	case ctrlMigrate:
		return &Result{Migrated: true, State: p.migrated}, nil
	case ctrlReturn:
		return &Result{ExitCode: int(int64(f.retVal.bits))}, nil
	default:
		// Falling off the end of main: exit code 0.
		return &Result{ExitCode: 0}, nil
	}
}

// runResume fast-forwards a restored process to its migration point and
// continues execution.
func (p *Process) runResume() (*Result, error) {
	if len(p.frames) == 0 {
		return nil, errors.New("vm: resume with no frames")
	}
	f := p.frames[0]
	c, err := p.execResumeFrame(f)
	p.resumeSites = nil
	return p.finishRun(f, c, err)
}

// ResumeRun continues a process stopped at a poll point by a
// NoAutoCapture hook: the frames fast-forward to their stop sites —
// the same machinery a restored process resumes through, except the
// memory image is already in place — and execution picks up after the
// poll. It returns like Run: at completion, exit, or the next granted
// poll request.
func (p *Process) ResumeRun() (*Result, error) {
	site, err := p.stoppedSite()
	if err != nil {
		return nil, err
	}
	sites, err := p.captureSites(site)
	if err != nil {
		return nil, err
	}
	p.resumeSites = sites
	return p.runResume()
}
