package vm

import (
	"fmt"
	"math"
	"time"

	"repro/internal/memory"
	"repro/internal/minic"
	"repro/internal/msr"
	"repro/internal/types"
)

// execStmt executes one statement in frame f.
func (p *Process) execStmt(f *Frame, s minic.Stmt) (ctrl, error) {
	p.Stats.Steps++
	if p.MaxSteps > 0 && p.Stats.Steps > p.MaxSteps {
		return ctrlNext, ErrStepLimit
	}
	if p.trace != nil {
		p.tracef("%s %s [%s]", s.Position(), stmtKind(s), f.Fn.Name)
	}
	switch st := s.(type) {
	case *minic.Block:
		return p.execBlockFrom(f, st, 0)

	case *minic.Empty:
		return ctrlNext, nil

	case *minic.DeclStmt:
		if st.Init != nil {
			v, err := p.evalExpr(f, st.Init)
			if err != nil {
				return ctrlNext, err
			}
			addr := p.VarAddr(f, st.Sym)
			if err := p.storeValue(addr, st.Sym.Type, p.convert(v, st.Sym.Type)); err != nil {
				return ctrlNext, err
			}
		}
		return ctrlNext, nil

	case *minic.ExprStmt:
		if st.Site != nil {
			f.curSite = st.Site
		}
		_, err := p.evalExpr(f, st.X)
		if err != nil {
			if _, ok := err.(*migrateSignal); ok {
				// Migration unwound through this call statement: the frame
				// stays stopped at it, and curSite stays set so a later
				// recapture (Recapture/CaptureTo) can record the site.
				return ctrlMigrate, nil
			}
		}
		f.curSite = nil
		return ctrlNext, err

	case *minic.If:
		c, err := p.evalExpr(f, st.Cond)
		if err != nil {
			return ctrlNext, err
		}
		if c.asBool() {
			return p.execStmt(f, st.Then)
		}
		if st.Else != nil {
			return p.execStmt(f, st.Else)
		}
		return ctrlNext, nil

	case *minic.While:
		if st.DoWhile {
			for {
				c, err := p.execStmt(f, st.Body)
				if err != nil {
					return ctrlNext, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNext, nil
				case ctrlReturn, ctrlMigrate:
					return c, nil
				}
				cond, err := p.evalExpr(f, st.Cond)
				if err != nil {
					return ctrlNext, err
				}
				if !cond.asBool() {
					return ctrlNext, nil
				}
			}
		}
		for {
			cond, err := p.evalExpr(f, st.Cond)
			if err != nil {
				return ctrlNext, err
			}
			if !cond.asBool() {
				return ctrlNext, nil
			}
			c, err := p.execStmt(f, st.Body)
			if err != nil {
				return ctrlNext, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNext, nil
			case ctrlReturn, ctrlMigrate:
				return c, nil
			}
		}

	case *minic.For:
		if st.Init != nil {
			if _, err := p.evalExpr(f, st.Init); err != nil {
				return ctrlNext, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := p.evalExpr(f, st.Cond)
				if err != nil {
					return ctrlNext, err
				}
				if !cond.asBool() {
					return ctrlNext, nil
				}
			}
			c, err := p.execStmt(f, st.Body)
			if err != nil {
				return ctrlNext, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNext, nil
			case ctrlReturn, ctrlMigrate:
				return c, nil
			}
			if st.Post != nil {
				if _, err := p.evalExpr(f, st.Post); err != nil {
					return ctrlNext, err
				}
			}
		}

	case *minic.Return:
		if st.X != nil {
			v, err := p.evalExpr(f, st.X)
			if err != nil {
				return ctrlNext, err
			}
			f.retVal = p.convert(v, f.Fn.Result)
		}
		return ctrlReturn, nil

	case *minic.Break:
		return ctrlBreak, nil
	case *minic.Continue:
		return ctrlContinue, nil

	case *minic.PollPoint:
		if p.DisableMigration {
			return ctrlNext, nil
		}
		p.Stats.PollChecks++
		if p.PollHook != nil && p.PollHook(p, st.Site) {
			if p.NoAutoCapture {
				// Stop at the site without capturing; the process stays
				// live for delta captures and ResumeRun.
				if p.trace != nil {
					p.tracef("stopping at site %d", st.Site.ID)
				}
				p.lastSite = st.Site
				p.migrated = nil
				return ctrlMigrate, nil
			}
			if p.trace != nil {
				p.tracef("migrating at site %d", st.Site.ID)
			}
			state, err := p.captureState(st.Site)
			if err != nil {
				return ctrlNext, fmt.Errorf("vm: migration capture failed: %w", err)
			}
			p.migrated = state
			return ctrlMigrate, nil
		}
		return ctrlNext, nil
	}
	return ctrlNext, rtErr(s.Position(), "internal: unhandled statement %T", s)
}

// execBlockFrom executes a block's statements starting at index start.
func (p *Process) execBlockFrom(f *Frame, b *minic.Block, start int) (ctrl, error) {
	for i := start; i < len(b.Stmts); i++ {
		c, err := p.execStmt(f, b.Stmts[i])
		if err != nil {
			return ctrlNext, err
		}
		if c != ctrlNext {
			return c, nil
		}
	}
	return ctrlNext, nil
}

// migrateSignal propagates migration out of expression evaluation (a
// migratory callee triggered a capture while evaluating a call).
type migrateSignal struct{}

func (*migrateSignal) Error() string { return "vm: migration in progress" }

// evalCall dispatches builtin and user function calls.
func (p *Process) evalCall(f *Frame, x *minic.Call) (value, error) {
	if x.Builtin != "" {
		return p.evalBuiltin(f, x)
	}
	fn := x.Func
	// Evaluate arguments in the caller's frame.
	args := make([]value, len(x.Args))
	for i, a := range x.Args {
		v, err := p.evalExpr(f, a)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	p.Stats.Calls++
	if p.trace != nil {
		p.tracef("call %s", fn.Name)
	}
	nf, err := p.pushFrame(fn)
	if err != nil {
		return value{}, err
	}
	for i, pv := range fn.Params {
		addr := p.VarAddr(nf, pv)
		if err := p.storeValue(addr, pv.Type, p.convert(args[i], pv.Type)); err != nil {
			return value{}, err
		}
	}
	c, err := p.execStmt(nf, fn.Body)
	if err != nil {
		return value{}, err
	}
	if c == ctrlMigrate {
		// Leave the frames in place for the captured image; unwind via
		// the signal error so enclosing expressions stop evaluating.
		return value{}, &migrateSignal{}
	}
	ret := nf.retVal
	if err := p.popFrame(); err != nil {
		return value{}, err
	}
	if fn.Result.IsVoid() {
		return value{t: types.Void}, nil
	}
	return ret, nil
}

// execResumeFrame fast-forwards frame f to its recorded site and continues
// execution to the end of the function. The caller pops the frame.
func (p *Process) execResumeFrame(f *Frame) (ctrl, error) {
	site := p.resumeSites[f.Depth-1]
	if site == nil {
		return ctrlNext, fmt.Errorf("vm: no resume site for frame %d (%s)", f.Depth, f.Fn.Name)
	}
	return p.execChain(f, site, 0)
}

// execChain descends the site's ancestor chain: statements before the
// chain element are skipped (their effects are part of the restored
// state); the chain element itself is entered; after it completes, the
// remainder executes normally.
func (p *Process) execChain(f *Frame, site *minic.Site, idx int) (ctrl, error) {
	cur := site.Chain[idx]

	// The site statement itself.
	if idx == len(site.Chain)-1 {
		switch st := cur.(type) {
		case *minic.PollPoint:
			// Execution resumes immediately after the poll at which
			// migration occurred.
			return ctrlNext, nil
		case *minic.ExprStmt:
			return p.resumeCallSite(f, st)
		default:
			return ctrlNext, rtErr(cur.Position(), "internal: bad site statement %T", cur)
		}
	}

	next := site.Chain[idx+1]
	switch st := cur.(type) {
	case *minic.Block:
		pos := -1
		for i, sub := range st.Stmts {
			if sub == next {
				pos = i
				break
			}
		}
		if pos < 0 {
			return ctrlNext, rtErr(cur.Position(), "internal: resume chain broken in block")
		}
		c, err := p.execChain(f, site, idx+1)
		if err != nil || c != ctrlNext {
			return c, err
		}
		return p.execBlockFrom(f, st, pos+1)

	case *minic.If:
		// Enter the branch on the chain; the condition was already
		// decided before migration.
		return p.execChain(f, site, idx+1)

	case *minic.While:
		c, err := p.execChain(f, site, idx+1)
		if err != nil {
			return ctrlNext, err
		}
		switch c {
		case ctrlBreak:
			return ctrlNext, nil
		case ctrlReturn, ctrlMigrate:
			return c, nil
		}
		if st.DoWhile {
			// Fall into the do-while loop's test-then-iterate cycle.
			for {
				cond, err := p.evalExpr(f, st.Cond)
				if err != nil {
					return ctrlNext, err
				}
				if !cond.asBool() {
					return ctrlNext, nil
				}
				c, err := p.execStmt(f, st.Body)
				if err != nil {
					return ctrlNext, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNext, nil
				case ctrlReturn, ctrlMigrate:
					return c, nil
				}
			}
		}
		// Continue the while loop normally.
		for {
			cond, err := p.evalExpr(f, st.Cond)
			if err != nil {
				return ctrlNext, err
			}
			if !cond.asBool() {
				return ctrlNext, nil
			}
			c, err := p.execStmt(f, st.Body)
			if err != nil {
				return ctrlNext, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNext, nil
			case ctrlReturn, ctrlMigrate:
				return c, nil
			}
		}

	case *minic.For:
		c, err := p.execChain(f, site, idx+1)
		if err != nil {
			return ctrlNext, err
		}
		switch c {
		case ctrlBreak:
			return ctrlNext, nil
		case ctrlReturn, ctrlMigrate:
			return c, nil
		}
		// Resume the loop: post, then test, then iterate normally.
		for {
			if st.Post != nil {
				if _, err := p.evalExpr(f, st.Post); err != nil {
					return ctrlNext, err
				}
			}
			if st.Cond != nil {
				cond, err := p.evalExpr(f, st.Cond)
				if err != nil {
					return ctrlNext, err
				}
				if !cond.asBool() {
					return ctrlNext, nil
				}
			}
			c, err := p.execStmt(f, st.Body)
			if err != nil {
				return ctrlNext, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNext, nil
			case ctrlReturn, ctrlMigrate:
				return c, nil
			}
		}
	}
	return ctrlNext, rtErr(cur.Position(), "internal: bad resume chain element %T", cur)
}

// resumeCallSite re-enters the callee frame at a migratory call statement
// and completes the statement when the callee returns.
func (p *Process) resumeCallSite(f *Frame, st *minic.ExprStmt) (ctrl, error) {
	// Find the call and optional assignment target.
	var call *minic.Call
	var target *minic.Ident
	switch x := st.X.(type) {
	case *minic.Call:
		call = x
	case *minic.Assign:
		target, _ = x.X.(*minic.Ident)
		c, ok := x.Y.(*minic.Call)
		if !ok {
			// The call may sit under parentheses-free casts; unwrap.
			if cast, okc := x.Y.(*minic.Cast); okc {
				c, ok = cast.X.(*minic.Call)
			}
			if !ok {
				return ctrlNext, rtErr(st.Position(), "internal: unresumable call statement shape")
			}
		}
		call = c
	default:
		return ctrlNext, rtErr(st.Position(), "internal: unresumable call statement shape")
	}

	if f.Depth >= len(p.frames) {
		return ctrlNext, rtErr(st.Position(), "resume state missing callee frame")
	}
	callee := p.frames[f.Depth]
	if callee.Fn != call.Func {
		return ctrlNext, rtErr(st.Position(), "resume state frame mismatch: have %s, call is to %s",
			callee.Fn.Name, call.Func.Name)
	}
	f.curSite = st.Site
	c, err := p.execResumeFrame(callee)
	if err != nil {
		f.curSite = nil
		return ctrlNext, err
	}
	if c == ctrlMigrate {
		// Keep curSite: this frame is stopped at the call statement for
		// any recapture of the migrating process.
		return ctrlMigrate, nil
	}
	f.curSite = nil
	ret := callee.retVal
	if err := p.popFrame(); err != nil {
		return ctrlNext, err
	}
	if target != nil {
		addr := p.VarAddr(f, target.Sym)
		conv := p.convert(ret, target.Sym.Type)
		if err := p.storeValue(addr, target.Sym.Type, conv); err != nil {
			return ctrlNext, err
		}
	}
	return ctrlNext, nil
}

// ---- builtins ----

func (p *Process) evalBuiltin(f *Frame, x *minic.Call) (value, error) {
	switch x.Builtin {
	case "malloc":
		return p.builtinMalloc(f, x)
	case "free":
		return p.builtinFree(f, x)
	case "printf":
		return p.builtinPrintf(f, x)
	case "rand":
		// glibc-style 48-bit LCG, truncated to 31 bits.
		p.rng = (p.rng*0x5deece66d + 0xb) & (1<<48 - 1)
		return intValue(types.Int, int64(p.rng>>17)&0x3fffffff), nil
	case "srand":
		v, err := p.evalExpr(f, x.Args[0])
		if err != nil {
			return value{}, err
		}
		p.rng = (v.bits << 16) | 0x330e
		return value{t: types.Void}, nil
	case "fabs":
		v, err := p.evalExpr(f, x.Args[0])
		if err != nil {
			return value{}, err
		}
		d := p.convert(v, types.Double)
		return value{t: types.Double, bits: math.Float64bits(math.Abs(d.float64()))}, nil
	case "sqrt":
		v, err := p.evalExpr(f, x.Args[0])
		if err != nil {
			return value{}, err
		}
		d := p.convert(v, types.Double)
		return value{t: types.Double, bits: math.Float64bits(math.Sqrt(d.float64()))}, nil
	case "exit":
		v, err := p.evalExpr(f, x.Args[0])
		if err != nil {
			return value{}, err
		}
		p.exitCode = int(int64(v.bits))
		return value{}, errExit
	case "clock_ms":
		ms := time.Since(p.start).Milliseconds()
		return value{t: types.Long, bits: normInt(p.Mach, types.Long.Prim, uint64(ms))}, nil
	}
	return value{}, rtErr(x.Position(), "internal: unknown builtin %s", x.Builtin)
}

func (p *Process) builtinMalloc(f *Frame, x *minic.Call) (value, error) {
	sz, err := p.evalExpr(f, x.Args[0])
	if err != nil {
		return value{}, err
	}
	n := int(int64(sz.bits))
	if n < 0 {
		return value{}, rtErr(x.Position(), "malloc of negative size %d", n)
	}
	elem := x.MallocElem
	if elem == nil {
		return value{}, rtErr(x.Position(), "malloc call has no inferred element type")
	}
	es := elem.SizeOf(p.Mach)
	if es == 0 || n%es != 0 {
		return value{}, rtErr(x.Position(), "malloc size %d is not a multiple of sizeof(%s) = %d", n, elem, es)
	}
	addr, err := p.Space.Malloc(n)
	if err != nil {
		return value{}, rtErr(x.Position(), "%v", err)
	}
	if !p.DisableMigration {
		b := &msr.Block{ID: p.Table.NextHeapID(), Addr: addr, Type: elem, Count: n / es}
		if err := p.Table.Register(b); err != nil {
			return value{}, err
		}
		p.Stats.MSRLTOps++
	}
	return ptrValue(x.Type(), addr), nil
}

func (p *Process) builtinFree(f *Frame, x *minic.Call) (value, error) {
	v, err := p.evalExpr(f, x.Args[0])
	if err != nil {
		return value{}, err
	}
	addr := v.addr()
	if addr == 0 {
		return value{t: types.Void}, nil // free(NULL) is a no-op
	}
	if !p.DisableMigration {
		if err := p.Table.Unregister(addr); err != nil {
			return value{}, rtErr(x.Position(), "free of address that is not a block base: %v", err)
		}
		p.Stats.MSRLTOps++
	}
	if err := p.Space.Free(addr); err != nil {
		return value{}, rtErr(x.Position(), "%v", err)
	}
	return value{t: types.Void}, nil
}

// builtinPrintf implements a useful subset of printf formatting.
func (p *Process) builtinPrintf(f *Frame, x *minic.Call) (value, error) {
	fv, err := p.evalExpr(f, x.Args[0])
	if err != nil {
		return value{}, err
	}
	format, err := p.readCString(fv.addr())
	if err != nil {
		return value{}, rtErr(x.Position(), "printf format: %v", err)
	}
	args := make([]value, 0, len(x.Args)-1)
	for _, a := range x.Args[1:] {
		v, err := p.evalExpr(f, a)
		if err != nil {
			return value{}, err
		}
		args = append(args, v)
	}
	out, err := p.formatPrintf(x.Position(), format, args)
	if err != nil {
		return value{}, err
	}
	fmt.Fprint(p.Stdout, out)
	return intValue(types.Int, int64(len(out))), nil
}

// readCString reads a NUL-terminated string from the space.
func (p *Process) readCString(addr memory.Address) (string, error) {
	if addr == 0 {
		return "", fmt.Errorf("null string")
	}
	var out []byte
	for i := 0; i < 1<<20; i++ {
		b, err := p.Space.Bytes(addr+memory.Address(i), 1)
		if err != nil {
			return "", err
		}
		if b[0] == 0 {
			return string(out), nil
		}
		out = append(out, b[0])
	}
	return "", fmt.Errorf("unterminated string")
}

// formatPrintf expands a C format string against evaluated arguments.
func (p *Process) formatPrintf(pos minic.Pos, format string, args []value) (string, error) {
	var out []byte
	ai := 0
	nextArg := func() (value, error) {
		if ai >= len(args) {
			return value{}, rtErr(pos, "printf: too few arguments for format %q", format)
		}
		v := args[ai]
		ai++
		return v, nil
	}
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		// Collect flags/width/precision verbatim; strip length
		// modifiers (l, ll) which Go's fmt does not use.
		spec := []byte{'%'}
		for i < len(format) {
			ch := format[i]
			if ch == 'l' || ch == 'h' {
				i++
				continue
			}
			spec = append(spec, ch)
			if (ch >= 'a' && ch <= 'z') || ch == '%' || (ch >= 'A' && ch <= 'Z') {
				break
			}
			i++
		}
		verb := spec[len(spec)-1]
		switch verb {
		case '%':
			out = append(out, '%')
		case 'd', 'i':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			spec[len(spec)-1] = 'd'
			out = append(out, fmt.Sprintf(string(spec), int64(v.bits))...)
		case 'u', 'x', 'X', 'o':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			if verb == 'u' {
				spec[len(spec)-1] = 'd'
			}
			out = append(out, fmt.Sprintf(string(spec), v.bits)...)
		case 'c':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			out = append(out, byte(v.bits))
		case 'f', 'e', 'E', 'g', 'G':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			out = append(out, fmt.Sprintf(string(spec), v.float64())...)
		case 's':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			s, err := p.readCString(v.addr())
			if err != nil {
				return "", rtErr(pos, "printf %%s: %v", err)
			}
			out = append(out, fmt.Sprintf(string(spec), s)...)
		case 'p':
			v, err := nextArg()
			if err != nil {
				return "", err
			}
			out = append(out, fmt.Sprintf("0x%x", v.bits)...)
		default:
			return "", rtErr(pos, "printf: unsupported conversion %%%c", verb)
		}
	}
	return string(out), nil
}
