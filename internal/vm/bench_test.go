package vm

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/minic"
	"repro/internal/workload"
)

// compileBench builds a program once for benchmarking.
func compileBench(b *testing.B, src string, policy minic.PollPolicy) *minic.Program {
	b.Helper()
	prog, err := minic.Compile(src, policy)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkInterpreterThroughput measures raw statement execution rate on
// a tight arithmetic loop, the VM's hot path.
func BenchmarkInterpreterThroughput(b *testing.B) {
	prog := compileBench(b, `
		int main() {
			int i, s;
			s = 0;
			for (i = 0; i < 100000; i++) {
				s = s * 3 + i;
			}
			return s & 255;
		}
	`, minic.PollPolicy{})
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		p, err := NewProcess(prog, arch.Ultra5)
		if err != nil {
			b.Fatal(err)
		}
		p.MaxSteps = 10_000_000
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
		steps += p.Stats.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkCallOverhead measures function call cost including frame
// registration in the MSRLT.
func BenchmarkCallOverhead(b *testing.B) {
	prog := compileBench(b, `
		int leaf(int x) { return x + 1; }
		int main() {
			int i, s;
			s = 0;
			for (i = 0; i < 20000; i++) {
				s = leaf(s);
			}
			return s & 255;
		}
	`, minic.PollPolicy{})
	for _, disable := range []bool{false, true} {
		name := "msrlt-on"
		if disable {
			name = "msrlt-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := NewProcess(prog, arch.Ultra5)
				if err != nil {
					b.Fatal(err)
				}
				p.MaxSteps = 10_000_000
				p.DisableMigration = disable
				if _, err := p.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMallocPath measures the allocation path including MSRLT
// registration.
func BenchmarkMallocPath(b *testing.B) {
	prog := compileBench(b, `
		struct node { float v; struct node *next; };
		int main() {
			int i;
			struct node *p;
			for (i = 0; i < 10000; i++) {
				p = (struct node *) malloc(sizeof(struct node));
				p->v = i;
				free(p);
			}
			return 0;
		}
	`, minic.PollPolicy{})
	for i := 0; i < b.N; i++ {
		p, err := NewProcess(prog, arch.Ultra5)
		if err != nil {
			b.Fatal(err)
		}
		p.MaxSteps = 10_000_000
		if _, err := p.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSectionedSnapshot runs a sharded-lists workload to its migration
// point and returns a sectioned (v3) snapshot of it.
func benchSectionedSnapshot(b *testing.B) (*minic.Program, []byte) {
	b.Helper()
	prog, err := minic.Compile(workload.ShardedListsSource(8, 400), minic.PollPolicy{})
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewProcess(prog, arch.Ultra5)
	if err != nil {
		b.Fatal(err)
	}
	p.MaxSteps = 50_000_000
	p.PollHook = func(*Process, *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		b.Fatal("setup failed to reach migration point")
	}
	snap, err := p.CaptureSections(1)
	if err != nil {
		b.Fatal(err)
	}
	return prog, snap
}

// benchRestore restores the snapshot with the given heap-fill pool width.
// It backs both restore benchmarks so the serial and parallel rows differ
// only in RestoreWorkers; CI's bench smoke runs them (with ReportAllocs)
// to keep the parallel fill path honest about per-restore allocations —
// the pool must add workers, not garbage.
func benchRestore(b *testing.B, workers int) {
	prog, snap := benchSectionedSnapshot(b)
	b.SetBytes(int64(len(snap)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := NewProcess(prog, arch.Ultra5)
		if err != nil {
			b.Fatal(err)
		}
		q.RestoreWorkers = workers
		if err := q.RestoreInto(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialRestore measures the sectioned restore with the heap
// fills fully serial (the pre-pool behavior).
func BenchmarkSerialRestore(b *testing.B) { benchRestore(b, 1) }

// BenchmarkParallelRestore measures the same restore with a 4-wide heap
// fill pool. On a multi-core host the heap portion shrinks toward the
// makespan of its components; the restored image is identical either way
// (TestParallelRestoreMatrix pins that).
func BenchmarkParallelRestore(b *testing.B) { benchRestore(b, 4) }

// BenchmarkResumeFastForward measures how quickly a restored process
// reaches its migration point through deep nesting.
func BenchmarkResumeFastForward(b *testing.B) {
	prog := compileBench(b, `
		int deep(int n) {
			int r;
			if (n == 0) {
				migrate_here();
				return 1;
			}
			r = deep(n - 1);
			return r + 1;
		}
		int main() {
			int v;
			v = deep(50);
			return v;
		}
	`, minic.PollPolicy{})
	p, err := NewProcess(prog, arch.Ultra5)
	if err != nil {
		b.Fatal(err)
	}
	p.MaxSteps = 1_000_000
	p.PollHook = func(*Process, *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		b.Fatal("setup failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := RestoreProcess(prog, arch.Ultra5, res.State)
		if err != nil {
			b.Fatal(err)
		}
		q.MaxSteps = 1_000_000
		if _, err := q.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
