package vm

import (
	"fmt"
	"io"

	"repro/internal/minic"
)

// Trace support: when TraceTo is set, the process logs one line per
// executed statement (position and kind), call/return transitions, and
// migration events. This is the debugging aid for diagnosing why a resumed
// program diverges from its unmigrated run — diff two traces and the first
// differing line names the statement.

// TraceTo directs an execution trace to w; nil disables tracing.
func (p *Process) TraceTo(w io.Writer) { p.trace = w }

func (p *Process) tracef(format string, args ...interface{}) {
	if p.trace == nil {
		return
	}
	for range p.frames {
		io.WriteString(p.trace, "  ")
	}
	fmt.Fprintf(p.trace, format, args...)
	io.WriteString(p.trace, "\n")
}

// stmtKind names a statement for trace output.
func stmtKind(s minic.Stmt) string {
	switch st := s.(type) {
	case *minic.Block:
		return "block"
	case *minic.DeclStmt:
		return "decl " + st.Sym.Name
	case *minic.ExprStmt:
		return "expr"
	case *minic.If:
		return "if"
	case *minic.While:
		if st.DoWhile {
			return "do-while"
		}
		return "while"
	case *minic.For:
		return "for"
	case *minic.Return:
		return "return"
	case *minic.Break:
		return "break"
	case *minic.Continue:
		return "continue"
	case *minic.PollPoint:
		return "poll"
	case *minic.Empty:
		return "empty"
	}
	return "?"
}
