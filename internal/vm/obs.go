package vm

import (
	"time"

	"repro/internal/obs"
	"repro/internal/xdr"
)

// Pre-resolved handles into the default registry. The XDR encoder and
// decoder count their operations in plain ints (xdr.Encoder.Calls,
// xdr.Decoder.Calls); the VM flushes them here once per capture or
// restore, so the byte-packing hot path never touches an atomic.
var (
	mCaptures    = obs.Default.Counter("vm.captures")
	mRestores    = obs.Default.Counter("vm.restores")
	mEncodeCalls = obs.Default.Counter("xdr.encode.calls")
	mEncodeBytes = obs.Default.Counter("xdr.encode.bytes")
	mDecodeCalls = obs.Default.Counter("xdr.decode.calls")
	mDecodeBytes = obs.Default.Counter("xdr.decode.bytes")
	// Whole-operation and per-section latency distributions, the VM's
	// contribution to the phase histograms the obs report quantiles.
	mCaptureLat     = obs.Default.Histogram("vm.capture.latency")
	mRestoreLat     = obs.Default.Histogram("vm.restore.latency")
	mSectionEncode  = obs.Default.Histogram("vm.section.encode")
	mSectionRestore = obs.Default.Histogram("vm.section.restore")
	// Parallel-restore instrumentation: the pool width the last sectioned
	// restore engaged, and the fill latency of each heap component as
	// measured on its worker.
	mRestorePar     = obs.Default.Gauge("vm.restore.parallelism")
	mRestoreCompLat = obs.Default.Histogram("vm.restore.component.latency")
	// Live pre-copy instrumentation: the dirty-set size each delta round
	// observed when it started.
	mDirtyBlocks = obs.Default.Gauge("vm.dirty.blocks")
)

// flushCapture publishes one completed capture's encoder counters. The
// calls figure is the top-level snapshot encoder's: section bodies built
// by pool workers on private encoders appear as the single PutFixedOpaque
// that splices each into the stream.
func flushCapture(enc *xdr.Encoder, elapsed time.Duration) {
	mCaptures.Inc()
	mEncodeCalls.Add(int64(enc.Calls()))
	mEncodeBytes.Add(int64(enc.Len()))
	mCaptureLat.Observe(elapsed)
}

// flushRestore publishes one completed restore's decoder counters.
func flushRestore(calls, bytes int, elapsed time.Duration) {
	mRestores.Inc()
	mDecodeCalls.Add(int64(calls))
	mDecodeBytes.Add(int64(bytes))
	mRestoreLat.Observe(elapsed)
}
