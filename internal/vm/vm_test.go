package vm

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/minic"
)

// run compiles and executes src on machine m, returning the exit code and
// printf output.
func run(t *testing.T, src string, m *arch.Machine, policy minic.PollPolicy) (int, string) {
	t.Helper()
	prog, err := minic.Compile(src, policy)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p, err := NewProcess(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	p.Stdout = &out
	p.MaxSteps = 50_000_000
	res, err := p.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Migrated {
		t.Fatal("unexpected migration")
	}
	return res.ExitCode, out.String()
}

func runAll(t *testing.T, src string, want int) {
	t.Helper()
	for _, m := range arch.Machines() {
		code, _ := run(t, src, m, minic.PollPolicy{})
		if code != want {
			t.Errorf("%s: exit = %d, want %d", m.Name, code, want)
		}
	}
}

func TestArithmetic(t *testing.T) {
	runAll(t, `int main() { return 2 + 3 * 4 - 14 / 2 - 1; }`, 6)
	runAll(t, `int main() { return 17 % 5; }`, 2)
	runAll(t, `int main() { return (1 << 5) | 3 & 1 ^ 2; }`, 35)
	runAll(t, `int main() { return -(-7); }`, 7)
	runAll(t, `int main() { return 100 >> 2; }`, 25)
	runAll(t, `int main() { return ~0 & 255; }`, 255)
}

func TestComparisonsAndLogic(t *testing.T) {
	runAll(t, `int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + (1 == 1) + (1 != 1); }`, 4)
	runAll(t, `int main() { return (1 && 2) + (0 || 3) + !0 + !5; }`, 3)
	runAll(t, `int main() { int x; x = 0; (x = 1) && (x = 7); return x; }`, 7)
	runAll(t, `int main() { int x; x = 0; (x = 0) && (x = 7); return x; }`, 0)
	runAll(t, `int main() { return 5 > 3 ? 10 : 20; }`, 10)
}

func TestIntegerWidthSemantics(t *testing.T) {
	// char wraps at 8 bits (signed).
	runAll(t, `int main() { char c; c = 200; return c == -56; }`, 1)
	// unsigned char wraps at 8 bits.
	runAll(t, `int main() { unsigned char c; c = 260; return c; }`, 4)
	// short truncation.
	runAll(t, `int main() { short s; s = 70000; return s == 4464; }`, 1)
	// int arithmetic wraps at 32 bits on every machine.
	runAll(t, `int main() { int x; x = 2147483647; x = x + 1; return x == -2147483647 - 1; }`, 1)
	// unsigned comparison.
	runAll(t, `int main() { unsigned int u; u = 0; u = u - 1; return u > 1000; }`, 1)
}

func TestFloatingPoint(t *testing.T) {
	runAll(t, `int main() { double d; d = 1.5 + 2.25; return (int)(d * 4.0); }`, 15)
	runAll(t, `int main() { float f; f = 0.5f; return (int)(f * 8.0); }`, 4)
	runAll(t, `int main() { double d; d = 7.0; return (int)(d / 2.0); }`, 3)
	runAll(t, `int main() { int i; i = 7; return (int)((double)i / 2.0 * 2.0); }`, 7)
	runAll(t, `int main() { double d; d = -2.5; return (int)fabs(d) + (int)sqrt(16.0); }`, 6)
}

func TestControlFlow(t *testing.T) {
	runAll(t, `int main() {
		int i, s;
		s = 0;
		for (i = 1; i <= 10; i++) s += i;
		return s;
	}`, 55)
	runAll(t, `int main() {
		int n, steps;
		n = 27; steps = 0;
		while (n != 1) {
			if (n % 2) n = 3 * n + 1; else n = n / 2;
			steps++;
		}
		return steps;
	}`, 111)
	runAll(t, `int main() {
		int i, s;
		s = 0;
		for (i = 0; i < 100; i++) {
			if (i == 5) continue;
			if (i == 10) break;
			s += i;
		}
		return s;
	}`, 40)
	runAll(t, `int main() { int i; i = 0; do { i++; } while (i < 5); return i; }`, 5)
}

func TestFunctionsAndRecursion(t *testing.T) {
	runAll(t, `
		int fib(int n) {
			if (n < 2) return n;
			return fib(n-1) + fib(n-2);
		}
		int main() { return fib(15); }
	`, 610)
	runAll(t, `
		int acker(int m, int n) {
			if (m == 0) return n + 1;
			if (n == 0) return acker(m - 1, 1);
			return acker(m - 1, acker(m, n - 1));
		}
		int main() { return acker(2, 3); }
	`, 9)
	runAll(t, `
		void bump(int *p) { *p = *p + 1; }
		int main() { int x; x = 41; bump(&x); return x; }
	`, 42)
}

func TestPointersAndArrays(t *testing.T) {
	runAll(t, `int main() {
		int a[10];
		int i, s;
		int *p;
		for (i = 0; i < 10; i++) a[i] = i * i;
		p = a + 3;
		s = *p + p[1] + *(a + 5);
		return s;
	}`, 9+16+25)
	runAll(t, `int main() {
		int a, *b, **c;
		a = 5;
		b = &a;
		c = &b;
		**c = 9;
		return a;
	}`, 9)
	runAll(t, `int main() {
		double m[3][4];
		int i, j;
		for (i = 0; i < 3; i++)
			for (j = 0; j < 4; j++)
				m[i][j] = i * 10 + j;
		return (int)m[2][3];
	}`, 23)
	runAll(t, `int main() {
		int a[5];
		int *p, *q;
		p = &a[1];
		q = &a[4];
		return (int)(q - p);
	}`, 3)
}

func TestStructs(t *testing.T) {
	runAll(t, `
		struct point { int x; int y; };
		int main() {
			struct point p, q;
			p.x = 3; p.y = 4;
			q = p;
			q.x = 10;
			return p.x + q.x + q.y;
		}
	`, 17)
	runAll(t, `
		struct node { float data; struct node *link; };
		int main() {
			struct node a, b;
			struct node *p;
			a.data = 1.5; a.link = &b;
			b.data = 2.5; b.link = 0;
			p = &a;
			return (int)(p->data + p->link->data);
		}
	`, 4)
	runAll(t, `
		struct mix { char c; double d; short s; };
		int main() {
			struct mix m;
			m.c = 7; m.d = 2.5; m.s = 1000;
			return m.c + (int)m.d + m.s / 100;
		}
	`, 19)
}

func TestMallocFree(t *testing.T) {
	runAll(t, `
		struct node { float data; struct node *link; };
		int main() {
			struct node *head, *cur;
			int i, count;
			head = 0;
			for (i = 0; i < 10; i++) {
				cur = (struct node *) malloc(sizeof(struct node));
				cur->data = i;
				cur->link = head;
				head = cur;
			}
			count = 0;
			while (head) {
				cur = head;
				head = head->link;
				count += (int)cur->data;
				free(cur);
			}
			return count;
		}
	`, 45)
	runAll(t, `
		int main() {
			double *xs;
			int i;
			double s;
			xs = (double *) malloc(100 * sizeof(double));
			for (i = 0; i < 100; i++) xs[i] = 0.5;
			s = 0.0;
			for (i = 0; i < 100; i++) s += xs[i];
			free(xs);
			return (int)s;
		}
	`, 50)
}

func TestGlobals(t *testing.T) {
	runAll(t, `
		int counter;
		int bump(void) { counter++; return counter; }
		int main() {
			bump(); bump(); bump();
			return counter;
		}
	`, 3)
	runAll(t, `
		double table[10];
		int main() {
			int i;
			for (i = 0; i < 10; i++) table[i] = i;
			return (int)table[7];
		}
	`, 7)
}

func TestSizeofMachineDependent(t *testing.T) {
	src := `
		struct s { char c; double d; };
		int main() { return sizeof(struct s) + sizeof(long) + sizeof(int*); }
	`
	code32, _ := run(t, src, arch.Ultra5, minic.PollPolicy{})
	if code32 != 16+4+4 {
		t.Errorf("ultra5: %d", code32)
	}
	code64, _ := run(t, src, arch.AMD64, minic.PollPolicy{})
	if code64 != 16+8+8 {
		t.Errorf("amd64: %d", code64)
	}
	codei386, _ := run(t, src, arch.I386, minic.PollPolicy{})
	if codei386 != 12+4+4 {
		t.Errorf("i386: %d", codei386)
	}
}

func TestPrintf(t *testing.T) {
	_, out := run(t, `
		int main() {
			int i;
			double d;
			char msg[6];
			i = -42;
			d = 3.25;
			msg[0] = 'h'; msg[1] = 'i'; msg[2] = 0;
			printf("i=%d u=%u d=%.2f c=%c s=%s pct=%%\n", i, 7, d, 'x', msg);
			printf("hex=%x\n", 255);
			return 0;
		}
	`, arch.DEC5000, minic.PollPolicy{})
	want := "i=-42 u=7 d=3.25 c=x s=hi pct=%\nhex=ff\n"
	if out != want {
		t.Errorf("printf output = %q, want %q", out, want)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
		int main() {
			int i, x;
			srand(12345);
			x = 0;
			for (i = 0; i < 10; i++) x ^= rand();
			return x & 255;
		}
	`
	a, _ := run(t, src, arch.DEC5000, minic.PollPolicy{})
	b, _ := run(t, src, arch.SPARCV9, minic.PollPolicy{})
	if a != b {
		t.Errorf("rand differs across machines: %d vs %d", a, b)
	}
	if a == 0 {
		t.Log("rand xor happened to be zero; weak check")
	}
}

func TestExitBuiltin(t *testing.T) {
	runAll(t, `int main() { exit(7); return 1; }`, 7)
	runAll(t, `
		void deep(void) { exit(3); }
		int main() { deep(); return 1; }
	`, 3)
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`int main() { int x; return x / 0; }`, "division by zero"},
		{`int main() { int *p; p = 0; return *p; }`, "null pointer"},
		{`struct n {int x;}; int main() { struct n *p; p = 0; return p->x; }`, "null pointer"},
		{`int main() { int *p; p = (int*)malloc(7); return 0; }`, "not a multiple"},
		{`int main() { int a[2]; free(&a[0]); return 0; }`, "free"},
		{`int main() { while (1) {} return 0; }`, "step limit"},
	}
	for _, c := range cases {
		prog, err := minic.Compile(c.src, minic.PollPolicy{})
		if err != nil {
			t.Errorf("%q: compile: %v", c.src, err)
			continue
		}
		p, err := NewProcess(prog, arch.Ultra5)
		if err != nil {
			t.Fatal(err)
		}
		p.MaxSteps = 100000
		_, err = p.Run()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestStackDiscipline(t *testing.T) {
	src := `
		int depth(int n) {
			int local;
			local = n;
			if (n == 0) return 0;
			return depth(n - 1) + (local > 0);
		}
		int main() { return depth(50); }
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(prog, arch.SPARC20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run()
	if err != nil || res.ExitCode != 50 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	// After main returns, only main's frame remains (never popped by
	// design); all recursion frames must have been unregistered.
	if p.Space.FrameDepth() != 1 {
		t.Errorf("frame depth after run = %d", p.Space.FrameDepth())
	}
	if got := p.Table.LenSegment(2); got != len(prog.Func("main").Locals) {
		t.Logf("stack blocks remaining = %d", got)
	}
}

func TestCharStringHandling(t *testing.T) {
	runAll(t, `
		int strlength(char *s) {
			int n;
			n = 0;
			while (s[n]) n++;
			return n;
		}
		int main() { return strlength("hello world"); }
	`, 11)
}

func TestCompoundAssignOnPointers(t *testing.T) {
	runAll(t, `int main() {
		int a[10];
		int *p;
		int i;
		for (i = 0; i < 10; i++) a[i] = i;
		p = a;
		p += 4;
		p -= 1;
		return *p;
	}`, 3)
}

func TestAggregateParamByValue(t *testing.T) {
	runAll(t, `
		struct pair { int a; int b; };
		int sum(struct pair p) { p.a = 99; return p.a + p.b; }
		int main() {
			struct pair x;
			x.a = 1; x.b = 2;
			sum(x);
			return x.a;
		}
	`, 1)
}

func TestGlobalInitializers(t *testing.T) {
	runAll(t, `
		int base = 40;
		int negative = -8;
		long shifted = 1 << 6;
		double ratio = 2.5;
		float f = 1.5;
		unsigned char b = 260;
		char greeting[8] = "hi";
		int *nullp = 0;
		int main() {
			if (nullp != 0) return 1;
			if (greeting[0] != 'h' || greeting[1] != 'i' || greeting[2] != 0) return 2;
			return base + negative + (int)shifted + (int)(ratio * 2.0) + (int)(f * 2.0) + b;
		}
	`, 40-8+64+5+3+4)
	// Initializers survive migration like any other global state.
	prog, err := minic.Compile(`
		int counter = 100;
		int main() {
			int i;
			for (i = 0; i < 10; i++) {
				counter += i;
			}
			return counter;
		}
	`, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reference(t, prog, arch.Ultra5)
	code, _, migrated := runMigrating(t, prog, arch.DEC5000, arch.SPARCV9, 5)
	if !migrated || code != want {
		t.Errorf("migrated init: code=%d want=%d", code, want)
	}
}

func TestGlobalInitializerErrors(t *testing.T) {
	for _, src := range []string{
		`int x = y; int y; int main() { return 0; }`,
		`int x = f(); int f(void) { return 1; } int main() { return 0; }`,
		`struct s { int a; }; struct s v = 3; int main() { return 0; }`,
		`char buf[2] = "toolong"; int main() { return 0; }`,
		`int p = "str"; int main() { return 0; }`,
		`int *p = 5; int main() { return 0; }`,
	} {
		if _, err := minic.Compile(src, minic.PollPolicy{}); err == nil {
			t.Errorf("%q: invalid global initializer accepted", src)
		}
	}
}

func TestFloatComparisonsAndPointerIncDec(t *testing.T) {
	// Floating comparisons at the common type (compareFloat path).
	runAll(t, `int main() {
		double d; float f;
		d = 1.5; f = 2.5f;
		return (d < f) + (d <= f) + (f > d) + (f >= d) + (d == 1.5) + (d != f);
	}`, 6)
	// Pointer and float increment/decrement (incDec paths).
	runAll(t, `int main() {
		int a[4];
		int *p;
		double d;
		a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
		p = a;
		p++;
		++p;
		p--;
		d = 1.5;
		d++;
		--d;
		return *p + (int)d;
	}`, 2+1)
	// Float postfix.
	runAll(t, `int main() { float f; f = 2.5f; f++; f--; return (int)(f * 2.0); }`, 5)
}

func TestProcessIntrospectionHelpers(t *testing.T) {
	prog, err := minic.Compile(`
		int g;
		int main() { int local; local = 3; g = local; return g; }
	`, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(prog, arch.Ultra5)
	if err != nil {
		t.Fatal(err)
	}
	addr, sym, ok := p.GlobalByName("g")
	if !ok || sym.Name != "g" || addr == 0 {
		t.Fatalf("GlobalByName: %v %v %v", addr, sym, ok)
	}
	if p.GlobalAddr(sym) != addr {
		t.Error("GlobalAddr mismatch")
	}
	if _, _, ok := p.GlobalByName("nope"); ok {
		t.Error("phantom global")
	}
	if a2, ok := p.SnapshotAddressOf("g"); !ok || a2 != addr {
		t.Errorf("SnapshotAddressOf(g) = %v %v", a2, ok)
	}
	if _, ok := p.SnapshotAddressOf("missing"); ok {
		t.Error("SnapshotAddressOf of missing name succeeded")
	}
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.SnapshotAddressOf("local"); !ok {
		t.Error("SnapshotAddressOf could not find the frame local")
	}
}

func TestRestoreIntoMisuse(t *testing.T) {
	prog, err := minic.Compile(`int main() { int i; for (i=0;i<2;i++){} return 0; }`, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProcess(prog, arch.Ultra5)
	p.MaxSteps = 1000
	p.PollHook = func(*Process, *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatal("setup")
	}
	// RestoreInto on a process that has already run must be refused.
	if err := p.RestoreInto(res.State); err == nil {
		t.Error("RestoreInto on a running process succeeded")
	}
	// RestoreElapsed populated on the normal path.
	q, err := RestoreProcess(prog, arch.Ultra5, res.State)
	if err != nil {
		t.Fatal(err)
	}
	if q.RestoreElapsed() <= 0 {
		t.Error("RestoreElapsed not recorded")
	}
	// Recapture on a never-migrated process fails cleanly.
	fresh, _ := NewProcess(prog, arch.Ultra5)
	if _, err := fresh.Recapture(); err == nil {
		t.Error("Recapture of fresh process succeeded")
	}
}

func TestExecutionTrace(t *testing.T) {
	prog, err := minic.Compile(`
		int twice(int x) { return x * 2; }
		int main() {
			int i, v;
			v = 0;
			for (i = 0; i < 2; i++) {
				v = twice(v + 1);
			}
			do { v--; } while (0);
			if (v > 0) { ; } else { break_not_here(); }
			while (v > 4) v--;
			return v;
		}
		void break_not_here(void) { }
	`, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProcess(prog, arch.Ultra5)
	var trace bytes.Buffer
	p.TraceTo(&trace)
	p.MaxSteps = 100000
	if _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	out := trace.String()
	for _, want := range []string{"call twice", "[main]", "for", "do-while",
		"if", "while", "return", "poll", "decl"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	// Traces of an unmigrated run and the concatenation of a migrated
	// run's halves must agree on the executed-statement sequence after
	// the split point; here we just confirm the migration event lands in
	// the trace.
	q, _ := NewProcess(prog, arch.Ultra5)
	var t2 bytes.Buffer
	q.TraceTo(&t2)
	q.MaxSteps = 100000
	q.PollHook = func(*Process, *minic.Site) bool { return true }
	res, err := q.Run()
	if err != nil || !res.Migrated {
		t.Fatal("no migration")
	}
	if !strings.Contains(t2.String(), "migrating at site") {
		t.Errorf("migration event missing from trace:\n%s", t2.String())
	}
}
