package vm

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/collect"
	"repro/internal/minic"
	"repro/internal/snapshot"
	"repro/internal/workload"
	"repro/internal/xdr"
)

// stopSectioned compiles src with explicit poll points only (so the
// sole poll site is its migrate_here() intrinsic), runs it on Ultra 5 to
// that point, and returns the stopped process, its v1 state, and the
// expected final exit code from an unmigrated reference run.
func stopSectioned(t *testing.T, src string) (*Process, *minic.Program, []byte, int) {
	t.Helper()
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, _ := reference(t, prog, arch.Ultra5)
	p, err := NewProcess(prog, arch.Ultra5)
	if err != nil {
		t.Fatal(err)
	}
	p.Stdout = &bytes.Buffer{}
	p.MaxSteps = 50_000_000
	p.PollHook = func(_ *Process, _ *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migrated {
		t.Fatalf("finished (exit %d) before reaching migrate_here", res.ExitCode)
	}
	return p, prog, res.State, want
}

func TestSectionedSerialParallelIdentical(t *testing.T) {
	p, _, _, _ := stopSectioned(t, workload.ShardedListsSource(6, 40))
	serial, err := p.CaptureSections(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := p.CaptureSections(4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("serial (%d B) and parallel (%d B) snapshots differ", len(serial), len(parallel))
	}
	comps := 0
	for _, s := range p.SectionCaptureMetrics() {
		if s.Kind == "heap" {
			comps++
		}
	}
	if comps != 6 {
		t.Errorf("heap components = %d, want 6 (one per sharded list)", comps)
	}
}

func TestSectionedPartitionMergesSharedHeap(t *testing.T) {
	// Two lists spliced together at the tail form one connected component.
	src := `
		struct node { double data; struct node *link; };
		struct node *a;
		struct node *b;
		int main() {
			struct node *cur;
			int i, sum;
			a = 0;
			for (i = 1; i <= 10; i++) {
				cur = (struct node *) malloc(sizeof(struct node));
				cur->data = i;
				cur->link = a;
				a = cur;
			}
			b = (struct node *) malloc(sizeof(struct node));
			b->data = 99.0;
			b->link = a;
			migrate_here();
			sum = 0;
			cur = b;
			while (cur) {
				sum += (int)cur->data;
				cur = cur->link;
			}
			return sum % 128;
		}
	`
	p, _, _, _ := stopSectioned(t, src)
	if _, err := p.CaptureSections(1); err != nil {
		t.Fatal(err)
	}
	comps := 0
	for _, s := range p.SectionCaptureMetrics() {
		if s.Kind == "heap" {
			comps++
		}
	}
	if comps != 1 {
		t.Errorf("heap components = %d, want 1 (lists share their tail)", comps)
	}
}

func TestSectionedRestoreRoundTrip(t *testing.T) {
	p, prog, v1, want := stopSectioned(t, workload.ShardedListsSource(4, 30))
	v3, err := p.CaptureSections(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, dst := range []*arch.Machine{arch.Ultra5, arch.I386, arch.AMD64} {
		q, err := RestoreProcess(prog, dst, v3)
		if err != nil {
			t.Fatalf("restore on %s: %v", dst.Name, err)
		}
		re, err := q.Recapture()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, v1) {
			t.Errorf("%s: recaptured v1 state differs from the source's direct capture", dst.Name)
		}
		if len(q.SectionRestoreMetrics()) == 0 {
			t.Errorf("%s: no per-section restore metrics recorded", dst.Name)
		}
		q.Stdout = &bytes.Buffer{}
		q.MaxSteps = 50_000_000
		res, err := q.Run()
		if err != nil {
			t.Fatalf("resume on %s: %v", dst.Name, err)
		}
		if res.Migrated || res.ExitCode != want {
			t.Errorf("%s: resumed run = %+v, want exit %d", dst.Name, res, want)
		}
	}
}

func TestSectionedRejectsCorruption(t *testing.T) {
	p, prog, _, _ := stopSectioned(t, workload.ShardedListsSource(3, 20))
	v3, err := p.CaptureSections(1)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("body flip", func(t *testing.T) {
		mut := append([]byte(nil), v3...)
		mut[len(mut)/2] ^= 0x20
		_, err := RestoreProcess(prog, arch.I386, mut)
		if err == nil {
			t.Fatal("corrupted snapshot restored without error")
		}
		if !errors.Is(err, snapshot.ErrChecksum) && !errors.Is(err, collect.ErrCorruptStream) {
			t.Errorf("err = %v, want a checksum/corrupt-stream error", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := RestoreProcess(prog, arch.I386, v3[:len(v3)-6]); err == nil {
			t.Fatal("truncated snapshot restored without error")
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		mut := append([]byte(nil), v3...)
		mut[3] ^= 0xff
		if _, err := RestoreProcess(prog, arch.I386, mut); err == nil {
			t.Fatal("bad-magic snapshot restored without error")
		}
	})
	t.Run("missing globals", func(t *testing.T) {
		// Drop the final (globals) section but keep the framing valid:
		// reparse and re-encode all sections except the last.
		rd, err := snapshot.NewReader(xdr.NewDecoder(v3))
		if err != nil {
			t.Fatal(err)
		}
		secs, err := rd.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		short := snapshot.Encode(secs[:len(secs)-1])
		if _, err := RestoreProcess(prog, arch.I386, short); !errors.Is(err, collect.ErrCorruptStream) {
			t.Errorf("err = %v, want ErrCorruptStream", err)
		}
	})
}

func TestSectionedRejectsWrongProgram(t *testing.T) {
	p, _, _, _ := stopSectioned(t, workload.ShardedListsSource(3, 20))
	v3, err := p.CaptureSections(1)
	if err != nil {
		t.Fatal(err)
	}
	other, err := minic.Compile(`
		int main() {
			int i, s;
			s = 0;
			for (i = 0; i < 50; i++) { s += i; }
			return s % 97;
		}
	`, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreProcess(other, arch.I386, v3); !errors.Is(err, collect.ErrMismatch) {
		t.Errorf("err = %v, want ErrMismatch", err)
	}
}
