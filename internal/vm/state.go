package vm

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/collect"
	"repro/internal/memory"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/xdr"
)

// This file implements the transfer of process state. The stream has two
// parts, mirroring the paper's design:
//
//   - the execution state: the chain of active function invocations and,
//     for each, the migration site it is stopped at (the innermost frame at
//     the poll-point where migration occurred; each outer frame at the call
//     statement through which control entered the next frame);
//
//   - the memory state: for each frame, innermost first, the values of the
//     variables live at its site, collected with the MSRM library's
//     Save_variable (whose depth-first traversal brings in every reachable
//     heap block), followed by the global variables.
//
// Restoration rebuilds the frames (re-registering the same machine-
// independent block identifications), restores the live data, and leaves
// the process ready to fast-forward each function to its site.

const execMagic = 0x45584543 // "EXEC"

// StateStats describes one captured state, for the experiment harness.
type StateStats struct {
	Frames int
	Save   collect.SaveStats
	Bytes  int
	// Elapsed is the wall time of the whole capture (the paper's
	// "Collect" column), measured unconditionally.
	Elapsed time.Duration
}

// CaptureStats of the last migration performed by this process.
func (p *Process) CaptureStats() StateStats { return p.captureStats }

// RestoreStatsOf returns the statistics of the restore that initialized
// this process, when it was created by RestoreProcess.
func (p *Process) RestoreStatsOf() collect.RestoreStats { return p.restoreStats }

// RestoreElapsed returns the wall time of the restore that initialized
// this process (the paper's "Restore" column).
func (p *Process) RestoreElapsed() time.Duration { return p.restoreElapsed }

// Recapture re-collects the full process state at the migration point the
// process is stopped at. The measurement harness uses it to time data
// collection repeatedly without re-executing the program; collection does
// not modify the process, so every capture yields an identical stream.
func (p *Process) Recapture() ([]byte, error) {
	site, err := p.stoppedSite()
	if err != nil {
		return nil, err
	}
	return p.captureState(site)
}

// CaptureTo re-collects the full process state at the stopped migration
// point, writing into enc instead of a fresh buffer. When enc has a flush
// sink attached (xdr.Encoder.SetSink), completed prefixes of the stream are
// handed to the sink as collection proceeds, overlapping the depth-first
// MSR traversal with transmission. The caller owns the final FlushSink.
func (p *Process) CaptureTo(enc *xdr.Encoder) error {
	site, err := p.stoppedSite()
	if err != nil {
		return err
	}
	return p.captureStateTo(enc, site)
}

// captureSites resolves the site every active frame is stopped at:
// innermost is the poll-point that triggered this migration; each outer
// frame is at the call statement through which control entered the next
// frame; a restored-but-not-yet-resumed process is still at the sites the
// stream recorded.
func (p *Process) captureSites(innermost *minic.Site) ([]*minic.Site, error) {
	sites := make([]*minic.Site, len(p.frames))
	for i, f := range p.frames {
		var site *minic.Site
		switch {
		case i == len(p.frames)-1:
			site = innermost
		case f.curSite != nil:
			site = f.curSite
		case len(p.resumeSites) == len(p.frames):
			site = p.resumeSites[i]
		}
		if site == nil {
			return nil, fmt.Errorf("vm: frame %d (%s) has no active migration site", f.Depth, f.Fn.Name)
		}
		sites[i] = site
	}
	return sites, nil
}

// stoppedSite resolves the migration site this process is stopped at.
func (p *Process) stoppedSite() (*minic.Site, error) {
	site := p.lastSite
	if site == nil && len(p.resumeSites) > 0 {
		// A freshly restored process is stopped at the site its
		// innermost frame was captured at; re-capturing there encodes
		// the same logical state in this machine's representation.
		site = p.resumeSites[len(p.resumeSites)-1]
	}
	if site == nil {
		return nil, errors.New("vm: process is not stopped at a migration point")
	}
	return site, nil
}

// captureState encodes the full process state at a migration point.
// innermost is the poll site that triggered the migration.
func (p *Process) captureState(innermost *minic.Site) ([]byte, error) {
	enc := xdr.NewEncoder(1 << 12)
	if err := p.captureStateTo(enc, innermost); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}

// captureStateTo encodes the full process state at a migration point into
// the supplied encoder.
func (p *Process) captureStateTo(enc *xdr.Encoder, innermost *minic.Site) error {
	p.lastSite = innermost
	captureStart := time.Now()
	span := p.Obs.Child("collect")
	span.SetAttr("format", "mono")
	defer span.End()
	sites, err := p.captureSites(innermost)
	if err != nil {
		return err
	}
	enc.PutUint32(execMagic)
	enc.PutUint32(uint32(len(p.frames)))
	for i, f := range p.frames {
		enc.PutString(f.Fn.Name)
		enc.PutUint32(uint32(sites[i].ID))
	}

	saver := collect.NewSaver(p.Space, p.Table, p.TI, enc)
	saver.Instrument = p.Instrument
	// Live data, innermost frame first (as in the paper's example, where
	// foo's live data precedes main's).
	for i := len(p.frames) - 1; i >= 0; i-- {
		f := p.frames[i]
		for _, v := range sites[i].Live {
			if err := saver.SaveVariable(p.VarAddr(f, v)); err != nil {
				return fmt.Errorf("vm: collecting %s in %s: %w", v.Name, f.Fn.Name, err)
			}
		}
	}
	// Globals last.
	for _, g := range p.Prog.Globals {
		if err := saver.SaveVariable(p.globalAddrs[g.Index]); err != nil {
			return fmt.Errorf("vm: collecting global %s: %w", g.Name, err)
		}
	}
	saver.Finish()
	p.captureStats = StateStats{
		Frames:  len(p.frames),
		Save:    saver.Stats,
		Bytes:   enc.Len(),
		Elapsed: time.Since(captureStart),
	}
	// A monolithic capture supersedes any earlier sectioned one; clear the
	// per-section profile so SectionCaptureMetrics honours its "empty if
	// the last capture was monolithic" contract.
	p.sectionCapture = nil
	p.sectionWorkers = 0
	span.SetBytes(int64(enc.Len()))
	flushCapture(enc, p.captureStats.Elapsed)
	return nil
}

// RestoreProcess builds a process on machine m from a captured state and
// prepares it to resume. Run() continues execution from the migration
// point.
func RestoreProcess(prog *minic.Program, m *arch.Machine, state []byte) (*Process, error) {
	return RestoreProcessObs(prog, m, state, nil)
}

// RestoreProcessObs is RestoreProcess with a parent span: the restore
// phases are recorded as children of span (a nil span disables tracing).
func RestoreProcessObs(prog *minic.Program, m *arch.Machine, state []byte, span *obs.Span) (*Process, error) {
	p, err := NewProcess(prog, m)
	if err != nil {
		return nil, err
	}
	p.Obs = span
	if err := p.restoreState(state); err != nil {
		return nil, err
	}
	return p, nil
}

// RestoreInto restores a captured state into a freshly created process
// (one that has not started running). RestoreProcess is the common path;
// RestoreInto exists so callers can configure the process — for example
// enable instrumentation — before the restore runs.
func (p *Process) RestoreInto(state []byte) error {
	if len(p.frames) != 0 {
		return errors.New("vm: RestoreInto on a process that already has frames")
	}
	return p.restoreState(state)
}

func (p *Process) restoreState(state []byte) error {
	restoreStart := time.Now()
	dec := xdr.NewDecoder(state)
	magic, err := dec.Uint32()
	if err != nil {
		return fmt.Errorf("vm: bad execution state header")
	}
	if magic == snapshot.Magic {
		// A sectioned (v3) snapshot; both formats restore through this
		// entry point, distinguished by their leading magic.
		return p.restoreSectioned(state, restoreStart)
	}
	if magic != execMagic {
		return fmt.Errorf("vm: bad execution state header")
	}
	span := p.Obs.Child("restore")
	span.SetAttr("format", "mono")
	defer span.End()
	nframes, err := dec.Uint32()
	if err != nil {
		return err
	}
	if nframes == 0 || nframes > 1<<16 {
		return fmt.Errorf("vm: implausible frame count %d", nframes)
	}

	sites := make([]*minic.Site, nframes)
	for i := 0; i < int(nframes); i++ {
		name, err := dec.String()
		if err != nil {
			return err
		}
		siteID, err := dec.Uint32()
		if err != nil {
			return err
		}
		fn := p.Prog.Func(name)
		if fn == nil {
			return fmt.Errorf("vm: state references unknown function %s", name)
		}
		site := fn.SiteByID(int(siteID))
		if site == nil {
			return fmt.Errorf("vm: function %s has no migration site %d", name, siteID)
		}
		sites[i] = site
		if _, err := p.pushFrame(fn); err != nil {
			return err
		}
	}

	restorer := collect.NewRestorer(p.Space, p.Table, p.TI, dec)
	restorer.Instrument = p.Instrument
	for i := int(nframes) - 1; i >= 0; i-- {
		f := p.frames[i]
		for _, v := range sites[i].Live {
			if err := restorer.RestoreVariable(p.VarAddr(f, v)); err != nil {
				return fmt.Errorf("vm: restoring %s in %s: %w", v.Name, f.Fn.Name, err)
			}
		}
	}
	for _, g := range p.Prog.Globals {
		if err := restorer.RestoreVariable(p.globalAddrs[g.Index]); err != nil {
			return fmt.Errorf("vm: restoring global %s: %w", g.Name, err)
		}
	}
	if dec.Remaining() != 0 {
		return fmt.Errorf("vm: %d trailing bytes in state stream", dec.Remaining())
	}
	p.resumeSites = sites
	p.restoreStats = restorer.Stats
	p.restoreElapsed = time.Since(restoreStart)
	span.SetBytes(int64(len(state)))
	flushRestore(dec.Calls(), len(state), p.restoreElapsed)
	return nil
}

// SnapshotAddressOf resolves a named variable in the current innermost
// frame or globals, for tests and tools inspecting process memory.
func (p *Process) SnapshotAddressOf(name string) (memory.Address, bool) {
	if len(p.frames) > 0 {
		f := p.frames[len(p.frames)-1]
		for _, v := range f.Fn.Locals {
			if v.Name == name {
				return p.VarAddr(f, v), true
			}
		}
	}
	addr, _, ok := p.GlobalByName(name)
	return addr, ok
}
