package vm

import (
	"math"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/minic"
	"repro/internal/types"
)

// value is an expression result in canonical 64-bit form:
//
//   - signed integers: sign-extended two's complement;
//   - unsigned integers and pointers: zero-extended;
//   - float: IEEE 754 single bits in the low 32;
//   - double: IEEE 754 double bits;
//   - structs (and non-decayed arrays): the address of the object —
//     aggregates are handled by reference, with assignment copying bytes.
type value struct {
	t    *types.Type
	bits uint64
}

func intValue(t *types.Type, v int64) value { return value{t: t, bits: uint64(v)} }
func ptrValue(t *types.Type, a memory.Address) value {
	return value{t: t, bits: uint64(a)}
}

// asBool interprets a scalar value in boolean position.
func (v value) asBool() bool {
	if v.t.IsFloat() {
		return v.float64() != 0
	}
	return v.bits != 0
}

// float64 returns the numeric value of a floating value.
func (v value) float64() float64 {
	if v.t.Kind == types.KPrim && v.t.Prim == arch.Float {
		return float64(math.Float32frombits(uint32(v.bits)))
	}
	return math.Float64frombits(v.bits)
}

// addr returns the pointer value.
func (v value) addr() memory.Address { return memory.Address(v.bits) }

// normInt truncates bits to the machine width of an integer kind and
// sign- or zero-extends back to 64 bits.
func normInt(m *arch.Machine, k arch.PrimKind, bits uint64) uint64 {
	size := m.SizeOf(k)
	if size == 8 {
		return bits
	}
	shift := uint(64 - 8*size)
	if k.IsSigned() {
		return uint64(int64(bits<<shift) >> shift)
	}
	return bits << shift >> shift
}

// convert adapts a scalar value to another type with C semantics.
func (p *Process) convert(v value, to *types.Type) value {
	from := v.t
	if from == to {
		return value{t: to, bits: v.bits}
	}
	switch {
	case to.IsPointer():
		// Pointer from pointer (or null constant): bits carry over.
		return value{t: to, bits: v.bits}
	case to.Kind == types.KPrim && to.Prim == arch.Double:
		switch {
		case from.IsFloat():
			return value{t: to, bits: math.Float64bits(v.float64())}
		case from.IsInteger() && from.Prim.IsSigned():
			return value{t: to, bits: math.Float64bits(float64(int64(v.bits)))}
		default:
			return value{t: to, bits: math.Float64bits(float64(v.bits))}
		}
	case to.Kind == types.KPrim && to.Prim == arch.Float:
		var f float64
		switch {
		case from.IsFloat():
			f = v.float64()
		case from.IsInteger() && from.Prim.IsSigned():
			f = float64(int64(v.bits))
		default:
			f = float64(v.bits)
		}
		return value{t: to, bits: uint64(math.Float32bits(float32(f)))}
	case to.IsInteger():
		var bits uint64
		if from.IsFloat() {
			// C truncation toward zero; out-of-range is undefined
			// behaviour in C, saturate like common hardware.
			f := v.float64()
			switch {
			case math.IsNaN(f):
				bits = 0
			case f >= math.MaxInt64:
				bits = math.MaxInt64
			case f <= math.MinInt64:
				bits = 1 << 63 // int64 minimum
			default:
				bits = uint64(int64(f))
			}
		} else {
			bits = v.bits
		}
		return value{t: to, bits: normInt(p.Mach, to.Prim, bits)}
	}
	// void or aggregate targets: carry bits (aggregates are addresses).
	return value{t: to, bits: v.bits}
}

// loadValue reads a scalar (or takes the address of an aggregate) of type
// t at addr.
func (p *Process) loadValue(addr memory.Address, t *types.Type) (value, error) {
	switch t.Kind {
	case types.KPrim:
		bits, err := p.Space.LoadPrim(addr, t.Prim)
		if err != nil {
			return value{}, err
		}
		return value{t: t, bits: bits}, nil
	case types.KPointer:
		a, err := p.Space.LoadPtr(addr)
		if err != nil {
			return value{}, err
		}
		return value{t: t, bits: uint64(a)}, nil
	default:
		return value{t: t, bits: uint64(addr)}, nil
	}
}

// storeValue writes a value of type t to addr (copying bytes for
// aggregates).
func (p *Process) storeValue(addr memory.Address, t *types.Type, v value) error {
	switch t.Kind {
	case types.KPrim:
		return p.Space.StorePrim(addr, t.Prim, v.bits)
	case types.KPointer:
		return p.Space.StorePtr(addr, v.addr())
	default:
		src, err := p.Space.Bytes(v.addr(), t.SizeOf(p.Mach))
		if err != nil {
			return err
		}
		return p.Space.WriteBytes(addr, src)
	}
}

// evalAddr computes the address designated by an lvalue expression.
func (p *Process) evalAddr(f *Frame, e minic.Expr) (memory.Address, error) {
	switch x := e.(type) {
	case *minic.Ident:
		return p.VarAddr(f, x.Sym), nil

	case *minic.StrLit:
		return p.globalAddrs[x.Sym.Index], nil

	case *minic.Unary:
		if x.Op == "*" {
			v, err := p.evalExpr(f, x.X)
			if err != nil {
				return 0, err
			}
			if v.addr() == 0 {
				return 0, rtErr(x.Position(), "null pointer dereference")
			}
			return v.addr(), nil
		}

	case *minic.Index:
		base, err := p.evalExpr(f, x.X)
		if err != nil {
			return 0, err
		}
		idx, err := p.evalExpr(f, x.I)
		if err != nil {
			return 0, err
		}
		if base.addr() == 0 {
			return 0, rtErr(x.Position(), "indexing null pointer")
		}
		elem := base.t.Elem
		off := int64(idx.bits) * int64(elem.SizeOf(p.Mach))
		return base.addr() + memory.Address(off), nil

	case *minic.Member:
		var base memory.Address
		var st *types.Type
		if x.Arrow {
			v, err := p.evalExpr(f, x.X)
			if err != nil {
				return 0, err
			}
			if v.addr() == 0 {
				return 0, rtErr(x.Position(), "member access through null pointer")
			}
			base = v.addr()
			st = v.t.Elem
		} else {
			a, err := p.evalAddr(f, x.X)
			if err != nil {
				return 0, err
			}
			base = a
			st = x.X.Type()
		}
		return base + memory.Address(st.OffsetOf(p.Mach, x.FieldIdx)), nil

	case *minic.Cast:
		// Decay casts of array lvalues appear in lvalue positions only
		// through checker rewrites; other casts are not lvalues.
		return p.evalAddr(f, x.X)
	}
	return 0, rtErr(e.Position(), "expression is not an lvalue")
}

// evalExpr evaluates an expression to a value.
func (p *Process) evalExpr(f *Frame, e minic.Expr) (value, error) {
	switch x := e.(type) {
	case *minic.IntLit:
		return value{t: x.Type(), bits: normInt(p.Mach, x.Type().Prim, x.Val)}, nil

	case *minic.FloatLit:
		return value{t: x.Type(), bits: math.Float64bits(x.Val)}, nil

	case *minic.StrLit:
		// Non-decayed string literal (aggregate reference).
		return ptrValue(x.Type(), p.globalAddrs[x.Sym.Index]), nil

	case *minic.Ident:
		addr := p.VarAddr(f, x.Sym)
		return p.loadValue(addr, x.Sym.Type)

	case *minic.Unary:
		return p.evalUnary(f, x)

	case *minic.Postfix:
		addr, err := p.evalAddr(f, x.X)
		if err != nil {
			return value{}, err
		}
		old, err := p.loadValue(addr, x.X.Type())
		if err != nil {
			return value{}, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		upd, err := p.incDec(x.Position(), old, delta)
		if err != nil {
			return value{}, err
		}
		if err := p.storeValue(addr, x.X.Type(), upd); err != nil {
			return value{}, err
		}
		return old, nil

	case *minic.Binary:
		return p.evalBinary(f, x)

	case *minic.Assign:
		return p.evalAssign(f, x)

	case *minic.Cond:
		c, err := p.evalExpr(f, x.C)
		if err != nil {
			return value{}, err
		}
		pick := x.Y
		if c.asBool() {
			pick = x.X
		}
		v, err := p.evalExpr(f, pick)
		if err != nil {
			return value{}, err
		}
		return p.convert(v, x.Type()), nil

	case *minic.Index, *minic.Member:
		addr, err := p.evalAddr(f, e)
		if err != nil {
			return value{}, err
		}
		return p.loadValue(addr, e.Type())

	case *minic.Call:
		return p.evalCall(f, x)

	case *minic.Cast:
		if x.X.Type() != nil && x.X.Type().Kind == types.KArray {
			// Array decay: the value is the array's address.
			addr, err := p.evalAddr(f, x.X)
			if err != nil {
				return value{}, err
			}
			return ptrValue(x.To, addr), nil
		}
		v, err := p.evalExpr(f, x.X)
		if err != nil {
			return value{}, err
		}
		return p.convert(v, x.To), nil

	case *minic.SizeofExpr:
		t := x.Of
		if t == nil {
			t = x.X.Type()
		}
		return value{t: types.ULong, bits: normInt(p.Mach, arch.ULong, uint64(t.SizeOf(p.Mach)))}, nil
	}
	return value{}, rtErr(e.Position(), "internal: unhandled expression %T", e)
}

// incDec computes v + delta for arithmetic and pointer values.
func (p *Process) incDec(pos minic.Pos, v value, delta int64) (value, error) {
	t := v.t
	switch {
	case t.IsPointer():
		step := int64(t.Elem.SizeOf(p.Mach))
		return ptrValue(t, memory.Address(int64(v.bits)+delta*step)), nil
	case t.IsFloat():
		f := v.float64() + float64(delta)
		if t.Prim == arch.Float {
			return value{t: t, bits: uint64(math.Float32bits(float32(f)))}, nil
		}
		return value{t: t, bits: math.Float64bits(f)}, nil
	case t.IsInteger():
		return value{t: t, bits: normInt(p.Mach, t.Prim, v.bits+uint64(delta))}, nil
	}
	return value{}, rtErr(pos, "cannot increment %s", t)
}

func (p *Process) evalUnary(f *Frame, x *minic.Unary) (value, error) {
	switch x.Op {
	case "&":
		addr, err := p.evalAddr(f, x.X)
		if err != nil {
			return value{}, err
		}
		return ptrValue(x.Type(), addr), nil

	case "*":
		addr, err := p.evalAddr(f, x)
		if err != nil {
			return value{}, err
		}
		return p.loadValue(addr, x.Type())

	case "-", "+":
		v, err := p.evalExpr(f, x.X)
		if err != nil {
			return value{}, err
		}
		v = p.convert(v, x.Type())
		if x.Op == "+" {
			return v, nil
		}
		t := x.Type()
		if t.IsFloat() {
			fv := -v.float64()
			if t.Prim == arch.Float {
				return value{t: t, bits: uint64(math.Float32bits(float32(fv)))}, nil
			}
			return value{t: t, bits: math.Float64bits(fv)}, nil
		}
		return value{t: t, bits: normInt(p.Mach, t.Prim, -v.bits)}, nil

	case "!":
		v, err := p.evalExpr(f, x.X)
		if err != nil {
			return value{}, err
		}
		if v.asBool() {
			return intValue(types.Int, 0), nil
		}
		return intValue(types.Int, 1), nil

	case "~":
		v, err := p.evalExpr(f, x.X)
		if err != nil {
			return value{}, err
		}
		v = p.convert(v, x.Type())
		return value{t: x.Type(), bits: normInt(p.Mach, x.Type().Prim, ^v.bits)}, nil

	case "++", "--":
		addr, err := p.evalAddr(f, x.X)
		if err != nil {
			return value{}, err
		}
		old, err := p.loadValue(addr, x.X.Type())
		if err != nil {
			return value{}, err
		}
		delta := int64(1)
		if x.Op == "--" {
			delta = -1
		}
		upd, err := p.incDec(x.Position(), old, delta)
		if err != nil {
			return value{}, err
		}
		if err := p.storeValue(addr, x.X.Type(), upd); err != nil {
			return value{}, err
		}
		return upd, nil
	}
	return value{}, rtErr(x.Position(), "internal: unhandled unary %s", x.Op)
}

func (p *Process) evalBinary(f *Frame, x *minic.Binary) (value, error) {
	// Short-circuit logicals.
	if x.Op == "&&" || x.Op == "||" {
		l, err := p.evalExpr(f, x.X)
		if err != nil {
			return value{}, err
		}
		lb := l.asBool()
		if (x.Op == "&&" && !lb) || (x.Op == "||" && lb) {
			if x.Op == "&&" {
				return intValue(types.Int, 0), nil
			}
			return intValue(types.Int, 1), nil
		}
		r, err := p.evalExpr(f, x.Y)
		if err != nil {
			return value{}, err
		}
		if r.asBool() {
			return intValue(types.Int, 1), nil
		}
		return intValue(types.Int, 0), nil
	}

	l, err := p.evalExpr(f, x.X)
	if err != nil {
		return value{}, err
	}
	r, err := p.evalExpr(f, x.Y)
	if err != nil {
		return value{}, err
	}
	return p.applyBinary(x.Position(), x.Op, l, r, x.Type())
}

// applyBinary evaluates l op r with result type rt (pointer arithmetic,
// comparisons, or arithmetic at the promoted common type).
func (p *Process) applyBinary(pos minic.Pos, op string, l, r value, rt *types.Type) (value, error) {
	lt, rtp := l.t, r.t

	// Pointer arithmetic and comparisons.
	if lt.IsPointer() || rtp.IsPointer() {
		switch op {
		case "+", "-":
			if lt.IsPointer() && rtp.IsPointer() {
				// ptr - ptr: element difference.
				es := int64(lt.Elem.SizeOf(p.Mach))
				diff := (int64(l.bits) - int64(r.bits)) / es
				return value{t: rt, bits: normInt(p.Mach, rt.Prim, uint64(diff))}, nil
			}
			pv, iv := l, r
			if rtp.IsPointer() {
				pv, iv = r, l
			}
			es := int64(pv.t.Elem.SizeOf(p.Mach))
			n := int64(iv.bits)
			if op == "-" {
				n = -n
			}
			return ptrValue(pv.t, memory.Address(int64(pv.bits)+n*es)), nil
		case "==", "!=", "<", "<=", ">", ">=":
			return compareBits(op, l.bits, r.bits, false), nil
		}
		return value{}, rtErr(pos, "invalid pointer operation %s", op)
	}

	// Comparisons at the common arithmetic type.
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		ct := commonArith(lt, rtp)
		lc, rc := p.convert(l, ct), p.convert(r, ct)
		if ct.IsFloat() {
			return compareFloat(op, lc.float64(), rc.float64()), nil
		}
		return compareBits(op, lc.bits, rc.bits, ct.Prim.IsSigned()), nil
	}

	// Shifts: the result type is the promoted left operand.
	if op == "<<" || op == ">>" {
		lc := p.convert(l, rt)
		sh := r.bits & 63
		var bits uint64
		if op == "<<" {
			bits = lc.bits << sh
		} else if rt.Prim.IsSigned() {
			bits = uint64(int64(lc.bits) >> sh)
		} else {
			bits = normInt(p.Mach, rt.Prim, lc.bits) >> sh
		}
		return value{t: rt, bits: normInt(p.Mach, rt.Prim, bits)}, nil
	}

	// Plain arithmetic at the result type.
	lc, rc := p.convert(l, rt), p.convert(r, rt)
	if rt.IsFloat() {
		a, b := lc.float64(), rc.float64()
		var res float64
		switch op {
		case "+":
			res = a + b
		case "-":
			res = a - b
		case "*":
			res = a * b
		case "/":
			res = a / b
		default:
			return value{}, rtErr(pos, "invalid floating operation %s", op)
		}
		if rt.Prim == arch.Float {
			return value{t: rt, bits: uint64(math.Float32bits(float32(res)))}, nil
		}
		return value{t: rt, bits: math.Float64bits(res)}, nil
	}

	a, b := lc.bits, rc.bits
	var bits uint64
	switch op {
	case "+":
		bits = a + b
	case "-":
		bits = a - b
	case "*":
		bits = a * b
	case "/", "%":
		if b == 0 {
			return value{}, rtErr(pos, "division by zero")
		}
		if rt.Prim.IsSigned() {
			q := int64(a) / int64(b)
			m := int64(a) % int64(b)
			if op == "/" {
				bits = uint64(q)
			} else {
				bits = uint64(m)
			}
		} else {
			// Compare at machine width for unsigned.
			aw := normInt(p.Mach, rt.Prim, a)
			bw := normInt(p.Mach, rt.Prim, b)
			if op == "/" {
				bits = aw / bw
			} else {
				bits = aw % bw
			}
		}
	case "&":
		bits = a & b
	case "|":
		bits = a | b
	case "^":
		bits = a ^ b
	default:
		return value{}, rtErr(pos, "invalid integer operation %s", op)
	}
	return value{t: rt, bits: normInt(p.Mach, rt.Prim, bits)}, nil
}

// commonArith mirrors the checker's usual-arithmetic-conversion result.
func commonArith(a, b *types.Type) *types.Type {
	// The checker already guarantees both are arithmetic.
	ranks := func(t *types.Type) int {
		switch t.Prim {
		case arch.Double:
			return 10
		case arch.Float:
			return 9
		case arch.ULongLong:
			return 8
		case arch.LongLong:
			return 7
		case arch.ULong:
			return 6
		case arch.Long:
			return 5
		case arch.UInt:
			return 4
		default:
			return 3
		}
	}
	pa, pb := a, b
	if ranks(pa) < 4 && pa.IsInteger() {
		if pa.Prim == arch.UInt {
			pa = types.UInt
		} else {
			pa = types.Int
		}
	}
	if ranks(pb) < 4 && pb.IsInteger() {
		if pb.Prim == arch.UInt {
			pb = types.UInt
		} else {
			pb = types.Int
		}
	}
	if ranks(pa) >= ranks(pb) {
		return pa
	}
	return pb
}

func compareBits(op string, a, b uint64, signed bool) value {
	var res bool
	if signed {
		sa, sb := int64(a), int64(b)
		switch op {
		case "==":
			res = sa == sb
		case "!=":
			res = sa != sb
		case "<":
			res = sa < sb
		case "<=":
			res = sa <= sb
		case ">":
			res = sa > sb
		case ">=":
			res = sa >= sb
		}
	} else {
		switch op {
		case "==":
			res = a == b
		case "!=":
			res = a != b
		case "<":
			res = a < b
		case "<=":
			res = a <= b
		case ">":
			res = a > b
		case ">=":
			res = a >= b
		}
	}
	if res {
		return intValue(types.Int, 1)
	}
	return intValue(types.Int, 0)
}

func compareFloat(op string, a, b float64) value {
	var res bool
	switch op {
	case "==":
		res = a == b
	case "!=":
		res = a != b
	case "<":
		res = a < b
	case "<=":
		res = a <= b
	case ">":
		res = a > b
	case ">=":
		res = a >= b
	}
	if res {
		return intValue(types.Int, 1)
	}
	return intValue(types.Int, 0)
}

func (p *Process) evalAssign(f *Frame, x *minic.Assign) (value, error) {
	addr, err := p.evalAddr(f, x.X)
	if err != nil {
		return value{}, err
	}
	lt := x.X.Type()
	rhs, err := p.evalExpr(f, x.Y)
	if err != nil {
		return value{}, err
	}
	var result value
	if x.Op == "=" {
		result = p.convert(rhs, lt)
	} else {
		old, err := p.loadValue(addr, lt)
		if err != nil {
			return value{}, err
		}
		op := x.Op[:len(x.Op)-1]
		// Pointer compound assignment (p += n) keeps the pointer type;
		// arithmetic compound assignment computes at the common type
		// then converts back to the target type.
		if lt.IsPointer() {
			result, err = p.applyBinary(x.Position(), op, old, rhs, lt)
		} else {
			ct := commonArith(lt, promoteForVM(rhs.t))
			var v value
			v, err = p.applyBinary(x.Position(), op, old, rhs, ct)
			if err == nil {
				result = p.convert(v, lt)
			}
		}
		if err != nil {
			return value{}, err
		}
	}
	if err := p.storeValue(addr, lt, result); err != nil {
		return value{}, err
	}
	return result, nil
}

// promoteForVM mirrors integer promotion for compound assignment.
func promoteForVM(t *types.Type) *types.Type {
	if t.IsPointer() || t.IsFloat() {
		return t
	}
	switch t.Prim {
	case arch.Char, arch.UChar, arch.Short, arch.UShort:
		return types.Int
	}
	return t
}
