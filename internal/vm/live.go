package vm

// Live pre-copy capture (the source side of envelope version 4).
//
// A stop-and-copy migration pays the whole capture+wire+restore time as
// downtime. The pre-copy loop instead captures the process repeatedly
// while it keeps running between poll points:
//
//	round 0   full sectioned capture, process resumes while it ships
//	round k   delta capture — only the sections the dirty set touched
//	          re-encode (collect.EncodeDelta); the process resumes
//	final     process stays stopped; the last delta is the only state
//	          the downtime window has to move
//
// A LiveCapture owns the per-process machinery: it turns the memory
// layer's write barrier on, carries the collect.DeltaTracker from round
// to round, and advances the dirty watermark after every capture. Each
// round yields the full section list in the deterministic v3 order —
// clean sections carry their cached bodies — plus a content hash per
// section, so the transport can ship only bodies the destination lacks
// and the destination can assemble a byte-identical v3 snapshot from
// the final round's manifest.

import (
	"crypto/sha256"
	"time"

	"repro/internal/collect"
	"repro/internal/memory"
	"repro/internal/snapshot"
	"repro/internal/xdr"
)

// LiveSection is one section of a pre-copy round: its snapshot framing
// identity, the SHA-256 of its body, and the body itself. Bodies are
// owned by the capture's delta tracker and stay valid across rounds
// (the sender may still be shipping a round while the next one is
// captured), but must not be mutated.
type LiveSection struct {
	Kind snapshot.Kind
	ID   uint32
	Hash [sha256.Size]byte
	Body []byte
	// Reused reports the body was carried over from the previous round
	// without re-encoding (its hash was shipped before).
	Reused bool
}

// LiveRound is one delta capture of the pre-copy loop.
type LiveRound struct {
	// Sections lists every section of the process state in the
	// deterministic v3 snapshot order: exec, heap components, frames
	// innermost-first, globals.
	Sections []LiveSection
	// DirtyBlocks is the size of the dirty set this round observed —
	// the blocks written since the previous round's capture (0 for
	// round 0, where everything is new).
	DirtyBlocks int
	// Encoded and Reused count re-encoded and carried-over sections.
	Encoded, Reused int
	// Bytes is the total body size of the round; FreshBytes counts only
	// the re-encoded bodies (the upper bound on what must cross the
	// wire).
	Bytes, FreshBytes int
	Elapsed           time.Duration
}

// LiveCapture drives the delta captures of one pre-copy migration. It
// is bound to one stopped-and-resumable process (NoAutoCapture mode);
// Close turns the write barrier back off.
type LiveCapture struct {
	p       *Process
	dt      *collect.DeltaTracker
	since   uint64 // dirty watermark: writes at or after this generation are unshipped
	workers int
	rounds  int
}

// NewLiveCapture prepares a process for pre-copy rounds: the write
// barrier turns on (round 0 ships everything, so earlier writes need no
// tracking) and the delta cache starts empty. workers bounds the
// section-encoding pool exactly as in CaptureSections.
func (p *Process) NewLiveCapture(workers int) *LiveCapture {
	p.Space.StartDirtyTracking()
	return &LiveCapture{p: p, dt: collect.NewDeltaTracker(), workers: workers}
}

// Close ends the pre-copy sequence, turning the write barrier off. The
// process is unchanged otherwise; after a final round it remains
// stopped at its site and can be captured or resumed like any stopped
// process.
func (lc *LiveCapture) Close() {
	lc.p.Space.StopDirtyTracking()
}

// Rounds returns the number of rounds captured so far.
func (lc *LiveCapture) Rounds() int { return lc.rounds }

// DirtyBlocks returns the current size of the unshipped dirty set —
// the blocks written since the last Round. The driver polls this
// between rounds to decide whether the loop is converging.
func (lc *LiveCapture) DirtyBlocks() int {
	if lc.since == 0 {
		return 0
	}
	return lc.p.Space.DirtySince(lc.since)
}

// Round captures one pre-copy round at the site the process is stopped
// at. Round 0 encodes every section; later rounds re-encode only what
// the dirty set touched and carry the rest over from the cache. The
// concatenation of the returned sections (snapshot framing, manifest
// order) is byte-identical to CaptureSections of the same stopped
// state.
func (lc *LiveCapture) Round() (*LiveRound, error) {
	p := lc.p
	start := time.Now()
	site, err := p.stoppedSite()
	if err != nil {
		return nil, err
	}
	sites, err := p.captureSites(site)
	if err != nil {
		return nil, err
	}
	roots := p.liveRoots(sites)

	dirtyBlocks := 0
	var dirty collect.DirtyFunc
	if lc.since > 0 {
		dirtyBlocks = p.Space.DirtySince(lc.since)
		since := lc.since
		dirty = func(addr memory.Address, n int) bool {
			return p.Space.RangeDirtySince(addr, n, since)
		}
	}
	mDirtyBlocks.Set(int64(dirtyBlocks))

	span := p.Obs.Child("collect")
	span.SetAttr("format", "delta")
	defer span.End()

	pt, err := collect.BuildPartition(p.Space, p.Table, p.TI, roots)
	if err != nil {
		return nil, err
	}
	st, err := collect.EncodeDelta(p.Space, p.Table, p.TI, pt, roots, lc.dt, dirty, lc.workers)
	if err != nil {
		return nil, err
	}

	// The exec section is tiny and site-dependent; encode it fresh every
	// round.
	execEnc := xdr.NewEncoder(64)
	execEnc.PutUint32(uint32(len(p.frames)))
	for i, f := range p.frames {
		execEnc.PutString(f.Fn.Name)
		execEnc.PutUint32(uint32(sites[i].ID))
	}
	execBody := execEnc.Bytes()

	nframes := len(p.frames)
	round := &LiveRound{
		Sections:    make([]LiveSection, 0, 1+len(st.Heap)+nframes+1),
		DirtyBlocks: dirtyBlocks,
		Encoded:     st.Encoded + 1, // + exec
		Reused:      st.Reused,
	}
	add := func(kind snapshot.Kind, id uint32, body []byte, reused bool) {
		round.Sections = append(round.Sections, LiveSection{
			Kind: kind, ID: id, Hash: sha256.Sum256(body), Body: body, Reused: reused,
		})
		round.Bytes += len(body)
		if !reused {
			round.FreshBytes += len(body)
		}
	}
	add(snapshot.KindExec, 0, execBody, false)
	for i, h := range st.Heap {
		add(snapshot.KindHeap, uint32(i), h.Body, h.Reused)
	}
	for i := nframes - 1; i >= 0; i-- {
		add(snapshot.KindFrame, uint32(i+1), st.Frames[i].Body, st.Frames[i].Reused)
	}
	add(snapshot.KindGlobals, 0, st.Globals.Body, st.Globals.Reused)

	// Move the watermark: writes from here on belong to the next round.
	lc.since = p.Space.AdvanceGeneration()
	lc.rounds++
	round.Elapsed = time.Since(start)
	span.SetBytes(int64(round.FreshBytes))
	return round, nil
}

// Snapshot assembles a round's sections into a complete v3 snapshot,
// byte-identical to CaptureSections of the same stopped state. The
// destination side of a live migration performs the equivalent assembly
// from its received bodies; this form serves the source-side fallback
// and tests.
func (r *LiveRound) Snapshot() []byte {
	secs := make([]snapshot.Section, len(r.Sections))
	for i, s := range r.Sections {
		secs[i] = snapshot.Section{Kind: s.Kind, ID: s.ID, Body: s.Body}
	}
	return snapshot.Encode(secs)
}
