package vm

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/minic"
	"repro/internal/msr"
	"repro/internal/types"
	"repro/internal/xdr"
)

// DescribeState renders a captured process state as a human-readable
// listing without building a process: the execution state header, then
// every item and block record of the collection stream. It is the
// introspection behind cmd/migstate and a debugging aid when a restore
// fails on a different build of the program.
func DescribeState(prog *minic.Program, state []byte) (string, error) {
	var b strings.Builder
	dec := xdr.NewDecoder(state)

	magic, err := dec.Uint32()
	if err != nil || magic != execMagic {
		return "", fmt.Errorf("vm: not an execution state stream")
	}
	nframes, err := dec.Uint32()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "execution state: %d active frame(s)\n", nframes)

	type frameInfo struct {
		fn   *minic.FuncSymbol
		site *minic.Site
	}
	frames := make([]frameInfo, nframes)
	for i := 0; i < int(nframes); i++ {
		name, err := dec.String()
		if err != nil {
			return "", err
		}
		siteID, err := dec.Uint32()
		if err != nil {
			return "", err
		}
		fn := prog.Func(name)
		if fn == nil {
			return "", fmt.Errorf("vm: unknown function %q in stream", name)
		}
		site := fn.SiteByID(int(siteID))
		if site == nil {
			return "", fmt.Errorf("vm: function %s has no site %d", name, siteID)
		}
		frames[i] = frameInfo{fn, site}
		kind := "poll-point"
		if site.IsCall {
			kind = "call site"
		}
		fmt.Fprintf(&b, "  frame %d: %s stopped at %s %d (%s), %d live variables\n",
			i+1, name, kind, siteID, site.Stmt.Position(), len(site.Live))
	}

	d := &describer{prog: prog, dec: dec, b: &b, restored: map[msr.BlockID]bool{}}
	fmt.Fprintf(&b, "memory state:\n")
	for i := int(nframes) - 1; i >= 0; i-- {
		fr := frames[i]
		for _, v := range fr.site.Live {
			fmt.Fprintf(&b, "  [%s] %s %s:\n", fr.fn.Name, v.Type, v.Name)
			if err := d.item(2); err != nil {
				return "", err
			}
		}
	}
	for _, g := range prog.Globals {
		fmt.Fprintf(&b, "  [global] %s %s:\n", g.Type, g.Name)
		if err := d.item(2); err != nil {
			return "", err
		}
	}
	if dec.Remaining() != 0 {
		fmt.Fprintf(&b, "WARNING: %d trailing bytes\n", dec.Remaining())
	}
	fmt.Fprintf(&b, "totals: %d blocks, %d bytes of stream\n", d.blocks, len(state))
	return b.String(), nil
}

// describer walks the collection stream mirroring the Restorer's state
// machine, but renders instead of writing memory.
type describer struct {
	prog     *minic.Program
	dec      *xdr.Decoder
	b        *strings.Builder
	restored map[msr.BlockID]bool
	blocks   int
}

func (d *describer) indent(n int) {
	d.b.WriteString(strings.Repeat("  ", n))
}

// item consumes one pointer-ref item (and its block record if present).
func (d *describer) item(depth int) error {
	seg, err := d.dec.Uint32()
	if err != nil {
		return err
	}
	if seg == 0xffffffff {
		d.indent(depth)
		d.b.WriteString("null\n")
		return nil
	}
	if seg >= uint32(memory.NumSegments) {
		return fmt.Errorf("vm: bad segment %d in stream", seg)
	}
	major, err := d.dec.Uint32()
	if err != nil {
		return err
	}
	minor, err := d.dec.Uint32()
	if err != nil {
		return err
	}
	ordinal, err := d.dec.Uint32()
	if err != nil {
		return err
	}
	id := msr.BlockID{Seg: memory.Segment(seg), Major: major, Minor: minor}
	d.indent(depth)
	if d.restored[id] {
		fmt.Fprintf(d.b, "-> %s element %d (already transferred)\n", id, ordinal)
		return nil
	}
	d.restored[id] = true
	fmt.Fprintf(d.b, "-> %s element %d, record follows:\n", id, ordinal)
	return d.block(depth + 1)
}

// block consumes one block record.
func (d *describer) block(depth int) error {
	tIdx, err := d.dec.Uint32()
	if err != nil {
		return err
	}
	count, err := d.dec.Uint32()
	if err != nil {
		return err
	}
	ty, err := d.prog.TI.At(int(tIdx))
	if err != nil {
		return err
	}
	d.blocks++
	d.indent(depth)
	fmt.Fprintf(d.b, "block: %s x%d (%d scalars)\n", ty, count, int(count)*ty.ScalarCount())
	// The wire layout is machine-independent; walk the plan of any
	// machine (offsets are irrelevant, only kinds and counts matter).
	plan := d.prog.TI.Plan(ty, arch.Ultra5)
	for i := 0; i < int(count); i++ {
		if err := d.ops(plan.Ops, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func (d *describer) ops(ops []types.PlanOp, depth int) error {
	for _, op := range ops {
		switch {
		case op.Sub != nil:
			for i := 0; i < op.Count; i++ {
				if err := d.ops(op.Sub, depth); err != nil {
					return err
				}
			}
		case op.Kind == arch.Ptr:
			for i := 0; i < op.Count; i++ {
				if err := d.item(depth); err != nil {
					return err
				}
			}
		default:
			ws := wireSizeOf(op.Kind)
			if _, err := d.dec.Take(ws * op.Count); err != nil {
				return err
			}
			d.indent(depth)
			fmt.Fprintf(d.b, "%d x %s (%d bytes)\n", op.Count, op.Kind, ws*op.Count)
		}
	}
	return nil
}

// wireSizeOf mirrors the collect package's canonical widths.
func wireSizeOf(k arch.PrimKind) int {
	switch k {
	case arch.Char, arch.UChar:
		return 1
	case arch.Short, arch.UShort:
		return 2
	case arch.Int, arch.UInt, arch.Float:
		return 4
	default:
		return 8
	}
}
