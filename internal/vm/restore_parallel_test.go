package vm

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/minic"
	"repro/internal/workload"
)

func maxProcs() int { return runtime.GOMAXPROCS(0) }

// restoreWith rebuilds a fresh process from the snapshot with the given
// restore pool width and returns its v1 recapture.
func restoreWith(t *testing.T, prog *minic.Program, m *arch.Machine, snap []byte, workers int) (*Process, []byte) {
	t.Helper()
	q, err := NewProcess(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	q.RestoreWorkers = workers
	if err := q.RestoreInto(snap); err != nil {
		t.Fatalf("restore with %d workers on %s: %v", workers, m.Name, err)
	}
	re, err := q.Recapture()
	if err != nil {
		t.Fatal(err)
	}
	return q, re
}

// TestParallelRestoreMatrix restores the same sectioned snapshot with a
// serial and a parallel heap-fill pool on every endianness/width pairing
// of the transfer matrix, and requires byte-identical recaptures — the
// parallel restore must be invisible in the restored state. CI runs this
// package with -race -count=2, so the worker pool's sharing discipline
// (private MSRLT counters, pre-materialized heap backing) is exercised
// under the race detector.
func TestParallelRestoreMatrix(t *testing.T) {
	p, prog, v1, want := stopSectioned(t, workload.ShardedListsSource(6, 60))
	snap, err := p.CaptureSections(1)
	if err != nil {
		t.Fatal(err)
	}
	machines := []*arch.Machine{
		arch.DEC5000, // LE ILP32
		arch.SPARC20, // BE ILP32
		arch.AMD64,   // LE LP64
		arch.SPARCV9, // BE LP64
		arch.I386,    // LE ILP32, packed doubles
		arch.Alpha,   // LE LP64
	}
	for _, m := range machines {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			_, serial := restoreWith(t, prog, m, snap, 1)
			if !bytes.Equal(serial, v1) {
				t.Fatalf("serial restore on %s does not recapture the source state", m.Name)
			}
			for _, w := range []int{2, 4, 8} {
				q, par := restoreWith(t, prog, m, snap, w)
				if !bytes.Equal(par, serial) {
					t.Errorf("%d-worker restore on %s differs from the serial restore", w, m.Name)
				}
				if got := q.RestoreWorkersEngaged(); got < 1 || got > w {
					t.Errorf("%d-worker restore engaged %d workers", w, got)
				}
				if w == 4 {
					q.Stdout = &bytes.Buffer{}
					q.MaxSteps = 50_000_000
					res, err := q.Run()
					if err != nil {
						t.Fatalf("resume on %s: %v", m.Name, err)
					}
					if res.Migrated || res.ExitCode != want {
						t.Errorf("%s: resumed run = %+v, want exit %d", m.Name, res, want)
					}
				}
			}
		})
	}
}

// TestRestoreWorkerCountResolution pins the worker-resolution contract:
// an explicit RestoreWorkers wins, the process-wide cap applies only to
// the zero default, and a negative value ignores the cap.
func TestRestoreWorkerCountResolution(t *testing.T) {
	defer SetMaxRestoreWorkers(0)
	p := &Process{}

	SetMaxRestoreWorkers(1)
	if got := p.restoreWorkerCount(); got != 1 {
		t.Errorf("capped default = %d, want 1", got)
	}
	p.RestoreWorkers = 3
	if got := p.restoreWorkerCount(); got != 3 {
		t.Errorf("explicit = %d, want 3 (cap must not apply)", got)
	}
	p.RestoreWorkers = -1
	if got, want := p.restoreWorkerCount(), maxProcs(); got != want {
		t.Errorf("negative = %d, want GOMAXPROCS %d", got, want)
	}
	SetMaxRestoreWorkers(0)
	p.RestoreWorkers = 0
	if got, want := p.restoreWorkerCount(), maxProcs(); got != want {
		t.Errorf("uncapped default = %d, want GOMAXPROCS %d", got, want)
	}
	if MaxRestoreWorkers() != 0 {
		t.Errorf("MaxRestoreWorkers = %d after reset", MaxRestoreWorkers())
	}
}
