package vm

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/minic"
	"repro/internal/msr"
)

// runMigrating executes src on the source machine until the n-th poll
// check, migrates to the destination machine, resumes, and returns the
// final exit code and the concatenated output of both halves. If the
// program finishes before the n-th poll, it reports (code, out, false).
func runMigrating(t *testing.T, prog *minic.Program, src, dst *arch.Machine, n int) (int, string, bool) {
	t.Helper()
	p, err := NewProcess(prog, src)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	p.Stdout = &out
	p.MaxSteps = 50_000_000
	polls := 0
	p.PollHook = func(_ *Process, _ *minic.Site) bool {
		polls++
		return polls == n
	}
	res, err := p.Run()
	if err != nil {
		t.Fatalf("source run: %v", err)
	}
	if !res.Migrated {
		return res.ExitCode, out.String(), false
	}

	q, err := RestoreProcess(prog, dst, res.State)
	if err != nil {
		t.Fatalf("restore on %s: %v", dst.Name, err)
	}
	q.Stdout = &out
	q.MaxSteps = 50_000_000
	res2, err := q.Run()
	if err != nil {
		t.Fatalf("resumed run on %s: %v", dst.Name, err)
	}
	if res2.Migrated {
		t.Fatal("unexpected second migration")
	}
	return res2.ExitCode, out.String(), true
}

// compile for tests with loop-head polls.
func compileLoops(t *testing.T, src string) *minic.Program {
	t.Helper()
	prog, err := minic.Compile(src, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// reference runs the program without migration.
func reference(t *testing.T, prog *minic.Program, m *arch.Machine) (int, string) {
	t.Helper()
	p, err := NewProcess(prog, m)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	p.Stdout = &out
	p.MaxSteps = 50_000_000
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res.ExitCode, out.String()
}

func TestMigrateSimpleLoop(t *testing.T) {
	src := `
		int main() {
			int i, s;
			s = 0;
			for (i = 1; i <= 100; i++) {
				s += i;
			}
			return s % 251;
		}
	`
	prog := compileLoops(t, src)
	wantCode, wantOut := reference(t, prog, arch.DEC5000)
	for _, n := range []int{1, 2, 50, 99, 100} {
		code, out, migrated := runMigrating(t, prog, arch.DEC5000, arch.SPARC20, n)
		if !migrated {
			t.Fatalf("poll %d: did not migrate", n)
		}
		if code != wantCode || out != wantOut {
			t.Errorf("poll %d: code=%d out=%q, want %d %q", n, code, out, wantCode, wantOut)
		}
	}
}

func TestMigrateAllMachinePairs(t *testing.T) {
	src := `
		int main() {
			int i;
			double acc;
			acc = 0.0;
			for (i = 1; i <= 40; i++) {
				acc += 1.0 / i;
			}
			return (int)(acc * 1000.0);
		}
	`
	prog := compileLoops(t, src)
	want, _ := reference(t, prog, arch.Ultra5)
	for _, sm := range arch.Machines() {
		for _, dm := range arch.Machines() {
			code, _, migrated := runMigrating(t, prog, sm, dm, 20)
			if !migrated {
				t.Fatalf("%s->%s: no migration", sm.Name, dm.Name)
			}
			if code != want {
				t.Errorf("%s -> %s: code = %d, want %d", sm.Name, dm.Name, code, want)
			}
		}
	}
}

func TestMigratePaperExample(t *testing.T) {
	// The example of Figure 1, with the migration point right before the
	// allocation in foo at the fifth iteration, as in Section 3.2. The
	// program then verifies its own pointer structure.
	src := `
		struct node {
			float data;
			struct node *link;
		};
		struct node *first, *last;

		void foo(struct node **p, int **q) {
			migrate_here();
			*p = (struct node *) malloc(sizeof(struct node));
			(*p)->data = 10.0;
			(**q)++;
		}

		int main() {
			int i;
			int a, *b;
			struct node *parray[10];
			a = 1;
			b = &a;
			for (i = 0; i < 10; i++) {
				foo(parray + i, &b);
				first = parray[0];
				last = parray[i];
				first->link = last;
				if (i > 0) parray[i]->link = parray[i-1];
			}
			/* verify: a was incremented through b 10 times, plus initial 1 */
			if (a != 11) return 1;
			/* first->link must be last */
			if (first->link != last) return 2;
			/* chain: parray[9] -> parray[8] -> ... -> parray[1] -> parray[0] */
			for (i = 9; i > 0; i--) {
				if (parray[i]->link != parray[i-1]) return 3;
				if ((int)parray[i]->data != 10) return 4;
			}
			return 42;
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{}) // explicit poll only
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reference(t, prog, arch.DEC5000)
	if want != 42 {
		t.Fatalf("reference run returned %d", want)
	}
	// Migrate at the 5th call to foo (poll-point hit count 5), exactly
	// the snapshot of Figure 1(b) (four heap nodes exist).
	code, _, migrated := runMigrating(t, prog, arch.DEC5000, arch.SPARC20, 5)
	if !migrated {
		t.Fatal("no migration")
	}
	if code != 42 {
		t.Errorf("migrated run returned %d, want 42", code)
	}
}

func TestMigrateNestedCalls(t *testing.T) {
	// Migration occurs three frames deep; every frame has live state.
	src := `
		int depth2(int x) {
			int k;
			k = x * 2;
			migrate_here();
			return k + 1;
		}
		int depth1(int x) {
			int local1;
			local1 = x + 10;
			local1 = depth2(local1);
			return local1 * 2;
		}
		int main() {
			int r, base;
			base = 5;
			r = depth1(base);
			return r + base;
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reference(t, prog, arch.AMD64)
	code, _, migrated := runMigrating(t, prog, arch.AMD64, arch.SPARC20, 1)
	if !migrated {
		t.Fatal("no migration")
	}
	if code != want {
		t.Errorf("code = %d, want %d", code, want)
	}
}

func TestMigrateRecursionDeep(t *testing.T) {
	// Migration from inside a recursive call chain.
	src := `
		int sumdown(int n) {
			int r;
			if (n == 0) return 0;
			migrate_here();
			r = sumdown(n - 1);
			return r + n;
		}
		int main() {
			int r;
			r = sumdown(20);
			return r;
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reference(t, prog, arch.I386)
	for _, pollN := range []int{1, 5, 20} {
		code, _, migrated := runMigrating(t, prog, arch.I386, arch.SPARCV9, pollN)
		if !migrated {
			t.Fatalf("poll %d: no migration", pollN)
		}
		if code != want {
			t.Errorf("poll %d: code = %d, want %d", pollN, code, want)
		}
	}
}

func TestMigrateTwice(t *testing.T) {
	// A -> B -> C double migration.
	src := `
		int main() {
			int i, s;
			s = 0;
			for (i = 0; i < 60; i++) {
				s += i;
			}
			return s % 101;
		}
	`
	prog := compileLoops(t, src)
	want, _ := reference(t, prog, arch.DEC5000)

	p, _ := NewProcess(prog, arch.DEC5000)
	p.MaxSteps = 1_000_000
	polls := 0
	p.PollHook = func(_ *Process, _ *minic.Site) bool { polls++; return polls == 10 }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("first migration failed: %v %v", res, err)
	}

	q, err := RestoreProcess(prog, arch.SPARC20, res.State)
	if err != nil {
		t.Fatal(err)
	}
	q.MaxSteps = 1_000_000
	polls2 := 0
	q.PollHook = func(_ *Process, _ *minic.Site) bool { polls2++; return polls2 == 20 }
	res2, err := q.Run()
	if err != nil || !res2.Migrated {
		t.Fatalf("second migration failed: %v %v", res2, err)
	}

	r, err := RestoreProcess(prog, arch.AMD64, res2.State)
	if err != nil {
		t.Fatal(err)
	}
	r.MaxSteps = 1_000_000
	res3, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res3.Migrated || res3.ExitCode != want {
		t.Errorf("final result = %+v, want exit %d", res3, want)
	}
}

func TestMigrateLinkedListMidBuild(t *testing.T) {
	src := `
		struct node { float data; struct node *link; };
		struct node *head;
		int main() {
			struct node *cur;
			int i, sum;
			head = 0;
			for (i = 1; i <= 30; i++) {
				cur = (struct node *) malloc(sizeof(struct node));
				cur->data = i;
				cur->link = head;
				head = cur;
			}
			sum = 0;
			cur = head;
			while (cur) {
				sum += (int)cur->data;
				cur = cur->link;
			}
			return sum; /* 465 */
		}
	`
	prog := compileLoops(t, src)
	for _, n := range []int{3, 15, 31, 40} {
		code, _, migrated := runMigrating(t, prog, arch.SPARC20, arch.I386, n)
		if !migrated {
			t.Fatalf("poll %d: finished before migration", n)
		}
		if code != 465 {
			t.Errorf("poll %d: sum = %d, want 465", n, code)
		}
	}
}

func TestMigratePreservesOutput(t *testing.T) {
	src := `
		int main() {
			int i;
			for (i = 0; i < 6; i++) {
				printf("line %d\n", i);
			}
			return 0;
		}
	`
	prog := compileLoops(t, src)
	_, wantOut := reference(t, prog, arch.Ultra5)
	_, out, migrated := runMigrating(t, prog, arch.Ultra5, arch.DEC5000, 4)
	if !migrated {
		t.Fatal("no migration")
	}
	if out != wantOut {
		t.Errorf("output = %q, want %q", out, wantOut)
	}
}

func TestMigrateDanglingFreeConsistency(t *testing.T) {
	// Allocate, free some blocks, migrate: freed blocks must not appear
	// on the destination, and the allocator keeps working after restore.
	src := `
		struct node { float data; struct node *link; };
		int main() {
			struct node *keep[8];
			struct node *temp;
			int i, alive;
			for (i = 0; i < 8; i++) {
				keep[i] = (struct node *) malloc(sizeof(struct node));
				keep[i]->data = i;
				keep[i]->link = 0;
				temp = (struct node *) malloc(sizeof(struct node));
				free(temp);
			}
			alive = 0;
			for (i = 0; i < 8; i++) {
				temp = (struct node *) malloc(sizeof(struct node));
				temp->data = 100;
				alive += (int)keep[i]->data;
				free(temp);
			}
			return alive; /* 0+..+7 = 28 */
		}
	`
	prog := compileLoops(t, src)
	code, _, migrated := runMigrating(t, prog, arch.DEC5000, arch.SPARC20, 9)
	if !migrated {
		t.Fatal("no migration")
	}
	if code != 28 {
		t.Errorf("code = %d, want 28", code)
	}
}

func TestMigrateGraphEquivalence(t *testing.T) {
	// Build a shared/cyclic structure, capture the MSR graph before
	// migration and after restore: canonical forms must agree.
	src := `
		struct node { float data; struct node *link; };
		struct node *a, *b;
		int main() {
			int i;
			a = (struct node *) malloc(sizeof(struct node));
			b = (struct node *) malloc(sizeof(struct node));
			a->link = b;
			b->link = a;
			a->data = 1.0;
			b->data = 2.0;
			for (i = 0; i < 3; i++) {
				migrate_here();
			}
			return (int)(a->data + b->link->data);
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewProcess(prog, arch.DEC5000)
	p.MaxSteps = 100000
	p.PollHook = func(_ *Process, _ *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("migration failed: %v", err)
	}
	srcGraph, err := msr.BuildGraph(p.Space, p.Table, prog.TI)
	if err != nil {
		t.Fatal(err)
	}

	q, err := RestoreProcess(prog, arch.SPARCV9, res.State)
	if err != nil {
		t.Fatal(err)
	}
	dstGraph, err := msr.BuildGraph(q.Space, q.Table, prog.TI)
	if err != nil {
		t.Fatal(err)
	}
	if srcGraph.Canonical() != dstGraph.Canonical() {
		t.Errorf("MSR graphs differ after migration:\n%s\nvs\n%s",
			srcGraph.Canonical(), dstGraph.Canonical())
	}
	q.MaxSteps = 100000
	res2, err := q.Run()
	if err != nil || res2.ExitCode != 2 {
		t.Errorf("resumed result: %+v, %v", res2, err)
	}
}

func TestCaptureStatsPopulated(t *testing.T) {
	src := `
		int main() {
			double xs[1000];
			int i;
			for (i = 0; i < 1000; i++) {
				xs[i] = i;
			}
			return (int)xs[999];
		}
	`
	prog := compileLoops(t, src)
	p, _ := NewProcess(prog, arch.Ultra5)
	p.MaxSteps = 1_000_000
	p.Instrument = true
	polls := 0
	p.PollHook = func(_ *Process, _ *minic.Site) bool { polls++; return polls == 500 }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("%v %v", res, err)
	}
	st := p.CaptureStats()
	if st.Frames != 1 || st.Bytes < 8000 || st.Save.Blocks < 2 {
		t.Errorf("capture stats = %+v", st)
	}
	q, err := RestoreProcess(prog, arch.Ultra5, res.State)
	if err != nil {
		t.Fatal(err)
	}
	if q.RestoreStatsOf().DataBytes < 8000 {
		t.Errorf("restore stats = %+v", q.RestoreStatsOf())
	}
	res2, err := q.Run()
	if err != nil || res2.ExitCode != 999 {
		t.Errorf("resume: %+v %v", res2, err)
	}
}

func TestOverheadBaselineDisablesMachinery(t *testing.T) {
	src := `
		int main() {
			int i, s;
			int *p;
			s = 0;
			for (i = 0; i < 100; i++) {
				p = (int *) malloc(sizeof(int));
				*p = i;
				s += *p;
				free(p);
			}
			return s % 256;
		}
	`
	prog := compileLoops(t, src)

	annotated, _ := NewProcess(prog, arch.Ultra5)
	annotated.MaxSteps = 1_000_000
	resA, err := annotated.Run()
	if err != nil {
		t.Fatal(err)
	}

	baseline, _ := NewProcess(prog, arch.Ultra5)
	baseline.MaxSteps = 1_000_000
	baseline.DisableMigration = true
	resB, err := baseline.Run()
	if err != nil {
		t.Fatal(err)
	}

	if resA.ExitCode != resB.ExitCode {
		t.Errorf("annotated %d != baseline %d", resA.ExitCode, resB.ExitCode)
	}
	if baseline.Stats.PollChecks != 0 {
		t.Errorf("baseline performed %d poll checks", baseline.Stats.PollChecks)
	}
	if baseline.Stats.MSRLTOps != 0 {
		t.Errorf("baseline performed %d MSRLT ops", baseline.Stats.MSRLTOps)
	}
	if annotated.Stats.PollChecks != 100 {
		t.Errorf("annotated poll checks = %d", annotated.Stats.PollChecks)
	}
	if annotated.Stats.MSRLTOps == 0 {
		t.Error("annotated performed no MSRLT ops")
	}
}

func TestMigrateBetweenEveryPollOfComplexProgram(t *testing.T) {
	// Exhaustive: migrate at each successive poll index and verify the
	// final answer every time. The program mixes heap, globals, stack
	// arrays, nested calls, and pointer aliasing.
	src := `
		struct cell { float val; struct cell *next; };
		struct cell *bank;
		int total;

		void push(int v) {
			struct cell *c;
			c = (struct cell *) malloc(sizeof(struct cell));
			c->val = v;
			c->next = bank;
			bank = c;
		}

		int drain(void) {
			int s;
			struct cell *c;
			s = 0;
			while (bank) {
				migrate_here();
				c = bank;
				bank = bank->next;
				s += (int)c->val;
				free(c);
			}
			return s;
		}

		int main() {
			int i, r;
			total = 0;
			for (i = 1; i <= 12; i++) {
				push(i * i);
			}
			r = drain();
			total = r;
			return total % 200; /* 650 % 200 = 50 */
		}
	`
	prog := compileLoops(t, src)
	want, _ := reference(t, prog, arch.Ultra5)
	if want != 50 {
		t.Fatalf("reference = %d", want)
	}
	for n := 1; ; n++ {
		code, _, migrated := runMigrating(t, prog, arch.DEC5000, arch.SPARCV9, n)
		if !migrated {
			if n == 1 {
				t.Fatal("never migrated")
			}
			break
		}
		if code != want {
			t.Errorf("migration at poll %d: code = %d, want %d", n, code, want)
		}
		if n > 100 {
			t.Fatal("too many polls")
		}
	}
}

func TestRestoreRejectsCorruptState(t *testing.T) {
	src := `int main() { int i; for (i = 0; i < 5; i++) {} return 0; }`
	prog := compileLoops(t, src)
	p, _ := NewProcess(prog, arch.DEC5000)
	p.MaxSteps = 100000
	p.PollHook = func(_ *Process, _ *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatal("setup failed")
	}
	// Truncations must be detected.
	for _, cut := range []int{0, 4, 8, len(res.State) - 4} {
		if cut >= len(res.State) {
			continue
		}
		if _, err := RestoreProcess(prog, arch.SPARC20, res.State[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// A different program must refuse the stream.
	other, err := minic.Compile(`int main() { return 0; }`, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreProcess(other, arch.SPARC20, res.State); err == nil {
		t.Error("state accepted by a different program")
	}
}

func TestMigrationStreamIsMachineIndependent(t *testing.T) {
	// The same logical state captured on two different machines must
	// produce byte-identical streams (the wire format has no machine-
	// specific residue).
	src := `
		struct node { float data; struct node *link; };
		struct node *head;
		int main() {
			int i;
			head = 0;
			for (i = 0; i < 5; i++) {
				struct node *c;
				c = (struct node *) malloc(sizeof(struct node));
				c->data = i;
				c->link = head;
				head = c;
			}
			for (i = 0; i < 1; i++) {
				migrate_here();
			}
			return (int)head->data;
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	var states [][]byte
	for _, m := range []*arch.Machine{arch.DEC5000, arch.SPARCV9, arch.I386} {
		p, _ := NewProcess(prog, m)
		p.MaxSteps = 100000
		p.PollHook = func(_ *Process, _ *minic.Site) bool { return true }
		res, err := p.Run()
		if err != nil || !res.Migrated {
			t.Fatalf("%s: %v", m.Name, err)
		}
		states = append(states, res.State)
	}
	for i := 1; i < len(states); i++ {
		if !bytes.Equal(states[0], states[i]) {
			t.Errorf("state stream %d differs from stream 0 (lengths %d vs %d)",
				i, len(states[i]), len(states[0]))
		}
	}
}

func ExampleProcess() {
	prog, err := minic.Compile(`
		int main() {
			printf("hello from MigC\n");
			return 0;
		}
	`, minic.PollPolicy{})
	if err != nil {
		fmt.Println(err)
		return
	}
	p, err := NewProcess(prog, arch.DEC5000)
	if err != nil {
		fmt.Println(err)
		return
	}
	var out bytes.Buffer
	p.Stdout = &out
	if _, err := p.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(out.String())
	// Output: hello from MigC
}

func TestMigratePingPongStability(t *testing.T) {
	// Bounce a process between two heterogeneous machines many times.
	// The state must stay consistent (the final answer correct) and the
	// stream size must stabilize: repeated translation must not distort
	// or grow the state.
	src := `
		struct node { float data; struct node *link; };
		struct node *head;
		int main() {
			int i, sum;
			struct node *c;
			head = 0;
			for (i = 1; i <= 10; i++) {
				c = (struct node *) malloc(sizeof(struct node));
				c->data = i;
				c->link = head;
				head = c;
			}
			sum = 0;
			for (i = 0; i < 40; i++) {
				sum += i;
			}
			c = head;
			while (c) { sum += (int)c->data; c = c->link; }
			return sum; /* 780 + 55 = 835 -> but mod below */
		}
	`
	prog := compileLoops(t, src)
	want, _ := reference(t, prog, arch.Ultra5)

	machines := []*arch.Machine{arch.DEC5000, arch.SPARCV9}
	p, err := NewProcess(prog, machines[0])
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 1_000_000
	hops := 0
	var sizes []int
	for {
		polls := 0
		p.PollHook = func(_ *Process, _ *minic.Site) bool {
			polls++
			return polls == 3 // migrate every third poll
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Migrated {
			if res.ExitCode != want {
				t.Errorf("after %d hops: exit = %d, want %d", hops, res.ExitCode, want)
			}
			break
		}
		hops++
		sizes = append(sizes, len(res.State))
		if hops > 50 {
			t.Fatal("did not terminate")
		}
		p, err = RestoreProcess(prog, machines[hops%2], res.State)
		if err != nil {
			t.Fatalf("hop %d: %v", hops, err)
		}
		p.MaxSteps = 1_000_000
	}
	if hops < 5 {
		t.Fatalf("only %d hops", hops)
	}
	// Once the list is fully built, the live state is fixed: identical
	// hop positions must produce identical state sizes (no drift).
	// Compare the tail where the program is inside the summing loop.
	stable := sizes[len(sizes)-3:]
	for _, s := range stable[1:] {
		if s != stable[0] {
			t.Errorf("state size drifts across hops: %v", stable)
		}
	}
}

func TestDescribeState(t *testing.T) {
	src := `
		struct node { float data; struct node *link; };
		struct node *head;
		struct node *first;
		int main() {
			int i;
			struct node *c;
			head = 0;
			for (i = 0; i < 3; i++) {
				c = (struct node *) malloc(sizeof(struct node));
				c->data = i;
				c->link = head;
				head = c;
				if (i == 0) first = c;
			}
			return 0;
		}
	`
	prog := compileLoops(t, src)
	p, _ := NewProcess(prog, arch.DEC5000)
	p.MaxSteps = 100000
	polls := 0
	p.PollHook = func(_ *Process, _ *minic.Site) bool { polls++; return polls == 3 }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("setup: %v", err)
	}
	out, err := DescribeState(prog, res.State)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"1 active frame", "stopped at poll-point", "live variables",
		"struct node x1", "already transferred", "null",
		"[global] struct node* head",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("describe output missing %q:\n%s", want, out)
		}
	}
	// The walker must consume the stream exactly.
	if strings.Contains(out, "WARNING") {
		t.Errorf("trailing bytes reported:\n%s", out)
	}
	// Corrupt stream is rejected, not misparsed.
	if _, err := DescribeState(prog, res.State[:len(res.State)-3]); err == nil {
		t.Error("truncated stream described without error")
	}
	if _, err := DescribeState(prog, []byte{1, 2, 3, 4}); err == nil {
		t.Error("garbage described without error")
	}
}

func TestRecaptureOfRestoredNestedProcess(t *testing.T) {
	// Restore a process whose migration happened frames deep, then
	// immediately re-capture it (without resuming): the re-encoded state
	// must restore again and finish correctly on a third machine.
	src := `
		int inner(int x) {
			int k;
			k = x + 1;
			migrate_here();
			return k * 2;
		}
		int outer(int x) {
			int r;
			r = inner(x + 10);
			return r + 1;
		}
		int main() {
			int v;
			v = outer(5);
			return v;
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reference(t, prog, arch.Ultra5)

	p, _ := NewProcess(prog, arch.DEC5000)
	p.MaxSteps = 100000
	p.PollHook = func(_ *Process, _ *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("setup: %v", err)
	}
	q, err := RestoreProcess(prog, arch.SPARCV9, res.State)
	if err != nil {
		t.Fatal(err)
	}
	state2, err := q.Recapture()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreProcess(prog, arch.I386, state2)
	if err != nil {
		t.Fatal(err)
	}
	r.MaxSteps = 100000
	final, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if final.ExitCode != want {
		t.Errorf("exit = %d, want %d", final.ExitCode, want)
	}
}

func TestResumeInsideDoWhile(t *testing.T) {
	src := `
		int main() {
			int n, acc;
			n = 8;
			acc = 0;
			do {
				migrate_here();
				acc += n;
				n--;
			} while (n > 0);
			return acc; /* 8+7+...+1 = 36 */
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 4, 8} {
		code, _, migrated := runMigrating(t, prog, arch.DEC5000, arch.SPARCV9, n)
		if !migrated || code != 36 {
			t.Errorf("poll %d: code=%d migrated=%v", n, code, migrated)
		}
	}
}

func TestResumeThenBreakAndContinue(t *testing.T) {
	src := `
		int main() {
			int i, s;
			s = 0;
			for (i = 0; i < 20; i++) {
				migrate_here();
				if (i == 3) continue;
				if (i == 7) break;
				s += i;
			}
			return s; /* 0+1+2+4+5+6 = 18 */
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reference(t, prog, arch.Ultra5)
	if want != 18 {
		t.Fatalf("reference = %d", want)
	}
	for n := 1; n <= 8; n++ {
		code, _, migrated := runMigrating(t, prog, arch.I386, arch.SPARC20, n)
		if !migrated || code != want {
			t.Errorf("poll %d: code=%d migrated=%v", n, code, migrated)
		}
	}
}

func TestResumeInsideElseBranch(t *testing.T) {
	src := `
		int main() {
			int i, s;
			s = 0;
			for (i = 0; i < 6; i++) {
				if (i % 2 == 0) {
					s += i;
				} else {
					migrate_here();
					s += 10 * i;
				}
			}
			return s; /* 0+10+2+30+4+50 = 96 */
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3} {
		code, _, migrated := runMigrating(t, prog, arch.AMD64, arch.DEC5000, n)
		if !migrated || code != 96 {
			t.Errorf("poll %d: code=%d migrated=%v", n, code, migrated)
		}
	}
}

func TestResumeAtVoidCallSite(t *testing.T) {
	// A migratory void function called as a bare statement: the call
	// site has no assignment target to re-store on resume.
	src := `
		int total;
		void work(int x) {
			migrate_here();
			total += x;
		}
		int main() {
			int i;
			total = 0;
			for (i = 1; i <= 5; i++) {
				work(i * i);
			}
			return total; /* 1+4+9+16+25 = 55 */
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 5} {
		code, _, migrated := runMigrating(t, prog, arch.SPARC20, arch.AMD64, n)
		if !migrated || code != 55 {
			t.Errorf("poll %d: code=%d migrated=%v", n, code, migrated)
		}
	}
}

func TestResumeWhileLoopMidway(t *testing.T) {
	src := `
		int main() {
			int n, steps;
			n = 100;
			steps = 0;
			while (n > 1) {
				migrate_here();
				if (n % 2) { n = 3 * n + 1; } else { n = n / 2; }
				steps++;
			}
			return steps;
		}
	`
	prog, err := minic.Compile(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := reference(t, prog, arch.Ultra5)
	for _, n := range []int{1, 10, 25} {
		code, _, migrated := runMigrating(t, prog, arch.DEC5000, arch.I386, n)
		if !migrated || code != want {
			t.Errorf("poll %d: code=%d want=%d", n, code, want)
		}
	}
}
