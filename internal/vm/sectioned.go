package vm

// Sectioned (v3) state transfer. The capture partitions the reachable MSR
// graph into independently-framed sections (internal/snapshot) and encodes
// the heap components concurrently (internal/collect's EncodeSections);
// the restore walks the sections in order, rebuilding the MSRLT
// section-by-section with a per-section CRC check.
//
// Section order is deterministic so a serial and a parallel capture of the
// same stopped process produce byte-identical snapshots:
//
//	exec #0, heap #0..H-1 (component number), frame #depth
//	(innermost first), globals #0

import (
	"fmt"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/collect"
	"repro/internal/memory"
	"repro/internal/minic"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/xdr"
)

// maxRestoreWorkers is the process-wide cap on the parallel-restore pool,
// applied when a Process leaves RestoreWorkers at its zero default. Zero
// means uncapped (GOMAXPROCS). Operators set it with the -restore-workers
// flag on migd and migstate.
var maxRestoreWorkers atomic.Int32

// SetMaxRestoreWorkers caps the heap-section restore pool for every
// Process that does not set RestoreWorkers explicitly. n <= 0 removes the
// cap. The cap never raises the pool above GOMAXPROCS.
func SetMaxRestoreWorkers(n int) {
	if n < 0 {
		n = 0
	}
	maxRestoreWorkers.Store(int32(n))
}

// MaxRestoreWorkers returns the current process-wide restore pool cap
// (0 = uncapped).
func MaxRestoreWorkers() int { return int(maxRestoreWorkers.Load()) }

// restoreWorkerCount resolves the pool width for one sectioned restore.
func (p *Process) restoreWorkerCount() int {
	switch {
	case p.RestoreWorkers > 0:
		return p.RestoreWorkers
	case p.RestoreWorkers < 0:
		return runtime.GOMAXPROCS(0)
	}
	w := runtime.GOMAXPROCS(0)
	if cap := MaxRestoreWorkers(); cap > 0 && w > cap {
		w = cap
	}
	return w
}

// SectionCaptureMetrics returns the per-section cost profile of the last
// sectioned capture (empty if the last capture was monolithic).
func (p *Process) SectionCaptureMetrics() stats.SectionBreakdown { return p.sectionCapture }

// SectionRestoreMetrics returns the per-section cost profile of the
// restore that initialized this process (empty for a monolithic restore).
func (p *Process) SectionRestoreMetrics() stats.SectionBreakdown { return p.sectionRestore }

// SectionWorkersEngaged reports how many pool workers encoded at least
// one section during the last sectioned capture.
func (p *Process) SectionWorkersEngaged() int { return p.sectionWorkers }

// RestoreWorkersEngaged reports how many pool workers filled at least one
// heap section during the sectioned restore that initialized this process
// (0 for a monolithic restore or a snapshot without heap sections).
func (p *Process) RestoreWorkersEngaged() int { return p.restoreWorkers }

// CaptureSections re-collects the full process state at the stopped
// migration point in the sectioned (v3) snapshot format. workers bounds
// the heap-component encoding pool: 1 is fully serial, <= 0 selects
// GOMAXPROCS. The snapshot bytes are identical for every worker count.
func (p *Process) CaptureSections(workers int) ([]byte, error) {
	enc := xdr.NewEncoder(1 << 12)
	if err := p.CaptureSectionsTo(enc, workers); err != nil {
		return nil, err
	}
	return enc.Bytes(), nil
}

// CaptureSectionsTo is CaptureSections writing into the supplied encoder
// (which may have a flush sink attached for streamed transmission).
func (p *Process) CaptureSectionsTo(enc *xdr.Encoder, workers int) error {
	site, err := p.stoppedSite()
	if err != nil {
		return err
	}
	return p.captureSectionsTo(enc, site, workers)
}

func (p *Process) captureSectionsTo(enc *xdr.Encoder, innermost *minic.Site, workers int) error {
	p.lastSite = innermost
	start := time.Now()
	span := p.Obs.Child("collect")
	span.SetAttr("format", "sectioned")
	defer span.End()
	sites, err := p.captureSites(innermost)
	if err != nil {
		return err
	}
	roots := p.liveRoots(sites)

	baseSearches := p.Table.Stats.Searches
	baseSteps := p.Table.Stats.SearchSteps

	partSpan := span.Child("partition")
	pt, err := collect.BuildPartition(p.Space, p.Table, p.TI, roots)
	partSpan.End()
	if err != nil {
		return err
	}
	encSpan := span.Child("encode")
	st, err := collect.EncodeSections(p.Space, p.Table, p.TI, pt, roots, workers)
	encSpan.End()
	if err != nil {
		return err
	}
	encSpan.SetAttr("workers", strconv.Itoa(st.Workers))

	// The execution-state section: frame count, then per frame the
	// function name and stopped site (the v1 exec header minus its magic;
	// the snapshot prologue carries the format magic).
	execStart := time.Now()
	execEnc := xdr.NewEncoder(64)
	execEnc.PutUint32(uint32(len(p.frames)))
	for i, f := range p.frames {
		execEnc.PutString(f.Fn.Name)
		execEnc.PutUint32(uint32(sites[i].ID))
	}
	execBody := execEnc.Bytes()
	execElapsed := time.Since(execStart)

	nframes := len(p.frames)
	total := 1 + len(st.Heap) + nframes + 1
	snapshot.PutPrologue(enc, total)
	breakdown := make(stats.SectionBreakdown, 0, total)
	appendSec := func(s snapshot.Section, elapsed time.Duration) {
		snapshot.Append(enc, s)
		breakdown = append(breakdown, stats.SectionMetric{
			Kind:    s.Kind.String(),
			ID:      s.ID,
			Bytes:   len(s.Body),
			Elapsed: elapsed,
		})
		// Section encoding already ran (possibly on pool workers); record
		// each as a child with its measured duration rather than wall time.
		c := span.Child("section")
		c.SetSection(s.Kind.String(), s.ID)
		c.SetBytes(int64(len(s.Body)))
		c.SetDuration(elapsed)
		mSectionEncode.Observe(elapsed)
	}
	appendSec(snapshot.Section{Kind: snapshot.KindExec, Body: execBody}, execElapsed)
	for i, h := range st.Heap {
		appendSec(snapshot.Section{Kind: snapshot.KindHeap, ID: uint32(i), Body: h.Body}, h.Elapsed)
	}
	for i := nframes - 1; i >= 0; i-- {
		appendSec(snapshot.Section{Kind: snapshot.KindFrame, ID: uint32(i + 1), Body: st.Frames[i].Body},
			st.Frames[i].Elapsed)
	}
	appendSec(snapshot.Section{Kind: snapshot.KindGlobals, Body: st.Globals.Body}, st.Globals.Elapsed)
	// Every body has been spliced into the output stream; hand the pooled
	// section encoders back (st.Stats and st.Workers survive the release).
	st.Release()

	save := st.Stats
	save.Searches = p.Table.Stats.Searches - baseSearches
	save.SearchSteps = p.Table.Stats.SearchSteps - baseSteps
	p.captureStats = StateStats{
		Frames:  nframes,
		Save:    save,
		Bytes:   enc.Len(),
		Elapsed: time.Since(start),
	}
	p.sectionCapture = breakdown
	p.sectionWorkers = st.Workers
	span.SetBytes(int64(enc.Len()))
	flushCapture(enc, p.captureStats.Elapsed)
	return nil
}

// liveRoots builds the collection roots — the live-variable addresses of
// each frame at its stopped site, and every global — in the traversal
// order the monolithic capture uses.
func (p *Process) liveRoots(sites []*minic.Site) collect.Roots {
	roots := collect.Roots{FrameLive: make([][]memory.Address, len(p.frames))}
	for i, f := range p.frames {
		addrs := make([]memory.Address, len(sites[i].Live))
		for j, v := range sites[i].Live {
			addrs[j] = p.VarAddr(f, v)
		}
		roots.FrameLive[i] = addrs
	}
	roots.Globals = make([]memory.Address, 0, len(p.Prog.Globals))
	for _, g := range p.Prog.Globals {
		roots.Globals = append(roots.Globals, p.globalAddrs[g.Index])
	}
	return roots
}

// restoreSectioned rebuilds the process from a sectioned (v3) snapshot.
// The section order is enforced — exec first, every heap component before
// any variable contents, each frame exactly once, globals exactly once —
// which guarantees every flat reference a section decodes resolves
// against blocks already registered.
func (p *Process) restoreSectioned(state []byte, restoreStart time.Time) error {
	span := p.Obs.Child("restore")
	span.SetAttr("format", "sectioned")
	defer span.End()
	dec := xdr.NewDecoder(state)
	rd, err := snapshot.NewReader(dec)
	if err != nil {
		return fmt.Errorf("vm: invalid sectioned snapshot: %w (%w)", collect.ErrCorruptStream, err)
	}

	sec, err := rd.Next()
	if err != nil {
		return fmt.Errorf("vm: reading exec section: %w (%w)", collect.ErrCorruptStream, err)
	}
	if sec.Kind != snapshot.KindExec || sec.ID != 0 {
		return fmt.Errorf("%w: snapshot does not start with the exec section", collect.ErrCorruptStream)
	}
	sites, err := p.restoreExecBody(sec.Body)
	if err != nil {
		return err
	}
	nframes := len(sites)

	total := collect.RestoreStats{}
	breakdown := stats.SectionBreakdown{
		{Kind: sec.Kind.String(), ID: sec.ID, Bytes: len(sec.Body)},
	}

	heapDone := false
	nextHeap := uint32(0)
	framesSeen := make([]bool, nframes)
	globalsSeen := false

	// Heap-component sections are contiguous and independent, so they are
	// batched as they stream in and restored together when the first
	// variable section arrives: block allocation stays serial in section
	// order (the heap layout is identical to a fully serial restore), then
	// the component contents fill on a bounded worker pool — the restore
	// twin of the capture side's EncodeSections.
	var heapBodies [][]byte
	restoreHeapBatch := func() error {
		if heapDone {
			return nil
		}
		heapDone = true
		if len(heapBodies) == 0 {
			return nil
		}
		hr, err := collect.RestoreHeapSections(p.Space, p.Table, p.TI, heapBodies,
			p.Instrument, p.restoreWorkerCount())
		if err != nil {
			return fmt.Errorf("vm: restoring heap sections: %w", err)
		}
		mRestorePar.Set(int64(hr.Workers))
		p.restoreWorkers = hr.Workers
		for i := range heapBodies {
			total.Add(hr.PerSection[i])
			secElapsed := hr.Prepare[i] + hr.Elapsed[i]
			breakdown = append(breakdown, stats.SectionMetric{
				Kind:    snapshot.KindHeap.String(),
				ID:      uint32(i),
				Bytes:   len(heapBodies[i]),
				Elapsed: secElapsed,
			})
			c := span.Child("section")
			c.SetSection(snapshot.KindHeap.String(), uint32(i))
			c.SetBytes(int64(len(heapBodies[i])))
			c.SetDuration(secElapsed)
			mSectionRestore.Observe(secElapsed)
			mRestoreCompLat.Observe(hr.Elapsed[i])
		}
		return nil
	}

	for rd.Remaining() > 0 {
		sec, err := rd.Next()
		if err != nil {
			return fmt.Errorf("vm: reading snapshot section: %w (%w)", collect.ErrCorruptStream, err)
		}
		secStart := time.Now()
		var rs collect.RestoreStats
		switch sec.Kind {
		case snapshot.KindExec:
			return fmt.Errorf("%w: duplicate exec section", collect.ErrCorruptStream)
		case snapshot.KindHeap:
			if heapDone {
				return fmt.Errorf("%w: heap section %d after variable sections", collect.ErrCorruptStream, sec.ID)
			}
			if sec.ID != nextHeap {
				return fmt.Errorf("%w: heap sections out of order (got %d, want %d)",
					collect.ErrCorruptStream, sec.ID, nextHeap)
			}
			nextHeap++
			heapBodies = append(heapBodies, sec.Body)
			continue
		case snapshot.KindFrame:
			if err := restoreHeapBatch(); err != nil {
				return err
			}
			d := int(sec.ID)
			if d < 1 || d > nframes {
				return fmt.Errorf("%w: frame section %d outside the %d restored frames",
					collect.ErrCorruptStream, d, nframes)
			}
			if framesSeen[d-1] {
				return fmt.Errorf("%w: duplicate frame section %d", collect.ErrCorruptStream, d)
			}
			framesSeen[d-1] = true
			f := p.frames[d-1]
			live := make([]memory.Address, len(sites[d-1].Live))
			for j, v := range sites[d-1].Live {
				live[j] = p.VarAddr(f, v)
			}
			rs, err = collect.RestoreVarSection(p.Space, p.Table, p.TI, sec.Body,
				live, memory.Stack, uint32(d), p.Instrument)
		case snapshot.KindGlobals:
			if err := restoreHeapBatch(); err != nil {
				return err
			}
			if globalsSeen {
				return fmt.Errorf("%w: duplicate globals section", collect.ErrCorruptStream)
			}
			globalsSeen = true
			live := make([]memory.Address, 0, len(p.Prog.Globals))
			for _, g := range p.Prog.Globals {
				live = append(live, p.globalAddrs[g.Index])
			}
			rs, err = collect.RestoreVarSection(p.Space, p.Table, p.TI, sec.Body,
				live, memory.Global, 0, p.Instrument)
		}
		if err != nil {
			return fmt.Errorf("vm: restoring %s section %d: %w", sec.Kind, sec.ID, err)
		}
		total.Add(rs)
		secElapsed := time.Since(secStart)
		breakdown = append(breakdown, stats.SectionMetric{
			Kind:    sec.Kind.String(),
			ID:      sec.ID,
			Bytes:   len(sec.Body),
			Elapsed: secElapsed,
		})
		c := span.Child("section")
		c.SetSection(sec.Kind.String(), sec.ID)
		c.SetBytes(int64(len(sec.Body)))
		c.SetDuration(secElapsed)
		mSectionRestore.Observe(secElapsed)
	}
	for d := 1; d <= nframes; d++ {
		if !framesSeen[d-1] {
			return fmt.Errorf("%w: snapshot is missing frame section %d", collect.ErrCorruptStream, d)
		}
	}
	if !globalsSeen {
		return fmt.Errorf("%w: snapshot is missing the globals section", collect.ErrCorruptStream)
	}
	if dec.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after snapshot sections",
			collect.ErrCorruptStream, dec.Remaining())
	}

	p.resumeSites = sites
	p.restoreStats = total
	p.restoreElapsed = time.Since(restoreStart)
	p.sectionRestore = breakdown
	span.SetBytes(int64(len(state)))
	flushRestore(dec.Calls(), len(state), p.restoreElapsed)
	return nil
}

// restoreExecBody decodes the execution-state section and rebuilds the
// frame chain, returning the per-frame stopped sites.
func (p *Process) restoreExecBody(body []byte) ([]*minic.Site, error) {
	dec := xdr.NewDecoder(body)
	nframes, err := dec.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated exec section", collect.ErrCorruptStream)
	}
	if nframes == 0 || nframes > 1<<16 {
		return nil, fmt.Errorf("%w: implausible frame count %d", collect.ErrCorruptStream, nframes)
	}
	sites := make([]*minic.Site, nframes)
	for i := 0; i < int(nframes); i++ {
		name, err := dec.String()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated exec section", collect.ErrCorruptStream)
		}
		siteID, err := dec.Uint32()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated exec section", collect.ErrCorruptStream)
		}
		fn := p.Prog.Func(name)
		if fn == nil {
			return nil, fmt.Errorf("%w: state references unknown function %s", collect.ErrMismatch, name)
		}
		site := fn.SiteByID(int(siteID))
		if site == nil {
			return nil, fmt.Errorf("%w: function %s has no migration site %d", collect.ErrMismatch, name, siteID)
		}
		sites[i] = site
		if _, err := p.pushFrame(fn); err != nil {
			return nil, err
		}
	}
	if dec.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in exec section", collect.ErrCorruptStream, dec.Remaining())
	}
	return sites, nil
}
