package types

import (
	"fmt"

	"repro/internal/arch"
)

// This file compiles the type-specific memory block saving and restoring
// functions of the paper's TI table. Rather than interpreting the type
// graph on every save, registering a type compiles it once per machine into
// a Plan: a flat program of operations over the block's bytes. The save and
// restore sides execute the same plan, so the operation sequence — and
// therefore the wire format — is identical on both machines even though the
// byte offsets and strides inside each operation are machine-specific.

// PlanOp is one step of a save/restore plan. Exactly one of two forms is
// used:
//
//   - scalar run: Sub == nil. Count scalars of kind Kind, the i-th at byte
//     offset Off + i*Stride. PtrElem is the pointee type when Kind is Ptr.
//   - repetition: Sub != nil. The sub-plan applied Count times, the i-th
//     iteration based at Off + i*Stride.
type PlanOp struct {
	Off     int
	Stride  int
	Count   int
	Kind    arch.PrimKind
	PtrElem *Type
	Sub     []PlanOp
}

// Plan is the compiled save/restore program for one type on one machine.
type Plan struct {
	Type *Type
	Mach *arch.Machine
	Ops  []PlanOp

	// NumScalars is the total scalar count covered (machine-independent).
	NumScalars int
	// HasPtr records whether any operation is a pointer run.
	HasPtr bool
}

// expandLimit bounds plan expansion for arrays of aggregates: beyond this
// many operations the compiler emits a repetition instead of unrolling.
const expandLimit = 64

// packedRun reports whether t flattens to a single homogeneous run of
// scalars with no padding: a primitive, a pointer, or a (nested) array of
// such. The decision depends only on type structure, never on the machine,
// which keeps plan shapes identical across machines. The returned count is
// the scalar count; elem is the pointee type for pointer runs.
func packedRun(t *Type) (kind arch.PrimKind, count int, elem *Type, ok bool) {
	switch t.Kind {
	case KPrim:
		if t.Prim == arch.Void {
			return 0, 0, nil, false
		}
		return t.Prim, 1, nil, true
	case KPointer:
		return arch.Ptr, 1, t.Elem, true
	case KArray:
		k, c, e, inner := packedRun(t.Elem)
		if !inner {
			return 0, 0, nil, false
		}
		return k, c * t.Len, e, true
	}
	return 0, 0, nil, false
}

// compilePlan builds the operation list for t on m.
func compilePlan(t *Type, m *arch.Machine) []PlanOp {
	if k, c, e, ok := packedRun(t); ok {
		return []PlanOp{{
			Off:     0,
			Stride:  m.SizeOf(k),
			Count:   c,
			Kind:    k,
			PtrElem: e,
		}}
	}
	switch t.Kind {
	case KArray:
		sub := compilePlan(t.Elem, m)
		if t.Len*len(sub) <= expandLimit {
			var ops []PlanOp
			for i := 0; i < t.Len; i++ {
				base := i * t.Elem.SizeOf(m)
				for _, op := range sub {
					op.Off += base
					ops = append(ops, op)
				}
			}
			return ops
		}
		return []PlanOp{{
			Off:    0,
			Stride: t.Elem.SizeOf(m),
			Count:  t.Len,
			Sub:    sub,
		}}
	case KStruct:
		var ops []PlanOp
		for i, f := range t.Fields {
			base := t.OffsetOf(m, i)
			for _, op := range compilePlan(f.Type, m) {
				op.Off += base
				ops = append(ops, op)
			}
		}
		return ops
	}
	panic(fmt.Sprintf("types: cannot compile plan for %s", t))
}

// planHasPtr scans a compiled plan for pointer runs.
func planHasPtr(ops []PlanOp) bool {
	for _, op := range ops {
		if op.Sub != nil {
			if planHasPtr(op.Sub) {
				return true
			}
		} else if op.Kind == arch.Ptr {
			return true
		}
	}
	return false
}

// NewPlan compiles the saving/restoring plan for t on machine m.
// Plans are usually obtained through a TI table, which caches them.
func NewPlan(t *Type, m *arch.Machine) *Plan {
	ops := compilePlan(t, m)
	return &Plan{
		Type:       t,
		Mach:       m,
		Ops:        ops,
		NumScalars: t.ScalarCount(),
		HasPtr:     planHasPtr(ops),
	}
}
