package types

import (
	"testing"

	"repro/internal/arch"
)

// planShape flattens a plan into a machine-independent shape string used to
// verify that the same type compiles to structurally identical plans on
// every machine.
func planShape(ops []PlanOp) []struct {
	kind  arch.PrimKind
	count int
	sub   int
} {
	var out []struct {
		kind  arch.PrimKind
		count int
		sub   int
	}
	for _, op := range ops {
		out = append(out, struct {
			kind  arch.PrimKind
			count int
			sub   int
		}{op.Kind, op.Count, len(op.Sub)})
		if op.Sub != nil {
			out = append(out, planShape(op.Sub)...)
		}
	}
	return out
}

func TestPlanPrim(t *testing.T) {
	p := NewPlan(Double, arch.Ultra5)
	if len(p.Ops) != 1 || p.Ops[0].Kind != arch.Double || p.Ops[0].Count != 1 {
		t.Fatalf("plan = %+v", p.Ops)
	}
	if p.HasPtr {
		t.Error("double plan should have no pointers")
	}
}

func TestPlanBigMatrixMergesToOneOp(t *testing.T) {
	// double[1000][1000] must compile to a single run of 1e6 doubles —
	// the hot path for the linpack experiments.
	mat := ArrayOf(ArrayOf(Double, 1000), 1000)
	p := NewPlan(mat, arch.Ultra5)
	if len(p.Ops) != 1 {
		t.Fatalf("matrix plan has %d ops, want 1", len(p.Ops))
	}
	op := p.Ops[0]
	if op.Kind != arch.Double || op.Count != 1000*1000 || op.Stride != 8 {
		t.Errorf("matrix op = %+v", op)
	}
}

func TestPlanPointerArray(t *testing.T) {
	// struct node *parray[10] — the example program's array of pointers.
	n := nodeType("node")
	arr := ArrayOf(PointerTo(n), 10)
	p := NewPlan(arr, arch.DEC5000)
	if len(p.Ops) != 1 {
		t.Fatalf("plan has %d ops, want 1", len(p.Ops))
	}
	op := p.Ops[0]
	if op.Kind != arch.Ptr || op.Count != 10 || op.PtrElem != n {
		t.Errorf("op = %+v", op)
	}
	if !p.HasPtr {
		t.Error("HasPtr should be true")
	}
}

func TestPlanStructOpsFollowOffsets(t *testing.T) {
	n := nodeType("node")
	for _, m := range []*arch.Machine{arch.DEC5000, arch.AMD64} {
		p := NewPlan(n, m)
		if len(p.Ops) != 2 {
			t.Fatalf("%s: node plan has %d ops", m.Name, len(p.Ops))
		}
		if p.Ops[0].Kind != arch.Float || p.Ops[0].Off != 0 {
			t.Errorf("%s: op0 = %+v", m.Name, p.Ops[0])
		}
		if p.Ops[1].Kind != arch.Ptr || p.Ops[1].Off != n.OffsetOf(m, 1) {
			t.Errorf("%s: op1 = %+v", m.Name, p.Ops[1])
		}
	}
}

func TestPlanShapeMachineIndependent(t *testing.T) {
	// The wire format depends on the operation sequence being identical
	// on all machines. Verify for a menagerie of types.
	n := nodeType("node")
	mixed := NewStruct("mixed")
	mixed.DefineFields([]Field{
		{"c", Char},
		{"d", Double},
		{"nodes", ArrayOf(n, 4)},
		{"name", ArrayOf(Char, 13)},
		{"next", PointerTo(mixed)},
	})
	huge := ArrayOf(mixed, 100) // beyond expandLimit: must use repetition
	typesToTest := []*Type{Int, n, mixed, huge, ArrayOf(PointerTo(Int), 3),
		ArrayOf(ArrayOf(Float, 8), 8)}

	ms := arch.Machines()
	for _, ty := range typesToTest {
		ref := planShape(NewPlan(ty, ms[0]).Ops)
		for _, m := range ms[1:] {
			got := planShape(NewPlan(ty, m).Ops)
			if len(got) != len(ref) {
				t.Fatalf("%s: plan shape length differs between %s and %s", ty, ms[0].Name, m.Name)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Errorf("%s: op %d shape differs between %s (%+v) and %s (%+v)",
						ty, i, ms[0].Name, ref[i], m.Name, got[i])
				}
			}
		}
	}
}

func TestPlanRepetitionForLargeAggregates(t *testing.T) {
	n := nodeType("node")
	big := ArrayOf(n, 1000) // 2000 ops if expanded; must be a repetition
	p := NewPlan(big, arch.Ultra5)
	if len(p.Ops) != 1 || p.Ops[0].Sub == nil {
		t.Fatalf("large aggregate plan not a repetition: %d ops", len(p.Ops))
	}
	if p.Ops[0].Count != 1000 || p.Ops[0].Stride != n.SizeOf(arch.Ultra5) {
		t.Errorf("repetition op = %+v", p.Ops[0])
	}
	if !p.HasPtr {
		t.Error("repetition should propagate HasPtr")
	}
}

func TestPlanSmallAggregateExpands(t *testing.T) {
	n := nodeType("node")
	small := ArrayOf(n, 5)
	p := NewPlan(small, arch.Ultra5)
	if len(p.Ops) != 10 {
		t.Fatalf("small aggregate plan has %d ops, want 10 expanded", len(p.Ops))
	}
	for i := 0; i < 10; i += 2 {
		if p.Ops[i].Kind != arch.Float || p.Ops[i+1].Kind != arch.Ptr {
			t.Errorf("ops %d,%d = %+v %+v", i, i+1, p.Ops[i], p.Ops[i+1])
		}
	}
}

func TestPlanCoversAllScalars(t *testing.T) {
	// Property: the scalar count covered by the plan equals the type's
	// scalar count, and every scalar byte range is within the type.
	n := nodeType("node")
	mixed := NewStruct("mix2")
	mixed.DefineFields([]Field{
		{"a", ArrayOf(Short, 3)},
		{"b", Double},
		{"n", ArrayOf(n, 70)}, // forces a repetition inside a struct
	})
	for _, m := range arch.Machines() {
		for _, ty := range []*Type{n, mixed, ArrayOf(mixed, 3)} {
			p := NewPlan(ty, m)
			covered := 0
			var walk func(ops []PlanOp, base int)
			walk = func(ops []PlanOp, base int) {
				for _, op := range ops {
					if op.Sub != nil {
						for i := 0; i < op.Count; i++ {
							walk(op.Sub, base+op.Off+i*op.Stride)
						}
						continue
					}
					for i := 0; i < op.Count; i++ {
						off := base + op.Off + i*op.Stride
						size := m.SizeOf(op.Kind)
						if off < 0 || off+size > ty.SizeOf(m) {
							t.Fatalf("%s on %s: scalar at %d outside type of size %d",
								ty, m.Name, off, ty.SizeOf(m))
						}
						covered++
					}
				}
			}
			walk(p.Ops, 0)
			if covered != ty.ScalarCount() {
				t.Errorf("%s on %s: plan covers %d scalars, type has %d",
					ty, m.Name, covered, ty.ScalarCount())
			}
		}
	}
}

func TestTITable(t *testing.T) {
	ti := NewTI()
	n := nodeType("node")
	i1 := ti.Add(PointerTo(n))
	// Transitive registration must have added node and float.
	if _, ok := ti.Index(n); !ok {
		t.Error("struct not transitively registered")
	}
	if _, ok := ti.Index(Float); !ok {
		t.Error("field type not transitively registered")
	}
	if i2 := ti.Add(PointerTo(n)); i2 != i1 {
		t.Error("re-adding changed index")
	}
	got, err := ti.At(i1)
	if err != nil || got != PointerTo(n) {
		t.Errorf("At(%d) = %v, %v", i1, got, err)
	}
	if _, err := ti.At(99); err == nil {
		t.Error("At out of range did not error")
	}
	if ti.MustIndex(n) < 0 {
		t.Error("MustIndex failed")
	}
}

func TestTIDigestAgreesAcrossIdenticalPrograms(t *testing.T) {
	build := func() *TI {
		ti := NewTI()
		n := nodeType("node")
		ti.Add(PointerTo(n))
		ti.Add(ArrayOf(Double, 100))
		return ti
	}
	a, b := build(), build()
	if a.Digest() != b.Digest() {
		t.Error("identical programs produced different TI digests")
	}
	c := NewTI()
	c.Add(ArrayOf(Double, 100))
	if c.Digest() == a.Digest() {
		t.Error("different programs produced the same TI digest")
	}
}

func TestTIPlanCaching(t *testing.T) {
	ti := NewTI()
	n := nodeType("node")
	ti.Add(n)
	p1 := ti.Plan(n, arch.Ultra5)
	p2 := ti.Plan(n, arch.Ultra5)
	if p1 != p2 {
		t.Error("plans not cached")
	}
	p3 := ti.Plan(n, arch.DEC5000)
	if p3 == p1 {
		t.Error("plans must be per machine")
	}
}

func TestTISummary(t *testing.T) {
	ti := NewTI()
	ti.Add(nodeType("node"))
	s := ti.Summary(arch.Ultra5)
	if len(s) == 0 {
		t.Fatal("empty summary")
	}
}

func TestMustIndexPanics(t *testing.T) {
	ti := NewTI()
	defer func() {
		if recover() == nil {
			t.Error("MustIndex on missing type did not panic")
		}
	}()
	ti.MustIndex(Double)
}
