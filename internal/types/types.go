// Package types implements the type system of the migratable language and
// the Type Information (TI) table of the paper.
//
// Every memory block in a process has a type drawn from this package:
// primitive scalars, pointers, fixed-size arrays, and nominal structs
// (including recursive ones, as in linked lists and trees). The layout
// engine computes sizes, alignments, and field offsets for a specific
// machine, so the same type occupies differently shaped storage on the
// source and destination of a migration.
//
// Central to the paper's pointer encoding is the notion of an element
// ordinal: the "offset" half of a machine-independent pointer is the
// ordering number of the scalar data element inside its memory block, not a
// byte offset. Ordinals are machine-independent by construction; this
// package converts between ordinals and machine byte offsets in both
// directions.
package types

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/arch"
)

// Kind discriminates the type structure.
type Kind uint8

const (
	// KPrim is a primitive scalar type (int, double, ...).
	KPrim Kind = iota
	// KPointer is a pointer to an element type.
	KPointer
	// KArray is a fixed-length array.
	KArray
	// KStruct is a nominal structure type.
	KStruct
	// KFunc is a function type; it exists for the checker and is never
	// the type of a memory block (function pointers are migration-unsafe
	// and rejected by the analyzer).
	KFunc
)

// Field is one member of a struct type.
type Field struct {
	Name string
	Type *Type
}

// Type is a node in the type graph. Types are interned: structural types
// built through the constructors are canonical, so pointer equality is type
// equality. Struct types are nominal and unique per declaration.
type Type struct {
	Kind Kind

	// Prim is set for KPrim.
	Prim arch.PrimKind

	// Elem is the pointee for KPointer and the element for KArray,
	// and the result type for KFunc.
	Elem *Type

	// Len is the element count for KArray.
	Len int

	// TagName is the struct tag for KStruct.
	TagName string
	// Fields are the struct members; nil until the struct is completed.
	Fields []Field
	// complete records whether a struct definition has been supplied.
	complete bool

	// Params are the parameter types for KFunc.
	Params []*Type

	// scalarCount caches the flattened scalar element count (-1 until
	// computed). It is machine-independent.
	scalarCount int

	layouts map[*arch.Machine]layout
}

// layout caches the machine-dependent geometry of a type.
type layout struct {
	size    int
	align   int
	offsets []int // field byte offsets for structs
}

// Interning state for structural types.
var (
	prims    [16]*Type
	ptrCache = map[*Type]*Type{}
	arrCache = map[arrKey]*Type{}
)

type arrKey struct {
	elem *Type
	n    int
}

func newType() *Type {
	return &Type{scalarCount: -1, layouts: map[*arch.Machine]layout{}}
}

// Prim returns the canonical type for a primitive kind.
func PrimType(k arch.PrimKind) *Type {
	if prims[k] == nil {
		t := newType()
		t.Kind = KPrim
		t.Prim = k
		prims[k] = t
	}
	return prims[k]
}

// Convenience singletons for the common primitives.
var (
	Void   = PrimType(arch.Void)
	Char   = PrimType(arch.Char)
	UChar  = PrimType(arch.UChar)
	Short  = PrimType(arch.Short)
	UShort = PrimType(arch.UShort)
	Int    = PrimType(arch.Int)
	UInt   = PrimType(arch.UInt)
	Long   = PrimType(arch.Long)
	ULong  = PrimType(arch.ULong)
	Float  = PrimType(arch.Float)
	Double = PrimType(arch.Double)
)

// PointerTo returns the canonical pointer-to-elem type.
func PointerTo(elem *Type) *Type {
	if t, ok := ptrCache[elem]; ok {
		return t
	}
	t := newType()
	t.Kind = KPointer
	t.Elem = elem
	ptrCache[elem] = t
	return t
}

// ArrayOf returns the canonical n-element array of elem.
func ArrayOf(elem *Type, n int) *Type {
	k := arrKey{elem, n}
	if t, ok := arrCache[k]; ok {
		return t
	}
	t := newType()
	t.Kind = KArray
	t.Elem = elem
	t.Len = n
	arrCache[k] = t
	return t
}

// NewStruct creates a new, incomplete nominal struct type with the given
// tag. Complete it with DefineFields. Self-referential types (struct node
// containing struct node *) are built by creating the struct, forming
// pointers to it, then defining the fields.
func NewStruct(tag string) *Type {
	t := newType()
	t.Kind = KStruct
	t.TagName = tag
	return t
}

// FuncType returns a function type. Function types are not interned; the
// checker compares them structurally.
func FuncType(result *Type, params []*Type) *Type {
	t := newType()
	t.Kind = KFunc
	t.Elem = result
	t.Params = params
	return t
}

// DefineFields completes a struct created by NewStruct.
func (t *Type) DefineFields(fields []Field) {
	if t.Kind != KStruct {
		panic("types: DefineFields on non-struct")
	}
	if t.complete {
		panic("types: struct " + t.TagName + " redefined")
	}
	t.Fields = fields
	t.complete = true
}

// Complete reports whether the type is fully defined (relevant for structs).
func (t *Type) Complete() bool {
	if t.Kind == KStruct {
		return t.complete
	}
	return true
}

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == KPointer }

// IsArithmetic reports whether t is an integer or floating primitive.
func (t *Type) IsArithmetic() bool {
	return t.Kind == KPrim && (t.Prim.IsInteger() || t.Prim.IsFloat())
}

// IsInteger reports whether t is an integer primitive.
func (t *Type) IsInteger() bool { return t.Kind == KPrim && t.Prim.IsInteger() }

// IsFloat reports whether t is a floating primitive.
func (t *Type) IsFloat() bool { return t.Kind == KPrim && t.Prim.IsFloat() }

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t.Kind == KPrim && t.Prim == arch.Void }

// String returns a C-like spelling of the type.
func (t *Type) String() string {
	switch t.Kind {
	case KPrim:
		return t.Prim.String()
	case KPointer:
		return t.Elem.String() + "*"
	case KArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Len)
	case KStruct:
		return "struct " + t.TagName
	case KFunc:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.String()
		}
		return fmt.Sprintf("%s(%s)", t.Elem.String(), strings.Join(parts, ","))
	}
	return "?"
}

// Signature returns a canonical structural signature used for the TI table
// digest. Struct references use the tag name, so recursive types terminate.
func (t *Type) Signature() string {
	switch t.Kind {
	case KPrim:
		return t.Prim.String()
	case KPointer:
		return "*" + t.Elem.Signature()
	case KArray:
		return fmt.Sprintf("[%d]%s", t.Len, t.Elem.Signature())
	case KStruct:
		return "struct:" + t.TagName
	case KFunc:
		parts := make([]string, len(t.Params))
		for i, p := range t.Params {
			parts[i] = p.Signature()
		}
		return fmt.Sprintf("func(%s)%s", strings.Join(parts, ","), t.Elem.Signature())
	}
	return "?"
}

// Definition returns the one-level definition string of the type: for a
// struct, its tag plus field names and signatures. The TI digest combines
// definitions so that two programs agree on a type only if its full shape
// agrees.
func (t *Type) Definition() string {
	if t.Kind != KStruct {
		return t.Signature()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "struct %s{", t.TagName)
	for _, f := range t.Fields {
		fmt.Fprintf(&b, "%s %s;", f.Name, f.Type.Signature())
	}
	b.WriteByte('}')
	return b.String()
}

// FieldIndex returns the index of the named field, or -1.
func (t *Type) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// lazyMu guards the per-Type lazy caches (scalarCount, layouts). Types
// are interned and shared by every process compiled from a program, and
// processes may run on concurrent goroutines (sched clusters, streamed
// migrations), so the memoization must be synchronized. The lock is held
// across the whole recursive computation so the in-progress recursion
// marker is never observable from another goroutine.
var lazyMu sync.Mutex

// layoutFor computes (and caches) the machine-dependent geometry.
func (t *Type) layoutFor(m *arch.Machine) layout {
	lazyMu.Lock()
	defer lazyMu.Unlock()
	return t.layoutLocked(m)
}

func (t *Type) layoutLocked(m *arch.Machine) layout {
	if l, ok := t.layouts[m]; ok {
		return l
	}
	var l layout
	switch t.Kind {
	case KPrim:
		l = layout{size: m.SizeOf(t.Prim), align: m.AlignOf(t.Prim)}
		if t.Prim == arch.Void {
			l = layout{size: 0, align: 1}
		}
	case KPointer:
		l = layout{size: m.PtrSize(), align: m.AlignOf(arch.Ptr)}
	case KArray:
		el := t.Elem.layoutLocked(m)
		l = layout{size: el.size * t.Len, align: el.align}
	case KStruct:
		if !t.complete {
			panic("types: layout of incomplete struct " + t.TagName)
		}
		off := 0
		align := 1
		l.offsets = make([]int, len(t.Fields))
		for i, f := range t.Fields {
			fl := f.Type.layoutLocked(m)
			off = arch.Align(off, fl.align)
			l.offsets[i] = off
			off += fl.size
			if fl.align > align {
				align = fl.align
			}
		}
		l.size = arch.Align(off, align)
		l.align = align
	case KFunc:
		l = layout{size: 0, align: 1}
	}
	t.layouts[m] = l
	return l
}

// SizeOf returns the storage size of the type on machine m.
func (t *Type) SizeOf(m *arch.Machine) int { return t.layoutFor(m).size }

// AlignOf returns the alignment of the type on machine m.
func (t *Type) AlignOf(m *arch.Machine) int { return t.layoutFor(m).align }

// OffsetOf returns the byte offset of field i on machine m.
func (t *Type) OffsetOf(m *arch.Machine, i int) int {
	if t.Kind != KStruct {
		panic("types: OffsetOf on non-struct")
	}
	return t.layoutFor(m).offsets[i]
}

// ScalarCount returns the number of scalar data elements in the flattened
// type: 1 for primitives and pointers, the sum over members for aggregates.
// It is machine-independent, making it the unit of the paper's
// machine-independent pointer offsets.
func (t *Type) ScalarCount() int {
	lazyMu.Lock()
	defer lazyMu.Unlock()
	return t.scalarCountLocked()
}

func (t *Type) scalarCountLocked() int {
	if t.scalarCount >= 0 {
		return t.scalarCount
	}
	// Guard against recursion on (illegal) directly self-containing
	// structs: mark as in-progress with 0; the checker rejects such
	// types before layout anyway.
	t.scalarCount = 0
	n := 0
	switch t.Kind {
	case KPrim:
		if t.Prim == arch.Void {
			n = 0
		} else {
			n = 1
		}
	case KPointer:
		n = 1
	case KArray:
		n = t.Len * t.Elem.scalarCountLocked()
	case KStruct:
		for _, f := range t.Fields {
			n += f.Type.scalarCountLocked()
		}
	}
	t.scalarCount = n
	return n
}

// ScalarType returns the type of the ordinal-th scalar element of t.
// It is machine-independent.
func (t *Type) ScalarType(ordinal int) *Type {
	switch t.Kind {
	case KPrim, KPointer:
		if ordinal != 0 {
			panic(fmt.Sprintf("types: scalar ordinal %d out of range in %s", ordinal, t))
		}
		return t
	case KArray:
		per := t.Elem.ScalarCount()
		return t.Elem.ScalarType(ordinal % per)
	case KStruct:
		for _, f := range t.Fields {
			n := f.Type.ScalarCount()
			if ordinal < n {
				return f.Type.ScalarType(ordinal)
			}
			ordinal -= n
		}
	}
	panic(fmt.Sprintf("types: scalar ordinal out of range in %s", t))
}

// OrdinalToOffset converts a scalar ordinal within t to the byte offset of
// that scalar on machine m. As a special case, ordinal == ScalarCount()
// maps to SizeOf(m): a one-past-the-end pointer, which C programs form
// legally.
func (t *Type) OrdinalToOffset(m *arch.Machine, ordinal int) int {
	if ordinal == t.ScalarCount() {
		return t.SizeOf(m)
	}
	switch t.Kind {
	case KPrim, KPointer:
		if ordinal == 0 {
			return 0
		}
	case KArray:
		per := t.Elem.ScalarCount()
		if per > 0 && ordinal < t.Len*per {
			i, rest := ordinal/per, ordinal%per
			return i*t.Elem.SizeOf(m) + t.Elem.OrdinalToOffset(m, rest)
		}
	case KStruct:
		for fi, f := range t.Fields {
			n := f.Type.ScalarCount()
			if ordinal < n {
				return t.OffsetOf(m, fi) + f.Type.OrdinalToOffset(m, ordinal)
			}
			ordinal -= n
		}
	}
	panic(fmt.Sprintf("types: ordinal %d out of range in %s", ordinal, t))
}

// OffsetToOrdinal converts a byte offset within t on machine m to the
// ordinal of the scalar containing (or starting at) that offset. A byte
// offset equal to SizeOf(m) maps to ScalarCount() (one past the end).
// The second result is false if the offset does not fall on or inside a
// scalar element (for example, inside struct padding).
func (t *Type) OffsetToOrdinal(m *arch.Machine, off int) (int, bool) {
	if off == t.SizeOf(m) {
		return t.ScalarCount(), true
	}
	if off < 0 || off > t.SizeOf(m) {
		return 0, false
	}
	switch t.Kind {
	case KPrim, KPointer:
		// Any interior offset belongs to this scalar; pointers into the
		// middle of a scalar are not meaningful but resolve to it.
		return 0, true
	case KArray:
		es := t.Elem.SizeOf(m)
		if es == 0 {
			return 0, false
		}
		i := off / es
		if i >= t.Len {
			return 0, false
		}
		rest, ok := t.Elem.OffsetToOrdinal(m, off-i*es)
		return i*t.Elem.ScalarCount() + rest, ok
	case KStruct:
		l := t.layoutFor(m)
		base := 0
		for fi := len(t.Fields) - 1; fi >= 0; fi-- {
			if off >= l.offsets[fi] {
				fl := t.Fields[fi].Type
				if off >= l.offsets[fi]+fl.SizeOf(m) {
					return 0, false // padding after field fi
				}
				rest, ok := fl.OffsetToOrdinal(m, off-l.offsets[fi])
				if !ok {
					return 0, false
				}
				for j := 0; j < fi; j++ {
					base += t.Fields[j].Type.ScalarCount()
				}
				return base + rest, true
			}
		}
		return 0, false
	}
	return 0, false
}

// HasPointer reports whether the type contains any pointer scalar. Blocks
// of pointer-free types can be saved with plain XDR translation, as the
// paper notes; pointer-bearing blocks need the Save_pointer machinery.
func (t *Type) HasPointer() bool {
	switch t.Kind {
	case KPointer:
		return true
	case KArray:
		return t.Elem.HasPointer()
	case KStruct:
		for _, f := range t.Fields {
			if f.Type.HasPointer() {
				return true
			}
		}
	}
	return false
}
