package types

import (
	"fmt"
	"hash/crc32"
	"strings"
	"sync"

	"repro/internal/arch"
)

// TI is the Type Information table of the paper: the registry of every type
// a process's memory blocks can have, linked into the process when the
// executable is generated. It assigns each type a stable small index — the
// wire representation of a type — and caches the compiled saving/restoring
// plans per machine.
//
// Because the migratable program is pre-distributed and compiled on every
// potential destination machine, both ends of a migration construct the TI
// table from the same source program, and the indices agree. The Digest
// lets the migration protocol verify that agreement before trusting the
// stream.
type TI struct {
	mu    sync.Mutex
	types []*Type
	index map[*Type]int
	plans map[planKey]*Plan
}

type planKey struct {
	t *Type
	m *arch.Machine
}

// NewTI returns an empty TI table.
func NewTI() *TI {
	return &TI{
		index: make(map[*Type]int),
		plans: make(map[planKey]*Plan),
	}
}

// Add registers t (and, transitively, every type reachable from it) and
// returns its index. Adding an already-registered type is a no-op returning
// the existing index.
func (ti *TI) Add(t *Type) int {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	return ti.add(t)
}

func (ti *TI) add(t *Type) int {
	if i, ok := ti.index[t]; ok {
		return i
	}
	i := len(ti.types)
	ti.types = append(ti.types, t)
	ti.index[t] = i
	switch t.Kind {
	case KPointer, KArray:
		ti.add(t.Elem)
	case KStruct:
		for _, f := range t.Fields {
			ti.add(f.Type)
		}
	}
	return i
}

// Index returns the index of a registered type. The second result is false
// if the type was never added.
func (ti *TI) Index(t *Type) (int, bool) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	i, ok := ti.index[t]
	return i, ok
}

// MustIndex returns the index of a registered type, panicking if absent —
// the process invariant is that every live block's type was registered when
// the executable was generated.
func (ti *TI) MustIndex(t *Type) int {
	i, ok := ti.Index(t)
	if !ok {
		panic(fmt.Sprintf("types: type %s not in TI table", t))
	}
	return i
}

// At returns the type with the given index.
func (ti *TI) At(i int) (*Type, error) {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	if i < 0 || i >= len(ti.types) {
		return nil, fmt.Errorf("types: TI index %d out of range (table has %d)", i, len(ti.types))
	}
	return ti.types[i], nil
}

// Len returns the number of registered types.
func (ti *TI) Len() int {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	return len(ti.types)
}

// Plan returns the compiled saving/restoring plan for t on machine m,
// compiling and caching it on first use. This is the paper's "memory block
// saving and restoring function" generation step.
func (ti *TI) Plan(t *Type, m *arch.Machine) *Plan {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	k := planKey{t, m}
	if p, ok := ti.plans[k]; ok {
		return p
	}
	p := NewPlan(t, m)
	ti.plans[k] = p
	return p
}

// Digest returns a checksum over the definitions of all registered types,
// in registration order. Two processes built from the same program produce
// the same digest; the migration protocol refuses streams whose digest
// differs.
func (ti *TI) Digest() uint32 {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	h := crc32.NewIEEE()
	for i, t := range ti.types {
		fmt.Fprintf(h, "%d:%s\n", i, t.Definition())
	}
	return h.Sum32()
}

// Types returns the registered types in index order.
func (ti *TI) Types() []*Type {
	ti.mu.Lock()
	defer ti.mu.Unlock()
	out := make([]*Type, len(ti.types))
	copy(out, ti.types)
	return out
}

// Summary returns a human-readable dump of the table, used by the
// pre-compiler's -dump-ti flag.
func (ti *TI) Summary(m *arch.Machine) string {
	ti.mu.Lock()
	ts := make([]*Type, len(ti.types))
	copy(ts, ti.types)
	ti.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "TI table: %d types (digest %08x) on %s\n", len(ts), ti.Digest(), m.Name)
	for i, t := range ts {
		fmt.Fprintf(&b, "%4d  %-28s size=%-4d align=%-2d scalars=%-5d ptr=%v\n",
			i, t.String(), t.SizeOf(m), t.AlignOf(m), t.ScalarCount(), t.HasPointer())
	}
	return b.String()
}
