package types

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// nodeType builds the paper's example type:
//
//	struct node { float data; struct node *link; };
func nodeType(tag string) *Type {
	n := NewStruct(tag)
	n.DefineFields([]Field{
		{Name: "data", Type: Float},
		{Name: "link", Type: PointerTo(n)},
	})
	return n
}

func TestInterning(t *testing.T) {
	if PointerTo(Int) != PointerTo(Int) {
		t.Error("pointer types not interned")
	}
	if ArrayOf(Double, 10) != ArrayOf(Double, 10) {
		t.Error("array types not interned")
	}
	if ArrayOf(Double, 10) == ArrayOf(Double, 11) {
		t.Error("arrays of different length must differ")
	}
	if NewStruct("s") == NewStruct("s") {
		t.Error("nominal structs must be distinct per declaration")
	}
	if PrimType(arch.Int) != Int {
		t.Error("prim singletons not shared")
	}
}

func TestStringSpellings(t *testing.T) {
	n := nodeType("node")
	cases := []struct {
		t    *Type
		want string
	}{
		{Int, "int"},
		{PointerTo(Int), "int*"},
		{ArrayOf(Int, 4), "int[4]"},
		{PointerTo(ArrayOf(Int, 10)), "int[10]*"},
		{n, "struct node"},
		{PointerTo(n), "struct node*"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestPrimLayout(t *testing.T) {
	for _, m := range arch.Machines() {
		if Int.SizeOf(m) != 4 || Double.SizeOf(m) != 8 {
			t.Errorf("%s: primitive sizes wrong", m.Name)
		}
		if got := PointerTo(Int).SizeOf(m); got != m.PtrSize() {
			t.Errorf("%s: pointer size %d", m.Name, got)
		}
	}
}

func TestStructLayoutPadding(t *testing.T) {
	// struct { char c; double d; } — padding depends on double alignment.
	s := NewStruct("cd")
	s.DefineFields([]Field{{"c", Char}, {"d", Double}})

	if got := s.SizeOf(arch.Ultra5); got != 16 {
		t.Errorf("ultra5 size = %d, want 16", got)
	}
	if got := s.OffsetOf(arch.Ultra5, 1); got != 8 {
		t.Errorf("ultra5 offset of d = %d, want 8", got)
	}
	// i386 aligns double to 4, so the layout genuinely differs.
	if got := s.SizeOf(arch.I386); got != 12 {
		t.Errorf("i386 size = %d, want 12", got)
	}
	if got := s.OffsetOf(arch.I386, 1); got != 4 {
		t.Errorf("i386 offset of d = %d, want 4", got)
	}
}

func TestStructTailPadding(t *testing.T) {
	// struct { double d; char c; } must round its size up to alignment.
	s := NewStruct("dc")
	s.DefineFields([]Field{{"d", Double}, {"c", Char}})
	if got := s.SizeOf(arch.SPARC20); got != 16 {
		t.Errorf("size with tail padding = %d, want 16", got)
	}
}

func TestRecursiveStructLayout(t *testing.T) {
	n := nodeType("node")
	// On ILP32: float(4) + ptr(4) = 8. On LP64: float(4) pad(4) ptr(8) = 16.
	if got := n.SizeOf(arch.DEC5000); got != 8 {
		t.Errorf("ILP32 node size = %d, want 8", got)
	}
	if got := n.SizeOf(arch.AMD64); got != 16 {
		t.Errorf("LP64 node size = %d, want 16", got)
	}
	if n.ScalarCount() != 2 {
		t.Errorf("node scalar count = %d, want 2", n.ScalarCount())
	}
}

func TestScalarCount(t *testing.T) {
	n := nodeType("node")
	cases := []struct {
		t    *Type
		want int
	}{
		{Int, 1},
		{PointerTo(Int), 1},
		{ArrayOf(Int, 10), 10},
		{ArrayOf(ArrayOf(Double, 3), 4), 12},
		{n, 2},
		{ArrayOf(n, 5), 10},
		{ArrayOf(PointerTo(n), 10), 10},
	}
	for _, c := range cases {
		if got := c.t.ScalarCount(); got != c.want {
			t.Errorf("%s: scalar count = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestOrdinalOffsetRoundTrip(t *testing.T) {
	n := nodeType("node")
	mixed := NewStruct("mixed")
	mixed.DefineFields([]Field{
		{"c", Char},
		{"arr", ArrayOf(n, 3)},
		{"p", PointerTo(Double)},
		{"m", ArrayOf(Char, 5)},
	})
	typesToTest := []*Type{
		Int, Double, PointerTo(Int),
		ArrayOf(Double, 7), ArrayOf(ArrayOf(Int, 2), 3),
		n, ArrayOf(n, 4), mixed, ArrayOf(mixed, 2),
	}
	for _, m := range arch.Machines() {
		for _, ty := range typesToTest {
			count := ty.ScalarCount()
			for ord := 0; ord <= count; ord++ {
				off := ty.OrdinalToOffset(m, ord)
				back, ok := ty.OffsetToOrdinal(m, off)
				if !ok || back != ord {
					t.Errorf("%s on %s: ordinal %d -> offset %d -> ordinal %d (ok=%v)",
						ty, m.Name, ord, off, back, ok)
				}
			}
		}
	}
}

func TestOffsetToOrdinalPadding(t *testing.T) {
	// Offsets inside padding must be rejected.
	s := NewStruct("padded")
	s.DefineFields([]Field{{"c", Char}, {"d", Double}})
	m := arch.Ultra5 // layout: c at 0, 7 bytes padding, d at 8
	if _, ok := s.OffsetToOrdinal(m, 4); ok {
		t.Error("offset in padding resolved to an ordinal")
	}
	if ord, ok := s.OffsetToOrdinal(m, 8); !ok || ord != 1 {
		t.Errorf("offset 8 = ordinal %d, ok=%v; want 1", ord, ok)
	}
	if _, ok := s.OffsetToOrdinal(m, 100); ok {
		t.Error("offset beyond type resolved")
	}
}

func TestOrdinalCrossMachineAgreement(t *testing.T) {
	// The defining property of the paper's pointer encoding: the ordinal
	// of a scalar is the same on every machine, even when byte offsets
	// differ. Convert offset->ordinal on one machine and ordinal->offset
	// on another; the scalar reached must be the same element.
	s := NewStruct("xm")
	s.DefineFields([]Field{{"c", Char}, {"d", Double}, {"p", PointerTo(Int)}, {"a", ArrayOf(Short, 3)}})
	src, dst := arch.I386, arch.SPARCV9
	for ord := 0; ord < s.ScalarCount(); ord++ {
		offSrc := s.OrdinalToOffset(src, ord)
		ordBack, ok := s.OffsetToOrdinal(src, offSrc)
		if !ok || ordBack != ord {
			t.Fatalf("source round trip failed at %d", ord)
		}
		offDst := s.OrdinalToOffset(dst, ord)
		if s.ScalarType(ord) != s.ScalarType(ordBack) {
			t.Fatalf("scalar type mismatch at ordinal %d", ord)
		}
		_ = offDst // offsets legitimately differ; ordinals must not
	}
	if s.SizeOf(src) == s.SizeOf(dst) {
		t.Log("warning: test machines produced identical sizes; cross-machine check weak")
	}
}

func TestScalarType(t *testing.T) {
	n := nodeType("node")
	if n.ScalarType(0) != Float {
		t.Error("scalar 0 of node should be float")
	}
	if n.ScalarType(1) != PointerTo(n) {
		t.Error("scalar 1 of node should be node*")
	}
	a := ArrayOf(n, 3)
	if a.ScalarType(4) != Float {
		t.Error("scalar 4 of node[3] should be float")
	}
	if a.ScalarType(5) != PointerTo(n) {
		t.Error("scalar 5 of node[3] should be node*")
	}
}

func TestHasPointer(t *testing.T) {
	n := nodeType("node")
	cases := []struct {
		t    *Type
		want bool
	}{
		{Int, false},
		{ArrayOf(Double, 100), false},
		{PointerTo(Int), true},
		{n, true},
		{ArrayOf(n, 2), true},
	}
	for _, c := range cases {
		if got := c.t.HasPointer(); got != c.want {
			t.Errorf("%s: HasPointer = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestOrdinalQuick(t *testing.T) {
	n := nodeType("node")
	big := NewStruct("big")
	big.DefineFields([]Field{
		{"a", ArrayOf(n, 7)},
		{"b", Char},
		{"c", ArrayOf(Double, 9)},
		{"d", PointerTo(big)},
	})
	machines := arch.Machines()
	f := func(ordRaw uint16, mi uint8) bool {
		m := machines[int(mi)%len(machines)]
		ord := int(ordRaw) % (big.ScalarCount() + 1)
		off := big.OrdinalToOffset(m, ord)
		back, ok := big.OffsetToOrdinal(m, off)
		return ok && back == ord
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIncompleteStructPanics(t *testing.T) {
	s := NewStruct("inc")
	defer func() {
		if recover() == nil {
			t.Error("layout of incomplete struct did not panic")
		}
	}()
	s.SizeOf(arch.Ultra5)
}

func TestPredicates(t *testing.T) {
	if !Int.IsArithmetic() || !Int.IsInteger() || Int.IsFloat() || Int.IsPointer() {
		t.Error("Int predicates")
	}
	if !Double.IsFloat() || !Double.IsArithmetic() {
		t.Error("Double predicates")
	}
	if !PointerTo(Void).IsPointer() {
		t.Error("pointer predicate")
	}
	if !Void.IsVoid() || Int.IsVoid() {
		t.Error("void predicate")
	}
}

func TestTILenAndTypes(t *testing.T) {
	ti := NewTI()
	n := nodeType("lenNode")
	ti.Add(PointerTo(n))
	if ti.Len() != 3 { // ptr, node, float
		t.Errorf("Len = %d", ti.Len())
	}
	ts := ti.Types()
	if len(ts) != ti.Len() || ts[0] != PointerTo(n) {
		t.Errorf("Types = %v", ts)
	}
}

func TestFuncTypeAndSignatures(t *testing.T) {
	f := FuncType(Int, []*Type{Double, PointerTo(Char)})
	if f.Kind != KFunc {
		t.Fatal("wrong kind")
	}
	if got := f.String(); got != "int(double,char*)" {
		t.Errorf("String = %q", got)
	}
	if got := f.Signature(); got != "func(double,*char)int" {
		t.Errorf("Signature = %q", got)
	}
	if f.SizeOf(arch.Ultra5) != 0 || f.AlignOf(arch.Ultra5) != 1 {
		t.Error("function layout should be degenerate")
	}
}

func TestCompleteAndFieldIndex(t *testing.T) {
	s := NewStruct("cfi")
	if s.Complete() {
		t.Error("new struct reports complete")
	}
	if !Int.Complete() {
		t.Error("primitive reports incomplete")
	}
	s.DefineFields([]Field{{"a", Int}, {"b", Double}})
	if !s.Complete() {
		t.Error("defined struct reports incomplete")
	}
	if s.FieldIndex("b") != 1 || s.FieldIndex("z") != -1 {
		t.Error("FieldIndex wrong")
	}
}

func TestDefineFieldsPanics(t *testing.T) {
	s := NewStruct("dfp")
	s.DefineFields([]Field{{"a", Int}})
	assertPanics(t, "redefinition", func() { s.DefineFields([]Field{{"b", Int}}) })
	assertPanics(t, "non-struct", func() { Int.DefineFields(nil) })
	assertPanics(t, "OffsetOf on non-struct", func() { Int.OffsetOf(arch.Ultra5, 0) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	f()
}

func TestSignatureAndDefinitionSpellings(t *testing.T) {
	n := nodeType("sigNode")
	if got := n.Signature(); got != "struct:sigNode" {
		t.Errorf("struct signature = %q", got)
	}
	if got := ArrayOf(PointerTo(Int), 4).Signature(); got != "[4]*int" {
		t.Errorf("array signature = %q", got)
	}
	def := n.Definition()
	if def != "struct sigNode{data float;link *struct:sigNode;}" {
		t.Errorf("definition = %q", def)
	}
	if Int.Definition() != "int" {
		t.Errorf("prim definition = %q", Int.Definition())
	}
}
