package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomProgram generates a random migration-safe MigC program from a
// seed. The generated programs mix scalar arithmetic, arrays, heap-
// allocated linked records, pointer aliasing, and nested loops with
// poll-points, and fold everything they compute into main's exit code —
// so running the program plain and running it with a migration at any
// poll-point must produce the same exit code. The differential tests use
// this as a system-level property check of the whole pipeline.
func RandomProgram(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder

	nCells := 4 + rng.Intn(5)
	b.WriteString("struct rec { long v; struct rec *next; };\n")
	b.WriteString("struct rec *chain;\n")
	fmt.Fprintf(&b, "int cells[%d];\n", nCells)
	b.WriteString("double accum;\n\n")

	// A helper manipulating globals.
	fmt.Fprintf(&b, `void feed(int x) {
	struct rec *r;
	r = (struct rec *) malloc(sizeof(struct rec));
	r->v = x;
	r->next = chain;
	chain = r;
	cells[x %% %d] += x;
}

`, nCells)

	// The result folding uses int (32-bit on every machine) rather than
	// long, so wraparound behaves identically on ILP32 and LP64 targets
	// and the differential property holds across data models.
	b.WriteString("int main() {\n")
	b.WriteString("\tint i, j, t;\n\tint total;\n\tint *alias;\n")
	b.WriteString("\tt = 0;\n\ttotal = 0;\n\taccum = 0.0;\n\tchain = 0;\n")
	fmt.Fprintf(&b, "\talias = &cells[%d];\n", rng.Intn(nCells))

	// Random statement soup inside one or two loops.
	loops := 1 + rng.Intn(2)
	iters := 5 + rng.Intn(20)
	for l := 0; l < loops; l++ {
		fmt.Fprintf(&b, "\tfor (i = 0; i < %d; i++) {\n", iters)
		stmts := 2 + rng.Intn(4)
		for s := 0; s < stmts; s++ {
			switch rng.Intn(6) {
			case 0:
				fmt.Fprintf(&b, "\t\tt = t * %d + i;\n", 1+rng.Intn(7))
			case 1:
				fmt.Fprintf(&b, "\t\tfeed(i + %d);\n", rng.Intn(50))
			case 2:
				fmt.Fprintf(&b, "\t\taccum += %d.5 * i;\n", rng.Intn(9))
			case 3:
				fmt.Fprintf(&b, "\t\t*alias ^= i << %d;\n", rng.Intn(5))
			case 4:
				fmt.Fprintf(&b, "\t\tif (i %% %d == 0) { t -= %d; } else { t += i; }\n",
					2+rng.Intn(3), rng.Intn(10))
			case 5:
				fmt.Fprintf(&b, "\t\tfor (j = 0; j < %d; j++) { cells[j %% %d] += j; }\n",
					2+rng.Intn(4), nCells)
			}
		}
		b.WriteString("\t}\n")
	}

	// Fold all state into the result.
	b.WriteString("\ttotal = t;\n")
	fmt.Fprintf(&b, "\tfor (i = 0; i < %d; i++) { total = total * 31 + cells[i]; }\n", nCells)
	b.WriteString(`	while (chain) {
		struct rec *r;
		r = chain;
		chain = chain->next;
		total = total * 7 + (int)r->v;
		free(r);
	}
	total += (int)accum;
	if (total < 0) total = -total;
	return (int)(total % 251);
}
`)
	return b.String()
}
