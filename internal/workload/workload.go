// Package workload provides the three programs of the paper's evaluation
// (Section 4.1), written in MigC, plus the synthetic programs used by the
// overhead experiments of Section 4.3:
//
//   - test_pointer: a synthesis program with a tree structure, a pointer
//     to integer, a pointer to an array of 10 integers, a pointer to an
//     array of 10 pointers to integers, and a tree-like (shared/DAG) data
//     structure;
//   - linpack: the netlib linpack benchmark core — dgefa/dgesl with
//     partial pivoting solving Ax = b — computation-intensive, with large
//     matrix blocks and no dynamic allocation;
//   - bitonic: the tree-based sorting program — a binary tree stores
//     randomly generated integers and is traversed in order, exercising
//     extensive memory allocation and recursion.
//
// Beyond the paper's programs, JacobiSource (an iterative stencil solve
// that migrates at sweep boundaries) and RandomProgram (seeded program
// generation for differential testing) extend the workload set.
//
// Each source embeds one explicit migration point (migrate_here) placed
// where the paper's experiments take their snapshot: after the program's
// data structures are fully built and live.
//
// MigC has no parenthesized declarators, so the paper's "pointer to array
// of 10 ints" appears as a pointer to a struct wrapping the array — the
// same memory block shape, reached through one pointer.
package workload

import "fmt"

// TestPointerSource returns the test_pointer program. treeDepth controls
// the size of the binary tree (2^depth - 1 nodes).
func TestPointerSource(treeDepth int) string {
	return fmt.Sprintf(`
/* test_pointer: synthesis program exercising every pointer shape of the
   paper's heterogeneity experiment. Returns 0 on success; each failed
   verification returns a distinct code. */

struct tree {
	int key;
	struct tree *left;
	struct tree *right;
};

struct intbox {
	int arr[10];
};

struct ptrbox {
	int *arr[10];
};

struct dagnode {
	double weight;
	struct dagnode *kids[3];
};

int target;
int pool[10];
struct tree *troot;
struct intbox *pbox;
struct ptrbox *ppbox;
struct dagnode *droot;
struct dagnode *shared;
int *pint;

struct tree *buildtree(int depth, int base) {
	struct tree *t;
	if (depth == 0) return 0;
	t = (struct tree *) malloc(sizeof(struct tree));
	t->key = base;
	t->left = buildtree(depth - 1, base * 2);
	t->right = buildtree(depth - 1, base * 2 + 1);
	return t;
}

int sumtree(struct tree *t) {
	if (t == 0) return 0;
	return t->key + sumtree(t->left) + sumtree(t->right);
}

int main() {
	int i;
	int checksum, expect;

	/* pointer to integer */
	target = 7777;
	pint = &target;

	/* pointer to (an array of 10 integers) */
	pbox = (struct intbox *) malloc(sizeof(struct intbox));
	for (i = 0; i < 10; i++) pbox->arr[i] = i * i;

	/* pointer to (an array of 10 pointers to integers) */
	for (i = 0; i < 10; i++) pool[i] = 100 + i;
	ppbox = (struct ptrbox *) malloc(sizeof(struct ptrbox));
	for (i = 0; i < 10; i++) ppbox->arr[i] = &pool[9 - i];

	/* tree structure */
	troot = buildtree(%d, 1);
	expect = sumtree(troot);

	/* tree-like structure: three parents share one child, plus a cycle */
	shared = (struct dagnode *) malloc(sizeof(struct dagnode));
	shared->weight = 2.5;
	shared->kids[0] = 0; shared->kids[1] = 0; shared->kids[2] = 0;
	droot = (struct dagnode *) malloc(sizeof(struct dagnode));
	droot->weight = 1.0;
	for (i = 0; i < 3; i++) {
		struct dagnode *k;
		k = (struct dagnode *) malloc(sizeof(struct dagnode));
		k->weight = 10.0 + i;
		k->kids[0] = shared;   /* shared child */
		k->kids[1] = droot;    /* cycle back to the root */
		k->kids[2] = 0;
		droot->kids[i] = k;
	}

	migrate_here();

	/* ---- verification after (potential) migration ---- */
	if (*pint != 7777) return 1;
	target = 8888;
	if (*pint != 8888) return 2;      /* aliasing preserved */

	for (i = 0; i < 10; i++) {
		if (pbox->arr[i] != i * i) return 3;
	}
	for (i = 0; i < 10; i++) {
		if (*(ppbox->arr[i]) != 100 + 9 - i) return 4;
	}
	/* write through the restored pointer array, observe in pool */
	*(ppbox->arr[0]) = -5;
	if (pool[9] != -5) return 5;

	checksum = sumtree(troot);
	if (checksum != expect) return 6;

	if (droot->kids[0]->kids[0] != droot->kids[1]->kids[0]) return 7;
	if (droot->kids[1]->kids[0] != droot->kids[2]->kids[0]) return 8;
	if (droot->kids[0]->kids[1] != droot) return 9;
	shared->weight = 99.5;
	if (droot->kids[2]->kids[0]->weight != 99.5) return 10;

	return 0;
}
`, treeDepth)
}

// LinpackSource returns the linpack benchmark for an n x n system. When
// solve is false the program stops right after the migration point, which
// is what the collection/restoration experiments need (the paper measures
// state transfer, not factorization). When solve is true the system is
// factored and solved after migration and the residual against the known
// solution (all ones) is checked.
func LinpackSource(n int, solve bool) string {
	solveFlag := 0
	if solve {
		solveFlag = 1
	}
	return fmt.Sprintf(`
/* linpack: solve Ax = b with LU factorization and partial pivoting.
   Matrices are local variables of main, as in the paper's runs; the
   migration point sits right after matrix generation so the full data
   set is live at collection time. */

int nval;

int idamax(int n, double *dx, int base) {
	double dmax;
	int i, itemp;
	itemp = 0;
	dmax = fabs(dx[base]);
	for (i = 1; i < n; i++) {
		if (fabs(dx[base + i]) > dmax) {
			itemp = i;
			dmax = fabs(dx[base + i]);
		}
	}
	return itemp;
}

void dscal(int n, double da, double *dx, int base) {
	int i;
	for (i = 0; i < n; i++) dx[base + i] = da * dx[base + i];
}

void daxpy(int n, double da, double *dx, int xbase, double *dy, int ybase) {
	int i;
	if (da == 0.0) return;
	for (i = 0; i < n; i++) {
		dy[ybase + i] = dy[ybase + i] + da * dx[xbase + i];
	}
}

void matgen(double *a, int lda, int n, double *b) {
	long init;
	int i, j;
	init = 1325;
	for (j = 0; j < n; j++) {
		for (i = 0; i < n; i++) {
			init = 3125 * init %% 65536;
			a[lda * j + i] = (init - 32768.0) / 16384.0;
		}
	}
	/* b = A * ones, so the solution is all ones */
	for (i = 0; i < n; i++) b[i] = 0.0;
	for (j = 0; j < n; j++) {
		for (i = 0; i < n; i++) {
			b[i] = b[i] + a[lda * j + i];
		}
	}
}

void dgefa(double *a, int lda, int n, int *ipvt, int *info) {
	double t;
	int j, k, kp1, l, nm1;
	*info = 0;
	nm1 = n - 1;
	for (k = 0; k < nm1; k++) {
		kp1 = k + 1;
		l = idamax(n - k, a, lda * k + k) + k;
		ipvt[k] = l;
		if (a[lda * k + l] == 0.0) {
			*info = k + 1;
			return;
		}
		if (l != k) {
			t = a[lda * k + l];
			a[lda * k + l] = a[lda * k + k];
			a[lda * k + k] = t;
		}
		t = -1.0 / a[lda * k + k];
		dscal(n - kp1, t, a, lda * k + kp1);
		for (j = kp1; j < n; j++) {
			t = a[lda * j + l];
			if (l != k) {
				a[lda * j + l] = a[lda * j + k];
				a[lda * j + k] = t;
			}
			daxpy(n - kp1, t, a, lda * k + kp1, a, lda * j + kp1);
		}
	}
	ipvt[n - 1] = n - 1;
	if (a[lda * (n - 1) + n - 1] == 0.0) *info = n;
}

void dgesl(double *a, int lda, int n, int *ipvt, double *b) {
	double t;
	int k, kb, l, nm1;
	nm1 = n - 1;
	for (k = 0; k < nm1; k++) {
		l = ipvt[k];
		t = b[l];
		if (l != k) {
			b[l] = b[k];
			b[k] = t;
		}
		daxpy(n - k - 1, t, a, lda * k + k + 1, b, k + 1);
	}
	for (kb = 0; kb < n; kb++) {
		k = n - 1 - kb;
		b[k] = b[k] / a[lda * k + k];
		t = -b[k];
		daxpy(k, t, a, lda * k, b, 0);
	}
}

int main() {
	double a[%d];
	double b[%d];
	int ipvt[%d];
	int info, i, solve;
	double err, diff;

	nval = %d;
	solve = %d;
	matgen(a, nval, nval, b);

	migrate_here();

	if (!solve) return 0;

	dgefa(a, nval, nval, ipvt, &info);
	if (info != 0) return 2;
	dgesl(a, nval, nval, ipvt, b);

	/* the exact solution is all ones */
	err = 0.0;
	for (i = 0; i < nval; i++) {
		diff = fabs(b[i] - 1.0);
		if (diff > err) err = diff;
	}
	if (err > 0.000001) return 3;
	return 0;
}
`, n*n, n, n, n, solveFlag)
}

// BitonicSource returns the tree-based sorting program for n randomly
// generated integers. The binary tree is built with recursive insertion
// (extensive allocation and recursion, as the paper notes); the migration
// point follows the build, so the whole tree is live; after migration the
// tree is traversed in order and checked to be sorted.
func BitonicSource(n int, seed int) string {
	return fmt.Sprintf(`
/* bitonic: binary tree sort of %d pseudo-random integers. */

struct tnode {
	int value;
	struct tnode *left;
	struct tnode *right;
};

struct tnode *root;
int count;
int prev;
int ordered;

struct tnode *insert(struct tnode *t, int v) {
	if (t == 0) {
		t = (struct tnode *) malloc(sizeof(struct tnode));
		t->value = v;
		t->left = 0;
		t->right = 0;
		return t;
	}
	if (v < t->value) {
		t->left = insert(t->left, v);
	} else {
		t->right = insert(t->right, v);
	}
	return t;
}

void visit(struct tnode *t) {
	if (t == 0) return;
	visit(t->left);
	if (count > 0 && t->value < prev) ordered = 0;
	prev = t->value;
	count++;
	visit(t->right);
}

int main() {
	int i, n;
	n = %d;
	srand(%d);
	root = 0;
	for (i = 0; i < n; i++) {
		root = insert(root, rand());
	}

	migrate_here();

	count = 0;
	ordered = 1;
	prev = 0;
	visit(root);
	if (count != n) return 1;
	if (!ordered) return 2;
	return 0;
}
`, n, n, seed)
}

// KernelOverheadSource is the Section 4.3 overhead probe: a tiny kernel
// function performing few operations but invoked many times. Poll-point
// placement (inside the kernel loop vs only in main) is chosen by the
// PollPolicy the caller compiles with.
func KernelOverheadSource(outer, inner int) string {
	return fmt.Sprintf(`
/* overhead probe: small kernel called %d times, %d operations each. */

double acc;

void kernel(int n) {
	int i;
	for (i = 0; i < n; i++) {
		acc = acc + 1.0;
	}
}

int main() {
	int i, outer;
	outer = %d;
	acc = 0.0;
	for (i = 0; i < outer; i++) {
		kernel(%d);
	}
	return (int)(acc / 1000.0);
}
`, outer, inner, outer, inner)
}

// AllocOverheadSource is the second Section 4.3 probe: repeated
// allocation of many small memory blocks, growing the MSRLT. When pooled
// is true the program uses the paper's suggested "smart memory allocation
// policy": one arena block instead of many small ones.
func AllocOverheadSource(blocks int, pooled bool) string {
	if pooled {
		return fmt.Sprintf(`
/* allocation probe, pooled variant: one arena instead of %d blocks. */

struct item { int v; int pad; };

int main() {
	struct item *arena;
	int i, n;
	long sum;
	n = %d;
	arena = (struct item *) malloc(n * sizeof(struct item));
	for (i = 0; i < n; i++) {
		arena[i].v = i;
	}
	sum = 0;
	for (i = 0; i < n; i++) {
		sum += arena[i].v;
	}
	free(arena);
	return (int)(sum %% 1000);
}
`, blocks, blocks)
	}
	return fmt.Sprintf(`
/* allocation probe: %d individually allocated small blocks. */

struct item { int v; int pad; };

struct item *slots[%d];

int main() {
	int i, n;
	long sum;
	n = %d;
	for (i = 0; i < n; i++) {
		slots[i] = (struct item *) malloc(sizeof(struct item));
		slots[i]->v = i;
	}
	sum = 0;
	for (i = 0; i < n; i++) {
		sum += slots[i]->v;
	}
	for (i = 0; i < n; i++) {
		free(slots[i]);
	}
	return (int)(sum %% 1000);
}
`, blocks, blocks, blocks)
}

// JacobiSource returns an iterative 2D Jacobi heat-diffusion solver on an
// n x n grid, the classic load-balancing candidate the paper's
// introduction motivates: a long-running iterative computation whose state
// (two grids and an iteration counter) migrates mid-convergence at any
// sweep boundary. The program runs sweeps sweeps and returns 0 if the
// final checksum matches a machine-independent expectation computed by the
// program itself (stored before the loop and compared via a second,
// identical computation after it).
func JacobiSource(n, sweeps int) string {
	return fmt.Sprintf(`
/* jacobi: %d sweeps of heat diffusion on a %dx%d grid. */

int nsz;

void sweep(double *src, double *dst, int n) {
	int i, j;
	for (i = 1; i < n - 1; i++) {
		for (j = 1; j < n - 1; j++) {
			dst[i * n + j] = 0.25 * (src[(i - 1) * n + j] + src[(i + 1) * n + j]
				+ src[i * n + j - 1] + src[i * n + j + 1]);
		}
	}
}

void initgrid(double *g, int n) {
	int i, j;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			g[i * n + j] = 0.0;
		}
	}
	/* hot top edge, cold bottom edge */
	for (j = 0; j < n; j++) {
		g[j] = 100.0;
		g[(n - 1) * n + j] = -100.0;
	}
}

double checksum(double *g, int n) {
	double s;
	int i, j;
	s = 0.0;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			s += g[i * n + j] * (1 + i %% 7) * (1 + j %% 5);
		}
	}
	return s;
}

int main() {
	double a[%d];
	double b[%d];
	int iter, sweeps;
	double sum;

	nsz = %d;
	sweeps = %d;
	initgrid(a, nsz);
	initgrid(b, nsz);

	for (iter = 0; iter < sweeps; iter++) {
		migrate_here();
		if (iter %% 2 == 0) {
			sweep(a, b, nsz);
		} else {
			sweep(b, a, nsz);
		}
	}

	sum = checksum(a, nsz) + checksum(b, nsz);
	/* The caller compares the exit code against an unmigrated run; fold
	   the checksum into a bounded integer deterministically. */
	if (sum < 0) sum = -sum;
	while (sum >= 100000.0) sum = sum / 10.0;
	return (int)sum %% 251;
}
`, sweeps, n, n, n*n, n*n, n, sweeps)
}

// ShardedListsSource returns a program building nlists independent linked
// lists of nnodes payload-heavy nodes each. No pointer ever crosses from
// one list into another, so the heap partitions into exactly nlists
// connected components — the workload behind the parallel sectioned
// collection experiment. The lists hang off a global pointer array (not a
// heap-allocated root block, which would fuse every list into one
// component). A checksum computed before the migration point is verified
// after it; exit 0 means every payload survived bit-exactly.
func ShardedListsSource(nlists, nnodes int) string {
	return fmt.Sprintf(`
/* sharded_lists: %d independent lists x %d nodes, 16 doubles per node. */

struct node {
	double pay[16];
	struct node *next;
};

struct node *heads[%d];
double checksum;

int main() {
	int i, j, k;
	struct node *c;
	double sum;

	for (k = 0; k < %d; k++) {
		heads[k] = 0;
		for (i = 0; i < %d; i++) {
			c = (struct node *) malloc(sizeof(struct node));
			for (j = 0; j < 16; j++) {
				c->pay[j] = k * 1000.0 + i + j * 0.5;
			}
			c->next = heads[k];
			heads[k] = c;
		}
	}
	sum = 0.0;
	for (k = 0; k < %d; k++) {
		c = heads[k];
		while (c) {
			for (j = 0; j < 16; j++) sum += c->pay[j];
			c = c->next;
		}
	}
	checksum = sum;

	migrate_here();

	sum = 0.0;
	for (k = 0; k < %d; k++) {
		c = heads[k];
		while (c) {
			for (j = 0; j < 16; j++) sum += c->pay[j];
			c = c->next;
		}
	}
	if (sum != checksum) return 1;
	return 0;
}
`, nlists, nnodes, nlists, nlists, nnodes, nlists, nlists)
}

// MutatingShardsSource builds the E12 checkpoint workload: nlists
// independent lists of nnodes nodes (16 doubles each), then rounds
// mutation rounds. Round r adds 1.0 to every payload double of list
// r % nlists and reaches a migration point — so between two consecutive
// polls exactly one heap component changes, and a checkpoint taken every
// K-th poll sees roughly K of nlists components dirty. The final checksum
// verifies every mutation survived every checkpoint/restore:
// sum == checksum + rounds * 16 * nnodes.
func MutatingShardsSource(nlists, nnodes, rounds int) string {
	return fmt.Sprintf(`
/* mutating_shards: %d lists x %d nodes; %d rounds of mutate-one-list + poll. */

struct node {
	double pay[16];
	struct node *next;
};

struct node *heads[%d];
double checksum;

int main() {
	int i, j, k, r;
	struct node *c;
	double sum;

	for (k = 0; k < %d; k++) {
		heads[k] = 0;
		for (i = 0; i < %d; i++) {
			c = (struct node *) malloc(sizeof(struct node));
			for (j = 0; j < 16; j++) {
				c->pay[j] = k * 1000.0 + i + j * 0.5;
			}
			c->next = heads[k];
			heads[k] = c;
		}
	}
	sum = 0.0;
	for (k = 0; k < %d; k++) {
		c = heads[k];
		while (c) {
			for (j = 0; j < 16; j++) sum += c->pay[j];
			c = c->next;
		}
	}
	checksum = sum;

	for (r = 0; r < %d; r++) {
		k = r %% %d;
		c = heads[k];
		while (c) {
			for (j = 0; j < 16; j++) c->pay[j] = c->pay[j] + 1.0;
			c = c->next;
		}
		migrate_here();
	}

	sum = 0.0;
	for (k = 0; k < %d; k++) {
		c = heads[k];
		while (c) {
			for (j = 0; j < 16; j++) sum += c->pay[j];
			c = c->next;
		}
	}
	if (sum != checksum + %d * 16.0 * %d) return 1;
	return 0;
}
`, nlists, nnodes, rounds, nlists, nlists, nnodes, nlists, rounds, nlists, nlists, rounds, nnodes)
}

// WriteRateSource builds the E14 live-migration workload: nlists
// independent lists of nnodes nodes (16 doubles each), then rounds
// mutation rounds with a tunable write rate — round r adds 1.0 to every
// payload double of k of the nlists lists (lists (r*k+m) % nlists for
// m in 0..k-1) before reaching a migration point. Between two
// consecutive polls a k/nlists fraction of the heap is dirty, which is
// exactly the knob the pre-copy convergence sweep turns. The final
// checksum verifies every mutation survived every migration:
// sum == checksum + rounds * k * 16 * nnodes.
func WriteRateSource(nlists, nnodes, k, rounds int) string {
	return fmt.Sprintf(`
/* write_rate: %d lists x %d nodes; %d rounds mutating %d lists each + poll. */

struct node {
	double pay[16];
	struct node *next;
};

struct node *heads[%d];
double checksum;

int main() {
	int i, j, k, m, r;
	struct node *c;
	double sum;

	for (k = 0; k < %d; k++) {
		heads[k] = 0;
		for (i = 0; i < %d; i++) {
			c = (struct node *) malloc(sizeof(struct node));
			for (j = 0; j < 16; j++) {
				c->pay[j] = k * 1000.0 + i + j * 0.5;
			}
			c->next = heads[k];
			heads[k] = c;
		}
	}
	sum = 0.0;
	for (k = 0; k < %d; k++) {
		c = heads[k];
		while (c) {
			for (j = 0; j < 16; j++) sum += c->pay[j];
			c = c->next;
		}
	}
	checksum = sum;

	for (r = 0; r < %d; r++) {
		for (m = 0; m < %d; m++) {
			k = (r * %d + m) %% %d;
			c = heads[k];
			while (c) {
				for (j = 0; j < 16; j++) c->pay[j] = c->pay[j] + 1.0;
				c = c->next;
			}
		}
		migrate_here();
	}

	sum = 0.0;
	for (k = 0; k < %d; k++) {
		c = heads[k];
		while (c) {
			for (j = 0; j < 16; j++) sum += c->pay[j];
			c = c->next;
		}
	}
	if (sum != checksum + %d * %d * 16.0 * %d) return 1;
	return 0;
}
`, nlists, nnodes, rounds, k, nlists, nlists, nnodes, nlists, rounds, k, k, nlists, nlists, rounds, k, nnodes)
}
