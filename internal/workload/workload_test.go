package workload

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/vm"
)

func engine(t *testing.T, src string) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(src, minic.PollPolicy{}) // explicit polls only
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return e
}

func runPlain(t *testing.T, e *core.Engine, m *arch.Machine) int {
	t.Helper()
	p, err := e.NewProcess(m)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 200_000_000
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated {
		t.Fatal("unexpected migration in plain run")
	}
	return res.ExitCode
}

func runMigrated(t *testing.T, e *core.Engine, src, dst *arch.Machine) int {
	t.Helper()
	res, err := e.RunWithMigration(src, dst, func(p *vm.Process) {
		p.MaxSteps = 200_000_000
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migrated {
		t.Fatal("workload did not migrate")
	}
	return res.ExitCode
}

func TestTestPointerPlain(t *testing.T) {
	e := engine(t, TestPointerSource(5))
	for _, m := range arch.Machines() {
		if code := runPlain(t, e, m); code != 0 {
			t.Errorf("%s: test_pointer failed with code %d", m.Name, code)
		}
	}
}

func TestTestPointerHeterogeneousMigration(t *testing.T) {
	e := engine(t, TestPointerSource(6))
	// The paper's pair, both directions, plus 32<->64-bit pairs.
	pairs := [][2]*arch.Machine{
		{arch.DEC5000, arch.SPARC20},
		{arch.SPARC20, arch.DEC5000},
		{arch.I386, arch.SPARCV9},
		{arch.AMD64, arch.Ultra5},
	}
	for _, pr := range pairs {
		if code := runMigrated(t, e, pr[0], pr[1]); code != 0 {
			t.Errorf("%s -> %s: test_pointer failed with code %d", pr[0].Name, pr[1].Name, code)
		}
	}
}

func TestLinpackSolvesPlain(t *testing.T) {
	e := engine(t, LinpackSource(30, true))
	for _, m := range []*arch.Machine{arch.DEC5000, arch.SPARCV9} {
		if code := runPlain(t, e, m); code != 0 {
			t.Errorf("%s: linpack failed with code %d", m.Name, code)
		}
	}
}

func TestLinpackMigratedMidSolve(t *testing.T) {
	// Migrate right after matgen (the experiment snapshot), then factor
	// and solve on the destination: the answer must still verify, which
	// demonstrates that the high-order floating point accuracy survives
	// the transfer (Section 4.1).
	e := engine(t, LinpackSource(40, true))
	if code := runMigrated(t, e, arch.DEC5000, arch.SPARC20); code != 0 {
		t.Errorf("linpack after migration failed with code %d", code)
	}
	if code := runMigrated(t, e, arch.SPARCV9, arch.I386); code != 0 {
		t.Errorf("linpack 64->32 after migration failed with code %d", code)
	}
}

func TestLinpackNoSolveStopsAtMigration(t *testing.T) {
	e := engine(t, LinpackSource(20, false))
	if code := runPlain(t, e, arch.Ultra5); code != 0 {
		t.Errorf("code = %d", code)
	}
}

func TestBitonicPlain(t *testing.T) {
	e := engine(t, BitonicSource(500, 42))
	for _, m := range []*arch.Machine{arch.Ultra5, arch.I386} {
		if code := runPlain(t, e, m); code != 0 {
			t.Errorf("%s: bitonic failed with code %d", m.Name, code)
		}
	}
}

func TestBitonicMigrated(t *testing.T) {
	e := engine(t, BitonicSource(800, 7))
	if code := runMigrated(t, e, arch.DEC5000, arch.SPARC20); code != 0 {
		t.Errorf("bitonic after migration failed with code %d", code)
	}
}

func TestBitonicTreeShapeSurvives(t *testing.T) {
	// The tree block count on the destination must equal the node count.
	e := engine(t, BitonicSource(300, 3))
	res, err := e.RunWithMigration(arch.DEC5000, arch.SPARCV9, func(p *vm.Process) {
		p.MaxSteps = 200_000_000
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migrated || res.ExitCode != 0 {
		t.Fatalf("res = %+v", res)
	}
	if res.Process.Space.HeapLive() != 300 {
		t.Errorf("heap blocks on destination = %d, want 300", res.Process.Space.HeapLive())
	}
}

func TestKernelOverheadSource(t *testing.T) {
	src := KernelOverheadSource(100, 50)
	// Annotated at loop heads everywhere.
	eAll, err := core.NewEngine(src, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	pAll, _ := eAll.NewProcess(arch.Ultra5)
	pAll.MaxSteps = 10_000_000
	resAll, err := pAll.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Poll checks: 100 outer + 100*50 inner.
	if pAll.Stats.PollChecks != 100+100*50 {
		t.Errorf("inner-annotated poll checks = %d", pAll.Stats.PollChecks)
	}

	// Annotated only in main.
	eMain, err := core.NewEngine(src, minic.PollPolicy{Loops: true, Funcs: []string{"main"}})
	if err != nil {
		t.Fatal(err)
	}
	pMain, _ := eMain.NewProcess(arch.Ultra5)
	pMain.MaxSteps = 10_000_000
	resMain, err := pMain.Run()
	if err != nil {
		t.Fatal(err)
	}
	if pMain.Stats.PollChecks != 100 {
		t.Errorf("outer-annotated poll checks = %d", pMain.Stats.PollChecks)
	}
	if resAll.ExitCode != resMain.ExitCode {
		t.Errorf("results differ: %d vs %d", resAll.ExitCode, resMain.ExitCode)
	}
}

func TestAllocOverheadSources(t *testing.T) {
	for _, pooled := range []bool{false, true} {
		e, err := core.NewEngine(AllocOverheadSource(500, pooled), minic.DefaultPolicy)
		if err != nil {
			t.Fatalf("pooled=%v: %v", pooled, err)
		}
		p, _ := e.NewProcess(arch.Ultra5)
		p.MaxSteps = 10_000_000
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := (499 * 500 / 2) % 1000
		if res.ExitCode != want {
			t.Errorf("pooled=%v: exit = %d, want %d", pooled, res.ExitCode, want)
		}
		if pooled && p.Stats.MSRLTOps > 100 {
			t.Errorf("pooled variant performed %d MSRLT ops", p.Stats.MSRLTOps)
		}
		if !pooled && p.Stats.MSRLTOps < 1000 {
			t.Errorf("per-block variant performed only %d MSRLT ops", p.Stats.MSRLTOps)
		}
	}
}

// TestRandomProgramDifferential is the system-level property test: for
// each random program, the plain run and every migrate-at-poll-k run on
// heterogeneous machine pairs must agree on the exit code.
func TestRandomProgramDifferential(t *testing.T) {
	machines := []*arch.Machine{arch.DEC5000, arch.SPARC20, arch.AMD64, arch.I386, arch.SPARCV9}
	for seed := int64(0); seed < 12; seed++ {
		src := RandomProgram(seed)
		e, err := core.NewEngine(src, minic.DefaultPolicy)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		// Reference run.
		ref, err := e.NewProcess(arch.Ultra5)
		if err != nil {
			t.Fatal(err)
		}
		ref.MaxSteps = 20_000_000
		refRes, err := ref.Run()
		if err != nil {
			t.Fatalf("seed %d: reference: %v\n%s", seed, err, src)
		}
		// Count the polls so migration points cover the whole run.
		totalPolls := ref.Stats.PollChecks
		if totalPolls == 0 {
			continue
		}
		// Probe a handful of migration points across the run.
		probes := []int64{1, totalPolls / 2, totalPolls}
		for pi, probe := range probes {
			if probe < 1 {
				continue
			}
			srcM := machines[(int(seed)+pi)%len(machines)]
			dstM := machines[(int(seed)+pi+2)%len(machines)]
			p, err := e.NewProcess(srcM)
			if err != nil {
				t.Fatal(err)
			}
			p.MaxSteps = 20_000_000
			count := int64(0)
			p.PollHook = func(*vm.Process, *minic.Site) bool {
				count++
				return count == probe
			}
			res, err := p.Run()
			if err != nil {
				t.Fatalf("seed %d probe %d: %v\n%s", seed, probe, err, src)
			}
			code := res.ExitCode
			if res.Migrated {
				q, err := vm.RestoreProcess(e.Prog, dstM, res.State)
				if err != nil {
					t.Fatalf("seed %d probe %d restore: %v", seed, probe, err)
				}
				q.MaxSteps = 20_000_000
				res2, err := q.Run()
				if err != nil {
					t.Fatalf("seed %d probe %d resume: %v", seed, probe, err)
				}
				code = res2.ExitCode
			}
			if code != refRes.ExitCode {
				t.Errorf("seed %d: migrated at poll %d (%s->%s) = %d, reference = %d\n%s",
					seed, probe, srcM.Name, dstM.Name, code, refRes.ExitCode, src)
			}
		}
	}
}

func TestJacobiMigratesMidConvergence(t *testing.T) {
	src := JacobiSource(24, 30)
	e, err := core.NewEngine(src, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference without migration.
	want := runPlain(t, e, arch.Ultra5)

	// Migrate at several different sweep boundaries across machine
	// pairs; the converged checksum must match the unmigrated run.
	pairs := [][2]*arch.Machine{
		{arch.DEC5000, arch.SPARC20},
		{arch.SPARCV9, arch.I386},
		{arch.AMD64, arch.Ultra5},
	}
	for pi, pr := range pairs {
		probe := int64(1 + pi*10)
		p, err := e.NewProcess(pr[0])
		if err != nil {
			t.Fatal(err)
		}
		p.MaxSteps = 200_000_000
		count := int64(0)
		p.PollHook = func(*vm.Process, *minic.Site) bool {
			count++
			return count == probe
		}
		res, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Migrated {
			t.Fatalf("pair %d: no migration at sweep %d", pi, probe)
		}
		q, err := vm.RestoreProcess(e.Prog, pr[1], res.State)
		if err != nil {
			t.Fatal(err)
		}
		q.MaxSteps = 200_000_000
		res2, err := q.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res2.ExitCode != want {
			t.Errorf("pair %d (%s->%s at sweep %d): checksum code %d, want %d",
				pi, pr[0].Name, pr[1].Name, probe, res2.ExitCode, want)
		}
	}
}

// TestWriteRateSource checks the tunable-write-rate workload at both ends
// of the knob: it compiles, polls once per round, and the checksum
// invariant holds through an uninterrupted run.
func TestWriteRateSource(t *testing.T) {
	for _, k := range []int{1, 4} {
		prog, err := minic.Compile(WriteRateSource(4, 10, k, 3), minic.PollPolicy{})
		if err != nil {
			t.Fatalf("k=%d compile: %v", k, err)
		}
		p, err := vm.NewProcess(prog, arch.Ultra5)
		if err != nil {
			t.Fatal(err)
		}
		p.MaxSteps = 10_000_000
		polls := 0
		p.PollHook = func(_ *vm.Process, _ *minic.Site) bool { polls++; return false }
		res, err := p.Run()
		if err != nil {
			t.Fatalf("k=%d run: %v", k, err)
		}
		if res.ExitCode != 0 {
			t.Errorf("k=%d exit %d, want 0 (checksum invariant)", k, res.ExitCode)
		}
		if polls != 3 {
			t.Errorf("k=%d polled %d times, want one per round (3)", k, polls)
		}
	}
}
