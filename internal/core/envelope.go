package core

// The envelope header shared by every transfer path. Both the monolithic
// (version 1) and the streamed (version 2) envelopes open with the same
// four fields — magic, version, source machine name, program digest — and
// this file is the only place they are encoded or decoded; the paths differ
// only in what follows the header (an up-front checksum and opaque payload
// for v1, the raw chunked state for v2).

import (
	"repro/internal/xdr"
)

// envMagic guards every migration envelope ("HPM1").
const envMagic = 0x48504d31

// Envelope versions. They double as the protocol versions negotiated by the
// session layer (internal/session): a peer that can open version N
// envelopes speaks protocol version N.
const (
	// VersionMono is the monolithic envelope: the whole captured state
	// sealed into one frame behind an up-front payload checksum.
	VersionMono uint32 = 1
	// VersionStream is the streamed envelope: the header is followed by
	// the raw state, cut into CRC-framed chunks by internal/stream, which
	// enforces integrity per chunk and per stream.
	VersionStream uint32 = 2
	// VersionSectioned is the sectioned envelope: the header is followed
	// by a sectioned (internal/snapshot) state — typed, independently
	// CRC-framed sections whose heap components are collected in
	// parallel — carried over the same chunk layer as VersionStream.
	VersionSectioned uint32 = 3
	// VersionLive is the live pre-copy protocol: the process state crosses
	// as a sequence of delta rounds (content-addressed section manifests
	// plus only the bodies the receiver lacks) while the source keeps
	// executing, and the final round assembles into a snapshot
	// byte-identical to a VersionSectioned capture of the same paused
	// state. Unlike the lower versions it is never offered in a version
	// range: both sides negotiate versions 1..3 as usual and upgrade to 4
	// only when each advertised the live capability bit, so every legacy
	// handshake stays byte-identical.
	VersionLive uint32 = 4
)

// envHeader is a decoded envelope header.
type envHeader struct {
	version uint32
	srcName string
	digest  uint32
}

// putHeader encodes the shared envelope header.
func putHeader(enc *xdr.Encoder, version uint32, srcName string, digest uint32) {
	enc.PutUint32(envMagic)
	enc.PutUint32(version)
	enc.PutString(srcName)
	enc.PutUint32(digest)
}

// openHeader decodes the shared envelope header and verifies it against the
// engine: the magic must match, the version must equal wantVersion, and the
// digest must identify this engine's program.
func (e *Engine) openHeader(dec *xdr.Decoder, wantVersion uint32) (envHeader, error) {
	magic, err := dec.Uint32()
	if err != nil || magic != envMagic {
		return envHeader{}, ErrBadEnvelope
	}
	var h envHeader
	if h.version, err = dec.Uint32(); err != nil {
		return envHeader{}, ErrBadEnvelope
	}
	if h.version != wantVersion {
		return envHeader{}, ErrVersionMismatch
	}
	if h.srcName, err = dec.String(); err != nil {
		return envHeader{}, ErrBadEnvelope
	}
	if h.digest, err = dec.Uint32(); err != nil {
		return envHeader{}, ErrBadEnvelope
	}
	if h.digest != e.Digest() {
		return envHeader{}, ErrProgramMismatch
	}
	return h, nil
}
