// Package core is the heterogeneous process migration engine: it ties the
// pre-compiler (minic), the virtual machine (vm), the MSRM data collection
// and restoration library (collect), and the transport layer (link) into
// the migration workflow of the paper's Section 2:
//
//  1. a program is transformed into migratable format (compiled with
//     poll-points and live sets) and pre-distributed: every node builds
//     the same Engine from the same source;
//  2. a scheduler sends a migration request to a running process, which
//     notices it at the next poll-point;
//  3. the process collects its execution and memory state into a
//     machine-independent envelope and sends it to the waiting process on
//     the destination machine;
//  4. the source process terminates, the destination process restores the
//     state and resumes from the migration point.
package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/vm"
	"repro/internal/xdr"
)

// Errors returned by envelope handling.
var (
	ErrBadEnvelope     = errors.New("core: malformed migration envelope")
	ErrVersionMismatch = errors.New("core: migration protocol version mismatch")
	ErrProgramMismatch = errors.New("core: envelope was produced by a different program")
	ErrChecksum        = errors.New("core: envelope payload checksum mismatch")
)

// Engine is a migratable program: the compiled form shared by every node
// participating in migrations (the paper pre-distributes and compiles the
// transformed source on every potential destination machine).
type Engine struct {
	Prog   *minic.Program
	Policy minic.PollPolicy
	// Source is retained for diagnostics and redistribution.
	Source string

	digestOnce sync.Once
	digestVal  uint32
}

// NewEngine compiles source into migratable format with the given
// poll-point policy.
func NewEngine(source string, policy minic.PollPolicy) (*Engine, error) {
	prog, err := minic.Compile(source, policy)
	if err != nil {
		return nil, err
	}
	return &Engine{Prog: prog, Policy: policy, Source: source}, nil
}

// NewProcess instantiates the program on a machine.
func (e *Engine) NewProcess(m *arch.Machine) (*vm.Process, error) {
	return vm.NewProcess(e.Prog, m)
}

// Digest identifies the program for envelope verification and session
// negotiation: the TI table digest combined with the shape of the function
// and site tables. It is computed once per engine — envelope and stream
// paths consult it on every header, so it must be cheap.
func (e *Engine) Digest() uint32 {
	e.digestOnce.Do(func() {
		h := crc32.NewIEEE()
		fmt.Fprintf(h, "ti:%08x\n", e.Prog.TI.Digest())
		for _, f := range e.Prog.Funcs {
			fmt.Fprintf(h, "fn:%s/%d/%d/%d\n", f.Name, len(f.Params), len(f.Locals), len(f.Sites))
		}
		fmt.Fprintf(h, "globals:%d\n", len(e.Prog.Globals))
		e.digestVal = h.Sum32()
	})
	return e.digestVal
}

// Seal wraps a captured process state into a transport envelope carrying
// the protocol version, the source machine name, the program digest, and a
// payload checksum.
func (e *Engine) Seal(state []byte, src *arch.Machine) []byte {
	enc := xdr.NewEncoder(len(state) + 64)
	putHeader(enc, VersionMono, src.Name, e.Digest())
	enc.PutUint32(crc32.ChecksumIEEE(state))
	enc.PutOpaque(state)
	return enc.Bytes()
}

// Open verifies an envelope and returns the raw state and the source
// machine name.
func (e *Engine) Open(envelope []byte) (state []byte, srcName string, err error) {
	dec := xdr.NewDecoder(envelope)
	h, err := e.openHeader(dec, VersionMono)
	if err != nil {
		return nil, "", err
	}
	sum, err := dec.Uint32()
	if err != nil {
		return nil, "", ErrBadEnvelope
	}
	state, err = dec.Opaque()
	if err != nil {
		return nil, "", ErrBadEnvelope
	}
	if crc32.ChecksumIEEE(state) != sum {
		return nil, "", ErrChecksum
	}
	return state, h.srcName, nil
}

// Restore verifies an envelope and builds the resumed process on machine m.
func (e *Engine) Restore(m *arch.Machine, envelope []byte) (*vm.Process, error) {
	return e.RestoreObs(m, envelope, nil)
}

// RestoreObs is Restore with a parent span: the restore phases are
// recorded as children of span (nil disables tracing).
func (e *Engine) RestoreObs(m *arch.Machine, envelope []byte, span *obs.Span) (*vm.Process, error) {
	state, _, err := e.Open(envelope)
	if err != nil {
		return nil, err
	}
	return vm.RestoreProcessObs(e.Prog, m, state, span)
}

// SaveToFile seals a captured state and writes it as a framed file — the
// paper's shared-file-system transfer mode.
func (e *Engine) SaveToFile(path string, state []byte, src *arch.Machine) error {
	return link.SendFile(path, e.Seal(state, src))
}

// RestoreFromFile reads a migration envelope from a file and restores it
// on machine m.
func (e *Engine) RestoreFromFile(path string, m *arch.Machine) (*vm.Process, error) {
	env, err := link.RecvFile(path)
	if err != nil {
		return nil, err
	}
	return e.Restore(m, env)
}

// Request is the migration request flag a scheduler raises and a process
// polls — the "migration request sent to the process" of the paper. It is
// safe for concurrent use.
type Request struct {
	pending atomic.Bool
}

// Raise marks a migration request pending.
func (r *Request) Raise() { r.pending.Store(true) }

// Pending reports whether a request is outstanding.
func (r *Request) Pending() bool { return r.pending.Load() }

// Hook adapts the request to a vm.Process poll hook; the request is
// consumed when granted.
func (r *Request) Hook() func(*vm.Process, *minic.Site) bool {
	return func(*vm.Process, *minic.Site) bool {
		return r.pending.CompareAndSwap(true, false)
	}
}

// Timing records the phases of one migration, the columns of the paper's
// Table 1.
type Timing struct {
	Collect time.Duration
	Tx      time.Duration
	Restore time.Duration
	// Bytes is the envelope size on the wire.
	Bytes int
}

// Total returns the end-to-end migration time.
func (t Timing) Total() time.Duration { return t.Collect + t.Tx + t.Restore }

// String renders the timing like the paper's table rows.
func (t Timing) String() string {
	return fmt.Sprintf("collect=%.4fs tx=%.4fs restore=%.4fs (%d bytes)",
		t.Collect.Seconds(), t.Tx.Seconds(), t.Restore.Seconds(), t.Bytes)
}

// Send seals a captured state and transmits it, returning the wire time.
func (e *Engine) Send(t link.Transport, src *arch.Machine, state []byte) (Timing, error) {
	env := e.Seal(state, src)
	start := time.Now()
	if err := t.Send(env); err != nil {
		return Timing{}, err
	}
	return Timing{Tx: time.Since(start), Bytes: len(env)}, nil
}

// ReceiveAndRestore blocks for an envelope on the transport and restores
// it on machine m.
func (e *Engine) ReceiveAndRestore(t link.Transport, m *arch.Machine) (*vm.Process, Timing, error) {
	return e.ReceiveAndRestoreObs(t, m, nil)
}

// ReceiveAndRestoreObs is ReceiveAndRestore recording the receive and
// restore phases as children of span (nil disables tracing).
func (e *Engine) ReceiveAndRestoreObs(t link.Transport, m *arch.Machine, span *obs.Span) (*vm.Process, Timing, error) {
	rx := span.Child("transport")
	rxStart := time.Now()
	env, err := t.Recv()
	mRxLat.Observe(time.Since(rxStart))
	rx.SetBytes(int64(len(env)))
	rx.End()
	if err != nil {
		return nil, Timing{}, err
	}
	start := time.Now()
	p, err := e.RestoreObs(m, env, span)
	if err != nil {
		return nil, Timing{}, err
	}
	restore := time.Since(start)
	mRestoreLat.Observe(restore)
	return p, Timing{Restore: restore, Bytes: len(env)}, nil
}

// MigrateResult is the outcome of a RunWithMigration round.
type MigrateResult struct {
	// Process is the final (destination) process after completion.
	Process *vm.Process
	// ExitCode of the completed program.
	ExitCode int
	// Migrated reports whether a migration actually happened.
	Migrated bool
	Timing   Timing
}

// RunWithMigration runs the program on src with an immediately pending
// migration request, transfers the process to dst over an in-memory
// transport at the first poll-point, and runs it to completion there.
// configure, when non-nil, is applied to each process before it runs
// (setting Stdout, MaxSteps, Instrument, ...). This is the single-call
// workflow used by examples and experiments; package sched provides the
// distributed version with real scheduling.
func (e *Engine) RunWithMigration(src, dst *arch.Machine, configure func(*vm.Process)) (*MigrateResult, error) {
	p, err := e.NewProcess(src)
	if err != nil {
		return nil, err
	}
	if configure != nil {
		configure(p)
	}
	var req Request
	req.Raise()
	p.PollHook = req.Hook()

	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	if !res.Migrated {
		return &MigrateResult{Process: p, ExitCode: res.ExitCode}, nil
	}

	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	type recvResult struct {
		q   *vm.Process
		t   Timing
		err error
	}
	recvc := make(chan recvResult, 1)
	go func() {
		q, rt, rerr := e.ReceiveAndRestore(b, dst)
		recvc <- recvResult{q, rt, rerr}
	}()
	tx, txErr := e.Send(a, p.Mach, res.State)
	if txErr != nil {
		// Fail the receiver's pending Recv so the goroutine exits before
		// we report; both ends close so neither side can block.
		a.Close()
		b.Close()
	}
	rr := <-recvc
	if txErr != nil {
		return nil, txErr
	}
	if rr.err != nil {
		return nil, rr.err
	}
	timing := Timing{
		Collect: p.CaptureStats().Elapsed,
		Tx:      tx.Tx,
		Restore: rr.t.Restore,
		Bytes:   tx.Bytes,
	}

	q := rr.q
	if configure != nil {
		configure(q)
	}
	q.PollHook = nil
	res2, err := q.Run()
	if err != nil {
		return nil, err
	}
	return &MigrateResult{Process: q, ExitCode: res2.ExitCode, Migrated: true, Timing: timing}, nil
}
