package core

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/store"
)

// TestCheckpointRestoreFromStore is the engine-level store round trip: a
// stopped process checkpoints into a content-addressed store, a second
// checkpoint of the unchanged state dedups completely, and the head
// restores to a process that completes correctly on another machine.
func TestCheckpointRestoreFromStore(t *testing.T) {
	e, err := NewEngine(countdownSrc, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.NewProcess(arch.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 1_000_000
	var req Request
	req.Raise()
	p.PollHook = req.Hook()
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("setup: %v %v", res, err)
	}

	st, err := store.Open(t.TempDir(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	m, h, cst, err := e.CheckpointProcess(st, p, arch.DEC5000, "countdown", 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.ProgramDigest != e.Digest() || m.Machine != "dec5000" || m.Seq != 1 {
		t.Errorf("manifest: %+v", m)
	}
	if cst.NewBlobs != cst.Sections {
		t.Errorf("first checkpoint into empty store: %s", cst)
	}

	// The unchanged process checkpoints again: every body dedups.
	_, h2, cst2, err := e.CheckpointProcess(st, p, arch.DEC5000, "countdown", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cst2.NewBlobs != 0 || cst2.DupBlobs != cst.Sections {
		t.Errorf("identical re-checkpoint wrote blobs: %s", cst2)
	}

	q, timing, err := e.RestoreFromStore(st, h2, arch.SPARC20)
	if err != nil {
		t.Fatal(err)
	}
	if timing.Bytes == 0 || q.Mach != arch.SPARC20 {
		t.Errorf("restore: %v on %v", timing, q.Mach)
	}
	q.MaxSteps = 1_000_000
	res2, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.ExitCode != (49*50/2)%97 {
		t.Errorf("exit = %d", res2.ExitCode)
	}

	// A different program build must refuse the checkpoint.
	other, err := NewEngine(`int main() { int i; for (i=0;i<2;i++){} return 1; }`, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := other.RestoreFromStore(st, h, arch.SPARC20); !errors.Is(err, ErrProgramMismatch) {
		t.Errorf("foreign engine restore: %v, want ErrProgramMismatch", err)
	}
}
