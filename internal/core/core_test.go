package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/minic"
	"repro/internal/vm"
)

const countdownSrc = `
	int main() {
		int i, s;
		s = 0;
		for (i = 0; i < 50; i++) {
			s += i;
		}
		return s % 97;
	}
`

func TestEngineCompileError(t *testing.T) {
	if _, err := NewEngine(`int main() { return x; }`, minic.DefaultPolicy); err == nil {
		t.Error("compile error not reported")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	e, err := NewEngine(countdownSrc, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	state := []byte("not really a state, just payload bytes")
	env := e.Seal(state, arch.DEC5000)
	got, src, err := e.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, state) || src != "dec5000" {
		t.Errorf("open = %q from %q", got, src)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	e, _ := NewEngine(countdownSrc, minic.DefaultPolicy)
	env := e.Seal([]byte("payload-bytes-here"), arch.DEC5000)

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte{}, env...)
	bad[len(bad)-3] ^= 1
	if _, _, err := e.Open(bad); err != ErrChecksum {
		t.Errorf("corrupted payload: %v", err)
	}

	// Wrong magic.
	bad2 := append([]byte{}, env...)
	bad2[0] = 0
	if _, _, err := e.Open(bad2); err != ErrBadEnvelope {
		t.Errorf("bad magic: %v", err)
	}

	// Different program.
	other, _ := NewEngine(`int main() { int i; for (i=0;i<2;i++){} return 1; }`, minic.DefaultPolicy)
	if _, _, err := other.Open(env); err != ErrProgramMismatch {
		t.Errorf("foreign program: %v", err)
	}

	// Truncated.
	if _, _, err := e.Open(env[:5]); err != ErrBadEnvelope {
		t.Errorf("truncated: %v", err)
	}
}

func TestRequestFlag(t *testing.T) {
	var r Request
	if r.Pending() {
		t.Error("new request pending")
	}
	r.Raise()
	if !r.Pending() {
		t.Error("raised request not pending")
	}
	hook := r.Hook()
	if !hook(nil, nil) {
		t.Error("hook did not grant pending request")
	}
	if r.Pending() || hook(nil, nil) {
		t.Error("request not consumed")
	}
}

func TestRunWithMigrationHomogeneous(t *testing.T) {
	e, err := NewEngine(countdownSrc, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunWithMigration(arch.Ultra5, arch.Ultra5, func(p *vm.Process) {
		p.MaxSteps = 1_000_000
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migrated {
		t.Fatal("no migration")
	}
	if res.ExitCode != (49*50/2)%97 {
		t.Errorf("exit = %d", res.ExitCode)
	}
	if res.Timing.Bytes == 0 {
		t.Error("no bytes recorded")
	}
	if res.Timing.Total() <= 0 {
		t.Error("no time recorded")
	}
}

func TestRunWithMigrationHeterogeneous(t *testing.T) {
	src := `
		struct node { float data; struct node *link; };
		struct node *head;
		int main() {
			int i, sum;
			struct node *c;
			head = 0;
			for (i = 1; i <= 20; i++) {
				c = (struct node *) malloc(sizeof(struct node));
				c->data = i;
				c->link = head;
				head = c;
			}
			sum = 0;
			c = head;
			while (c) {
				sum += (int)c->data;
				c = c->link;
			}
			return sum % 128; /* 210 % 128 = 82 */
		}
	`
	e, err := NewEngine(src, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	// DEC 5000 (little-endian) to SPARC 20 (big-endian): the truly
	// heterogeneous pair of the paper.
	res, err := e.RunWithMigration(arch.DEC5000, arch.SPARC20, func(p *vm.Process) {
		p.MaxSteps = 1_000_000
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migrated || res.ExitCode != 82 {
		t.Errorf("res = %+v", res)
	}
	if res.Process.Mach != arch.SPARC20 {
		t.Error("final process not on destination machine")
	}
}

func TestRunWithMigrationNoPolls(t *testing.T) {
	e, err := NewEngine(`int main() { return 9; }`, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunWithMigration(arch.DEC5000, arch.SPARC20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated {
		t.Error("program without polls migrated")
	}
	if res.ExitCode != 9 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestTimingString(t *testing.T) {
	s := Timing{Bytes: 42}.String()
	if !strings.Contains(s, "42 bytes") {
		t.Errorf("timing string = %q", s)
	}
}

func TestFileBasedMigration(t *testing.T) {
	// The paper's shared-file-system transfer mode: the source writes
	// the sealed state to a file, the destination picks it up.
	e, err := NewEngine(countdownSrc, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.NewProcess(arch.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 1_000_000
	var req Request
	req.Raise()
	p.PollHook = req.Hook()
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("setup: %v %v", res, err)
	}

	path := filepath.Join(t.TempDir(), "proc.state")
	if err := e.SaveToFile(path, res.State, p.Mach); err != nil {
		t.Fatal(err)
	}
	q, err := e.RestoreFromFile(path, arch.SPARC20)
	if err != nil {
		t.Fatal(err)
	}
	q.MaxSteps = 1_000_000
	res2, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.ExitCode != (49*50/2)%97 {
		t.Errorf("exit = %d", res2.ExitCode)
	}
	// A corrupted file must be rejected.
	raw, _ := os.ReadFile(path)
	raw[len(raw)-2] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	if _, err := e.RestoreFromFile(path, arch.SPARC20); err == nil {
		t.Error("corrupted state file accepted")
	}
}

func TestDigestCachedAndStable(t *testing.T) {
	e, err := NewEngine(countdownSrc, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	d := e.Digest()
	if d == 0 {
		t.Error("zero digest")
	}
	if e.Digest() != d {
		t.Error("digest changed between calls")
	}
	// The same source compiles to the same digest on another node (the
	// pre-distribution invariant the session handshake relies on) ...
	e2, err := NewEngine(countdownSrc, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Digest() != d {
		t.Error("same program, different digest")
	}
	// ... and a different program differs.
	e3, err := NewEngine(`int main() { return 1; }`, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	if e3.Digest() == d {
		t.Error("different program, same digest")
	}
}
