package core

import "repro/internal/obs"

// Pre-resolved latency histograms into the default registry: the
// receive-side split every envelope variant shares — how long the wire
// took versus how long rebuilding the process took.
var (
	mRxLat      = obs.Default.Histogram("core.rx.latency")
	mRestoreLat = obs.Default.Histogram("core.restore.latency")
)
