package core

// Sectioned migration (envelope version 3): the captured state is a
// sectioned snapshot (internal/snapshot) — execution state, heap
// components, frames, and globals as typed, independently CRC-framed
// sections — whose heap components were encoded concurrently by the
// collection layer. On the wire it rides the same chunk layer as the
// version-2 stream; the difference is the payload format and the parallel
// collection behind it. The snapshot's per-section CRCs let the restorer
// localize corruption to one section even when the transport (or a v1
// in-memory envelope) has no framing of its own.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/arch"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/vm"
	"repro/internal/xdr"
)

// putSectionedHeader encodes the sectioned envelope header — the shared
// envelope header at VersionSectioned, followed directly by the snapshot.
func (e *Engine) putSectionedHeader(enc *xdr.Encoder, src *arch.Machine) {
	putHeader(enc, VersionSectioned, src.Name, e.Digest())
}

// OpenSectioned verifies a reassembled sectioned envelope and returns the
// raw snapshot and the source machine name.
func (e *Engine) OpenSectioned(payload []byte) (state []byte, srcName string, err error) {
	dec := xdr.NewDecoder(payload)
	h, err := e.openHeader(dec, VersionSectioned)
	if err != nil {
		return nil, "", err
	}
	return payload[dec.Offset():], h.srcName, nil
}

// SendSectioned captures the state of p (stopped at its migration point)
// as a sectioned snapshot — heap components encoded on a pool of workers
// (<= 0 selects GOMAXPROCS) — and transmits it through sw in chunkSize
// pieces. Unlike SendStream, collection does not overlap transmission:
// the sections are assembled in their deterministic order after the pool
// joins, then flushed; v3's concurrency lives in the encode itself.
//
// The path is zero-copy per section body: snapshot.Append hands each
// body to the sink through the encoder's WriteRaw, so the bytes go from
// the pool worker's (pooled, reused) encode buffer straight into sw's
// chunk buffers without staging through an intermediate envelope buffer.
func (e *Engine) SendSectioned(sw io.WriteCloser, src *arch.Machine, p *vm.Process, chunkSize, workers int) (Timing, error) {
	start := time.Now()
	enc := xdr.NewEncoder(chunkSize + 1024)
	enc.SetSink(chunkSize, func(b []byte) error {
		_, err := sw.Write(b)
		return err
	})
	e.putSectionedHeader(enc, src)
	if err := p.CaptureSectionsTo(enc, workers); err != nil {
		sw.Close()
		return Timing{}, fmt.Errorf("core: sectioned collection: %w", err)
	}
	if err := enc.FlushSink(); err != nil {
		sw.Close()
		return Timing{}, fmt.Errorf("core: sectioned transfer: %w", err)
	}
	if err := sw.Close(); err != nil {
		return Timing{}, fmt.Errorf("core: sectioned transfer: %w", err)
	}
	return Timing{Tx: time.Since(start), Bytes: enc.Len()}, nil
}

// SendSectionedOver is the convenience path over a single established
// transport: it wraps t in a plain stream.Writer and sends the snapshot.
func (e *Engine) SendSectionedOver(t link.Transport, src *arch.Machine, p *vm.Process, cfg stream.Config, workers int) (Timing, error) {
	w := stream.NewWriter(t, cfg)
	return e.SendSectioned(w, src, p, chunkSizeOf(cfg), workers)
}

// ReceiveAndRestoreSectioned reassembles a sectioned envelope from r,
// verifies it, and restores the process on machine m section by section.
func (e *Engine) ReceiveAndRestoreSectioned(r *stream.Reader, m *arch.Machine) (*vm.Process, Timing, error) {
	return e.ReceiveAndRestoreSectionedObs(r, m, nil)
}

// ReceiveAndRestoreSectionedObs is ReceiveAndRestoreSectioned recording
// the reassembly and restore phases as children of span (nil disables
// tracing).
func (e *Engine) ReceiveAndRestoreSectionedObs(r *stream.Reader, m *arch.Machine, span *obs.Span) (*vm.Process, Timing, error) {
	rx := span.Child("transport")
	rxStart := time.Now()
	payload, err := r.ReadAll()
	mRxLat.Observe(time.Since(rxStart))
	rx.SetBytes(int64(len(payload)))
	rx.End()
	if err != nil {
		return nil, Timing{}, err
	}
	state, _, err := e.OpenSectioned(payload)
	if err != nil {
		return nil, Timing{}, err
	}
	start := time.Now()
	p, err := vm.RestoreProcessObs(e.Prog, m, state, span)
	if err != nil {
		return nil, Timing{}, err
	}
	restore := time.Since(start)
	mRestoreLat.Observe(restore)
	return p, Timing{Restore: restore, Bytes: len(payload)}, nil
}
