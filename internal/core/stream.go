package core

// Streamed migration: instead of sealing the whole captured state into one
// envelope and pushing it through a single blocking Send (the stop-and-copy
// path of Send/ReceiveAndRestore), the snapshot flows through the
// internal/stream chunk layer while the MSRM collector is still producing
// it, so collection time and wire time overlap.
//
// The streamed envelope reuses the monolithic header fields but drops the
// up-front payload length and checksum — the stream layer carries a CRC per
// chunk and a whole-stream CRC in its FIN frame, verified before the
// receiver confirms. Restoration still verifies the program digest before
// touching the state.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/arch"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/vm"
	"repro/internal/xdr"
)

// putStreamHeader encodes the streamed envelope header — the shared
// envelope header at VersionStream, with nothing after it but the state.
func (e *Engine) putStreamHeader(enc *xdr.Encoder, src *arch.Machine) {
	putHeader(enc, VersionStream, src.Name, e.Digest())
}

// OpenStream verifies a reassembled streamed envelope and returns the raw
// state and the source machine name.
func (e *Engine) OpenStream(payload []byte) (state []byte, srcName string, err error) {
	dec := xdr.NewDecoder(payload)
	h, err := e.openHeader(dec, VersionStream)
	if err != nil {
		return nil, "", err
	}
	return payload[dec.Offset():], h.srcName, nil
}

// SendStream collects the state of p (stopped at its migration point) and
// transmits it through sw, a stream.Writer or stream.Session, overlapping
// the depth-first MSR traversal with transmission: completed prefixes of
// the encoded snapshot are handed to the chunk writer as collection
// proceeds, bounded by the writer's transmit window. chunkSize is the
// flush threshold and should match the writer's Config.ChunkSize.
//
// The returned Timing reports the whole overlapped phase as Tx; the
// collection component is available separately via p.CaptureStats().
func (e *Engine) SendStream(sw io.WriteCloser, src *arch.Machine, p *vm.Process, chunkSize int) (Timing, error) {
	start := time.Now()
	enc := xdr.NewEncoder(chunkSize + 1024)
	enc.SetSink(chunkSize, func(b []byte) error {
		_, err := sw.Write(b)
		return err
	})
	e.putStreamHeader(enc, src)
	if err := p.CaptureTo(enc); err != nil {
		sw.Close()
		return Timing{}, fmt.Errorf("core: streamed collection: %w", err)
	}
	if err := enc.FlushSink(); err != nil {
		sw.Close()
		return Timing{}, fmt.Errorf("core: streamed transfer: %w", err)
	}
	if err := sw.Close(); err != nil {
		return Timing{}, fmt.Errorf("core: streamed transfer: %w", err)
	}
	return Timing{Tx: time.Since(start), Bytes: enc.Len()}, nil
}

// SendStreamed is the convenience path over a single established
// transport: it wraps t in a plain stream.Writer and streams the snapshot.
func (e *Engine) SendStreamed(t link.Transport, src *arch.Machine, p *vm.Process, cfg stream.Config) (Timing, error) {
	w := stream.NewWriter(t, cfg)
	return e.SendStream(w, src, p, chunkSizeOf(cfg))
}

// chunkSizeOf resolves the effective chunk size of a stream config.
func chunkSizeOf(cfg stream.Config) int {
	if cfg.ChunkSize > 0 {
		return cfg.ChunkSize
	}
	return 256 << 10
}

// ReceiveAndRestoreStream reassembles a streamed envelope from r, verifies
// it, and restores the process on machine m.
func (e *Engine) ReceiveAndRestoreStream(r *stream.Reader, m *arch.Machine) (*vm.Process, Timing, error) {
	return e.ReceiveAndRestoreStreamObs(r, m, nil)
}

// ReceiveAndRestoreStreamObs is ReceiveAndRestoreStream recording the
// reassembly and restore phases as children of span (nil disables tracing).
func (e *Engine) ReceiveAndRestoreStreamObs(r *stream.Reader, m *arch.Machine, span *obs.Span) (*vm.Process, Timing, error) {
	rx := span.Child("transport")
	rxStart := time.Now()
	payload, err := r.ReadAll()
	mRxLat.Observe(time.Since(rxStart))
	rx.SetBytes(int64(len(payload)))
	rx.End()
	if err != nil {
		return nil, Timing{}, err
	}
	state, _, err := e.OpenStream(payload)
	if err != nil {
		return nil, Timing{}, err
	}
	start := time.Now()
	p, err := vm.RestoreProcessObs(e.Prog, m, state, span)
	if err != nil {
		return nil, Timing{}, err
	}
	restore := time.Since(start)
	mRestoreLat.Observe(restore)
	return p, Timing{Restore: restore, Bytes: len(payload)}, nil
}
