package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/stream"
	"repro/internal/vm"
)

// listSrc builds a 60-node heap list and only then reaches its single
// migration point, so the captured state spans several small chunks.
// 60*61/2 = 1830; 1830 % 128 = 38.
const listSrc = `
	struct node { float data; struct node *link; };
	struct node *head;
	int main() {
		int i, sum;
		struct node *c;
		head = 0;
		for (i = 1; i <= 60; i++) {
			c = (struct node *) malloc(sizeof(struct node));
			c->data = i;
			c->link = head;
			head = c;
		}
		migrate_here();
		sum = 0;
		c = head;
		while (c) {
			sum += (int)c->data;
			c = c->link;
		}
		return sum % 128;
	}
`

const listExit = 38

// stoppedAtMigration runs the program on m until the immediately pending
// migration request is granted, returning the stopped process and its
// directly collected state.
func stoppedAtMigration(t *testing.T, e *Engine, m *arch.Machine) (*vm.Process, []byte) {
	t.Helper()
	p, err := e.NewProcess(m)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 1_000_000
	var req Request
	req.Raise()
	p.PollHook = req.Hook()
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("setup: migrated=%v err=%v", res != nil && res.Migrated, err)
	}
	return p, res.State
}

// pipeDialer is the session test network: every dial creates an in-memory
// pipe, hands the peer end to the accept side, and optionally arms a fault
// injector on the dialer's end of that specific connection.
type pipeDialer struct {
	mu     sync.Mutex
	dials  int
	conns  chan link.Transport
	faults map[int]func(*stream.Fault)
}

func newPipeDialer() *pipeDialer {
	return &pipeDialer{
		conns:  make(chan link.Transport, 4),
		faults: map[int]func(*stream.Fault){},
	}
}

func (n *pipeDialer) dial() (link.Transport, error) {
	n.mu.Lock()
	arm := n.faults[n.dials]
	n.dials++
	n.mu.Unlock()
	a, b := link.Pipe()
	f := stream.NewFault(a)
	if arm != nil {
		arm(f)
	}
	n.conns <- b
	return f, nil
}

func (n *pipeDialer) accept() (link.Transport, error) { return <-n.conns, nil }

func TestStreamedMigrationRoundTrip(t *testing.T) {
	e, err := NewEngine(listSrc, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	p, direct := stoppedAtMigration(t, e, arch.DEC5000)

	cfg := stream.Config{ChunkSize: 256, Window: 4}
	a, b := link.Pipe()
	type recvRes struct {
		q   *vm.Process
		tim Timing
		err error
	}
	recvc := make(chan recvRes, 1)
	go func() {
		r := stream.NewReader(b, cfg)
		q, tim, rerr := e.ReceiveAndRestoreStream(r, arch.SPARC20)
		recvc <- recvRes{q, tim, rerr}
	}()

	w := stream.NewWriter(a, cfg)
	tx, err := e.SendStream(w, p.Mach, p, cfg.ChunkSize)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Bytes <= len(direct) {
		t.Errorf("streamed %d bytes, direct state alone is %d", tx.Bytes, len(direct))
	}
	if w.Stats().Chunks < 4 {
		t.Errorf("only %d chunks; state too small to exercise chunking", w.Stats().Chunks)
	}

	rr := <-recvc
	if rr.err != nil {
		t.Fatal(rr.err)
	}
	if rr.tim.Restore <= 0 || rr.tim.Bytes != tx.Bytes {
		t.Errorf("receive timing = %+v, sent %d bytes", rr.tim, tx.Bytes)
	}
	q := rr.q
	if q.Mach != arch.SPARC20 {
		t.Error("restored process not on destination machine")
	}
	re, err := q.Recapture()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, direct) {
		t.Errorf("restored MSR graph differs: recapture %d bytes, direct capture %d bytes", len(re), len(direct))
	}
	q.MaxSteps = 1_000_000
	fin, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fin.ExitCode != listExit {
		t.Errorf("exit = %d, want %d", fin.ExitCode, listExit)
	}
}

func TestStreamedMigrationSurvivesDisconnect(t *testing.T) {
	// The full resume path: the first connection is killed after 5 sends
	// (mid-transfer, well before FIN), the session redials, the reader
	// reaccepts, and the transfer resumes from the last acknowledged
	// chunk. The restored MSR graph must be byte-identical to a direct
	// capture. Run under -race this also proves the goroutine structure.
	e, err := NewEngine(listSrc, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	p, direct := stoppedAtMigration(t, e, arch.DEC5000)

	cfg := stream.Config{ChunkSize: 256, Window: 4, AckEvery: 2}
	net := newPipeDialer()
	net.faults[0] = func(f *stream.Fault) { f.FailAfterSends(5) }

	sess := stream.NewSession(net.dial, 7, cfg)

	type recvRes struct {
		q     *vm.Process
		stats stream.ReaderStats
		err   error
	}
	recvc := make(chan recvRes, 1)
	go func() {
		conn, aerr := net.accept()
		if aerr != nil {
			recvc <- recvRes{err: aerr}
			return
		}
		r := stream.NewReader(conn, cfg)
		r.SetReaccept(net.accept)
		q, _, rerr := e.ReceiveAndRestoreStream(r, arch.SPARC20)
		recvc <- recvRes{q, r.Stats(), rerr}
	}()

	if _, err := e.SendStream(sess, p.Mach, p, cfg.ChunkSize); err != nil {
		t.Fatal(err)
	}
	if sess.Stats().Reconnects < 1 {
		t.Errorf("sender reconnects = %d, want >= 1", sess.Stats().Reconnects)
	}

	rr := <-recvc
	if rr.err != nil {
		t.Fatal(rr.err)
	}
	if rr.stats.Reconnects < 1 {
		t.Errorf("receiver reconnects = %d, want >= 1", rr.stats.Reconnects)
	}
	re, err := rr.q.Recapture()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, direct) {
		t.Fatalf("restored MSR graph after resume differs from direct capture (%d vs %d bytes)", len(re), len(direct))
	}
	rr.q.MaxSteps = 1_000_000
	fin, err := rr.q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fin.ExitCode != listExit {
		t.Errorf("exit = %d, want %d", fin.ExitCode, listExit)
	}
}

// nestedSrc stops inside a called function, so the capture spans two
// frames: sum_list is at the poll, main is at the call statement. The
// streamed path re-collects the stopped process (CaptureTo), which must
// see the outer frame's call site even though the migration has already
// unwound the interpreter. Sum of 3i for i in [0,40) is 2340; 2340 % 100
// = 40.
const nestedSrc = `
	struct node { int val; struct node *next; };
	int sum_list(struct node *h) {
		int s;
		s = 0;
		while (h) {
			s = s + h->val;
			h = h->next;
			migrate_here();
		}
		return s;
	}
	int main() {
		struct node *head, *n;
		int i, total;
		head = 0;
		for (i = 0; i < 40; i++) {
			n = (struct node *) malloc(sizeof(struct node));
			n->val = i * 3;
			n->next = head;
			head = n;
		}
		total = sum_list(head);
		return total % 100;
	}
`

func TestStreamedMigrationFromNestedCall(t *testing.T) {
	e, err := NewEngine(nestedSrc, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.NewProcess(arch.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 1_000_000
	polls := 0
	p.PollHook = func(*vm.Process, *minic.Site) bool {
		polls++
		return polls == 17 // partway through sum_list's loop
	}
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("setup: migrated=%v err=%v", res != nil && res.Migrated, err)
	}
	direct := res.State

	cfg := stream.Config{ChunkSize: 256, Window: 4}
	a, b := link.Pipe()
	type recvRes struct {
		q   *vm.Process
		err error
	}
	recvc := make(chan recvRes, 1)
	go func() {
		r := stream.NewReader(b, cfg)
		q, _, rerr := e.ReceiveAndRestoreStream(r, arch.SPARC20)
		recvc <- recvRes{q, rerr}
	}()
	w := stream.NewWriter(a, cfg)
	if _, err := e.SendStream(w, p.Mach, p, cfg.ChunkSize); err != nil {
		t.Fatal(err)
	}
	rr := <-recvc
	if rr.err != nil {
		t.Fatal(rr.err)
	}
	re, err := rr.q.Recapture()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, direct) {
		t.Errorf("restored nested-frame MSR graph differs (%d vs %d bytes)", len(re), len(direct))
	}
	rr.q.MaxSteps = 1_000_000
	fin, err := rr.q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fin.ExitCode != 40 {
		t.Errorf("exit = %d, want 40", fin.ExitCode)
	}
}

func TestOpenStreamRejects(t *testing.T) {
	e, err := NewEngine(countdownSrc, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	// A monolithic (version 1) envelope must not pass as streamed.
	v1 := e.Seal([]byte("state-bytes"), arch.DEC5000)
	if _, _, err := e.OpenStream(v1); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("v1 envelope: %v", err)
	}
	if _, _, err := e.OpenStream([]byte{1, 2, 3}); !errors.Is(err, ErrBadEnvelope) {
		t.Errorf("garbage: %v", err)
	}
	// A streamed header from a different program must be rejected.
	other, err := NewEngine(`int main() { int i; for (i=0;i<3;i++){} return 2; }`, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := stoppedAtMigration(t, e, arch.DEC5000)
	cfg := stream.Config{ChunkSize: 1024, Window: 4}
	a, b := link.Pipe()
	errc := make(chan error, 1)
	go func() {
		r := stream.NewReader(b, cfg)
		payload, rerr := r.ReadAll()
		if rerr != nil {
			errc <- rerr
			return
		}
		_, _, oerr := other.OpenStream(payload)
		errc <- oerr
	}()
	w := stream.NewWriter(a, cfg)
	if _, err := e.SendStream(w, p.Mach, p, cfg.ChunkSize); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; !errors.Is(err, ErrProgramMismatch) {
		t.Errorf("foreign program streamed envelope: %v", err)
	}
}
