package core

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/store"
	"repro/internal/vm"
)

// CheckpointProcess captures a sectioned snapshot of the stopped process p
// and records it in the checkpoint store under the named ref, chaining from
// the ref's current head. Only section bodies the store does not already
// hold are written — the periodic-checkpoint call a long-running session
// makes between migrations.
func (e *Engine) CheckpointProcess(st *store.Store, p *vm.Process, src *arch.Machine, ref string, workers int) (*store.Manifest, store.Hash, store.CheckpointStats, error) {
	snap, err := p.CaptureSections(workers)
	if err != nil {
		return nil, store.Hash{}, store.CheckpointStats{}, err
	}
	return st.CheckpointRef(ref, snap, e.Digest(), src.Name)
}

// RestoreFromStore materializes the checkpoint named by h — any manifest in
// a chain, not just a head — and restores it as a runnable process on
// machine m. The manifest's program digest must match this engine
// (ErrProgramMismatch otherwise); every body is re-verified against its
// content address on the way out of the store.
func (e *Engine) RestoreFromStore(st *store.Store, h store.Hash, m *arch.Machine) (*vm.Process, Timing, error) {
	m2, err := st.GetManifest(h)
	if err != nil {
		return nil, Timing{}, err
	}
	if m2.ProgramDigest != e.Digest() {
		return nil, Timing{}, fmt.Errorf("%w: checkpoint %s has program digest %08x, engine is %08x",
			ErrProgramMismatch, h.Short(), m2.ProgramDigest, e.Digest())
	}
	snap, err := st.Materialize(h)
	if err != nil {
		return nil, Timing{}, err
	}
	start := time.Now()
	p, err := vm.RestoreProcess(e.Prog, m, snap)
	if err != nil {
		return nil, Timing{}, err
	}
	return p, Timing{Restore: time.Since(start), Bytes: len(snap)}, nil
}
