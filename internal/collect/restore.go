package collect

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/msr"
	"repro/internal/types"
	"repro/internal/xdr"
)

// RestoreStats decomposes the cost of a restoration in the terms of the
// paper's Section 4.2: Restore = MSRLT_update + Decode_and_Copy.
type RestoreStats struct {
	// UpdateTime is time spent allocating blocks and updating the MSRLT
	// (only accumulated when instrumented).
	UpdateTime time.Duration
	// DecodeTime is time spent converting and copying block contents
	// (only accumulated when instrumented).
	DecodeTime time.Duration
	// Blocks is the number of memory blocks restored.
	Blocks int64
	// Allocated is the subset of blocks newly allocated on the heap
	// (variable blocks already exist in the rebuilt frames).
	Allocated int64
	// Pointers is the number of pointer scalars decoded.
	Pointers int64
	// DataBytes is the number of content bytes decoded.
	DataBytes int64
}

// Restorer rebuilds memory blocks in a destination process from a
// collection stream. The destination's MSRLT must already contain the
// global and stack variable blocks (re-registered while reconstructing the
// execution state); heap blocks are allocated on demand as their records
// arrive, exactly mirroring the source's traversal.
type Restorer struct {
	space *memory.Space
	table *msr.Table
	ti    *types.TI
	mach  *arch.Machine
	dec   *xdr.Decoder

	restored map[msr.BlockID]bool

	// Instrument enables the fine-grained timing split in Stats.
	Instrument bool
	Stats      RestoreStats
}

// NewRestorer returns a Restorer reading from dec into the destination
// process state.
func NewRestorer(space *memory.Space, table *msr.Table, ti *types.TI, dec *xdr.Decoder) *Restorer {
	return &Restorer{
		space:    space,
		table:    table,
		ti:       ti,
		mach:     space.Machine(),
		dec:      dec,
		restored: make(map[msr.BlockID]bool),
	}
}

// RestoreVariable restores the memory block containing the variable at
// addr (the paper's Restore_variable(&x)). It verifies the stream's
// reference resolves to the same block the destination laid the variable
// out in — a cheap consistency check between the two processes.
func (r *Restorer) RestoreVariable(addr memory.Address) error {
	got, err := r.restorePointerValue()
	if err != nil {
		return err
	}
	if got != addr {
		return fmt.Errorf("collect: restored variable reference %#x does not match destination layout %#x",
			uint64(got), uint64(addr))
	}
	return nil
}

// RestorePointer decodes one pointer value (the paper's
// p = Restore_pointer()), restoring the referenced component of the MSR
// graph if this is its first occurrence, and returns the machine-specific
// address the pointer takes on the destination.
func (r *Restorer) RestorePointer() (memory.Address, error) {
	return r.restorePointerValue()
}

func (r *Restorer) restorePointerValue() (memory.Address, error) {
	r.Stats.Pointers++
	seg, err := r.dec.Uint32()
	if err != nil {
		return 0, err
	}
	if seg == nullSeg {
		return 0, nil
	}
	if seg >= uint32(memory.NumSegments) {
		return 0, fmt.Errorf("collect: invalid segment %d in stream", seg)
	}
	major, err := r.dec.Uint32()
	if err != nil {
		return 0, err
	}
	minor, err := r.dec.Uint32()
	if err != nil {
		return 0, err
	}
	ordinal, err := r.dec.Uint32()
	if err != nil {
		return 0, err
	}
	ref := msr.Ref{
		ID:      msr.BlockID{Seg: memory.Segment(seg), Major: major, Minor: minor},
		Ordinal: int(ordinal),
	}
	if !r.restored[ref.ID] {
		r.restored[ref.ID] = true
		if err := r.restoreBlock(ref.ID); err != nil {
			return 0, err
		}
	}
	return msr.AddrOf(r.table, r.mach, ref)
}

// restoreBlock consumes one block record: resolves or allocates the block,
// then fills its contents through the type-specific restoring plan.
func (r *Restorer) restoreBlock(id msr.BlockID) error {
	tIdx, err := r.dec.Uint32()
	if err != nil {
		return err
	}
	count, err := r.dec.Uint32()
	if err != nil {
		return err
	}
	ty, err := r.ti.At(int(tIdx))
	if err != nil {
		return err
	}

	var start time.Time
	if r.Instrument {
		start = time.Now()
	}
	b, ok := r.table.ByID(id)
	switch {
	case ok:
		// A variable block laid out during execution-state
		// reconstruction. Its shape must agree with the stream.
		if b.Type != ty || b.Count != int(count) {
			return fmt.Errorf("collect: block %s shape mismatch: stream %s x%d, destination %s x%d",
				id, ty, count, b.Type, b.Count)
		}
	case id.Seg == memory.Heap:
		addr, err := r.space.Malloc(int(count) * ty.SizeOf(r.mach))
		if err != nil {
			return err
		}
		b = &msr.Block{ID: id, Addr: addr, Type: ty, Count: int(count)}
		if err := r.table.Register(b); err != nil {
			return err
		}
		r.table.RestoreFloor(id)
		r.Stats.Allocated++
	default:
		return fmt.Errorf("collect: stream references unknown %s block %s", id.Seg, id)
	}
	if r.Instrument {
		r.Stats.UpdateTime += time.Since(start)
	}
	r.Stats.Blocks++

	plan := r.ti.Plan(ty, r.mach)
	es := ty.SizeOf(r.mach)
	for elem := 0; elem < b.Count; elem++ {
		if err := r.restoreOps(plan.Ops, b.Addr+memory.Address(elem*es)); err != nil {
			return fmt.Errorf("collect: restoring block %s element %d: %w", id, elem, err)
		}
	}
	return nil
}

// restoreOps mirrors Saver.saveOps.
func (r *Restorer) restoreOps(ops []types.PlanOp, base memory.Address) error {
	for _, op := range ops {
		switch {
		case op.Sub != nil:
			for i := 0; i < op.Count; i++ {
				if err := r.restoreOps(op.Sub, base+memory.Address(op.Off+i*op.Stride)); err != nil {
					return err
				}
			}
		case op.Kind == arch.Ptr:
			for i := 0; i < op.Count; i++ {
				val, err := r.restorePointerValue()
				if err != nil {
					return err
				}
				if err := r.space.StorePtr(base+memory.Address(op.Off+i*op.Stride), val); err != nil {
					return err
				}
			}
		default:
			if err := r.restoreRun(op, base); err != nil {
				return err
			}
		}
	}
	return nil
}

// restoreRun mirrors Saver.saveRun: canonical wire scalars are converted to
// the destination machine representation and copied into place.
func (r *Restorer) restoreRun(op types.PlanOp, base memory.Address) error {
	var start time.Time
	if r.Instrument {
		start = time.Now()
	}
	m := r.mach
	size := m.SizeOf(op.Kind)
	ws := wireSize(op.Kind)
	in, err := r.dec.Take(ws * op.Count)
	if err != nil {
		return err
	}
	if op.Stride == size {
		dst, err := r.space.Bytes(base+memory.Address(op.Off), size*op.Count)
		if err != nil {
			return err
		}
		for i := 0; i < op.Count; i++ {
			v := getBE(in[i*ws:i*ws+ws], ws)
			m.PutPrim(dst[i*size:], op.Kind, v)
		}
	} else {
		for i := 0; i < op.Count; i++ {
			dst, err := r.space.Bytes(base+memory.Address(op.Off+i*op.Stride), size)
			if err != nil {
				return err
			}
			m.PutPrim(dst, op.Kind, getBE(in[i*ws:i*ws+ws], ws))
		}
	}
	r.Stats.DataBytes += int64(ws * op.Count)
	if r.Instrument {
		r.Stats.DecodeTime += time.Since(start)
	}
	return nil
}
