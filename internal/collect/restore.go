package collect

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/msr"
	"repro/internal/types"
	"repro/internal/xdr"
)

// RestoreStats decomposes the cost of a restoration in the terms of the
// paper's Section 4.2: Restore = MSRLT_update + Decode_and_Copy.
type RestoreStats struct {
	// UpdateTime is time spent allocating blocks and updating the MSRLT
	// (only accumulated when instrumented).
	UpdateTime time.Duration
	// DecodeTime is time spent converting and copying block contents
	// (only accumulated when instrumented).
	DecodeTime time.Duration
	// Blocks is the number of memory blocks restored.
	Blocks int64
	// Allocated is the subset of blocks newly allocated on the heap
	// (variable blocks already exist in the rebuilt frames).
	Allocated int64
	// Pointers is the number of pointer scalars decoded.
	Pointers int64
	// DataBytes is the number of content bytes decoded.
	DataBytes int64
}

// Add folds another restoration's counters into s (used to aggregate the
// per-section restore statistics of a sectioned snapshot).
func (s *RestoreStats) Add(o RestoreStats) {
	s.UpdateTime += o.UpdateTime
	s.DecodeTime += o.DecodeTime
	s.Blocks += o.Blocks
	s.Allocated += o.Allocated
	s.Pointers += o.Pointers
	s.DataBytes += o.DataBytes
}

// Restorer rebuilds memory blocks in a destination process from a
// collection stream. The destination's MSRLT must already contain the
// global and stack variable blocks (re-registered while reconstructing the
// execution state); heap blocks are allocated on demand as their records
// arrive, exactly mirroring the source's traversal.
type Restorer struct {
	space *memory.Space
	table *msr.Table
	ti    *types.TI
	mach  *arch.Machine
	dec   *xdr.Decoder

	restored map[msr.BlockID]bool

	// flat disables the inline-record discipline: pointer references are
	// translated through the MSRLT only, never followed by a block
	// record. Sectioned snapshots use this mode — the records live in
	// the directory of the section that owns each block.
	flat bool

	// msrStats receives the MSRLT resolve counters. It defaults to the
	// table's own Stats; a parallel section restorer points it at a
	// worker-private set (folded into the table after the join) so
	// concurrent restorers never race on the shared counters.
	msrStats *msr.Stats

	// Instrument enables the fine-grained timing split in Stats.
	Instrument bool
	Stats      RestoreStats
}

// NewRestorer returns a Restorer reading from dec into the destination
// process state.
func NewRestorer(space *memory.Space, table *msr.Table, ti *types.TI, dec *xdr.Decoder) *Restorer {
	return &Restorer{
		space:    space,
		table:    table,
		ti:       ti,
		mach:     space.Machine(),
		dec:      dec,
		restored: make(map[msr.BlockID]bool),
		msrStats: &table.Stats,
	}
}

// RestoreVariable restores the memory block containing the variable at
// addr (the paper's Restore_variable(&x)). It verifies the stream's
// reference resolves to the same block the destination laid the variable
// out in — a cheap consistency check between the two processes.
func (r *Restorer) RestoreVariable(addr memory.Address) error {
	got, err := r.restorePointerValue()
	if err != nil {
		return err
	}
	if got != addr {
		return fmt.Errorf("%w: restored variable reference %#x does not match destination layout %#x",
			ErrMismatch, uint64(got), uint64(addr))
	}
	return nil
}

// RestorePointer decodes one pointer value (the paper's
// p = Restore_pointer()), restoring the referenced component of the MSR
// graph if this is its first occurrence, and returns the machine-specific
// address the pointer takes on the destination.
func (r *Restorer) RestorePointer() (memory.Address, error) {
	return r.restorePointerValue()
}

func (r *Restorer) restorePointerValue() (memory.Address, error) {
	r.Stats.Pointers++
	seg, err := r.dec.Uint32()
	if err != nil {
		return 0, fmt.Errorf("%w: truncated pointer reference", ErrCorruptStream)
	}
	if seg == nullSeg {
		return 0, nil
	}
	if seg >= uint32(memory.NumSegments) {
		return 0, fmt.Errorf("%w: invalid segment %d", ErrCorruptStream, seg)
	}
	major, minor, ordinal, err := r.dec.Uint32x3()
	if err != nil {
		return 0, fmt.Errorf("%w: truncated pointer reference", ErrCorruptStream)
	}
	ref := msr.Ref{
		ID:      msr.BlockID{Seg: memory.Segment(seg), Major: major, Minor: minor},
		Ordinal: int(ordinal),
	}
	if !r.flat && !r.restored[ref.ID] {
		r.restored[ref.ID] = true
		if err := r.restoreBlock(ref.ID); err != nil {
			return 0, err
		}
	}
	addr, err := msr.AddrOfStats(r.table, r.mach, ref, r.msrStats)
	if err != nil {
		// Every target must have been registered by now — by an earlier
		// record in the monolithic stream, or by the owning section of a
		// sectioned snapshot.
		return 0, fmt.Errorf("%w: %v", ErrCorruptStream, err)
	}
	return addr, nil
}

// restoreBlock consumes one block record: resolves or allocates the block,
// then fills its contents through the type-specific restoring plan.
func (r *Restorer) restoreBlock(id msr.BlockID) error {
	tIdx, err := r.dec.Uint32()
	if err != nil {
		return fmt.Errorf("%w: truncated record for block %s", ErrCorruptStream, id)
	}
	count, err := r.dec.Uint32()
	if err != nil {
		return fmt.Errorf("%w: truncated record for block %s", ErrCorruptStream, id)
	}
	ty, err := r.ti.At(int(tIdx))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorruptStream, err)
	}

	var start time.Time
	if r.Instrument {
		start = time.Now()
	}
	b, ok := r.table.ByID(id)
	switch {
	case ok:
		// A variable block laid out during execution-state
		// reconstruction. Its shape must agree with the stream.
		if b.Type != ty || b.Count != int(count) {
			return fmt.Errorf("%w: block %s shape mismatch: stream %s x%d, destination %s x%d",
				ErrMismatch, id, ty, count, b.Type, b.Count)
		}
	case id.Seg == memory.Heap:
		b, err = r.allocHeapBlock(id, ty, int(count))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: stream references unknown %s block %s", ErrMismatch, id.Seg, id)
	}
	if r.Instrument {
		r.Stats.UpdateTime += time.Since(start)
	}
	r.Stats.Blocks++
	return r.fillContents(b)
}

// fillContents decodes a block's content through its restoring plan.
func (r *Restorer) fillContents(b *msr.Block) error {
	plan := r.ti.Plan(b.Type, r.mach)
	es := b.Type.SizeOf(r.mach)
	for elem := 0; elem < b.Count; elem++ {
		if err := r.restoreOps(plan.Ops, b.Addr+memory.Address(elem*es)); err != nil {
			return fmt.Errorf("collect: restoring block %s element %d: %w", b.ID, elem, err)
		}
	}
	return nil
}

// allocHeapBlock allocates and registers one heap block arriving in a
// stream. Before trusting the declared element count it checks the
// stream actually holds at least the minimum encoding of that many
// elements, so a forged count cannot force a huge allocation from a
// small input.
func (r *Restorer) allocHeapBlock(id msr.BlockID, ty *types.Type, count int) (*msr.Block, error) {
	es := ty.SizeOf(r.mach)
	if count <= 0 || es <= 0 {
		return nil, fmt.Errorf("%w: heap block %s declares %d elements of %d bytes",
			ErrCorruptStream, id, count, es)
	}
	plan := r.ti.Plan(ty, r.mach)
	per := wireMinPerElem(plan.Ops)
	if per < 1 {
		per = 1
	}
	if int64(count)*int64(per) > int64(r.dec.Remaining()) {
		return nil, fmt.Errorf("%w: heap block %s declares %d elements but only %d bytes remain",
			ErrCorruptStream, id, count, r.dec.Remaining())
	}
	addr, err := r.space.Malloc(count * es)
	if err != nil {
		return nil, err
	}
	b := &msr.Block{ID: id, Addr: addr, Type: ty, Count: count}
	if err := r.table.Register(b); err != nil {
		return nil, err
	}
	r.table.RestoreFloor(id)
	r.Stats.Allocated++
	return b, nil
}

// wireMinPerElem returns the minimum wire bytes one element of a plan can
// occupy (pointers count their 4-byte null form).
func wireMinPerElem(ops []types.PlanOp) int {
	n := 0
	for _, op := range ops {
		switch {
		case op.Sub != nil:
			n += op.Count * wireMinPerElem(op.Sub)
		case op.Kind == arch.Ptr:
			n += op.Count * 4
		default:
			n += op.Count * wireSize(op.Kind)
		}
	}
	return n
}

// restoreOps mirrors Saver.saveOps.
func (r *Restorer) restoreOps(ops []types.PlanOp, base memory.Address) error {
	for _, op := range ops {
		switch {
		case op.Sub != nil:
			for i := 0; i < op.Count; i++ {
				if err := r.restoreOps(op.Sub, base+memory.Address(op.Off+i*op.Stride)); err != nil {
					return err
				}
			}
		case op.Kind == arch.Ptr:
			for i := 0; i < op.Count; i++ {
				val, err := r.restorePointerValue()
				if err != nil {
					return err
				}
				if err := r.space.StorePtr(base+memory.Address(op.Off+i*op.Stride), val); err != nil {
					return err
				}
			}
		default:
			if err := r.restoreRun(op, base); err != nil {
				return err
			}
		}
	}
	return nil
}

// restoreRun mirrors Saver.saveRun: canonical wire scalars are converted to
// the destination machine representation and copied into place.
func (r *Restorer) restoreRun(op types.PlanOp, base memory.Address) error {
	var start time.Time
	if r.Instrument {
		start = time.Now()
	}
	n, err := decodeRun(r.dec, r.space, r.mach, op, base)
	if err != nil {
		return err
	}
	r.Stats.DataBytes += int64(n)
	if r.Instrument {
		r.Stats.DecodeTime += time.Since(start)
	}
	return nil
}

// decodeRun is encodeRun's inverse, shared by the monolithic Restorer
// and the sectioned restorers.
func decodeRun(dec *xdr.Decoder, space *memory.Space, m *arch.Machine, op types.PlanOp, base memory.Address) (int, error) {
	size := m.SizeOf(op.Kind)
	ws := wireSize(op.Kind)
	in, err := dec.Take(ws * op.Count)
	if err != nil {
		return 0, fmt.Errorf("%w: truncated scalar run", ErrCorruptStream)
	}
	if op.Stride == size {
		dst, err := space.Bytes(base+memory.Address(op.Off), size*op.Count)
		if err != nil {
			return 0, err
		}
		for i := 0; i < op.Count; i++ {
			v := getBE(in[i*ws:i*ws+ws], ws)
			m.PutPrim(dst[i*size:], op.Kind, v)
		}
	} else {
		for i := 0; i < op.Count; i++ {
			dst, err := space.Bytes(base+memory.Address(op.Off+i*op.Stride), size)
			if err != nil {
				return 0, err
			}
			m.PutPrim(dst, op.Kind, getBE(in[i*ws:i*ws+ws], ws))
		}
	}
	return ws * op.Count, nil
}
