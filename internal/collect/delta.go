package collect

// Delta capture for live pre-copy migration (envelope version 4).
//
// A pre-copy round re-partitions the live set from scratch — allocation
// and pointer mutation can merge, split, create, or drop heap components
// between rounds — but re-encodes only the sections whose bytes can have
// changed. The decision is made per section against the memory layer's
// dirty-block set:
//
//   - a section is CLEAN when its membership signature (the ordered list
//     of member block identities and shapes, plus the live-variable
//     addresses for frame/globals sections) matches the previous round's
//     and none of its members' address ranges intersect the dirty set;
//   - a clean section's cached body from the previous round is reused
//     byte-for-byte, skipping the encoder entirely;
//   - everything else is re-encoded on the same bounded worker pool as a
//     full sectioned capture.
//
// Reuse is sound because a section body is a pure function of its
// members' shapes, their memory bytes, and the resolution of the pointer
// values stored in those bytes. The first two are covered by the
// signature and the dirty check. Pointer resolution is stable under
// clean bytes: a live, non-dangling pointer's target block cannot have
// been freed (the program would have had to overwrite the pointer —
// dirtying the section — before the block could die), and block
// identities are never reused. A program that keeps a live dangling
// pointer is already outside the collector's contract.
//
// Section keys survive renumbering: a heap component is keyed by its
// first-visited member's block identity, not its component index, so
// components keep their cache entries as unrelated components appear and
// disappear around them.

import (
	"time"

	"repro/internal/memory"
	"repro/internal/msr"
	"repro/internal/types"
)

// DirtyFunc reports whether any byte of [addr, addr+n) was written since
// the watermark the caller tracks — typically a closure over
// memory.Space.RangeDirtySince.
type DirtyFunc func(addr memory.Address, n int) bool

// deltaKey identifies a section across rounds independently of its
// position in the partition.
type deltaKey struct {
	class uint8  // 0 = heap component, 1 = frame, 2 = globals
	id    uint32 // first member's Major for heap, frame depth for frames
}

// cachedSection is one section's state from the previous round.
type cachedSection struct {
	sig  uint64
	body []byte // tracker-owned; never aliases a pooled encoder
}

// DeltaTracker carries the per-section cache from round to round. One
// tracker serves one process's pre-copy sequence; the zero value is not
// usable — call NewDeltaTracker.
type DeltaTracker struct {
	prev map[deltaKey]*cachedSection
}

// NewDeltaTracker returns an empty tracker: the first round re-encodes
// everything (the full-image round of the pre-copy loop).
func NewDeltaTracker() *DeltaTracker {
	return &DeltaTracker{prev: make(map[deltaKey]*cachedSection)}
}

// DeltaSection is one section of a delta round. Body is owned by the
// tracker and stays valid across subsequent rounds (the pre-copy sender
// may still be shipping it while the next round encodes), but must not
// be mutated.
type DeltaSection struct {
	Body []byte
	// Reused reports the body was carried over from the previous round
	// without re-encoding.
	Reused  bool
	Elapsed time.Duration
}

// DeltaState is one delta round's sections in the partition's
// deterministic order, mirroring SectionedState. Unlike SectionedState
// it has no Release: every body is tracker-owned.
type DeltaState struct {
	Heap    []DeltaSection
	Frames  []DeltaSection
	Globals DeltaSection
	// Stats aggregates the encoded (non-reused) sections only.
	Stats   SaveStats
	Workers int
	// Encoded and Reused count the sections that were re-encoded and
	// carried over, respectively.
	Encoded int
	Reused  int
}

// EncodeDelta runs the encode phase of one pre-copy round: sections the
// dirty set cannot have touched are reused from the tracker, the rest
// are encoded on the worker pool. dirty answers "was this range written
// since the last round"; a nil dirty treats everything as dirty. The
// returned bodies are byte-identical to a full EncodeSections of the
// same partition.
func EncodeDelta(space *memory.Space, table *msr.Table, ti *types.TI, pt *Partition, roots Roots, dt *DeltaTracker, dirty DirtyFunc, workers int) (*DeltaState, error) {
	jobs := partitionJobs(pt, roots)
	mach := space.Machine()

	keys := make([]deltaKey, len(jobs))
	sigs := make([]uint64, len(jobs))
	skip := make([]bool, len(jobs))
	out := &DeltaState{}

	h := len(pt.Components)
	f := len(pt.Frames)
	for idx, job := range jobs {
		switch {
		case idx < h:
			keys[idx] = deltaKey{class: 0, id: job.blocks[0].ID.Major}
		case idx < h+f:
			keys[idx] = deltaKey{class: 1, id: uint32(idx-h) + 1}
		default:
			keys[idx] = deltaKey{class: 2}
		}
		sig := fnvInit()
		for _, addr := range job.live {
			sig = fnvMix(sig, uint64(addr))
		}
		clean := true
		for _, b := range job.blocks {
			tIdx, ok := ti.Index(b.Type)
			if !ok {
				clean = false // encodeBody will report the real error
			}
			sig = fnvMix(sig, uint64(b.ID.Seg))
			sig = fnvMix(sig, uint64(b.ID.Major)<<32|uint64(b.ID.Minor))
			sig = fnvMix(sig, uint64(tIdx)<<32|uint64(uint32(b.Count)))
			if clean && dirty != nil && dirty(b.Addr, b.Count*b.Type.SizeOf(mach)) {
				clean = false
			}
		}
		sigs[idx] = sig
		if prev, ok := dt.prev[keys[idx]]; ok && clean && dirty != nil && prev.sig == sig {
			skip[idx] = true
		}
	}

	results, encs, agg, engaged, err := encodeJobs(space, table, ti, jobs, skip, workers)
	if err != nil {
		return nil, err
	}

	// Fold the round into the tracker: reused sections keep their cached
	// bodies, fresh ones are cloned out of the pooled encoders so the
	// cache owns every byte it hands back.
	next := make(map[deltaKey]*cachedSection, len(jobs))
	sections := make([]DeltaSection, len(jobs))
	for idx := range jobs {
		var cs *cachedSection
		if skip[idx] {
			cs = dt.prev[keys[idx]]
			sections[idx] = DeltaSection{Body: cs.body, Reused: true}
			out.Reused++
		} else {
			body := make([]byte, len(results[idx].Body))
			copy(body, results[idx].Body)
			cs = &cachedSection{sig: sigs[idx], body: body}
			sections[idx] = DeltaSection{Body: body, Elapsed: results[idx].Elapsed}
			out.Encoded++
		}
		next[keys[idx]] = cs
	}
	dt.prev = next
	for _, e := range encs {
		if e != nil {
			e.Release()
		}
	}

	out.Heap = sections[:h]
	out.Frames = sections[h : h+f]
	out.Globals = sections[h+f]
	out.Stats = agg
	out.Workers = engaged
	return out, nil
}

// fnv-1a over 8-byte words, hand-rolled to keep the per-round signature
// pass allocation-free.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvInit() uint64 { return fnvOffset }

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}
