package collect

import "errors"

// The decode failure modes are split into two sentinel classes so the
// session layer and the migd daemon can report them distinctly: a stream
// that cannot be trusted at all versus a well-formed stream that belongs
// to a different program build or plan.
var (
	// ErrCorruptStream marks decode failures that indicate the stream
	// itself is damaged: truncated records, invalid segments, type
	// indices outside the TI table, content that does not cover its
	// declared blocks.
	ErrCorruptStream = errors.New("collect: corrupt collection stream")
	// ErrMismatch marks a structurally valid stream that disagrees with
	// this process image: block shapes that differ from the
	// destination's layout, references to variable blocks the
	// destination never laid out, live sets of the wrong length.
	ErrMismatch = errors.New("collect: stream does not match program or plan")
)
