package collect

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/msr"
	"repro/internal/types"
	"repro/internal/xdr"
)

// proc is a minimal process image for exercising the MSRM library without
// the VM: a space, an MSRLT, and a TI table.
type proc struct {
	m     *arch.Machine
	space *memory.Space
	table *msr.Table
	ti    *types.TI
	nglob uint32
}

func newProc(m *arch.Machine, ti *types.TI) *proc {
	return &proc{m: m, space: memory.NewSpace(m), table: msr.NewTable(), ti: ti}
}

// global declares a global variable block of the given type.
func (p *proc) global(t *testing.T, ty *types.Type, name string) *msr.Block {
	t.Helper()
	addr, err := p.space.GlobalAlloc(ty.SizeOf(p.m), ty.AlignOf(p.m))
	if err != nil {
		t.Fatal(err)
	}
	b := &msr.Block{
		ID:    msr.BlockID{Seg: memory.Global, Minor: p.nglob},
		Addr:  addr,
		Type:  ty,
		Count: 1,
		Name:  name,
	}
	p.nglob++
	if err := p.table.Register(b); err != nil {
		t.Fatal(err)
	}
	return b
}

// heap allocates and registers a heap block of count elements of ty.
func (p *proc) heap(t *testing.T, ty *types.Type, count int) *msr.Block {
	t.Helper()
	addr, err := p.space.Malloc(count * ty.SizeOf(p.m))
	if err != nil {
		t.Fatal(err)
	}
	b := &msr.Block{ID: p.table.NextHeapID(), Addr: addr, Type: ty, Count: count}
	if err := p.table.Register(b); err != nil {
		t.Fatal(err)
	}
	return b
}

func nodeType(tag string) *types.Type {
	n := types.NewStruct(tag)
	n.DefineFields([]types.Field{
		{Name: "data", Type: types.Float},
		{Name: "link", Type: types.PointerTo(n)},
	})
	return n
}

// migrateVars collects the given variable blocks from src and restores them
// into dst, where dst already declares matching variable blocks in the same
// order. Returns save/restore stats.
func migrateVars(t *testing.T, src, dst *proc, vars []*msr.Block, dstVars []*msr.Block) (*Saver, *Restorer) {
	t.Helper()
	enc := xdr.NewEncoder(1 << 12)
	s := NewSaver(src.space, src.table, src.ti, enc)
	for _, v := range vars {
		if err := s.SaveVariable(v.Addr); err != nil {
			t.Fatalf("save %s: %v", v.Name, err)
		}
	}
	s.Finish()
	r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()))
	for _, v := range dstVars {
		if err := r.RestoreVariable(v.Addr); err != nil {
			t.Fatalf("restore %s: %v", v.Name, err)
		}
	}
	return s, r
}

func TestScalarVariableRoundTrip(t *testing.T) {
	for _, pair := range [][2]*arch.Machine{
		{arch.Ultra5, arch.Ultra5},
		{arch.DEC5000, arch.SPARC20},
		{arch.SPARC20, arch.DEC5000},
		{arch.I386, arch.SPARCV9},
		{arch.AMD64, arch.SPARC20},
	} {
		ti := types.NewTI()
		ti.Add(types.Int)
		ti.Add(types.Double)
		src := newProc(pair[0], ti)
		dst := newProc(pair[1], ti)

		si := src.global(t, types.Int, "i")
		sd := src.global(t, types.Double, "d")
		di := dst.global(t, types.Int, "i")
		dd := dst.global(t, types.Double, "d")

		neg := int64(-123456)
		src.space.StorePrim(si.Addr, arch.Int, uint64(neg))
		src.space.StorePrim(sd.Addr, arch.Double, math.Float64bits(math.Pi))

		migrateVars(t, src, dst, []*msr.Block{si, sd}, []*msr.Block{di, dd})

		v, _ := dst.space.LoadPrim(di.Addr, arch.Int)
		if int64(v) != -123456 {
			t.Errorf("%s->%s: int = %d", pair[0].Name, pair[1].Name, int64(v))
		}
		d, _ := dst.space.LoadPrim(dd.Addr, arch.Double)
		if math.Float64frombits(d) != math.Pi {
			t.Errorf("%s->%s: double = %g", pair[0].Name, pair[1].Name, math.Float64frombits(d))
		}
	}
}

func TestAllPrimKindsRoundTrip(t *testing.T) {
	kinds := []arch.PrimKind{arch.Char, arch.UChar, arch.Short, arch.UShort,
		arch.Int, arch.UInt, arch.Long, arch.ULong, arch.LongLong,
		arch.ULongLong, arch.Float, arch.Double}
	vals := map[arch.PrimKind]uint64{
		arch.Char:      uint64(0xff91), // -111 after truncation to 1 byte
		arch.UChar:     200,
		arch.Short:     0x8001,
		arch.UShort:    65000,
		arch.Int:       0x80000001,
		arch.UInt:      4000000000,
		arch.Long:      1 << 30,
		arch.ULong:     3 << 30,
		arch.LongLong:  1 << 60,
		arch.ULongLong: 3 << 60,
		arch.Float:     uint64(math.Float32bits(1.25)),
		arch.Double:    math.Float64bits(-2.5e300),
	}
	ti := types.NewTI()
	for _, k := range kinds {
		ti.Add(types.PrimType(k))
	}
	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARC20, ti)
	var sv, dv []*msr.Block
	for _, k := range kinds {
		sv = append(sv, src.global(t, types.PrimType(k), k.String()))
		dv = append(dv, dst.global(t, types.PrimType(k), k.String()))
	}
	for i, k := range kinds {
		src.space.StorePrim(sv[i].Addr, k, vals[k])
	}
	migrateVars(t, src, dst, sv, dv)
	for i, k := range kinds {
		want, _ := src.space.LoadPrim(sv[i].Addr, k)
		got, _ := dst.space.LoadPrim(dv[i].Addr, k)
		if got != want {
			t.Errorf("%s: got %#x, want %#x", k, got, want)
		}
	}
}

func TestLongLP64ToILP32Truncates(t *testing.T) {
	ti := types.NewTI()
	ti.Add(types.Long)
	src := newProc(arch.AMD64, ti)
	dst := newProc(arch.DEC5000, ti)
	sv := src.global(t, types.Long, "l")
	dv := dst.global(t, types.Long, "l")
	src.space.StorePrim(sv.Addr, arch.Long, 0x1_0000_0007) // exceeds 32 bits
	migrateVars(t, src, dst, []*msr.Block{sv}, []*msr.Block{dv})
	got, _ := dst.space.LoadPrim(dv.Addr, arch.Long)
	if got != 7 {
		t.Errorf("narrowed long = %#x, want 7 (C truncation semantics)", got)
	}
}

func TestCharArrayString(t *testing.T) {
	ti := types.NewTI()
	arr := types.ArrayOf(types.Char, 16)
	ti.Add(arr)
	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARC20, ti)
	sv := src.global(t, arr, "s")
	dv := dst.global(t, arr, "s")
	src.space.WriteBytes(sv.Addr, []byte("hello, world\x00"))
	migrateVars(t, src, dst, []*msr.Block{sv}, []*msr.Block{dv})
	got, _ := dst.space.ReadBytes(dv.Addr, 13)
	if string(got) != "hello, world\x00" {
		t.Errorf("string = %q", got)
	}
}

func TestPointerChainHeterogeneous(t *testing.T) {
	// A three-node heap list rooted at a global, migrated LE32 -> BE64.
	n := nodeType("chain")
	ti := types.NewTI()
	ti.Add(types.PointerTo(n))

	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARCV9, ti)
	shead := src.global(t, types.PointerTo(n), "head")
	dhead := dst.global(t, types.PointerTo(n), "head")

	var blocks []*msr.Block
	for i := 0; i < 3; i++ {
		blocks = append(blocks, src.heap(t, n, 1))
	}
	linkOff := func(m *arch.Machine) memory.Address { return memory.Address(n.OffsetOf(m, 1)) }
	for i, b := range blocks {
		src.space.StorePrim(b.Addr, arch.Float, uint64(math.Float32bits(float32(i)+0.5)))
		if i+1 < len(blocks) {
			src.space.StorePtr(b.Addr+linkOff(src.m), blocks[i+1].Addr)
		}
	}
	src.space.StorePtr(shead.Addr, blocks[0].Addr)

	migrateVars(t, src, dst, []*msr.Block{shead}, []*msr.Block{dhead})

	// Walk the restored list.
	cur, _ := dst.space.LoadPtr(dhead.Addr)
	for i := 0; i < 3; i++ {
		if cur == 0 {
			t.Fatalf("list ended early at %d", i)
		}
		f, _ := dst.space.LoadPrim(cur, arch.Float)
		if math.Float32frombits(uint32(f)) != float32(i)+0.5 {
			t.Errorf("node %d data = %g", i, math.Float32frombits(uint32(f)))
		}
		cur, _ = dst.space.LoadPtr(cur + linkOff(dst.m))
	}
	if cur != 0 {
		t.Error("list does not end in null")
	}
}

func TestSharedBlockSavedOnce(t *testing.T) {
	// Two globals pointing at the same heap block: the block must be
	// transferred once and the restored pointers must alias.
	ti := types.NewTI()
	pd := types.PointerTo(types.Double)
	ti.Add(pd)
	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARC20, ti)
	sp1 := src.global(t, pd, "p1")
	sp2 := src.global(t, pd, "p2")
	dp1 := dst.global(t, pd, "p1")
	dp2 := dst.global(t, pd, "p2")

	blk := src.heap(t, types.Double, 4)
	src.space.StorePrim(blk.Addr, arch.Double, math.Float64bits(9.75))
	src.space.StorePtr(sp1.Addr, blk.Addr)
	src.space.StorePtr(sp2.Addr, blk.Addr+16) // &blk[2]

	s, r := migrateVars(t, src, dst, []*msr.Block{sp1, sp2}, []*msr.Block{dp1, dp2})
	if s.Stats.Blocks != 3 { // p1, blk, p2 — blk only once
		t.Errorf("blocks saved = %d, want 3", s.Stats.Blocks)
	}
	if r.Stats.Allocated != 1 {
		t.Errorf("blocks allocated = %d, want 1", r.Stats.Allocated)
	}
	a1, _ := dst.space.LoadPtr(dp1.Addr)
	a2, _ := dst.space.LoadPtr(dp2.Addr)
	if a2 != a1+16 {
		t.Errorf("aliasing broken: p1=%#x p2=%#x", uint64(a1), uint64(a2))
	}
	v, _ := dst.space.LoadPrim(a1, arch.Double)
	if math.Float64frombits(v) != 9.75 {
		t.Errorf("shared block content = %g", math.Float64frombits(v))
	}
}

func TestCyclicStructure(t *testing.T) {
	// a -> b -> a cycle through heap nodes.
	n := nodeType("cyc")
	ti := types.NewTI()
	ti.Add(types.PointerTo(n))
	src := newProc(arch.SPARC20, ti)
	dst := newProc(arch.DEC5000, ti)
	sroot := src.global(t, types.PointerTo(n), "root")
	droot := dst.global(t, types.PointerTo(n), "root")

	a := src.heap(t, n, 1)
	b := src.heap(t, n, 1)
	lo := memory.Address(n.OffsetOf(src.m, 1))
	src.space.StorePtr(a.Addr+lo, b.Addr)
	src.space.StorePtr(b.Addr+lo, a.Addr)
	src.space.StorePtr(sroot.Addr, a.Addr)

	migrateVars(t, src, dst, []*msr.Block{sroot}, []*msr.Block{droot})

	dlo := memory.Address(n.OffsetOf(dst.m, 1))
	ra, _ := dst.space.LoadPtr(droot.Addr)
	rb, _ := dst.space.LoadPtr(ra + dlo)
	back, _ := dst.space.LoadPtr(rb + dlo)
	if back != ra {
		t.Errorf("cycle not restored: a=%#x, b->link=%#x", uint64(ra), uint64(back))
	}
}

func TestSelfPointer(t *testing.T) {
	n := nodeType("selfp")
	ti := types.NewTI()
	ti.Add(types.PointerTo(n))
	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARC20, ti)
	sroot := src.global(t, types.PointerTo(n), "root")
	droot := dst.global(t, types.PointerTo(n), "root")
	a := src.heap(t, n, 1)
	src.space.StorePtr(a.Addr+memory.Address(n.OffsetOf(src.m, 1)), a.Addr)
	src.space.StorePtr(sroot.Addr, a.Addr)
	migrateVars(t, src, dst, []*msr.Block{sroot}, []*msr.Block{droot})
	ra, _ := dst.space.LoadPtr(droot.Addr)
	self, _ := dst.space.LoadPtr(ra + memory.Address(n.OffsetOf(dst.m, 1)))
	if self != ra {
		t.Error("self-pointer not restored")
	}
}

func TestNullPointers(t *testing.T) {
	ti := types.NewTI()
	pd := types.PointerTo(types.Double)
	ti.Add(pd)
	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARC20, ti)
	sv := src.global(t, pd, "p")
	dv := dst.global(t, pd, "p")
	// sv holds null.
	s, _ := migrateVars(t, src, dst, []*msr.Block{sv}, []*msr.Block{dv})
	if s.Stats.NullPointers != 1 {
		t.Errorf("null pointers = %d", s.Stats.NullPointers)
	}
	got, _ := dst.space.LoadPtr(dv.Addr)
	if got != 0 {
		t.Errorf("restored null = %#x", uint64(got))
	}
}

func TestFigure1Trace(t *testing.T) {
	// Reproduces the collection order property of the paper's Section
	// 3.2: collecting p (in foo) first pulls in parray and all four heap
	// nodes; the later collection of first adds no new block records.
	n := nodeType("fig1")
	pn := types.PointerTo(n)
	arrT := types.ArrayOf(pn, 10)
	ti := types.NewTI()
	ti.Add(pn)
	ti.Add(arrT)
	ti.Add(types.PointerTo(pn))

	src := newProc(arch.DEC5000, ti)
	first := src.global(t, pn, "first")
	last := src.global(t, pn, "last")

	// main's frame: parray.
	fb, _ := src.space.PushFrame(arrT.SizeOf(src.m))
	parray := &msr.Block{ID: msr.BlockID{Seg: memory.Stack, Major: 1}, Addr: fb, Type: arrT, Count: 1, Name: "parray"}
	if err := src.table.Register(parray); err != nil {
		t.Fatal(err)
	}
	// foo's frame: p (a node **) pointing at &parray[4].
	fb2, _ := src.space.PushFrame(src.m.PtrSize())
	p := &msr.Block{ID: msr.BlockID{Seg: memory.Stack, Major: 2}, Addr: fb2, Type: types.PointerTo(pn), Count: 1, Name: "p"}
	if err := src.table.Register(p); err != nil {
		t.Fatal(err)
	}
	src.space.StorePtr(p.Addr, parray.Addr+memory.Address(4*src.m.PtrSize()))

	var nodes []*msr.Block
	for i := 0; i < 4; i++ {
		nb := src.heap(t, n, 1)
		nodes = append(nodes, nb)
		src.space.StorePtr(parray.Addr+memory.Address(i*src.m.PtrSize()), nb.Addr)
	}
	lo := memory.Address(n.OffsetOf(src.m, 1))
	src.space.StorePtr(first.Addr, nodes[0].Addr)
	src.space.StorePtr(last.Addr, nodes[3].Addr)
	src.space.StorePtr(nodes[0].Addr+lo, nodes[3].Addr)
	for i := 1; i < 4; i++ {
		src.space.StorePtr(nodes[i].Addr+lo, nodes[i-1].Addr)
	}

	enc := xdr.NewEncoder(1 << 12)
	s := NewSaver(src.space, src.table, src.ti, enc)
	// Innermost frame first: foo's p, then main's parray, then globals.
	if err := s.SaveVariable(p.Addr); err != nil {
		t.Fatal(err)
	}
	afterFoo := s.Stats.Blocks
	// Collecting p must have reached p, parray, and all 4 nodes.
	if afterFoo != 6 {
		t.Errorf("blocks after collecting p = %d, want 6", afterFoo)
	}
	if err := s.SaveVariable(parray.Addr); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Blocks != afterFoo {
		t.Error("re-collecting parray must add no blocks (already visited)")
	}
	if err := s.SaveVariable(first.Addr); err != nil {
		t.Fatal(err)
	}
	// Only the block for 'first' itself is new.
	if s.Stats.Blocks != afterFoo+1 {
		t.Errorf("blocks after first = %d, want %d", s.Stats.Blocks, afterFoo+1)
	}
	if err := s.SaveVariable(last.Addr); err != nil {
		t.Fatal(err)
	}
	if s.Stats.Blocks != afterFoo+2 {
		t.Errorf("blocks after last = %d, want %d", s.Stats.Blocks, afterFoo+2)
	}
}

func TestHeapArrayBlock(t *testing.T) {
	// malloc(10 * sizeof(node)): Count > 1 with pointers between elements.
	n := nodeType("harr")
	ti := types.NewTI()
	ti.Add(types.PointerTo(n))
	src := newProc(arch.I386, ti)
	dst := newProc(arch.SPARCV9, ti)
	sr := src.global(t, types.PointerTo(n), "r")
	dr := dst.global(t, types.PointerTo(n), "r")
	blk := src.heap(t, n, 10)
	es := n.SizeOf(src.m)
	lo := memory.Address(n.OffsetOf(src.m, 1))
	for i := 0; i < 10; i++ {
		base := blk.Addr + memory.Address(i*es)
		src.space.StorePrim(base, arch.Float, uint64(math.Float32bits(float32(i))))
		if i > 0 {
			src.space.StorePtr(base+lo, blk.Addr+memory.Address((i-1)*es))
		}
	}
	src.space.StorePtr(sr.Addr, blk.Addr+memory.Address(9*es)) // points at last element

	migrateVars(t, src, dst, []*msr.Block{sr}, []*msr.Block{dr})

	des := n.SizeOf(dst.m)
	dlo := memory.Address(n.OffsetOf(dst.m, 1))
	cur, _ := dst.space.LoadPtr(dr.Addr)
	for i := 9; i >= 0; i-- {
		f, _ := dst.space.LoadPrim(cur, arch.Float)
		if math.Float32frombits(uint32(f)) != float32(i) {
			t.Fatalf("element %d data = %g", i, math.Float32frombits(uint32(f)))
		}
		next, _ := dst.space.LoadPtr(cur + dlo)
		if i > 0 && next != cur-memory.Address(des) {
			t.Fatalf("element %d link wrong", i)
		}
		cur = next
	}
}

func TestUnresolvablePointerError(t *testing.T) {
	ti := types.NewTI()
	pd := types.PointerTo(types.Double)
	ti.Add(pd)
	src := newProc(arch.DEC5000, ti)
	sv := src.global(t, pd, "p")
	// Point at memory that is mapped but not a registered block.
	stray, _ := src.space.Malloc(8)
	src.space.StorePtr(sv.Addr, stray)
	s := NewSaver(src.space, src.table, src.ti, xdr.NewEncoder(64))
	if err := s.SaveVariable(sv.Addr); err == nil {
		t.Error("collection of dangling pointer succeeded")
	}
}

func TestShapeMismatchDetected(t *testing.T) {
	ti := types.NewTI()
	ti.Add(types.Int)
	ti.Add(types.Double)
	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARC20, ti)
	sv := src.global(t, types.Int, "x")
	dv := dst.global(t, types.Double, "x") // wrong type on destination

	enc := xdr.NewEncoder(64)
	s := NewSaver(src.space, src.table, src.ti, enc)
	if err := s.SaveVariable(sv.Addr); err != nil {
		t.Fatal(err)
	}
	r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()))
	if err := r.RestoreVariable(dv.Addr); err == nil ||
		!strings.Contains(err.Error(), "shape mismatch") {
		t.Errorf("shape mismatch not detected: %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	ti := types.NewTI()
	ti.Add(types.Double)
	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARC20, ti)
	sv := src.global(t, types.Double, "d")
	dv := dst.global(t, types.Double, "d")
	enc := xdr.NewEncoder(64)
	s := NewSaver(src.space, src.table, src.ti, enc)
	s.SaveVariable(sv.Addr)
	for cut := 0; cut < enc.Len(); cut += 4 {
		r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()[:cut]))
		if err := r.RestoreVariable(dv.Addr); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestInvalidSegmentInStream(t *testing.T) {
	ti := types.NewTI()
	dst := newProc(arch.SPARC20, ti)
	enc := xdr.NewEncoder(16)
	enc.PutUint32(7) // invalid segment
	enc.PutUint32(0)
	enc.PutUint32(0)
	enc.PutUint32(0)
	r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()))
	if _, err := r.RestorePointer(); err == nil {
		t.Error("invalid segment accepted")
	}
}

func TestSavePointerDirect(t *testing.T) {
	// Save_pointer(p) with the value, restore with p = Restore_pointer().
	ti := types.NewTI()
	ti.Add(types.Double)
	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARC20, ti)
	blk := src.heap(t, types.Double, 5)
	src.space.StorePrim(blk.Addr+24, arch.Double, math.Float64bits(6.5))

	enc := xdr.NewEncoder(256)
	s := NewSaver(src.space, src.table, src.ti, enc)
	if err := s.SavePointer(blk.Addr + 24); err != nil { // &blk[3]
		t.Fatal(err)
	}
	r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()))
	p, err := r.RestorePointer()
	if err != nil {
		t.Fatal(err)
	}
	v, _ := dst.space.LoadPrim(p, arch.Double)
	if math.Float64frombits(v) != 6.5 {
		t.Errorf("restored *p = %g", math.Float64frombits(v))
	}
}

func TestStatsAndInstrumentation(t *testing.T) {
	ti := types.NewTI()
	ti.Add(types.PointerTo(types.Double))
	src := newProc(arch.Ultra5, ti)
	dst := newProc(arch.Ultra5, ti)
	sv := src.global(t, types.PointerTo(types.Double), "p")
	dv := dst.global(t, types.PointerTo(types.Double), "p")
	blk := src.heap(t, types.Double, 100000)
	src.space.StorePtr(sv.Addr, blk.Addr)

	enc := xdr.NewEncoder(1 << 20)
	s := NewSaver(src.space, src.table, src.ti, enc)
	s.Instrument = true
	if err := s.SaveVariable(sv.Addr); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	if s.Stats.EncodeTime <= 0 {
		t.Error("instrumented saver recorded no encode time")
	}
	if s.Stats.DataBytes != 800000 {
		t.Errorf("data bytes = %d", s.Stats.DataBytes)
	}
	if s.Stats.Searches == 0 {
		t.Error("no searches recorded")
	}
	r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()))
	r.Instrument = true
	if err := r.RestoreVariable(dv.Addr); err != nil {
		t.Fatal(err)
	}
	if r.Stats.DecodeTime <= 0 || r.Stats.UpdateTime <= 0 {
		t.Error("instrumented restorer recorded no times")
	}
	if r.Stats.DataBytes != 800000 {
		t.Errorf("restore data bytes = %d", r.Stats.DataBytes)
	}
}

// TestRandomGraphRoundTrip migrates randomly shaped heap graphs between
// random machine pairs and verifies the MSR graphs before and after are
// isomorphic (identical canonical forms).
func TestRandomGraphRoundTrip(t *testing.T) {
	machines := arch.Machines()
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		srcM := machines[rng.Intn(len(machines))]
		dstM := machines[rng.Intn(len(machines))]

		n := nodeType("rnd")
		pn := types.PointerTo(n)
		ti := types.NewTI()
		ti.Add(pn)

		src := newProc(srcM, ti)
		dst := newProc(dstM, ti)
		sroot := src.global(t, pn, "root")
		droot := dst.global(t, pn, "root")

		nblocks := 1 + rng.Intn(40)
		var blocks []*msr.Block
		for i := 0; i < nblocks; i++ {
			blocks = append(blocks, src.heap(t, n, 1))
		}
		lo := memory.Address(n.OffsetOf(srcM, 1))
		for i, b := range blocks {
			src.space.StorePrim(b.Addr, arch.Float, uint64(math.Float32bits(float32(i))))
			// Random link: null, or any block (cycles allowed).
			if rng.Intn(4) != 0 {
				tgt := blocks[rng.Intn(len(blocks))]
				src.space.StorePtr(b.Addr+lo, tgt.Addr)
			}
		}
		src.space.StorePtr(sroot.Addr, blocks[0].Addr)

		enc := xdr.NewEncoder(1 << 12)
		s := NewSaver(src.space, src.table, src.ti, enc)
		if err := s.SaveVariable(sroot.Addr); err != nil {
			t.Fatal(err)
		}
		r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()))
		if err := r.RestoreVariable(droot.Addr); err != nil {
			t.Fatal(err)
		}

		// Compare the reachable subgraphs canonically. Restored tables
		// contain only reachable blocks, so restrict the source graph.
		gs, err := msr.BuildGraph(src.space, src.table, ti)
		if err != nil {
			t.Fatal(err)
		}
		gd, err := msr.BuildGraph(dst.space, dst.table, ti)
		if err != nil {
			t.Fatal(err)
		}
		reach := gs.Reachable([]msr.BlockID{sroot.ID})
		// Drop unreachable source vertices for comparison.
		var filtered msr.Graph
		for _, v := range gs.Vertices {
			if reach[v.ID] {
				filtered.Vertices = append(filtered.Vertices, v)
			}
		}
		for _, e := range gs.Edges {
			if reach[e.From] {
				filtered.Edges = append(filtered.Edges, e)
			}
		}
		if filtered.Canonical() != gd.Canonical() {
			t.Fatalf("trial %d (%s->%s): graphs differ\nsource:\n%s\ndest:\n%s",
				trial, srcM.Name, dstM.Name, filtered.Canonical(), gd.Canonical())
		}
		// Data values must match too.
		for _, v := range gd.Vertices {
			if v.ID.Seg != memory.Heap {
				continue
			}
			sb, ok := src.table.ByID(v.ID)
			if !ok {
				t.Fatal("restored block missing on source")
			}
			sf, _ := src.space.LoadPrim(sb.Addr, arch.Float)
			df, _ := dst.space.LoadPrim(v.Addr, arch.Float)
			if sf != df {
				t.Fatalf("data mismatch in %s: %#x vs %#x", v.ID, sf, df)
			}
		}
	}
}

func TestEncoderAccessorAndRepetitionPlans(t *testing.T) {
	// A heap block whose type needs a repetition plan (large array of
	// structs inside one element type), exercising the Sub-op paths on
	// both the save and restore side.
	inner := types.NewStruct("repNode")
	inner.DefineFields([]types.Field{
		{Name: "v", Type: types.Short},
		{Name: "p", Type: types.PointerTo(types.Double)},
	})
	big := types.NewStruct("repHolder")
	big.DefineFields([]types.Field{
		{Name: "items", Type: types.ArrayOf(inner, 100)}, // > expand limit
	})
	ti := types.NewTI()
	ti.Add(types.PointerTo(big))
	ti.Add(types.Double)

	src := newProc(arch.DEC5000, ti)
	dst := newProc(arch.SPARCV9, ti)
	sroot := src.global(t, types.PointerTo(big), "root")
	droot := dst.global(t, types.PointerTo(big), "root")
	blk := src.heap(t, big, 1)
	shared := src.heap(t, types.Double, 1)
	src.space.StorePrim(shared.Addr, arch.Double, math.Float64bits(6.25))
	es := inner.SizeOf(src.m)
	for i := 0; i < 100; i++ {
		base := blk.Addr + memory.Address(big.OffsetOf(src.m, 0)+i*es)
		src.space.StorePrim(base, arch.Short, uint64(i))
		if i%3 == 0 {
			src.space.StorePtr(base+memory.Address(inner.OffsetOf(src.m, 1)), shared.Addr)
		}
	}
	src.space.StorePtr(sroot.Addr, blk.Addr)

	enc := xdr.NewEncoder(1 << 12)
	s := NewSaver(src.space, src.table, src.ti, enc)
	if s.Encoder() != enc {
		t.Error("Encoder accessor")
	}
	if err := s.SaveVariable(sroot.Addr); err != nil {
		t.Fatal(err)
	}
	r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()))
	if err := r.RestoreVariable(droot.Addr); err != nil {
		t.Fatal(err)
	}
	// Verify a sample of elements and the shared pointer aliasing.
	dblk, _ := dst.table.ByID(blk.ID)
	des := inner.SizeOf(dst.m)
	var firstShared memory.Address
	for i := 0; i < 100; i++ {
		base := dblk.Addr + memory.Address(big.OffsetOf(dst.m, 0)+i*des)
		v, _ := dst.space.LoadPrim(base, arch.Short)
		if int64(v) != int64(i) {
			t.Fatalf("item %d value = %d", i, int64(v))
		}
		pv, _ := dst.space.LoadPtr(base + memory.Address(inner.OffsetOf(dst.m, 1)))
		if i%3 == 0 {
			if pv == 0 {
				t.Fatalf("item %d lost its pointer", i)
			}
			if firstShared == 0 {
				firstShared = pv
			} else if pv != firstShared {
				t.Fatalf("item %d does not alias the shared block", i)
			}
		} else if pv != 0 {
			t.Fatalf("item %d has spurious pointer", i)
		}
	}
	got, _ := dst.space.LoadPrim(firstShared, arch.Double)
	if math.Float64frombits(got) != 6.25 {
		t.Errorf("shared double = %g", math.Float64frombits(got))
	}
}
