package collect

import (
	"math"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/msr"
	"repro/internal/types"
	"repro/internal/xdr"
)

// buildDAG creates a diamond-shaped DAG of the given depth: each level has
// one node whose two child pointers both refer to the next level's node.
// With visit marking, collection is O(depth); without it, every path is
// traversed, 2^depth visits.
func buildDAG(t *testing.T, p *proc, depth int) *msr.Block {
	t.Helper()
	two := types.NewStruct("dag" + string(rune('a'+depth%26)))
	two.DefineFields([]types.Field{
		{Name: "val", Type: types.Double},
		{Name: "l", Type: types.PointerTo(two)},
		{Name: "r", Type: types.PointerTo(two)},
	})
	p.ti.Add(types.PointerTo(two))
	var prev *msr.Block
	for i := 0; i < depth; i++ {
		b := p.heap(t, two, 1)
		p.space.StorePrim(b.Addr, arch.Double, math.Float64bits(float64(i)))
		if prev != nil {
			lo := memory.Address(two.OffsetOf(p.m, 1))
			ro := memory.Address(two.OffsetOf(p.m, 2))
			p.space.StorePtr(b.Addr+lo, prev.Addr)
			p.space.StorePtr(b.Addr+ro, prev.Addr)
		}
		prev = b
	}
	root := p.global(t, types.PointerTo(two), "root")
	p.space.StorePtr(root.Addr, prev.Addr)
	return root
}

func TestNoDedupBlowsUpOnDAG(t *testing.T) {
	ti := types.NewTI()
	p := newProc(arch.Ultra5, ti)
	root := buildDAG(t, p, 12)

	// With visit marking: depth+1 blocks, small stream.
	enc := xdr.NewEncoder(1 << 12)
	s := NewSaver(p.space, p.table, p.ti, enc)
	if err := s.SaveVariable(root.Addr); err != nil {
		t.Fatal(err)
	}
	dedupBytes := enc.Len()
	if s.Stats.Blocks != 13 {
		t.Fatalf("dedup blocks = %d", s.Stats.Blocks)
	}

	// Without: every path through the diamond is re-collected.
	enc2 := xdr.NewEncoder(1 << 12)
	s2 := NewSaver(p.space, p.table, p.ti, enc2)
	s2.NoDedup = true
	if err := s2.SaveVariable(root.Addr); err != nil {
		t.Fatal(err)
	}
	if s2.Stats.Blocks < 1000 {
		t.Errorf("no-dedup blocks = %d, expected ~2^12", s2.Stats.Blocks)
	}
	if enc2.Len() < 50*dedupBytes {
		t.Errorf("no-dedup stream %d bytes vs dedup %d: blowup not visible",
			enc2.Len(), dedupBytes)
	}
}

func TestNoDedupCycleTerminates(t *testing.T) {
	n := nodeType("cycnd")
	ti := types.NewTI()
	ti.Add(types.PointerTo(n))
	p := newProc(arch.Ultra5, ti)
	root := p.global(t, types.PointerTo(n), "root")
	a := p.heap(t, n, 1)
	p.space.StorePtr(a.Addr+memory.Address(n.OffsetOf(p.m, 1)), a.Addr) // self cycle
	p.space.StorePtr(root.Addr, a.Addr)

	s := NewSaver(p.space, p.table, p.ti, xdr.NewEncoder(1<<10))
	s.NoDedup = true
	s.DedupDepthLimit = 20
	err := s.SaveVariable(root.Addr)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("cycle without marking: %v", err)
	}
}

func TestBaseIndexLookups(t *testing.T) {
	n := nodeType("bidx")
	ti := types.NewTI()
	ti.Add(types.PointerTo(n))
	p := newProc(arch.Ultra5, ti)
	p.table.UseBaseIndex = true

	root := p.global(t, types.PointerTo(n), "root")
	var blocks []*msr.Block
	for i := 0; i < 200; i++ {
		blocks = append(blocks, p.heap(t, n, 1))
	}
	lo := memory.Address(n.OffsetOf(p.m, 1))
	for i := 0; i+1 < len(blocks); i++ {
		p.space.StorePtr(blocks[i].Addr+lo, blocks[i+1].Addr)
	}
	p.space.StorePtr(root.Addr, blocks[0].Addr)

	enc := xdr.NewEncoder(1 << 12)
	s := NewSaver(p.space, p.table, p.ti, enc)
	if err := s.SaveVariable(root.Addr); err != nil {
		t.Fatal(err)
	}
	s.Finish()
	// All list links point at block bases: the index should serve them.
	if p.table.Stats.BaseHits < 200 {
		t.Errorf("base index hits = %d, want >= 200", p.table.Stats.BaseHits)
	}
	// And the stream must be identical to the binary-search path.
	p2 := newProc(arch.Ultra5, ti)
	root2 := p2.global(t, types.PointerTo(n), "root")
	var blocks2 []*msr.Block
	for i := 0; i < 200; i++ {
		blocks2 = append(blocks2, p2.heap(t, n, 1))
	}
	for i := 0; i+1 < len(blocks2); i++ {
		p2.space.StorePtr(blocks2[i].Addr+lo, blocks2[i+1].Addr)
	}
	p2.space.StorePtr(root2.Addr, blocks2[0].Addr)
	enc2 := xdr.NewEncoder(1 << 12)
	s2 := NewSaver(p2.space, p2.table, p2.ti, enc2)
	if err := s2.SaveVariable(root2.Addr); err != nil {
		t.Fatal(err)
	}
	if string(enc.Bytes()) != string(enc2.Bytes()) {
		t.Error("base-index stream differs from binary-search stream")
	}
}

func TestBaseIndexInteriorPointerFallsBack(t *testing.T) {
	ti := types.NewTI()
	ti.Add(types.PointerTo(types.Double))
	p := newProc(arch.Ultra5, ti)
	p.table.UseBaseIndex = true
	blk := p.heap(t, types.Double, 10)
	pv := p.global(t, types.PointerTo(types.Double), "p")
	p.space.StorePtr(pv.Addr, blk.Addr+24) // interior

	s := NewSaver(p.space, p.table, p.ti, xdr.NewEncoder(1<<10))
	if err := s.SaveVariable(pv.Addr); err != nil {
		t.Fatal(err)
	}
	// Interior pointers cannot hit the base index; the binary search
	// must still resolve them.
	if p.table.Stats.SearchSteps == 0 {
		t.Error("interior pointer did not fall back to the search")
	}
}
