package collect

// Sectioned collection: the two-phase pipeline behind the sectioned
// snapshot format (internal/snapshot, envelope version 3).
//
// Phase 1 (BuildPartition) walks the MSR graph reachable from the live
// set — the same depth-first traversal and visited-set discipline as the
// monolithic Saver — but instead of encoding as it goes, it partitions
// the visited blocks into section owners: each stack block belongs to
// its frame's section, each global block to the globals section, and the
// heap blocks are grouped into the connected components of the heap
// subgraph (union-find over heap-to-heap pointer edges). A block shared
// by two traversal paths is assigned to exactly one owner here, so
// aliasing and cycles restore exactly as in the monolithic stream.
//
// Phase 2 (EncodeSections) encodes the section bodies. Heap components
// are independent by construction — no pointer crosses between two
// components, and the MSRLT is read-only during a collection — so the
// bodies are encoded concurrently on a bounded worker pool, each worker
// carrying its own encoder and its own MSRLT counter set (folded back
// into the table after the join). Section bodies are flat: a pointer
// scalar encodes only its (header, ordinal) reference, never an inline
// block record, because every block's record lives in the directory of
// the section that owns it.
//
// # Section body format
//
//	heap body     = directory, contents
//	var body      = liveRefs, directory, contents      ; frames, globals
//	liveRefs      = count u32, ref*count               ; layout cross-check
//	directory     = count u32, (major, minor, typeIndex, elemCount)*count
//	contents      = per directory entry, in order: scalars in plan order,
//	                pointer scalars as flat refs
//
// Restoration order (enforced by the vm layer): the execution state
// rebuilds the frames; heap sections allocate their blocks from the
// directory before any content is decoded; frame and globals sections
// then fill variable contents. Because heap components are closed under
// heap pointers, every reference a section decodes resolves against
// blocks already registered by that order.

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/msr"
	"repro/internal/types"
	"repro/internal/xdr"
)

// Roots lists the traversal roots of one capture in the paper's
// collection order: the live variables of each frame, then the globals.
type Roots struct {
	// FrameLive[i] holds the live-variable addresses of frame i
	// (i = depth-1, outermost first). Traversal visits frames in
	// reverse order, innermost first, exactly as the monolithic capture
	// does.
	FrameLive [][]memory.Address
	// Globals holds every global variable address in declaration order.
	Globals []memory.Address
}

// Partition is the section assignment of every reachable block.
type Partition struct {
	// Components are the connected components of the heap subgraph,
	// numbered and ordered by first visit; members are in first-visit
	// order too, so the encoding is deterministic.
	Components [][]*msr.Block
	// Frames[i] are the stack blocks of frame i (depth i+1) reached by
	// the traversal, in first-visit order.
	Frames [][]*msr.Block
	// Globals are the reachable global blocks in first-visit order.
	Globals []*msr.Block
	// Blocks is the total number of visited blocks.
	Blocks int
}

// partitioner carries the DFS + union-find state of phase 1.
type partitioner struct {
	space *memory.Space
	table *msr.Table
	ti    *types.TI
	mach  *arch.Machine

	visited map[msr.BlockID]bool

	heapIdx    map[msr.BlockID]int
	heapBlocks []*msr.Block
	parent     []int

	frames  [][]*msr.Block
	globals []*msr.Block
}

// BuildPartition runs the partition phase: one serial depth-first walk
// from the live set, reusing the monolithic traversal order so the set
// of transferred blocks is identical to the v1 stream's.
func BuildPartition(space *memory.Space, table *msr.Table, ti *types.TI, roots Roots) (*Partition, error) {
	w := &partitioner{
		space:   space,
		table:   table,
		ti:      ti,
		mach:    space.Machine(),
		visited: make(map[msr.BlockID]bool),
		heapIdx: make(map[msr.BlockID]int),
		frames:  make([][]*msr.Block, len(roots.FrameLive)),
	}
	// Innermost frame first, then globals — the v1 order.
	for i := len(roots.FrameLive) - 1; i >= 0; i-- {
		for _, addr := range roots.FrameLive[i] {
			if addr == 0 {
				return nil, fmt.Errorf("collect: null live-variable address in frame %d", i+1)
			}
			if _, err := w.visitAddr(addr); err != nil {
				return nil, err
			}
		}
	}
	for _, addr := range roots.Globals {
		if addr == 0 {
			return nil, fmt.Errorf("collect: null global address")
		}
		if _, err := w.visitAddr(addr); err != nil {
			return nil, err
		}
	}
	return w.finish(), nil
}

// visitAddr resolves the block containing addr and visits it.
func (w *partitioner) visitAddr(addr memory.Address) (*msr.Block, error) {
	b, _, err := w.table.Lookup(addr, func(ty *types.Type) int { return ty.SizeOf(w.mach) })
	if err != nil {
		return nil, fmt.Errorf("collect: unresolvable pointer %#x: %w", uint64(addr), err)
	}
	if err := w.visitBlock(b); err != nil {
		return nil, err
	}
	return b, nil
}

// visitBlock assigns a first-seen block to its section owner and scans
// its pointer scalars, recursing depth-first.
func (w *partitioner) visitBlock(b *msr.Block) error {
	if w.visited[b.ID] {
		return nil
	}
	w.visited[b.ID] = true
	switch b.ID.Seg {
	case memory.Heap:
		w.heapIdx[b.ID] = len(w.heapBlocks)
		w.heapBlocks = append(w.heapBlocks, b)
		w.parent = append(w.parent, len(w.parent))
	case memory.Stack:
		fi := int(b.ID.Major) - 1
		if fi < 0 || fi >= len(w.frames) {
			return fmt.Errorf("collect: stack block %s outside the active frame range", b.ID)
		}
		w.frames[fi] = append(w.frames[fi], b)
	case memory.Global:
		w.globals = append(w.globals, b)
	default:
		return fmt.Errorf("collect: block %s in unexpected segment", b.ID)
	}
	plan := w.ti.Plan(b.Type, w.mach)
	es := b.Type.SizeOf(w.mach)
	for elem := 0; elem < b.Count; elem++ {
		if err := w.scanOps(b, plan.Ops, b.Addr+memory.Address(elem*es)); err != nil {
			return err
		}
	}
	return nil
}

// scanOps walks the pointer scalars of one element, visiting targets and
// recording heap-to-heap edges in the union-find.
func (w *partitioner) scanOps(from *msr.Block, ops []types.PlanOp, base memory.Address) error {
	for _, op := range ops {
		switch {
		case op.Sub != nil:
			for i := 0; i < op.Count; i++ {
				if err := w.scanOps(from, op.Sub, base+memory.Address(op.Off+i*op.Stride)); err != nil {
					return err
				}
			}
		case op.Kind == arch.Ptr:
			for i := 0; i < op.Count; i++ {
				val, err := w.space.LoadPtr(base + memory.Address(op.Off+i*op.Stride))
				if err != nil {
					return err
				}
				if val == 0 {
					continue
				}
				tb, err := w.visitAddr(val)
				if err != nil {
					return err
				}
				if from.ID.Seg == memory.Heap && tb.ID.Seg == memory.Heap {
					w.union(w.heapIdx[from.ID], w.heapIdx[tb.ID])
				}
			}
		}
	}
	return nil
}

// find with path halving.
func (w *partitioner) find(i int) int {
	for w.parent[i] != i {
		w.parent[i] = w.parent[w.parent[i]]
		i = w.parent[i]
	}
	return i
}

func (w *partitioner) union(a, b int) {
	ra, rb := w.find(a), w.find(b)
	if ra != rb {
		// Attach the later-visited root under the earlier one so the
		// component keeps its first-visit identity.
		if ra < rb {
			w.parent[rb] = ra
		} else {
			w.parent[ra] = rb
		}
	}
}

// finish groups the heap blocks into their components, both numbered and
// ordered by first visit.
func (w *partitioner) finish() *Partition {
	compOf := make(map[int]int)
	var comps [][]*msr.Block
	for i, b := range w.heapBlocks {
		root := w.find(i)
		c, ok := compOf[root]
		if !ok {
			c = len(comps)
			compOf[root] = c
			comps = append(comps, nil)
		}
		comps[c] = append(comps[c], b)
	}
	total := len(w.heapBlocks) + len(w.globals)
	for _, f := range w.frames {
		total += len(f)
	}
	return &Partition{
		Components: comps,
		Frames:     w.frames,
		Globals:    w.globals,
		Blocks:     total,
	}
}

// EncodedSection is one encoded section body with its encode wall time.
type EncodedSection struct {
	Body    []byte
	Elapsed time.Duration
}

// SectionedState holds every encoded section body of one capture, in the
// partition's deterministic order, plus the aggregated collection
// statistics.
type SectionedState struct {
	// Heap[i] is component i's body; Frames[i] is frame depth i+1's.
	Heap    []EncodedSection
	Frames  []EncodedSection
	Globals EncodedSection
	// Stats aggregates the per-worker SaveStats. Searches and
	// SearchSteps are left zero: the workers' MSRLT counters are folded
	// into the table, and the caller derives the capture-wide deltas
	// from it exactly as Saver.Finish does.
	Stats SaveStats
	// Workers is the number of pool workers that encoded at least one
	// section (1 for a serial encode).
	Workers int

	// encs holds the pooled per-section encoders whose buffers back the
	// Body slices above; Release returns them.
	encs []*xdr.Encoder
}

// Release returns the pooled per-section encoders to the buffer pool.
// Every Body slice in the state aliases one of those buffers, so the
// caller must be done with the bodies — typically after splicing them
// into the top-level snapshot stream. Safe to call more than once.
func (st *SectionedState) Release() {
	for _, e := range st.encs {
		if e != nil {
			e.Release()
		}
	}
	st.encs = nil
	st.Heap, st.Frames, st.Globals = nil, nil, EncodedSection{}
}

// sectionJob is one body to encode.
type sectionJob struct {
	blocks   []*msr.Block
	live     []memory.Address
	withLive bool
}

// EncodeSections runs the encode phase over a partition: every heap
// component, frame, and the globals become one body each, encoded on a
// bounded worker pool. workers <= 0 selects GOMAXPROCS; 1 encodes
// serially on the calling goroutine. The bodies are identical regardless
// of worker count.
func EncodeSections(space *memory.Space, table *msr.Table, ti *types.TI, pt *Partition, roots Roots, workers int) (*SectionedState, error) {
	jobs := partitionJobs(pt, roots)
	results, encs, agg, engaged, err := encodeJobs(space, table, ti, jobs, nil, workers)
	if err != nil {
		return nil, err
	}

	h := len(pt.Components)
	f := len(pt.Frames)
	out := &SectionedState{
		Heap:    results[:h],
		Frames:  results[h : h+f],
		Globals: results[h+f],
		Stats:   agg,
		Workers: engaged,
		encs:    encs,
	}
	return out, nil
}

// partitionJobs lays a partition out as the encode job list, in the
// deterministic section order: heap components, frames, globals.
func partitionJobs(pt *Partition, roots Roots) []sectionJob {
	jobs := make([]sectionJob, 0, len(pt.Components)+len(pt.Frames)+1)
	for _, comp := range pt.Components {
		jobs = append(jobs, sectionJob{blocks: comp})
	}
	for i, blocks := range pt.Frames {
		jobs = append(jobs, sectionJob{blocks: blocks, live: roots.FrameLive[i], withLive: true})
	}
	jobs = append(jobs, sectionJob{blocks: pt.Globals, live: roots.Globals, withLive: true})
	return jobs
}

// encodeJobs runs the bounded worker pool over the job list. A true
// entry in skip (which may be nil) leaves that job's result and encoder
// zero — the delta capture uses this to re-encode only the sections the
// dirty set touched. On error every acquired encoder is released.
func encodeJobs(space *memory.Space, table *msr.Table, ti *types.TI, jobs []sectionJob, skip []bool, workers int) ([]EncodedSection, []*xdr.Encoder, SaveStats, int, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	results := make([]EncodedSection, len(jobs))
	encs := make([]*xdr.Encoder, len(jobs))
	mach := space.Machine()

	var (
		mu       sync.Mutex
		firstErr error
		engaged  int
		agg      SaveStats
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	// Static round-robin sharding: worker w owns jobs w, w+W, w+2W, ...
	// Deterministic engagement (every worker with a nonempty shard encodes)
	// and no queue contention; the components of one workload are close in
	// size, so the balance loss against work-stealing is small.
	run := func(worker int) {
		local := msr.Stats{}
		save := SaveStats{}
		did := 0
		for idx := worker; idx < len(jobs); idx += workers {
			if failed() || (skip != nil && skip[idx]) {
				continue
			}
			did++
			job := jobs[idx]
			start := time.Now()
			// Pooled encoder: the body aliases its buffer until the
			// caller's SectionedState.Release.
			enc := xdr.GetEncoder(sectionSizeHint(job.blocks, mach))
			encs[idx] = enc
			se := &sectionEncoder{
				space:    space,
				table:    table,
				ti:       ti,
				mach:     mach,
				enc:      enc,
				msrStats: &local,
				stats:    &save,
			}
			if err := se.encodeBody(job.blocks, job.live, job.withLive); err != nil {
				fail(err)
				continue
			}
			results[idx] = EncodedSection{Body: enc.Bytes(), Elapsed: time.Since(start)}
		}
		mu.Lock()
		// The MSRLT index is read-only during collection; the counters
		// are the only mutable table state, merged here post-hoc.
		table.Stats.Add(local)
		if did > 0 {
			engaged++
		}
		agg.Blocks += save.Blocks
		agg.Pointers += save.Pointers
		agg.NullPointers += save.NullPointers
		agg.DataBytes += save.DataBytes
		mu.Unlock()
	}

	if workers == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				run(w)
			}(i)
		}
		wg.Wait()
	}
	if firstErr != nil {
		for _, e := range encs {
			if e != nil {
				e.Release()
			}
		}
		return nil, nil, SaveStats{}, 0, firstErr
	}
	return results, encs, agg, engaged, nil
}

// sectionSizeHint estimates a body's encoded size from the machine-side
// block sizes, so encoders rarely reallocate.
func sectionSizeHint(blocks []*msr.Block, m *arch.Machine) int {
	est := 64 + 24*len(blocks)
	for _, b := range blocks {
		est += b.Count * b.Type.SizeOf(m)
	}
	return est
}

// sectionEncoder encodes one section body (flat references, no inline
// records). One per job; never shared across goroutines.
type sectionEncoder struct {
	space    *memory.Space
	table    *msr.Table
	ti       *types.TI
	mach     *arch.Machine
	enc      *xdr.Encoder
	msrStats *msr.Stats
	stats    *SaveStats
}

func (e *sectionEncoder) encodeBody(blocks []*msr.Block, live []memory.Address, withLive bool) error {
	if withLive {
		e.enc.PutUint32(uint32(len(live)))
		for _, addr := range live {
			if addr == 0 {
				return fmt.Errorf("collect: null live-variable address")
			}
			if err := e.putRef(addr); err != nil {
				return err
			}
		}
	}
	e.enc.PutUint32(uint32(len(blocks)))
	for _, b := range blocks {
		ti, ok := e.ti.Index(b.Type)
		if !ok {
			return fmt.Errorf("collect: block %s has type %s not in TI table", b.ID, b.Type)
		}
		e.enc.Put4Uint32(b.ID.Major, b.ID.Minor, uint32(ti), uint32(b.Count))
	}
	for _, b := range blocks {
		e.stats.Blocks++
		plan := e.ti.Plan(b.Type, e.mach)
		es := b.Type.SizeOf(e.mach)
		for elem := 0; elem < b.Count; elem++ {
			if err := e.encodeOps(plan.Ops, b.Addr+memory.Address(elem*es)); err != nil {
				return fmt.Errorf("collect: block %s element %d: %w", b.ID, elem, err)
			}
		}
	}
	return nil
}

func (e *sectionEncoder) encodeOps(ops []types.PlanOp, base memory.Address) error {
	for _, op := range ops {
		switch {
		case op.Sub != nil:
			for i := 0; i < op.Count; i++ {
				if err := e.encodeOps(op.Sub, base+memory.Address(op.Off+i*op.Stride)); err != nil {
					return err
				}
			}
		case op.Kind == arch.Ptr:
			for i := 0; i < op.Count; i++ {
				val, err := e.space.LoadPtr(base + memory.Address(op.Off+i*op.Stride))
				if err != nil {
					return err
				}
				if err := e.putRef(val); err != nil {
					return err
				}
			}
		default:
			n, err := encodeRun(e.enc, e.space, e.mach, op, base)
			if err != nil {
				return err
			}
			e.stats.DataBytes += int64(n)
		}
	}
	return nil
}

// putRef encodes one flat pointer reference.
func (e *sectionEncoder) putRef(p memory.Address) error {
	e.stats.Pointers++
	if p == 0 {
		e.stats.NullPointers++
		e.enc.PutUint32(nullSeg)
		return nil
	}
	ref, err := msr.ResolveStats(e.table, e.mach, p, e.msrStats)
	if err != nil {
		return fmt.Errorf("collect: unresolvable pointer %#x: %w", uint64(p), err)
	}
	e.enc.Put4Uint32(uint32(ref.ID.Seg), ref.ID.Major, ref.ID.Minor, uint32(ref.Ordinal))
	return nil
}

// PreparedHeapSection is a heap-component section after its serial
// phase: the directory has been decoded and every block allocated and
// registered in the MSRLT, in stream order. Fill decodes the contents —
// independently of every other prepared section, because heap components
// are closed under heap pointers.
type PreparedHeapSection struct {
	blocks   []*msr.Block
	contents []byte
	// Stats carries the allocation-phase counters (Allocated, UpdateTime).
	Stats RestoreStats
}

// PrepareHeapSection runs the serial phase of one heap-component restore:
// the directory is decoded and every block allocated and registered, but
// no content is filled. Allocation and registration mutate the space and
// the MSRLT, so Prepare calls must not run concurrently — the vm layer
// prepares every heap section in snapshot order (keeping the heap layout
// deterministic), then fills them on a worker pool.
func PrepareHeapSection(space *memory.Space, table *msr.Table, ti *types.TI, body []byte, instrument bool) (*PreparedHeapSection, error) {
	r := NewRestorer(space, table, ti, xdr.NewDecoder(body))
	r.flat = true
	r.Instrument = instrument

	n, err := r.dec.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated heap section directory", ErrCorruptStream)
	}
	if int64(n)*16 > int64(r.dec.Remaining()) {
		return nil, fmt.Errorf("%w: heap directory declares %d entries, %d bytes remain",
			ErrCorruptStream, n, r.dec.Remaining())
	}
	var start time.Time
	if instrument {
		start = time.Now()
	}
	blocks := make([]*msr.Block, 0, n)
	for i := uint32(0); i < n; i++ {
		major, minor, ty, count, err := r.directoryEntry()
		if err != nil {
			return nil, err
		}
		if minor != 0 {
			return nil, fmt.Errorf("%w: heap block with nonzero minor %d", ErrCorruptStream, minor)
		}
		id := msr.BlockID{Seg: memory.Heap, Major: major}
		if _, exists := r.table.ByID(id); exists {
			return nil, fmt.Errorf("%w: duplicate heap block %s", ErrCorruptStream, id)
		}
		b, err := r.allocHeapBlock(id, ty, count)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, b)
	}
	if instrument {
		r.Stats.UpdateTime += time.Since(start)
	}
	return &PreparedHeapSection{blocks: blocks, contents: body[r.dec.Offset():], Stats: r.Stats}, nil
}

// Extent returns the lowest address and one-past-the-highest address of
// the section's allocated blocks (both zero for an empty section), so the
// caller can pre-materialize the backing storage before concurrent fills.
func (ps *PreparedHeapSection) Extent(m *arch.Machine) (lo, hi memory.Address) {
	for _, b := range ps.blocks {
		end := b.Addr + memory.Address(b.Count*b.Type.SizeOf(m))
		if lo == 0 || b.Addr < lo {
			lo = b.Addr
		}
		if end > hi {
			hi = end
		}
	}
	return lo, hi
}

// Fill runs the parallel-safe phase of one heap-component restore: the
// contents are decoded into the already-allocated blocks with flat
// reference translation. msrStats receives the MSRLT resolve counters
// (pass a worker-private set under concurrency; the table's block index
// must be read-only, i.e. every section must be Prepared first, and the
// space's backing storage pre-materialized over the sections' extents).
func (ps *PreparedHeapSection) Fill(space *memory.Space, table *msr.Table, ti *types.TI, instrument bool, msrStats *msr.Stats) (RestoreStats, error) {
	r := NewRestorer(space, table, ti, xdr.NewDecoder(ps.contents))
	r.flat = true
	r.Instrument = instrument
	if msrStats != nil {
		r.msrStats = msrStats
	}
	for _, b := range ps.blocks {
		r.Stats.Blocks++
		if err := r.fillContents(b); err != nil {
			return r.Stats, err
		}
	}
	if r.dec.Remaining() != 0 {
		return r.Stats, fmt.Errorf("%w: %d trailing bytes in heap section", ErrCorruptStream, r.dec.Remaining())
	}
	return r.Stats, nil
}

// RestoreHeapSection rebuilds one heap-component section: every block in
// the directory is allocated and registered before any content is
// decoded, then the contents are filled with flat reference translation.
func RestoreHeapSection(space *memory.Space, table *msr.Table, ti *types.TI, body []byte, instrument bool) (RestoreStats, error) {
	ps, err := PrepareHeapSection(space, table, ti, body, instrument)
	if err != nil {
		return RestoreStats{}, err
	}
	stats, err := ps.Fill(space, table, ti, instrument, nil)
	stats.Add(ps.Stats)
	return stats, err
}

// HeapRestore is the outcome of RestoreHeapSections: per-section restore
// statistics and fill wall times in section order, and the worker count.
type HeapRestore struct {
	// PerSection[i] aggregates section i's allocation and fill counters.
	PerSection []RestoreStats
	// Prepare[i] is section i's serial allocation-phase wall time.
	Prepare []time.Duration
	// Elapsed[i] is section i's fill wall time as measured on its worker
	// (the per-component latency the restore speedup comes from).
	Elapsed []time.Duration
	// Workers is the number of pool workers that filled at least one
	// section (1 for a serial restore).
	Workers int
}

// RestoreHeapSections restores every heap-component section of one
// snapshot: the directories are decoded and their blocks allocated
// serially in section order — the heap layout is identical to a fully
// serial restore — then the independent component contents are filled on
// a bounded worker pool, mirroring EncodeSections on the capture side.
// workers <= 0 selects GOMAXPROCS; 1 fills serially on the calling
// goroutine. The restored memory image is identical for every worker
// count.
func RestoreHeapSections(space *memory.Space, table *msr.Table, ti *types.TI, bodies [][]byte, instrument bool, workers int) (*HeapRestore, error) {
	out := &HeapRestore{
		PerSection: make([]RestoreStats, len(bodies)),
		Prepare:    make([]time.Duration, len(bodies)),
		Elapsed:    make([]time.Duration, len(bodies)),
		Workers:    1,
	}
	if len(bodies) == 0 {
		return out, nil
	}

	// Serial phase: allocate and register every section's blocks in
	// snapshot order (Malloc and Register mutate shared state).
	prepared := make([]*PreparedHeapSection, len(bodies))
	mach := space.Machine()
	var lo, hi memory.Address
	for i, body := range bodies {
		prepStart := time.Now()
		ps, err := PrepareHeapSection(space, table, ti, body, instrument)
		if err != nil {
			return nil, fmt.Errorf("heap section %d: %w", i, err)
		}
		out.Prepare[i] = time.Since(prepStart)
		prepared[i] = ps
		out.PerSection[i] = ps.Stats
		slo, shi := ps.Extent(mach)
		if lo == 0 || (slo != 0 && slo < lo) {
			lo = slo
		}
		if shi > hi {
			hi = shi
		}
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(bodies) {
		workers = len(bodies)
	}
	if workers < 1 {
		workers = 1
	}

	// Pre-materialize the heap backing storage over the full extent: a
	// segment store grows (and may re-base) its backing array on first
	// touch, which must not happen under concurrent fills.
	if workers > 1 && hi > lo {
		if err := space.Materialize(lo, int(hi-lo)); err != nil {
			return nil, err
		}
	}

	var (
		mu       sync.Mutex
		firstErr error
		engaged  int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	// Static round-robin sharding, exactly as EncodeSections: worker w
	// owns sections w, w+W, w+2W, ... Each worker translates references
	// through its own MSRLT counter set, folded into the table after the
	// join.
	run := func(worker int) {
		local := msr.Stats{}
		did := 0
		for idx := worker; idx < len(prepared); idx += workers {
			if failed() {
				continue
			}
			did++
			start := time.Now()
			st, err := prepared[idx].Fill(space, table, ti, instrument, &local)
			if err != nil {
				fail(fmt.Errorf("heap section %d: %w", idx, err))
				continue
			}
			out.Elapsed[idx] = time.Since(start)
			out.PerSection[idx].Add(st)
		}
		mu.Lock()
		table.Stats.Add(local)
		if did > 0 {
			engaged++
		}
		mu.Unlock()
	}

	if workers == 1 {
		run(0)
	} else {
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				run(w)
			}(i)
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out.Workers = engaged
	return out, nil
}

// RestoreVarSection rebuilds one frame or globals section: the live
// references are verified against the destination's own layout (the
// RestoreVariable cross-check of the paper), the directory is matched
// against the already-registered variable blocks, and the contents are
// filled. seg and major bound the identifications a directory entry may
// carry (Stack + frame depth, or Global + 0).
func RestoreVarSection(space *memory.Space, table *msr.Table, ti *types.TI, body []byte, live []memory.Address, seg memory.Segment, major uint32, instrument bool) (RestoreStats, error) {
	r := NewRestorer(space, table, ti, xdr.NewDecoder(body))
	r.flat = true
	r.Instrument = instrument

	n, err := r.dec.Uint32()
	if err != nil {
		return r.Stats, fmt.Errorf("%w: truncated live-reference list", ErrCorruptStream)
	}
	if int(n) != len(live) {
		return r.Stats, fmt.Errorf("%w: section carries %d live references, destination expects %d",
			ErrMismatch, n, len(live))
	}
	for _, addr := range live {
		if err := r.RestoreVariable(addr); err != nil {
			return r.Stats, err
		}
	}

	nb, err := r.dec.Uint32()
	if err != nil {
		return r.Stats, fmt.Errorf("%w: truncated section directory", ErrCorruptStream)
	}
	if int64(nb)*16 > int64(r.dec.Remaining()) {
		return r.Stats, fmt.Errorf("%w: directory declares %d entries, %d bytes remain",
			ErrCorruptStream, nb, r.dec.Remaining())
	}
	blocks := make([]*msr.Block, 0, nb)
	for i := uint32(0); i < nb; i++ {
		maj, minor, ty, count, err := r.directoryEntry()
		if err != nil {
			return r.Stats, err
		}
		if maj != major {
			return r.Stats, fmt.Errorf("%w: block %s.%d outside section (want major %d)",
				ErrCorruptStream, seg, maj, major)
		}
		id := msr.BlockID{Seg: seg, Major: maj, Minor: minor}
		b, ok := r.table.ByID(id)
		if !ok {
			return r.Stats, fmt.Errorf("%w: section references unknown %s block %s", ErrMismatch, seg, id)
		}
		if b.Type != ty || b.Count != count {
			return r.Stats, fmt.Errorf("%w: block %s shape mismatch: stream %s x%d, destination %s x%d",
				ErrMismatch, id, ty, count, b.Type, b.Count)
		}
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		r.Stats.Blocks++
		if err := r.fillContents(b); err != nil {
			return r.Stats, err
		}
	}
	if r.dec.Remaining() != 0 {
		return r.Stats, fmt.Errorf("%w: %d trailing bytes in section", ErrCorruptStream, r.dec.Remaining())
	}
	return r.Stats, nil
}

// directoryEntry decodes one section-directory record (one take for the
// whole 16-byte entry).
func (r *Restorer) directoryEntry() (major, minor uint32, ty *types.Type, count int, err error) {
	major, minor, tIdx, c, err := r.dec.Uint32x4()
	if err != nil {
		return 0, 0, nil, 0, fmt.Errorf("%w: truncated directory entry", ErrCorruptStream)
	}
	ty, err = r.ti.At(int(tIdx))
	if err != nil {
		return 0, 0, nil, 0, fmt.Errorf("%w: %v", ErrCorruptStream, err)
	}
	return major, minor, ty, int(c), nil
}
