package collect

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/msr"
	"repro/internal/types"
	"repro/internal/xdr"
)

// This file property-tests the full encode/decode stack on randomly
// generated type shapes: random structs, arrays, and pointers filled with
// random values are collected on one random machine and restored on
// another, and every scalar is compared semantically. This exercises the
// plan compiler, ordinal arithmetic, layout translation, and the wire
// codec far beyond the hand-written cases.

// typeGen generates random block types.
type typeGen struct {
	rng  *rand.Rand
	tags int
}

var scalarKinds = []arch.PrimKind{
	arch.Char, arch.UChar, arch.Short, arch.UShort, arch.Int, arch.UInt,
	arch.Long, arch.ULong, arch.LongLong, arch.ULongLong, arch.Float, arch.Double,
}

// genType produces a random type of bounded depth. Pointers always point
// at double (the pointee blocks are built separately).
func (g *typeGen) genType(depth int) *types.Type {
	choice := g.rng.Intn(10)
	if depth <= 0 {
		choice = g.rng.Intn(5) // scalars only at the leaves
	}
	switch {
	case choice < 4:
		return types.PrimType(scalarKinds[g.rng.Intn(len(scalarKinds))])
	case choice < 5:
		return types.PointerTo(types.Double)
	case choice < 8:
		return types.ArrayOf(g.genType(depth-1), 1+g.rng.Intn(4))
	default:
		g.tags++
		st := types.NewStruct(fmt.Sprintf("rnd%d_%d", g.rng.Int63()&0xffff, g.tags))
		n := 1 + g.rng.Intn(4)
		fields := make([]types.Field, n)
		for i := range fields {
			fields[i] = types.Field{
				Name: fmt.Sprintf("f%d", i),
				Type: g.genType(depth - 1),
			}
		}
		st.DefineFields(fields)
		return st
	}
}

// scalarValue picks a random canonical value for a scalar kind.
func scalarValue(rng *rand.Rand, k arch.PrimKind) uint64 {
	switch k {
	case arch.Float:
		return uint64(rng.Uint32())&0x7fffffff | 0x3f000000 // avoid NaN payload games
	case arch.Double:
		return rng.Uint64()&0x7fffffffffffffff | 0x3ff0000000000000
	default:
		return rng.Uint64()
	}
}

// fillRandom writes random values into every scalar of a block on machine
// m, recording the canonical (machine-normalized) expectations; pointer
// scalars all point at the shared target block (or null).
func fillRandom(t *testing.T, rng *rand.Rand, p *proc, b *msr.Block, target memory.Address) []uint64 {
	t.Helper()
	var want []uint64
	es := b.Type.SizeOf(p.m)
	for elem := 0; elem < b.Count; elem++ {
		base := b.Addr + memory.Address(elem*es)
		for ord := 0; ord < b.Type.ScalarCount(); ord++ {
			st := b.Type.ScalarType(ord)
			addr := base + memory.Address(b.Type.OrdinalToOffset(p.m, ord))
			if st.IsPointer() {
				val := target
				if rng.Intn(3) == 0 {
					val = 0
				}
				if err := p.space.StorePtr(addr, val); err != nil {
					t.Fatal(err)
				}
				if val == 0 {
					want = append(want, 0)
				} else {
					want = append(want, 1) // non-null marker
				}
				continue
			}
			v := scalarValue(rng, st.Prim)
			if err := p.space.StorePrim(addr, st.Prim, v); err != nil {
				t.Fatal(err)
			}
			got, err := p.space.LoadPrim(addr, st.Prim)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, got) // machine-normalized expectation
		}
	}
	return want
}

// wireNormalize converts a source-machine canonical value to what the
// destination machine should hold after the canonical-width wire hop.
func wireNormalize(v uint64, k arch.PrimKind, dst *arch.Machine) uint64 {
	switch k {
	case arch.Float, arch.Double:
		return v
	}
	size := dst.SizeOf(k)
	if size == 8 {
		return v
	}
	shift := uint(64 - 8*size)
	if k.IsSigned() {
		return uint64(int64(v<<shift) >> shift)
	}
	return v << shift >> shift
}

func TestRandomTypesRoundTrip(t *testing.T) {
	machines := arch.Machines()
	for trial := 0; trial < 60; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		srcM := machines[rng.Intn(len(machines))]
		dstM := machines[rng.Intn(len(machines))]

		g := &typeGen{rng: rng}
		ty := g.genType(3)
		if ty.SizeOf(srcM) == 0 {
			continue
		}
		count := 1 + rng.Intn(3)

		ti := types.NewTI()
		ti.Add(ty)
		ti.Add(types.Double)
		ti.Add(types.PointerTo(ty))

		src := newProc(srcM, ti)
		dst := newProc(dstM, ti)
		sroot := src.global(t, types.PointerTo(ty), "root")
		droot := dst.global(t, types.PointerTo(ty), "root")

		blk := src.heap(t, ty, count)
		tgt := src.heap(t, types.Double, 1)
		src.space.StorePrim(tgt.Addr, arch.Double, scalarValue(rng, arch.Double))
		want := fillRandom(t, rng, src, blk, tgt.Addr)
		src.space.StorePtr(sroot.Addr, blk.Addr)

		enc := xdr.NewEncoder(1 << 12)
		s := NewSaver(src.space, src.table, src.ti, enc)
		if err := s.SaveVariable(sroot.Addr); err != nil {
			t.Fatalf("trial %d (%s): save: %v", trial, ty, err)
		}
		r := NewRestorer(dst.space, dst.table, dst.ti, xdr.NewDecoder(enc.Bytes()))
		if err := r.RestoreVariable(droot.Addr); err != nil {
			t.Fatalf("trial %d (%s->%s, %s): restore: %v", trial, srcM.Name, dstM.Name, ty, err)
		}

		// Compare scalar by scalar.
		dblk, ok := dst.table.ByID(blk.ID)
		if !ok {
			t.Fatalf("trial %d: block not restored", trial)
		}
		des := ty.SizeOf(dstM)
		idx := 0
		for elem := 0; elem < count; elem++ {
			base := dblk.Addr + memory.Address(elem*des)
			for ord := 0; ord < ty.ScalarCount(); ord++ {
				st := ty.ScalarType(ord)
				addr := base + memory.Address(ty.OrdinalToOffset(dstM, ord))
				exp := want[idx]
				idx++
				if st.IsPointer() {
					pv, err := dst.space.LoadPtr(addr)
					if err != nil {
						t.Fatal(err)
					}
					if (pv != 0) != (exp != 0) {
						t.Fatalf("trial %d: pointer nullity mismatch at ordinal %d", trial, ord)
					}
					continue
				}
				got, err := dst.space.LoadPrim(addr, st.Prim)
				if err != nil {
					t.Fatal(err)
				}
				wantV := wireNormalize(exp, st.Prim, dstM)
				if got != wantV {
					t.Fatalf("trial %d (%s -> %s): type %s ordinal %d (%s): got %#x, want %#x",
						trial, srcM.Name, dstM.Name, ty, ord, st.Prim, got, wantV)
				}
			}
		}
	}
}
