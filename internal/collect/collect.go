// Package collect implements the MSR Manipulation (MSRM) library of the
// paper: the data collection and restoration mechanisms that transfer the
// memory state of a process in a machine-independent format.
//
// The four interface routines of the paper are provided:
//
//   - Saver.SaveVariable / Saver.SavePointer collect live data on the
//     source machine, encoding memory blocks into an output buffer;
//   - Restorer.RestoreVariable / Restorer.RestorePointer rebuild the
//     blocks in the memory space of the destination process.
//
// SavePointer initiates a depth-first traversal through the connected
// component of the MSR graph reachable from the pointer. Visited memory
// blocks are marked so they are not saved again, which both bounds the
// stream size and preserves sharing: a block referenced from five places is
// transferred once and all five restored pointers alias it, and cyclic
// structures terminate.
//
// # Wire format
//
// The stream is a sequence of pointer references, each optionally followed
// by the record of the block it refers to:
//
//	ref      = null | (segment, major, minor, ordinal)   ; 4 or 16 bytes
//	record   = typeIndex, count, content                 ; follows the first
//	                                                     ; ref to each block
//	content  = scalars in plan order; pointer scalars are refs (recursion)
//
// Scalars are encoded big-endian at canonical widths (char 1, short 2,
// int/float 4, long/double 8) regardless of the machine's own widths, so an
// ILP32 and an LP64 process exchange identical streams. Whether a record
// follows a ref is determined by the visited-set discipline, which encoder
// and decoder evolve in lockstep.
package collect

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/memory"
	"repro/internal/msr"
	"repro/internal/types"
	"repro/internal/xdr"
)

// nullSeg is the wire segment value encoding a null pointer.
const nullSeg = 0xffffffff

// wireSize returns the canonical (machine-independent) encoded width of a
// non-pointer scalar kind.
func wireSize(k arch.PrimKind) int {
	switch k {
	case arch.Char, arch.UChar:
		return 1
	case arch.Short, arch.UShort:
		return 2
	case arch.Int, arch.UInt, arch.Float:
		return 4
	case arch.Long, arch.ULong, arch.LongLong, arch.ULongLong, arch.Double:
		return 8
	}
	panic(fmt.Sprintf("collect: no wire size for %s", k))
}

func putBE(b []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		b[n-1-i] = byte(v >> (8 * i))
	}
}

func getBE(b []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// SaveStats decomposes the cost of a collection in the terms of the
// paper's Section 4.2: Collect = MSRLT_search + Encode_and_Copy.
type SaveStats struct {
	// SearchTime is time spent translating pointer values through the
	// MSRLT (only accumulated when the Saver is instrumented).
	SearchTime time.Duration
	// EncodeTime is time spent converting and copying block contents
	// (only accumulated when instrumented).
	EncodeTime time.Duration
	// Searches and SearchSteps mirror the MSRLT counters for this
	// collection.
	Searches    int64
	SearchSteps int64
	// Blocks is the number of memory blocks saved.
	Blocks int64
	// Pointers is the number of pointer scalars encoded (including null).
	Pointers int64
	// NullPointers counts the null subset.
	NullPointers int64
	// DataBytes is the number of content bytes encoded (excluding refs).
	DataBytes int64
}

// Saver collects live data from a process memory space into an output
// buffer. A Saver is single-use: create one per migration event.
type Saver struct {
	space *memory.Space
	table *msr.Table
	ti    *types.TI
	mach  *arch.Machine
	enc   *xdr.Encoder

	visited map[msr.BlockID]bool

	// Instrument enables the fine-grained timing split in Stats at a
	// small per-operation cost.
	Instrument bool

	// NoDedup disables the visited-set marking (an ablation of the
	// paper's "visited memory blocks are marked so that they are not
	// saved again"): every pointer re-collects its target, so shared
	// blocks are duplicated and the stream for a DAG can grow
	// exponentially. DedupDepthLimit bounds the recursion so the
	// ablation terminates even on cycles; reaching the limit is an
	// error. Measurement only — the resulting stream is not restorable.
	NoDedup bool
	// DedupDepthLimit is the traversal depth bound under NoDedup
	// (default 64 when NoDedup is set).
	DedupDepthLimit int

	depth int

	Stats SaveStats

	baseSearches    int64
	baseSearchSteps int64
}

// NewSaver returns a Saver over the process state (space, MSRLT, TI table)
// writing to enc.
func NewSaver(space *memory.Space, table *msr.Table, ti *types.TI, enc *xdr.Encoder) *Saver {
	return &Saver{
		space:           space,
		table:           table,
		ti:              ti,
		mach:            space.Machine(),
		enc:             enc,
		visited:         make(map[msr.BlockID]bool),
		baseSearches:    table.Stats.Searches,
		baseSearchSteps: table.Stats.SearchSteps,
	}
}

// Encoder returns the output buffer the Saver writes to.
func (s *Saver) Encoder() *xdr.Encoder { return s.enc }

// SaveVariable collects the memory block containing the variable at addr.
// This is the routine the inserted migration macros call for each live
// variable (the paper's Save_variable(&x)); pointer-typed variables are
// handled uniformly because the block's saving function encodes any pointer
// scalars it contains, continuing the traversal.
func (s *Saver) SaveVariable(addr memory.Address) error {
	if addr == 0 {
		return fmt.Errorf("collect: SaveVariable of null address")
	}
	return s.savePointerValue(addr)
}

// SavePointer collects the pointer value p (the paper's Save_pointer(p)):
// it encodes the machine-independent form of p and, if the referenced block
// has not been visited, performs the depth-first collection of the
// connected component reachable from it.
func (s *Saver) SavePointer(p memory.Address) error {
	return s.savePointerValue(p)
}

// Finish finalizes the collection, folding the MSRLT counters into Stats.
func (s *Saver) Finish() {
	s.Stats.Searches = s.table.Stats.Searches - s.baseSearches
	s.Stats.SearchSteps = s.table.Stats.SearchSteps - s.baseSearchSteps
}

// savePointerValue encodes one pointer value and recurses into the target
// block when it is first reached.
func (s *Saver) savePointerValue(p memory.Address) error {
	s.Stats.Pointers++
	if p == 0 {
		s.Stats.NullPointers++
		s.enc.PutUint32(nullSeg)
		return nil
	}
	var start time.Time
	if s.Instrument {
		start = time.Now()
	}
	ref, err := msr.Resolve(s.table, s.mach, p)
	if s.Instrument {
		s.Stats.SearchTime += time.Since(start)
	}
	if err != nil {
		return fmt.Errorf("collect: unresolvable pointer %#x: %w", uint64(p), err)
	}
	s.enc.Put4Uint32(uint32(ref.ID.Seg), ref.ID.Major, ref.ID.Minor, uint32(ref.Ordinal))
	if s.NoDedup {
		limit := s.DedupDepthLimit
		if limit <= 0 {
			limit = 64
		}
		if s.depth >= limit {
			return fmt.Errorf("collect: traversal depth %d exceeded without visit marking (cycle or deep sharing)", limit)
		}
		s.depth++
		b, _ := s.table.ByID(ref.ID)
		err := s.saveBlock(b)
		s.depth--
		return err
	}
	if s.visited[ref.ID] {
		return nil
	}
	s.visited[ref.ID] = true
	b, _ := s.table.ByID(ref.ID)
	return s.saveBlock(b)
}

// saveBlock emits the record of one memory block: its type, element count,
// and contents translated by the type-specific saving plan.
func (s *Saver) saveBlock(b *msr.Block) error {
	ti, ok := s.ti.Index(b.Type)
	if !ok {
		return fmt.Errorf("collect: block %s has type %s not in TI table", b.ID, b.Type)
	}
	s.Stats.Blocks++
	s.enc.PutUint32(uint32(ti))
	s.enc.PutUint32(uint32(b.Count))
	plan := s.ti.Plan(b.Type, s.mach)
	es := b.Type.SizeOf(s.mach)
	for elem := 0; elem < b.Count; elem++ {
		if err := s.saveOps(plan.Ops, b.Addr+memory.Address(elem*es)); err != nil {
			return fmt.Errorf("collect: block %s element %d: %w", b.ID, elem, err)
		}
	}
	return nil
}

// saveOps executes plan operations at the given base address.
func (s *Saver) saveOps(ops []types.PlanOp, base memory.Address) error {
	for _, op := range ops {
		switch {
		case op.Sub != nil:
			for i := 0; i < op.Count; i++ {
				if err := s.saveOps(op.Sub, base+memory.Address(op.Off+i*op.Stride)); err != nil {
					return err
				}
			}
		case op.Kind == arch.Ptr:
			for i := 0; i < op.Count; i++ {
				addr := base + memory.Address(op.Off+i*op.Stride)
				val, err := s.space.LoadPtr(addr)
				if err != nil {
					return err
				}
				if err := s.savePointerValue(val); err != nil {
					return err
				}
			}
		default:
			if err := s.saveRun(op, base); err != nil {
				return err
			}
		}
	}
	return nil
}

// saveRun encodes a run of homogeneous non-pointer scalars, converting each
// from the machine representation to the canonical wire representation.
func (s *Saver) saveRun(op types.PlanOp, base memory.Address) error {
	var start time.Time
	if s.Instrument {
		start = time.Now()
	}
	n, err := encodeRun(s.enc, s.space, s.mach, op, base)
	if err != nil {
		return err
	}
	s.Stats.DataBytes += int64(n)
	if s.Instrument {
		s.Stats.EncodeTime += time.Since(start)
	}
	return nil
}

// encodeRun is the run encoder shared by the monolithic Saver and the
// sectioned encoders: it writes one plan op's worth of non-pointer
// scalars in canonical big-endian wire form and returns the byte count.
// It reads memory and the type plan only, so concurrent encoders may run
// it against the same space as long as each has its own encoder.
func encodeRun(enc *xdr.Encoder, space *memory.Space, m *arch.Machine, op types.PlanOp, base memory.Address) (int, error) {
	size := m.SizeOf(op.Kind)
	ws := wireSize(op.Kind)
	// When the encoder streams to a sink, bound each reservation so one
	// large run (a linpack matrix) still flushes out in chunk-sized
	// pieces instead of a single unsplittable Grow.
	seg := op.Count
	if hint := enc.SegmentHint(); hint > 0 {
		if max := hint / ws; max >= 1 && seg > max {
			seg = max
		}
	}
	if op.Stride == size {
		// Contiguous run: one bounds check for the whole span.
		src, err := space.Bytes(base+memory.Address(op.Off), size*op.Count)
		if err != nil {
			return 0, err
		}
		for done := 0; done < op.Count; done += seg {
			n := op.Count - done
			if n > seg {
				n = seg
			}
			out := enc.Grow(ws * n)
			for i := 0; i < n; i++ {
				v := m.Prim(src[(done+i)*size:], op.Kind)
				putBE(out[i*ws:], v, ws)
			}
		}
	} else {
		for done := 0; done < op.Count; done += seg {
			n := op.Count - done
			if n > seg {
				n = seg
			}
			out := enc.Grow(ws * n)
			for i := 0; i < n; i++ {
				src, err := space.Bytes(base+memory.Address(op.Off+(done+i)*op.Stride), size)
				if err != nil {
					return 0, err
				}
				v := m.Prim(src, op.Kind)
				putBE(out[i*ws:], v, ws)
			}
		}
	}
	return ws * op.Count, nil
}
