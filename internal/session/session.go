// Package session is the migration-session layer of the stack: it sits
// between the migration engine (internal/core) and the transport
// (internal/link) and owns everything two peers must agree on before a
// process state crosses the wire.
//
// The paper's protocol assumes one migration at a time between two
// pre-arranged peers whose operators configured both ends identically.
// This layer replaces that arrangement with a negotiated handshake:
//
//  1. the initiator (the migrating process's node) sends an OFFER — magic,
//     the envelope-version range it speaks, its program digest and name,
//     its machine, and its streamed-path chunk/window proposals;
//  2. the responder (the daemon) looks the digest up in its program
//     registry, intersects the version ranges, takes the more conservative
//     stream parameters, and replies ACCEPT (version, chunk, window) — or
//     REJECT with a human-readable reason;
//  3. the agreed version selects a Path — the monolithic sealed envelope
//     (version 1), the pipelined chunk stream (version 2), or the
//     sectioned snapshot with parallel heap collection (version 3) — and
//     the state flows through it;
//  4. the responder restores the process and confirms with RESTORED, at
//     which point the source process may terminate (the paper's
//     source-terminates-after-transmission rule, moved after restoration
//     so a failed restore leaves the source alive);
//  5. when both sides advertised capCommit, the initiator answers
//     RESTORED with COMMIT and the responder activates the restored
//     process only once the COMMIT arrives — the commit handshake that
//     makes the handoff atomic under connection loss (see DESIGN.md §16:
//     the source relinquishes only after a successful COMMIT send, the
//     destination activates only after COMMIT delivery, so under
//     fail-stop faults at frame boundaries exactly one copy survives).
//
// Chunk size and window are negotiated, not operator-matched: each side
// proposes, both use the minimum. A v1-only initiator talks to a
// v2-capable daemon without either side being configured for the other.
//
// # Wire format
//
// Every message is one link.Transport frame, XDR-encoded, magic "MSES":
//
//	offer    = magic, OFFER, minVer u32, maxVer u32, digest u32,
//	           program string, machine string, chunk u32, window u32
//	           [, traceID u64, spanID u64 [, caps u32]]
//	accept   = magic, ACCEPT, version u32, chunk u32, window u32
//	           [, caps u32]
//	reject   = magic, REJECT, reason string
//	restored = magic, RESTORED, bytes u64 [, spans opaque]
//	commit   = magic, COMMIT
//
// The bracketed fields are extensions and are backward compatible in both
// directions: an old initiator's offer simply ends after window (the
// parser treats exact end-of-buffer as "no trace context"), and an old
// responder never reads past window, so the trailing fields are ignored.
// Likewise RESTORED may carry the responder's exported span tree (JSON,
// XDR-opaque-framed) after the byte count; old initiators stop reading
// after bytes. traceID zero means "untraced". caps is a capability bitmap
// (capWarm advertises a checkpoint store, capLive the live pre-copy path,
// capCommit the commit handshake); a zero capability set is not encoded
// at all, so a peer without capabilities emits frames byte-identical to
// the pre-extension protocol.
//
// Between ACCEPT and RESTORED the transport belongs to the selected Path:
// one sealed envelope frame for version 1, the internal/stream protocol
// for versions 2 and 3 (version 3 carries a sectioned snapshot as the
// stream payload). When both sides advertised capWarm and version 3 was
// agreed, the warm path runs instead (internal/session warm.go): the
// initiator checkpoints into its store and sends the MANIFEST, the
// responder replies WANT with the indices of section bodies its own store
// lacks, and a single SECTIONS message carries only those bodies — an
// unchanged process re-migrating transfers a manifest and nothing else.
//
// When both sides advertised capLive, a sectioned agreement upgrades to
// version 4 and the live pre-copy path runs instead (live.go): the
// initiator ships the full image while the process keeps executing, then
// repeats DELTA/WANT/BODIES rounds carrying only the sections its dirty
// set touched, and pauses the process only for the last small round —
// bounding downtime by the final delta instead of the whole image.
package session

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/xdr"
)

// sessionMagic guards every session-layer message ("MSES").
const sessionMagic = 0x4d534553

// Message types.
const (
	msgOffer uint32 = iota + 1
	msgAccept
	msgReject
	msgRestored
	// Warm-migration messages (the HAVE/WANT exchange; only ever sent
	// when both sides advertised capWarm during the handshake).
	msgManifest
	msgWant
	msgSections
	// Live pre-copy messages (one DELTA/WANT/BODIES exchange per round;
	// only ever sent when both sides advertised capLive and version 4 was
	// agreed).
	msgDelta
	msgDeltaWant
	msgDeltaBodies
	msgLiveAbort
	// msgCommit is the initiator's handoff acknowledgement (only ever
	// sent when both sides advertised capCommit): the source has seen
	// RESTORED and relinquishes the process; the destination activates.
	msgCommit
)

// Capability bits, carried as an optional trailing u32 on OFFER and
// ACCEPT. A zero capability set is not encoded at all, so a peer without
// capabilities emits handshake frames byte-identical to the pre-extension
// protocol, and legacy parsers — which ignore trailing bytes — never see
// the field.
const (
	// capWarm: this side holds a checkpoint store and can run the warm
	// path — manifest first, then only the section bodies the receiver's
	// store lacks.
	capWarm uint32 = 1 << 0
	// capLive: this side can run the live pre-copy path (envelope version
	// 4) — iterative delta rounds while the source executes, with a final
	// paused round bounding downtime. Both sides advertising it upgrades a
	// sectioned negotiation to core.VersionLive.
	capLive uint32 = 1 << 1
	// capCommit: this side speaks the commit handshake — after RESTORED
	// the initiator answers COMMIT, and the responder activates the
	// restored process only once the COMMIT arrives. Both sides
	// advertising it closes the RESTORED-to-activation window in which a
	// connection loss could leave the process both resumed at the source
	// and activated at the destination. Advertised by default (it costs
	// one trailing bit); Config.NoCommit suppresses it.
	capCommit uint32 = 1 << 2
)

// Errors reported by the session layer.
var (
	// ErrRejected is returned by Initiate when the responder refused the
	// offer; the wrapped message carries the responder's reason.
	ErrRejected = errors.New("session: migration rejected")
	// ErrProtocol is returned when a peer sends a message that violates
	// the session protocol.
	ErrProtocol = errors.New("session: protocol violation")
	// ErrNoVersion is the negotiation failure: the peers' version ranges
	// do not intersect.
	ErrNoVersion = errors.New("session: no common protocol version")
	// ErrUnknownProgram is the negotiation failure for a digest the
	// responder's registry does not hold.
	ErrUnknownProgram = errors.New("session: program not in registry")
	// ErrLiveAborted is returned by the responder of a live session when
	// the initiator abandoned the pre-copy loop (LIVE_ABORT); the wrapped
	// message carries the initiator's reason.
	ErrLiveAborted = errors.New("session: live migration aborted by initiator")
	// ErrSourceExited is returned by InitiateLive when the source process
	// ran to completion between pre-copy rounds — there is nothing left to
	// migrate, and the responder was told to stand down.
	ErrSourceExited = errors.New("session: source process exited before final round")
)

// Config is one side's negotiation posture.
type Config struct {
	// MinVersion and MaxVersion bound the envelope versions this side
	// speaks. Zero values default to
	// [core.VersionMono, core.VersionSectioned] — every path.
	MinVersion uint32
	MaxVersion uint32
	// ChunkSize and Window are this side's streamed-path proposals and
	// caps, in the units of stream.Config; the negotiated values are the
	// minimum of both sides'. Zero selects the stream-layer defaults.
	ChunkSize int
	Window    int
	// Trace, when set, receives one child span per session phase
	// (handshake, collect, transport, restore, confirm). The span tree is
	// local, but its trace identity (trace ID + span ID) crosses the wire
	// so both sides' trees stitch into one; nil disables tracing.
	Trace *obs.Span
	// Metrics receives the per-phase latency histograms
	// (session.phase.<handshake|collect|transport|restore|confirm>).
	// Nil selects obs.Default.
	Metrics *obs.Registry
	// Recorder, when set, receives structured flight-recorder events for
	// the session (phase transitions, negotiation outcomes) and is
	// propagated into the stream layer's robustness events. Nil disables.
	Recorder *obs.FlightRecorder
	// Store, when set, is this side's content-addressed checkpoint store
	// and enables warm migration: the handshake advertises capWarm, and
	// when both sides hold a store and negotiate the sectioned version,
	// the transfer sends a manifest plus only the section bodies the
	// destination's store lacks. Nil keeps the handshake byte-identical
	// to the pre-store protocol.
	Store *store.Store
	// Live enables the pre-copy path: the handshake advertises capLive,
	// and when both sides do, a sectioned negotiation upgrades to
	// core.VersionLive. The initiator then drives delta rounds with
	// InitiateLive (a plain Initiate sends one final round — correct, but
	// with no overlap). False keeps every handshake frame byte-identical
	// to the pre-live protocol.
	Live bool
	// PrecopyRounds bounds the delta rounds between the initial full copy
	// and the final paused round. Zero selects 3. Source-side policy
	// only; never crosses the wire.
	PrecopyRounds int
	// DirtyThreshold stops the pre-copy loop early: once the unshipped
	// dirty set is at or below this many blocks, the next round is the
	// final one. Zero selects 16 blocks. Source-side policy only.
	DirtyThreshold int
	// NoCommit suppresses the commit handshake (capCommit): RESTORED
	// alone completes the session, as in the pre-commit protocol, and
	// every handshake frame is byte-identical to the pre-commit wire
	// format. For interop testing and as an escape hatch; the commit
	// handshake is otherwise always advertised, because without it a
	// connection lost between RESTORED and the source's reaction can
	// leave the process running on both machines.
	NoCommit bool
}

// metrics resolves the registry the phase histograms observe into.
func (c Config) metrics() *obs.Registry {
	if c.Metrics != nil {
		return c.Metrics
	}
	return obs.Default
}

// observePhase records one completed session phase into the per-phase
// latency histogram ("session.phase." + name).
func (c Config) observePhase(name string, elapsed time.Duration) {
	c.metrics().Histogram("session.phase." + name).Observe(elapsed)
}

func (c Config) withDefaults() Config {
	if c.MinVersion == 0 {
		c.MinVersion = core.VersionMono
	}
	if c.MaxVersion == 0 {
		c.MaxVersion = core.VersionSectioned
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 << 10
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.PrecopyRounds <= 0 {
		c.PrecopyRounds = 3
	}
	if c.DirtyThreshold <= 0 {
		c.DirtyThreshold = 16
	}
	return c
}

// Params is the negotiated outcome both sides commit to before transfer.
type Params struct {
	// Version is the agreed envelope version (selects the Path).
	Version uint32
	// ChunkSize and Window shape the streamed path; both sides hold the
	// same values, so no operator flag-matching is needed.
	ChunkSize int
	Window    int
	// Trace is the session span the selected path hangs its phase spans
	// off. Local plumbing only — it is never marshalled, and each side
	// sets its own from Config.Trace after negotiation.
	Trace *obs.Span
	// Recorder is the flight recorder the selected path's stream layer
	// reports robustness events to. Local plumbing like Trace.
	Recorder *obs.FlightRecorder
	// Warm selects the warm transfer path: both sides advertised capWarm
	// and the negotiated version is sectioned. Crosses the wire as the
	// ACCEPT capability bit; everything below is local plumbing.
	Warm bool
	// Store is this side's checkpoint store (set only when Warm).
	Store *store.Store
	// Program names the checkpoint ref the warm path chains under.
	Program string
	// WarmResult, when non-nil, is filled by the warm path with the
	// dedup outcome of the transfer.
	WarmResult *WarmStats
	// Live selects the pre-copy transfer path: both sides advertised
	// capLive and the sectioned negotiation upgraded to core.VersionLive.
	// Crosses the wire as the ACCEPT capability bit; everything below is
	// local plumbing.
	Live bool
	// LiveResult, when non-nil, is filled by the live path with the
	// per-round outcome of the transfer.
	LiveResult *LiveStats
	// Commit selects the commit handshake: both sides advertised
	// capCommit, so the responder holds the restored process inactive
	// until the initiator's COMMIT acknowledges the handoff. Crosses the
	// wire as the ACCEPT capability bit.
	Commit bool
}

// offer is the decoded OFFER message.
type offer struct {
	minVer, maxVer uint32
	digest         uint32
	program        string
	machine        string
	chunk, window  uint32
	// traceID and spanID carry the initiator's distributed-trace identity
	// (zero when the initiator does not trace or predates the extension).
	traceID, spanID uint64
	// caps is the initiator's capability set (zero when absent from the
	// wire — a legacy peer or one with nothing to advertise).
	caps uint32
}

// negotiate intersects an initiator's offer with the responder's posture:
// the highest version both speak, the smaller chunk size, the smaller
// window.
func negotiate(o offer, srv Config) (Params, error) {
	srv = srv.withDefaults()
	version := o.maxVer
	if srv.MaxVersion < version {
		version = srv.MaxVersion
	}
	if version < o.minVer || version < srv.MinVersion {
		return Params{}, fmt.Errorf("%w: initiator speaks %d..%d, responder %d..%d",
			ErrNoVersion, o.minVer, o.maxVer, srv.MinVersion, srv.MaxVersion)
	}
	p := Params{Version: version, ChunkSize: srv.ChunkSize, Window: srv.Window}
	if c := int(o.chunk); c > 0 && c < p.ChunkSize {
		p.ChunkSize = c
	}
	if w := int(o.window); w > 0 && w < p.Window {
		p.Window = w
	}
	return p, nil
}

// message is a decoded session-layer message.
type message struct {
	typ    uint32
	offer  offer  // OFFER
	params Params // ACCEPT
	reason string // REJECT
	bytes  uint64 // RESTORED
	spans  []byte // RESTORED: optional JSON-encoded responder span tree
}

func marshalOffer(o offer) []byte {
	e := xdr.NewEncoder(64 + len(o.program) + len(o.machine))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgOffer)
	e.PutUint32(o.minVer)
	e.PutUint32(o.maxVer)
	e.PutUint32(o.digest)
	e.PutString(o.program)
	e.PutString(o.machine)
	e.PutUint32(o.chunk)
	e.PutUint32(o.window)
	e.PutUint64(o.traceID)
	e.PutUint64(o.spanID)
	if o.caps != 0 {
		// Trailing and optional, like the trace pair: a capability-less
		// offer stays byte-identical to the pre-store wire format.
		e.PutUint32(o.caps)
	}
	return e.Bytes()
}

func marshalAccept(p Params) []byte {
	e := xdr.NewEncoder(24)
	e.PutUint32(sessionMagic)
	e.PutUint32(msgAccept)
	e.PutUint32(p.Version)
	e.PutUint32(uint32(p.ChunkSize))
	e.PutUint32(uint32(p.Window))
	var caps uint32
	if p.Warm {
		caps |= capWarm
	}
	if p.Live {
		caps |= capLive
	}
	if p.Commit {
		caps |= capCommit
	}
	if caps != 0 {
		// Trailing and optional: legacy initiators stop after window.
		e.PutUint32(caps)
	}
	return e.Bytes()
}

func marshalCommit() []byte {
	e := xdr.NewEncoder(8)
	e.PutUint32(sessionMagic)
	e.PutUint32(msgCommit)
	return e.Bytes()
}

func marshalReject(reason string) []byte {
	e := xdr.NewEncoder(12 + len(reason))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgReject)
	e.PutString(reason)
	return e.Bytes()
}

func marshalRestored(bytes uint64, spans []byte) []byte {
	e := xdr.NewEncoder(16 + len(spans))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgRestored)
	e.PutUint64(bytes)
	if len(spans) > 0 {
		// Trailing and optional: pre-extension parsers stop after bytes.
		e.PutOpaque(spans)
	}
	return e.Bytes()
}

// parseMessage decodes one session-layer message.
func parseMessage(raw []byte) (message, error) {
	d := xdr.NewDecoder(raw)
	magic, err := d.Uint32()
	if err != nil || magic != sessionMagic {
		return message{}, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	typ, err := d.Uint32()
	if err != nil {
		return message{}, fmt.Errorf("%w: missing type", ErrProtocol)
	}
	m := message{typ: typ}
	switch typ {
	case msgOffer:
		err = parseOffer(d, &m.offer)
	case msgAccept:
		var ver, chunk, window uint32
		if ver, err = d.Uint32(); err != nil {
			break
		}
		if chunk, err = d.Uint32(); err != nil {
			break
		}
		if window, err = d.Uint32(); err != nil {
			break
		}
		m.params = Params{Version: ver, ChunkSize: int(chunk), Window: int(window)}
		if d.Remaining() > 0 {
			var caps uint32
			if caps, err = d.Uint32(); err != nil {
				break
			}
			m.params.Warm = caps&capWarm != 0
			m.params.Live = caps&capLive != 0
			m.params.Commit = caps&capCommit != 0
		}
	case msgReject:
		m.reason, err = d.String()
	case msgRestored:
		if m.bytes, err = d.Uint64(); err != nil {
			break
		}
		if d.Remaining() > 0 {
			m.spans, err = d.Opaque()
		}
	case msgCommit:
		// No payload: the frame itself is the acknowledgement.
	default:
		return message{}, fmt.Errorf("%w: unknown message type %d", ErrProtocol, typ)
	}
	if err != nil {
		return message{}, fmt.Errorf("%w: truncated %d message", ErrProtocol, typ)
	}
	return m, nil
}

func parseOffer(d *xdr.Decoder, o *offer) error {
	var err error
	if o.minVer, err = d.Uint32(); err != nil {
		return err
	}
	if o.maxVer, err = d.Uint32(); err != nil {
		return err
	}
	if o.digest, err = d.Uint32(); err != nil {
		return err
	}
	if o.program, err = d.String(); err != nil {
		return err
	}
	if o.machine, err = d.String(); err != nil {
		return err
	}
	if o.chunk, err = d.Uint32(); err != nil {
		return err
	}
	if o.window, err = d.Uint32(); err != nil {
		return err
	}
	if d.Remaining() == 0 {
		// Legacy offer: ends after window, no trace context.
		return nil
	}
	if o.traceID, err = d.Uint64(); err != nil {
		return err
	}
	if o.spanID, err = d.Uint64(); err != nil {
		return err
	}
	if d.Remaining() == 0 {
		// Pre-capability offer: ends after the trace pair.
		return nil
	}
	o.caps, err = d.Uint32()
	return err
}
