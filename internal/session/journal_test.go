package session

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/vm"
)

// lockedBuffer lets the concurrently-writing daemon journal share a
// buffer with test assertions.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestJournalRecordsAndFlightCrossReference is the journal/flight
// interplay regression: a failed traced session's journal record and its
// flight-recorder dump must carry the same trace ID — greppable as
// flight-<traceID>.json straight from the journal line. It also pins the
// journal record shape for successes (how, bytes, durations) and that a
// set Journal replaces the ad-hoc Logf lifecycle lines.
func TestJournalRecordsAndFlightCrossReference(t *testing.T) {
	e := newListEngine(t)
	reg := NewRegistry()
	reg.Add("list", e)
	dir := t.TempDir()
	var jbuf lockedBuffer
	var logs lockedBuffer
	d := &Daemon{
		Registry: reg, Mach: arch.SPARC20, Metrics: obs.NewRegistry(),
		TraceDir: dir,
		Journal:  slog.New(slog.NewJSONHandler(&jbuf, nil)),
		Logf:     func(format string, args ...any) { jlogf(&logs, format, args...) },
	}
	addr, served := daemonFixture(t, d)

	if _, err := migrateTo(t, addr, e, Config{}); err != nil {
		t.Fatalf("successful migration failed: %v", err)
	}

	// A traced client offering an unregistered program fails the
	// handshake; the daemon adopts the trace, so the flight dump is named
	// by the trace ID.
	unregistered, cerr := core.NewEngine(`int main() { migrate_here(); return 7; }`, minic.PollPolicy{})
	if cerr != nil {
		t.Fatal(cerr)
	}
	tracer := obs.NewTracer()
	root := tracer.Start("session")
	if _, err := migrateTo(t, addr, unregistered, Config{Trace: root}); err == nil {
		t.Fatal("migration of unregistered program succeeded")
	}
	root.End()
	d.Shutdown()
	if err := <-served; err != nil {
		t.Fatal(err)
	}

	var restored, failed map[string]any
	scan := bufio.NewScanner(strings.NewReader(jbuf.String()))
	for scan.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(scan.Bytes(), &rec); err != nil {
			t.Fatalf("journal line not JSON: %v: %s", err, scan.Text())
		}
		switch rec["msg"] {
		case "session.restored":
			restored = rec
		case "session.failed":
			failed = rec
		}
	}
	if restored == nil || failed == nil {
		t.Fatalf("journal missing records:\n%s", jbuf.String())
	}
	if restored["how"] != "sectioned v3" || restored["program"] != "list" {
		t.Errorf("restored record = %v", restored)
	}
	if restored["bytes"].(float64) <= 0 || restored["elapsed_us"].(float64) <= 0 {
		t.Errorf("restored record missing size/timing: %v", restored)
	}
	if failed["fail_class"] != "negotiation" || failed["level"] != "ERROR" {
		t.Errorf("failed record = %v", failed)
	}

	// The cross-reference: trace attr, flight attr, and the dump on disk
	// must all agree on the trace ID.
	traceID, _ := failed["trace"].(string)
	flight, _ := failed["flight"].(string)
	if traceID == "" || flight == "" {
		t.Fatalf("failed record missing trace/flight attrs: %v", failed)
	}
	if want := "flight-" + traceID + ".json"; filepath.Base(flight) != want {
		t.Errorf("flight dump = %q, want basename %q", flight, want)
	}
	if !strings.Contains(jbuf.String(), "flight-"+traceID+".json") {
		t.Errorf("journal not greppable for the dump name:\n%s", jbuf.String())
	}
	raw, err := os.ReadFile(flight)
	if err != nil {
		t.Fatalf("journal points at a missing dump: %v", err)
	}
	var dump obs.FlightData
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.TraceID != traceID {
		t.Errorf("dump trace ID %q != journal trace %q", dump.TraceID, traceID)
	}

	// With a journal set, the ad-hoc lifecycle lines stay out of Logf
	// (the free-form diagnostics — flight recording — remain).
	if strings.Contains(logs.String(), ": restored \"list\"") ||
		strings.Contains(logs.String(), ": failed (") {
		t.Errorf("journalled daemon still wrote ad-hoc lifecycle lines:\n%s", logs.String())
	}
	if !strings.Contains(logs.String(), "flight recording") {
		t.Errorf("free-form diagnostics lost:\n%s", logs.String())
	}
}

func jlogf(buf *lockedBuffer, format string, args ...any) {
	buf.mu.Lock()
	defer buf.mu.Unlock()
	buf.buf.WriteString(strings.TrimRight(fmt.Sprintf(format, args...), "\n") + "\n")
}

// TestInflightAndPoolGauges drives the worker-pool occupancy telemetry:
// session.pool.capacity reflects MaxConcurrent, session.inflight rises
// while a session (including its OnRestored run) is in flight, and both
// failure and success paths return the gauge to zero.
func TestInflightAndPoolGauges(t *testing.T) {
	e := newListEngine(t)
	reg := NewRegistry()
	reg.Add("list", e)
	metrics := obs.NewRegistry()
	release := make(chan struct{})
	d := &Daemon{
		Registry: reg, Mach: arch.SPARC20, MaxConcurrent: 3, Metrics: metrics,
		OnRestored: func(Info, *vm.Process, core.Timing) { <-release },
	}
	addr, served := daemonFixture(t, d)

	waitGauge := func(name string, want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if metrics.Gauge(name).Value() == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("gauge %s = %d, want %d", name, metrics.Gauge(name).Value(), want)
	}

	waitGauge("session.pool.capacity", 3)

	// The client returns once COMMIT is sent; the worker is still parked
	// in OnRestored, so the in-flight gauge must read 1 until release.
	if _, err := migrateTo(t, addr, e, Config{}); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	waitGauge("session.inflight", 1)
	close(release)
	waitGauge("session.inflight", 0)

	// Failure path: the handshake rejects an unregistered program; the
	// gauge must come back down even though the session never restored.
	unregistered, cerr := core.NewEngine(`int main() { migrate_here(); return 9; }`, minic.PollPolicy{})
	if cerr != nil {
		t.Fatal(cerr)
	}
	if _, err := migrateTo(t, addr, unregistered, Config{}); err == nil {
		t.Fatal("migration of unregistered program succeeded")
	}
	waitGauge("session.inflight", 0)

	d.Shutdown()
	if err := <-served; err != nil {
		t.Fatal(err)
	}
	if n := metrics.Histogram("session.duration").Count(); n != 2 {
		t.Errorf("session.duration observed %d sessions, want 2 (success + failure)", n)
	}
}
