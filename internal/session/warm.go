package session

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/store"
	"repro/internal/vm"
	"repro/internal/xdr"
)

// WarmStats is the dedup outcome of one warm transfer: how much of the
// snapshot never crossed the wire because the destination's store already
// held it.
type WarmStats struct {
	// ManifestHash is the content address of the checkpoint the transfer
	// shipped; both stores hold it (and its chain position) afterwards.
	ManifestHash store.Hash
	// Sections is the snapshot's section count; SectionsSent of them had
	// bodies the destination lacked and were transferred.
	Sections     int
	SectionsSent int
	// SnapshotBytes is the full sectioned snapshot size a cold transfer
	// would have carried; WireBytes is what the warm path actually put on
	// the wire (manifest frame plus the wanted-section frame).
	SnapshotBytes int
	WireBytes     int
}

func (w WarmStats) String() string {
	return fmt.Sprintf("checkpoint %s: sent %d of %d sections, %d of %d bytes on the wire",
		w.ManifestHash.Short(), w.SectionsSent, w.Sections, w.WireBytes, w.SnapshotBytes)
}

// marshalManifest frames an encoded manifest as the warm path's MANIFEST
// message.
func marshalManifest(raw []byte) []byte {
	e := xdr.NewEncoder(12 + len(raw))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgManifest)
	e.PutOpaque(raw)
	return e.Bytes()
}

// marshalWant frames the responder's section-index request.
func marshalWant(want []uint32) []byte {
	e := xdr.NewEncoder(12 + 4*len(want))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgWant)
	e.PutUint32(uint32(len(want)))
	for _, i := range want {
		e.PutUint32(i)
	}
	return e.Bytes()
}

// marshalSections frames the wanted section bodies, each tagged with its
// manifest entry index. The capacity accounts for XDR padding so the
// frame is assembled in exactly one allocation — the bodies' only copy on
// the send path (they are store blobs, never aliased by the caller after
// the frame is built).
func marshalSections(indices []uint32, bodies [][]byte) []byte {
	n := 12
	for _, b := range bodies {
		n += 8 + (len(b)+3)&^3
	}
	e := xdr.NewEncoder(n)
	e.PutUint32(sessionMagic)
	e.PutUint32(msgSections)
	e.PutUint32(uint32(len(indices)))
	for i, idx := range indices {
		e.PutUint32(idx)
		e.PutOpaque(bodies[i])
	}
	return e.Bytes()
}

// recvWarm reads one warm-path message frame, checks its type, and reports
// the frame's wire size.
func recvWarm(t link.Transport, want uint32) (*xdr.Decoder, int, error) {
	raw, err := t.Recv()
	if err != nil {
		return nil, 0, fmt.Errorf("session: warm transfer read: %w", err)
	}
	d := xdr.NewDecoder(raw)
	magic, err := d.Uint32()
	if err != nil || magic != sessionMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	typ, err := d.Uint32()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: missing type", ErrProtocol)
	}
	if typ != want {
		return nil, 0, fmt.Errorf("%w: expected warm message type %d, got %d", ErrProtocol, want, typ)
	}
	return d, len(raw), nil
}

// warmPath is the store-assisted transfer: the initiator checkpoints the
// snapshot into its own store (dedup'd against its history) and ships the
// manifest; the responder answers with the indices of the section bodies
// its store lacks; one SECTIONS frame carries exactly those. Both stores
// end up holding the same checkpoint chained under the program's ref, and
// the responder restores from its store — re-verifying every content
// address on the way.
type warmPath struct{}

func (warmPath) Send(t link.Transport, e *core.Engine, src *arch.Machine, p *vm.Process, prm Params) (core.Timing, error) {
	p.Obs = prm.Trace
	snap, err := p.CaptureSections(0)
	if err != nil {
		return core.Timing{}, err
	}
	m, h, _, err := prm.Store.CheckpointRef(prm.Program, snap, e.Digest(), src.Name)
	if err != nil {
		return core.Timing{}, err
	}
	tx := prm.Trace.Child("transport")
	defer tx.End()
	txStart := time.Now()
	manifestFrame := marshalManifest(m.Encode())
	if err := t.Send(manifestFrame); err != nil {
		return core.Timing{}, fmt.Errorf("session: manifest send: %w", err)
	}
	d, _, err := recvWarm(t, msgWant)
	if err != nil {
		return core.Timing{}, err
	}
	count, err := d.Uint32()
	if err != nil || int(count) > len(m.Entries) {
		return core.Timing{}, fmt.Errorf("%w: malformed WANT", ErrProtocol)
	}
	indices := make([]uint32, count)
	bodies := make([][]byte, count)
	for i := range indices {
		idx, err := d.Uint32()
		if err != nil || int(idx) >= len(m.Entries) {
			return core.Timing{}, fmt.Errorf("%w: WANT index out of range", ErrProtocol)
		}
		body, err := prm.Store.GetBlob(m.Entries[idx].Hash)
		if err != nil {
			return core.Timing{}, err
		}
		indices[i], bodies[i] = idx, body
	}
	sectionsFrame := marshalSections(indices, bodies)
	if err := t.Send(sectionsFrame); err != nil {
		return core.Timing{}, fmt.Errorf("session: sections send: %w", err)
	}
	wire := len(manifestFrame) + len(sectionsFrame)
	tx.SetBytes(int64(wire))
	prm.Recorder.Record("session.warm", "sent checkpoint %s: %d of %d sections (%d bytes on wire, snapshot %d)",
		h.Short(), count, len(m.Entries), wire, len(snap))
	if prm.WarmResult != nil {
		*prm.WarmResult = WarmStats{
			ManifestHash:  h,
			Sections:      len(m.Entries),
			SectionsSent:  int(count),
			SnapshotBytes: len(snap),
			WireBytes:     wire,
		}
	}
	return core.Timing{Tx: time.Since(txStart), Bytes: wire}, nil
}

func (warmPath) Receive(t link.Transport, e *core.Engine, mach *arch.Machine, prm Params) (*vm.Process, core.Timing, error) {
	d, n, err := recvWarm(t, msgManifest)
	if err != nil {
		return nil, core.Timing{}, err
	}
	raw, err := d.Opaque()
	if err != nil {
		return nil, core.Timing{}, fmt.Errorf("%w: truncated MANIFEST", ErrProtocol)
	}
	wire := n
	m, err := store.DecodeManifest(raw)
	if err != nil {
		return nil, core.Timing{}, err
	}
	if m.ProgramDigest != e.Digest() {
		return nil, core.Timing{}, fmt.Errorf("%w: manifest has program digest %08x, registry matched %08x",
			core.ErrProgramMismatch, m.ProgramDigest, e.Digest())
	}
	want := prm.Store.Missing(m)
	if err := t.Send(marshalWant(want)); err != nil {
		return nil, core.Timing{}, fmt.Errorf("session: want send: %w", err)
	}
	wanted := make(map[uint32]bool, len(want))
	for _, i := range want {
		wanted[i] = true
	}
	d, n, err = recvWarm(t, msgSections)
	if err != nil {
		return nil, core.Timing{}, err
	}
	wire += n
	count, err := d.Uint32()
	if err != nil || int(count) != len(want) {
		return nil, core.Timing{}, fmt.Errorf("%w: SECTIONS carries %d bodies, wanted %d", ErrProtocol, count, len(want))
	}
	for i := uint32(0); i < count; i++ {
		idx, err := d.Uint32()
		if err != nil || !wanted[idx] {
			return nil, core.Timing{}, fmt.Errorf("%w: unexpected SECTIONS index", ErrProtocol)
		}
		delete(wanted, idx)
		body, err := d.Opaque()
		if err != nil {
			return nil, core.Timing{}, fmt.Errorf("%w: truncated SECTIONS body", ErrProtocol)
		}
		entry := m.Entries[idx]
		// The manifest promises a body with this content address; verify
		// before admitting it to the store so a damaged transfer surfaces
		// as corruption here, not at some later restore.
		if uint32(len(body)) != entry.Length || store.HashBytes(body) != entry.Hash {
			return nil, core.Timing{}, fmt.Errorf("%w: section %d body does not match its manifest entry",
				store.ErrCorrupt, idx)
		}
		if _, _, err := prm.Store.PutBlob(body); err != nil {
			return nil, core.Timing{}, err
		}
	}
	h, err := prm.Store.PutManifest(m)
	if err != nil {
		return nil, core.Timing{}, err
	}
	if err := prm.Store.SetRef(prm.Program, h); err != nil {
		return nil, core.Timing{}, err
	}
	snap, err := prm.Store.Materialize(h)
	if err != nil {
		return nil, core.Timing{}, err
	}
	prm.Recorder.Record("session.warm", "received checkpoint %s: %d of %d sections (%d bytes on wire, snapshot %d)",
		h.Short(), count, len(m.Entries), wire, len(snap))
	if prm.WarmResult != nil {
		*prm.WarmResult = WarmStats{
			ManifestHash:  h,
			Sections:      len(m.Entries),
			SectionsSent:  int(count),
			SnapshotBytes: len(snap),
			WireBytes:     wire,
		}
	}
	restoreStart := time.Now()
	p, err := vm.RestoreProcessObs(e.Prog, mach, snap, prm.Trace)
	if err != nil {
		return nil, core.Timing{}, err
	}
	return p, core.Timing{Restore: time.Since(restoreStart), Bytes: wire}, nil
}
