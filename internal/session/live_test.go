package session

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/vm"
	"repro/internal/workload"
)

// newMutatingEngine compiles the mutating-shards workload: nlists
// independent heap lists, one mutated per poll round. Exit 0 proves every
// mutation survived.
func newMutatingEngine(t *testing.T, rounds int) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(workload.MutatingShardsSource(4, 20, rounds), minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// stoppedLive runs the program on m to its first poll in NoAutoCapture
// mode — paused but still resumable, the state InitiateLive requires.
func stoppedLive(t *testing.T, e *core.Engine, m *arch.Machine) *vm.Process {
	t.Helper()
	p, err := e.NewProcess(m)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 50_000_000
	p.NoAutoCapture = true
	p.PollHook = func(_ *vm.Process, _ *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("setup: migrated=%v err=%v", res != nil && res.Migrated, err)
	}
	return p
}

// TestTransferLiveMatrix drives the live pre-copy protocol across the
// same five endianness/word-size pairs as TestTransferMatrix. After the
// transfer the source is still paused at its final round, so the restored
// process must re-collect to the byte-identical machine-independent state
// a stop-and-copy capture of that paused source produces — the v4
// correctness contract — and then run to completion.
func TestTransferLiveMatrix(t *testing.T) {
	pairs := []struct {
		src, dst *arch.Machine
	}{
		{arch.DEC5000, arch.SPARC20}, // LE ILP32 -> BE ILP32
		{arch.SPARC20, arch.AMD64},   // BE ILP32 -> LE LP64
		{arch.AMD64, arch.SPARCV9},   // LE LP64  -> BE LP64
		{arch.SPARCV9, arch.DEC5000}, // BE LP64  -> LE ILP32
		{arch.I386, arch.Alpha},      // LE ILP32 (packed doubles) -> LE LP64
	}
	for _, pr := range pairs {
		pr := pr
		t.Run(fmt.Sprintf("v4/%s_to_%s", pr.src.Name, pr.dst.Name), func(t *testing.T) {
			t.Parallel()
			e := newMutatingEngine(t, 8)
			p := stoppedLive(t, e, pr.src)
			// DirtyThreshold 1 keeps the loop iterating until the dirty
			// set stalls, so several delta rounds actually run.
			q, res, timing, err := TransferLive(e, "shards", p, pr.dst,
				Config{ChunkSize: 4096, Window: 8, PrecopyRounds: 3, DirtyThreshold: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Params.Version != core.VersionLive || !res.Params.Live {
				t.Fatalf("negotiated v%d live=%v, want v%d live", res.Params.Version, res.Params.Live, core.VersionLive)
			}
			st := res.Live
			if st == nil || len(st.Rounds) < 2 {
				t.Fatalf("live stats %+v, want at least round 0 + final", st)
			}
			if !st.Rounds[len(st.Rounds)-1].Final || st.Rounds[0].Final {
				t.Fatalf("final flags wrong across rounds: %+v", st.Rounds)
			}
			if st.Downtime <= 0 {
				t.Error("no downtime measured")
			}
			if st.StopReason == "" {
				t.Error("no stop reason recorded")
			}
			// Dedup must engage: later rounds re-ship only dirty sections.
			total := 0
			for _, r := range st.Rounds {
				total += r.Sections
			}
			if st.TotalSent() >= total {
				t.Errorf("sent %d of %d section instances; delta rounds reused nothing", st.TotalSent(), total)
			}
			if timing.Bytes == 0 || timing.Restore <= 0 {
				t.Errorf("timing %+v, want bytes and restore recorded", timing)
			}
			// The source is still paused at the final round's site; the
			// restored process must re-collect byte-identically.
			direct, err := p.CaptureSections(1)
			if err != nil {
				t.Fatal(err)
			}
			re, err := q.CaptureSections(1)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(re, direct) {
				t.Errorf("restored state on %s differs from stop-and-copy capture of the paused source (%d vs %d bytes)",
					pr.dst.Name, len(re), len(direct))
			}
			q.MaxSteps = 50_000_000
			r, err := q.Run()
			if err != nil {
				t.Fatal(err)
			}
			if r.Migrated || r.ExitCode != 0 {
				t.Errorf("restored run = %+v, want exit 0 (all mutations intact)", r)
			}
		})
	}
}

// TestLiveFallbackToLegacyResponder pins the compatibility contract: an
// InitiateLive against a responder that does not speak v4 degrades to the
// ordinary negotiated stop-and-copy transfer with byte-identical wire
// volume, and reports no live stats.
func TestLiveFallbackToLegacyResponder(t *testing.T) {
	e := newMutatingEngine(t, 8)

	// Baseline: a pure-legacy sectioned transfer of the same paused state.
	legacyP := stoppedLive(t, e, arch.DEC5000)
	_, legacyTiming, err := Transfer(e, "shards", legacyP, arch.SPARC20,
		Config{ChunkSize: 4096, Window: 8})
	if err != nil {
		t.Fatal(err)
	}

	p := stoppedLive(t, e, arch.DEC5000)
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add("shards", e)
	type rr struct {
		info Info
		q    *vm.Process
		err  error
	}
	c := make(chan rr, 1)
	go func() {
		// Responder without Live: negotiates plain sectioned.
		info, q, _, err := Respond(b, reg, arch.SPARC20, Config{ChunkSize: 4096, Window: 8})
		c <- rr{info, q, err}
	}()
	res, err := InitiateLive(a, e, p.Mach, "shards", p, Config{ChunkSize: 4096, Window: 8})
	r := <-c
	if err != nil || r.err != nil {
		t.Fatalf("fallback transfer: initiate=%v respond=%v", err, r.err)
	}
	if res.Params.Version != core.VersionSectioned || res.Params.Live || res.Live != nil {
		t.Fatalf("fallback negotiated %+v, want plain sectioned", res.Params)
	}
	if res.Timing.Bytes != legacyTiming.Bytes {
		t.Errorf("fallback wired %d bytes, pure-legacy wired %d — must be identical",
			res.Timing.Bytes, legacyTiming.Bytes)
	}
	runRestored(t, r.q, 0)
}

// TestLiveDegenerateSingleRound checks the Path-interface form: a plain
// Transfer with Live on both sides runs one final round — no overlap, but
// the same wire protocol and a correct restore.
func TestLiveDegenerateSingleRound(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.AMD64)
	q, timing, err := Transfer(e, "list", p, arch.SPARCV9,
		Config{ChunkSize: 4096, Window: 8, Live: true})
	if err != nil {
		t.Fatal(err)
	}
	if timing.Bytes == 0 {
		t.Error("no bytes recorded")
	}
	runRestored(t, q, listExit)
}

// TestLiveSourceExited covers the abort: when the source runs to
// completion between rounds there is nothing to migrate — the initiator
// reports ErrSourceExited and the responder sees the abort notice.
func TestLiveSourceExited(t *testing.T) {
	e := newMutatingEngine(t, 1) // one poll: the resume after round 0 exits
	p := stoppedLive(t, e, arch.AMD64)
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add("shards", e)
	respErr := make(chan error, 1)
	go func() {
		_, _, _, err := Respond(b, reg, arch.SPARC20, Config{Live: true})
		respErr <- err
	}()
	res, err := InitiateLive(a, e, p.Mach, "shards", p, Config{Live: true})
	if !errors.Is(err, ErrSourceExited) {
		t.Fatalf("initiate err = %v, want ErrSourceExited", err)
	}
	if res == nil || res.Live == nil || len(res.Live.Rounds) == 0 {
		t.Fatalf("no partial live stats returned: %+v", res)
	}
	if rerr := <-respErr; !errors.Is(rerr, ErrLiveAborted) {
		t.Fatalf("responder err = %v, want ErrLiveAborted", rerr)
	}
}

// TestLiveWarmCompose checks the store composition: with a destination
// store already holding a checkpoint of the paused state, a live round 0
// resolves the clean sections locally and ships only what changed since.
func TestLiveWarmCompose(t *testing.T) {
	e := newMutatingEngine(t, 8)
	dstStore := openTestStore(t)

	// Seed the destination store with a checkpoint of the first pause.
	seed := stoppedLive(t, e, arch.DEC5000)
	snap, err := seed.CaptureSections(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := dstStore.CheckpointRef("shards", snap, e.Digest(), arch.DEC5000.Name); err != nil {
		t.Fatal(err)
	}

	// A fresh process paused at the same point migrates live; round 0's
	// manifest must resolve every section from the seeded store.
	p := stoppedLive(t, e, arch.DEC5000)
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add("shards", e)
	type rr struct {
		info Info
		q    *vm.Process
		err  error
	}
	c := make(chan rr, 1)
	go func() {
		info, q, _, err := Respond(b, reg, arch.SPARC20,
			Config{Live: true, Store: dstStore, PrecopyRounds: 3, DirtyThreshold: 1})
		c <- rr{info, q, err}
	}()
	res, err := InitiateLive(a, e, p.Mach, "shards", p,
		Config{Live: true, PrecopyRounds: 3, DirtyThreshold: 1})
	r := <-c
	if err != nil || r.err != nil {
		t.Fatalf("live transfer: initiate=%v respond=%v", err, r.err)
	}
	st := res.Live
	if st == nil || len(st.Rounds) == 0 {
		t.Fatal("no live stats")
	}
	if st.Rounds[0].SectionsSent != 0 {
		t.Errorf("round 0 shipped %d of %d sections despite a warm destination store",
			st.Rounds[0].SectionsSent, st.Rounds[0].Sections)
	}
	runRestored(t, r.q, 0)
}
