package session

// The live pre-copy transfer path (envelope version 4).
//
// A stop-and-copy migration pays capture + wire + restore as downtime.
// The live path instead overlaps almost all of that with execution:
//
//	round 0     full image ships while the source executes to its next
//	            poll point
//	round 1..N  only the sections the dirty set touched re-encode; each
//	            round ships while the source runs on
//	final       the source stays paused; the last (small) delta is all
//	            the downtime window has to move
//
// Each round is one DELTA/WANT/BODIES exchange: the DELTA manifest lists
// every section of the paused state as (kind, id, sha256); the responder
// answers WANT with the indices whose bodies it cannot resolve from the
// session's earlier rounds or from its checkpoint store; one BODIES frame
// carries exactly those. The final round's manifest therefore assembles —
// from cached and freshly received bodies — into a v3 snapshot
// byte-identical to a stop-and-copy sectioned capture of the same paused
// state, and restoration is the ordinary sectioned restore.
//
// The loop converges (or is cut off) on the source: the next round is
// final once the unshipped dirty set drops to Config.DirtyThreshold
// blocks, Config.PrecopyRounds deltas have shipped, or the dirty set
// stops shrinking (a write rate the link cannot outrun — more rounds
// would burn bandwidth without buying downtime). In the worst case the
// transfer degrades to a full copy plus one delta round, never worse.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/vm"
	"repro/internal/xdr"
)

// liveFinal flags a DELTA manifest as the final round: the source is
// paused for good, and the responder restores once the round completes.
const liveFinal uint32 = 1 << 0

// maxLiveSections bounds a DELTA manifest's section count; real states
// have tens of sections, so anything near the cap is a malformed frame,
// rejected before it sizes an allocation.
const maxLiveSections = 1 << 20

// LiveRoundStats describes one pre-copy round as seen by either side.
type LiveRoundStats struct {
	// Round numbers the rounds from 0 (the full image).
	Round int
	// DirtyBlocks is the dirty-set size the source observed entering the
	// round (0 for round 0).
	DirtyBlocks int
	// Sections is the manifest length; SectionsSent of them had bodies
	// the responder could not resolve and crossed the wire.
	Sections     int
	SectionsSent int
	// Bytes is the wire size of the round's sent frames (manifest plus
	// bodies on the source, want on the responder side is excluded —
	// matching the warm path's accounting).
	Bytes int
	// Final marks the round the source stayed paused for.
	Final bool
}

// LiveStats is the outcome of one live transfer.
type LiveStats struct {
	// Rounds holds one entry per pre-copy round, in order.
	Rounds []LiveRoundStats
	// SnapshotBytes is the assembled final snapshot's size — what a
	// stop-and-copy transfer of the paused state would have carried in
	// section bodies alone; WireBytes is the cumulative wire size of
	// every round.
	SnapshotBytes int
	WireBytes     int
	// Downtime is the source-measured window from the final pause to the
	// responder's RESTORED confirmation (zero on the responder side).
	Downtime time.Duration
	// StopReason records why the loop ended: "threshold" (dirty set at or
	// below the configured floor), "rounds" (round budget spent), or
	// "stalled" (dirty set stopped shrinking).
	StopReason string
}

// TotalSent sums the sections that crossed the wire over all rounds.
func (s *LiveStats) TotalSent() int {
	n := 0
	for _, r := range s.Rounds {
		n += r.SectionsSent
	}
	return n
}

// marshalDelta frames one round's section manifest.
func marshalDelta(round uint32, flags uint32, dirtyBlocks int, secs []vm.LiveSection) []byte {
	e := xdr.NewEncoder(24 + len(secs)*(8+store.HashSize))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgDelta)
	e.PutUint32(round)
	e.PutUint32(flags)
	e.PutUint32(uint32(dirtyBlocks))
	e.PutUint32(uint32(len(secs)))
	for _, s := range secs {
		e.PutUint32(uint32(s.Kind))
		e.PutUint32(s.ID)
		e.PutFixedOpaque(s.Hash[:])
	}
	return e.Bytes()
}

// marshalDeltaWant frames the responder's body request.
func marshalDeltaWant(want []uint32) []byte {
	e := xdr.NewEncoder(12 + 4*len(want))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgDeltaWant)
	e.PutUint32(uint32(len(want)))
	for _, i := range want {
		e.PutUint32(i)
	}
	return e.Bytes()
}

// marshalDeltaBodies frames the wanted section bodies, each tagged with
// its manifest index. Sized for one allocation like the warm path's
// SECTIONS frame.
func marshalDeltaBodies(indices []uint32, secs []vm.LiveSection) []byte {
	n := 12
	for _, idx := range indices {
		n += 8 + (len(secs[idx].Body)+3)&^3
	}
	e := xdr.NewEncoder(n)
	e.PutUint32(sessionMagic)
	e.PutUint32(msgDeltaBodies)
	e.PutUint32(uint32(len(indices)))
	for _, idx := range indices {
		e.PutUint32(idx)
		e.PutOpaque(secs[idx].Body)
	}
	return e.Bytes()
}

// marshalLiveAbort frames the source's stand-down notice.
func marshalLiveAbort(reason string) []byte {
	e := xdr.NewEncoder(12 + len(reason))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgLiveAbort)
	e.PutString(reason)
	return e.Bytes()
}

// recvLive reads one live-path frame and checks its type against want;
// a LIVE_ABORT is surfaced as ErrLiveAborted wherever a round message was
// expected.
func recvLive(t link.Transport, want uint32) (*xdr.Decoder, int, error) {
	raw, err := t.Recv()
	if err != nil {
		return nil, 0, fmt.Errorf("session: live transfer read: %w", err)
	}
	d := xdr.NewDecoder(raw)
	magic, err := d.Uint32()
	if err != nil || magic != sessionMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	typ, err := d.Uint32()
	if err != nil {
		return nil, 0, fmt.Errorf("%w: missing type", ErrProtocol)
	}
	if typ == msgLiveAbort && want != msgLiveAbort {
		reason, rerr := d.String()
		if rerr != nil {
			reason = "(unreadable reason)"
		}
		return nil, 0, fmt.Errorf("%w: %s", ErrLiveAborted, reason)
	}
	if typ != want {
		return nil, 0, fmt.Errorf("%w: expected live message type %d, got %d", ErrProtocol, want, typ)
	}
	return d, len(raw), nil
}

// sendLiveRound runs the source half of one DELTA/WANT/BODIES exchange
// and appends the round's accounting to st.
func sendLiveRound(t link.Transport, r *vm.LiveRound, final bool, prm Params, st *LiveStats) error {
	round := uint32(len(st.Rounds))
	var flags uint32
	if final {
		flags |= liveFinal
	}
	deltaFrame := marshalDelta(round, flags, r.DirtyBlocks, r.Sections)
	if err := t.Send(deltaFrame); err != nil {
		return fmt.Errorf("session: delta send: %w", err)
	}
	d, _, err := recvLive(t, msgDeltaWant)
	if err != nil {
		return err
	}
	count, err := d.Uint32()
	if err != nil || int(count) > len(r.Sections) {
		return fmt.Errorf("%w: malformed delta WANT", ErrProtocol)
	}
	indices := make([]uint32, count)
	for i := range indices {
		idx, err := d.Uint32()
		if err != nil || int(idx) >= len(r.Sections) {
			return fmt.Errorf("%w: delta WANT index out of range", ErrProtocol)
		}
		indices[i] = idx
	}
	bodiesFrame := marshalDeltaBodies(indices, r.Sections)
	if err := t.Send(bodiesFrame); err != nil {
		return fmt.Errorf("session: delta bodies send: %w", err)
	}
	wire := len(deltaFrame) + len(bodiesFrame)
	st.Rounds = append(st.Rounds, LiveRoundStats{
		Round:        int(round),
		DirtyBlocks:  r.DirtyBlocks,
		Sections:     len(r.Sections),
		SectionsSent: int(count),
		Bytes:        wire,
		Final:        final,
	})
	st.WireBytes += wire
	prm.Recorder.Record("session.live", "round %d%s: dirty %d blocks, sent %d of %d sections (%d bytes on wire)",
		round, finalTag(final), r.DirtyBlocks, count, len(r.Sections), wire)
	return nil
}

func finalTag(final bool) string {
	if final {
		return " (final)"
	}
	return ""
}

// livePath is the negotiated-path adapter for version 4. Its Send is the
// degenerate single-round drive for an already-paused process — correct,
// byte-identical on the destination, but with nothing overlapped; the
// real pre-copy loop lives in InitiateLive, which needs control of the
// source's execution between rounds and so cannot sit behind the
// path-agnostic Send signature. Receive is the full responder loop either
// way: it serves however many rounds the source drives.
type livePath struct{}

func (livePath) Send(t link.Transport, e *core.Engine, src *arch.Machine, p *vm.Process, prm Params) (core.Timing, error) {
	p.Obs = prm.Trace
	lc := p.NewLiveCapture(0)
	defer lc.Close()
	r, err := lc.Round()
	if err != nil {
		return core.Timing{}, err
	}
	tx := prm.Trace.Child("transport")
	defer tx.End()
	txStart := time.Now()
	st := prm.LiveResult
	if st == nil {
		st = new(LiveStats)
	}
	if err := sendLiveRound(t, r, true, prm, st); err != nil {
		return core.Timing{}, err
	}
	st.SnapshotBytes = r.Bytes
	st.StopReason = "threshold"
	tx.SetBytes(int64(st.WireBytes))
	return core.Timing{Tx: time.Since(txStart), Bytes: st.WireBytes}, nil
}

func (livePath) Receive(t link.Transport, e *core.Engine, mach *arch.Machine, prm Params) (*vm.Process, core.Timing, error) {
	st := prm.LiveResult
	if st == nil {
		st = new(LiveStats)
	}
	// Bodies received (or resolved) in earlier rounds serve later
	// manifests: a section whose hash the source re-announces unchanged
	// never crosses the wire twice.
	cache := make(map[store.Hash][]byte)
	wire := 0
	for {
		d, n, err := recvLive(t, msgDelta)
		if err != nil {
			return nil, core.Timing{}, err
		}
		wire += n
		var round, flags, dirty, count uint32
		if round, err = d.Uint32(); err == nil {
			if flags, err = d.Uint32(); err == nil {
				if dirty, err = d.Uint32(); err == nil {
					count, err = d.Uint32()
				}
			}
		}
		if err != nil || count > maxLiveSections {
			return nil, core.Timing{}, fmt.Errorf("%w: malformed DELTA manifest", ErrProtocol)
		}
		type liveEntry struct {
			kind uint32
			id   uint32
			hash store.Hash
		}
		entries := make([]liveEntry, count)
		for i := range entries {
			if entries[i].kind, err = d.Uint32(); err != nil {
				return nil, core.Timing{}, fmt.Errorf("%w: truncated DELTA entry", ErrProtocol)
			}
			if entries[i].id, err = d.Uint32(); err != nil {
				return nil, core.Timing{}, fmt.Errorf("%w: truncated DELTA entry", ErrProtocol)
			}
			h, err := d.FixedOpaque(store.HashSize)
			if err != nil {
				return nil, core.Timing{}, fmt.Errorf("%w: truncated DELTA entry", ErrProtocol)
			}
			copy(entries[i].hash[:], h)
		}
		// Resolve every hash we can locally — this session's earlier
		// rounds first, then the checkpoint store (the warm-compose case:
		// a component unchanged since the last stored checkpoint skips
		// the wire even in round 0).
		want := make([]uint32, 0, len(entries))
		for i, en := range entries {
			if _, ok := cache[en.hash]; ok {
				continue
			}
			if prm.Store != nil && prm.Store.HasBlob(en.hash) {
				body, err := prm.Store.GetBlob(en.hash)
				if err == nil {
					cache[en.hash] = body
					continue
				}
			}
			want = append(want, uint32(i))
		}
		if err := t.Send(marshalDeltaWant(want)); err != nil {
			return nil, core.Timing{}, fmt.Errorf("session: delta want send: %w", err)
		}
		wanted := make(map[uint32]bool, len(want))
		for _, i := range want {
			wanted[i] = true
		}
		d, n, err = recvLive(t, msgDeltaBodies)
		if err != nil {
			return nil, core.Timing{}, err
		}
		wire += n
		bcount, err := d.Uint32()
		if err != nil || int(bcount) != len(want) {
			return nil, core.Timing{}, fmt.Errorf("%w: BODIES carries %d sections, wanted %d", ErrProtocol, bcount, len(want))
		}
		for i := uint32(0); i < bcount; i++ {
			idx, err := d.Uint32()
			if err != nil || !wanted[idx] {
				return nil, core.Timing{}, fmt.Errorf("%w: unexpected BODIES index", ErrProtocol)
			}
			delete(wanted, idx)
			body, err := d.Opaque()
			if err != nil {
				return nil, core.Timing{}, fmt.Errorf("%w: truncated BODIES section", ErrProtocol)
			}
			// The manifest promised a body with this content address;
			// verify before admitting it so a damaged round surfaces here,
			// not at restore.
			if store.HashBytes(body) != entries[idx].hash {
				return nil, core.Timing{}, fmt.Errorf("%w: delta section %d body does not match its manifest hash",
					store.ErrCorrupt, idx)
			}
			cache[entries[idx].hash] = body
			if prm.Store != nil {
				if _, _, err := prm.Store.PutBlob(body); err != nil {
					return nil, core.Timing{}, err
				}
			}
		}
		final := flags&liveFinal != 0
		st.Rounds = append(st.Rounds, LiveRoundStats{
			Round:        int(round),
			DirtyBlocks:  int(dirty),
			Sections:     len(entries),
			SectionsSent: len(want),
			Bytes:        n, // the bodies frame dominates the responder's received volume
			Final:        final,
		})
		prm.Recorder.Record("session.live", "round %d%s: dirty %d blocks, received %d of %d sections (%d bytes)",
			round, finalTag(final), dirty, len(want), len(entries), n)
		if !final {
			continue
		}
		// The final manifest assembles into a v3 snapshot byte-identical
		// to a stop-and-copy capture of the source's paused state.
		secs := make([]snapshot.Section, len(entries))
		for i, en := range entries {
			secs[i] = snapshot.Section{Kind: snapshot.Kind(en.kind), ID: en.id, Body: cache[en.hash]}
		}
		snap := snapshot.Encode(secs)
		st.SnapshotBytes = len(snap)
		st.WireBytes = wire
		restoreStart := time.Now()
		p, err := vm.RestoreProcessObs(e.Prog, mach, snap, prm.Trace)
		if err != nil {
			return nil, core.Timing{}, err
		}
		return p, core.Timing{Restore: time.Since(restoreStart), Bytes: wire}, nil
	}
}

// InitiateLive negotiates and drives a live pre-copy migration of p over
// t. The process must be stopped at a poll point in NoAutoCapture mode
// (vm.Process.NoAutoCapture with a PollHook that fired): between rounds
// the driver resumes it, so execution overlaps every transfer except the
// final round. Convergence follows cfg.PrecopyRounds and
// cfg.DirtyThreshold; see the package comment for the loop.
//
// When the responder does not speak version 4 the migration silently
// falls back to the best negotiated stop-and-copy path from the current
// pause — same bytes on the destination, just without the overlap. If
// the source process runs to completion between rounds there is nothing
// left to migrate: the responder is told to stand down and ErrSourceExited
// is returned alongside a Result carrying the rounds shipped so far.
func InitiateLive(t link.Transport, e *core.Engine, src *arch.Machine, program string, p *vm.Process, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	cfg.Live = true
	prm, tc, err := initiateHandshake(t, e, src, program, cfg)
	if err != nil {
		return nil, err
	}
	path, err := pathFor(prm)
	if err != nil {
		return nil, err
	}
	if !prm.Live {
		// Legacy responder: plain stop-and-copy through whatever was
		// negotiated, from the state the process is paused at now.
		cfg.Recorder.Record("session.live", "responder speaks v%d without live; stop-and-copy fallback", prm.Version)
		txStart := time.Now()
		timing, err := path.Send(t, e, src, p, prm)
		if err != nil {
			cfg.Recorder.Record("session.fail", "transfer: %v", err)
			return nil, err
		}
		timing.Collect = p.CaptureStats().Elapsed
		cfg.observePhase("collect", timing.Collect)
		cfg.observePhase("transport", time.Since(txStart))
		return awaitRestored(t, cfg, prm, timing, tc)
	}

	p.Obs = prm.Trace
	st := prm.LiveResult
	reg := cfg.metrics()
	tx := prm.Trace.Child("transport")
	txStart := time.Now()
	lc := p.NewLiveCapture(0)
	defer lc.Close()

	r, err := lc.Round()
	if err != nil {
		tx.End()
		return nil, err
	}
	var stopTime time.Time
	prevDirty := int(^uint(0) >> 1)
	for {
		// Ship the round while the source executes to its next poll; the
		// sender goroutine touches only the round's immutable sections,
		// never the process.
		sendErr := make(chan error, 1)
		go func(r *vm.LiveRound) { sendErr <- sendLiveRound(t, r, false, prm, st) }(r)
		res, runErr := p.ResumeRun()
		serr := <-sendErr
		reg.Counter("session.precopy.rounds").Inc()
		if len(st.Rounds) > 0 {
			reg.Counter("session.precopy.bytes").Add(int64(st.Rounds[len(st.Rounds)-1].Bytes))
		}
		if runErr != nil {
			tx.End()
			return nil, runErr
		}
		stopTime = time.Now()
		if !res.Migrated {
			// The source ran to completion between rounds: the finished
			// local run IS the surviving copy, so ErrSourceExited wins no
			// matter what the wire did meanwhile. Stand the responder down
			// best-effort — a dead transport discards the partial restore
			// on its own (the responder classifies it as a transport
			// failure), and a failed abort send must not turn a completed
			// execution into a rollback attempt on a process that has
			// nothing left to resume.
			tx.End()
			cfg.Recorder.Record("session.live", "source exited (code %d) after %d rounds; aborting", res.ExitCode, len(st.Rounds))
			if serr == nil {
				serr = t.Send(marshalLiveAbort(fmt.Sprintf("source ran to completion (exit %d)", res.ExitCode)))
			}
			if serr != nil {
				cfg.Recorder.Record("session.live", "responder not stood down cleanly: %v", serr)
			}
			return &Result{Params: prm, Trace: tc, Live: st}, ErrSourceExited
		}
		if serr != nil {
			tx.End()
			cfg.Recorder.Record("session.fail", "live round: %v", serr)
			return nil, serr
		}
		dirty := lc.DirtyBlocks()
		switch {
		case dirty <= cfg.DirtyThreshold:
			st.StopReason = "threshold"
		case lc.Rounds() > cfg.PrecopyRounds:
			st.StopReason = "rounds"
		case dirty >= prevDirty:
			st.StopReason = "stalled"
		}
		prevDirty = dirty
		if st.StopReason != "" {
			break
		}
		if r, err = lc.Round(); err != nil {
			tx.End()
			return nil, err
		}
	}

	// Final round: the source stays paused; downtime runs from the pause
	// that ended the loop to the responder's RESTORED.
	final, err := lc.Round()
	if err != nil {
		tx.End()
		return nil, err
	}
	if err := sendLiveRound(t, final, true, prm, st); err != nil {
		tx.End()
		cfg.Recorder.Record("session.fail", "live final round: %v", err)
		return nil, err
	}
	reg.Counter("session.precopy.rounds").Inc()
	reg.Counter("session.precopy.bytes").Add(int64(st.Rounds[len(st.Rounds)-1].Bytes))
	st.SnapshotBytes = final.Bytes
	tx.SetBytes(int64(st.WireBytes))
	tx.End()
	cfg.observePhase("transport", time.Since(txStart))
	timing := core.Timing{Tx: time.Since(txStart), Bytes: st.WireBytes}
	result, err := awaitRestored(t, cfg, prm, timing, tc)
	if err != nil {
		return nil, err
	}
	st.Downtime = time.Since(stopTime)
	reg.Histogram("session.downtime").Observe(st.Downtime)
	cfg.Recorder.Record("session.live", "downtime %v over %d rounds (%s); %d of %d bytes on wire",
		st.Downtime, len(st.Rounds), st.StopReason, st.WireBytes, st.SnapshotBytes)
	return result, nil
}

// TransferLive migrates the running process p to dst over an in-memory
// pipe with the live pre-copy protocol end to end — the live counterpart
// of Transfer. p must be stopped at a poll point in NoAutoCapture mode;
// it resumes between rounds. Returns the restored process, the full
// Result (including LiveStats), and the merged timing.
//
// Like Transfer, a failed attempt rolls the source back before
// returning: the paused process resumes execution so an error never
// strands it. The exception is ErrSourceExited, where the source already
// ran to completion locally — that run is the surviving copy.
func TransferLive(e *core.Engine, program string, p *vm.Process, dst *arch.Machine, cfg Config) (*vm.Process, *Result, core.Timing, error) {
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	cfg.Live = true
	reg := NewRegistry()
	reg.Add(program, e)
	type respondRes struct {
		q   *vm.Process
		t   core.Timing
		err error
	}
	c := make(chan respondRes, 1)
	go func() {
		_, q, tim, err := Respond(b, reg, dst, cfg)
		c <- respondRes{q, tim, err}
	}()
	res, err := InitiateLive(a, e, p.Mach, program, p, cfg)
	if err != nil {
		a.Close()
		b.Close()
	}
	rr := <-c
	if err != nil {
		// Roll the source back unless it already ran to completion
		// between rounds (ErrSourceExited) — then there is nothing paused
		// to resume, and the local run IS the surviving copy.
		if !errors.Is(err, ErrSourceExited) {
			Rollback(p, cfg)
		}
		return nil, res, core.Timing{}, err
	}
	if rr.err != nil {
		return nil, res, core.Timing{}, rr.err
	}
	timing := res.Timing
	timing.Restore = rr.t.Restore
	return rr.q, res, timing, nil
}
