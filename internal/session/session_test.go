package session

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/vm"
)

// listSrc builds a 60-node heap list and only then reaches its single
// migration point, so the captured state spans several small chunks.
// 60*61/2 = 1830; 1830 % 128 = 38.
const listSrc = `
	struct node { float data; struct node *link; };
	struct node *head;
	int main() {
		int i, sum;
		struct node *c;
		head = 0;
		for (i = 1; i <= 60; i++) {
			c = (struct node *) malloc(sizeof(struct node));
			c->data = i;
			c->link = head;
			head = c;
		}
		migrate_here();
		sum = 0;
		c = head;
		while (c) {
			sum += (int)c->data;
			c = c->link;
		}
		return sum % 128;
	}
`

const listExit = 38

func newListEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(listSrc, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// stoppedAt runs the program on m until its migration point and returns
// the stopped process.
func stoppedAt(t *testing.T, e *core.Engine, m *arch.Machine) *vm.Process {
	t.Helper()
	p, err := e.NewProcess(m)
	if err != nil {
		t.Fatal(err)
	}
	p.MaxSteps = 1_000_000
	var req core.Request
	req.Raise()
	p.PollHook = req.Hook()
	res, err := p.Run()
	if err != nil || !res.Migrated {
		t.Fatalf("setup: migrated=%v err=%v", res != nil && res.Migrated, err)
	}
	return p
}

func TestNegotiate(t *testing.T) {
	cases := []struct {
		name    string
		offer   offer
		srv     Config
		want    Params
		wantErr error
	}{
		{
			name:  "both full range picks sectioned",
			offer: offer{minVer: 1, maxVer: 3, chunk: 1 << 20, window: 32},
			srv:   Config{},
			want:  Params{Version: core.VersionSectioned, ChunkSize: 256 << 10, Window: 16},
		},
		{
			name:  "v2-capped initiator picks streamed",
			offer: offer{minVer: 1, maxVer: 2, chunk: 1 << 20, window: 32},
			srv:   Config{},
			want:  Params{Version: core.VersionStream, ChunkSize: 256 << 10, Window: 16},
		},
		{
			name:  "v1-only initiator",
			offer: offer{minVer: 1, maxVer: 1, chunk: 4096, window: 4},
			srv:   Config{},
			want:  Params{Version: core.VersionMono, ChunkSize: 4096, Window: 4},
		},
		{
			name:  "v1-only responder",
			offer: offer{minVer: 1, maxVer: 2, chunk: 4096, window: 4},
			srv:   Config{MinVersion: core.VersionMono, MaxVersion: core.VersionMono},
			want:  Params{Version: core.VersionMono, ChunkSize: 4096, Window: 4},
		},
		{
			name:  "initiator proposal caps chunk and window",
			offer: offer{minVer: 1, maxVer: 2, chunk: 8192, window: 2},
			srv:   Config{ChunkSize: 64 << 10, Window: 8},
			want:  Params{Version: core.VersionStream, ChunkSize: 8192, Window: 2},
		},
		{
			name:  "responder cap wins when smaller",
			offer: offer{minVer: 1, maxVer: 2, chunk: 1 << 20, window: 64},
			srv:   Config{ChunkSize: 32 << 10, Window: 4},
			want:  Params{Version: core.VersionStream, ChunkSize: 32 << 10, Window: 4},
		},
		{
			name:    "future-only initiator has no common version",
			offer:   offer{minVer: 4, maxVer: 6},
			srv:     Config{},
			wantErr: ErrNoVersion,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := negotiate(c.offer, c.srv)
			if c.wantErr != nil {
				if !errors.Is(err, c.wantErr) {
					t.Fatalf("err = %v, want %v", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != c.want {
				t.Errorf("params = %+v, want %+v", got, c.want)
			}
		})
	}
}

// runTransfer exercises the full pipe-based protocol under cfg and checks
// the restored process completes correctly.
func runTransfer(t *testing.T, cfg Config) core.Timing {
	t.Helper()
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	q, timing, err := Transfer(e, "list", p, arch.SPARC20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if q.Mach != arch.SPARC20 {
		t.Error("restored process not on destination machine")
	}
	q.MaxSteps = 1_000_000
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != listExit {
		t.Errorf("exit = %d, want %d", res.ExitCode, listExit)
	}
	if timing.Bytes == 0 {
		t.Error("no bytes recorded")
	}
	return timing
}

func TestTransferStreamedDefault(t *testing.T) {
	runTransfer(t, Config{ChunkSize: 256, Window: 4})
}

func TestTransferMonolithic(t *testing.T) {
	runTransfer(t, Config{MaxVersion: core.VersionMono})
}

func TestInitiateReportsNegotiatedParams(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add("list", e)
	go func() {
		// Daemon side caps the chunk size below the initiator's proposal.
		Respond(b, reg, arch.SPARC20, Config{ChunkSize: 512, Window: 8})
	}()
	res, err := Initiate(a, e, p.Mach, "list", p, Config{ChunkSize: 4096, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := Params{Version: core.VersionSectioned, ChunkSize: 512, Window: 4, Commit: true}
	if res.Params != want {
		t.Errorf("params = %+v, want %+v", res.Params, want)
	}
}

func TestRespondRejectsUnknownDigest(t *testing.T) {
	e := newListEngine(t)
	other, err := core.NewEngine(`int main() { return 7; }`, minic.DefaultPolicy)
	if err != nil {
		t.Fatal(err)
	}
	p := stoppedAt(t, e, arch.DEC5000)
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add("other", other) // the migrating program is NOT registered
	errc := make(chan error, 1)
	go func() {
		_, _, _, rerr := Respond(b, reg, arch.SPARC20, Config{})
		errc <- rerr
	}()
	_, err = Initiate(a, e, p.Mach, "list", p, Config{})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("initiator err = %v, want ErrRejected", err)
	}
	if !strings.Contains(err.Error(), "not pre-distributed") {
		t.Errorf("rejection reason not forwarded: %v", err)
	}
	if rerr := <-errc; !errors.Is(rerr, ErrUnknownProgram) {
		t.Errorf("responder err = %v, want ErrUnknownProgram", rerr)
	}
}

func TestRespondRejectsNoCommonVersion(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add("list", e)
	go Respond(b, reg, arch.SPARC20, Config{})
	// An initiator from the future: speaks only versions we do not.
	_, err := Initiate(a, e, p.Mach, "list", p, Config{MinVersion: 4, MaxVersion: 6})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	if !strings.Contains(err.Error(), "no common protocol version") {
		t.Errorf("reason = %v", err)
	}
}

// daemonFixture starts a Daemon on a loopback listener and returns it with
// its address and a channel that yields Serve's return value.
func daemonFixture(t *testing.T, d *Daemon) (addr string, served chan error) {
	t.Helper()
	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served = make(chan error, 1)
	go func() { served <- d.Serve(l) }()
	return l.Addr().String(), served
}

// migrateTo runs one full client migration against a daemon address.
func migrateTo(t *testing.T, addr string, e *core.Engine, cfg Config) (*Result, error) {
	t.Helper()
	p := stoppedAt(t, e, arch.DEC5000)
	conn, err := link.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	return Initiate(conn, e, p.Mach, "list", p, cfg)
}

func TestDaemonConcurrentMixedVersions(t *testing.T) {
	// The acceptance scenario: one persistent daemon completes at least 4
	// concurrent migrations from a mix of v1-only and full-range (v3)
	// clients, with no operator-matched stream flags anywhere. OnRestored holds the first
	// 4 sessions at a barrier, so the test deadlocks (and times out)
	// unless 4 workers are truly in flight at once.
	const clients = 6
	const barrier = 4
	e := newListEngine(t)
	reg := NewRegistry()
	reg.Add("list", e)

	var mu sync.Mutex
	arrived := 0
	release := make(chan struct{})
	exits := make(chan int, clients)
	d := &Daemon{
		Registry:      reg,
		Mach:          arch.SPARC20,
		MaxConcurrent: clients,
		Timeout:       time.Minute,
		OnRestored: func(info Info, p *vm.Process, _ core.Timing) {
			mu.Lock()
			arrived++
			if arrived == barrier {
				close(release)
			}
			mu.Unlock()
			select {
			case <-release:
			case <-time.After(30 * time.Second):
				t.Error("barrier never filled: sessions are not concurrent")
			}
			p.MaxSteps = 1_000_000
			res, err := p.Run()
			if err != nil {
				t.Errorf("session %d run: %v", info.ID, err)
				exits <- -1
				return
			}
			exits <- res.ExitCode
		},
	}
	addr, served := daemonFixture(t, d)

	var wg sync.WaitGroup
	versions := make(chan uint32, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{ChunkSize: 512, Window: 4}
			if i%2 == 0 {
				cfg.MaxVersion = core.VersionMono // a v1-only client
			}
			res, err := migrateTo(t, addr, e, cfg)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			versions <- res.Params.Version
		}(i)
	}
	wg.Wait()
	close(versions)
	monos, sectioned := 0, 0
	for v := range versions {
		switch v {
		case core.VersionMono:
			monos++
		case core.VersionSectioned:
			sectioned++
		}
	}
	if monos != clients/2 || sectioned != clients/2 {
		t.Errorf("negotiated versions: %d mono, %d sectioned; want %d each", monos, sectioned, clients/2)
	}
	for i := 0; i < clients; i++ {
		if code := <-exits; code != listExit {
			t.Errorf("restored process %d exit = %d, want %d", i, code, listExit)
		}
	}

	d.Shutdown()
	if err := <-served; err != nil {
		t.Fatalf("serve after drain: %v", err)
	}
	s := d.Counters().Snapshot()
	if s.Accepted != clients || s.Restored != clients || s.Failed != 0 {
		t.Errorf("counters = %v", s)
	}
	if s.Bytes == 0 {
		t.Error("no payload bytes counted")
	}
}

func TestDaemonSurvivesCutHandshake(t *testing.T) {
	// A client that connects and dies mid-handshake must fail its own
	// session only: the daemon logs, closes, and keeps serving.
	e := newListEngine(t)
	reg := NewRegistry()
	reg.Add("list", e)
	var mu sync.Mutex
	var logs []string
	restored := make(chan struct{}, 1)
	d := &Daemon{
		Registry:      reg,
		Mach:          arch.SPARC20,
		MaxConcurrent: 2,
		Timeout:       30 * time.Second,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
		OnRestored: func(Info, *vm.Process, core.Timing) { restored <- struct{}{} },
	}
	addr, served := daemonFixture(t, d)

	// Cut mid-read: a frame header promising 100 bytes, then nothing.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	raw.Write([]byte{0, 0, 0, 100, 1, 2, 3, 4})
	raw.Close()

	// The daemon must still complete a real migration afterwards.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := migrateTo(t, addr, e, Config{ChunkSize: 512}); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("daemon did not recover: %v", err)
		}
	}
	<-restored

	d.Shutdown()
	if err := <-served; err != nil {
		t.Fatalf("serve after drain: %v", err)
	}
	s := d.Counters().Snapshot()
	if s.Failed < 1 {
		t.Errorf("cut handshake not counted as failure: %v", s)
	}
	if s.Restored < 1 {
		t.Errorf("daemon stopped restoring after cut handshake: %v", s)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, l := range logs {
		if strings.Contains(l, "failed") {
			found = true
		}
	}
	if !found {
		t.Errorf("no failure logged; logs = %q", logs)
	}
}

func TestDaemonSessionTimeout(t *testing.T) {
	// A peer that stalls after connecting must not pin a worker forever.
	e := newListEngine(t)
	reg := NewRegistry()
	reg.Add("list", e)
	d := &Daemon{
		Registry:      reg,
		Mach:          arch.SPARC20,
		MaxConcurrent: 1,
		Timeout:       50 * time.Millisecond,
	}
	addr, served := daemonFixture(t, d)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Send nothing; the per-session deadline must fail the handshake and,
	// with MaxConcurrent=1, free the only worker for the next session.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := migrateTo(t, addr, e, Config{ChunkSize: 512}); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("stalled session pinned the worker: %v", err)
		}
	}
	d.Shutdown()
	if err := <-served; err != nil {
		t.Fatal(err)
	}
	if s := d.Counters().Snapshot(); s.Failed < 1 {
		t.Errorf("stalled session not counted as failure: %v", s)
	}
}
