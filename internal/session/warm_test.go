package session

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/vm"
	"repro/internal/xdr"
)

func openTestStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// transferWith runs the full protocol over a pipe with distinct initiator
// and responder configs — the store fields make the two sides genuinely
// asymmetric, which Transfer's shared-config convenience cannot express.
func transferWith(t *testing.T, e *core.Engine, program string, p *vm.Process, dst *arch.Machine, srcCfg, dstCfg Config) (*Result, Info, *vm.Process) {
	t.Helper()
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add(program, e)
	type rr struct {
		info Info
		q    *vm.Process
		err  error
	}
	c := make(chan rr, 1)
	go func() {
		info, q, _, err := Respond(b, reg, dst, dstCfg)
		if err != nil {
			// Fail the initiator's pending reads so both sides join.
			b.Close()
		}
		c <- rr{info, q, err}
	}()
	res, err := Initiate(a, e, p.Mach, program, p, srcCfg)
	if err != nil {
		a.Close()
		b.Close()
	}
	r := <-c
	if err != nil {
		t.Fatalf("initiate: %v (responder: %v)", err, r.err)
	}
	if r.err != nil {
		t.Fatalf("respond: %v", r.err)
	}
	return res, r.info, r.q
}

// runRestored drives a restored process to completion and checks the exit.
func runRestored(t *testing.T, q *vm.Process, wantExit int) {
	t.Helper()
	q.MaxSteps = 10_000_000
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitCode != wantExit {
		t.Errorf("exit = %d, want %d", res.ExitCode, wantExit)
	}
}

// warmListSrc is listSrc scaled to 400 nodes, so the snapshot dwarfs the
// manifest and the <10%-of-cold wire criterion is meaningful.
// 400*401/2 = 80200; 80200 % 128 = 72.
const warmListSrc = `
	struct node { float data; struct node *link; };
	struct node *head;
	int main() {
		int i, sum;
		struct node *c;
		head = 0;
		for (i = 1; i <= 400; i++) {
			c = (struct node *) malloc(sizeof(struct node));
			c->data = i;
			c->link = head;
			head = c;
		}
		migrate_here();
		sum = 0;
		c = head;
		while (c) {
			sum += (int)c->data;
			c = c->link;
		}
		return sum % 128;
	}
`

const warmListExit = 72

// TestWarmTransferColdThenWarm covers the store-assisted path end to end:
// the first migration fills the destination store (every section crosses),
// a re-migration of an identical process transfers the manifest and
// nothing else.
func TestWarmTransferColdThenWarm(t *testing.T) {
	e, err := core.NewEngine(warmListSrc, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	srcStore, dstStore := openTestStore(t), openTestStore(t)
	srcCfg := Config{Store: srcStore}
	dstCfg := Config{Store: dstStore}

	// Cold-path baseline: the plain sectioned transfer's wire size for the
	// same stopped state.
	pb := stoppedAt(t, e, arch.DEC5000)
	baselineRes, _, qb := transferWith(t, e, "list", pb, arch.SPARC20, Config{}, Config{})
	baseline := baselineRes.Timing
	runRestored(t, qb, warmListExit)

	p1 := stoppedAt(t, e, arch.DEC5000)
	res1, info1, q1 := transferWith(t, e, "list", p1, arch.SPARC20, srcCfg, dstCfg)
	if res1.Warm == nil || info1.Warm == nil {
		t.Fatal("warm stats missing from a store-to-store transfer")
	}
	if res1.Warm.Sections == 0 || res1.Warm.SectionsSent != res1.Warm.Sections {
		t.Errorf("first transfer into an empty store: sent %d of %d sections, want all",
			res1.Warm.SectionsSent, res1.Warm.Sections)
	}
	if info1.Warm.ManifestHash != res1.Warm.ManifestHash {
		t.Error("initiator and responder disagree on the checkpoint shipped")
	}
	runRestored(t, q1, warmListExit)

	// Both stores hold the checkpoint under the program ref.
	for name, s := range map[string]*store.Store{"src": srcStore, "dst": dstStore} {
		h, ok, err := s.Ref("list")
		if err != nil || !ok || h != res1.Warm.ManifestHash {
			t.Fatalf("%s store ref: hash %s ok=%v err=%v, want %s",
				name, h.Short(), ok, err, res1.Warm.ManifestHash.Short())
		}
	}

	// An identical process re-migrates warm: the destination already holds
	// every section body, so only the manifest crosses the wire.
	p2 := stoppedAt(t, e, arch.DEC5000)
	res2, _, q2 := transferWith(t, e, "list", p2, arch.SPARC20, srcCfg, dstCfg)
	if res2.Warm == nil {
		t.Fatal("second transfer not warm")
	}
	if res2.Warm.SectionsSent != 0 {
		t.Errorf("unchanged process re-sent %d sections", res2.Warm.SectionsSent)
	}
	if res2.Warm.WireBytes*10 >= baseline.Bytes {
		t.Errorf("unchanged warm transfer used %d wire bytes, want < 10%% of the %d-byte cold transfer",
			res2.Warm.WireBytes, baseline.Bytes)
	}
	runRestored(t, q2, warmListExit)

	// The second checkpoint chains onto the first in both stores.
	m2, err := dstStore.GetManifest(res2.Warm.ManifestHash)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Seq != 2 || m2.Parent != res1.Warm.ManifestHash {
		t.Errorf("second checkpoint: seq %d parent %s, want 2 / %s",
			m2.Seq, m2.Parent.Short(), res1.Warm.ManifestHash.Short())
	}
}

// TestWarmFallsBackToLegacyPeer pins the interop contract: a store-less
// peer on either side demotes the session to the plain sectioned path,
// with the same wire byte count a pure-legacy pairing produces.
func TestWarmFallsBackToLegacyPeer(t *testing.T) {
	e := newListEngine(t)
	legacy := runTransfer(t, Config{})

	cases := []struct {
		name           string
		srcCfg, dstCfg Config
	}{
		{"responder without store", Config{Store: openTestStore(t)}, Config{}},
		{"initiator without store", Config{}, Config{Store: openTestStore(t)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := stoppedAt(t, e, arch.DEC5000)
			res, info, q := transferWith(t, e, "list", p, arch.SPARC20, c.srcCfg, c.dstCfg)
			if res.Warm != nil || info.Warm != nil {
				t.Error("mixed pairing reported warm stats")
			}
			if res.Params.Version != core.VersionSectioned {
				t.Errorf("negotiated v%d, want sectioned", res.Params.Version)
			}
			if res.Timing.Bytes != legacy.Bytes {
				t.Errorf("fallback transfer wired %d bytes, pure-legacy wired %d — must be identical",
					res.Timing.Bytes, legacy.Bytes)
			}
			runRestored(t, q, listExit)
		})
	}
}

// TestHandshakeBytesWithoutStore pins the frame-level interop contract: a
// build that has no store emits OFFER and ACCEPT frames byte-identical to
// the pre-capability protocol, so legacy peers cannot tell the difference.
func TestHandshakeBytesWithoutStore(t *testing.T) {
	o := offer{
		minVer: 1, maxVer: 3, digest: 0xcafe, program: "list",
		machine: "dec5000", chunk: 4096, window: 8,
		traceID: 0x1111, spanID: 0x2222,
	}
	pre := xdr.NewEncoder(64)
	pre.PutUint32(sessionMagic)
	pre.PutUint32(msgOffer)
	pre.PutUint32(o.minVer)
	pre.PutUint32(o.maxVer)
	pre.PutUint32(o.digest)
	pre.PutString(o.program)
	pre.PutString(o.machine)
	pre.PutUint32(o.chunk)
	pre.PutUint32(o.window)
	pre.PutUint64(o.traceID)
	pre.PutUint64(o.spanID)
	if !bytes.Equal(marshalOffer(o), pre.Bytes()) {
		t.Error("capability-less OFFER is not byte-identical to the pre-store frame")
	}

	acc := xdr.NewEncoder(20)
	acc.PutUint32(sessionMagic)
	acc.PutUint32(msgAccept)
	acc.PutUint32(3)
	acc.PutUint32(4096)
	acc.PutUint32(8)
	if !bytes.Equal(marshalAccept(Params{Version: 3, ChunkSize: 4096, Window: 8}), acc.Bytes()) {
		t.Error("cold ACCEPT is not byte-identical to the pre-store frame")
	}

	// And with a store, the only difference is the trailing capability.
	warm := o
	warm.caps = capWarm
	got := marshalOffer(warm)
	if len(got) != len(pre.Bytes())+4 || !bytes.Equal(got[:len(got)-4], pre.Bytes()) {
		t.Error("capWarm OFFER is not the legacy frame plus one trailing word")
	}
	parsed, err := parseMessage(got)
	if err != nil || parsed.offer.caps != capWarm {
		t.Errorf("capWarm OFFER parse: caps %x err %v", parsed.offer.caps, err)
	}

	// Live rides the same trailing word: a live-capable offer is the
	// legacy frame plus one capability field, and both bits coexist.
	liveOffer := o
	liveOffer.caps = capWarm | capLive
	got = marshalOffer(liveOffer)
	if len(got) != len(pre.Bytes())+4 || !bytes.Equal(got[:len(got)-4], pre.Bytes()) {
		t.Error("capLive OFFER is not the legacy frame plus one trailing word")
	}
	parsed, err = parseMessage(got)
	if err != nil || parsed.offer.caps != capWarm|capLive {
		t.Errorf("capLive OFFER parse: caps %x err %v", parsed.offer.caps, err)
	}

	// A live ACCEPT is the legacy frame (with the upgraded version) plus
	// the capability word; parsing recovers the Live flag.
	liveAcc := marshalAccept(Params{Version: 4, ChunkSize: 4096, Window: 8, Live: true})
	if len(liveAcc) != len(acc.Bytes())+4 {
		t.Error("live ACCEPT is not the legacy frame plus one trailing word")
	}
	am, err := parseMessage(liveAcc)
	if err != nil || !am.params.Live || am.params.Warm {
		t.Errorf("live ACCEPT parse: params %+v err %v", am.params, err)
	}
}

// corruptingTransport flips a body byte in every frame its predicate
// selects, leaving other traffic untouched.
type corruptingTransport struct {
	link.Transport
	match func([]byte) bool
}

func (c corruptingTransport) Send(b []byte) error {
	if c.match(b) {
		evil := append([]byte(nil), b...)
		// Flip inside the final section body: the last three bytes may be
		// XDR padding, byte len-6 never is.
		evil[len(evil)-6] ^= 0xff
		return c.Transport.Send(evil)
	}
	return c.Transport.Send(b)
}

// TestWarmRejectsCorruptSectionBody damages a SECTIONS frame in flight:
// the responder must refuse the body (its hash no longer matches the
// manifest entry) with an error classified as corrupt-stream, and its
// store must not retain the damaged checkpoint's manifest.
func TestWarmRejectsCorruptSectionBody(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add("list", e)
	dstStore := openTestStore(t)
	type rr struct{ err error }
	c := make(chan rr, 1)
	go func() {
		_, _, _, err := Respond(b, reg, arch.SPARC20, Config{Store: dstStore})
		if err != nil {
			// Fail the initiator's pending confirm read so it joins.
			b.Close()
		}
		c <- rr{err}
	}()
	mangled := corruptingTransport{Transport: a, match: func(f []byte) bool {
		// A session frame's type word is bytes 4..8 (XDR big-endian).
		return len(f) > 64 && f[7] == byte(msgSections)
	}}
	_, err := Initiate(mangled, e, p.Mach, "list", p, Config{Store: openTestStore(t)})
	a.Close()
	b.Close()
	r := <-c
	if !errors.Is(r.err, store.ErrCorrupt) {
		t.Fatalf("responder error = %v, want store.ErrCorrupt", r.err)
	}
	if ClassifyFailure(r.err) != FailCorrupt {
		t.Errorf("classified %s, want %s", ClassifyFailure(r.err), FailCorrupt)
	}
	if err == nil {
		t.Error("initiator completed against a failed responder")
	}
	// The destination store must not have adopted the damaged checkpoint.
	if _, ok, _ := dstStore.Ref("list"); ok {
		t.Error("destination ref advanced past a corrupt transfer")
	}
}
