package session

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/vm"
)

// TestDaemonMetricsAndTraceConcurrent runs several concurrent sessions —
// successes and a negotiation failure — against a daemon publishing to an
// injected obs registry with per-session tracing on. The lifecycle
// counters must balance and every session must log its phase-span tree.
// Run under -race -count=2 in CI: the registry is shared by all workers.
func TestDaemonMetricsAndTraceConcurrent(t *testing.T) {
	const clients = 4
	e := newListEngine(t)
	unregistered, err := core.NewEngine(`int main() { migrate_here(); return 7; }`, minic.PollPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Add("list", e)

	var mu sync.Mutex
	var logs []string
	metrics := obs.NewRegistry()
	d := &Daemon{
		Registry:      reg,
		Mach:          arch.SPARC20,
		MaxConcurrent: clients,
		Timeout:       time.Minute,
		Metrics:       metrics,
		Trace:         true,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
		OnRestored: func(info Info, p *vm.Process, _ core.Timing) {
			p.MaxSteps = 1_000_000
			res, err := p.Run()
			if err != nil || res.ExitCode != listExit {
				t.Errorf("session %d: exit=%v err=%v", info.ID, res, err)
			}
		},
	}
	addr, served := daemonFixture(t, d)

	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := Config{ChunkSize: 512, Window: 4}
			if i%2 == 0 {
				cfg.MaxVersion = core.VersionMono
			}
			if _, err := migrateTo(t, addr, e, cfg); err != nil {
				t.Errorf("client %d: %v", i, err)
			}
		}(i)
	}
	// One deliberate failure: a program the daemon does not hold.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := migrateTo(t, addr, unregistered, Config{}); err == nil {
			t.Error("unregistered program was accepted")
		}
	}()
	wg.Wait()
	d.Shutdown()
	if err := <-served; err != nil {
		t.Fatal(err)
	}

	counters := metrics.Snapshot().Counters
	if counters["session.accepted"] != clients+1 {
		t.Errorf("session.accepted = %d, want %d", counters["session.accepted"], clients+1)
	}
	if counters["session.restored"] != clients {
		t.Errorf("session.restored = %d, want %d", counters["session.restored"], clients)
	}
	if counters["session.failed"] != 1 {
		t.Errorf("session.failed = %d, want 1", counters["session.failed"])
	}
	if counters["session.fail."+string(FailNegotiation)] != 1 {
		t.Errorf("session.fail.%s = %d, want 1", FailNegotiation,
			counters["session.fail."+string(FailNegotiation)])
	}
	if counters["session.bytes"] == 0 {
		t.Error("session.bytes = 0")
	}

	mu.Lock()
	defer mu.Unlock()
	traces := 0
	for _, l := range logs {
		if strings.Contains(l, "trace:") && strings.Contains(l, "session") {
			traces++
			if strings.Contains(l, "restored") && !strings.Contains(l, "restore") {
				t.Errorf("restored session trace missing restore span:\n%s", l)
			}
		}
	}
	if traces != clients+1 {
		t.Errorf("logged %d session traces, want %d", traces, clients+1)
	}
}
