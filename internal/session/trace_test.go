package session

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/obs"
)

// stripTail rewrites the first transmitted frame to drop its last n bytes
// — a byte-level simulation of a pre-tracing peer whose OFFER ends after
// the window field.
type stripTail struct {
	link.Transport
	n    int
	once sync.Once
}

func (s *stripTail) Send(payload []byte) error {
	var strip bool
	s.once.Do(func() { strip = true })
	if strip && len(payload) > s.n {
		payload = payload[:len(payload)-s.n]
	}
	return s.Transport.Send(payload)
}

// TestLegacyOfferInterop runs a full migration whose OFFER is rewritten to
// the pre-tracing wire layout. The responder must treat it as untraced —
// negotiate normally, restore, and confirm without a span payload — so old
// initiators keep working against new daemons.
func TestLegacyOfferInterop(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add("list", e)

	type respondRes struct {
		info Info
		err  error
	}
	c := make(chan respondRes, 1)
	respTracer := obs.NewTracer()
	go func() {
		info, q, _, err := Respond(b, reg, arch.SPARC20, Config{Trace: respTracer.Start("session")})
		if err == nil {
			q.MaxSteps = 1_000_000
			if res, rerr := q.Run(); rerr != nil || res.ExitCode != listExit {
				t.Errorf("restored run: res=%+v err=%v", res, rerr)
			}
		}
		c <- respondRes{info, err}
	}()

	// The offer's trace pair is its trailing 16 bytes (two u64s). NoCommit
	// keeps the caps word unencoded, as a pre-commit initiator would.
	res, err := Initiate(&stripTail{Transport: a, n: 16}, e, p.Mach, "list", p, Config{NoCommit: true})
	if err != nil {
		t.Fatalf("initiate: %v", err)
	}
	rr := <-c
	if rr.err != nil {
		t.Fatalf("respond: %v", rr.err)
	}
	if rr.info.Trace.Valid() {
		t.Errorf("responder adopted a trace context from a legacy offer: %+v", rr.info.Trace)
	}
	if res.Remote != nil {
		t.Errorf("initiator received remote spans from an untraced session")
	}
}

// TestStitchedTrace is the tentpole acceptance check: one v3 migration
// over loopback TCP produces a single stitched trace — the destination's
// restore and confirm spans appear under the initiator's trace ID in the
// exported report.
func TestStitchedTrace(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	srv, cli, cleanup, err := link.LoopbackPair()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	reg := NewRegistry()
	reg.Add("list", e)

	done := make(chan error, 1)
	respTracer := obs.NewTracer()
	go func() {
		_, _, _, err := Respond(srv, reg, arch.SPARC20, Config{Trace: respTracer.Start("session")})
		done <- err
	}()

	initTracer := obs.NewTracer()
	root := initTracer.Start("session")
	res, err := Initiate(cli, e, p.Mach, "list", p, Config{Trace: root})
	root.End()
	if err != nil {
		t.Fatalf("initiate: %v", err)
	}
	if rerr := <-done; rerr != nil {
		t.Fatalf("respond: %v", rerr)
	}
	if res.Params.Version != core.VersionSectioned {
		t.Fatalf("negotiated v%d, want v3", res.Params.Version)
	}
	if !res.Trace.Valid() {
		t.Fatal("result carries no trace context")
	}
	if res.Remote == nil {
		t.Fatal("responder shipped no spans")
	}
	wantTrace := obs.IDString(res.Trace.TraceID)
	if res.Remote.TraceID != wantTrace {
		t.Errorf("remote trace id = %s, want %s", res.Remote.TraceID, wantTrace)
	}
	if res.Remote.ParentSpanID != obs.IDString(res.Trace.SpanID) {
		t.Errorf("remote parent span = %s, want initiator span %s",
			res.Remote.ParentSpanID, obs.IDString(res.Trace.SpanID))
	}

	// The exported report holds ONE tree: the initiator's session span
	// with the responder's subtree grafted in, same trace ID throughout.
	spans := initTracer.Export()
	if len(spans) != 1 {
		t.Fatalf("exported %d roots, want 1", len(spans))
	}
	tree := spans[0]
	if tree.TraceID != wantTrace {
		t.Fatalf("local root trace id = %s, want %s", tree.TraceID, wantTrace)
	}
	var remote *obs.SpanData
	for _, c := range tree.Children {
		if c.Remote {
			remote = c
		}
	}
	if remote == nil {
		t.Fatalf("no remote subtree under the initiator root:\n%s", tree.Tree())
	}
	if remote.Find("restore") == nil {
		t.Errorf("stitched trace missing destination restore span:\n%s", tree.Tree())
	}
	if remote.Find("confirm") == nil {
		t.Errorf("stitched trace missing destination confirm span:\n%s", tree.Tree())
	}
	if !strings.Contains(tree.Tree(), "(remote)") {
		t.Errorf("rendered stitched tree missing remote marker:\n%s", tree.Tree())
	}
}

// TestPhaseHistograms verifies both sides feed the per-phase latency
// histograms of their configured registries.
func TestPhaseHistograms(t *testing.T) {
	e := newListEngine(t)
	reg := NewRegistry()
	reg.Add("list", e)
	cliMetrics := obs.NewRegistry()
	srvMetrics := obs.NewRegistry()
	d := &Daemon{Registry: reg, Mach: arch.SPARC20, Metrics: srvMetrics}
	addr, served := daemonFixture(t, d)
	if _, err := migrateTo(t, addr, e, Config{Metrics: cliMetrics}); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	d.Shutdown()
	if err := <-served; err != nil {
		t.Fatal(err)
	}
	for _, phase := range []string{"handshake", "collect", "transport", "confirm"} {
		if n := cliMetrics.Histogram("session.phase." + phase).Count(); n == 0 {
			t.Errorf("initiator phase %q unobserved", phase)
		}
	}
	for _, phase := range []string{"handshake", "restore", "confirm"} {
		if n := srvMetrics.Histogram("session.phase." + phase).Count(); n == 0 {
			t.Errorf("responder phase %q unobserved", phase)
		}
	}
}

// TestFlightDumpOnlyOnFailure drives one successful and one failing
// session against a daemon with a trace directory: only the failure may
// leave a recording on disk, and the recording must carry the failure
// classification.
func TestFlightDumpOnlyOnFailure(t *testing.T) {
	e := newListEngine(t)
	reg := NewRegistry()
	reg.Add("list", e)
	dir := t.TempDir()
	var logs strings.Builder
	var logMu sync.Mutex
	d := &Daemon{
		Registry: reg, Mach: arch.SPARC20, Metrics: obs.NewRegistry(),
		TraceDir: dir,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			logs.WriteString(strings.TrimRight(fmt.Sprintf(format, args...), "\n") + "\n")
		},
	}
	addr, served := daemonFixture(t, d)

	if _, err := migrateTo(t, addr, e, Config{}); err != nil {
		t.Fatalf("successful migration failed: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("successful session dumped a flight recording: %v", entries)
	}

	// An unregistered program digest fails the handshake on the daemon.
	unregistered, cerr := core.NewEngine(`int main() { migrate_here(); return 7; }`, minic.PollPolicy{})
	if cerr != nil {
		t.Fatal(cerr)
	}
	if _, err := migrateTo(t, addr, unregistered, Config{}); err == nil {
		t.Fatal("migration of unregistered program succeeded")
	}
	d.Shutdown()
	if err := <-served; err != nil {
		t.Fatal(err)
	}

	entries, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("failed session left %d dumps, want 1", len(entries))
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, ".json") {
		t.Errorf("dump name = %q", name)
	}
	raw, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{obs.FlightSchema, `"outcome"`, "negotiation", "session.offer", "session.reject"} {
		if !strings.Contains(body, want) {
			t.Errorf("flight dump missing %q:\n%s", want, body)
		}
	}
	logMu.Lock()
	defer logMu.Unlock()
	if !strings.Contains(logs.String(), "flight recording") {
		t.Errorf("daemon log missing flight recording:\n%s", logs.String())
	}
}
