package session

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/stream"
	"repro/internal/vm"
)

// Path is one transfer strategy behind a negotiated session: how a stopped
// process's state crosses an established transport. The negotiated version
// selects the implementation; the rest of the session layer — and both
// migd modes — are path-agnostic.
type Path interface {
	// Send collects the state of p (stopped at its migration point) and
	// transmits it over t under the negotiated parameters.
	Send(t link.Transport, e *core.Engine, src *arch.Machine, p *vm.Process, prm Params) (core.Timing, error)
	// Receive accepts an inbound state from t and restores the process on
	// machine m.
	Receive(t link.Transport, e *core.Engine, m *arch.Machine, prm Params) (*vm.Process, core.Timing, error)
}

// pathFor maps a negotiated outcome to its Path. The warm store-assisted
// path replaces the plain sectioned transfer when both sides agreed to it
// during the handshake, and the live pre-copy path carries version 4.
func pathFor(prm Params) (Path, error) {
	if prm.Live {
		if prm.Version != core.VersionLive {
			return nil, fmt.Errorf("%w: live transfer negotiated under version %d", ErrProtocol, prm.Version)
		}
		return livePath{}, nil
	}
	if prm.Warm {
		if prm.Version != core.VersionSectioned || prm.Store == nil {
			return nil, fmt.Errorf("%w: warm transfer without sectioned version and store", ErrProtocol)
		}
		return warmPath{}, nil
	}
	switch prm.Version {
	case core.VersionMono:
		return monoPath{}, nil
	case core.VersionStream:
		return streamPath{}, nil
	case core.VersionSectioned:
		return sectionedPath{}, nil
	}
	return nil, fmt.Errorf("%w: no transfer path for version %d", ErrProtocol, prm.Version)
}

// monoPath is the paper's stop-and-copy transfer: collect everything, seal
// one envelope, one blocking send.
type monoPath struct{}

func (monoPath) Send(t link.Transport, e *core.Engine, src *arch.Machine, p *vm.Process, prm Params) (core.Timing, error) {
	p.Obs = prm.Trace
	state, err := p.Recapture()
	if err != nil {
		return core.Timing{}, err
	}
	tx := prm.Trace.Child("transport")
	tim, err := e.Send(t, src, state)
	tx.SetBytes(int64(tim.Bytes))
	tx.End()
	return tim, err
}

func (monoPath) Receive(t link.Transport, e *core.Engine, m *arch.Machine, prm Params) (*vm.Process, core.Timing, error) {
	return e.ReceiveAndRestoreObs(t, m, prm.Trace)
}

// streamPath is the pipelined transfer: the snapshot flows through the
// internal/stream chunk layer while collection is still producing it.
type streamPath struct{}

func (streamPath) config(prm Params) stream.Config {
	return stream.Config{ChunkSize: prm.ChunkSize, Window: prm.Window, Recorder: prm.Recorder}
}

func (sp streamPath) Send(t link.Transport, e *core.Engine, src *arch.Machine, p *vm.Process, prm Params) (core.Timing, error) {
	p.Obs = prm.Trace
	w := stream.NewWriter(t, sp.config(prm))
	// Collection overlaps transmission on this path, so the "transport"
	// span covers the whole pipelined phase; the nested "collect" span
	// (from CaptureTo) shows the producer's share.
	tx := prm.Trace.Child("transport")
	tim, err := e.SendStream(w, src, p, prm.ChunkSize)
	tx.SetBytes(int64(tim.Bytes))
	tx.End()
	return tim, err
}

func (sp streamPath) Receive(t link.Transport, e *core.Engine, m *arch.Machine, prm Params) (*vm.Process, core.Timing, error) {
	r := stream.NewReader(t, sp.config(prm))
	return e.ReceiveAndRestoreStreamObs(r, m, prm.Trace)
}

// sectionedPath carries a sectioned (v3) snapshot — heap components
// collected in parallel, every section independently CRC-framed — over
// the same chunk layer as streamPath.
type sectionedPath struct{}

func (sectionedPath) config(prm Params) stream.Config {
	return stream.Config{ChunkSize: prm.ChunkSize, Window: prm.Window, Recorder: prm.Recorder}
}

func (sp sectionedPath) Send(t link.Transport, e *core.Engine, src *arch.Machine, p *vm.Process, prm Params) (core.Timing, error) {
	p.Obs = prm.Trace
	w := stream.NewWriter(t, sp.config(prm))
	// workers 0 = GOMAXPROCS; the worker count is a local collection
	// choice, not a negotiated parameter — the snapshot bytes are
	// identical for any count.
	tx := prm.Trace.Child("transport")
	tim, err := e.SendSectioned(w, src, p, prm.ChunkSize, 0)
	tx.SetBytes(int64(tim.Bytes))
	tx.End()
	return tim, err
}

func (sp sectionedPath) Receive(t link.Transport, e *core.Engine, m *arch.Machine, prm Params) (*vm.Process, core.Timing, error) {
	r := stream.NewReader(t, sp.config(prm))
	return e.ReceiveAndRestoreSectionedObs(r, m, prm.Trace)
}
