package session

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/vm"
)

// The chaos matrix is the enforcement mechanism for the session layer's
// recovery contract: for EVERY protocol configuration, at EVERY frame
// boundary a migration crosses, killing ANY party must leave exactly one
// live copy of the process — the rolled-back source or the committed
// destination, never zero and never both. The cells are not hand-picked:
// a clean recorded run of each configuration enumerates its own
// boundaries (chaos.Points), so a protocol change that adds frames adds
// matrix cells automatically.

// chaosMode is one protocol-configuration column of the matrix.
type chaosMode struct {
	name string
	live bool
	warm bool
	cfg  Config
}

func chaosModes() []chaosMode {
	liveCfg := Config{ChunkSize: 4096, Window: 8, PrecopyRounds: 3, DirtyThreshold: 1}
	return []chaosMode{
		{name: "v1", cfg: Config{MinVersion: core.VersionMono, MaxVersion: core.VersionMono}},
		{name: "v2", cfg: Config{MinVersion: core.VersionStream, MaxVersion: core.VersionStream, ChunkSize: 1024, Window: 4}},
		{name: "v3", cfg: Config{ChunkSize: 1024, Window: 4}},
		{name: "v3-warm", warm: true, cfg: Config{ChunkSize: 1024, Window: 4}},
		{name: "v4-live", live: true, cfg: liveCfg},
		{name: "v4-live-warm", live: true, warm: true, cfg: liveCfg},
	}
}

func (m chaosMode) engine(t *testing.T) *core.Engine {
	t.Helper()
	if m.live {
		return newMutatingEngine(t, 8)
	}
	return newListEngine(t)
}

func (m chaosMode) fixture(t *testing.T, e *core.Engine) *vm.Process {
	t.Helper()
	if m.live {
		return stoppedLive(t, e, arch.DEC5000)
	}
	return stoppedAt(t, e, arch.DEC5000)
}

func (m chaosMode) exit() int {
	if m.live {
		return 0 // the mutating workload exits 0 iff every mutation survived
	}
	return listExit
}

// runChaosMigration drives one full migration of p with both transport
// endpoints wrapped by inj, returning both sides' outcomes. On initiator
// failure the raw pipe is closed so the responder always joins.
func runChaosMigration(t *testing.T, m chaosMode, e *core.Engine, p *vm.Process, inj *chaos.Injector, srcCfg, dstCfg Config) (initErr error, q *vm.Process, respErr error) {
	t.Helper()
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	srcT, dstT := inj.Source(a), inj.Dest(b)
	reg := NewRegistry()
	reg.Add("prog", e)
	type rr struct {
		q   *vm.Process
		err error
	}
	c := make(chan rr, 1)
	go func() {
		_, q, _, err := Respond(dstT, reg, arch.SPARC20, dstCfg)
		c <- rr{q, err}
	}()
	if m.live {
		_, initErr = InitiateLive(srcT, e, p.Mach, "prog", p, srcCfg)
	} else {
		_, initErr = Initiate(srcT, e, p.Mach, "prog", p, srcCfg)
	}
	if initErr != nil {
		a.Close()
		b.Close()
	}
	r := <-c
	return initErr, r.q, r.err
}

// verifyRestored asserts the destination copy carries the migrated state:
// it runs to the workload's correct exit.
func verifyRestored(t *testing.T, m chaosMode, q *vm.Process) {
	t.Helper()
	if q.Mach != arch.SPARC20 {
		t.Errorf("restored process on %s, want destination machine", q.Mach.Name)
	}
	q.MaxSteps = 50_000_000
	res, err := q.Run()
	if err != nil {
		t.Fatalf("restored run: %v", err)
	}
	if res.Migrated || res.ExitCode != m.exit() {
		t.Errorf("restored run = %+v, want exit %d", res, m.exit())
	}
}

// runChaosCell runs one matrix cell: a fresh migration killed at the
// cell's boundary, then the rollback-or-complete assertion.
func runChaosCell(t *testing.T, m chaosMode, e *core.Engine, cell chaos.Spec) {
	t.Helper()
	flight := obs.NewFlightRecorder(512)
	inj := chaos.New(cell)
	inj.Recorder = flight
	srcCfg, dstCfg := m.cfg, m.cfg
	if m.warm {
		srcCfg.Store = openTestStore(t)
		dstCfg.Store = openTestStore(t)
	}
	if m.live {
		srcCfg.Live, dstCfg.Live = true, true
	}
	srcCfg.Recorder = flight

	p := m.fixture(t, e)
	var direct []byte
	if !m.live {
		// Stop-and-copy leaves the source untouched by the attempt, so a
		// rollback must find the byte-identical state.
		var err error
		if direct, err = p.Recapture(); err != nil {
			t.Fatal(err)
		}
	}

	initErr, q, respErr := runChaosMigration(t, m, e, p, inj, srcCfg, dstCfg)
	if _, fired := inj.Fired(); !fired {
		t.Fatalf("fault %s never fired (init=%v resp=%v)", cell, initErr, respErr)
	}
	destAlive := respErr == nil && q != nil

	switch {
	case initErr == nil && !destAlive:
		t.Fatalf("no survivor: source relinquished (nil error) but destination failed: %v", respErr)
	case initErr == nil:
		// The destination is the one live copy; the source stays paused
		// and is never resumed.
		verifyRestored(t, m, q)
	case errors.Is(initErr, ErrSourceExited):
		// The source ran to completion locally between live rounds — that
		// finished run is the one copy; the destination must stand down.
		if destAlive {
			t.Fatalf("two survivors: source ran to completion locally and destination activated")
		}
	case destAlive:
		t.Fatalf("two survivors: source rolling back (%v) while destination activated", initErr)
	default:
		// The source is the one live copy: still paused, state intact,
		// resumable to the workload's correct exit.
		if !m.live {
			re, err := p.Recapture()
			if err != nil {
				t.Fatalf("recapture after failed attempt: %v", err)
			}
			if !bytes.Equal(re, direct) {
				t.Errorf("source state after failed attempt differs from pre-attempt capture (%d vs %d bytes)",
					len(re), len(direct))
			}
		} else {
			// The live source advanced between rounds, so there is no
			// pre-attempt image to compare against; it must still be
			// capturable where it paused.
			if _, err := p.CaptureSections(1); err != nil {
				t.Fatalf("capture after failed live attempt: %v", err)
			}
			p.PollHook = nil // let the rollback run to completion
		}
		res, err := Rollback(p, srcCfg)
		if err != nil {
			t.Fatalf("rollback: %v", err)
		}
		if res.Migrated || res.ExitCode != m.exit() {
			t.Errorf("rolled-back run = %+v, want exit %d", res, m.exit())
		}
	}

	// The flight-recorder contract: every injected fault names its
	// boundary in the dump.
	var recorded bool
	for _, ev := range flight.Events() {
		if ev.Kind == "chaos.inject" && strings.Contains(ev.Detail, cell.Point.String()) {
			recorded = true
		}
	}
	if !recorded {
		t.Errorf("flight recording does not name boundary %s", cell.Point)
	}
}

// TestChaosMatrix generates and runs the full matrix: for each protocol
// configuration, a clean recorded migration enumerates every frame
// boundary it crosses; each boundary × {before-send, after-recv} ×
// {source, dest, link} becomes a cell asserting exactly one surviving
// copy. -short runs a seed-reproducible sample of each configuration's
// cells instead of all of them.
func TestChaosMatrix(t *testing.T) {
	for _, m := range chaosModes() {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			e := m.engine(t)
			srcCfg, dstCfg := m.cfg, m.cfg
			if m.warm {
				srcCfg.Store = openTestStore(t)
				dstCfg.Store = openTestStore(t)
			}
			if m.live {
				srcCfg.Live, dstCfg.Live = true, true
			}
			rec := chaos.NewRecordOnly()
			p := m.fixture(t, e)
			initErr, q, respErr := runChaosMigration(t, m, e, p, rec, srcCfg, dstCfg)
			if initErr != nil || respErr != nil || q == nil {
				t.Fatalf("clean run failed: init=%v resp=%v", initErr, respErr)
			}
			verifyRestored(t, m, q)
			trace := rec.Trace()
			points := chaos.Points(trace, 3)
			cells := chaos.Cells(points, chaos.Victims)
			if len(cells) == 0 {
				t.Fatal("empty matrix: no injection points derived from the clean trace")
			}
			if testing.Short() {
				cells = chaos.Sample(cells, 1, 18)
			}
			t.Logf("%s: %d frames -> %d boundaries -> %d cells", m.name, len(trace), len(points), len(cells))
			for _, cell := range cells {
				cell := cell
				t.Run(cell.String(), func(t *testing.T) {
					t.Parallel()
					runChaosCell(t, m, e, cell)
				})
			}
		})
	}
}

// TestChaosKillAtLiveAbort pins the regression where a fault at the
// LIVE_ABORT boundary turned a completed source run into a failed
// rollback: when the source exits between pre-copy rounds, the finished
// local run IS the surviving copy, and ErrSourceExited must win over any
// wire error — including the abort notice itself never getting out.
func TestChaosKillAtLiveAbort(t *testing.T) {
	// One mutation round and an unreachable convergence threshold: the
	// workload runs to completion while round 0 is still being shipped.
	cfg := Config{ChunkSize: 4096, Window: 8, PrecopyRounds: 8, DirtyThreshold: 0, Live: true}
	m := chaosMode{name: "abort", live: true, cfg: cfg}
	specs := []struct {
		name string
		spec chaos.Spec
	}{
		{"clean", chaos.Spec{}}, // record-only: abort crosses, responder stands down
		{"before-send", chaos.Spec{Victim: chaos.VictimLink,
			Point: chaos.Point{Class: chaos.ClassLiveAbort, N: 1, When: chaos.BeforeSend}}},
		{"after-recv", chaos.Spec{Victim: chaos.VictimDest,
			Point: chaos.Point{Class: chaos.ClassLiveAbort, N: 1, When: chaos.AfterRecv}}},
	}
	for _, c := range specs {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			e := newMutatingEngine(t, 1)
			p := stoppedLive(t, e, arch.DEC5000)
			inj := chaos.New(c.spec)
			if c.spec == (chaos.Spec{}) {
				inj = chaos.NewRecordOnly()
			}
			initErr, q, respErr := runChaosMigration(t, m, e, p, inj, cfg, cfg)
			if !errors.Is(initErr, ErrSourceExited) {
				t.Fatalf("initiator err = %v, want ErrSourceExited", initErr)
			}
			if respErr == nil || q != nil {
				t.Fatalf("responder restored a copy of an exited source: q=%v err=%v", q, respErr)
			}
			if c.name == "clean" {
				if !errors.Is(respErr, ErrLiveAborted) {
					t.Errorf("responder err = %v, want ErrLiveAborted", respErr)
				}
				var sawAbort bool
				for _, ev := range inj.Trace() {
					if ev.Class == chaos.ClassLiveAbort {
						sawAbort = true
					}
				}
				if !sawAbort {
					t.Error("clean run delivered no LIVE_ABORT frame")
				}
			} else if ClassifyFailure(respErr) != FailTransport {
				t.Errorf("responder failure classified %q, want %q (%v)",
					ClassifyFailure(respErr), FailTransport, respErr)
			}
		})
	}
}

// TestChaosKillBetweenRestoredAndCommit pins the exact window the commit
// handshake exists for: the connection dies after the initiator has seen
// RESTORED but before its COMMIT reaches the responder. Without the
// handshake both sides would keep a copy; with it the destination
// discards and the source rolls back byte-identically.
func TestChaosKillBetweenRestoredAndCommit(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	direct, err := p.Recapture()
	if err != nil {
		t.Fatal(err)
	}
	flight := obs.NewFlightRecorder(128)
	inj := chaos.New(chaos.Spec{Victim: chaos.VictimSource,
		Point: chaos.Point{Class: chaos.ClassRestored, N: 1, When: chaos.AfterRecv}})
	inj.Recorder = flight
	m := chaosMode{name: "v3", cfg: Config{ChunkSize: 1024, Window: 4}}
	initErr, q, respErr := runChaosMigration(t, m, e, p, inj, m.cfg, m.cfg)
	if initErr == nil || !errors.Is(initErr, chaos.ErrInjected) {
		t.Fatalf("initiator err = %v, want the injected commit-send failure", initErr)
	}
	if q != nil || respErr == nil {
		t.Fatalf("destination kept a copy without COMMIT: q=%v err=%v", q, respErr)
	}
	re, err := p.Recapture()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, direct) {
		t.Error("source state changed across the failed attempt")
	}
	res, err := Rollback(p, m.cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated || res.ExitCode != listExit {
		t.Errorf("rolled-back run = %+v, want exit %d", res, listExit)
	}
}
