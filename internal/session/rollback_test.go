package session

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
)

// Every early return in Initiate, InitiateLive, and awaitRestored must
// leave the source paused and resumable — the first half of the
// rollback-or-complete contract. These tests name each return path
// explicitly (the chaos matrix sweeps the same ground exhaustively but
// anonymously) and assert Rollback completes the source correctly.

func TestRollbackRunsToCompletion(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	metrics := obs.NewRegistry()
	res, err := Rollback(p, Config{Metrics: metrics})
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated || res.ExitCode != listExit {
		t.Errorf("rolled-back run = %+v, want exit %d", res, listExit)
	}
	if n := metrics.Counter("session.rolledback").Value(); n != 1 {
		t.Errorf("session.rolledback = %d, want 1", n)
	}
	if n := metrics.Histogram("session.rollback").Count(); n != 1 {
		t.Errorf("session.rollback histogram count = %d, want 1", n)
	}
}

func TestRollbackPausesAtNextGrantedPoll(t *testing.T) {
	// The mutating workload polls once per round, and stoppedLive grants
	// every poll: the rollback resumes to the NEXT poll stop, not to
	// completion — the source re-enters its migratable state.
	e := newMutatingEngine(t, 4)
	p := stoppedLive(t, e, arch.DEC5000)
	res, err := Rollback(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migrated {
		t.Errorf("rollback ran to completion; want a pause at the next granted poll")
	}
}

func TestRollbackFailureIsCounted(t *testing.T) {
	e := newListEngine(t)
	p, err := e.NewProcess(arch.DEC5000)
	if err != nil {
		t.Fatal(err)
	}
	// Never run, never stopped: there is no poll site to resume from.
	metrics := obs.NewRegistry()
	if _, err := Rollback(p, Config{Metrics: metrics}); err == nil {
		t.Fatal("rollback of a never-stopped process succeeded")
	}
	if n := metrics.Counter("session.rollback.failed").Value(); n != 1 {
		t.Errorf("session.rollback.failed = %d, want 1", n)
	}
}

// TestInitiateErrorPathsLeaveSourceResumable walks each named early
// return: kill the session at that exact path, then prove the source is
// byte-identical (stop-and-copy) and resumes to the correct exit.
func TestInitiateErrorPathsLeaveSourceResumable(t *testing.T) {
	coldCfg := Config{ChunkSize: 1024, Window: 4}
	// DirtyThreshold beyond any dirty set: the live loop runs round 0,
	// stops on "threshold", and the final round is DELTA #2 — a fixed
	// frame schedule the specs below can name.
	liveCfg := Config{ChunkSize: 4096, Window: 8, PrecopyRounds: 3, DirtyThreshold: 1 << 30, Live: true}
	cases := []struct {
		name string
		live bool
		cfg  Config
		spec chaos.Spec
	}{
		{"offer-send", false, coldCfg, chaos.Spec{Victim: chaos.VictimSource,
			Point: chaos.Point{Class: chaos.ClassOffer, N: 1, When: chaos.BeforeSend}}},
		{"handshake-read", false, coldCfg, chaos.Spec{Victim: chaos.VictimDest,
			Point: chaos.Point{Class: chaos.ClassOffer, N: 1, When: chaos.AfterRecv}}},
		{"transfer-send", false, coldCfg, chaos.Spec{Victim: chaos.VictimSource,
			Point: chaos.Point{Class: chaos.ClassData, N: 1, When: chaos.BeforeSend}}},
		{"confirm-read", false, coldCfg, chaos.Spec{Victim: chaos.VictimDest,
			Point: chaos.Point{Class: chaos.ClassRestored, N: 1, When: chaos.BeforeSend}}},
		{"commit-send", false, coldCfg, chaos.Spec{Victim: chaos.VictimSource,
			Point: chaos.Point{Class: chaos.ClassRestored, N: 1, When: chaos.AfterRecv}}},
		{"live-round-send", true, liveCfg, chaos.Spec{Victim: chaos.VictimSource,
			Point: chaos.Point{Class: chaos.ClassDelta, N: 1, When: chaos.BeforeSend}}},
		{"live-final-send", true, liveCfg, chaos.Spec{Victim: chaos.VictimSource,
			Point: chaos.Point{Class: chaos.ClassDelta, N: 2, When: chaos.BeforeSend}}},
		{"live-confirm-read", true, liveCfg, chaos.Spec{Victim: chaos.VictimDest,
			Point: chaos.Point{Class: chaos.ClassRestored, N: 1, When: chaos.BeforeSend}}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			m := chaosMode{name: c.name, live: c.live, cfg: c.cfg}
			e := m.engine(t)
			p := m.fixture(t, e)
			var direct []byte
			if !c.live {
				var err error
				if direct, err = p.Recapture(); err != nil {
					t.Fatal(err)
				}
			}
			inj := chaos.New(c.spec)
			initErr, q, respErr := runChaosMigration(t, m, e, p, inj, c.cfg, c.cfg)
			if initErr == nil {
				t.Fatalf("migration survived the injected fault")
			}
			if q != nil || respErr == nil {
				t.Fatalf("destination kept a copy across the %s failure: q=%v err=%v", c.name, q, respErr)
			}
			if !c.live {
				re, err := p.Recapture()
				if err != nil {
					t.Fatalf("recapture after %s failure: %v", c.name, err)
				}
				if !bytes.Equal(re, direct) {
					t.Errorf("source state changed across the %s failure", c.name)
				}
			} else {
				p.PollHook = nil
			}
			res, err := Rollback(p, c.cfg)
			if err != nil {
				t.Fatalf("rollback after %s failure: %v", c.name, err)
			}
			if res.Migrated || res.ExitCode != m.exit() {
				t.Errorf("rolled-back run = %+v, want exit %d", res, m.exit())
			}
		})
	}
}

// TestTransferRollsBackOnFailure pins the satellite fix: a failed
// Transfer used to return with the source still paused forever. Now it
// resumes the source before returning.
func TestTransferRollsBackOnFailure(t *testing.T) {
	e := newListEngine(t)
	p := stoppedAt(t, e, arch.DEC5000)
	metrics := obs.NewRegistry()
	flight := obs.NewFlightRecorder(64)
	// An impossible version range forces a REJECT: the handshake fails
	// before any state moves.
	cfg := Config{MinVersion: core.VersionSectioned, MaxVersion: core.VersionMono,
		Metrics: metrics, Recorder: flight}
	q, _, err := Transfer(e, "list", p, arch.SPARC20, cfg)
	if err == nil || q != nil {
		t.Fatalf("Transfer = %v, %v; want a negotiation failure", q, err)
	}
	if !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want ErrRejected", err)
	}
	if n := metrics.Counter("session.rolledback").Value(); n != 1 {
		t.Errorf("session.rolledback = %d, want 1 (source left paused forever?)", n)
	}
	var resumed bool
	for _, ev := range flight.Events() {
		if ev.Kind == "session.rollback" && strings.Contains(ev.Detail, "ran to completion") {
			resumed = true
		}
	}
	if !resumed {
		t.Errorf("flight recording lacks the rollback completion: %+v", flight.Events())
	}
}
