package session

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Registry holds the pre-distributed programs a daemon serves, keyed by
// program digest — the paper's "transformed source compiled on every
// potential destination machine", generalized to many programs behind one
// daemon. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	byDigest map[uint32]registered
}

type registered struct {
	engine *core.Engine
	name   string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byDigest: map[uint32]registered{}}
}

// Add registers an engine under a diagnostic name. A later Add with the
// same program digest replaces the earlier entry.
func (r *Registry) Add(name string, e *core.Engine) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byDigest[e.Digest()] = registered{engine: e, name: name}
}

// Lookup resolves a program digest to its engine and name.
func (r *Registry) Lookup(digest uint32) (*core.Engine, string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reg, ok := r.byDigest[digest]
	return reg.engine, reg.name, ok
}

// Len reports the number of registered programs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byDigest)
}

// Info identifies one inbound session in diagnostics and callbacks.
type Info struct {
	// ID is the daemon-assigned session number (0 for Respond outside a
	// daemon).
	ID uint64
	// Program is the registry name of the matched program.
	Program string
	// SrcMachine is the machine name the initiator declared.
	SrcMachine string
	// Params is the negotiated outcome.
	Params Params
	// Trace is the distributed-trace identity the initiator offered (the
	// responder adopts the trace ID and mints its own span ID under it);
	// zero when the initiator was untraced.
	Trace obs.TraceContext
	// Warm is the dedup outcome of a warm (store-assisted) transfer; nil
	// when the session ran a cold path.
	Warm *WarmStats
	// Live is the per-round outcome of a live (pre-copy) transfer; nil
	// when the session ran a stop-and-copy path.
	Live *LiveStats
}

// How names the transfer shape the session negotiated — the short form
// journals and fleet roll-ups report.
func (i Info) How() string {
	switch {
	case i.Live != nil:
		return fmt.Sprintf("live v%d", i.Params.Version)
	case i.Warm != nil:
		return fmt.Sprintf("warm v%d", i.Params.Version)
	case i.Params.Version == core.VersionMono:
		return "monolithic v1"
	case i.Params.Version == core.VersionStream:
		return "streamed v2"
	case i.Params.Version == core.VersionSectioned:
		return "sectioned v3"
	}
	return fmt.Sprintf("v%d", i.Params.Version)
}

// Respond serves exactly one inbound migration session on t: it reads the
// offer, negotiates against cfg and the registry, receives the state
// through the selected path, restores the process on machine m, and
// confirms with RESTORED. Under the commit handshake (negotiated by
// default) it then holds the restored process until the initiator's
// COMMIT arrives, returning it — ready to activate — only once the source
// has provably relinquished; a session that fails before that point
// returns no process, and the initiator rolls its source back instead. A
// negotiation failure is reported to the peer (REJECT) and returned.
func Respond(t link.Transport, reg *Registry, m *arch.Machine, cfg Config) (Info, *vm.Process, core.Timing, error) {
	hsStart := time.Now()
	hs := cfg.Trace.Child("handshake")
	raw, err := t.Recv()
	if err != nil {
		hs.End()
		return Info{}, nil, core.Timing{}, fmt.Errorf("session: handshake read: %w", err)
	}
	msg, err := parseMessage(raw)
	if err != nil {
		hs.End()
		return Info{}, nil, core.Timing{}, err
	}
	if msg.typ != msgOffer {
		hs.End()
		return Info{}, nil, core.Timing{}, fmt.Errorf("%w: expected OFFER, got message type %d", ErrProtocol, msg.typ)
	}
	o := msg.offer
	var tc obs.TraceContext
	if o.traceID != 0 {
		// Adopt the initiator's trace: same trace ID, our own span ID,
		// parented under the initiator's session span.
		tc = obs.TraceContext{TraceID: o.traceID, SpanID: obs.NewSpanID()}
		cfg.Trace.SetTraceContext(tc)
		cfg.Trace.SetParentSpan(o.spanID)
	}
	cfg.Recorder.Record("session.offer", "program %q digest %08x from %s trace %s", o.program, o.digest, o.machine, tc)
	engine, name, ok := reg.Lookup(o.digest)
	if !ok {
		err := fmt.Errorf("%w: digest %08x (program %q) not pre-distributed here", ErrUnknownProgram, o.digest, o.program)
		cfg.Recorder.Record("session.reject", "%v", err)
		t.Send(marshalReject(err.Error()))
		hs.End()
		return Info{Trace: tc}, nil, core.Timing{}, err
	}
	prm, err := negotiate(o, cfg)
	if err != nil {
		cfg.Recorder.Record("session.reject", "%v", err)
		t.Send(marshalReject(err.Error()))
		hs.End()
		return Info{Trace: tc}, nil, core.Timing{}, err
	}
	prm.Trace = cfg.Trace
	prm.Recorder = cfg.Recorder
	// Live transfer upgrades a sectioned agreement to version 4 when the
	// initiator advertised capLive and this side opted in; the echoed
	// ACCEPT capability (and version) commits to it. It subsumes warm —
	// the delta rounds already resolve bodies against the local store.
	prm.Live = o.caps&capLive != 0 && cfg.Live && prm.Version == core.VersionSectioned
	if prm.Live {
		prm.Version = core.VersionLive
		prm.Store = cfg.Store // may be nil: the store only helps, it is not required
		prm.Program = name
		prm.LiveResult = new(LiveStats)
	}
	// The commit handshake runs whenever the initiator speaks it (and
	// this side has not opted out); the echoed ACCEPT capability commits
	// to it. A legacy initiator never sends COMMIT, so echoing only an
	// advertised capability is what keeps this side from waiting forever.
	prm.Commit = o.caps&capCommit != 0 && !cfg.NoCommit
	// Warm transfer needs the sectioned version, the initiator's capWarm,
	// and a store on this side; the echoed ACCEPT capability commits to it.
	prm.Warm = !prm.Live && o.caps&capWarm != 0 && cfg.Store != nil && prm.Version == core.VersionSectioned
	if prm.Warm {
		prm.Store = cfg.Store
		prm.Program = name
		prm.WarmResult = new(WarmStats)
	}
	cfg.Trace.SetAttr("version", strconv.Itoa(int(prm.Version)))
	cfg.Trace.SetAttr("program", name)
	info := Info{Program: name, SrcMachine: o.machine, Params: prm, Trace: tc, Warm: prm.WarmResult, Live: prm.LiveResult}
	cfg.Recorder.Record("session.accept", "program %q v%d chunk %d window %d warm=%v live=%v commit=%v",
		name, prm.Version, prm.ChunkSize, prm.Window, prm.Warm, prm.Live, prm.Commit)
	err = t.Send(marshalAccept(prm))
	hs.End()
	cfg.observePhase("handshake", time.Since(hsStart))
	if err != nil {
		return info, nil, core.Timing{}, fmt.Errorf("session: accept send: %w", err)
	}
	path, err := pathFor(prm)
	if err != nil {
		return info, nil, core.Timing{}, err
	}
	p, timing, err := path.Receive(t, engine, m, prm)
	if err != nil {
		cfg.Recorder.Record("session.fail", "receive/restore: %v", err)
		return info, nil, core.Timing{}, err
	}
	cfg.observePhase("restore", timing.Restore)
	cfg.Recorder.Record("session.restored", "%d bytes restored in %v", timing.Bytes, timing.Restore)
	confirmStart := time.Now()
	confirm := cfg.Trace.Child("confirm")
	// When both sides trace, ship our exported span tree back on the
	// confirmation so the initiator can stitch the two into one. The
	// export necessarily precedes the send, so the confirm span appears
	// in-flight (near-zero duration) in the shipped tree.
	var spans []byte
	if o.traceID != 0 && cfg.Trace != nil {
		if b, jerr := json.Marshal(cfg.Trace.Export()); jerr == nil {
			spans = b
		}
	}
	err = t.Send(marshalRestored(uint64(timing.Bytes), spans))
	if err != nil {
		confirm.End()
		cfg.observePhase("confirm", time.Since(confirmStart))
		return info, nil, core.Timing{}, fmt.Errorf("session: restored send: %w", err)
	}
	if prm.Commit {
		// Hold the restored process inactive until the initiator commits
		// the handoff. No COMMIT means the initiator never saw RESTORED
		// (or could not answer): it is rolling the source back, so this
		// copy must be discarded — activating both would double the
		// process; activating neither would lose it.
		raw, rerr := t.Recv()
		if rerr == nil {
			var cm message
			if cm, rerr = parseMessage(raw); rerr == nil && cm.typ != msgCommit {
				rerr = fmt.Errorf("%w: expected COMMIT, got message type %d", ErrProtocol, cm.typ)
			}
		}
		if rerr != nil {
			confirm.End()
			cfg.observePhase("confirm", time.Since(confirmStart))
			cfg.Recorder.Record("session.discard", "no commit after RESTORED; discarding restored process: %v", rerr)
			return info, nil, core.Timing{}, fmt.Errorf("session: commit read: %w", rerr)
		}
		cfg.Recorder.Record("session.commit", "handoff committed; activating restored process")
	}
	confirm.End()
	cfg.observePhase("confirm", time.Since(confirmStart))
	return info, p, timing, nil
}

// Daemon is the persistent, concurrent migration daemon: an accept loop
// feeding a bounded worker pool, a program registry, per-session IDs and
// timeouts, and graceful drain. Configure the exported fields before
// calling Serve; they must not change afterwards.
type Daemon struct {
	// Registry holds the programs this daemon can restore.
	Registry *Registry
	// Mach is the machine restored processes run on.
	Mach *arch.Machine
	// Config is the daemon's negotiation posture (version range and
	// stream-parameter caps).
	Config Config
	// MaxConcurrent bounds the worker pool; excess accepted connections
	// wait for a free worker. Zero or negative selects 4.
	MaxConcurrent int
	// Timeout bounds each session's total wall time (handshake through
	// restoration) when the transport supports deadlines. Zero disables.
	Timeout time.Duration
	// Logf receives per-session diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// OnRestored is invoked — concurrently, from the session's worker —
	// with every successfully restored process. Typically it runs the
	// process to completion. Nil leaves the process to the counters only.
	OnRestored func(Info, *vm.Process, core.Timing)
	// Metrics receives the daemon's lifecycle counters (session.accepted,
	// session.restored, session.failed, session.bytes, and a
	// session.fail.<class> counter per failure classification), the
	// session.duration end-to-end latency histogram, and the pool gauges
	// (session.inflight, session.pool.capacity). Nil selects obs.Default
	// — the registry /metrics serves.
	Metrics *obs.Registry
	// Journal, when set, receives one structured record per completed
	// session — msg "session.restored" or "session.failed" with session
	// ID, program, peer, negotiated version/shape, trace ID, byte and
	// duration attributes, and (on failure) the fail class and the flight
	// dump path. When set it replaces the ad-hoc per-session Logf
	// lifecycle lines; Logf keeps the free-form diagnostics (traces,
	// flight recordings). Written concurrently from session workers —
	// slog handlers serialize internally.
	Journal *slog.Logger
	// OnSessionEnd, when set, is invoked after every session — restored
	// or failed, before OnRestored runs the process — with the session's
	// Info, its total wall time, and its error (nil on success). This is
	// the fleet-policy hook: SLO budget trackers and admission
	// controllers attach here without the session layer depending on
	// them. Called concurrently from session workers.
	OnSessionEnd func(Info, time.Duration, error)
	// Trace enables per-session phase tracing: each session runs under
	// its own span tree, rendered through Logf when the session ends.
	Trace bool
	// TraceDir, when non-empty, is where failed sessions dump their
	// flight recordings as JSON (flight-<traceID|session-N>.json). The
	// recording also goes to Logf either way; successful sessions never
	// dump.
	TraceDir string
	// FlightEvents bounds each session's flight-recorder ring (zero
	// selects the recorder default of 256).
	FlightEvents int
	// WrapTransport, when set, wraps each accepted connection before the
	// session protocol runs on it — the hook the chaos harness (and any
	// other transport middleware) injects through. Called concurrently.
	WrapTransport func(link.Transport) link.Transport

	counters stats.SessionCounters
	nextID   atomic.Uint64
	closing  atomic.Bool
	aborting atomic.Bool
	listener atomic.Pointer[link.Listener]
	wg       sync.WaitGroup

	connMu sync.Mutex
	conns  map[*link.Conn]struct{}
}

// Counters exposes the daemon's lifecycle counters.
func (d *Daemon) Counters() *stats.SessionCounters { return &d.counters }

// metrics resolves the registry the daemon publishes to.
func (d *Daemon) metrics() *obs.Registry {
	if d.Metrics != nil {
		return d.Metrics
	}
	return obs.Default
}

func (d *Daemon) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// Shutdown begins a graceful drain: the accept loop stops, in-flight
// sessions run to completion, and Serve returns once the pool is idle.
// Safe to call from a signal handler goroutine, and more than once.
func (d *Daemon) Shutdown() {
	if d.closing.CompareAndSwap(false, true) {
		if l := d.listener.Load(); l != nil {
			l.Close()
		}
	}
}

// Draining reports whether Shutdown has begun. This is the daemon's
// readiness signal: a draining daemon still answers health checks and
// finishes its in-flight sessions, but routes (/readyz) should stop
// sending it new ones.
func (d *Daemon) Draining() bool { return d.closing.Load() }

// Abort is the hard stop: Shutdown, plus every in-flight session's
// connection is closed under it. In-flight sessions fail with a
// transport-classified error (FailTransport) — never an unclassified one
// — and their initiators roll their sources back; the commit handshake
// guarantees no process is lost or doubled by the cut. Safe from a
// signal handler goroutine (migd aborts on a second SIGTERM), and more
// than once.
func (d *Daemon) Abort() {
	d.Shutdown()
	if !d.aborting.CompareAndSwap(false, true) {
		return
	}
	d.connMu.Lock()
	for conn := range d.conns {
		conn.Close()
	}
	d.connMu.Unlock()
}

// track registers an in-flight session's connection for Abort; it
// reports false — and closes the connection — when the daemon is already
// aborting.
func (d *Daemon) track(conn *link.Conn) bool {
	d.connMu.Lock()
	defer d.connMu.Unlock()
	if d.aborting.Load() {
		conn.Close()
		return false
	}
	if d.conns == nil {
		d.conns = map[*link.Conn]struct{}{}
	}
	d.conns[conn] = struct{}{}
	return true
}

func (d *Daemon) untrack(conn *link.Conn) {
	d.connMu.Lock()
	delete(d.conns, conn)
	d.connMu.Unlock()
}

// Serve accepts migration sessions on l until Shutdown (returning nil once
// drained) or until Accept fails for another reason (returning that
// error). Each session runs on its own worker: handshake, negotiated
// transfer, restoration, and the OnRestored callback, bounded by
// MaxConcurrent in flight at once.
func (d *Daemon) Serve(l *link.Listener) error {
	d.listener.Store(l)
	if d.closing.Load() {
		// Shutdown raced Serve: close the freshly stored listener too.
		l.Close()
	}
	maxc := d.MaxConcurrent
	if maxc <= 0 {
		maxc = 4
	}
	d.metrics().Gauge("session.pool.capacity").Set(int64(maxc))
	sem := make(chan struct{}, maxc)
	for {
		conn, err := l.Accept()
		if err != nil {
			d.wg.Wait()
			if d.closing.Load() {
				return nil
			}
			return err
		}
		d.counters.Accepted()
		d.metrics().Counter("session.accepted").Inc()
		sem <- struct{}{}
		d.wg.Add(1)
		go func() {
			defer func() { <-sem; d.wg.Done() }()
			d.handle(conn)
		}()
	}
}

// handle runs one session to completion on a worker.
func (d *Daemon) handle(conn *link.Conn) {
	id := d.nextID.Add(1)
	defer conn.Close()
	// The in-flight gauge brackets the whole worker — including the
	// failure paths and the OnRestored run — so pool occupancy on
	// /metrics is what a placement policy actually competes with.
	inflight := d.metrics().Gauge("session.inflight")
	inflight.Add(1)
	defer inflight.Add(-1)
	if !d.track(conn) {
		return
	}
	defer d.untrack(conn)
	if d.Timeout > 0 {
		conn.SetDeadline(time.Now().Add(d.Timeout))
	}
	var t link.Transport = conn
	if d.WrapTransport != nil {
		t = d.WrapTransport(conn)
	}
	cfg := d.Config
	var tr *obs.Tracer
	if d.Trace {
		tr = obs.NewTracer()
		cfg.Trace = tr.Start("session")
	}
	cfg.Metrics = d.metrics()
	// Every session records its flight events; the ring is read (and
	// dumped) only when the session fails.
	recorder := obs.NewFlightRecorder(d.FlightEvents)
	cfg.Recorder = recorder
	start := time.Now()
	info, p, timing, err := Respond(t, d.Registry, d.Mach, cfg)
	info.ID = id
	elapsed := time.Since(start)
	reg := d.metrics()
	reg.Histogram("session.duration").Observe(elapsed)
	if err != nil {
		class := ClassifyFailure(err)
		d.counters.Failed()
		reg.Counter("session.failed").Inc()
		reg.Counter("session.fail." + string(class)).Inc()
		recorder.Record("session.classify", "%s: %v", class, err)
		cfg.Trace.SetAttr("outcome", string(class))
		cfg.Trace.End()
		if d.Journal == nil {
			d.logf("session %d: failed (%s): %v", id, class, err)
		}
		d.logTrace(id, tr)
		flight := d.dumpFlight(id, info.Trace, recorder, string(class), err)
		d.journalSession(info, elapsed, timing, class, flight, err)
		if d.OnSessionEnd != nil {
			d.OnSessionEnd(info, elapsed, err)
		}
		return
	}
	d.counters.Restored(timing.Bytes)
	reg.Counter("session.restored").Inc()
	reg.Counter("session.bytes").Add(int64(timing.Bytes))
	cfg.Trace.SetAttr("outcome", "restored")
	cfg.Trace.End()
	if d.Journal == nil {
		d.logf("session %d: restored %q from %s (v%d, chunk %d, window %d): %d bytes in %.4fs",
			id, info.Program, info.SrcMachine, info.Params.Version, info.Params.ChunkSize,
			info.Params.Window, timing.Bytes, elapsed.Seconds())
	}
	d.logTrace(id, tr)
	d.journalSession(info, elapsed, timing, "", "", nil)
	if d.OnSessionEnd != nil {
		d.OnSessionEnd(info, elapsed, nil)
	}
	if d.OnRestored != nil {
		d.OnRestored(info, p, timing)
	}
}

// journalSession writes one structured record for a completed session.
// The record and the session's flight dump share the trace ID, so a
// fleet post-mortem can go from the journal line straight to the dump.
func (d *Daemon) journalSession(info Info, elapsed time.Duration, timing core.Timing, class FailureClass, flight string, cause error) {
	if d.Journal == nil {
		return
	}
	attrs := []slog.Attr{
		slog.Uint64("session", info.ID),
		slog.String("program", info.Program),
		slog.String("peer", info.SrcMachine),
		slog.Int("version", int(info.Params.Version)),
		slog.String("how", info.How()),
		slog.Int64("bytes", int64(timing.Bytes)),
		slog.Int64("elapsed_us", elapsed.Microseconds()),
		slog.Int64("restore_us", timing.Restore.Microseconds()),
	}
	if info.Trace.Valid() {
		attrs = append(attrs, slog.String("trace", obs.IDString(info.Trace.TraceID)))
	}
	if info.Live != nil {
		attrs = append(attrs, slog.Int("precopy_rounds", len(info.Live.Rounds)))
	}
	level, msg := slog.LevelInfo, "session.restored"
	if cause != nil {
		level, msg = slog.LevelError, "session.failed"
		attrs = append(attrs,
			slog.String("fail_class", string(class)),
			slog.String("error", cause.Error()))
		if flight != "" {
			attrs = append(attrs, slog.String("flight", flight))
		}
	}
	d.Journal.LogAttrs(context.Background(), level, msg, attrs...)
}

// dumpFlight publishes a failed session's flight recording: the event log
// through Logf, and — with TraceDir set — a JSON file correlated to the
// distributed trace by ID. It returns the dump path ("" when nothing was
// written) so the journal record can reference the exact file. Called
// only on failure, so the success path pays nothing beyond the in-memory
// ring.
func (d *Daemon) dumpFlight(id uint64, tc obs.TraceContext, recorder *obs.FlightRecorder, outcome string, cause error) string {
	if recorder == nil {
		return ""
	}
	d.logf("session %d flight recording (%d events, %d dropped):\n%s",
		id, recorder.Total(), recorder.Dropped(), strings.TrimRight(recorder.String(), "\n"))
	if d.TraceDir == "" {
		return ""
	}
	data := recorder.Export()
	data.Session = id
	data.Outcome = outcome
	if cause != nil {
		data.Error = cause.Error()
	}
	name := fmt.Sprintf("flight-session-%d.json", id)
	if tc.Valid() {
		data.TraceID = obs.IDString(tc.TraceID)
		name = "flight-" + data.TraceID + ".json"
	}
	b, err := json.MarshalIndent(data, "", "  ")
	if err != nil {
		d.logf("session %d: flight dump encode: %v", id, err)
		return ""
	}
	path := filepath.Join(d.TraceDir, name)
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		d.logf("session %d: flight dump write: %v", id, err)
		return ""
	}
	d.logf("session %d: flight recording dumped to %s", id, path)
	return path
}

// logTrace renders one completed session's span tree through Logf.
func (d *Daemon) logTrace(id uint64, tr *obs.Tracer) {
	if tr == nil || d.Logf == nil {
		return
	}
	d.logf("session %d trace:\n%s", id, strings.TrimRight(tr.Tree(), "\n"))
}
