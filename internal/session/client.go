package session

import (
	"fmt"
	"strconv"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/vm"
)

// Result describes one completed outbound migration.
type Result struct {
	// Params is the negotiated outcome the transfer ran under.
	Params Params
	// Timing covers the whole migration: collection, transmission, and
	// (on the responder) restoration is confirmed but not timed here.
	Timing core.Timing
}

// Initiate negotiates a migration session for the stopped process p over t
// and transmits its state through the agreed path, blocking until the
// responder confirms restoration. program names the pre-distributed
// program for the responder's registry lookup (the digest decides; the
// name is diagnostics).
func Initiate(t link.Transport, e *core.Engine, src *arch.Machine, program string, p *vm.Process, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	o := offer{
		minVer:  cfg.MinVersion,
		maxVer:  cfg.MaxVersion,
		digest:  e.Digest(),
		program: program,
		machine: src.Name,
		chunk:   uint32(cfg.ChunkSize),
		window:  uint32(cfg.Window),
	}
	hs := cfg.Trace.Child("handshake")
	if err := t.Send(marshalOffer(o)); err != nil {
		hs.End()
		return nil, fmt.Errorf("session: offer send: %w", err)
	}
	raw, err := t.Recv()
	if err != nil {
		hs.End()
		return nil, fmt.Errorf("session: handshake read: %w", err)
	}
	m, err := parseMessage(raw)
	hs.End()
	if err != nil {
		return nil, err
	}
	switch m.typ {
	case msgReject:
		return nil, fmt.Errorf("%w: %s", ErrRejected, m.reason)
	case msgAccept:
	default:
		return nil, fmt.Errorf("%w: expected ACCEPT or REJECT, got message type %d", ErrProtocol, m.typ)
	}
	prm := m.params
	prm.Trace = cfg.Trace
	cfg.Trace.SetAttr("version", strconv.Itoa(int(prm.Version)))
	path, err := pathFor(prm.Version)
	if err != nil {
		return nil, err
	}
	timing, err := path.Send(t, e, src, p, prm)
	if err != nil {
		return nil, err
	}
	timing.Collect = p.CaptureStats().Elapsed
	// Only terminate the source once the destination holds a restored,
	// runnable process.
	confirm := cfg.Trace.Child("confirm")
	raw, err = t.Recv()
	confirm.End()
	if err != nil {
		return nil, fmt.Errorf("session: restoration confirm read: %w", err)
	}
	m, err = parseMessage(raw)
	if err != nil {
		return nil, err
	}
	if m.typ != msgRestored {
		return nil, fmt.Errorf("%w: expected RESTORED, got message type %d", ErrProtocol, m.typ)
	}
	return &Result{Params: prm, Timing: timing}, nil
}

// Transfer migrates the stopped process p from its machine to dst over an
// in-memory pipe, running the full negotiated protocol end to end — the
// single-call workflow used by the in-process scheduler. It returns the
// restored process and the merged timing of all three phases.
func Transfer(e *core.Engine, program string, p *vm.Process, dst *arch.Machine, cfg Config) (*vm.Process, core.Timing, error) {
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add(program, e)
	type respondRes struct {
		q   *vm.Process
		t   core.Timing
		err error
	}
	c := make(chan respondRes, 1)
	go func() {
		_, q, tim, err := Respond(b, reg, dst, cfg)
		c <- respondRes{q, tim, err}
	}()
	res, err := Initiate(a, e, p.Mach, program, p, cfg)
	if err != nil {
		// Fail the responder's pending Recv so the goroutine joins.
		a.Close()
		b.Close()
	}
	rr := <-c
	if err != nil {
		return nil, core.Timing{}, err
	}
	if rr.err != nil {
		return nil, core.Timing{}, rr.err
	}
	timing := res.Timing
	timing.Restore = rr.t.Restore
	return rr.q, timing, nil
}
