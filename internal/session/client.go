package session

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/vm"
)

// Result describes one completed outbound migration.
type Result struct {
	// Params is the negotiated outcome the transfer ran under.
	Params Params
	// Timing covers the whole migration: collection, transmission, and
	// (on the responder) restoration is confirmed but not timed here.
	Timing core.Timing
	// Trace is the distributed-trace identity this migration ran under
	// (the initiator mints it; the responder adopts the trace ID).
	Trace obs.TraceContext
	// Remote is the responder's exported span tree, shipped back on the
	// RESTORED confirmation when both sides trace. It is also already
	// grafted into Config.Trace (AttachRemote), so rendering the local
	// tree shows the stitched whole; nil when the responder predates the
	// extension or was not tracing.
	Remote *obs.SpanData
	// Warm is the dedup outcome of a warm (store-assisted) transfer; nil
	// when the migration ran a cold path.
	Warm *WarmStats
	// Live is the per-round outcome of a live (pre-copy) transfer; nil
	// when the migration ran a stop-and-copy path.
	Live *LiveStats
}

// Initiate negotiates a migration session for the stopped process p over t
// and transmits its state through the agreed path, blocking until the
// responder confirms restoration. program names the pre-distributed
// program for the responder's registry lookup (the digest decides; the
// name is diagnostics).
func Initiate(t link.Transport, e *core.Engine, src *arch.Machine, program string, p *vm.Process, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	prm, tc, err := initiateHandshake(t, e, src, program, cfg)
	if err != nil {
		return nil, err
	}
	path, err := pathFor(prm)
	if err != nil {
		return nil, err
	}
	txStart := time.Now()
	timing, err := path.Send(t, e, src, p, prm)
	if err != nil {
		cfg.Recorder.Record("session.fail", "transfer: %v", err)
		return nil, err
	}
	timing.Collect = p.CaptureStats().Elapsed
	cfg.observePhase("collect", timing.Collect)
	cfg.observePhase("transport", time.Since(txStart))
	return awaitRestored(t, cfg, prm, timing, tc)
}

// initiateHandshake mints the trace identity, sends the OFFER, and parses
// the responder's answer into the Params both sides committed to. The
// returned Params carry the local plumbing (trace, recorder, store,
// warm/live results) the selected path needs.
func initiateHandshake(t link.Transport, e *core.Engine, src *arch.Machine, program string, cfg Config) (Params, obs.TraceContext, error) {
	// The initiator mints the migration's trace identity and offers it to
	// the responder, which adopts the trace ID and parents its own span
	// tree under our session span — one stitched tree per migration.
	tc := obs.NewTraceContext()
	cfg.Trace.SetTraceContext(tc)
	o := offer{
		minVer:  cfg.MinVersion,
		maxVer:  cfg.MaxVersion,
		digest:  e.Digest(),
		program: program,
		machine: src.Name,
		chunk:   uint32(cfg.ChunkSize),
		window:  uint32(cfg.Window),
		traceID: tc.TraceID,
		spanID:  tc.SpanID,
	}
	if cfg.Store != nil && cfg.MaxVersion >= core.VersionSectioned {
		o.caps |= capWarm
	}
	if cfg.Live && cfg.MaxVersion >= core.VersionSectioned {
		o.caps |= capLive
	}
	if !cfg.NoCommit {
		o.caps |= capCommit
	}
	cfg.Recorder.Record("session.offer", "program %q digest %08x trace %s", program, o.digest, tc)
	hsStart := time.Now()
	hs := cfg.Trace.Child("handshake")
	if err := t.Send(marshalOffer(o)); err != nil {
		hs.End()
		return Params{}, tc, fmt.Errorf("session: offer send: %w", err)
	}
	raw, err := t.Recv()
	if err != nil {
		hs.End()
		return Params{}, tc, fmt.Errorf("session: handshake read: %w", err)
	}
	m, err := parseMessage(raw)
	hs.End()
	cfg.observePhase("handshake", time.Since(hsStart))
	if err != nil {
		return Params{}, tc, err
	}
	switch m.typ {
	case msgReject:
		return Params{}, tc, fmt.Errorf("%w: %s", ErrRejected, m.reason)
	case msgAccept:
	default:
		return Params{}, tc, fmt.Errorf("%w: expected ACCEPT or REJECT, got message type %d", ErrProtocol, m.typ)
	}
	prm := m.params
	prm.Trace = cfg.Trace
	prm.Recorder = cfg.Recorder
	// The responder echoes a capability only when we advertised it, but
	// guard on our own posture anyway: warm needs our store and the
	// sectioned version; live needs our opt-in and the upgraded version.
	prm.Live = prm.Live && cfg.Live && prm.Version == core.VersionLive
	if prm.Version == core.VersionLive && !prm.Live {
		return Params{}, tc, fmt.Errorf("%w: responder selected version %d without the live capability",
			ErrProtocol, prm.Version)
	}
	prm.Commit = prm.Commit && !cfg.NoCommit
	prm.Warm = prm.Warm && !prm.Live && cfg.Store != nil && prm.Version == core.VersionSectioned
	if prm.Warm {
		prm.Store = cfg.Store
		prm.Program = program
		prm.WarmResult = new(WarmStats)
	}
	if prm.Live {
		prm.Store = cfg.Store // may be nil: the store only helps, it is not required
		prm.Program = program
		prm.LiveResult = new(LiveStats)
	}
	cfg.Trace.SetAttr("version", strconv.Itoa(int(prm.Version)))
	cfg.Recorder.Record("session.accept", "v%d chunk %d window %d warm=%v live=%v commit=%v",
		prm.Version, prm.ChunkSize, prm.Window, prm.Warm, prm.Live, prm.Commit)
	return prm, tc, nil
}

// awaitRestored blocks for the responder's RESTORED confirmation,
// acknowledges it with COMMIT when the commit handshake was negotiated,
// and assembles the migration's Result. Only after it returns may the
// source process terminate: the destination provably holds a restored,
// runnable process, and — under the commit handshake — holds it inactive
// until our COMMIT was accepted by the transport. An error from any step,
// including the COMMIT send, means the migration did not happen: the
// source remains paused at its poll point and must roll back (Rollback).
func awaitRestored(t link.Transport, cfg Config, prm Params, timing core.Timing, tc obs.TraceContext) (*Result, error) {
	confirmStart := time.Now()
	confirm := cfg.Trace.Child("confirm")
	raw, err := t.Recv()
	if err != nil {
		confirm.End()
		cfg.observePhase("confirm", time.Since(confirmStart))
		cfg.Recorder.Record("session.fail", "confirm read: %v", err)
		return nil, fmt.Errorf("session: restoration confirm read: %w", err)
	}
	m, err := parseMessage(raw)
	if err != nil {
		confirm.End()
		cfg.observePhase("confirm", time.Since(confirmStart))
		return nil, err
	}
	if m.typ != msgRestored {
		confirm.End()
		cfg.observePhase("confirm", time.Since(confirmStart))
		return nil, fmt.Errorf("%w: expected RESTORED, got message type %d", ErrProtocol, m.typ)
	}
	if prm.Commit {
		// The handoff pivot: a COMMIT the transport accepted will be
		// delivered (frames are atomic under the fail-stop model), so a
		// nil error here is the license to relinquish the source. A
		// failed send means the responder will never activate — the
		// source must roll back instead.
		if err := t.Send(marshalCommit()); err != nil {
			confirm.End()
			cfg.observePhase("confirm", time.Since(confirmStart))
			cfg.Recorder.Record("session.fail", "commit send: %v", err)
			return nil, fmt.Errorf("session: commit send: %w", err)
		}
		cfg.Recorder.Record("session.commit", "handoff acknowledged; source relinquishes")
	}
	confirm.End()
	cfg.observePhase("confirm", time.Since(confirmStart))
	res := &Result{Params: prm, Timing: timing, Trace: tc, Warm: prm.WarmResult, Live: prm.LiveResult}
	if len(m.spans) > 0 {
		// The responder shipped its exported span tree: graft it under our
		// session span so one render shows the whole migration.
		var remote obs.SpanData
		if err := json.Unmarshal(m.spans, &remote); err != nil {
			// A malformed tree costs the stitched view, not the migration.
			cfg.Recorder.Record("session.trace", "discarding malformed remote spans: %v", err)
		} else {
			res.Remote = &remote
			cfg.Trace.AttachRemote(&remote)
		}
	}
	cfg.Recorder.Record("session.restored", "%d bytes confirmed", m.bytes)
	return res, nil
}

// Rollback resumes a source process after a failed migration attempt.
// Initiate, InitiateLive, and Transfer guarantee that on error the source
// is still paused at its poll point with its state intact (byte-identical
// to a capture taken before the attempt, for stop-and-copy paths);
// Rollback is the other half of the recovery contract — the process
// continues executing locally, to its next granted poll stop or to
// completion, as if the migration had never been attempted. The elapsed
// resume time is observed into the "session.rollback" histogram and the
// "session.rolledback" counter; failures (a source too damaged to resume,
// which the chaos matrix asserts never happens from a transport fault)
// increment "session.rollback.failed".
func Rollback(p *vm.Process, cfg Config) (*vm.Result, error) {
	start := time.Now()
	res, err := p.ResumeRun()
	cfg.metrics().Histogram("session.rollback").Observe(time.Since(start))
	if err != nil {
		cfg.metrics().Counter("session.rollback.failed").Inc()
		cfg.Recorder.Record("session.rollback", "source resume failed: %v", err)
		return nil, fmt.Errorf("session: rollback resume: %w", err)
	}
	cfg.metrics().Counter("session.rolledback").Inc()
	switch {
	case res.Migrated:
		cfg.Recorder.Record("session.rollback", "source resumed; paused at next granted poll")
	default:
		cfg.Recorder.Record("session.rollback", "source resumed; ran to completion (exit %d)", res.ExitCode)
	}
	return res, nil
}

// Transfer migrates the stopped process p from its machine to dst over an
// in-memory pipe, running the full negotiated protocol end to end — the
// single-call workflow used by the in-process scheduler. It returns the
// restored process and the merged timing of all three phases.
//
// On failure the source is rolled back before Transfer returns: the
// paused process resumes execution (Rollback) to its next granted poll
// stop or to completion, so an error never strands it paused forever.
// Exactly one live copy exists either way — the restored destination on
// success, the resumed source on failure.
func Transfer(e *core.Engine, program string, p *vm.Process, dst *arch.Machine, cfg Config) (*vm.Process, core.Timing, error) {
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := NewRegistry()
	reg.Add(program, e)
	type respondRes struct {
		q   *vm.Process
		t   core.Timing
		err error
	}
	c := make(chan respondRes, 1)
	go func() {
		_, q, tim, err := Respond(b, reg, dst, cfg)
		c <- respondRes{q, tim, err}
	}()
	res, err := Initiate(a, e, p.Mach, program, p, cfg)
	if err != nil {
		// Fail the responder's pending Recv so the goroutine joins.
		a.Close()
		b.Close()
	}
	rr := <-c
	if err != nil {
		// The migration did not happen; the source still owns the
		// process. Resume it so the failure never strands it paused.
		Rollback(p, cfg)
		return nil, core.Timing{}, err
	}
	if rr.err != nil {
		return nil, core.Timing{}, rr.err
	}
	timing := res.Timing
	timing.Restore = rr.t.Restore
	return rr.q, timing, nil
}
