package session

import (
	"errors"
	"testing"
)

// FuzzHandshake feeds arbitrary frames to the session-layer message
// parser. A daemon reads these bytes straight off an accepted connection,
// so parseMessage must reject anything malformed with an ErrProtocol-
// classified error — never panic — and anything it accepts must survive a
// re-marshal round trip.
func FuzzHandshake(f *testing.F) {
	of := offer{
		minVer: 1, maxVer: 3, digest: 0xdeadbeef,
		program: "list", machine: "sparc20", chunk: 4096, window: 8,
	}
	full := marshalOffer(of)
	f.Add(full)
	f.Add(marshalAccept(Params{Version: 2, ChunkSize: 65536, Window: 16}))
	f.Add(marshalReject("session: no common protocol version"))
	f.Add(marshalRestored(1 << 20))
	f.Add(full[:6])           // truncated inside the type word
	f.Add(full[:len(full)-3]) // truncated final field
	f.Add([]byte{})           // empty frame
	f.Add([]byte("MSES"))     // magic alone, big-endian text
	corrupt := append([]byte(nil), full...)
	corrupt[4] ^= 0xa5 // message type corruption
	f.Add(corrupt)
	huge := append([]byte(nil), full...)
	huge[20] = 0xff // absurd program-string length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseMessage(data)
		if err != nil {
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("unclassified parse error: %v", err)
			}
			return
		}
		// Accepted input: the decoded message must re-marshal to something
		// the parser decodes to the same message.
		var again []byte
		switch m.typ {
		case msgOffer:
			again = marshalOffer(m.offer)
		case msgAccept:
			again = marshalAccept(m.params)
		case msgReject:
			again = marshalReject(m.reason)
		case msgRestored:
			again = marshalRestored(m.bytes)
		default:
			t.Fatalf("parser accepted unknown message type %d", m.typ)
		}
		m2, err := parseMessage(again)
		if err != nil {
			t.Fatalf("re-marshal rejected: %v", err)
		}
		if m2.typ != m.typ || m2.offer != m.offer || m2.reason != m.reason || m2.bytes != m.bytes {
			t.Fatalf("re-marshal round trip differs: %+v vs %+v", m2, m)
		}
		if m2.params.Version != m.params.Version || m2.params.ChunkSize != m.params.ChunkSize ||
			m2.params.Window != m.params.Window {
			t.Fatalf("re-marshal params differ: %+v vs %+v", m2.params, m.params)
		}
	})
}
