package session

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/xdr"
)

// legacyOffer marshals an OFFER in the pre-tracing wire layout — it ends
// after window, with no trace-context pair — as an old initiator would
// emit it.
func legacyOffer(o offer) []byte {
	e := xdr.NewEncoder(64 + len(o.program) + len(o.machine))
	e.PutUint32(sessionMagic)
	e.PutUint32(msgOffer)
	e.PutUint32(o.minVer)
	e.PutUint32(o.maxVer)
	e.PutUint32(o.digest)
	e.PutString(o.program)
	e.PutString(o.machine)
	e.PutUint32(o.chunk)
	e.PutUint32(o.window)
	return e.Bytes()
}

// FuzzHandshake feeds arbitrary frames to the session-layer message
// parser. A daemon reads these bytes straight off an accepted connection,
// so parseMessage must reject anything malformed with an ErrProtocol-
// classified error — never panic — and anything it accepts must survive a
// re-marshal round trip.
func FuzzHandshake(f *testing.F) {
	of := offer{
		minVer: 1, maxVer: 3, digest: 0xdeadbeef,
		program: "list", machine: "sparc20", chunk: 4096, window: 8,
	}
	full := marshalOffer(of)
	f.Add(full)
	traced := of
	traced.traceID, traced.spanID = 0x0123456789abcdef, 0xfedcba9876543210
	f.Add(marshalOffer(traced))
	f.Add(legacyOffer(of)) // pre-tracing layout: must still parse
	warm := traced
	warm.caps = capWarm
	f.Add(marshalOffer(warm))
	live := traced
	live.caps = capLive
	f.Add(marshalOffer(live))
	both := traced
	both.caps = capWarm | capLive
	f.Add(marshalOffer(both))
	f.Add(marshalAccept(Params{Version: 2, ChunkSize: 65536, Window: 16}))
	f.Add(marshalAccept(Params{Version: 3, ChunkSize: 65536, Window: 16, Warm: true}))
	f.Add(marshalAccept(Params{Version: 4, ChunkSize: 65536, Window: 16, Live: true}))
	f.Add(marshalAccept(Params{Version: 3, ChunkSize: 65536, Window: 16, Commit: true}))
	committing := traced
	committing.caps = capWarm | capLive | capCommit
	f.Add(marshalOffer(committing))
	// COMMIT and its chaos-truncated variants: the harness kills at frame
	// boundaries, but a buggy transport could still hand the parser a cut
	// frame — it must classify, never crash.
	commit := marshalCommit()
	f.Add(commit)
	f.Add(commit[:6])
	f.Add(commit[:4])
	// A DELTA frame: parseMessage only speaks handshake messages, so this
	// must be rejected as a protocol violation, never crash the parser.
	f.Add(marshalDelta(1, liveFinal, 12, nil))
	f.Add(marshalReject("session: no common protocol version"))
	f.Add(marshalRestored(1<<20, nil))
	f.Add(marshalRestored(1<<20, []byte(`{"name":"session","dur_us":42}`)))
	f.Add(full[:6])           // truncated inside the type word
	f.Add(full[:len(full)-3]) // truncated final field
	f.Add([]byte{})           // empty frame
	f.Add([]byte("MSES"))     // magic alone, big-endian text
	corrupt := append([]byte(nil), full...)
	corrupt[4] ^= 0xa5 // message type corruption
	f.Add(corrupt)
	huge := append([]byte(nil), full...)
	huge[20] = 0xff // absurd program-string length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseMessage(data)
		if err != nil {
			if !errors.Is(err, ErrProtocol) {
				t.Fatalf("unclassified parse error: %v", err)
			}
			return
		}
		// Accepted input: the decoded message must re-marshal to something
		// the parser decodes to the same message.
		var again []byte
		switch m.typ {
		case msgOffer:
			again = marshalOffer(m.offer)
		case msgAccept:
			again = marshalAccept(m.params)
		case msgReject:
			again = marshalReject(m.reason)
		case msgRestored:
			again = marshalRestored(m.bytes, m.spans)
		case msgCommit:
			again = marshalCommit()
		default:
			t.Fatalf("parser accepted unknown message type %d", m.typ)
		}
		m2, err := parseMessage(again)
		if err != nil {
			t.Fatalf("re-marshal rejected: %v", err)
		}
		if m2.typ != m.typ || m2.offer != m.offer || m2.reason != m.reason || m2.bytes != m.bytes {
			t.Fatalf("re-marshal round trip differs: %+v vs %+v", m2, m)
		}
		if !bytes.Equal(m2.spans, m.spans) {
			t.Fatalf("re-marshal spans differ: %q vs %q", m2.spans, m.spans)
		}
		if m2.params.Version != m.params.Version || m2.params.ChunkSize != m.params.ChunkSize ||
			m2.params.Window != m.params.Window || m2.params.Warm != m.params.Warm ||
			m2.params.Live != m.params.Live || m2.params.Commit != m.params.Commit {
			t.Fatalf("re-marshal params differ: %+v vs %+v", m2.params, m.params)
		}
	})
}
