package session

import (
	"errors"
	"io"
	"net"
	"os"

	"repro/internal/chaos"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/snapshot"
	"repro/internal/store"
	"repro/internal/stream"
)

// FailureClass buckets session failures for diagnostics: the daemon logs
// the class next to each failed session so an operator can tell a damaged
// or forged stream apart from a peer running a different program build
// without reading the error chain.
type FailureClass string

const (
	// FailCorrupt: the transferred state itself is damaged — truncated
	// records, CRC mismatches, invalid references (collect.ErrCorruptStream,
	// the envelope/stream checksums, the v3 section framing errors).
	FailCorrupt FailureClass = "corrupt-stream"
	// FailMismatch: a well-formed state that belongs to a different
	// program build or plan (collect.ErrMismatch, digest mismatches).
	FailMismatch FailureClass = "program-mismatch"
	// FailNegotiation: the handshake never produced parameters.
	FailNegotiation FailureClass = "negotiation"
	// FailTransport: the connection died or misbehaved under the session
	// — closed transports and links (a peer crash, a daemon drain or
	// Abort, SIGTERM mid-session), deadline expiry, truncated reads,
	// injected chaos faults — plus, as the fallthrough, anything no other
	// class claims. The common shutdown and fault sentinels are matched
	// explicitly so the classification is affirmative, not an accident of
	// the fallthrough surviving a refactor.
	FailTransport FailureClass = "transport"
)

// ClassifyFailure maps a session error to its FailureClass by walking the
// wrapped-error chain for the typed sentinels the collect and core layers
// attach at each decode failure.
func ClassifyFailure(err error) FailureClass {
	switch {
	case errors.Is(err, collect.ErrCorruptStream),
		errors.Is(err, core.ErrChecksum),
		errors.Is(err, core.ErrBadEnvelope),
		errors.Is(err, stream.ErrVerify),
		errors.Is(err, snapshot.ErrBadSnapshot),
		errors.Is(err, snapshot.ErrBadSection),
		errors.Is(err, snapshot.ErrTruncated),
		errors.Is(err, snapshot.ErrChecksum),
		errors.Is(err, store.ErrCorrupt),
		errors.Is(err, store.ErrBadManifest),
		errors.Is(err, store.ErrNotFound):
		return FailCorrupt
	case errors.Is(err, collect.ErrMismatch),
		errors.Is(err, core.ErrProgramMismatch),
		errors.Is(err, core.ErrVersionMismatch):
		return FailMismatch
	case errors.Is(err, ErrRejected),
		errors.Is(err, ErrNoVersion),
		errors.Is(err, ErrUnknownProgram):
		return FailNegotiation
	case errors.Is(err, link.ErrClosed),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, os.ErrDeadlineExceeded),
		errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, chaos.ErrInjected),
		errors.Is(err, stream.ErrInjected),
		errors.Is(err, stream.ErrRetriesExhausted):
		return FailTransport
	}
	return FailTransport
}
