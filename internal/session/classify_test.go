package session

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

func TestClassifyFailure(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{fmt.Errorf("vm: restoring heap section 2: %w", collect.ErrCorruptStream), FailCorrupt},
		{fmt.Errorf("core: %w", core.ErrChecksum), FailCorrupt},
		{core.ErrBadEnvelope, FailCorrupt},
		{fmt.Errorf("stream: %w", stream.ErrVerify), FailCorrupt},
		{fmt.Errorf("vm: %w", snapshot.ErrChecksum), FailCorrupt},
		{snapshot.ErrTruncated, FailCorrupt},
		{snapshot.ErrBadSection, FailCorrupt},
		{fmt.Errorf("prologue: %w", snapshot.ErrBadSnapshot), FailCorrupt},
		{fmt.Errorf("vm: frame count: %w", collect.ErrMismatch), FailMismatch},
		{core.ErrProgramMismatch, FailMismatch},
		{core.ErrVersionMismatch, FailMismatch},
		{fmt.Errorf("session: %w", ErrRejected), FailNegotiation},
		{ErrNoVersion, FailNegotiation},
		{ErrUnknownProgram, FailNegotiation},
		{errors.New("connection reset by peer"), FailTransport},
		{fmt.Errorf("read tcp: %w", errors.New("i/o timeout")), FailTransport},
		// The affirmatively matched shutdown and fault sentinels: a daemon
		// drain, a peer crash, a deadline, a truncated read, and injected
		// chaos must all land in FailTransport by name, not by falling
		// through the default.
		{fmt.Errorf("session: handshake read: %w", link.ErrClosed), FailTransport},
		{fmt.Errorf("session: restored send: %w", net.ErrClosed), FailTransport},
		{fmt.Errorf("stream: %w", os.ErrDeadlineExceeded), FailTransport},
		{fmt.Errorf("session: %w", io.EOF), FailTransport},
		{fmt.Errorf("frame: %w", io.ErrUnexpectedEOF), FailTransport},
		{fmt.Errorf("session: commit send: %w", chaos.ErrInjected), FailTransport},
		{fmt.Errorf("stream: %w", stream.ErrInjected), FailTransport},
		{fmt.Errorf("stream: %w", stream.ErrRetriesExhausted), FailTransport},
	}
	for _, c := range cases {
		if got := ClassifyFailure(c.err); got != c.want {
			t.Errorf("ClassifyFailure(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}

// TestDaemonAbortClassifiesInFlightAsTransport pins the satellite fix: a
// daemon hard-stopped mid-session (the second SIGTERM, a drain deadline)
// closes the in-flight connections under their sessions, and each failure
// must land in the named FailTransport bucket — an operator reading the
// counters sees "transport", never an unclassified mystery.
func TestDaemonAbortClassifiesInFlightAsTransport(t *testing.T) {
	e := newListEngine(t)
	reg := NewRegistry()
	reg.Add("list", e)
	metrics := obs.NewRegistry()
	d := &Daemon{Registry: reg, Mach: arch.SPARC20, Metrics: metrics}
	addr, served := daemonFixture(t, d)

	conn, err := link.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A well-formed handshake, then silence: the worker accepts and
	// blocks reading state frames — a genuinely in-flight session.
	o := offer{minVer: 1, maxVer: 3, digest: e.Digest(), program: "list",
		machine: arch.DEC5000.Name, chunk: 4096, window: 8}
	if err := conn.Send(marshalOffer(o)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Recv(); err != nil { // ACCEPT
		t.Fatal(err)
	}
	d.Abort()
	if err := <-served; err != nil {
		t.Fatalf("serve: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for metrics.Counter("session.failed").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("aborted session never counted as failed")
		}
		time.Sleep(time.Millisecond)
	}
	if n := metrics.Counter("session.fail.transport").Value(); n != 1 {
		t.Errorf("session.fail.transport = %d, want 1 (an aborted in-flight session must classify as transport)", n)
	}
}
