package session

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/snapshot"
	"repro/internal/stream"
)

func TestClassifyFailure(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{fmt.Errorf("vm: restoring heap section 2: %w", collect.ErrCorruptStream), FailCorrupt},
		{fmt.Errorf("core: %w", core.ErrChecksum), FailCorrupt},
		{core.ErrBadEnvelope, FailCorrupt},
		{fmt.Errorf("stream: %w", stream.ErrVerify), FailCorrupt},
		{fmt.Errorf("vm: %w", snapshot.ErrChecksum), FailCorrupt},
		{snapshot.ErrTruncated, FailCorrupt},
		{snapshot.ErrBadSection, FailCorrupt},
		{fmt.Errorf("prologue: %w", snapshot.ErrBadSnapshot), FailCorrupt},
		{fmt.Errorf("vm: frame count: %w", collect.ErrMismatch), FailMismatch},
		{core.ErrProgramMismatch, FailMismatch},
		{core.ErrVersionMismatch, FailMismatch},
		{fmt.Errorf("session: %w", ErrRejected), FailNegotiation},
		{ErrNoVersion, FailNegotiation},
		{ErrUnknownProgram, FailNegotiation},
		{errors.New("connection reset by peer"), FailTransport},
		{fmt.Errorf("read tcp: %w", errors.New("i/o timeout")), FailTransport},
	}
	for _, c := range cases {
		if got := ClassifyFailure(c.err); got != c.want {
			t.Errorf("ClassifyFailure(%v) = %s, want %s", c.err, got, c.want)
		}
	}
}
