package session

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
)

// TestTransferMatrix drives every envelope version across architecture
// profiles covering both endiannesses and both word sizes: the full
// negotiated protocol runs over link.Pipe, and the restored process must
// re-collect to the byte-identical machine-independent state the source
// captured directly, then run to the correct exit code. The subtests run
// in parallel, so under -race this also exercises concurrent sessions.
func TestTransferMatrix(t *testing.T) {
	e := newListEngine(t)
	pairs := []struct {
		src, dst *arch.Machine
	}{
		{arch.DEC5000, arch.SPARC20}, // LE ILP32 -> BE ILP32
		{arch.SPARC20, arch.AMD64},   // BE ILP32 -> LE LP64
		{arch.AMD64, arch.SPARCV9},   // LE LP64  -> BE LP64
		{arch.SPARCV9, arch.DEC5000}, // BE LP64  -> LE ILP32
		{arch.I386, arch.Alpha},      // LE ILP32 (packed doubles) -> LE LP64
	}
	versions := []uint32{core.VersionMono, core.VersionStream, core.VersionSectioned}
	for _, pr := range pairs {
		for _, v := range versions {
			pr, v := pr, v
			t.Run(fmt.Sprintf("v%d/%s_to_%s", v, pr.src.Name, pr.dst.Name), func(t *testing.T) {
				t.Parallel()
				p := stoppedAt(t, e, pr.src)
				direct, err := p.Recapture()
				if err != nil {
					t.Fatal(err)
				}
				q, timing, err := Transfer(e, "list", p, pr.dst,
					Config{MinVersion: v, MaxVersion: v, ChunkSize: 512, Window: 4})
				if err != nil {
					t.Fatal(err)
				}
				if q.Mach != pr.dst {
					t.Fatalf("restored process on %s, want %s", q.Mach.Name, pr.dst.Name)
				}
				if timing.Bytes == 0 {
					t.Error("no bytes recorded")
				}
				re, err := q.Recapture()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(re, direct) {
					t.Errorf("recaptured state on %s differs from the source's direct capture (%d vs %d bytes)",
						pr.dst.Name, len(re), len(direct))
				}
				q.MaxSteps = 1_000_000
				res, err := q.Run()
				if err != nil {
					t.Fatal(err)
				}
				if res.Migrated || res.ExitCode != listExit {
					t.Errorf("resumed run = %+v, want exit %d", res, listExit)
				}
			})
		}
	}
}
