// Package store is the content-addressed checkpoint repository: section
// bodies of sectioned (v3) snapshots are stored once under their SHA-256,
// and a checkpoint is a small manifest — program digest, one (kind, id,
// length, hash) entry per section, and the hash of the parent manifest —
// chaining into a point-in-time history of a running process.
//
// The design follows the content-naming idea of Process Migration over
// CCNx (PAPERS.md): the v3 sectioned format already gives every heap
// component, frame, and globals block a stable identity and CRC, which
// makes the section body the natural unit of content addressing. A fleet
// checkpointing millions of near-identical sessions persists each distinct
// body exactly once; a warm migration sends a manifest plus only the
// sections the destination's store lacks (internal/session's HAVE/WANT
// exchange).
//
// # Layout
//
//	<dir>/format          "migstore/1\n"
//	<dir>/blobs/ab/cd...  section body, path is its SHA-256 hex (sharded)
//	<dir>/manifests/<hex> encoded manifest, path is its SHA-256 hex
//	<dir>/refs/<name>     manifest hex — the head of a named checkpoint chain
//
// Every object write is atomic (temp file + rename), so readers never see
// a partial object; GetBlob and GetManifest re-verify the content hash on
// every read, so silent on-disk corruption surfaces as ErrCorrupt rather
// than a bad restore.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/snapshot"
	"repro/internal/xdr"
)

// Errors reported by the store. ErrCorrupt and ErrBadManifest mean an
// object cannot be trusted (the session layer classifies them with the
// corrupt-stream failures); ErrNotFound covers missing blobs, missing
// manifests, and dangling parent links.
var (
	// ErrBadManifest is a manifest that does not decode: wrong magic or
	// version, implausible entry count, unknown section kind.
	ErrBadManifest = errors.New("store: malformed manifest")
	// ErrCorrupt is a stored object whose content does not match its
	// address: a truncated blob file or a body hashing to a different
	// SHA-256 than its name.
	ErrCorrupt = errors.New("store: corrupt object")
	// ErrNotFound is a blob, manifest, or ref the store does not hold —
	// including a manifest whose parent link dangles.
	ErrNotFound = errors.New("store: object not found")
)

// HashSize is the content-address width (SHA-256).
const HashSize = sha256.Size

// Hash is a content address: the SHA-256 of a section body or of an
// encoded manifest. The zero Hash means "no object" (a chain root's
// parent).
type Hash [HashSize]byte

// HashBytes computes the content address of b.
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// IsZero reports whether h is the null address.
func (h Hash) IsZero() bool { return h == Hash{} }

// String renders the full hex address.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// Short renders the abbreviated address used in logs and tables.
func (h Hash) Short() string { return hex.EncodeToString(h[:6]) }

// ParseHash decodes a full hex content address.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != HashSize {
		return Hash{}, fmt.Errorf("%w: %q is not a %d-byte hex hash", ErrNotFound, s, HashSize)
	}
	copy(h[:], b)
	return h, nil
}

// manifestMagic opens every encoded manifest ("MCM1").
const manifestMagic = 0x4d434d31

// manifestVersion is the manifest wire version this package encodes.
const manifestVersion = 1

// maxEntries bounds the declared entry count, mirroring the snapshot
// layer's own section bound.
const maxEntries = 1 << 20

// Entry addresses one section of a checkpointed snapshot: the section
// header fields plus the content hash of the body.
type Entry struct {
	Kind   snapshot.Kind
	ID     uint32
	Length uint32
	Hash   Hash
}

// Manifest is one checkpoint: the identity of the program and machine the
// snapshot was captured from, the chain position, and one entry per
// section in the snapshot's deterministic order. Materializing the entries
// in order reproduces the original v3 snapshot byte for byte.
type Manifest struct {
	// ProgramDigest identifies the program build (core.Engine.Digest) the
	// snapshot belongs to; a restore verifies it before rebuilding.
	ProgramDigest uint32
	// Machine is the name of the machine the snapshot was captured on.
	Machine string
	// Seq numbers the checkpoint within its chain (1 = chain root).
	Seq uint64
	// Parent is the content address of the previous manifest in the
	// chain; zero for the root.
	Parent Hash
	// Entries lists every section in snapshot order.
	Entries []Entry
}

// SnapshotBytes computes the size of the v3 snapshot the manifest
// describes (prologue plus each section's header, CRC, and padded body).
func (m *Manifest) SnapshotBytes() int {
	n := 8
	for _, e := range m.Entries {
		n += 16 + int(e.Length+3)&^3
	}
	return n
}

// Encode renders the manifest in its canonical wire form. The manifest's
// content address is the SHA-256 of these bytes.
func (m *Manifest) Encode() []byte {
	enc := xdr.NewEncoder(64 + len(m.Machine) + len(m.Entries)*(12+HashSize))
	enc.PutUint32(manifestMagic)
	enc.PutUint32(manifestVersion)
	enc.PutUint32(m.ProgramDigest)
	enc.PutString(m.Machine)
	enc.PutUint64(m.Seq)
	enc.PutFixedOpaque(m.Parent[:])
	enc.PutUint32(uint32(len(m.Entries)))
	for _, e := range m.Entries {
		enc.PutUint32(uint32(e.Kind))
		enc.PutUint32(e.ID)
		enc.PutUint32(e.Length)
		enc.PutFixedOpaque(e.Hash[:])
	}
	return enc.Bytes()
}

// Hash returns the manifest's content address.
func (m *Manifest) Hash() Hash { return HashBytes(m.Encode()) }

// DecodeManifest parses and validates an encoded manifest. Any malformed
// input — wrong magic, future version, implausible counts, unknown section
// kinds, trailing bytes — is an ErrBadManifest, never a panic.
func DecodeManifest(raw []byte) (*Manifest, error) {
	d := xdr.NewDecoder(raw)
	magic, err := d.Uint32()
	if err != nil || magic != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadManifest)
	}
	ver, err := d.Uint32()
	if err != nil || ver != manifestVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadManifest, ver)
	}
	var m Manifest
	if m.ProgramDigest, err = d.Uint32(); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrBadManifest)
	}
	if m.Machine, err = d.String(); err != nil {
		return nil, fmt.Errorf("%w: truncated machine name", ErrBadManifest)
	}
	if m.Seq, err = d.Uint64(); err != nil {
		return nil, fmt.Errorf("%w: truncated sequence", ErrBadManifest)
	}
	parent, err := d.FixedOpaque(HashSize)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated parent hash", ErrBadManifest)
	}
	copy(m.Parent[:], parent)
	count, err := d.Uint32()
	if err != nil {
		return nil, fmt.Errorf("%w: truncated entry count", ErrBadManifest)
	}
	if count == 0 || count > maxEntries {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrBadManifest, count)
	}
	// Each entry takes exactly 12+HashSize encoded bytes; reject counts
	// the buffer cannot possibly hold before allocating for them.
	if int64(count)*(12+HashSize) > int64(d.Remaining()) {
		return nil, fmt.Errorf("%w: %d entries exceed %d remaining bytes", ErrBadManifest, count, d.Remaining())
	}
	m.Entries = make([]Entry, count)
	for i := range m.Entries {
		e := &m.Entries[i]
		kind, err := d.Uint32()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrBadManifest, i)
		}
		if kind == 0 || kind > uint32(snapshot.KindGlobals) {
			return nil, fmt.Errorf("%w: entry %d has unknown section kind %d", ErrBadManifest, i, kind)
		}
		e.Kind = snapshot.Kind(kind)
		if e.ID, err = d.Uint32(); err != nil {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrBadManifest, i)
		}
		if e.Length, err = d.Uint32(); err != nil {
			return nil, fmt.Errorf("%w: truncated entry %d", ErrBadManifest, i)
		}
		h, err := d.FixedOpaque(HashSize)
		if err != nil {
			return nil, fmt.Errorf("%w: truncated entry %d hash", ErrBadManifest, i)
		}
		copy(e.Hash[:], h)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadManifest, d.Remaining())
	}
	// The content address is the hash of the canonical bytes; accepting a
	// variant encoding (e.g. nonzero XDR string padding) would let two
	// different byte sequences name the same manifest.
	if !bytes.Equal(m.Encode(), raw) {
		return nil, fmt.Errorf("%w: non-canonical encoding", ErrBadManifest)
	}
	return &m, nil
}
