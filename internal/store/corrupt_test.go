package store

// Corruption-path coverage: every way an on-disk object can rot —
// truncated blob, tampered blob, tampered manifest, dangling parent —
// must surface as a typed error (ErrCorrupt / ErrNotFound), never as
// silently wrong data or a panic.

import (
	"errors"
	"os"
	"testing"
)

func TestGetBlobTruncated(t *testing.T) {
	s := openTest(t)
	body := []byte("a body long enough to truncate meaningfully")
	h, _, err := s.PutBlob(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.blobPath(h), body[:len(body)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetBlob(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetBlob of truncated blob: %v, want ErrCorrupt", err)
	}
}

func TestGetBlobTampered(t *testing.T) {
	s := openTest(t)
	body := []byte("pristine content")
	h, _, err := s.PutBlob(body)
	if err != nil {
		t.Fatal(err)
	}
	evil := append([]byte(nil), body...)
	evil[0] ^= 0xff
	if err := os.WriteFile(s.blobPath(h), evil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetBlob(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetBlob of tampered blob: %v, want ErrCorrupt", err)
	}
}

func TestMaterializeCorruptBlob(t *testing.T) {
	s := openTest(t)
	m, h, _, err := s.Checkpoint(testSnapshot([]byte("heap-body")), 1, "m", Hash{})
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the heap component's blob on disk.
	var heap Hash
	for _, e := range m.Entries {
		if e.Kind == 2 { // snapshot.KindHeap
			heap = e.Hash
		}
	}
	if err := os.WriteFile(s.blobPath(heap), []byte("not the heap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Materialize(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Materialize over tampered blob: %v, want ErrCorrupt", err)
	}
}

func TestMaterializeMissingBlob(t *testing.T) {
	s := openTest(t)
	m, h, _, err := s.Checkpoint(testSnapshot([]byte("heap-body")), 1, "m", Hash{})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.blobPath(m.Entries[0].Hash)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Materialize(h); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Materialize with missing blob: %v, want ErrNotFound", err)
	}
}

func TestGetManifestTampered(t *testing.T) {
	s := openTest(t)
	_, h, _, err := s.Checkpoint(testSnapshot([]byte("x")), 1, "m", Hash{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.manifestPath(h))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x55
	if err := os.WriteFile(s.manifestPath(h), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetManifest(h); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("GetManifest of tampered manifest: %v, want ErrCorrupt", err)
	}
}

func TestDanglingParent(t *testing.T) {
	s := openTest(t)
	_, h1, _, err := s.CheckpointRef("job", testSnapshot([]byte("gen-0")), 1, "m")
	if err != nil {
		t.Fatal(err)
	}
	_, h2, _, err := s.CheckpointRef("job", testSnapshot([]byte("gen-1")), 1, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.manifestPath(h1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Chain(h2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Chain over dangling parent: %v, want ErrNotFound", err)
	}
	// Chaining a new checkpoint onto a missing parent is refused too.
	if _, _, _, err := s.Checkpoint(testSnapshot([]byte("gen-2")), 1, "m", h1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Checkpoint onto missing parent: %v, want ErrNotFound", err)
	}
}

func TestCheckpointRejectsCorruptSnapshot(t *testing.T) {
	s := openTest(t)
	snap := testSnapshot([]byte("ok"))
	for name, mangle := range map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)-6] },
		"bad magic":   func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c },
		"flipped crc": func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0x01; return c },
	} {
		if _, _, _, err := s.Checkpoint(mangle(snap), 1, "m", Hash{}); err == nil {
			t.Errorf("%s snapshot checkpointed without error", name)
		}
	}
}

func TestDecodeManifestMalformed(t *testing.T) {
	good := (&Manifest{ProgramDigest: 1, Machine: "m", Seq: 1,
		Entries: []Entry{{Kind: 1, Length: 4, Hash: HashBytes([]byte("b"))}}}).Encode()
	cases := map[string][]byte{
		"empty":          {},
		"short magic":    good[:3],
		"bad magic":      append([]byte{0, 0, 0, 0}, good[4:]...),
		"truncated tail": good[:len(good)-8],
		"trailing junk":  append(append([]byte(nil), good...), 0, 0, 0, 0),
	}
	// Absurd entry count: patch the count field (last 4 bytes before the
	// single 44-byte entry) to claim 2^19 entries.
	huge := append([]byte(nil), good...)
	countOff := len(good) - (12 + HashSize) - 4
	huge[countOff] = 0x00
	huge[countOff+1] = 0x08
	cases["oversized count"] = huge
	for name, raw := range cases {
		if _, err := DecodeManifest(raw); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: DecodeManifest = %v, want ErrBadManifest", name, err)
		}
	}
}
