package store

// FuzzDecodeManifest drives the manifest parser with arbitrary bytes:
// malformed input must produce an error, never a panic or a runaway
// allocation, and anything that decodes must re-encode canonically.

import (
	"bytes"
	"testing"

	"repro/internal/snapshot"
)

func FuzzDecodeManifest(f *testing.F) {
	// Seed with real manifests: a root, a chained incremental, and a
	// many-entry one, in their canonical encodings.
	root := &Manifest{ProgramDigest: 0x1234abcd, Machine: "ultra5", Seq: 1,
		Entries: []Entry{
			{Kind: snapshot.KindExec, ID: 0, Length: 9, Hash: HashBytes([]byte("exec"))},
			{Kind: snapshot.KindHeap, ID: 0, Length: 4096, Hash: HashBytes([]byte("heap"))},
			{Kind: snapshot.KindFrame, ID: 1, Length: 64, Hash: HashBytes([]byte("frame"))},
			{Kind: snapshot.KindGlobals, ID: 0, Length: 128, Hash: HashBytes([]byte("globals"))},
		}}
	f.Add(root.Encode())
	child := &Manifest{ProgramDigest: 0x1234abcd, Machine: "sparc20", Seq: 2,
		Parent: root.Hash(), Entries: root.Entries[:2]}
	f.Add(child.Encode())
	var wide Manifest
	wide.Machine = "dec5000"
	wide.Seq = 40
	for i := 0; i < 64; i++ {
		wide.Entries = append(wide.Entries,
			Entry{Kind: snapshot.KindHeap, ID: uint32(i), Length: uint32(i * 31), Hash: HashBytes([]byte{byte(i)})})
	}
	f.Add(wide.Encode())
	f.Add([]byte{})
	f.Add([]byte{0x4d, 0x43, 0x4d, 0x31})

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := DecodeManifest(raw)
		if err != nil {
			return
		}
		// A decodable manifest must re-encode to the same canonical bytes
		// (the content address depends on it).
		if !bytes.Equal(m.Encode(), raw) {
			t.Fatalf("decoded manifest re-encodes differently (%d vs %d bytes)", len(m.Encode()), len(raw))
		}
	})
}
