package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// formatLine identifies a store directory and its layout version.
const formatLine = "migstore/1\n"

// Store is an on-disk content-addressed checkpoint repository. Safe for
// concurrent use: mutations (blob and manifest writes, ref updates,
// checkpoints, GC) serialize on one mutex, and every object lands via an
// atomic rename, so lock-free readers always see whole objects.
type Store struct {
	dir     string
	metrics *obs.Registry

	// mu serializes mutations against each other and — critically —
	// against GC: a checkpoint in flight holds the lock from its first
	// blob write through the ref update, so the sweep can never collect
	// bodies of a checkpoint that has not yet anchored itself to a ref.
	mu sync.Mutex
}

// Open opens (creating if needed) the store rooted at dir. reg receives
// the store's dedup counters and latency histograms; nil selects
// obs.Default.
func Open(dir string, reg *obs.Registry) (*Store, error) {
	if reg == nil {
		reg = obs.Default
	}
	for _, sub := range []string{"blobs", "manifests", "refs"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	fpath := filepath.Join(dir, "format")
	if b, err := os.ReadFile(fpath); err == nil {
		if string(b) != formatLine {
			return nil, fmt.Errorf("%w: %s holds %q, want %q", ErrCorrupt, fpath, string(b), formatLine)
		}
	} else if err := writeAtomic(fpath, []byte(formatLine)); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	return &Store{dir: dir, metrics: reg}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Usage walks the blob tree and reports how many section bodies the
// store holds and their total size in bytes — the node telemetry gauges
// (`node.store.blobs` / `node.store.bytes`). Lock-free: writes land by
// atomic rename, so the walk sees whole objects; in-progress temp files
// are skipped.
func (s *Store) Usage() (blobs, bytes int64, err error) {
	root := filepath.Join(s.dir, "blobs")
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".tmp-") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			if os.IsNotExist(err) { // swept by concurrent GC
				return nil
			}
			return err
		}
		blobs++
		bytes += info.Size()
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("store: usage: %w", err)
	}
	return blobs, bytes, nil
}

// blobPath shards blobs by the first address byte so no single directory
// grows unboundedly.
func (s *Store) blobPath(h Hash) string {
	hx := h.String()
	return filepath.Join(s.dir, "blobs", hx[:2], hx[2:])
}

func (s *Store) manifestPath(h Hash) string {
	return filepath.Join(s.dir, "manifests", h.String())
}

func (s *Store) refPath(name string) string {
	return filepath.Join(s.dir, "refs", name)
}

// writeAtomic lands content at path via a temp file and rename, so a
// concurrent reader sees either nothing or the whole object.
func writeAtomic(path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// PutBlob stores a section body under its content address, returning the
// address and whether the body was new. A body already present is not
// rewritten — that is the dedup this store exists for — and is counted in
// store.blob.dedup / store.bytes.deduped.
func (s *Store) PutBlob(body []byte) (Hash, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putBlobLocked(body)
}

func (s *Store) putBlobLocked(body []byte) (Hash, bool, error) {
	h := HashBytes(body)
	path := s.blobPath(h)
	if _, err := os.Stat(path); err == nil {
		s.metrics.Counter("store.blob.dedup").Inc()
		s.metrics.Counter("store.bytes.deduped").Add(int64(len(body)))
		return h, false, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return Hash{}, false, fmt.Errorf("store: put blob: %w", err)
	}
	if err := writeAtomic(path, body); err != nil {
		return Hash{}, false, fmt.Errorf("store: put blob: %w", err)
	}
	s.metrics.Counter("store.blob.put").Inc()
	s.metrics.Counter("store.bytes.written").Add(int64(len(body)))
	return h, true, nil
}

// HasBlob reports whether the store holds a body under h.
func (s *Store) HasBlob(h Hash) bool {
	_, err := os.Stat(s.blobPath(h))
	return err == nil
}

// GetBlob reads the body stored under h, verifying the content hash: a
// truncated or tampered blob file is an ErrCorrupt, never silently served.
func (s *Store) GetBlob(h Hash) ([]byte, error) {
	body, err := os.ReadFile(s.blobPath(h))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: blob %s", ErrNotFound, h.Short())
		}
		return nil, fmt.Errorf("store: get blob: %w", err)
	}
	if HashBytes(body) != h {
		return nil, fmt.Errorf("%w: blob %s content hashes to %s", ErrCorrupt, h.Short(), HashBytes(body).Short())
	}
	return body, nil
}

// PutManifest stores a manifest under its content address.
func (s *Store) PutManifest(m *Manifest) (Hash, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putManifestLocked(m)
}

func (s *Store) putManifestLocked(m *Manifest) (Hash, error) {
	raw := m.Encode()
	h := HashBytes(raw)
	path := s.manifestPath(h)
	if _, err := os.Stat(path); err == nil {
		return h, nil
	}
	if err := writeAtomic(path, raw); err != nil {
		return Hash{}, fmt.Errorf("store: put manifest: %w", err)
	}
	s.metrics.Counter("store.manifest.put").Inc()
	return h, nil
}

// GetManifest reads and decodes the manifest stored under h, verifying
// its content hash first.
func (s *Store) GetManifest(h Hash) (*Manifest, error) {
	raw, err := os.ReadFile(s.manifestPath(h))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: manifest %s", ErrNotFound, h.Short())
		}
		return nil, fmt.Errorf("store: get manifest: %w", err)
	}
	if HashBytes(raw) != h {
		return nil, fmt.Errorf("%w: manifest %s content hashes to %s", ErrCorrupt, h.Short(), HashBytes(raw).Short())
	}
	return DecodeManifest(raw)
}

// HasManifest reports whether the store holds a manifest under h.
func (s *Store) HasManifest(h Hash) bool {
	_, err := os.Stat(s.manifestPath(h))
	return err == nil
}

// Manifests lists the content addresses of every stored manifest.
func (s *Store) Manifests() ([]Hash, error) {
	names, err := os.ReadDir(filepath.Join(s.dir, "manifests"))
	if err != nil {
		return nil, fmt.Errorf("store: list manifests: %w", err)
	}
	out := make([]Hash, 0, len(names))
	for _, e := range names {
		if strings.HasPrefix(e.Name(), ".") {
			continue
		}
		h, err := ParseHash(e.Name())
		if err != nil {
			continue
		}
		out = append(out, h)
	}
	return out, nil
}

// SetRef points the named checkpoint chain at manifest h.
func (s *Store) SetRef(name string, h Hash) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.setRefLocked(name, h)
}

func (s *Store) setRefLocked(name string, h Hash) error {
	if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return fmt.Errorf("store: invalid ref name %q", name)
	}
	return writeAtomic(s.refPath(name), []byte(h.String()+"\n"))
}

// Ref resolves a named chain head; ok is false when the ref does not
// exist.
func (s *Store) Ref(name string) (Hash, bool, error) {
	b, err := os.ReadFile(s.refPath(name))
	if err != nil {
		if os.IsNotExist(err) {
			return Hash{}, false, nil
		}
		return Hash{}, false, fmt.Errorf("store: read ref: %w", err)
	}
	h, err := ParseHash(strings.TrimSpace(string(b)))
	if err != nil {
		return Hash{}, false, fmt.Errorf("%w: ref %q holds %q", ErrCorrupt, name, strings.TrimSpace(string(b)))
	}
	return h, true, nil
}

// Refs lists every named chain head, sorted by name.
func (s *Store) Refs() ([]string, error) {
	names, err := os.ReadDir(filepath.Join(s.dir, "refs"))
	if err != nil {
		return nil, fmt.Errorf("store: list refs: %w", err)
	}
	out := make([]string, 0, len(names))
	for _, e := range names {
		if strings.HasPrefix(e.Name(), ".") {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// Resolve turns a user-supplied target — a ref name or a full hex
// manifest hash — into a manifest address.
func (s *Store) Resolve(target string) (Hash, error) {
	if h, ok, err := s.Ref(target); err != nil {
		return Hash{}, err
	} else if ok {
		return h, nil
	}
	h, err := ParseHash(target)
	if err != nil {
		return Hash{}, fmt.Errorf("%w: %q is neither a ref nor a manifest hash", ErrNotFound, target)
	}
	if !s.HasManifest(h) {
		return Hash{}, fmt.Errorf("%w: manifest %s", ErrNotFound, h.Short())
	}
	return h, nil
}

// Chain walks the parent links from h to the chain root, returning the
// manifests newest first. A parent link to a manifest the store does not
// hold is reported as a dangling chain (ErrNotFound).
func (s *Store) Chain(h Hash) ([]*Manifest, error) {
	var out []*Manifest
	seen := map[Hash]bool{}
	for !h.IsZero() {
		if seen[h] {
			return nil, fmt.Errorf("%w: manifest chain loops at %s", ErrBadManifest, h.Short())
		}
		seen[h] = true
		m, err := s.GetManifest(h)
		if err != nil {
			if len(out) > 0 {
				return nil, fmt.Errorf("store: chain dangles at seq %d: %w", out[len(out)-1].Seq, err)
			}
			return nil, err
		}
		out = append(out, m)
		h = m.Parent
	}
	return out, nil
}
