package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/snapshot"
)

// testSnapshot builds a plausible sectioned snapshot: exec, the given
// heap component bodies, one frame, and globals.
func testSnapshot(heaps ...[]byte) []byte {
	secs := []snapshot.Section{{Kind: snapshot.KindExec, Body: []byte("exec-body")}}
	for i, h := range heaps {
		secs = append(secs, snapshot.Section{Kind: snapshot.KindHeap, ID: uint32(i), Body: h})
	}
	secs = append(secs,
		snapshot.Section{Kind: snapshot.KindFrame, ID: 1, Body: []byte("frame-1-body")},
		snapshot.Section{Kind: snapshot.KindGlobals, Body: []byte("globals-body")})
	return snapshot.Encode(secs)
}

func openTest(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBlobRoundTrip(t *testing.T) {
	s := openTest(t)
	body := []byte("the quick brown fox")
	h, fresh, err := s.PutBlob(body)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh {
		t.Error("first put not fresh")
	}
	if !s.HasBlob(h) {
		t.Error("HasBlob false after put")
	}
	if _, fresh, err = s.PutBlob(body); err != nil || fresh {
		t.Errorf("second put: fresh=%v err=%v, want dedup", fresh, err)
	}
	got, err := s.GetBlob(h)
	if err != nil || !bytes.Equal(got, body) {
		t.Fatalf("GetBlob = %q, %v", got, err)
	}
	if s.HasBlob(HashBytes([]byte("absent"))) {
		t.Error("HasBlob true for absent body")
	}
}

func TestManifestEncodeDecode(t *testing.T) {
	m := &Manifest{
		ProgramDigest: 0xdeadbeef,
		Machine:       "ultra5",
		Seq:           7,
		Parent:        HashBytes([]byte("parent")),
		Entries: []Entry{
			{Kind: snapshot.KindExec, ID: 0, Length: 9, Hash: HashBytes([]byte("a"))},
			{Kind: snapshot.KindHeap, ID: 3, Length: 1 << 16, Hash: HashBytes([]byte("b"))},
		},
	}
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ProgramDigest != m.ProgramDigest || got.Machine != m.Machine ||
		got.Seq != m.Seq || got.Parent != m.Parent || len(got.Entries) != len(m.Entries) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	for i := range m.Entries {
		if got.Entries[i] != m.Entries[i] {
			t.Errorf("entry %d: %+v != %+v", i, got.Entries[i], m.Entries[i])
		}
	}
	if got.Hash() != m.Hash() {
		t.Error("content address changed across round trip")
	}
}

func TestCheckpointMaterialize(t *testing.T) {
	s := openTest(t)
	snap := testSnapshot([]byte("heap-zero"), []byte("heap-one"))
	m, h, st, err := s.Checkpoint(snap, 0x1234, "ultra5", Hash{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sections != 5 || st.NewBlobs != 5 || st.DupBlobs != 0 {
		t.Errorf("first checkpoint stats: %+v", st)
	}
	if m.Seq != 1 || !m.Parent.IsZero() {
		t.Errorf("root manifest: seq %d parent %s", m.Seq, m.Parent)
	}
	if m.SnapshotBytes() != len(snap) {
		t.Errorf("SnapshotBytes = %d, snapshot is %d", m.SnapshotBytes(), len(snap))
	}
	out, err := s.Materialize(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, snap) {
		t.Fatal("materialized snapshot not byte-identical")
	}

	// Second checkpoint: one heap component mutated, everything else
	// dedups against the first.
	snap2 := testSnapshot([]byte("heap-zero"), []byte("heap-one-CHANGED"))
	m2, h2, st2, err := s.Checkpoint(snap2, 0x1234, "ultra5", h)
	if err != nil {
		t.Fatal(err)
	}
	if st2.NewBlobs != 1 || st2.DupBlobs != 4 {
		t.Errorf("incremental checkpoint stats: %+v", st2)
	}
	if st2.DedupRatio() < 2 {
		t.Errorf("dedup ratio %.2f, want >= 2 for a 1-of-5 mutation", st2.DedupRatio())
	}
	if m2.Seq != 2 || m2.Parent != h {
		t.Errorf("chained manifest: seq %d parent %s (want %s)", m2.Seq, m2.Parent.Short(), h.Short())
	}
	out2, err := s.Materialize(h2)
	if err != nil || !bytes.Equal(out2, snap2) {
		t.Fatalf("materialize chained: identical=%v err=%v", bytes.Equal(out2, snap2), err)
	}
	chain, err := s.Chain(h2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0].Seq != 2 || chain[1].Seq != 1 {
		t.Errorf("chain walk: %d manifests", len(chain))
	}
}

func TestCheckpointRefAndResolve(t *testing.T) {
	s := openTest(t)
	_, h1, _, err := s.CheckpointRef("job", testSnapshot([]byte("v1")), 1, "m")
	if err != nil {
		t.Fatal(err)
	}
	m2, h2, _, err := s.CheckpointRef("job", testSnapshot([]byte("v2")), 1, "m")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Parent != h1 {
		t.Errorf("second CheckpointRef parent %s, want %s", m2.Parent.Short(), h1.Short())
	}
	if got, err := s.Resolve("job"); err != nil || got != h2 {
		t.Errorf("Resolve(job) = %s, %v; want %s", got.Short(), err, h2.Short())
	}
	if got, err := s.Resolve(h1.String()); err != nil || got != h1 {
		t.Errorf("Resolve(hash) = %s, %v", got.Short(), err)
	}
	if _, err := s.Resolve("no-such-ref"); err == nil {
		t.Error("Resolve of unknown target succeeded")
	}
	refs, err := s.Refs()
	if err != nil || len(refs) != 1 || refs[0] != "job" {
		t.Errorf("Refs = %v, %v", refs, err)
	}
}

func TestMissing(t *testing.T) {
	s := openTest(t)
	snap := testSnapshot([]byte("h0"), []byte("h1"))
	m, _, _, err := s.Checkpoint(snap, 1, "m", Hash{})
	if err != nil {
		t.Fatal(err)
	}
	empty := openTest(t)
	if got := empty.Missing(m); len(got) != len(m.Entries) {
		t.Errorf("empty store missing %d of %d entries", len(got), len(m.Entries))
	}
	if got := s.Missing(m); got != nil {
		t.Errorf("full store missing %v", got)
	}
}

func TestGCRetention(t *testing.T) {
	s := openTest(t)
	var heads []Hash
	for i := 0; i < 3; i++ {
		_, h, _, err := s.CheckpointRef("job", testSnapshot([]byte(fmt.Sprintf("gen-%d", i))), 1, "m")
		if err != nil {
			t.Fatal(err)
		}
		heads = append(heads, h)
	}
	// An orphan checkpoint anchored to no ref is always swept.
	_, orphan, _, err := s.Checkpoint(testSnapshot([]byte("orphan")), 1, "m", Hash{})
	if err != nil {
		t.Fatal(err)
	}

	st, err := s.GC(GCPolicy{KeepPerRef: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveManifests != 1 || st.SweptManifests != 3 {
		t.Errorf("gc stats: %+v", st)
	}
	if s.HasManifest(orphan) || s.HasManifest(heads[0]) || s.HasManifest(heads[1]) {
		t.Error("swept manifests still present")
	}
	if !s.HasManifest(heads[2]) {
		t.Fatal("retained head swept")
	}
	// The retained head must still materialize in full: shared bodies
	// (exec/frame/globals) survive, only unreferenced generations go.
	if _, err := s.Materialize(heads[2]); err != nil {
		t.Fatalf("materialize after GC: %v", err)
	}
	// The head's parent is swept: the chain walk now reports a dangle.
	if _, err := s.Chain(heads[2]); err == nil {
		t.Error("chain walk across swept parent succeeded")
	}
	// A second full-retention GC keeps everything that is left.
	st2, err := s.GC(GCPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.SweptManifests != 0 || st2.SweptBlobs != 0 {
		t.Errorf("idempotent gc swept: %+v", st2)
	}
}

// TestConcurrentCheckpointGC drives checkpoints and sweeps concurrently
// (run under -race): a checkpoint is atomic with respect to GC, so every
// surviving head must always materialize.
func TestConcurrentCheckpointGC(t *testing.T) {
	s := openTest(t)
	const writers, rounds = 3, 8
	var wg sync.WaitGroup
	errc := make(chan error, writers*rounds+rounds)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ref := fmt.Sprintf("worker-%d", w)
			for r := 0; r < rounds; r++ {
				snap := testSnapshot([]byte(fmt.Sprintf("w%d-r%d", w, r)), []byte("shared"))
				if _, _, _, err := s.CheckpointRef(ref, snap, 1, "m"); err != nil {
					errc <- fmt.Errorf("checkpoint w%d r%d: %w", w, r, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			if _, err := s.GC(GCPolicy{KeepPerRef: 1}); err != nil {
				errc <- fmt.Errorf("gc round %d: %w", r, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	refs, err := s.Refs()
	if err != nil || len(refs) != writers {
		t.Fatalf("refs after churn: %v, %v", refs, err)
	}
	for _, ref := range refs {
		h, ok, err := s.Ref(ref)
		if err != nil || !ok {
			t.Fatalf("ref %s: ok=%v err=%v", ref, ok, err)
		}
		if _, err := s.Materialize(h); err != nil {
			t.Errorf("ref %s head does not materialize after concurrent GC: %v", ref, err)
		}
	}
}

func TestOpenRejectsForeignFormat(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, obs.NewRegistry()); err != nil {
		t.Fatal(err)
	}
	// Reopening an existing store succeeds.
	if _, err := Open(dir, nil); err != nil {
		t.Fatalf("reopen: %v", err)
	}
}

func TestStoreMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	snap := testSnapshot([]byte("h0"))
	if _, _, _, err := s.CheckpointRef("job", snap, 1, "m"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.CheckpointRef("job", snap, 1, "m"); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("store.blob.put").Value(); n != 4 {
		t.Errorf("store.blob.put = %d, want 4", n)
	}
	if n := reg.Counter("store.blob.dedup").Value(); n != 4 {
		t.Errorf("store.blob.dedup = %d, want 4 (identical second checkpoint)", n)
	}
	if reg.Counter("store.bytes.deduped").Value() == 0 {
		t.Error("store.bytes.deduped not counted")
	}
	if reg.Histogram("store.checkpoint.latency").Count() != 2 {
		t.Error("checkpoint latency not observed")
	}
}
