package store

import (
	"fmt"
	"time"

	"repro/internal/snapshot"
	"repro/internal/xdr"
)

// CheckpointStats is the dedup outcome of one checkpoint.
type CheckpointStats struct {
	// Sections is the snapshot's section count; NewBlobs of them had
	// bodies the store did not already hold, DupBlobs were deduplicated.
	Sections int
	NewBlobs int
	DupBlobs int
	// SnapshotBytes is the full v3 snapshot size; WrittenBytes is what
	// actually reached the disk (new bodies only), DedupedBytes the body
	// bytes dedup avoided rewriting.
	SnapshotBytes int64
	WrittenBytes  int64
	DedupedBytes  int64
	Elapsed       time.Duration
}

// DedupRatio is snapshot bytes per written byte — how much the content
// addressing compressed this checkpoint relative to storing it whole.
func (c CheckpointStats) DedupRatio() float64 {
	if c.WrittenBytes == 0 {
		return float64(c.SnapshotBytes)
	}
	return float64(c.SnapshotBytes) / float64(c.WrittenBytes)
}

func (c CheckpointStats) String() string {
	return fmt.Sprintf("%d sections (%d new, %d dedup), %d of %d bytes written (%.2fx dedup)",
		c.Sections, c.NewBlobs, c.DupBlobs, c.WrittenBytes, c.SnapshotBytes, c.DedupRatio())
}

// Checkpoint records a sectioned (v3) snapshot: every section body is
// stored under its content address (bodies already present are not
// rewritten), and a manifest chaining to parent is stored and returned
// with its address. A zero parent starts a new chain; a non-zero parent
// must name a manifest the store holds.
func (s *Store) Checkpoint(snap []byte, programDigest uint32, machine string, parent Hash) (*Manifest, Hash, CheckpointStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked(snap, programDigest, machine, parent)
}

// CheckpointRef is Checkpoint chaining from — and then advancing — the
// named ref, all under one lock: the periodic "checkpoint this session
// again" call. A ref that does not exist yet starts a new chain.
func (s *Store) CheckpointRef(ref string, snap []byte, programDigest uint32, machine string) (*Manifest, Hash, CheckpointStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	parent, _, err := s.Ref(ref)
	if err != nil {
		return nil, Hash{}, CheckpointStats{}, err
	}
	m, h, st, err := s.checkpointLocked(snap, programDigest, machine, parent)
	if err != nil {
		return nil, Hash{}, CheckpointStats{}, err
	}
	if err := s.setRefLocked(ref, h); err != nil {
		return nil, Hash{}, CheckpointStats{}, err
	}
	return m, h, st, nil
}

func (s *Store) checkpointLocked(snap []byte, programDigest uint32, machine string, parent Hash) (*Manifest, Hash, CheckpointStats, error) {
	start := time.Now()
	m := &Manifest{ProgramDigest: programDigest, Machine: machine, Seq: 1, Parent: parent}
	if !parent.IsZero() {
		pm, err := s.GetManifest(parent)
		if err != nil {
			return nil, Hash{}, CheckpointStats{}, fmt.Errorf("store: checkpoint parent: %w", err)
		}
		m.Seq = pm.Seq + 1
	}

	dec := xdr.NewDecoder(snap)
	rd, err := snapshot.NewReader(dec)
	if err != nil {
		return nil, Hash{}, CheckpointStats{}, fmt.Errorf("store: checkpoint: %w", err)
	}
	st := CheckpointStats{SnapshotBytes: int64(len(snap))}
	m.Entries = make([]Entry, 0, rd.Remaining())
	for rd.Remaining() > 0 {
		sec, err := rd.Next()
		if err != nil {
			return nil, Hash{}, CheckpointStats{}, fmt.Errorf("store: checkpoint: %w", err)
		}
		h, fresh, err := s.putBlobLocked(sec.Body)
		if err != nil {
			return nil, Hash{}, CheckpointStats{}, err
		}
		if fresh {
			st.NewBlobs++
			st.WrittenBytes += int64(len(sec.Body))
		} else {
			st.DupBlobs++
			st.DedupedBytes += int64(len(sec.Body))
		}
		m.Entries = append(m.Entries, Entry{Kind: sec.Kind, ID: sec.ID, Length: uint32(len(sec.Body)), Hash: h})
	}
	if dec.Remaining() != 0 {
		return nil, Hash{}, CheckpointStats{}, fmt.Errorf("%w: %d trailing bytes after snapshot sections", ErrCorrupt, dec.Remaining())
	}
	st.Sections = len(m.Entries)

	h, err := s.putManifestLocked(m)
	if err != nil {
		return nil, Hash{}, CheckpointStats{}, err
	}
	st.Elapsed = time.Since(start)
	s.metrics.Counter("store.checkpoints").Inc()
	s.metrics.Histogram("store.checkpoint.latency").Observe(st.Elapsed)
	return m, h, st, nil
}

// Materialize reconstructs the exact v3 snapshot a manifest describes:
// every body is fetched by content address (re-verified on read) and
// framed back into the sectioned format in manifest order. The output is
// byte-identical to the snapshot that was checkpointed.
func (s *Store) Materialize(h Hash) ([]byte, error) {
	start := time.Now()
	m, err := s.GetManifest(h)
	if err != nil {
		return nil, err
	}
	secs := make([]snapshot.Section, 0, len(m.Entries))
	for i, e := range m.Entries {
		body, err := s.GetBlob(e.Hash)
		if err != nil {
			return nil, fmt.Errorf("store: materialize %s entry %d (%s %d): %w",
				h.Short(), i, e.Kind, e.ID, err)
		}
		if uint32(len(body)) != e.Length {
			return nil, fmt.Errorf("%w: manifest %s entry %d declares %d bytes, blob holds %d",
				ErrCorrupt, h.Short(), i, e.Length, len(body))
		}
		secs = append(secs, snapshot.Section{Kind: e.Kind, ID: e.ID, Body: body})
	}
	out := snapshot.Encode(secs)
	s.metrics.Histogram("store.materialize.latency").Observe(time.Since(start))
	return out, nil
}

// Missing reports which entries of m the store lacks bodies for — the
// responder's half of the warm-migration WANT computation.
func (s *Store) Missing(m *Manifest) []uint32 {
	var want []uint32
	for i, e := range m.Entries {
		if !s.HasBlob(e.Hash) {
			want = append(want, uint32(i))
		}
	}
	return want
}
