package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// GCPolicy is the retention rule a sweep runs under.
type GCPolicy struct {
	// KeepPerRef bounds how many manifests of each ref's chain survive,
	// newest first; 0 retains every manifest reachable from a ref.
	// Manifests reachable from no ref are always swept.
	KeepPerRef int
}

// GCStats is the outcome of one sweep.
type GCStats struct {
	LiveManifests  int
	SweptManifests int
	LiveBlobs      int
	SweptBlobs     int
	SweptBytes     int64
}

func (g GCStats) String() string {
	return fmt.Sprintf("kept %d manifests / %d blobs, swept %d manifests / %d blobs (%d bytes)",
		g.LiveManifests, g.LiveBlobs, g.SweptManifests, g.SweptBlobs, g.SweptBytes)
}

// GC removes every blob and manifest not reachable from a ref under the
// retention policy: mark walks each ref's parent chain (truncated to
// KeepPerRef manifests when the policy bounds it, tolerating chains whose
// tail already dangles from an earlier sweep), then the sweep deletes the
// unmarked remainder. GC holds the store lock for the whole mark+sweep,
// so it never races an in-flight checkpoint: a checkpoint either
// completes — anchored to its ref — before the mark, or starts after the
// sweep.
func (s *Store) GC(pol GCPolicy) (GCStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	liveManifests := map[Hash]bool{}
	liveBlobs := map[Hash]bool{}
	refs, err := s.Refs()
	if err != nil {
		return GCStats{}, err
	}
	for _, ref := range refs {
		h, ok, err := s.Ref(ref)
		if err != nil || !ok {
			continue
		}
		kept := 0
		for !h.IsZero() && !liveManifests[h] {
			if pol.KeepPerRef > 0 && kept >= pol.KeepPerRef {
				break
			}
			m, err := s.GetManifest(h)
			if err != nil {
				// The tail beyond a swept or damaged manifest cannot be
				// retained; keep what the walk reached so far.
				break
			}
			liveManifests[h] = true
			for _, e := range m.Entries {
				liveBlobs[e.Hash] = true
			}
			kept++
			h = m.Parent
		}
	}

	var st GCStats
	st.LiveManifests = len(liveManifests)
	st.LiveBlobs = len(liveBlobs)

	manifests, err := s.Manifests()
	if err != nil {
		return st, err
	}
	for _, h := range manifests {
		if liveManifests[h] {
			continue
		}
		if err := os.Remove(s.manifestPath(h)); err != nil {
			return st, fmt.Errorf("store: gc manifest %s: %w", h.Short(), err)
		}
		st.SweptManifests++
	}

	blobRoot := filepath.Join(s.dir, "blobs")
	shards, err := os.ReadDir(blobRoot)
	if err != nil {
		return st, fmt.Errorf("store: gc: %w", err)
	}
	for _, shard := range shards {
		if !shard.IsDir() {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(blobRoot, shard.Name()))
		if err != nil {
			return st, fmt.Errorf("store: gc: %w", err)
		}
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".") {
				continue
			}
			h, err := ParseHash(shard.Name() + e.Name())
			if err != nil {
				continue
			}
			if liveBlobs[h] {
				continue
			}
			path := filepath.Join(blobRoot, shard.Name(), e.Name())
			if info, err := e.Info(); err == nil {
				st.SweptBytes += info.Size()
			}
			if err := os.Remove(path); err != nil {
				return st, fmt.Errorf("store: gc blob %s: %w", h.Short(), err)
			}
			st.SweptBlobs++
		}
	}
	s.metrics.Counter("store.gc.runs").Inc()
	s.metrics.Counter("store.gc.swept.blobs").Add(int64(st.SweptBlobs))
	s.metrics.Counter("store.gc.swept.bytes").Add(st.SweptBytes)
	return st, nil
}
