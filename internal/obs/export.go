package obs

import (
	"encoding/json"
	"net/http"
	"time"
)

// ReportSchema names the JSON schema version shared by every obs export:
// migbench's BENCH_*.json files and migd's /metrics endpoint both emit a
// Report with this marker, so downstream tooling reads one format.
const ReportSchema = "repro-obs/1"

// SpanData is the exported (JSON) form of a Span. Times are microseconds:
// StartUS is the span's offset from its root span's start, DurUS its
// duration, so traces are machine-comparable without absolute clocks.
type SpanData struct {
	Name     string            `json:"name"`
	Kind     string            `json:"kind,omitempty"`
	ID       uint32            `json:"id,omitempty"`
	StartUS  int64             `json:"start_us"`
	DurUS    int64             `json:"dur_us"`
	Bytes    int64             `json:"bytes,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*SpanData       `json:"children,omitempty"`
}

// Export converts the span tree to its JSON form, with start offsets
// relative to s's own start.
func (s *Span) Export() *SpanData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	base := s.start
	s.mu.Unlock()
	return s.export(base)
}

func (s *Span) export(base time.Time) *SpanData {
	s.mu.Lock()
	d := &SpanData{
		Name:    s.name,
		Kind:    s.kind,
		ID:      s.id,
		StartUS: s.start.Sub(base).Microseconds(),
		Bytes:   s.bytes,
	}
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	d.DurUS = dur.Microseconds()
	if attrs := s.sortedAttrs(); len(attrs) > 0 {
		d.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		d.Children = append(d.Children, c.export(base))
	}
	return d
}

// Export converts every root span of the tracer.
func (t *Tracer) Export() []*SpanData {
	if t == nil {
		return nil
	}
	roots := t.Roots()
	out := make([]*SpanData, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.Export())
	}
	return out
}

// Report is the one obs schema every machine-readable export flows
// through: experiment rows (BENCH_*.json), span trees (per-phase traces),
// and a metrics snapshot, each optional.
type Report struct {
	Schema     string           `json:"schema"`
	Experiment string           `json:"experiment,omitempty"`
	Rows       any              `json:"rows,omitempty"`
	Spans      []*SpanData      `json:"spans,omitempty"`
	Metrics    *MetricsSnapshot `json:"metrics,omitempty"`
}

// NewReport builds a Report with the schema marker set.
func NewReport(experiment string, rows any) *Report {
	return &Report{Schema: ReportSchema, Experiment: experiment, Rows: rows}
}

// WithMetrics attaches a registry snapshot and returns the report.
func (r *Report) WithMetrics(reg *Registry) *Report {
	snap := reg.Snapshot()
	r.Metrics = &snap
	return r
}

// WithSpans attaches exported span trees and returns the report.
func (r *Report) WithSpans(spans []*SpanData) *Report {
	r.Spans = spans
	return r
}

// MetricsHandler serves reg as an obs Report at every request — the
// daemon's /metrics endpoint. A nil registry serves Default.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := reg
		if r == nil {
			r = Default
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(NewReport("", nil).WithMetrics(r))
	})
}
