package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// ReportSchema names the JSON schema version shared by every obs export:
// migbench's BENCH_*.json files and migd's /metrics endpoint both emit a
// Report with this marker, so downstream tooling reads one format. v2
// added the optional node identity header; everything else is unchanged.
const ReportSchema = "repro-obs/2"

// ReportSchemaV1 is the previous schema marker. The v1→v2 change was
// purely additive (v1 reports simply carry no node header), so v2
// readers — ParseReport, the fleet scraper — accept both.
const ReportSchemaV1 = "repro-obs/1"

// NodeInfo identifies the node that emitted a Report — the header block
// the fleet scraper keys its aggregation on. ID is stable for the
// process lifetime; Start and Version let operators spot restarts and
// mixed-version fleets from one scrape.
type NodeInfo struct {
	ID      string    `json:"id"`
	Machine string    `json:"machine,omitempty"`
	Addr    string    `json:"addr,omitempty"`
	PID     int       `json:"pid,omitempty"`
	Start   time.Time `json:"start,omitempty"`
	Version string    `json:"version,omitempty"`
}

// SpanData is the exported (JSON) form of a Span. Times are microseconds:
// StartUS is the span's offset from its root span's start, DurUS its
// duration, so traces are machine-comparable without absolute clocks.
//
// TraceID/SpanID/ParentSpanID carry the distributed-trace identity on
// session roots; Remote marks a subtree that was exported on another
// machine and stitched in — its StartUS offsets are relative to its own
// root, not the local one (the two clocks are not comparable).
type SpanData struct {
	Name         string            `json:"name"`
	Kind         string            `json:"kind,omitempty"`
	ID           uint32            `json:"id,omitempty"`
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Remote       bool              `json:"remote,omitempty"`
	StartUS      int64             `json:"start_us"`
	DurUS        int64             `json:"dur_us"`
	Bytes        int64             `json:"bytes,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Children     []*SpanData       `json:"children,omitempty"`
}

// Export converts the span tree to its JSON form, with start offsets
// relative to s's own start.
func (s *Span) Export() *SpanData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	base := s.start
	s.mu.Unlock()
	return s.export(base)
}

func (s *Span) export(base time.Time) *SpanData {
	s.mu.Lock()
	d := &SpanData{
		Name:    s.name,
		Kind:    s.kind,
		ID:      s.id,
		StartUS: s.start.Sub(base).Microseconds(),
		Bytes:   s.bytes,
	}
	if s.tc.Valid() {
		d.TraceID = IDString(s.tc.TraceID)
		d.SpanID = IDString(s.tc.SpanID)
	}
	if s.parentSpan != 0 {
		d.ParentSpanID = IDString(s.parentSpan)
	}
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	children := append([]*Span(nil), s.children...)
	remote := append([]*SpanData(nil), s.remote...)
	s.mu.Unlock()
	d.DurUS = dur.Microseconds()
	if attrs := s.sortedAttrs(); len(attrs) > 0 {
		d.Attrs = make(map[string]string, len(attrs))
		for _, a := range attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range children {
		d.Children = append(d.Children, c.export(base))
	}
	// Stitched peer subtrees export after the local children.
	d.Children = append(d.Children, remote...)
	return d
}

// Export converts every root span of the tracer.
func (t *Tracer) Export() []*SpanData {
	if t == nil {
		return nil
	}
	roots := t.Roots()
	out := make([]*SpanData, 0, len(roots))
	for _, r := range roots {
		out = append(out, r.Export())
	}
	return out
}

// Find returns the first node (depth-first, including d) with the given
// name, or nil — the SpanData counterpart of Span.Find.
func (d *SpanData) Find(name string) *SpanData {
	if d == nil {
		return nil
	}
	if d.Name == name {
		return d
	}
	for _, c := range d.Children {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// FindSpanID returns the first node whose SpanID matches, or nil.
func (d *SpanData) FindSpanID(id string) *SpanData {
	if d == nil || id == "" {
		return nil
	}
	if d.SpanID == id {
		return d
	}
	for _, c := range d.Children {
		if hit := c.FindSpanID(id); hit != nil {
			return hit
		}
	}
	return nil
}

// Tree renders the exported subtree in the same human-readable layout as
// Span.Tree — how a stitched trace prints.
func (d *SpanData) Tree() string {
	if d == nil {
		return ""
	}
	var b strings.Builder
	writeDataTree(&b, d, 0)
	return b.String()
}

// Stitch grafts a remote subtree into the exported trees by parent span
// ID: the node whose SpanID equals remote.ParentSpanID gains remote as a
// child (marked Remote). It returns false — and leaves the trees alone —
// when no node matches, so report builders can fall back to side-by-side
// rendering for unstitchable traces.
func Stitch(roots []*SpanData, remote *SpanData) bool {
	if remote == nil || remote.ParentSpanID == "" {
		return false
	}
	for _, r := range roots {
		if hit := r.FindSpanID(remote.ParentSpanID); hit != nil {
			remote.Remote = true
			hit.Children = append(hit.Children, remote)
			return true
		}
	}
	return false
}

// Report is the one obs schema every machine-readable export flows
// through: experiment rows (BENCH_*.json), span trees (per-phase traces),
// and a metrics snapshot, each optional.
type Report struct {
	Schema     string           `json:"schema"`
	Node       *NodeInfo        `json:"node,omitempty"`
	Experiment string           `json:"experiment,omitempty"`
	Rows       any              `json:"rows,omitempty"`
	Spans      []*SpanData      `json:"spans,omitempty"`
	Metrics    *MetricsSnapshot `json:"metrics,omitempty"`
}

// NewReport builds a Report with the schema marker set.
func NewReport(experiment string, rows any) *Report {
	return &Report{Schema: ReportSchema, Experiment: experiment, Rows: rows}
}

// ParseReport decodes a JSON Report, accepting the current schema and
// every earlier one. It is the read side of the export contract: the
// fleet scraper and report tooling go through here so a mixed-version
// fleet (v1 nodes without the node header next to v2 nodes) aggregates
// cleanly, while a genuinely foreign document fails loudly.
func ParseReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("obs: parse report: %w", err)
	}
	switch r.Schema {
	case ReportSchema, ReportSchemaV1:
		return &r, nil
	}
	return nil, fmt.Errorf("obs: unknown report schema %q", r.Schema)
}

// WithMetrics attaches a registry snapshot and returns the report.
func (r *Report) WithMetrics(reg *Registry) *Report {
	snap := reg.Snapshot()
	r.Metrics = &snap
	return r
}

// WithSpans attaches exported span trees and returns the report.
func (r *Report) WithSpans(spans []*SpanData) *Report {
	r.Spans = spans
	return r
}

// MetricsHandler serves reg at every request — the daemon's /metrics
// endpoint. A nil registry serves Default. Two representations are
// offered: the obs JSON Report (the default, Content-Type
// application/json) and the Prometheus text exposition, selected by
// ?format=prometheus or an Accept header asking for text/plain or
// OpenMetrics. An unknown ?format= is a 400; an encoding failure is a 500
// (the body is staged in memory so the status line is still writable).
func MetricsHandler(reg *Registry) http.Handler {
	return NodeMetricsHandler(reg, nil)
}

// NodeMetricsHandler serves like MetricsHandler with a node identity
// header stamped into the JSON report (the Prometheus exposition is
// unchanged — node identity travels out-of-band there). node is invoked
// per request, before the snapshot, so the caller can refresh derived
// gauges (uptime, store usage) and return the current identity; nil node
// or a nil return serves a headerless report.
func NodeMetricsHandler(reg *Registry, node func() *NodeInfo) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		r := reg
		if r == nil {
			r = Default
		}
		var info *NodeInfo
		if node != nil {
			info = node()
		}
		snap := r.Snapshot()
		format := req.URL.Query().Get("format")
		if format == "" {
			accept := req.Header.Get("Accept")
			if strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics") {
				format = "prometheus"
			} else {
				format = "json"
			}
		}
		switch format {
		case "prometheus":
			var buf bytes.Buffer
			if err := snap.WritePrometheus(&buf); err != nil {
				http.Error(w, "metrics: "+err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			w.Write(buf.Bytes())
		case "json":
			rep := NewReport("", nil)
			rep.Node = info
			rep.Metrics = &snap
			b, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				http.Error(w, "metrics: "+err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(append(b, '\n'))
		default:
			http.Error(w, fmt.Sprintf("metrics: unknown format %q (want json or prometheus)", format),
				http.StatusBadRequest)
		}
	})
}
