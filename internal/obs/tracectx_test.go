package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceContextIdentity(t *testing.T) {
	var zero TraceContext
	if zero.Valid() {
		t.Error("zero context is valid")
	}
	tc := NewTraceContext()
	if !tc.Valid() || tc.SpanID == 0 {
		t.Fatalf("new context = %+v", tc)
	}
	other := NewTraceContext()
	if tc.TraceID == other.TraceID {
		t.Error("two minted trace IDs collided")
	}
	if len(IDString(tc.TraceID)) != 16 {
		t.Errorf("IDString = %q, want 16 hex chars", IDString(tc.TraceID))
	}
	if NewSpanID() == 0 {
		t.Error("NewSpanID returned zero")
	}
}

func TestSpanTraceContextExport(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("session")
	tc := TraceContext{TraceID: 0xabc, SpanID: 0xdef}
	root.SetTraceContext(tc)
	if got := root.TraceContext(); got != tc {
		t.Fatalf("TraceContext() = %+v, want %+v", got, tc)
	}
	root.Child("collect").End()
	root.End()

	d := root.Export()
	if d.TraceID != IDString(0xabc) || d.SpanID != IDString(0xdef) {
		t.Errorf("export ids = %q/%q", d.TraceID, d.SpanID)
	}
	if !strings.Contains(root.Tree(), "trace="+IDString(0xabc)) {
		t.Errorf("tree missing trace id:\n%s", root.Tree())
	}

	// Nil safety.
	var nilSpan *Span
	nilSpan.SetTraceContext(tc)
	nilSpan.SetParentSpan(1)
	nilSpan.AttachRemote(&SpanData{Name: "x"})
	if nilSpan.TraceContext().Valid() || nilSpan.Remote() != nil {
		t.Error("nil span leaked trace state")
	}
}

func TestStitchAndRemoteRendering(t *testing.T) {
	// Initiator side: session root with a transport child.
	tr := NewTracer()
	root := tr.Start("session")
	root.SetTraceContext(TraceContext{TraceID: 0x11, SpanID: 0x22})
	root.Child("transport").End()
	root.End()
	roots := tr.Export()

	// Responder side: its root names the initiator span as parent.
	remote := &SpanData{
		Name:         "respond",
		TraceID:      IDString(0x11),
		SpanID:       IDString(0x33),
		ParentSpanID: IDString(0x22),
		DurUS:        1500,
		Children:     []*SpanData{{Name: "restore", DurUS: 900}},
	}
	if !Stitch(roots, remote) {
		t.Fatal("Stitch found no parent")
	}
	if !remote.Remote {
		t.Error("stitched subtree not marked remote")
	}
	stitched := roots[0].Find("respond")
	if stitched == nil || stitched.Find("restore") == nil {
		t.Fatalf("stitched tree missing responder spans:\n%s", roots[0].Tree())
	}
	out := roots[0].Tree()
	if !strings.Contains(out, "(remote)") || !strings.Contains(out, "restore") {
		t.Errorf("rendered tree missing remote marker:\n%s", out)
	}

	// Unmatched parent leaves the trees untouched.
	orphan := &SpanData{Name: "o", ParentSpanID: IDString(0x99)}
	if Stitch(roots, orphan) {
		t.Error("Stitch grafted an orphan")
	}
	if Stitch(roots, nil) {
		t.Error("Stitch accepted nil")
	}
}

func TestAttachRemoteExportsUnderSpan(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("session")
	root.AttachRemote(&SpanData{Name: "peer", DurUS: 10})
	root.End()
	d := root.Export()
	if len(d.Children) != 1 || d.Children[0].Name != "peer" || !d.Children[0].Remote {
		t.Fatalf("remote child not exported: %+v", d.Children)
	}
	if !strings.Contains(root.Tree(), "(remote)") {
		t.Errorf("live tree missing remote subtree:\n%s", root.Tree())
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("session.ok").Add(3)
	reg.Gauge("stream.window").Set(8)
	h := reg.Histogram("session.phase.restore")
	h.Observe(3 * time.Microsecond)    // le 4us bucket
	h.Observe(1500 * time.Microsecond) // le 2048us bucket
	var b strings.Builder
	if err := reg.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE session_ok counter\nsession_ok 3\n",
		"# TYPE stream_window gauge\nstream_window 8\n",
		"# TYPE session_phase_restore_seconds histogram\n",
		`session_phase_restore_seconds_bucket{le="4e-06"} 1`,
		`session_phase_restore_seconds_bucket{le="0.002048"} 2`,
		`session_phase_restore_seconds_bucket{le="+Inf"} 2`,
		"session_phase_restore_seconds_sum 0.001503",
		"session_phase_restore_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"session.phase.restore": "session_phase_restore",
		"fail.corrupt-stream":   "fail_corrupt_stream",
		"9lives":                "_lives",
		"a:b_c9":                "a:b_c9",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsHandlerNegotiation(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b").Inc()
	reg.Histogram("lat").Observe(time.Millisecond)
	srv := httptest.NewServer(MetricsHandler(reg))
	defer srv.Close()

	get := func(path, accept string) (*http.Response, string) {
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp, sb.String()
	}

	// Default is the JSON obs report.
	resp, body := get("/metrics", "")
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("default: status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var rep Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("default body not a report: %v", err)
	}
	if rep.Schema != ReportSchema || rep.Metrics == nil || rep.Metrics.Counters["a.b"] != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.Metrics.Histograms["lat"].Count != 1 {
		t.Errorf("report missing histogram: %+v", rep.Metrics.Histograms)
	}

	// ?format=prometheus and Accept: text/plain both select the exposition.
	for _, probe := range []struct{ path, accept string }{
		{"/metrics?format=prometheus", ""},
		{"/metrics", "text/plain"},
		{"/metrics", "application/openmetrics-text"},
	} {
		resp, body = get(probe.path, probe.accept)
		if resp.StatusCode != 200 {
			t.Fatalf("%+v: status %d", probe, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Errorf("%+v: content-type %q", probe, ct)
		}
		if !strings.Contains(body, "a_b 1") || !strings.Contains(body, "lat_seconds_count 1") {
			t.Errorf("%+v: exposition body:\n%s", probe, body)
		}
	}

	// ?format=json wins over a prometheus Accept header.
	resp, _ = get("/metrics?format=json", "text/plain")
	if resp.Header.Get("Content-Type") != "application/json" {
		t.Errorf("format=json override: content-type %q", resp.Header.Get("Content-Type"))
	}

	// Unknown format is a client error.
	resp, _ = get("/metrics?format=xml", "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("format=xml: status %d, want 400", resp.StatusCode)
	}
}
