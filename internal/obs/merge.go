package obs

import (
	"math/bits"
	"time"
)

// This file is the aggregation algebra the fleet scraper builds on. The
// bucket layout is compiled into every Histogram (powers of two in
// microseconds, see histBuckets), so bucket-wise addition of two
// histograms is exact: the merge reports the same quantiles as one
// histogram that had seen both sides' observations. Subtraction of two
// snapshots of the same cumulative histogram is exact for the same
// reason, which is what turns periodic scrapes into windowed rates.

// Merge folds other's observations into h bucket-wise. Lock-free (one
// atomic add per non-empty bucket), allocation-free, and nil-safe on
// both sides; Observes running concurrently on either histogram land in
// one side or the other, never lost.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	if s := other.sum.Load(); s != 0 {
		h.sum.Add(s)
	}
	if c := other.count.Load(); c != 0 {
		h.count.Add(c)
	}
}

// histIndexForBoundUS maps a snapshot bucket's upper bound back to its
// bucket index. Bounds that don't match the compiled layout (a peer
// built with a different resolution) clamp to the covering bucket, so a
// merge is never lossy beyond the receiver's own bucket width.
func histIndexForBoundUS(leUS int64) int {
	if leUS < 0 {
		return histBuckets
	}
	if leUS <= 1 {
		return 0
	}
	i := bits.Len64(uint64(leUS) - 1) // smallest i with 2^i >= leUS
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// dense expands the sparse bucket list into the full bucket array.
func (s HistogramSnapshot) dense() (c [histBuckets + 1]int64) {
	for _, b := range s.Buckets {
		c[histIndexForBoundUS(b.LEUS)] += b.Count
	}
	return c
}

// snapshotFromDense rebuilds a HistogramSnapshot — including its summary
// quantiles — from a dense bucket array, mirroring Histogram.Snapshot.
func snapshotFromDense(c [histBuckets + 1]int64, sumUS int64) HistogramSnapshot {
	snap := HistogramSnapshot{SumUS: sumUS}
	for i, n := range c {
		if n <= 0 {
			continue
		}
		snap.Count += n
		le := int64(-1)
		if i < histBuckets {
			le = HistBucketBound(i).Microseconds()
		}
		snap.Buckets = append(snap.Buckets, HistogramBucket{LEUS: le, Count: n})
	}
	snap.P50US = quantileFromDense(c, snap.Count, 0.50).Microseconds()
	snap.P90US = quantileFromDense(c, snap.Count, 0.90).Microseconds()
	snap.P99US = quantileFromDense(c, snap.Count, 0.99).Microseconds()
	return snap
}

// quantileFromDense is Histogram.Quantile over a dense bucket array.
func quantileFromDense(c [histBuckets + 1]int64, total int64, q float64) time.Duration {
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i <= histBuckets; i++ {
		seen += c[i]
		if seen >= rank {
			if i >= histBuckets {
				return HistBucketBound(histBuckets - 1)
			}
			return HistBucketBound(i)
		}
	}
	return HistBucketBound(histBuckets - 1)
}

// Quantile re-derives the q-quantile (0 < q <= 1) from the snapshot's
// buckets, so merged and windowed snapshots answer quantile queries the
// same way a live histogram does. Empty snapshots report 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	return quantileFromDense(s.dense(), s.Count, q)
}

// Merge returns the bucket-wise sum of s and other — how the fleet
// roll-up combines N nodes' histograms into one distribution. Exact:
// every histogram shares the compiled bucket layout, so the result's
// quantiles equal those of a single histogram that observed both sides.
func (s HistogramSnapshot) Merge(other HistogramSnapshot) HistogramSnapshot {
	c := s.dense()
	for _, b := range other.Buckets {
		c[histIndexForBoundUS(b.LEUS)] += b.Count
	}
	return snapshotFromDense(c, s.SumUS+other.SumUS)
}

// Delta returns the observations s gained since prev: bucket-wise
// subtraction, clamped at zero so a counter reset (node restart between
// scrapes) reads as a fresh window rather than a negative one.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	c := s.dense()
	for _, b := range prev.Buckets {
		i := histIndexForBoundUS(b.LEUS)
		if c[i] -= b.Count; c[i] < 0 {
			c[i] = 0
		}
	}
	sum := s.SumUS - prev.SumUS
	if sum < 0 {
		sum = 0
	}
	return snapshotFromDense(c, sum)
}

// Delta returns the windowed change from prev to m: counters and
// histograms subtract (clamped at zero across a node restart), gauges
// keep m's instantaneous values. The fleet scraper feeds two consecutive
// scrapes of the same node through this to turn cumulative counters into
// per-window rates.
func (m MetricsSnapshot) Delta(prev MetricsSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{}
	if len(m.Counters) > 0 {
		out.Counters = make(map[string]int64, len(m.Counters))
		for name, v := range m.Counters {
			d := v - prev.Counters[name]
			if d < 0 {
				d = 0
			}
			out.Counters[name] = d
		}
	}
	if len(m.Gauges) > 0 {
		out.Gauges = make(map[string]int64, len(m.Gauges))
		for name, v := range m.Gauges {
			out.Gauges[name] = v
		}
	}
	if len(m.Histograms) > 0 {
		out.Histograms = make(map[string]HistogramSnapshot, len(m.Histograms))
		for name, h := range m.Histograms {
			out.Histograms[name] = h.Delta(prev.Histograms[name])
		}
	}
	return out
}

// MergeMetrics returns the fleet-wide sum of per-node snapshots:
// counters and gauges add (a gauge sum is the fleet total — in-flight
// sessions across nodes), histograms merge bucket-wise.
func MergeMetrics(snaps ...MetricsSnapshot) MetricsSnapshot {
	out := MetricsSnapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			out.Gauges[name] += v
		}
		for name, h := range s.Histograms {
			if out.Histograms == nil {
				out.Histograms = map[string]HistogramSnapshot{}
			}
			out.Histograms[name] = out.Histograms[name].Merge(h)
		}
	}
	return out
}
