package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderBasics(t *testing.T) {
	var nilFR *FlightRecorder
	nilFR.Record("x", "must not panic")
	if nilFR.Total() != 0 || nilFR.Dropped() != 0 || len(nilFR.Events()) != 0 {
		t.Error("nil recorder reports non-zero state")
	}

	fr := NewFlightRecorder(4)
	fr.Record("phase", "collect -> transport")
	fr.Record("retransmit", "chunk %d attempt %d", 7, 2)
	evs := fr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Seq != 1 || evs[0].Kind != "phase" {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[1].Detail != "chunk 7 attempt 2" {
		t.Errorf("detail = %q, want formatted", evs[1].Detail)
	}
	if evs[0].At > evs[1].At {
		t.Error("events out of chronological order")
	}
}

func TestFlightRecorderOverwriteAtCapacity(t *testing.T) {
	fr := NewFlightRecorder(3)
	for i := 0; i < 10; i++ {
		fr.Record("tick", "n=%d", i)
	}
	if fr.Total() != 10 {
		t.Fatalf("total = %d, want 10", fr.Total())
	}
	if fr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", fr.Dropped())
	}
	evs := fr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained = %d, want 3", len(evs))
	}
	// Most-recent-wins: the survivors are the last three, in order.
	for i, want := range []string{"n=7", "n=8", "n=9"} {
		if evs[i].Detail != want {
			t.Errorf("event %d = %q, want %q", i, evs[i].Detail, want)
		}
	}
	if !strings.Contains(fr.String(), "7 earlier events overwritten") {
		t.Errorf("String() missing overwrite note:\n%s", fr.String())
	}
}

func TestFlightRecorderExport(t *testing.T) {
	fr := NewFlightRecorder(0) // 0 -> default capacity
	fr.Record("phase", "restore")
	data := fr.Export()
	if data.Schema != FlightSchema {
		t.Errorf("schema = %q", data.Schema)
	}
	// The dumper adds the correlation fields before writing.
	data.TraceID = "0123456789abcdef"
	data.Session = 1
	data.Outcome = "failed"
	data.Error = "checksum mismatch"
	if data.Total != 1 || data.Dropped != 0 {
		t.Errorf("export header = %+v", data)
	}
	if len(data.Events) != 1 || data.Events[0].Kind != "phase" {
		t.Errorf("export events = %+v", data.Events)
	}
	// The export must round-trip as JSON (it is what -trace-dir writes).
	b, err := json.Marshal(data)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back FlightData
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Error != "checksum mismatch" {
		t.Errorf("round-trip error = %q", back.Error)
	}
}

// TestFlightRecorderConcurrent exercises the ring under parallel appends;
// run with -race this verifies the locking discipline.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(16)
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				fr.Record("k", "w%d i%d", w, i)
			}
		}(w)
	}
	wg.Wait()
	if fr.Total() != workers*each {
		t.Errorf("total = %d, want %d", fr.Total(), workers*each)
	}
	evs := fr.Events()
	if len(evs) != 16 {
		t.Fatalf("retained = %d, want 16", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Errorf("seq not increasing: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}
