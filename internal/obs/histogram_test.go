package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0},
		{500 * time.Nanosecond, 0}, // ceil to 1us -> bucket 0 (le 1us)
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1}, // ceil to 2us -> le 2us
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2}, // le 4us
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},  // le 8us
		{time.Millisecond, 10},     // 1024us bound: 2^10
		{time.Second, 20},          // le 2^20 us = 1.048576s
		{time.Hour, 32},            // 3.6e9 us <= 2^32 us
		{400 * 24 * time.Hour, 40}, // beyond the finite range -> overflow
	}
	for _, c := range cases {
		if got := histBucketIndex(c.d); got != c.want {
			t.Errorf("bucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if b := HistBucketBound(0); b != time.Microsecond {
		t.Errorf("bound(0) = %v, want 1us", b)
	}
	if b := HistBucketBound(10); b != 1024*time.Microsecond {
		t.Errorf("bound(10) = %v, want 1.024ms", b)
	}
	if b := HistBucketBound(histBuckets); b >= 0 {
		t.Errorf("overflow bound = %v, want negative sentinel", b)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
	// 90 fast observations and 10 slow ones: p50 lands in the fast
	// bucket's bound, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.Observe(3 * time.Microsecond) // bucket le 4us
	}
	for i := 0; i < 10; i++ {
		h.Observe(900 * time.Microsecond) // bucket le 1024us
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Quantile(0.50); got != 4*time.Microsecond {
		t.Errorf("p50 = %v, want 4us", got)
	}
	if got := h.Quantile(0.99); got != 1024*time.Microsecond {
		t.Errorf("p99 = %v, want 1.024ms", got)
	}
	wantSum := 90*3*time.Microsecond + 10*900*time.Microsecond
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramSnapshotAndNil(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 || nilH.Sum() != 0 {
		t.Error("nil histogram reports non-zero values")
	}
	if s := nilH.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Error("nil histogram snapshot not empty")
	}

	h := NewRegistry().Histogram("x")
	h.Observe(time.Microsecond)
	h.Observe(time.Millisecond)
	h.Observe(500 * 24 * time.Hour) // overflow
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("snapshot count = %d, want 3", s.Count)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("snapshot buckets = %+v, want 3 non-empty", s.Buckets)
	}
	if last := s.Buckets[len(s.Buckets)-1]; last.LEUS != -1 || last.Count != 1 {
		t.Errorf("overflow bucket = %+v, want le_us=-1 count=1", last)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*each {
		t.Errorf("count = %d, want %d", got, workers*each)
	}
}

func TestRegistryHistogramSnapshotAndString(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(2)
	reg.Histogram("lat").Observe(3 * time.Microsecond)
	snap := reg.Snapshot()
	if len(snap.Histograms) != 1 || snap.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot histograms = %+v", snap.Histograms)
	}
	out := snap.String()
	if !strings.Contains(out, "histogram lat count 1") {
		t.Errorf("snapshot string missing histogram line:\n%s", out)
	}
	var nilReg *Registry
	if nilReg.Histogram("x") != nil {
		t.Error("nil registry returned a histogram")
	}
}

// TestHistogramObserveZeroAlloc is the allocation guard behind the CI
// bench smoke: the hot path must stay allocation-free whether the
// handle is live or nil.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	h := NewRegistry().Histogram("x")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(3 * time.Microsecond) }); n != 0 {
		t.Errorf("enabled Observe allocates %.1f per op", n)
	}
	var nilH *Histogram
	if n := testing.AllocsPerRun(1000, func() { nilH.Observe(3 * time.Microsecond) }); n != 0 {
		t.Errorf("nil Observe allocates %.1f per op", n)
	}
}
