package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of finite exponential buckets: bucket i holds
// observations with ceil(d) in (2^(i-1), 2^i] microseconds, so the finite
// range runs from 1µs up to 2^39µs (~6.4 days). One extra overflow slot
// catches anything beyond — the Prometheus +Inf bucket.
const histBuckets = 40

// Histogram is a fixed-bucket exponential latency histogram: per-phase and
// per-section migration latencies, stream acknowledgement round trips.
// The bucket layout is compiled in (powers of two in microseconds), so
// Observe is one bit-length computation and one atomic add — no locks, no
// allocations, safe for concurrent use, and (like Counter) safe on a nil
// receiver so optional handles need no branching.
//
// Quantiles are read from the bucket counts: the reported pN is the upper
// bound of the bucket the N-th percentile falls in — conservative by at
// most one bucket width (a factor of two), which is the trade for a
// lock-free hot path.
type Histogram struct {
	counts [histBuckets + 1]atomic.Int64 // [histBuckets] is the overflow (+Inf) slot
	sum    atomic.Int64                  // nanoseconds
	count  atomic.Int64
}

// histBucketIndex maps a duration to its bucket.
func histBucketIndex(d time.Duration) int {
	ns := uint64(d)
	if int64(d) <= 0 {
		return 0
	}
	us := (ns + 999) / 1000 // ceil to microseconds
	i := bits.Len64(us - 1) // us in (2^(i-1), 2^i]
	if i >= histBuckets {
		return histBuckets
	}
	return i
}

// HistBucketBound returns bucket i's inclusive upper bound; the overflow
// bucket has no finite bound and reports a negative duration.
func HistBucketBound(i int) time.Duration {
	if i >= histBuckets {
		return -1
	}
	return time.Microsecond << i
}

// Observe records one latency. Nil-safe; zero and negative durations count
// into the first bucket so Count stays an honest observation count.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.counts[histBucketIndex(d)].Add(1)
	h.sum.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations (0 on nil).
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket the quantile falls in, or 0 when the histogram is empty. The
// overflow bucket reports the largest finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i <= histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i >= histBuckets {
				return HistBucketBound(histBuckets - 1)
			}
			return HistBucketBound(i)
		}
	}
	return HistBucketBound(histBuckets - 1)
}

// HistogramBucket is one non-empty bucket in a snapshot. LEUS is the
// bucket's inclusive upper bound in microseconds (-1 for the overflow
// bucket); Count is the bucket's own (not cumulative) count.
type HistogramBucket struct {
	LEUS  int64 `json:"le_us"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram: summary quantiles up
// front (what the report tables read) plus the sparse bucket counts (what
// the Prometheus exposition rebuilds its cumulative series from).
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	SumUS   int64             `json:"sum_us"`
	P50US   int64             `json:"p50_us"`
	P90US   int64             `json:"p90_us"`
	P99US   int64             `json:"p99_us"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot returns a point-in-time copy of the histogram. The individual
// loads are atomic but the set is not a consistent cut; for a completed
// session the difference is nil.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Count: h.count.Load(),
		SumUS: h.sum.Load() / 1000,
		P50US: h.Quantile(0.50).Microseconds(),
		P90US: h.Quantile(0.90).Microseconds(),
		P99US: h.Quantile(0.99).Microseconds(),
	}
	for i := 0; i <= histBuckets; i++ {
		if n := h.counts[i].Load(); n > 0 {
			le := int64(-1)
			if i < histBuckets {
				le = HistBucketBound(i).Microseconds()
			}
			snap.Buckets = append(snap.Buckets, HistogramBucket{LEUS: le, Count: n})
		}
	}
	return snap
}
