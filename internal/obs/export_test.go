package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// TestParseReportV1Compat reads a recorded repro-obs/1 snapshot — the
// format every pre-fleet consumer archived — and checks the v2 reader
// accepts it unchanged: metrics intact, node header absent, and its
// histograms still answer quantile queries (what the scraper does with
// a v1 node in a mixed fleet).
func TestParseReportV1Compat(t *testing.T) {
	raw, err := os.ReadFile("testdata/metrics_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ParseReport(raw)
	if err != nil {
		t.Fatalf("v1 report rejected: %v", err)
	}
	if rep.Schema != ReportSchemaV1 {
		t.Fatalf("schema = %q, want %q", rep.Schema, ReportSchemaV1)
	}
	if rep.Node != nil {
		t.Errorf("v1 report grew a node header: %+v", rep.Node)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["session.restored"] != 11 {
		t.Fatalf("metrics not preserved: %+v", rep.Metrics)
	}
	h := rep.Metrics.Histograms["session.phase.restore"]
	if h.Count != 11 || h.Quantile(0.5) != 4096*time.Microsecond {
		t.Errorf("histogram p50 = %v (count %d), want 4.096ms (11)", h.Quantile(0.5), h.Count)
	}
	// The recorded summary quantiles must agree with what the v2 code
	// re-derives from the buckets — the layout did not move.
	if got := h.Quantile(0.99).Microseconds(); got != h.P99US {
		t.Errorf("re-derived p99 %dus != recorded %dus", got, h.P99US)
	}
}

// TestParseReportUnknownSchema pins the failure mode for foreign
// documents: parse errors, not silent misreads.
func TestParseReportUnknownSchema(t *testing.T) {
	if _, err := ParseReport([]byte(`{"schema":"repro-obs/99"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
	if _, err := ParseReport([]byte(`not json`)); err == nil {
		t.Fatal("malformed document accepted")
	}
}

// TestNodeMetricsHandler checks the v2 endpoint: the JSON report carries
// the schema marker and the node identity header, the refresh hook runs
// per request, the Prometheus exposition stays header-free, and an
// unknown ?format= is still a 400.
func TestNodeMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("session.restored").Add(4)
	refreshes := 0
	start := time.Now().Add(-time.Minute)
	srv := httptest.NewServer(NodeMetricsHandler(reg, func() *NodeInfo {
		refreshes++
		return &NodeInfo{ID: "host-abcd1234", Machine: "sparc20", Start: start, Version: "devel"}
	}))
	defer srv.Close()

	body := func(url string) (int, string) {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, js := body(srv.URL)
	if code != 200 {
		t.Fatalf("json status %d", code)
	}
	rep, err := ParseReport([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.Node == nil || rep.Node.ID != "host-abcd1234" || rep.Node.Machine != "sparc20" {
		t.Fatalf("node header = %+v", rep.Node)
	}
	if rep.Metrics.Counters["session.restored"] != 4 {
		t.Errorf("metrics = %+v", rep.Metrics)
	}
	if refreshes != 1 {
		t.Errorf("refresh hook ran %d times, want 1", refreshes)
	}

	if code, text := body(srv.URL + "?format=prometheus"); code != 200 ||
		!strings.Contains(text, "session_restored 4") || strings.Contains(text, "host-abcd1234") {
		t.Errorf("prometheus exposition wrong (status %d):\n%s", code, text)
	}
	if code, _ := body(srv.URL + "?format=xml"); code != http.StatusBadRequest {
		t.Errorf("unknown format status = %d, want 400", code)
	}
}

// TestReportJSONRoundTrip pins that a v2 report with a node header
// survives encode → ParseReport unchanged.
func TestReportJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("lat").Observe(3 * time.Millisecond)
	rep := NewReport("", nil).WithMetrics(reg)
	rep.Node = &NodeInfo{ID: "n1", PID: 42, Version: "v0"}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Node.ID != "n1" || back.Node.PID != 42 {
		t.Errorf("node header lost: %+v", back.Node)
	}
	if back.Metrics.Histograms["lat"].Count != 1 {
		t.Errorf("metrics lost: %+v", back.Metrics)
	}
}
