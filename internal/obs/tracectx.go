package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// TraceContext is the cross-machine identity of one traced migration: a
// trace ID minted by the initiator and the ID of the span the peer's work
// nests under. It crosses the wire in the session handshake so the
// source-side collect/transport spans and the destination-side
// restore/confirm spans share one trace and can be stitched into a single
// end-to-end tree.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// Valid reports whether the context carries a minted trace ID.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// String renders the context for logs.
func (tc TraceContext) String() string {
	return fmt.Sprintf("trace=%s span=%s", IDString(tc.TraceID), IDString(tc.SpanID))
}

// IDString renders a trace or span ID in the canonical 16-hex-digit form
// used in exports and file names.
func IDString(id uint64) string { return fmt.Sprintf("%016x", id) }

// idFallback seeds the arithmetic fallback generator used if the system
// randomness source ever fails; IDs stay unique within the process, which
// is all correlation needs.
var idFallback atomic.Uint64

// newID mints a random nonzero 64-bit ID.
func newID() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
	return idFallback.Add(0x9e3779b97f4a7c15) | 1
}

// NewTraceContext mints a fresh trace: a new trace ID and the initiator's
// root span ID.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: newID(), SpanID: newID()}
}

// NewSpanID mints a span ID within an existing trace (the responder's
// session span).
func NewSpanID() uint64 { return newID() }
