package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// FlightSchema names the JSON schema of a dumped flight recording.
const FlightSchema = "repro-flight/1"

// defaultFlightCapacity bounds a recorder that was created without an
// explicit capacity. A migration session emits tens of events (phase
// transitions, retransmits, reconnects), so 256 keeps the interesting tail
// with room to spare while bounding memory per in-flight session.
const defaultFlightCapacity = 256

// FlightEvent is one structured entry in a flight recording.
type FlightEvent struct {
	// Seq is the event's 1-based position in the whole recording — gaps
	// at the front reveal how many events the ring overwrote.
	Seq uint64
	// At is the event's offset from the recorder's creation, so a dumped
	// recording is machine-comparable without absolute clocks.
	At     time.Duration
	Kind   string
	Detail string
}

// FlightRecorder is a bounded in-memory ring of structured events kept per
// migration session: phase transitions, retransmits, reconnects, NACK
// rewinds, failure classifications. It records always and cheaply, and is
// read only when the session fails — the dump that explains a failure
// without per-session log volume on the success path.
//
// The ring holds the most recent capacity events; older ones are
// overwritten (Total and Dropped account for them). All methods are safe
// for concurrent use and safe on a nil receiver, so every layer can hold
// an optional recorder handle without branching.
type FlightRecorder struct {
	mu    sync.Mutex
	start time.Time
	buf   []FlightEvent // ring storage, len == cap once full
	next  int           // ring write index
	total uint64
}

// NewFlightRecorder returns a recorder keeping the last capacity events
// (<= 0 selects the default of 256).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightCapacity
	}
	return &FlightRecorder{start: time.Now(), buf: make([]FlightEvent, 0, capacity)}
}

// Record appends one event. Nil-safe; the detail is formatted eagerly so
// later mutation of the arguments cannot corrupt the recording.
func (r *FlightRecorder) Record(kind, format string, args ...any) {
	if r == nil {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	r.mu.Lock()
	r.total++
	ev := FlightEvent{Seq: r.total, At: time.Since(r.start), Kind: kind, Detail: detail}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next = (r.next + 1) % len(r.buf)
	}
	r.mu.Unlock()
}

// Total returns how many events were recorded over the recorder's life.
func (r *FlightRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many events the ring overwrote.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// Events returns the retained events in chronological order.
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FlightEvent, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// FlightEventData is the JSON form of one event.
type FlightEventData struct {
	Seq    uint64 `json:"seq"`
	AtUS   int64  `json:"at_us"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// FlightData is the JSON form of a dumped recording. The recorder fills
// Schema, Total, Dropped, and Events; the dumper adds the correlation
// fields (trace ID, session number, outcome, error).
type FlightData struct {
	Schema  string            `json:"schema"`
	TraceID string            `json:"trace_id,omitempty"`
	Session uint64            `json:"session,omitempty"`
	Outcome string            `json:"outcome,omitempty"`
	Error   string            `json:"error,omitempty"`
	Total   uint64            `json:"total"`
	Dropped uint64            `json:"dropped,omitempty"`
	Events  []FlightEventData `json:"events"`
}

// Export converts the recording to its JSON form. Nil-safe (returns nil).
func (r *FlightRecorder) Export() *FlightData {
	if r == nil {
		return nil
	}
	events := r.Events()
	d := &FlightData{
		Schema:  FlightSchema,
		Total:   r.Total(),
		Dropped: r.Dropped(),
		Events:  make([]FlightEventData, 0, len(events)),
	}
	for _, ev := range events {
		d.Events = append(d.Events, FlightEventData{
			Seq:    ev.Seq,
			AtUS:   ev.At.Microseconds(),
			Kind:   ev.Kind,
			Detail: ev.Detail,
		})
	}
	return d
}

// String renders the retained events as indented log lines — the form the
// daemon prints when a failed session dumps its recording.
func (r *FlightRecorder) String() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	if d := r.Dropped(); d > 0 {
		fmt.Fprintf(&b, "  ... %d earlier events overwritten\n", d)
	}
	for _, ev := range r.Events() {
		fmt.Fprintf(&b, "  %5d  %10.3fms  %-18s %s\n",
			ev.Seq, float64(ev.At.Microseconds())/1000, ev.Kind, ev.Detail)
	}
	return b.String()
}
