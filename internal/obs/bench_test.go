package obs

import (
	"testing"
	"time"
)

// BenchmarkObsSpanDisabled measures the disabled fast path: a nil span's
// whole child/annotate/end sequence must compile down to nil-checks with
// zero allocations — the cost an uninstrumented migration pays.
func BenchmarkObsSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start("capture")
		c := root.Child("encode")
		c.SetSection("heap", 1)
		c.SetBytes(1024)
		c.End()
		root.End()
	}
}

// BenchmarkObsSpanEnabled is the enabled counterpart, for the on/off
// comparison E10a reports.
func BenchmarkObsSpanEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewTracer()
		root := tr.Start("capture")
		c := root.Child("encode")
		c.SetSection("heap", 1)
		c.SetBytes(1024)
		c.End()
		root.End()
	}
}

// BenchmarkObsCounterAdd measures the always-on bulk-flush cost: one
// pre-resolved counter add, the per-capture price of the registry.
func BenchmarkObsCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(64)
	}
}

// BenchmarkObsHistogramDisabled measures the disabled latency-histogram
// path: a nil histogram's Observe must compile down to a nil-check with
// zero allocations — the cost an optional handle pays when unset.
func BenchmarkObsHistogramDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}

// BenchmarkObsHistogramObserve measures the enabled hot path: one bucket
// index computation and three atomic adds, zero allocations — the per-
// phase price of always-on latency recording.
func BenchmarkObsHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
}

// BenchmarkObsHistogramMerge measures the fleet-aggregation hot path:
// folding one populated histogram into another is a fixed walk of the
// bucket array with atomic adds — zero allocations, same contract as
// Observe (TestHistogramMergeZeroAlloc is the hard guard).
func BenchmarkObsHistogramMerge(b *testing.B) {
	src := NewRegistry().Histogram("src")
	for i := 0; i < 1000; i++ {
		src.Observe(time.Duration(i) * time.Microsecond)
	}
	dst := NewRegistry().Histogram("dst")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.Merge(src)
	}
}
