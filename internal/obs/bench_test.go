package obs

import "testing"

// BenchmarkObsSpanDisabled measures the disabled fast path: a nil span's
// whole child/annotate/end sequence must compile down to nil-checks with
// zero allocations — the cost an uninstrumented migration pays.
func BenchmarkObsSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		root := tr.Start("capture")
		c := root.Child("encode")
		c.SetSection("heap", 1)
		c.SetBytes(1024)
		c.End()
		root.End()
	}
}

// BenchmarkObsSpanEnabled is the enabled counterpart, for the on/off
// comparison E10a reports.
func BenchmarkObsSpanEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewTracer()
		root := tr.Start("capture")
		c := root.Child("encode")
		c.SetSection("heap", 1)
		c.SetBytes(1024)
		c.End()
		root.End()
	}
}

// BenchmarkObsCounterAdd measures the always-on bulk-flush cost: one
// pre-resolved counter add, the per-capture price of the registry.
func BenchmarkObsCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(64)
	}
}
