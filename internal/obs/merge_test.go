package obs

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestHistogramMergeMatchesSingleRun is the quantile-accuracy gate: N
// histograms merged bucket-wise must be indistinguishable — buckets,
// count, sum, and every quantile — from one histogram that observed the
// union of their samples. The bucket layout is shared, so this must be
// exact, not approximate.
func TestHistogramMergeMatchesSingleRun(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	parts := []*Histogram{{}, {}, {}}
	ref := &Histogram{}
	for i := 0; i < 3000; i++ {
		// Spread across the full bucket range, overflow included.
		d := time.Duration(rng.Int63n(int64(time.Hour))) * time.Duration(1+rng.Intn(200))
		parts[i%len(parts)].Observe(d)
		ref.Observe(d)
	}
	merged := &Histogram{}
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != ref.Count() || merged.Sum() != ref.Sum() {
		t.Fatalf("merged count/sum = %d/%v, want %d/%v",
			merged.Count(), merged.Sum(), ref.Count(), ref.Sum())
	}
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		if got, want := merged.Quantile(q), ref.Quantile(q); got != want {
			t.Errorf("q%.2f: merged %v, reference %v", q, got, want)
		}
	}
	ms, rs := merged.Snapshot(), ref.Snapshot()
	if len(ms.Buckets) != len(rs.Buckets) {
		t.Fatalf("bucket sets differ: %v vs %v", ms.Buckets, rs.Buckets)
	}
	for i := range ms.Buckets {
		if ms.Buckets[i] != rs.Buckets[i] {
			t.Errorf("bucket %d: merged %+v, reference %+v", i, ms.Buckets[i], rs.Buckets[i])
		}
	}
}

// TestSnapshotMergeAndQuantile checks the snapshot-level merge — what
// the fleet scraper uses, operating on decoded JSON rather than live
// histograms — against the same single-run reference.
func TestSnapshotMergeAndQuantile(t *testing.T) {
	a, b, ref := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 1; i <= 600; i++ {
		d := time.Duration(i*i) * time.Microsecond
		ref.Observe(d)
		if i%2 == 0 {
			a.Observe(d)
		} else {
			b.Observe(d)
		}
	}
	got := a.Snapshot().Merge(b.Snapshot())
	want := ref.Snapshot()
	if got.Count != want.Count || got.SumUS != want.SumUS ||
		got.P50US != want.P50US || got.P90US != want.P90US || got.P99US != want.P99US {
		t.Fatalf("merged snapshot %+v, want %+v", got, want)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if got.Quantile(q) != ref.Quantile(q) {
			t.Errorf("q%.2f: snapshot %v, histogram %v", q, got.Quantile(q), ref.Quantile(q))
		}
	}
	// Merging an empty snapshot is the identity.
	if id := want.Merge(HistogramSnapshot{}); id.Count != want.Count || id.P99US != want.P99US {
		t.Errorf("merge with empty changed the snapshot: %+v", id)
	}
}

// TestSnapshotDelta checks the windowing algebra: two snapshots of one
// cumulative histogram subtract to exactly the observations in between,
// and a shrinking counter (node restart between scrapes) clamps to an
// empty window rather than going negative.
func TestSnapshotDelta(t *testing.T) {
	h := &Histogram{}
	h.Observe(3 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	prev := h.Snapshot()

	h.Observe(20 * time.Millisecond)
	h.Observe(21 * time.Millisecond)
	h.Observe(40 * time.Millisecond)
	delta := h.Snapshot().Delta(prev)

	if delta.Count != 3 {
		t.Fatalf("delta count = %d, want 3", delta.Count)
	}
	ref := &Histogram{}
	ref.Observe(20 * time.Millisecond)
	ref.Observe(21 * time.Millisecond)
	ref.Observe(40 * time.Millisecond)
	if want := ref.Snapshot(); delta.P50US != want.P50US || delta.P99US != want.P99US ||
		delta.SumUS != want.SumUS {
		t.Errorf("delta %+v, want %+v", delta, want)
	}

	// Restart: prev ahead of current must clamp, not go negative.
	fresh := (&Histogram{}).Snapshot()
	clamped := fresh.Delta(prev)
	if clamped.Count != 0 || len(clamped.Buckets) != 0 || clamped.SumUS != 0 {
		t.Errorf("post-restart delta not clamped: %+v", clamped)
	}
}

// TestHistogramMergeNilSafe mirrors the package-wide nil contract.
func TestHistogramMergeNilSafe(t *testing.T) {
	var nilH *Histogram
	nilH.Merge(&Histogram{}) // must not panic
	h := &Histogram{}
	h.Observe(time.Millisecond)
	h.Merge(nil)
	if h.Count() != 1 {
		t.Errorf("merge(nil) changed count: %d", h.Count())
	}
}

// TestHistogramMergeZeroAlloc is the hard allocation guard for the
// scraper's aggregation hot path: merging one histogram into another
// must not allocate, same contract as Observe.
func TestHistogramMergeZeroAlloc(t *testing.T) {
	src := &Histogram{}
	for i := 0; i < 100; i++ {
		src.Observe(time.Duration(i) * time.Millisecond)
	}
	dst := &Histogram{}
	if n := testing.AllocsPerRun(1000, func() { dst.Merge(src) }); n != 0 {
		t.Errorf("Histogram.Merge allocates %v allocs/op, want 0", n)
	}
}

// TestMetricsSnapshotDelta covers the full-snapshot window: counters
// subtract and clamp, gauges stay instantaneous, histograms delta.
func TestMetricsSnapshotDelta(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("session.restored").Add(5)
	reg.Gauge("session.inflight").Set(2)
	reg.Histogram("session.duration").Observe(time.Millisecond)
	prev := reg.Snapshot()

	reg.Counter("session.restored").Add(3)
	reg.Counter("session.failed").Inc()
	reg.Gauge("session.inflight").Set(7)
	reg.Histogram("session.duration").Observe(4 * time.Millisecond)
	d := reg.Snapshot().Delta(prev)

	if d.Counters["session.restored"] != 3 || d.Counters["session.failed"] != 1 {
		t.Errorf("counter deltas = %v", d.Counters)
	}
	if d.Gauges["session.inflight"] != 7 {
		t.Errorf("gauge kept windowed value, want instantaneous: %v", d.Gauges)
	}
	if d.Histograms["session.duration"].Count != 1 {
		t.Errorf("histogram delta = %+v", d.Histograms["session.duration"])
	}

	// A restart (prev ahead) clamps counters at zero.
	clamped := prev.Delta(reg.Snapshot())
	if clamped.Counters["session.restored"] != 0 {
		t.Errorf("clamped counter = %d, want 0", clamped.Counters["session.restored"])
	}
}

// TestMergeMetrics checks the fleet-wide roll-up of full snapshots.
func TestMergeMetrics(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("session.restored").Add(2)
	b.Counter("session.restored").Add(3)
	a.Gauge("session.inflight").Set(1)
	b.Gauge("session.inflight").Set(4)
	a.Histogram("session.duration").Observe(time.Millisecond)
	b.Histogram("session.duration").Observe(8 * time.Millisecond)
	m := MergeMetrics(a.Snapshot(), b.Snapshot())
	if m.Counters["session.restored"] != 5 || m.Gauges["session.inflight"] != 5 {
		t.Errorf("merged totals = %v %v", m.Counters, m.Gauges)
	}
	if m.Histograms["session.duration"].Count != 2 {
		t.Errorf("merged histogram = %+v", m.Histograms["session.duration"])
	}
}

// TestPrometheusMergedSnapshotInvariants renders merged and windowed
// snapshots through the Prometheus exposition and checks the two
// invariants scrapers rely on: cumulative le-bucket series never
// decrease, and the +Inf bucket equals the _count sample count.
func TestPrometheusMergedSnapshotInvariants(t *testing.T) {
	a, b := &Histogram{}, &Histogram{}
	for i := 0; i < 400; i++ {
		a.Observe(time.Duration(i) * 37 * time.Microsecond)
		b.Observe(time.Duration(i) * 11 * time.Millisecond)
	}
	b.Observe(30 * 24 * time.Hour) // force the overflow (+Inf) bucket
	prevSnap := a.Snapshot()
	for i := 0; i < 50; i++ {
		a.Observe(time.Duration(i) * time.Second)
	}

	cases := map[string]HistogramSnapshot{
		"merged": a.Snapshot().Merge(b.Snapshot()),
		"delta":  a.Snapshot().Delta(prevSnap),
	}
	for name, snap := range cases {
		var sb strings.Builder
		m := MetricsSnapshot{Histograms: map[string]HistogramSnapshot{"lat": snap}}
		if err := m.WritePrometheus(&sb); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := sb.String()
		var prev, inf, count int64
		var sawInf, sawCount bool
		for _, line := range strings.Split(out, "\n") {
			switch {
			case strings.HasPrefix(line, "lat_seconds_bucket{"):
				v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
				if err != nil {
					t.Fatalf("%s: bad bucket line %q: %v", name, line, err)
				}
				if v < prev {
					t.Errorf("%s: cumulative bucket decreased: %q after %d", name, line, prev)
				}
				prev = v
				if strings.Contains(line, `le="+Inf"`) {
					inf, sawInf = v, true
				}
			case strings.HasPrefix(line, "lat_seconds_count "):
				count, _ = strconv.ParseInt(strings.TrimPrefix(line, "lat_seconds_count "), 10, 64)
				sawCount = true
			}
		}
		if !sawInf || !sawCount {
			t.Fatalf("%s: exposition missing +Inf or _count:\n%s", name, out)
		}
		if inf != count || count != snap.Count {
			t.Errorf("%s: +Inf %d, _count %d, snapshot count %d — want all equal",
				name, inf, count, snap.Count)
		}
	}
}
