package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	s := tr.Start("root")
	if s != nil {
		t.Fatalf("nil tracer produced a span")
	}
	// Every span method must be callable on nil without effect.
	c := s.Child("child")
	if c != nil {
		t.Fatalf("nil span produced a child")
	}
	s.End()
	s.SetBytes(5)
	s.AddBytes(5)
	s.SetSection("heap", 1)
	s.SetAttr("k", "v")
	s.SetDuration(time.Second)
	if s.Elapsed() != 0 || s.Bytes() != 0 || s.Name() != "" {
		t.Fatalf("nil span reported state")
	}
	if s.Find("x") != nil || s.Tree() != "" || s.Export() != nil {
		t.Fatalf("nil span exported data")
	}
	if tr.Roots() != nil || tr.Tree() != "" || tr.Export() != nil {
		t.Fatalf("nil tracer exported data")
	}
}

func TestSpanNestingAndExport(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("session")
	root.SetAttr("version", "3")
	enc := root.Child("encode")
	sec := enc.Child("section")
	sec.SetSection("heap", 2)
	sec.SetBytes(1024)
	sec.End()
	enc.End()
	root.End()

	if got := len(tr.Roots()); got != 1 {
		t.Fatalf("roots = %d, want 1", got)
	}
	if root.Find("section") != sec {
		t.Fatalf("Find did not locate the nested span")
	}

	d := root.Export()
	if d.Name != "session" || d.Attrs["version"] != "3" {
		t.Fatalf("root export wrong: %+v", d)
	}
	if len(d.Children) != 1 || len(d.Children[0].Children) != 1 {
		t.Fatalf("export lost nesting: %+v", d)
	}
	leaf := d.Children[0].Children[0]
	if leaf.Kind != "heap" || leaf.ID != 2 || leaf.Bytes != 1024 {
		t.Fatalf("leaf export wrong: %+v", leaf)
	}
	if leaf.StartUS < 0 {
		t.Fatalf("leaf start offset negative: %d", leaf.StartUS)
	}

	// The JSON schema must round-trip.
	raw, err := json.Marshal(NewReport("test", nil).WithSpans(tr.Export()))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema || len(rep.Spans) != 1 {
		t.Fatalf("report round-trip wrong: %+v", rep)
	}
}

func TestSpanEndIdempotentAndSetDuration(t *testing.T) {
	tr := NewTracer()
	s := tr.Start("x")
	s.SetDuration(42 * time.Millisecond)
	first := s.Elapsed()
	s.End() // must not overwrite the explicit duration
	if first != 42*time.Millisecond || s.Elapsed() != first {
		t.Fatalf("duration moved after End: %v -> %v", first, s.Elapsed())
	}
}

func TestTreeRendering(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("capture")
	c := root.Child("encode")
	c.SetSection("frame", 1)
	c.SetBytes(256)
	c.End()
	root.End()
	tree := tr.Tree()
	for _, want := range []string{"capture", "encode", "frame #1", "256 B"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("tree missing %q:\n%s", want, tree)
		}
	}
	if !strings.HasPrefix(strings.Split(tree, "\n")[1], "  ") {
		t.Fatalf("child not indented:\n%s", tree)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("encode")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.Child("section")
				c.SetSection("heap", id)
				c.AddBytes(1)
				c.End()
			}
		}(uint32(i))
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 800 {
		t.Fatalf("children = %d, want 800", got)
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	c.Add(-17) // monotonic: ignored
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatalf("counter handle not stable")
	}
	g := r.Gauge("w")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	snap := r.Snapshot()
	if snap.Counters["a.b"] != 5 || snap.Gauges["w"] != 5 {
		t.Fatalf("snapshot wrong: %+v", snap)
	}
	if s := snap.String(); !strings.Contains(s, "counter a.b 5") || !strings.Contains(s, "gauge w 5") {
		t.Fatalf("snapshot render wrong:\n%s", s)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatalf("nil registry recorded values")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 {
		t.Fatalf("nil registry snapshot non-empty")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("hits").Inc()
				r.Gauge("depth").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 8000 {
		t.Fatalf("hits = %d, want 8000", got)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("session.restored").Add(3)
	srv := httptest.NewServer(MetricsHandler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema = %q", rep.Schema)
	}
	if rep.Metrics == nil || rep.Metrics.Counters["session.restored"] != 3 {
		t.Fatalf("metrics wrong: %+v", rep.Metrics)
	}
}
