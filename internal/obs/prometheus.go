package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// promName maps a registry metric name onto the Prometheus data model:
// dots (the registry's namespace separator) and any other illegal rune
// become underscores ("session.fail.corrupt-stream" ->
// "session_fail_corrupt_stream").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promBound renders a histogram bucket's upper bound in seconds, the
// Prometheus convention for latency histograms (buckets are stored in
// microseconds internally).
func promBound(leUS int64) string {
	if leUS < 0 {
		return "+Inf"
	}
	return fmt.Sprintf("%g", float64(leUS)/1e6)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): counters, gauges, and histograms with
// cumulative le buckets, _sum, and _count. Output is sorted by metric
// name so scrapes diff cleanly.
func (m MetricsSnapshot) WritePrometheus(w io.Writer) error {
	names := func(vals map[string]int64) []string {
		out := make([]string, 0, len(vals))
		for n := range vals {
			out = append(out, n)
		}
		sort.Strings(out)
		return out
	}
	for _, n := range names(m.Counters) {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, m.Counters[n]); err != nil {
			return err
		}
	}
	for _, n := range names(m.Gauges) {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, m.Gauges[n]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(m.Histograms))
	for n := range m.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := m.Histograms[n]
		pn := promName(n) + "_seconds"
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		hasInf := false
		for _, b := range h.Buckets {
			cum += b.Count
			if b.LEUS < 0 {
				hasInf = true
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, promBound(b.LEUS), cum); err != nil {
				return err
			}
		}
		if !hasInf {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n",
			pn, float64(h.SumUS)/1e6, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}
