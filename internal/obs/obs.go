// Package obs is the observability layer of the migration stack: span-based
// phase timers, a monotonic counter/gauge registry, and exporters that
// render either human-readable trees (the migd log) or JSON (one schema
// shared by migbench's BENCH_*.json files and migd's /metrics endpoint).
//
// The paper's evaluation splits every migration into phases — collect,
// encode, transport, restore — and attributes cost to each; Milanés et
// al.'s reflection-based capture work and the x86/ARM migration study make
// the same point: per-phase attribution is what makes a heterogeneous
// migration tunable. This package turns that attribution from experiment
// scaffolding into an always-available subsystem instrumenting all four
// layers of the stack: xdr (encode/decode volume), stream (frames, acks,
// redials, window occupancy), collect/vm (per-phase and per-section spans
// on capture and restore), and session/migd (per-session traces with the
// negotiated version and classified outcome).
//
// # Disabled cost
//
// Tracing is opt-in and nil-disabled: a nil *Tracer returns nil *Spans,
// and every Span method is a nil-receiver no-op, so an uninstrumented
// migration pays only pointer nil-checks — no allocations, no atomics, no
// time syscalls. BenchmarkObsSpanDisabled and BenchmarkObsCaptureDisabled
// (internal/vm) verify the fast path stays near zero.
//
// Counters are the opposite trade: always on, but updated in bulk — the
// instrumented layers accumulate locally (a plain int in an encoder, a
// stats struct in a stream writer) and flush one atomic add per capture,
// restore, or transfer, so the registry's cost is independent of data
// size.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed phase of a migration, possibly nested: a capture span
// holds partition/encode children; an encode span holds one child per
// snapshot section, carrying the section kind, id, and encoded bytes.
//
// All methods are safe on a nil receiver (the disabled fast path) and safe
// for concurrent use, so a parent span can collect children from a worker
// pool.
type Span struct {
	mu       sync.Mutex
	name     string
	kind     string
	id       uint32
	bytes    int64
	attrs    []Attr
	start    time.Time
	dur      time.Duration
	ended    bool
	children []*Span
	// tc and parentSpan carry the distributed-trace identity (set on
	// session root spans); remote holds stitched peer subtrees received
	// over the wire, exported and rendered after the local children.
	tc         TraceContext
	parentSpan uint64
	remote     []*SpanData
}

// newSpan starts a live span.
func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a nested span. On a nil receiver it returns nil, keeping
// the whole subtree free.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End stops the span's clock. A second End is a no-op, so deferred and
// explicit ends compose.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetBytes records the payload volume the span covered.
func (s *Span) SetBytes(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.bytes = n
	s.mu.Unlock()
}

// AddBytes accumulates payload volume (for spans fed incrementally).
func (s *Span) AddBytes(n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.bytes += n
	s.mu.Unlock()
}

// SetSection tags the span with a snapshot section identity.
func (s *Span) SetSection(kind string, id uint32) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.kind = kind
	s.id = id
	s.mu.Unlock()
}

// SetAttr attaches (or replaces) a key/value annotation.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetTraceContext stamps the span with its distributed-trace identity.
func (s *Span) SetTraceContext(tc TraceContext) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tc = tc
	s.mu.Unlock()
}

// TraceContext returns the span's trace identity (zero when unset or nil).
func (s *Span) TraceContext() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tc
}

// SetParentSpan links the span under a remote parent span ID — the
// responder's session span pointing back at the initiator's.
func (s *Span) SetParentSpan(id uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.parentSpan = id
	s.mu.Unlock()
}

// AttachRemote grafts an exported peer subtree under this span: the
// destination's restore/confirm spans shipped back on the session's
// confirm leg. The subtree is marked remote and appears after the local
// children in both the rendered tree and the JSON export. Remote start
// offsets stay relative to the remote root — the two machines' clocks are
// not comparable. Nil-safe on both receiver and argument.
func (s *Span) AttachRemote(d *SpanData) {
	if s == nil || d == nil {
		return
	}
	d.Remote = true
	s.mu.Lock()
	s.remote = append(s.remote, d)
	s.mu.Unlock()
}

// Remote returns the attached peer subtrees in attach order.
func (s *Span) Remote() []*SpanData {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*SpanData, len(s.remote))
	copy(out, s.remote)
	return out
}

// SetDuration overrides the span's measured duration — used when a phase
// was timed externally (a pre-measured section encode from a worker pool).
func (s *Span) SetDuration(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dur = d
	s.ended = true
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Bytes returns the recorded payload volume.
func (s *Span) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Elapsed returns the span's duration: final after End, running before.
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Children returns the nested spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// Find returns the first descendant span (depth-first, including s) with
// the given name, or nil — a test and reporting convenience.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name() == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// Tracer owns the root spans of one traced unit of work — one migration
// session, one experiment run. A nil *Tracer is the disabled tracer: Start
// returns nil and the whole span tree degenerates to nil-checks.
type Tracer struct {
	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Start opens a root span. Nil-safe.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := newSpan(name)
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the root spans in start order.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.roots))
	copy(out, t.roots)
	return out
}

// Tree renders every root span as a human-readable indented tree, the
// rendering migd prints per session.
func (t *Tracer) Tree() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, r := range t.Roots() {
		writeTree(&b, r, 0)
	}
	return b.String()
}

// Tree renders the span and its descendants as an indented tree.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	writeTree(&b, s, 0)
	return b.String()
}

func writeTree(b *strings.Builder, s *Span, depth int) {
	s.mu.Lock()
	name, kind, id, bytes := s.name, s.kind, s.id, s.bytes
	dur := s.dur
	if !s.ended {
		dur = time.Since(s.start)
	}
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	tc := s.tc
	remote := append([]*SpanData(nil), s.remote...)
	s.mu.Unlock()

	b.WriteString(strings.Repeat("  ", depth))
	if kind != "" {
		fmt.Fprintf(b, "%-10s %s #%d", name, kind, id)
	} else {
		fmt.Fprintf(b, "%-10s", name)
	}
	fmt.Fprintf(b, "  %10.4fms", float64(dur.Microseconds())/1000)
	if bytes > 0 {
		fmt.Fprintf(b, "  %10d B", bytes)
	}
	if tc.Valid() {
		fmt.Fprintf(b, "  trace=%s", IDString(tc.TraceID))
	}
	for _, a := range attrs {
		fmt.Fprintf(b, "  %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range children {
		writeTree(b, c, depth+1)
	}
	for _, d := range remote {
		writeDataTree(b, d, depth+1)
	}
}

// writeDataTree renders an exported (possibly remote) span subtree in the
// same layout as writeTree.
func writeDataTree(b *strings.Builder, d *SpanData, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if d.Kind != "" {
		fmt.Fprintf(b, "%-10s %s #%d", d.Name, d.Kind, d.ID)
	} else {
		fmt.Fprintf(b, "%-10s", d.Name)
	}
	fmt.Fprintf(b, "  %10.4fms", float64(d.DurUS)/1000)
	if d.Bytes > 0 {
		fmt.Fprintf(b, "  %10d B", d.Bytes)
	}
	if d.Remote {
		b.WriteString("  (remote)")
	}
	keys := make([]string, 0, len(d.Attrs))
	for k := range d.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(b, "  %s=%s", k, d.Attrs[k])
	}
	b.WriteByte('\n')
	for _, c := range d.Children {
		writeDataTree(b, c, depth+1)
	}
}

// sortedAttrs returns a copy of the attrs sorted by key for stable export.
func (s *Span) sortedAttrs() []Attr {
	s.mu.Lock()
	out := append([]Attr(nil), s.attrs...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
