package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic counter. The zero value is ready; all methods are
// safe for concurrent use and safe on a nil receiver, so a layer holding
// an optional counter handle needs no branching of its own.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative n is ignored: counters are
// monotonic by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement (window occupancy,
// pool depth). Nil-safe and concurrency-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set records the gauge's current value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the gauge's current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of counters and gauges — the successor of
// the scattered stats.SessionCounters / per-process breakdowns, one place
// the daemon, the bench harness, and the /metrics endpoint all read.
// Handles are get-or-create and stable, so hot layers resolve a name once
// and pay only the atomic op afterwards. Safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Default is the process-wide registry the built-in instrumentation
// (stream, vm, session) flushes into. Commands serve or print it;
// libraries only ever add to it in bulk.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use. On a nil
// registry it returns nil (whose methods are no-ops).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first
// use. Nil-safe like Counter and Gauge.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns a point-in-time copy of every metric. Counters and
// gauges share one namespace in the export; gauge names keep their
// ".gauge"-free spelling — the schema distinguishes them structurally.
func (r *Registry) Snapshot() MetricsSnapshot {
	if r == nil {
		return MetricsSnapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := MetricsSnapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
	}
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		snap.Gauges[name] = g.Value()
	}
	if len(r.histograms) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			snap.Histograms[name] = h.Snapshot()
		}
	}
	return snap
}

// MetricsSnapshot is the JSON form of a registry: flat name→value maps
// per metric kind. It is one half of the shared obs schema (Report
// carries it next to the span trees).
type MetricsSnapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// String renders the snapshot as sorted "name value" lines for logs.
func (m MetricsSnapshot) String() string {
	var b strings.Builder
	writeSorted := func(kind string, vals map[string]int64) {
		names := make([]string, 0, len(vals))
		for n := range vals {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, "%s %s %d\n", kind, n, vals[n])
		}
	}
	writeSorted("counter", m.Counters)
	writeSorted("gauge", m.Gauges)
	hnames := make([]string, 0, len(m.Histograms))
	for n := range m.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := m.Histograms[n]
		fmt.Fprintf(&b, "histogram %s count %d p50 %dus p90 %dus p99 %dus\n",
			n, h.Count, h.P50US, h.P90US, h.P99US)
	}
	return b.String()
}
