package stream

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/link"
)

// WriterStats summarizes one streamed transfer from the sending side.
type WriterStats struct {
	// Chunks and Bytes count the logical stream (retransmissions under a
	// Session are counted separately in SessionStats).
	Chunks int
	Bytes  int64
	// StallTime is how long the producer was blocked on the transmit
	// window — the part of collection that could NOT be overlapped.
	StallTime time.Duration
	// CloseWait is how long Close waited for the receiver's DONE after
	// the last byte was produced — the transmission tail that did not
	// overlap with collection.
	CloseWait time.Duration
}

// Writer cuts a byte stream into chunks and transmits them from a
// background goroutine, so the producer (the MSRM collector) runs
// concurrently with transmission. Writer implements io.WriteCloser; it is
// not safe for concurrent Write calls. Close flushes the tail chunk, sends
// FIN, and blocks until the receiver confirms the whole stream.
//
// Writer assumes a reliable transport: a send failure or a receiver NACK
// aborts the transfer. Session layers retransmission and reconnection on
// top of the same protocol.
type Writer struct {
	cfg   Config
	t     link.Transport
	buf   []byte
	seq   uint32
	crc   uint32
	bytes int64

	sendq chan chunk
	// abort is closed by the background goroutines on failure so a
	// blocked producer unblocks promptly.
	abort     chan struct{}
	done      chan struct{} // closed when DONE (or an error) arrives
	abortOnce sync.Once

	mu  sync.Mutex
	err error

	// inflight maps a transmitted chunk's sequence number to its send
	// time; the ack watermark in recvLoop drains it into the ack-RTT
	// histogram. Guarded by rttMu (txLoop and recvLoop race on it).
	rttMu    sync.Mutex
	inflight map[uint32]time.Time

	stats WriterStats
}

// chunkBufs recycles chunk payload buffers across transfers. Only the
// plain Writer may use it: a chunk's payload dies once marshalData copies
// it into the frame, so txLoop can recycle right after Send. A Session
// must NOT pool its payloads — it retains transmitted chunks until the
// receiver's acknowledgement watermark passes them, for rewind replay.
var chunkBufs = sync.Pool{New: func() any { return []byte(nil) }}

func getChunkBuf(capacity int) []byte {
	b := chunkBufs.Get().([]byte)
	if cap(b) < capacity {
		b = make([]byte, 0, capacity)
	}
	return b[:0]
}

// NewWriter starts a streamed transfer over t. The receiving side must be
// running a Reader on the peer.
func NewWriter(t link.Transport, cfg Config) *Writer {
	cfg = cfg.withDefaults()
	w := &Writer{
		cfg:      cfg,
		t:        t,
		buf:      getChunkBuf(cfg.ChunkSize),
		sendq:    make(chan chunk, cfg.Window),
		abort:    make(chan struct{}),
		done:     make(chan struct{}),
		inflight: make(map[uint32]time.Time),
	}
	go w.txLoop()
	go w.recvLoop()
	return w
}

func (w *Writer) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.abortOnce.Do(func() { close(w.abort) })
}

// Err returns the first transfer error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Stats returns the transfer statistics; call after Close.
func (w *Writer) Stats() WriterStats { return w.stats }

// noteSent stamps a chunk's transmission time for RTT accounting.
func (w *Writer) noteSent(seq uint32) {
	w.rttMu.Lock()
	w.inflight[seq] = time.Now()
	w.rttMu.Unlock()
}

// noteAcked observes the round trip of every in-flight chunk below the
// cumulative acknowledgement watermark (next), or of all of them when the
// receiver confirmed the whole stream (all true).
func (w *Writer) noteAcked(next uint32, all bool) {
	now := time.Now()
	w.rttMu.Lock()
	for seq, at := range w.inflight {
		if all || seq < next {
			mAckRTT.Observe(now.Sub(at))
			delete(w.inflight, seq)
		}
	}
	w.rttMu.Unlock()
}

// txLoop drains the chunk queue onto the transport and finishes with FIN.
func (w *Writer) txLoop() {
	for c := range w.sendq {
		w.noteSent(c.seq)
		err := w.t.Send(marshalData(c, crc32.ChecksumIEEE(c.payload)))
		// marshalData copied the payload into the frame; the buffer is
		// dead either way and goes back to the pool.
		chunkBufs.Put(c.payload[:0])
		if err != nil {
			w.fail(fmt.Errorf("stream: chunk %d send: %w", c.seq, err))
			// Keep draining so the producer never blocks on a dead queue.
			continue
		}
	}
	if w.Err() != nil {
		return
	}
	if err := w.t.Send(marshalFin(w.seq, uint64(w.bytes), w.crc)); err != nil {
		w.fail(fmt.Errorf("stream: fin send: %w", err))
	}
}

// recvLoop consumes receiver messages: acknowledgement watermarks (ignored
// by the plain Writer beyond bookkeeping), NACKs (fatal without a
// Session), and the final DONE.
func (w *Writer) recvLoop() {
	defer close(w.done)
	for {
		raw, err := w.t.Recv()
		if err != nil {
			w.fail(fmt.Errorf("stream: recv: %w", err))
			return
		}
		m, err := parseMessage(raw)
		if err != nil {
			w.fail(err)
			return
		}
		switch m.typ {
		case msgAck:
			// Plain writers bound memory by the send queue alone; the
			// watermark still times the chunks it passes.
			w.noteAcked(m.seq, false)
		case msgNack:
			w.fail(fmt.Errorf("stream: receiver rejected chunk %d and no session to rewind", m.seq))
			return
		case msgDone:
			// The receiver only sends DONE after verifying the FIN
			// totals, so its byte count is authoritative; re-checking
			// against w.bytes here would race with the producer.
			w.noteAcked(0, true)
			return
		default:
			w.fail(fmt.Errorf("%w: unexpected %d message from receiver", ErrProtocol, m.typ))
			return
		}
	}
}

// Write implements io.Writer: it buffers p, cutting and enqueueing
// full chunks. It blocks when the transmit window is full. Write copies p
// into the chunk buffer before returning — it never retains p — so
// callers (the XDR encoder's flush sink, whose buffers return to a pool)
// may reuse p immediately.
func (w *Writer) Write(p []byte) (int, error) {
	if err := w.Err(); err != nil {
		return 0, err
	}
	n := len(p)
	for len(p) > 0 {
		room := w.cfg.ChunkSize - len(w.buf)
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
		p = p[room:]
		if len(w.buf) == w.cfg.ChunkSize {
			if err := w.cut(); err != nil {
				return 0, err
			}
		}
	}
	return n, nil
}

// cut enqueues the buffered chunk for transmission.
func (w *Writer) cut() error {
	c := chunk{seq: w.seq, payload: w.buf}
	w.seq++
	w.crc = crc32.Update(w.crc, crc32.IEEETable, c.payload)
	w.bytes += int64(len(c.payload))
	w.stats.Chunks++
	w.buf = getChunkBuf(w.cfg.ChunkSize)
	start := time.Now()
	select {
	case w.sendq <- c:
	default:
		// Window full: the wire is the bottleneck; account the stall.
		select {
		case w.sendq <- c:
		case <-w.abort:
			return w.Err()
		}
	}
	w.stats.StallTime += time.Since(start)
	mWindow.Set(int64(len(w.sendq)))
	return w.Err()
}

// Close flushes the tail chunk, transmits FIN, and waits for the
// receiver's DONE. It reports the first error of the whole transfer.
func (w *Writer) Close() error {
	if len(w.buf) > 0 && w.Err() == nil {
		w.cut() // on failure the error is reported below
	}
	close(w.sendq)
	start := time.Now()
	<-w.done
	w.stats.CloseWait = time.Since(start)
	w.stats.Bytes = w.bytes
	w.stats.flush()
	return w.Err()
}
