package stream

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/link"
	"repro/internal/obs"
)

// testPayload builds deterministic pseudo-random bytes.
func testPayload(n int, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	p := make([]byte, n)
	r.Read(p)
	return p
}

// runReader drains a Reader in a goroutine, returning a channel with the
// reassembled stream.
type readResult struct {
	data  []byte
	err   error
	stats ReaderStats
}

func runReader(r *Reader) <-chan readResult {
	out := make(chan readResult, 1)
	go func() {
		data, err := r.ReadAll()
		out <- readResult{data, err, r.Stats()}
	}()
	return out
}

func TestWriterReaderRoundTrip(t *testing.T) {
	cfg := Config{ChunkSize: 1024, Window: 4, AckEvery: 2}
	sizes := []int{0, 1, 1023, 1024, 1025, 64 * 1024, 200000}
	for _, n := range sizes {
		a, b := link.Pipe()
		res := runReader(NewReader(b, cfg))
		w := NewWriter(a, cfg)
		payload := testPayload(n, int64(n))
		// Write in awkward slices to exercise chunk boundary handling.
		for off := 0; off < len(payload); {
			m := 700
			if off+m > len(payload) {
				m = len(payload) - off
			}
			if _, err := w.Write(payload[off : off+m]); err != nil {
				t.Fatalf("n=%d: write: %v", n, err)
			}
			off += m
		}
		if err := w.Close(); err != nil {
			t.Fatalf("n=%d: close: %v", n, err)
		}
		r := <-res
		if r.err != nil {
			t.Fatalf("n=%d: read: %v", n, r.err)
		}
		if !bytes.Equal(r.data, payload) {
			t.Fatalf("n=%d: reassembled stream differs (%d vs %d bytes)", n, len(r.data), len(payload))
		}
		ws := w.Stats()
		wantChunks := (n + cfg.ChunkSize - 1) / cfg.ChunkSize
		if ws.Chunks != wantChunks || r.stats.Chunks != wantChunks {
			t.Errorf("n=%d: chunks sent=%d recv=%d, want %d", n, ws.Chunks, r.stats.Chunks, wantChunks)
		}
		a.Close()
		b.Close()
	}
}

func TestWriterReaderLoopbackTCP(t *testing.T) {
	srv, cli, cleanup, err := link.LoopbackPair()
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	cfg := Config{ChunkSize: 32 * 1024, Window: 8}
	payload := testPayload(1<<20, 7)
	res := runReader(NewReader(srv, cfg))
	w := NewWriter(cli, cfg)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !bytes.Equal(r.data, payload) {
		t.Error("TCP stream mismatch")
	}
}

func TestReaderDeliversIncrementally(t *testing.T) {
	cfg := Config{ChunkSize: 100, Window: 2, AckEvery: 1}
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	payload := testPayload(950, 3)
	r := NewReader(b, cfg)
	w := NewWriter(a, cfg)
	go func() {
		w.Write(payload)
		w.Close()
	}()
	var got []byte
	chunks := 0
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// Every chunk except the tail is exactly ChunkSize: in-order
		// incremental delivery, not one final buffer.
		if chunks < 9 && len(p) != 100 {
			t.Fatalf("chunk %d has %d bytes", chunks, len(p))
		}
		chunks++
		got = append(got, p...)
	}
	if chunks != 10 || !bytes.Equal(got, payload) {
		t.Errorf("incremental read: %d chunks, match=%v", chunks, bytes.Equal(got, payload))
	}
}

func TestWriterFailsOnDeadTransportWithoutSession(t *testing.T) {
	cfg := Config{ChunkSize: 256, Window: 2}
	a, b := link.Pipe()
	defer b.Close()
	fa := NewFault(a).FailAfterSends(3)
	res := runReader(NewReader(b, cfg))
	w := NewWriter(fa, cfg)
	payload := testPayload(64*1024, 11)
	_, werr := w.Write(payload)
	cerr := w.Close()
	if werr == nil && cerr == nil {
		t.Error("transfer over a killed transport reported success")
	}
	if r := <-res; r.err == nil {
		t.Error("reader reported success after sender death with no reaccept")
	}
}

func TestParseMessageRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		marshalSeq(99, 0),   // unknown type
		marshalHello(1)[:6], // truncated
		append([]byte{0, 0, 0, 0}, marshalHello(1)[4:]...), // bad magic
	}
	for i, raw := range cases {
		if _, err := parseMessage(raw); !errors.Is(err, ErrProtocol) {
			t.Errorf("case %d: got %v, want ErrProtocol", i, err)
		}
	}
}

// pipeNet hands the sender fresh in-memory connections and delivers the
// peer ends to the receiver — a reconnectable network made of link.Pipe.
type pipeNet struct {
	mu    sync.Mutex
	conns chan link.Transport
	dials int
	// faults wraps the sender side of the i-th dial.
	faults map[int]func(link.Transport) link.Transport
	// dialErrs fails the i-th dial outright.
	dialErrs map[int]error
}

func newPipeNet() *pipeNet {
	return &pipeNet{conns: make(chan link.Transport, 4)}
}

func (n *pipeNet) dial() (link.Transport, error) {
	n.mu.Lock()
	i := n.dials
	n.dials++
	fault := n.faults[i]
	derr := n.dialErrs[i]
	n.mu.Unlock()
	if derr != nil {
		return nil, derr
	}
	a, b := link.Pipe()
	var t link.Transport = a
	if fault != nil {
		t = fault(a)
	}
	n.conns <- b
	return t, nil
}

func (n *pipeNet) accept() (link.Transport, error) {
	return <-n.conns, nil
}

func sessionTransfer(t *testing.T, net *pipeNet, cfg Config, payload []byte, wrapReceiver func(link.Transport) link.Transport) (SessionStats, readResult) {
	t.Helper()
	// The session dials eagerly from its pump, which queues the peer end
	// for the receiver's accept below.
	s := NewSession(net.dial, 42, cfg)
	first, err := net.accept()
	if err != nil {
		t.Fatal(err)
	}
	if wrapReceiver != nil {
		first = wrapReceiver(first)
	}
	r := NewReader(first, cfg)
	r.SetReaccept(net.accept)
	res := runReader(r)

	if _, err := s.Write(payload); err != nil {
		t.Fatalf("session write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("session close: %v", err)
	}
	return s.Stats(), <-res
}

func TestSessionResumesAfterMidTransferDisconnect(t *testing.T) {
	cfg := Config{ChunkSize: 1024, Window: 4, AckEvery: 2, RetryBase: 1e6 /* 1ms */}
	net := newPipeNet()
	// First connection dies after 7 successful sends (hello + 6 chunks):
	// the transfer is killed at a chunk boundary mid-stream.
	net.faults = map[int]func(link.Transport) link.Transport{
		0: func(tr link.Transport) link.Transport { return NewFault(tr).FailAfterSends(7) },
	}
	payload := testPayload(40*1024, 21) // 40 chunks
	// The session must dial first so pipeNet has a connection queued for
	// the receiver; NewSession dials eagerly from its pump.
	stats, r := sessionTransfer(t, net, cfg, payload, nil)
	if r.err != nil {
		t.Fatalf("read: %v", r.err)
	}
	if !bytes.Equal(r.data, payload) {
		t.Fatal("stream after resume differs from original")
	}
	if stats.Reconnects < 1 {
		t.Errorf("reconnects = %d, want >= 1", stats.Reconnects)
	}
	if r.stats.Reconnects < 1 {
		t.Errorf("reader reconnects = %d, want >= 1", r.stats.Reconnects)
	}
	if stats.AckedSeq != 40 {
		t.Errorf("final ack watermark = %d, want 40", stats.AckedSeq)
	}
}

func TestSessionSurvivesRepeatedDisconnects(t *testing.T) {
	cfg := Config{ChunkSize: 512, Window: 4, AckEvery: 2, RetryBase: 1e6}
	net := newPipeNet()
	net.faults = map[int]func(link.Transport) link.Transport{
		0: func(tr link.Transport) link.Transport { return NewFault(tr).FailAfterSends(4) },
		1: func(tr link.Transport) link.Transport { return NewFault(tr).FailAfterSends(9) },
		2: func(tr link.Transport) link.Transport { return NewFault(tr).FailAfterRecvs(3) },
	}
	net.dialErrs = map[int]error{3: errors.New("destination briefly unreachable")}
	payload := testPayload(30*1024, 5) // 60 chunks
	stats, r := sessionTransfer(t, net, cfg, payload, nil)
	if r.err != nil {
		t.Fatalf("read: %v", r.err)
	}
	if !bytes.Equal(r.data, payload) {
		t.Fatal("stream after repeated resumes differs from original")
	}
	if stats.Reconnects < 3 {
		t.Errorf("reconnects = %d, want >= 3", stats.Reconnects)
	}
}

func TestSessionRewindsOnCorruptChunk(t *testing.T) {
	cfg := Config{ChunkSize: 1024, Window: 4, AckEvery: 2}
	net := newPipeNet()
	payload := testPayload(20*1024, 9)
	// The receiver's 4th frame (hello is the sender's; receiver sees
	// data frames from 1) arrives corrupt: link.ErrChecksum surfaces and
	// must become a NACK re-request, not a failed migration.
	stats, r := sessionTransfer(t, net, cfg, payload, func(tr link.Transport) link.Transport {
		return NewFault(tr).CorruptRecv(4)
	})
	if r.err != nil {
		t.Fatalf("read: %v", r.err)
	}
	if !bytes.Equal(r.data, payload) {
		t.Fatal("stream after corruption rewind differs from original")
	}
	if r.stats.Nacks != 1 {
		t.Errorf("reader nacks = %d, want 1", r.stats.Nacks)
	}
	if stats.Retransmits < 1 {
		t.Errorf("retransmits = %d, want >= 1", stats.Retransmits)
	}
	if stats.Reconnects != 0 {
		t.Errorf("reconnects = %d, corruption should rewind over the live connection", stats.Reconnects)
	}
}

func TestSessionRetriesExhausted(t *testing.T) {
	dialErr := errors.New("connection refused")
	dial := func() (link.Transport, error) { return nil, dialErr }
	s := NewSession(dial, 1, Config{MaxRetries: 2, RetryBase: 1e6, RetryMax: 2e6})
	// The pump fails in the background; Write must unblock with the error
	// rather than hanging on a window that will never drain.
	payload := testPayload(1<<20, 13)
	_, werr := s.Write(payload)
	cerr := s.Close()
	if werr == nil && cerr == nil {
		t.Fatal("session succeeded with no reachable destination")
	}
	if !errors.Is(cerr, ErrRetriesExhausted) && !errors.Is(werr, ErrRetriesExhausted) {
		t.Errorf("want ErrRetriesExhausted, got write=%v close=%v", werr, cerr)
	}
}

func TestSessionTransportHandoff(t *testing.T) {
	cfg := Config{ChunkSize: 4096, Window: 4}
	net := newPipeNet()
	payload := testPayload(16*1024, 17)

	done := make(chan error, 1)
	go func() {
		tr, err := net.accept()
		if err != nil {
			done <- err
			return
		}
		r := NewReader(tr, cfg)
		r.SetReaccept(net.accept)
		if _, err := r.ReadAll(); err != nil {
			done <- err
			return
		}
		// Application-level acknowledgement after the snapshot, as migd
		// sends once restoration succeeds.
		done <- tr.Send([]byte("restored"))
	}()

	s := NewSession(net.dial, 7, cfg)
	if _, err := s.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	ack, err := s.Transport().Recv()
	if err != nil || string(ack) != "restored" {
		t.Fatalf("application ack after session: %q, %v", ack, err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestFlightRecorderAndAckRTT verifies the observability hooks of the
// robust path: a corruption rewind leaves structured events in the
// session's flight recorder (both sides share one here), and completed
// transfers feed the ack round-trip histogram.
func TestFlightRecorderAndAckRTT(t *testing.T) {
	before := obs.Default.Histogram("stream.ack.rtt").Count()
	fr := obs.NewFlightRecorder(0)
	cfg := Config{ChunkSize: 1024, Window: 4, AckEvery: 2, Recorder: fr}
	net := newPipeNet()
	payload := testPayload(20*1024, 21)
	_, r := sessionTransfer(t, net, cfg, payload, func(tr link.Transport) link.Transport {
		return NewFault(tr).CorruptRecv(4)
	})
	if r.err != nil {
		t.Fatalf("read: %v", r.err)
	}
	kinds := map[string]bool{}
	for _, ev := range fr.Events() {
		kinds[ev.Kind] = true
	}
	if !kinds["stream.nack"] {
		t.Errorf("recorder missing stream.nack event: %v", kinds)
	}
	if !kinds["stream.rewind"] {
		t.Errorf("recorder missing stream.rewind event: %v", kinds)
	}
	if after := obs.Default.Histogram("stream.ack.rtt").Count(); after <= before {
		t.Errorf("ack RTT histogram did not grow (%d -> %d)", before, after)
	}
}
