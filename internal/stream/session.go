package stream

import (
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"repro/internal/link"
)

// SessionStats extends WriterStats with the robustness counters.
type SessionStats struct {
	WriterStats
	// Retransmits counts chunks sent more than once (after a reconnect
	// resume or a corruption rewind).
	Retransmits int
	// Reconnects counts successful redials after a transport failure.
	Reconnects int
	// AckedSeq is the receiver's final acknowledgement watermark (the
	// next sequence number it needed when the session ended).
	AckedSeq uint32
}

// Session is the robust sender of a streamed transfer. Like Writer it cuts
// the produced bytes into chunks and transmits them concurrently with
// production, but it also:
//
//   - retains every transmitted chunk until the receiver's cumulative
//     acknowledgement watermark passes it (memory stays bounded by
//     Config.Window chunks — production blocks at the window edge);
//   - on a transport failure, redials with exponential backoff (up to
//     Config.MaxRetries attempts per failure), re-handshakes, and resumes
//     from the sequence number the receiver reports, not from byte zero;
//   - on a receiver NACK (corrupt chunk), rewinds and retransmits the
//     affected run over the live connection.
//
// Use NewSession with a dial function; the session owns (re)establishing
// the transport. Session implements io.WriteCloser; Write is not safe for
// concurrent use.
type Session struct {
	cfg  Config
	dial func() (link.Transport, error)
	id   uint64

	buf   []byte
	seq   uint32
	crc   uint32
	bytes int64

	chunks    chan chunk
	abort     chan struct{}
	abortOnce sync.Once
	finished  chan struct{}

	mu  sync.Mutex
	err error

	// final transport, valid after Close returns nil; the application can
	// exchange its own messages on it (migd's "restored" ack).
	t link.Transport

	stats SessionStats
}

// recvEvent is one message (or failure) surfaced by a connection's
// receive goroutine.
type recvEvent struct {
	msg message
	err error
}

// NewSession creates a sender session that obtains transports from dial.
// id identifies the transfer across reconnects. The first connection is
// established lazily by the first Write (or Close).
func NewSession(dial func() (link.Transport, error), id uint64, cfg Config) *Session {
	s := &Session{
		cfg:      cfg.withDefaults(),
		dial:     dial,
		id:       id,
		chunks:   make(chan chunk, 2),
		abort:    make(chan struct{}),
		finished: make(chan struct{}),
	}
	s.buf = make([]byte, 0, s.cfg.ChunkSize)
	go s.pump()
	return s
}

func (s *Session) fail(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.abortOnce.Do(func() { close(s.abort) })
}

// Err returns the first transfer error, if any.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns the session statistics; call after Close.
func (s *Session) Stats() SessionStats { return s.stats }

// Transport returns the transport the session ended on. Valid only after
// Close returned nil; the caller may use it for application-level
// messages that follow the snapshot.
func (s *Session) Transport() link.Transport { return s.t }

// Write implements io.Writer, cutting full chunks into the session.
func (s *Session) Write(p []byte) (int, error) {
	if err := s.Err(); err != nil {
		return 0, err
	}
	n := len(p)
	for len(p) > 0 {
		room := s.cfg.ChunkSize - len(s.buf)
		if room > len(p) {
			room = len(p)
		}
		s.buf = append(s.buf, p[:room]...)
		p = p[room:]
		if len(s.buf) == s.cfg.ChunkSize {
			if err := s.cut(); err != nil {
				return 0, err
			}
		}
	}
	return n, nil
}

func (s *Session) cut() error {
	c := chunk{seq: s.seq, payload: s.buf}
	s.seq++
	s.crc = crc32.Update(s.crc, crc32.IEEETable, c.payload)
	s.bytes += int64(len(c.payload))
	s.stats.Chunks++
	s.buf = make([]byte, 0, s.cfg.ChunkSize)
	start := time.Now()
	select {
	case s.chunks <- c:
	case <-s.abort:
		return s.Err()
	}
	s.stats.StallTime += time.Since(start)
	return s.Err()
}

// Close flushes the tail, sends FIN, and waits for the receiver's DONE
// (reconnecting as needed). It reports the first unrecoverable error.
func (s *Session) Close() error {
	if len(s.buf) > 0 && s.Err() == nil {
		s.cut()
	}
	close(s.chunks)
	start := time.Now()
	<-s.finished
	s.stats.CloseWait = time.Since(start)
	s.stats.Bytes = s.bytes
	s.stats.flush()
	return s.Err()
}

// recvLoop forwards one connection's messages to the pump. It exits after
// forwarding DONE or a receive failure, so a completed session leaves the
// transport quiet for the application.
func (s *Session) recvLoop(t link.Transport, events chan<- recvEvent, stop <-chan struct{}) {
	for {
		raw, err := t.Recv()
		var ev recvEvent
		if err != nil {
			ev = recvEvent{err: err}
		} else {
			m, perr := parseMessage(raw)
			if perr != nil {
				ev = recvEvent{err: perr}
			} else {
				ev = recvEvent{msg: m}
			}
		}
		select {
		case events <- ev:
		case <-stop:
			return
		}
		if ev.err != nil || ev.msg.typ == msgDone {
			return
		}
	}
}

// pump owns the transport and the protocol state machine.
func (s *Session) pump() {
	defer close(s.finished)

	var (
		t        link.Transport
		events   chan recvEvent
		stopRecv chan struct{}
		// retained holds transmitted chunks at and beyond the receiver's
		// acknowledgement watermark, in sequence order, each stamped with
		// its most recent transmission time for ack-RTT measurement.
		retained  []retainedChunk
		producing = true
		finSent   bool
	)

	dropRecv := func() {
		if stopRecv != nil {
			close(stopRecv)
			stopRecv = nil
		}
		if t != nil {
			t.Close()
			t = nil
		}
	}
	defer dropRecv()

	sendData := func(c chunk) error {
		return t.Send(marshalData(c, crc32.ChecksumIEEE(c.payload)))
	}
	// ackTo drops retained chunks below the watermark, observing each
	// chunk's send->ack round trip. Rewinds and resumes drop through
	// dropTo instead: a chunk discarded because the receiver already held
	// it carries no fresh timing signal.
	ackTo := func(next uint32) {
		now := time.Now()
		for len(retained) > 0 && retained[0].seq < next {
			mAckRTT.Observe(now.Sub(retained[0].sentAt))
			retained = retained[1:]
		}
	}
	dropTo := func(next uint32) {
		for len(retained) > 0 && retained[0].seq < next {
			retained = retained[1:]
		}
	}
	sendFin := func() error {
		finSent = true
		return t.Send(marshalFin(s.seq, uint64(s.bytes), s.crc))
	}

	// connect dials (with backoff), handshakes, and retransmits the
	// retained run from the receiver's resume point. firstAttempt skips
	// the backoff for the session's initial connection.
	connect := func() error {
		dropRecv()
		delay := s.cfg.RetryBase
		attempts := s.cfg.MaxRetries
		if attempts < 0 {
			attempts = 0 // reconnection disabled: a single fresh dial
		}
		var lastErr error
		for attempt := 0; attempt <= attempts; attempt++ {
			if attempt > 0 {
				time.Sleep(delay)
				delay *= 2
				if delay > s.cfg.RetryMax {
					delay = s.cfg.RetryMax
				}
			}
			nt, err := s.dial()
			if err != nil {
				lastErr = err
				continue
			}
			if err := nt.Send(marshalHello(s.id)); err != nil {
				nt.Close()
				lastErr = err
				continue
			}
			raw, err := nt.Recv()
			if err != nil {
				nt.Close()
				lastErr = err
				continue
			}
			m, err := parseMessage(raw)
			if err != nil || m.typ != msgResume {
				nt.Close()
				lastErr = fmt.Errorf("%w: expected RESUME handshake, got %v", ErrProtocol, err)
				continue
			}
			t = nt
			// Drop what the receiver already holds, replay the rest.
			next := m.seq
			dropTo(next)
			s.cfg.Recorder.Record("stream.resume", "session %d resumed at seq %d, replaying %d chunks", s.id, next, len(retained))
			if next > s.stats.AckedSeq {
				s.stats.AckedSeq = next
			}
			ok := true
			for i := range retained {
				s.stats.Retransmits++
				retained[i].sentAt = time.Now()
				if err := sendData(retained[i].chunk); err != nil {
					lastErr = err
					ok = false
					break
				}
			}
			if ok && finSent {
				if err := sendFin(); err != nil {
					lastErr = err
					ok = false
				}
			}
			if !ok {
				t.Close()
				t = nil
				continue
			}
			events = make(chan recvEvent, 16)
			stopRecv = make(chan struct{})
			go s.recvLoop(t, events, stopRecv)
			return nil
		}
		return fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, attempts+1, lastErr)
	}

	reconnect := func(cause error) bool {
		if s.cfg.MaxRetries < 0 {
			s.fail(fmt.Errorf("stream: transport failed and reconnection disabled: %w", cause))
			return false
		}
		s.cfg.Recorder.Record("stream.reconnect", "session %d transport failed: %v", s.id, cause)
		if err := connect(); err != nil {
			s.cfg.Recorder.Record("stream.fail", "session %d reconnect gave up: %v", s.id, err)
			s.fail(fmt.Errorf("stream: reconnect after %v: %w", cause, err))
			return false
		}
		s.stats.Reconnects++
		return true
	}

	fatal := func(err error) {
		s.fail(err)
		// Drain the producer so it never blocks on a dead pump.
		for range s.chunks {
		}
	}

	if err := connect(); err != nil {
		fatal(err)
		return
	}

	for {
		// Gate intake on the acknowledgement window: at most Window
		// unacknowledged chunks are retained, so production blocks (in
		// cut) when the receiver lags — bounded memory, end to end.
		var in chan chunk
		if producing && len(retained) < s.cfg.Window {
			in = s.chunks
		}
		select {
		case c, ok := <-in:
			if !ok {
				producing = false
				if err := sendFin(); err != nil {
					if !reconnect(err) {
						return
					}
				}
				continue
			}
			retained = append(retained, retainedChunk{chunk: c, sentAt: time.Now()})
			mWindow.Set(int64(len(retained)))
			if err := sendData(c); err != nil {
				if !reconnect(err) {
					return
				}
			}
		case ev := <-events:
			switch {
			case ev.err != nil:
				if !reconnect(ev.err) {
					return
				}
			case ev.msg.typ == msgAck:
				ackTo(ev.msg.seq)
				if ev.msg.seq > s.stats.AckedSeq {
					s.stats.AckedSeq = ev.msg.seq
				}
			case ev.msg.typ == msgNack:
				// Corruption rewind over the live connection.
				next := ev.msg.seq
				dropTo(next)
				s.cfg.Recorder.Record("stream.rewind", "session %d nack at seq %d, replaying %d chunks", s.id, next, len(retained))
				replayErr := error(nil)
				for i := range retained {
					s.stats.Retransmits++
					retained[i].sentAt = time.Now()
					if err := sendData(retained[i].chunk); err != nil {
						replayErr = err
						break
					}
				}
				if replayErr == nil && finSent {
					replayErr = sendFin()
				}
				if replayErr != nil {
					if !reconnect(replayErr) {
						return
					}
				}
			case ev.msg.typ == msgDone:
				if !finSent {
					fatal(fmt.Errorf("%w: DONE before FIN", ErrProtocol))
					return
				}
				if ev.msg.bytes != uint64(s.bytes) {
					fatal(fmt.Errorf("%w: receiver confirmed %d bytes, sent %d", ErrVerify, ev.msg.bytes, s.bytes))
					return
				}
				// DONE is the final cumulative acknowledgement.
				ackTo(s.seq)
				if s.seq > s.stats.AckedSeq {
					s.stats.AckedSeq = s.seq
				}
				// Leave the transport open (and quiet) for the caller.
				stopRecv = nil
				s.t = t
				t = nil
				return
			default:
				fatal(fmt.Errorf("%w: unexpected %d message from receiver", ErrProtocol, ev.msg.typ))
				return
			}
		}
	}
}
