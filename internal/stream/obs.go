package stream

import "repro/internal/obs"

// Pre-resolved metric handles into the default registry. The hot paths
// accumulate plain ints in the existing stats structs; the whole transfer
// is flushed with a handful of atomic adds when it completes, so the
// per-chunk cost of observability stays at one gauge store.
var (
	mTxChunks      = obs.Default.Counter("stream.tx.chunks")
	mTxBytes       = obs.Default.Counter("stream.tx.bytes")
	mTxRetransmits = obs.Default.Counter("stream.tx.retransmits")
	mTxReconnects  = obs.Default.Counter("stream.tx.reconnects")
	mRxChunks      = obs.Default.Counter("stream.rx.chunks")
	mRxBytes       = obs.Default.Counter("stream.rx.bytes")
	mRxAcks        = obs.Default.Counter("stream.rx.acks")
	mRxNacks       = obs.Default.Counter("stream.rx.nacks")
	mRxDuplicates  = obs.Default.Counter("stream.rx.duplicates")
	mRxReconnects  = obs.Default.Counter("stream.rx.reconnects")
	mWindow        = obs.Default.Gauge("stream.window.occupancy")
	// mAckRTT observes the send→acknowledge round trip per chunk: the
	// time from a chunk's (re)transmission to the acknowledgement
	// watermark passing it. Retransmitted chunks restart their clock, so
	// the histogram reflects the latency of the wire that actually
	// delivered them.
	mAckRTT = obs.Default.Histogram("stream.ack.rtt")
)

// flush publishes one completed send-side transfer to the registry.
func (ws WriterStats) flush() {
	mTxChunks.Add(int64(ws.Chunks))
	mTxBytes.Add(ws.Bytes)
}

// flush publishes one completed receive-side transfer to the registry.
func (rs ReaderStats) flush() {
	mRxChunks.Add(int64(rs.Chunks))
	mRxBytes.Add(rs.Bytes)
	mRxAcks.Add(int64(rs.Acks))
	mRxNacks.Add(int64(rs.Nacks))
	mRxDuplicates.Add(int64(rs.Duplicates))
	mRxReconnects.Add(int64(rs.Reconnects))
}

// flush publishes one completed robust session to the registry.
func (ss SessionStats) flush() {
	ss.WriterStats.flush()
	mTxRetransmits.Add(int64(ss.Retransmits))
	mTxReconnects.Add(int64(ss.Reconnects))
}
