package stream

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/link"
)

// ReaderStats summarizes one streamed transfer from the receiving side.
type ReaderStats struct {
	Chunks int
	Bytes  int64
	// Duplicates counts chunks discarded because they re-arrived after a
	// resume or rewind.
	Duplicates int
	// Acks counts acknowledgement watermarks sent back to the sender.
	Acks int
	// Nacks counts corrupt chunks converted into re-requests.
	Nacks int
	// Reconnects counts transports consumed after mid-stream failures.
	Reconnects int
}

// Reader reassembles a chunked snapshot stream: it verifies each chunk's
// CRC and sequence number, acknowledges progress every Config.AckEvery
// chunks, and on FIN verifies the whole-stream checksum before confirming
// with DONE. Chunks are delivered strictly in order through Next, so
// restoration can consume the stream incrementally while later chunks are
// still in flight.
//
// With a reaccept function installed, the Reader survives mid-stream
// transport failures: it drops the dead transport, waits for the sender to
// reconnect, answers the sender's HELLO with the next sequence number it
// needs, and continues — the resume protocol of a Session sender.
type Reader struct {
	cfg      Config
	t        link.Transport
	reaccept func() (link.Transport, error)

	nextSeq uint32
	crc     uint32
	bytes   int64
	eof     bool

	stats ReaderStats
}

// NewReader starts receiving a streamed transfer from t.
func NewReader(t link.Transport, cfg Config) *Reader {
	return &Reader{cfg: cfg.withDefaults(), t: t}
}

// SetReaccept installs f, called after a mid-stream transport failure to
// obtain the sender's replacement connection (typically by accepting on
// the same listener). Without it, a transport failure ends the transfer.
func (r *Reader) SetReaccept(f func() (link.Transport, error)) { r.reaccept = f }

// Stats returns the transfer statistics so far.
func (r *Reader) Stats() ReaderStats { return r.stats }

// NextSeq returns the sequence number of the next chunk the reader needs —
// its resume high-water mark.
func (r *Reader) NextSeq() uint32 { return r.nextSeq }

// Transport returns the transport the stream currently runs on, so the
// application can exchange follow-up messages (for example a restoration
// acknowledgement) once Next has returned io.EOF: after DONE the stream
// layer no longer reads from it.
func (r *Reader) Transport() link.Transport { return r.t }

// send transmits a control message, treating failure like a dead
// transport (the caller retries through the reconnect path).
func (r *Reader) send(raw []byte) error { return r.t.Send(raw) }

// reconnect replaces a dead transport via the reaccept hook and answers
// the sender's HELLO. The HELLO itself may instead surface in the normal
// receive loop when the sender reconnects before the receiver notices the
// failure; both paths answer with RESUME(nextSeq).
func (r *Reader) reconnect(cause error) error {
	if r.reaccept == nil {
		return fmt.Errorf("stream: transport failed mid-stream (chunk %d): %w", r.nextSeq, cause)
	}
	r.t.Close()
	t, err := r.reaccept()
	if err != nil {
		return fmt.Errorf("stream: reaccept after %v: %w", cause, err)
	}
	r.t = t
	r.stats.Reconnects++
	r.cfg.Recorder.Record("stream.reaccept", "receiver replaced transport at seq %d after: %v", r.nextSeq, cause)
	return nil
}

// Next returns the payload of the next in-order chunk, or io.EOF once the
// stream completed and was verified. The returned slice is owned by the
// caller.
func (r *Reader) Next() ([]byte, error) {
	if r.eof {
		return nil, io.EOF
	}
	for {
		raw, err := r.t.Recv()
		if err != nil {
			if errors.Is(err, link.ErrChecksum) {
				// The frame was corrupt but fully consumed, so the
				// connection is still aligned: re-request instead of
				// aborting the migration.
				r.stats.Nacks++
				r.cfg.Recorder.Record("stream.nack", "frame checksum failed, re-requesting seq %d", r.nextSeq)
				if err := r.send(marshalSeq(msgNack, r.nextSeq)); err != nil {
					if rerr := r.reconnect(err); rerr != nil {
						return nil, rerr
					}
				}
				continue
			}
			if rerr := r.reconnect(err); rerr != nil {
				return nil, rerr
			}
			continue
		}
		m, err := parseMessage(raw)
		if err != nil {
			return nil, err
		}
		switch m.typ {
		case msgHello:
			// Sender (re)connected: tell it where to resume.
			if err := r.send(marshalSeq(msgResume, r.nextSeq)); err != nil {
				if rerr := r.reconnect(err); rerr != nil {
					return nil, rerr
				}
			}
		case msgData:
			if m.seq != r.nextSeq {
				// Duplicate after a rewind/resume; drop silently. A gap
				// (seq > nextSeq) is also dropped: the sender's rewind
				// will retransmit the run from nextSeq.
				r.stats.Duplicates++
				continue
			}
			if crc32.ChecksumIEEE(m.payload) != m.crc {
				r.stats.Nacks++
				r.cfg.Recorder.Record("stream.nack", "chunk %d payload crc mismatch, re-requesting", m.seq)
				if err := r.send(marshalSeq(msgNack, r.nextSeq)); err != nil {
					if rerr := r.reconnect(err); rerr != nil {
						return nil, rerr
					}
				}
				continue
			}
			r.nextSeq++
			r.crc = crc32.Update(r.crc, crc32.IEEETable, m.payload)
			r.bytes += int64(len(m.payload))
			r.stats.Chunks++
			r.stats.Bytes = r.bytes
			if int(r.nextSeq)%r.cfg.AckEvery == 0 {
				r.stats.Acks++
				if err := r.send(marshalSeq(msgAck, r.nextSeq)); err != nil {
					// The chunk is already accounted; it must still be
					// delivered below. The lost acknowledgement is
					// re-synchronized by the resume handshake.
					if rerr := r.reconnect(err); rerr != nil {
						return nil, rerr
					}
				}
			}
			out := make([]byte, len(m.payload))
			copy(out, m.payload)
			return out, nil
		case msgFin:
			if m.seq != r.nextSeq {
				// A FIN for chunks we have not seen: the sender's view is
				// ahead (lost tail); ask it to rewind.
				r.stats.Nacks++
				r.cfg.Recorder.Record("stream.nack", "fin at seq %d but receiver needs %d, rewinding", m.seq, r.nextSeq)
				if err := r.send(marshalSeq(msgNack, r.nextSeq)); err != nil {
					if rerr := r.reconnect(err); rerr != nil {
						return nil, rerr
					}
				}
				continue
			}
			if m.bytes != uint64(r.bytes) || m.crc != r.crc {
				return nil, fmt.Errorf("%w: got %d bytes crc %08x, sender declared %d bytes crc %08x",
					ErrVerify, r.bytes, r.crc, m.bytes, m.crc)
			}
			if err := r.send(marshalDone(uint64(r.bytes))); err != nil {
				return nil, fmt.Errorf("stream: done send: %w", err)
			}
			r.eof = true
			r.stats.flush()
			return nil, io.EOF
		default:
			return nil, fmt.Errorf("%w: unexpected %d message from sender", ErrProtocol, m.typ)
		}
	}
}

// ReadAll drains the stream into one buffer — the non-incremental
// convenience used when restoration wants the whole snapshot.
func (r *Reader) ReadAll() ([]byte, error) {
	var out []byte
	for {
		p, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, p...)
	}
}
