package stream

import (
	"errors"
	"sync"

	"repro/internal/link"
)

// ErrInjected is the failure a Fault transport reports when it kills the
// connection.
var ErrInjected = errors.New("stream: injected transport fault")

// Fault wraps a link.Transport with deterministic failure injection, used
// by tests (and chaos experiments) to kill a connection at an arbitrary
// chunk boundary or corrupt a frame in flight. The zero counters inject
// nothing. Fault is safe for the writer/reader goroutine split the stream
// layer uses.
type Fault struct {
	T link.Transport

	mu sync.Mutex
	// sendsLeft/recvsLeft: number of operations allowed to succeed before
	// the connection is killed (negative = unlimited).
	sendsLeft int
	recvsLeft int
	// corrupt holds 1-based Recv indexes that report link.ErrChecksum
	// (the message itself is consumed, as a corrupt-but-aligned frame
	// would be).
	corrupt map[int]bool
	recvN   int
	dead    bool
}

// NewFault wraps t with no faults armed.
func NewFault(t link.Transport) *Fault {
	return &Fault{T: t, sendsLeft: -1, recvsLeft: -1}
}

// FailAfterSends arms the fault: the connection dies once n Sends have
// succeeded (the n+1-th fails and the underlying transport closes).
func (f *Fault) FailAfterSends(n int) *Fault {
	f.mu.Lock()
	f.sendsLeft = n
	f.mu.Unlock()
	return f
}

// FailAfterRecvs arms the fault on the receive side.
func (f *Fault) FailAfterRecvs(n int) *Fault {
	f.mu.Lock()
	f.recvsLeft = n
	f.mu.Unlock()
	return f
}

// CorruptRecv makes the nth (1-based) successful Recv report
// link.ErrChecksum instead of delivering its message.
func (f *Fault) CorruptRecv(nth int) *Fault {
	f.mu.Lock()
	if f.corrupt == nil {
		f.corrupt = make(map[int]bool)
	}
	f.corrupt[nth] = true
	f.mu.Unlock()
	return f
}

// kill closes the underlying transport so the peer observes the failure
// too. Callers hold f.mu.
func (f *Fault) kill() {
	if !f.dead {
		f.dead = true
		f.T.Close()
	}
}

// Send implements link.Transport.
func (f *Fault) Send(payload []byte) error {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return ErrInjected
	}
	if f.sendsLeft == 0 {
		f.kill()
		f.mu.Unlock()
		return ErrInjected
	}
	if f.sendsLeft > 0 {
		f.sendsLeft--
	}
	f.mu.Unlock()
	return f.T.Send(payload)
}

// Recv implements link.Transport.
func (f *Fault) Recv() ([]byte, error) {
	f.mu.Lock()
	if f.dead {
		f.mu.Unlock()
		return nil, ErrInjected
	}
	if f.recvsLeft == 0 {
		f.kill()
		f.mu.Unlock()
		return nil, ErrInjected
	}
	if f.recvsLeft > 0 {
		f.recvsLeft--
	}
	f.recvN++
	corrupt := f.corrupt[f.recvN]
	f.mu.Unlock()
	msg, err := f.T.Recv()
	if err != nil {
		return nil, err
	}
	if corrupt {
		return nil, link.ErrChecksum
	}
	return msg, nil
}

// Close implements link.Transport.
func (f *Fault) Close() error {
	f.mu.Lock()
	f.dead = true
	f.mu.Unlock()
	return f.T.Close()
}
