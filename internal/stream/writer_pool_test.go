package stream

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/link"
)

// TestWriterDoesNotRetainCallerBytes pins the Write ownership contract the
// pooled-encoder capture path depends on: Write copies p into the chunk
// buffer before returning, so a caller — the XDR encoder's flush sink
// handing out aliases of its internal buffer — may overwrite p the moment
// Write returns. The caller scribbles over every slice immediately after
// writing it; the reassembled stream must still be the original bytes.
func TestWriterDoesNotRetainCallerBytes(t *testing.T) {
	cfg := Config{ChunkSize: 512, Window: 4, AckEvery: 2}
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	res := runReader(NewReader(b, cfg))
	w := NewWriter(a, cfg)

	payload := testPayload(40_000, 11)
	scratch := make([]byte, 700) // reused for every Write, like a sink slice
	for off := 0; off < len(payload); {
		m := copy(scratch, payload[off:])
		if _, err := w.Write(scratch[:m]); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m; i++ {
			scratch[i] = 0xDF // caller reuses its buffer immediately
		}
		off += m
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if !bytes.Equal(r.data, payload) {
		t.Fatal("stream corrupted: Writer retained a caller slice past Write's return")
	}
}

// TestWriterChunkPoolConcurrentTransfers runs several writer/reader pairs
// at once so recycled chunk buffers migrate between transfers through the
// package pool. Each stream must arrive intact — a buffer recycled before
// its transport Send completed would corrupt a neighbor. CI runs this
// package under -race, which additionally catches any unsynchronized
// reuse of a pooled buffer.
func TestWriterChunkPoolConcurrentTransfers(t *testing.T) {
	cfg := Config{ChunkSize: 256, Window: 4, AckEvery: 2}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			a, b := link.Pipe()
			defer a.Close()
			defer b.Close()
			res := runReader(NewReader(b, cfg))
			w := NewWriter(a, cfg)
			payload := testPayload(30_000+seed*100, int64(seed))
			if _, err := w.Write(payload); err != nil {
				errs <- err
				return
			}
			if err := w.Close(); err != nil {
				errs <- err
				return
			}
			r := <-res
			if r.err != nil {
				errs <- r.err
				return
			}
			if !bytes.Equal(r.data, payload) {
				errs <- fmt.Errorf("transfer %d: stream corrupted by pooled chunk reuse", seed)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
