// Package stream is the pipelined snapshot streaming layer of the
// migration stack. It slots between the MSRM encoding layer
// (internal/collect, driven through internal/vm and internal/core) and the
// transport layer (internal/link): instead of materializing the whole
// machine-independent snapshot and pushing it through one blocking
// Transport.Send, the snapshot is cut into CRC-framed, sequence-numbered
// chunks that a background goroutine transmits while collection of later
// memory segments is still running, so collection time and wire time
// overlap instead of adding.
//
// Three types cooperate:
//
//   - Writer cuts the byte stream into chunks and transmits them from a
//     background goroutine behind a bounded window (backpressure: when the
//     wire lags by Window chunks, the producer blocks, so memory per
//     migration is bounded by Window*ChunkSize rather than the snapshot
//     size);
//   - Reader reassembles, verifies per-chunk and whole-stream checksums,
//     acknowledges progress, and feeds restoration incrementally via Next;
//   - Session wraps Writer with robustness: per-chunk acknowledgement
//     watermarks, retention of unacknowledged chunks, reconnection with
//     exponential backoff after a mid-stream disconnect, and resume from
//     the receiver's high-water mark rather than from byte zero.
//
// # Wire protocol
//
// Every message is one link.Transport frame (which already carries its own
// length + CRC framing). Messages are XDR-encoded:
//
//	hello  = magic, HELLO, sessionID u64         ; sender -> receiver on (re)connect
//	resume = magic, RESUME, nextSeq u32          ; receiver's reply: first chunk it needs
//	data   = magic, DATA, seq u32, crc u32, payload opaque
//	ack    = magic, ACK, nextSeq u32             ; cumulative: all chunks < nextSeq held
//	nack   = magic, NACK, nextSeq u32            ; corrupt chunk: rewind to nextSeq
//	fin    = magic, FIN, chunks u32, bytes u64, crc u32  ; whole-stream CRC-32
//	done   = magic, DONE, bytes u64              ; receiver verified the stream
//
// Sequence numbers start at zero and chunks are transmitted in order; the
// receiver discards any chunk whose sequence number is not the one it
// expects (duplicates arise naturally after a resume or a rewind). The
// per-chunk CRC is redundant over TCP framing but pays for itself on
// transports without integrity (files) and lets the receiver convert a
// corrupt-but-aligned frame (link.ErrChecksum) into a NACK re-request
// instead of a failed migration.
package stream

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/xdr"
)

// streamMagic guards every stream-layer message ("MSTR").
const streamMagic = 0x4d535452

// Message types.
const (
	msgHello uint32 = iota + 1
	msgResume
	msgData
	msgAck
	msgNack
	msgFin
	msgDone
)

// Errors reported by the stream layer.
var (
	// ErrProtocol is returned when a peer sends a message that violates
	// the stream protocol (bad magic, unexpected type, sequence gap).
	ErrProtocol = errors.New("stream: protocol violation")
	// ErrVerify is returned when the reassembled stream fails the
	// whole-stream checksum or length check in FIN.
	ErrVerify = errors.New("stream: stream verification failed")
	// ErrRetriesExhausted is returned by a Session when reconnection
	// attempts exceed Config.MaxRetries.
	ErrRetriesExhausted = errors.New("stream: reconnect retries exhausted")
)

// Config tunes the streaming layer. The zero value selects the defaults.
type Config struct {
	// ChunkSize is the chunk payload size in bytes (default 256 KiB).
	ChunkSize int
	// Window is the maximum number of transmitted-but-unacknowledged
	// chunks held by the sender; the producer blocks beyond it
	// (default 16). Sender memory is bounded by Window*ChunkSize.
	Window int
	// AckEvery makes the receiver acknowledge after every N in-order
	// chunks (default 4). The final FIN/DONE exchange always confirms
	// the tail regardless.
	AckEvery int
	// MaxRetries bounds a Session's reconnection attempts after a
	// transport failure (default 5; 0 uses the default, negative
	// disables reconnection).
	MaxRetries int
	// RetryBase is the first reconnect backoff delay (default 20ms);
	// subsequent attempts double it up to RetryMax (default 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Recorder, when set, receives structured flight-recorder events for
	// the robustness machinery (reconnects, rewinds, NACKs) so a failed
	// migration can be reconstructed after the fact. Nil disables.
	Recorder *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 256 << 10
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 4
	}
	if c.AckEvery > c.Window {
		// The sender stalls at Window unacknowledged chunks; if the
		// receiver acknowledged less often than that, neither side could
		// make progress.
		c.AckEvery = c.Window
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 5
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 20 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	return c
}

// retainedChunk is a transmitted-but-unacknowledged chunk held by a
// Session, stamped with its most recent transmission time so the
// acknowledgement watermark can observe the per-chunk round trip.
type retainedChunk struct {
	chunk
	sentAt time.Time
}

// chunk is one in-flight piece of the snapshot.
type chunk struct {
	seq     uint32
	payload []byte
}

// message is a decoded stream-layer control or data message.
type message struct {
	typ     uint32
	seq     uint32 // DATA seq; ACK/NACK/RESUME nextSeq; FIN chunk count
	crc     uint32 // DATA / FIN
	bytes   uint64 // FIN / DONE
	session uint64 // HELLO
	payload []byte // DATA
}

func marshalHello(sessionID uint64) []byte {
	e := xdr.NewEncoder(16)
	e.PutUint32(streamMagic)
	e.PutUint32(msgHello)
	e.PutUint64(sessionID)
	return e.Bytes()
}

func marshalSeq(typ, nextSeq uint32) []byte {
	e := xdr.NewEncoder(12)
	e.PutUint32(streamMagic)
	e.PutUint32(typ)
	e.PutUint32(nextSeq)
	return e.Bytes()
}

func marshalData(c chunk, crc uint32) []byte {
	e := xdr.NewEncoder(len(c.payload) + 20)
	e.PutUint32(streamMagic)
	e.PutUint32(msgData)
	e.PutUint32(c.seq)
	e.PutUint32(crc)
	e.PutOpaque(c.payload)
	return e.Bytes()
}

func marshalFin(chunks uint32, bytes uint64, crc uint32) []byte {
	e := xdr.NewEncoder(24)
	e.PutUint32(streamMagic)
	e.PutUint32(msgFin)
	e.PutUint32(chunks)
	e.PutUint64(bytes)
	e.PutUint32(crc)
	return e.Bytes()
}

func marshalDone(bytes uint64) []byte {
	e := xdr.NewEncoder(16)
	e.PutUint32(streamMagic)
	e.PutUint32(msgDone)
	e.PutUint64(bytes)
	return e.Bytes()
}

// parseMessage decodes one stream-layer message.
func parseMessage(raw []byte) (message, error) {
	d := xdr.NewDecoder(raw)
	magic, err := d.Uint32()
	if err != nil || magic != streamMagic {
		return message{}, fmt.Errorf("%w: bad magic", ErrProtocol)
	}
	typ, err := d.Uint32()
	if err != nil {
		return message{}, fmt.Errorf("%w: missing type", ErrProtocol)
	}
	m := message{typ: typ}
	switch typ {
	case msgHello:
		m.session, err = d.Uint64()
	case msgResume, msgAck, msgNack:
		m.seq, err = d.Uint32()
	case msgData:
		if m.seq, err = d.Uint32(); err != nil {
			break
		}
		if m.crc, err = d.Uint32(); err != nil {
			break
		}
		m.payload, err = d.Opaque()
	case msgFin:
		if m.seq, err = d.Uint32(); err != nil {
			break
		}
		if m.bytes, err = d.Uint64(); err != nil {
			break
		}
		m.crc, err = d.Uint32()
	case msgDone:
		m.bytes, err = d.Uint64()
	default:
		return message{}, fmt.Errorf("%w: unknown message type %d", ErrProtocol, typ)
	}
	if err != nil {
		return message{}, fmt.Errorf("%w: truncated %d message", ErrProtocol, typ)
	}
	return m, nil
}
