// Package fleet is the telemetry plane above internal/obs: per-node
// identity and health endpoints, a scraper that aggregates N daemons'
// /metrics snapshots into one fleet roll-up, a structured slog session
// journal, and SLO budget tracking.
//
// The split mirrors the rest of the tree: internal/session is mechanism
// (it exposes counters, histograms, and end-of-session hooks and knows
// nothing about fleets), this package is the policy layer migd, migtop,
// and — eventually — a placement/admission control plane wire those
// mechanisms into.
package fleet

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"os"
	"runtime/debug"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Node is one daemon's telemetry identity: the /metrics node header,
// the node.* gauges derived on demand (uptime, store usage), and the
// health endpoints a load balancer or drain controller probes.
type Node struct {
	Info    obs.NodeInfo
	Metrics *obs.Registry
	// Store, when set, feeds the node.store.blobs / node.store.bytes
	// gauges on every refresh.
	Store *store.Store
	// Ready reports readiness; nil means always ready. migd points this
	// at the daemon's drain state so /readyz flips the instant SIGTERM
	// starts the drain while /healthz keeps answering ok.
	Ready func() bool
}

// NewNode mints a node identity: a stable `<hostname>-<8 hex>` ID (fresh
// per process — a restart is a new node as far as windowed rates are
// concerned), the process start time, PID, and build version. reg (nil =
// obs.Default) receives the node.* gauges; machine and addr label the
// simulated architecture and the daemon's listen address.
func NewNode(machine, addr string, reg *obs.Registry) *Node {
	if reg == nil {
		reg = obs.Default
	}
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "node"
	}
	var suffix [4]byte
	rand.Read(suffix[:])
	n := &Node{
		Info: obs.NodeInfo{
			ID:      host + "-" + hex.EncodeToString(suffix[:]),
			Machine: machine,
			Addr:    addr,
			PID:     os.Getpid(),
			Start:   time.Now(),
			Version: buildVersion(),
		},
		Metrics: reg,
	}
	reg.Gauge("node.up").Set(1)
	n.Refresh()
	return n
}

// buildVersion reports the main module's version from the embedded build
// info — "devel" for plain `go build` trees.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "devel"
}

// Refresh recomputes the derived node.* gauges: uptime and, when a
// store is attached, blob count and bytes. The metrics handler calls
// this before every snapshot so scrapes always read current values.
func (n *Node) Refresh() *obs.NodeInfo {
	g := n.Metrics
	g.Gauge("node.uptime.seconds").Set(int64(time.Since(n.Info.Start).Seconds()))
	if n.Store != nil {
		if blobs, bytes, err := n.Store.Usage(); err == nil {
			g.Gauge("node.store.blobs").Set(blobs)
			g.Gauge("node.store.bytes").Set(bytes)
		}
	}
	return &n.Info
}

// ready resolves the readiness hook (nil = ready).
func (n *Node) ready() bool {
	return n.Ready == nil || n.Ready()
}

// Routes registers the node's telemetry endpoints on mux (nil =
// http.DefaultServeMux, so migd's pprof handlers share the same server):
//
//	/metrics  — obs report (JSON with node header) or Prometheus text
//	/healthz  — liveness: 200 while the process can serve HTTP at all
//	/readyz   — readiness: 200 "ready", or 503 "draining" once the
//	            daemon has begun its SIGTERM drain
//
// The liveness/readiness split is what lets an orchestrator drain a node
// without restarting it: health stays ok so the process is not killed,
// readiness goes false so no new sessions are routed to it.
func (n *Node) Routes(mux *http.ServeMux) {
	if mux == nil {
		mux = http.DefaultServeMux
	}
	mux.Handle("/metrics", obs.NodeMetricsHandler(n.Metrics, n.Refresh))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !n.ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})
}

// Mux returns a fresh ServeMux with the node's routes registered — what
// tests and the in-process fleet experiment serve.
func (n *Node) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	n.Routes(mux)
	return mux
}
