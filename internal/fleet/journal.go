package fleet

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Journal is the structured session event log: one JSON record (slog)
// per lifecycle event, written to w — migd's stderr — and, when dir is
// set, appended to journal-<nodeID>.jsonl there so fleet-level
// post-mortems survive the process. Every record carries the node ID;
// the daemon adds session ID, trace ID, peer, negotiated version,
// transfer shape, fail class, bytes, and durations, so a failed
// session's journal line and its flight-recorder dump cross-reference
// by trace ID.
type Journal struct {
	logger *slog.Logger
	file   *os.File
	path   string
}

// NewJournal opens the journal. Either sink may be absent: w nil means
// file-only, dir empty means stderr-only; both absent yields a journal
// that discards (its Logger is still non-nil, so callers don't branch).
func NewJournal(w io.Writer, dir string, node obs.NodeInfo) (*Journal, error) {
	j := &Journal{}
	var sinks []io.Writer
	if w != nil {
		sinks = append(sinks, w)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("fleet: journal: %w", err)
		}
		j.path = filepath.Join(dir, "journal-"+node.ID+".jsonl")
		f, err := os.OpenFile(j.path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, fmt.Errorf("fleet: journal: %w", err)
		}
		j.file = f
		sinks = append(sinks, f)
	}
	var out io.Writer = io.Discard
	if len(sinks) == 1 {
		out = sinks[0]
	} else if len(sinks) > 1 {
		out = io.MultiWriter(sinks...)
	}
	h := slog.NewJSONHandler(out, nil)
	j.logger = slog.New(h).With("node", node.ID)
	return j, nil
}

// Logger returns the slog logger the daemon writes records through
// (nil on a nil journal, which the daemon treats as journaling off).
func (j *Journal) Logger() *slog.Logger {
	if j == nil {
		return nil
	}
	return j.logger
}

// Path returns the JSONL file path, or "" for a stderr-only journal.
func (j *Journal) Path() string {
	if j == nil {
		return ""
	}
	return j.path
}

// Close closes the JSONL file, if any.
func (j *Journal) Close() error {
	if j == nil || j.file == nil {
		return nil
	}
	return j.file.Close()
}
