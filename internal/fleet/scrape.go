package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Target is one node the scraper polls, addressed by the base URL of its
// telemetry endpoints (migd's pprof/metrics listener).
type Target struct {
	Name string // display name; defaults to the URL with its scheme stripped
	URL  string // base URL, e.g. "http://127.0.0.1:9102"
}

// NormalizeTarget builds a Target from an operator-supplied address:
// "host:port" gains the http scheme, a full URL is kept as-is.
func NormalizeTarget(addr string) Target {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	url = strings.TrimRight(url, "/")
	return Target{Name: strings.TrimPrefix(strings.TrimPrefix(url, "http://"), "https://"), URL: url}
}

// Sample is one scrape of one node: the decoded /metrics report plus the
// /readyz probe. Err marks an unreachable or unparsable node — the
// roll-up still renders it as a row so an outage is visible, not absent.
type Sample struct {
	Target  Target
	At      time.Time
	Node    *obs.NodeInfo // nil for v1 nodes and failed scrapes
	Metrics obs.MetricsSnapshot
	Ready   bool
	Err     error
}

// Scraper polls every target's /metrics (JSON report, any schema
// ParseReport accepts) and /readyz, keeping the previous round per
// target so two consecutive scrapes yield windowed rates. Safe for
// concurrent use; the fetches within one round run concurrently.
type Scraper struct {
	Targets []Target
	// Client is the HTTP client; nil selects a 5-second-timeout client.
	Client *http.Client

	mu   sync.Mutex
	prev map[string]Sample
	last map[string]Sample
}

func (s *Scraper) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// Scrape polls every target once and rotates the window. The returned
// samples are in target order; unreachable nodes carry Err.
func (s *Scraper) Scrape(ctx context.Context) []Sample {
	samples := make([]Sample, len(s.Targets))
	var wg sync.WaitGroup
	for i, tgt := range s.Targets {
		wg.Add(1)
		go func(i int, tgt Target) {
			defer wg.Done()
			samples[i] = s.scrapeOne(ctx, tgt)
		}(i, tgt)
	}
	wg.Wait()

	s.mu.Lock()
	s.prev = s.last
	s.last = make(map[string]Sample, len(samples))
	for _, sm := range samples {
		s.last[sm.Target.Name] = sm
	}
	s.mu.Unlock()
	return samples
}

func (s *Scraper) scrapeOne(ctx context.Context, tgt Target) Sample {
	sm := Sample{Target: tgt, At: time.Now()}
	body, err := s.get(ctx, tgt.URL+"/metrics")
	if err != nil {
		sm.Err = err
		return sm
	}
	rep, err := obs.ParseReport(body)
	if err != nil {
		sm.Err = err
		return sm
	}
	sm.Node = rep.Node
	if rep.Metrics != nil {
		sm.Metrics = *rep.Metrics
	}
	sm.Ready = s.probeReady(ctx, tgt.URL)
	return sm
}

// probeReady hits /readyz; only an explicit 503 marks the node draining.
// A node without the endpoint (a v1 daemon) answered /metrics above, so
// it is treated as ready — readiness is best-effort, liveness is not.
func (s *Scraper) probeReady(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return true
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return true
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode != http.StatusServiceUnavailable
}

func (s *Scraper) get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: status %d", url, resp.StatusCode)
	}
	return body, nil
}

// Window returns the target's two most recent successful-round samples.
// ok is false until two rounds have completed.
func (s *Scraper) Window(name string) (prev, last Sample, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	last, okLast := s.last[name]
	prev, okPrev := s.prev[name]
	return prev, last, okLast && okPrev
}
