package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

func TestNodeIdentityAndRefresh(t *testing.T) {
	reg := obs.NewRegistry()
	n := NewNode("sparc20", "127.0.0.1:7464", reg)
	if n.Info.ID == "" || !strings.Contains(n.Info.ID, "-") {
		t.Errorf("node ID = %q, want <hostname>-<hex>", n.Info.ID)
	}
	if n.Info.PID != os.Getpid() || n.Info.Machine != "sparc20" || n.Info.Version == "" {
		t.Errorf("node info = %+v", n.Info)
	}
	if NewNode("sparc20", "", obs.NewRegistry()).Info.ID == n.Info.ID {
		t.Error("two nodes minted the same ID")
	}
	snap := reg.Snapshot()
	if snap.Gauges["node.up"] != 1 {
		t.Errorf("node.up = %d, want 1", snap.Gauges["node.up"])
	}
	if _, ok := snap.Gauges["node.uptime.seconds"]; !ok {
		t.Error("refresh did not set node.uptime.seconds")
	}
}

func TestNodeStoreGauges(t *testing.T) {
	reg := obs.NewRegistry()
	st, err := store.Open(t.TempDir(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.PutBlob([]byte("hello fleet")); err != nil {
		t.Fatal(err)
	}
	n := NewNode("sparc20", "", reg)
	n.Store = st
	n.Refresh()
	snap := reg.Snapshot()
	if snap.Gauges["node.store.blobs"] != 1 || snap.Gauges["node.store.bytes"] != 11 {
		t.Errorf("store gauges = blobs %d bytes %d, want 1/11",
			snap.Gauges["node.store.blobs"], snap.Gauges["node.store.bytes"])
	}
}

// TestNodeRoutes drives the three endpoints: /metrics carries the node
// header, /healthz always answers ok, /readyz flips to 503 — and back —
// with the readiness hook, exactly the drain semantics migd wires in.
func TestNodeRoutes(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("session.restored").Add(7)
	n := NewNode("sparc20", "", reg)
	ready := true
	n.Ready = func() bool { return ready }
	srv := httptest.NewServer(n.Mux())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, n.Info.ID) {
		t.Errorf("/metrics status %d, body missing node ID:\n%s", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get("/readyz"); code != 200 || body != "ready\n" {
		t.Errorf("/readyz ready = %d %q", code, body)
	}

	ready = false // drain begins
	if code, body := get("/readyz"); code != 503 || body != "draining\n" {
		t.Errorf("/readyz draining = %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Errorf("/healthz during drain = %d, want 200", code)
	}

	ready = true // drain aborted
	if code, _ := get("/readyz"); code != 200 {
		t.Errorf("/readyz after drain = %d, want 200", code)
	}
}

// TestScraperRollup runs two real nodes plus one dead target through the
// scraper and checks the aggregation: summed counts, exact merged
// quantiles against a single-registry reference, readiness, and
// windowed rates on a second round.
func TestScraperRollup(t *testing.T) {
	ref := obs.NewRegistry()
	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	durations := [][]time.Duration{
		{2 * time.Millisecond, 9 * time.Millisecond, 40 * time.Millisecond},
		{3 * time.Millisecond, 700 * time.Microsecond},
	}
	var targets []Target
	for i, reg := range regs {
		for _, d := range durations[i] {
			reg.Counter("session.accepted").Inc()
			reg.Counter("session.restored").Inc()
			reg.Histogram("session.duration").Observe(d)
			ref.Histogram("session.duration").Observe(d)
		}
		n := NewNode("sparc20", "", reg)
		srv := httptest.NewServer(n.Mux())
		defer srv.Close()
		targets = append(targets, NormalizeTarget(srv.URL))
	}
	regs[0].Counter("session.failed").Inc()
	regs[0].Counter("session.fail.transport").Inc()
	targets = append(targets, NormalizeTarget("127.0.0.1:1")) // nobody home

	sc := &Scraper{Targets: targets, Client: &http.Client{Timeout: 2 * time.Second}}
	sc.Scrape(context.Background())
	r := sc.Rollup()

	if r.Nodes != 3 || r.Ready != 2 {
		t.Fatalf("nodes %d ready %d, want 3/2", r.Nodes, r.Ready)
	}
	if r.Accepted != 5 || r.Restored != 5 || r.Failed != 1 {
		t.Errorf("totals acc/rest/fail = %d/%d/%d, want 5/5/1", r.Accepted, r.Restored, r.Failed)
	}
	if r.FailClasses["transport"] != 1 {
		t.Errorf("fail classes = %v", r.FailClasses)
	}
	refSnap := ref.Histogram("session.duration").Snapshot()
	if r.Session.Count != refSnap.Count || r.Session.P50US != refSnap.P50US ||
		r.Session.P99US != refSnap.P99US {
		t.Errorf("merged session histogram %+v, reference %+v", r.Session, refSnap)
	}
	var deadRow *NodeRow
	for i := range r.Rows {
		if r.Rows[i].Err != "" {
			deadRow = &r.Rows[i]
		}
	}
	if deadRow == nil {
		t.Fatal("dead target missing from rows")
	}

	// Second round: more sessions → a positive windowed rate.
	for i := 0; i < 4; i++ {
		regs[0].Counter("session.accepted").Inc()
	}
	time.Sleep(20 * time.Millisecond)
	sc.Scrape(context.Background())
	r2 := sc.Rollup()
	if r2.Rows[0].AcceptedRate <= 0 {
		t.Errorf("windowed accepted rate = %v, want > 0", r2.Rows[0].AcceptedRate)
	}

	var buf bytes.Buffer
	r2.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"NODE", "fleet:", "transport=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestJournalWritesJSONLAndStderrSink(t *testing.T) {
	dir := t.TempDir()
	var errSink bytes.Buffer
	node := obs.NodeInfo{ID: "nodetest-0001"}
	j, err := NewJournal(&errSink, dir, node)
	if err != nil {
		t.Fatal(err)
	}
	j.Logger().Info("session.restored", "session", 1, "how", "warm v3", "bytes", 4096)
	j.Logger().Error("session.failed", "session", 2, "fail_class", "transport")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	scan := bufio.NewScanner(f)
	for scan.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(scan.Bytes(), &rec); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if rec["node"] != "nodetest-0001" {
			t.Errorf("record missing node attr: %v", rec)
		}
	}
	if lines != 2 {
		t.Errorf("journal has %d lines, want 2", lines)
	}
	if !strings.Contains(errSink.String(), `"msg":"session.restored"`) {
		t.Errorf("stderr sink missing record: %s", errSink.String())
	}

	// Discarding journal (no sinks) still hands out a usable logger.
	quiet, err := NewJournal(nil, "", node)
	if err != nil {
		t.Fatal(err)
	}
	quiet.Logger().Info("noop")
	if quiet.Path() != "" {
		t.Errorf("quiet journal path = %q", quiet.Path())
	}
}

func TestSLOTracker(t *testing.T) {
	reg := obs.NewRegistry()
	tr := &Tracker{SLO: SLO{Session: time.Millisecond, Downtime: 100 * time.Microsecond}, Metrics: reg}
	tr.ObserveSession(500 * time.Microsecond) // within budget
	tr.ObserveSession(2 * time.Millisecond)   // burn
	tr.ObserveDowntime(50 * time.Microsecond)
	tr.ObserveDowntime(time.Millisecond) // burn
	snap := reg.Snapshot()
	if snap.Counters["slo.session.total"] != 2 || snap.Counters["slo.session.burn"] != 1 {
		t.Errorf("session budget = %v", snap.Counters)
	}
	if snap.Counters["slo.downtime.total"] != 2 || snap.Counters["slo.downtime.burn"] != 1 {
		t.Errorf("downtime budget = %v", snap.Counters)
	}

	// Disabled budgets write nothing, and a nil tracker is a no-op.
	off := &Tracker{Metrics: reg}
	off.ObserveSession(time.Hour)
	if reg.Snapshot().Counters["slo.session.total"] != 2 {
		t.Error("disabled budget still counted")
	}
	var nilT *Tracker
	nilT.ObserveSession(time.Second)
}
