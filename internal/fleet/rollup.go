package fleet

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Metric names the roll-up reads. The daemon side (internal/session,
// fleet.Tracker, Node.Refresh) writes these; keeping the list here makes
// the scraper's contract with the node explicit.
const (
	mAccepted  = "session.accepted"
	mRestored  = "session.restored"
	mFailed    = "session.failed"
	mBytes     = "session.bytes"
	mDuration  = "session.duration"
	mDowntime  = "session.downtime"
	mInflight  = "session.inflight"
	mCapacity  = "session.pool.capacity"
	mFailPfx   = "session.fail."
	mSLOSBurn  = "slo.session.burn"
	mSLODBurn  = "slo.downtime.burn"
	mUptimeSec = "node.uptime.seconds"
)

// NodeRow is one node's line in the fleet roll-up.
type NodeRow struct {
	Name    string `json:"name"`
	ID      string `json:"id,omitempty"`
	Ready   bool   `json:"ready"`
	Err     string `json:"err,omitempty"`
	UptimeS int64  `json:"uptime_s"`

	Inflight int64 `json:"inflight"`
	Capacity int64 `json:"capacity"`
	Accepted int64 `json:"accepted"`
	Restored int64 `json:"restored"`
	Failed   int64 `json:"failed"`
	Bytes    int64 `json:"bytes"`

	// Windowed rates (per second over the last scrape interval); zero
	// until two rounds have completed.
	AcceptedRate float64 `json:"accepted_rate"`
	FailedRate   float64 `json:"failed_rate"`

	SessionP50US int64 `json:"session_p50_us"`
	SessionP99US int64 `json:"session_p99_us"`

	SLOSessionBurn  int64 `json:"slo_session_burn"`
	SLODowntimeBurn int64 `json:"slo_downtime_burn"`
}

// Rollup is the fleet-wide aggregation of one scrape round: per-node
// rows plus exact bucket-wise merges of every node's latency
// distributions.
type Rollup struct {
	At    time.Time `json:"at"`
	Rows  []NodeRow `json:"rows"`
	Nodes int       `json:"nodes"`
	Ready int       `json:"ready"`

	Accepted int64 `json:"accepted"`
	Restored int64 `json:"restored"`
	Failed   int64 `json:"failed"`
	Bytes    int64 `json:"bytes"`
	Inflight int64 `json:"inflight"`
	Capacity int64 `json:"capacity"`

	// Session and Downtime are the merged session.duration and
	// session.downtime histograms — fleet-wide quantiles, exact because
	// every node shares the compiled bucket layout.
	Session  obs.HistogramSnapshot `json:"session"`
	Downtime obs.HistogramSnapshot `json:"downtime"`

	// FailClasses breaks the failures down by session.fail.<class>.
	FailClasses map[string]int64 `json:"fail_classes,omitempty"`

	SLOSessionBurn  int64 `json:"slo_session_burn"`
	SLODowntimeBurn int64 `json:"slo_downtime_burn"`
}

// Rollup aggregates the scraper's most recent round. Unreachable nodes
// contribute a row (with Err set) but no metrics.
func (s *Scraper) Rollup() *Rollup {
	r := &Rollup{FailClasses: map[string]int64{}}
	for _, tgt := range s.Targets {
		s.mu.Lock()
		sm, ok := s.last[tgt.Name]
		s.mu.Unlock()
		if !ok {
			continue
		}
		r.Nodes++
		if r.At.Before(sm.At) {
			r.At = sm.At
		}
		row := NodeRow{Name: tgt.Name, Ready: sm.Ready}
		if sm.Err != nil {
			row.Err = sm.Err.Error()
			row.Ready = false
			r.Rows = append(r.Rows, row)
			continue
		}
		if sm.Ready {
			r.Ready++
		}
		if sm.Node != nil {
			row.ID = sm.Node.ID
		}
		m := sm.Metrics
		row.UptimeS = m.Gauges[mUptimeSec]
		row.Inflight = m.Gauges[mInflight]
		row.Capacity = m.Gauges[mCapacity]
		row.Accepted = m.Counters[mAccepted]
		row.Restored = m.Counters[mRestored]
		row.Failed = m.Counters[mFailed]
		row.Bytes = m.Counters[mBytes]
		row.SLOSessionBurn = m.Counters[mSLOSBurn]
		row.SLODowntimeBurn = m.Counters[mSLODBurn]
		dur := m.Histograms[mDuration]
		row.SessionP50US = dur.P50US
		row.SessionP99US = dur.P99US

		if prev, _, ok := s.Window(tgt.Name); ok && prev.Err == nil {
			if secs := sm.At.Sub(prev.At).Seconds(); secs > 0 {
				w := m.Delta(prev.Metrics)
				row.AcceptedRate = float64(w.Counters[mAccepted]) / secs
				row.FailedRate = float64(w.Counters[mFailed]) / secs
			}
		}

		r.Accepted += row.Accepted
		r.Restored += row.Restored
		r.Failed += row.Failed
		r.Bytes += row.Bytes
		r.Inflight += row.Inflight
		r.Capacity += row.Capacity
		r.SLOSessionBurn += row.SLOSessionBurn
		r.SLODowntimeBurn += row.SLODowntimeBurn
		r.Session = r.Session.Merge(dur)
		r.Downtime = r.Downtime.Merge(m.Histograms[mDowntime])
		for name, v := range m.Counters {
			if cls, ok := strings.CutPrefix(name, mFailPfx); ok && v > 0 {
				r.FailClasses[cls] += v
			}
		}
		r.Rows = append(r.Rows, row)
	}
	return r
}

// WriteTable renders the roll-up as the migtop table: one row per node,
// then the fleet summary with merged quantiles, fail classes, and SLO
// burn.
func (r *Rollup) WriteTable(w io.Writer) {
	tbl := &stats.Table{
		Headers: []string{"NODE", "READY", "UP", "INFL", "CAP", "ACC", "REST", "FAIL",
			"ACC/S", "P50", "P99", "BURN"},
	}
	for _, row := range r.Rows {
		if row.Err != "" {
			tbl.AddRow(row.Name, "down", "-", "-", "-", "-", "-", "-", "-", "-", "-", row.Err)
			continue
		}
		ready := "yes"
		if !row.Ready {
			ready = "drain"
		}
		tbl.AddRow(row.Name, ready,
			(time.Duration(row.UptimeS) * time.Second).String(),
			row.Inflight, row.Capacity, row.Accepted, row.Restored, row.Failed,
			fmt.Sprintf("%.1f", row.AcceptedRate),
			durUS(row.SessionP50US), durUS(row.SessionP99US),
			row.SLOSessionBurn+row.SLODowntimeBurn)
	}
	fmt.Fprint(w, tbl.String())

	fmt.Fprintf(w, "fleet: %d/%d ready  sessions %d accepted / %d restored / %d failed  inflight %d/%d\n",
		r.Ready, r.Nodes, r.Accepted, r.Restored, r.Failed, r.Inflight, r.Capacity)
	fmt.Fprintf(w, "fleet: session p50 %s p99 %s (n=%d)",
		durUS(r.Session.P50US), durUS(r.Session.P99US), r.Session.Count)
	if r.Downtime.Count > 0 {
		fmt.Fprintf(w, "  downtime p50 %s p99 %s (n=%d)",
			durUS(r.Downtime.P50US), durUS(r.Downtime.P99US), r.Downtime.Count)
	}
	fmt.Fprintln(w)
	if len(r.FailClasses) > 0 {
		classes := make([]string, 0, len(r.FailClasses))
		for c := range r.FailClasses {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		fmt.Fprint(w, "fleet: failures")
		for _, c := range classes {
			fmt.Fprintf(w, "  %s=%d", c, r.FailClasses[c])
		}
		fmt.Fprintln(w)
	}
	if r.SLOSessionBurn+r.SLODowntimeBurn > 0 {
		fmt.Fprintf(w, "fleet: slo burn  session=%d downtime=%d\n",
			r.SLOSessionBurn, r.SLODowntimeBurn)
	}
}

func durUS(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}
