package fleet

import (
	"time"

	"repro/internal/obs"
)

// SLO is a node's per-observation budget targets. A zero target disables
// that budget entirely (no counters are written), so an un-configured
// node exposes no misleading zero burn.
type SLO struct {
	// Session is the budget for one migration session's total wall time
	// (handshake through restore confirmation).
	Session time.Duration
	// Downtime is the budget for one live migration's stop-and-copy
	// pause.
	Downtime time.Duration
}

// Tracker counts observations against the SLO into a registry:
//
//	slo.session.total / slo.session.burn
//	slo.downtime.total / slo.downtime.burn
//
// Burn is the number of observations that blew their budget — the
// error-budget spend. Both counters are monotonic, so the fleet
// aggregates them the same way it aggregates everything else (sum across
// nodes, delta across scrapes), and burn/total is the burn rate over any
// window.
type Tracker struct {
	SLO     SLO
	Metrics *obs.Registry // nil selects obs.Default
}

func (t *Tracker) metrics() *obs.Registry {
	if t.Metrics != nil {
		return t.Metrics
	}
	return obs.Default
}

// ObserveSession counts one completed session against the session
// budget. Nil-safe; no-op when the budget is disabled.
func (t *Tracker) ObserveSession(d time.Duration) {
	if t == nil {
		return
	}
	t.observe("slo.session", d, t.SLO.Session)
}

// ObserveDowntime counts one live migration's downtime against the
// downtime budget. Nil-safe; no-op when the budget is disabled.
func (t *Tracker) ObserveDowntime(d time.Duration) {
	if t == nil {
		return
	}
	t.observe("slo.downtime", d, t.SLO.Downtime)
}

func (t *Tracker) observe(name string, d, target time.Duration) {
	if target <= 0 {
		return
	}
	reg := t.metrics()
	reg.Counter(name + ".total").Inc()
	if d > target {
		reg.Counter(name + ".burn").Inc()
	}
}
