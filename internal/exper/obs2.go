package exper

// E11 — distributed tracing: the stitched cross-machine trace and its
// price.
//
//   - E11a migrates test_pointer over real loopback TCP at v3 several
//     times with per-session trace contexts and private metrics
//     registries on both ends, then reports (i) the single stitched
//     trace — the destination's restore/confirm spans grafted under the
//     initiator's trace ID — and (ii) p50/p90/p99 per migration phase
//     from the session.phase.* latency histograms;
//   - E11b bounds the tracing overhead: the same migration over an
//     in-memory pipe with tracing, flight recording, and span shipping
//     off versus on, min-of-N. The paper-style budget is <=2%; like
//     E10a the bound is reported, not enforced, because single-digit
//     microsecond deltas drown in scheduler noise on shared CI.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

// PhaseQuantileRow is one side's latency distribution for one migration
// phase, read from its session.phase.* histogram after the E11a runs.
type PhaseQuantileRow struct {
	Side  string        `json:"side"` // "initiator" or "responder"
	Phase string        `json:"phase"`
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// ObsStitchedResult is the E11a outcome: the wire result of the last
// migration, the stitched trace, and the per-phase quantiles across all
// migrations.
type ObsStitchedResult struct {
	Version    uint32 `json:"version"`
	Bytes      int    `json:"bytes"`
	ExitCode   int    `json:"exit_code"`
	Migrations int    `json:"migrations"`
	// TraceID is the last migration's trace ID; Stitched reports whether
	// the responder's spans arrived and grafted under the initiator root
	// with that ID.
	TraceID  string             `json:"trace_id"`
	Stitched bool               `json:"stitched"`
	Phases   []PhaseQuantileRow `json:"phases"`
	// Trace is the stitched tree in the shared obs JSON form: ONE root
	// (the initiator's session span) whose children include the remote
	// subtree.
	Trace []*obs.SpanData `json:"trace"`

	tree string
}

// obs2Phases lists each side's phases in execution order.
var obs2Phases = map[string][]string{
	"initiator": {"handshake", "collect", "transport", "confirm"},
	"responder": {"handshake", "restore", "confirm"},
}

// ObsStitched runs E11a: repeats() traced v3 migrations of test_pointer
// over loopback TCP, each on a fresh connection, with both sides feeding
// private metrics registries.
func ObsStitched(cfg Config) (*ObsStitchedResult, error) {
	depth := 8
	if cfg.Quick {
		depth = 5
	}
	e, err := core.NewEngine(workload.TestPointerSource(depth), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	reg := session.NewRegistry()
	reg.Add("test_pointer", e)
	iniMetrics, respMetrics := obs.NewRegistry(), obs.NewRegistry()

	res := &ObsStitchedResult{Migrations: cfg.repeats()}
	var itr *obs.Tracer
	var last *session.Result
	for i := 0; i < res.Migrations; i++ {
		p, _, err := stopAtMigration(e, arch.Ultra5)
		if err != nil {
			return nil, err
		}
		srv, cli, cleanup, err := link.LoopbackPair()
		if err != nil {
			return nil, err
		}
		itr = obs.NewTracer()
		iroot := itr.Start("session")
		rtr := obs.NewTracer()
		type recvRes struct {
			q   *vm.Process
			err error
		}
		recvc := make(chan recvRes, 1)
		go func() {
			_, q, _, rerr := session.Respond(srv, reg, arch.Ultra5, session.Config{
				Trace: rtr.Start("session"), Metrics: respMetrics,
			})
			recvc <- recvRes{q, rerr}
		}()
		last, err = session.Initiate(cli, e, p.Mach, "test_pointer", p, session.Config{
			MinVersion: core.VersionSectioned, MaxVersion: core.VersionSectioned,
			ChunkSize: 4096, Window: 4, Trace: iroot, Metrics: iniMetrics,
		})
		iroot.End()
		recv := <-recvc
		cleanup()
		if err != nil {
			return nil, fmt.Errorf("exper: stitched initiate: %w", err)
		}
		if recv.err != nil {
			return nil, fmt.Errorf("exper: stitched respond: %w", recv.err)
		}
		// Only the last restored process is run to completion; earlier
		// iterations exist to populate the histograms.
		if i == res.Migrations-1 {
			recv.q.MaxSteps = maxSteps
			run, rerr := recv.q.Run()
			if rerr != nil {
				return nil, rerr
			}
			res.ExitCode = run.ExitCode
		}
	}

	res.Version = last.Params.Version
	res.Bytes = last.Timing.Bytes
	res.TraceID = obs.IDString(last.Trace.TraceID)
	res.Trace = itr.Export()
	res.tree = itr.Tree()
	// Stitched means: one root, carrying the session's trace ID, with the
	// destination's restore and confirm spans in a remote subtree.
	if len(res.Trace) == 1 && res.Trace[0].TraceID == res.TraceID {
		for _, c := range res.Trace[0].Children {
			if c.Remote && c.Find("restore") != nil && c.Find("confirm") != nil {
				res.Stitched = true
			}
		}
	}
	for side, reg := range map[string]*obs.Registry{"initiator": iniMetrics, "responder": respMetrics} {
		for _, phase := range obs2Phases[side] {
			h := reg.Histogram("session.phase." + phase)
			res.Phases = append(res.Phases, PhaseQuantileRow{
				Side: side, Phase: phase, Count: h.Count(),
				P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			})
		}
	}
	return res, nil
}

// PrintObsStitched renders the E11a stitched trace and phase quantiles.
func PrintObsStitched(w io.Writer, r *ObsStitchedResult) {
	fmt.Fprintf(w, "E11a (tracing): %d traced v%d migrations over loopback TCP, %d bytes each, exit %d\n",
		r.Migrations, r.Version, r.Bytes, r.ExitCode)
	fmt.Fprintf(w, "stitched trace %s (remote subtree grafted: %v):\n%s",
		r.TraceID, r.Stitched, indentTree(r.tree))
	t := stats.Table{
		Title:   "per-phase latency quantiles (session.phase.* histograms, bucket upper bounds)",
		Headers: []string{"Side", "Phase", "Count", "p50", "p90", "p99"},
	}
	for _, row := range r.Phases {
		t.AddRow(row.Side, row.Phase, row.Count, row.P50, row.P90, row.P99)
	}
	fmt.Fprintln(w, t.String())
}

// ObsTracingOverheadRow is the E11b traced-vs-untraced migration
// comparison. Phase histograms observe unconditionally on both sides, so
// the delta isolates what tracing adds: span lifecycle, the trace pair
// on the OFFER, flight recording, and span export/stitching on the
// confirm leg.
type ObsTracingOverheadRow struct {
	Workload    string        `json:"workload"`
	Bytes       int           `json:"bytes"`
	Off         time.Duration `json:"off_ns"`
	On          time.Duration `json:"on_ns"`
	OverheadPct float64       `json:"overhead_pct"`
	BoundPct    float64       `json:"bound_pct"`
}

// ObsTracingOverhead runs E11b: the full v3 session (handshake through
// confirm) over an in-memory pipe, min-of-N, untraced versus fully
// instrumented.
func ObsTracingOverhead(cfg Config) ([]ObsTracingOverheadRow, error) {
	depth := 8
	if cfg.Quick {
		depth = 5
	}
	e, err := core.NewEngine(workload.TestPointerSource(depth), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	reg := session.NewRegistry()
	reg.Add("test_pointer", e)
	p, _, err := stopAtMigration(e, arch.Ultra5)
	if err != nil {
		return nil, err
	}

	bytes := 0
	var failure error
	migrate := func(icfg, rcfg session.Config) {
		a, b := link.Pipe()
		done := make(chan error, 1)
		go func() {
			_, _, _, rerr := session.Respond(b, reg, arch.Ultra5, rcfg)
			done <- rerr
		}()
		res, err := session.Initiate(a, e, p.Mach, "test_pointer", p, icfg)
		if rerr := <-done; failure == nil && rerr != nil {
			failure = rerr
		}
		if failure == nil && err != nil {
			failure = err
		}
		a.Close()
		b.Close()
		if err == nil {
			bytes = res.Timing.Bytes
		}
	}
	base := session.Config{
		MinVersion: core.VersionSectioned, MaxVersion: core.VersionSectioned,
		ChunkSize: 4096, Window: 4,
	}

	runtime.GC()
	off := stats.Repeat(cfg.repeats(), func() { migrate(base, session.Config{}) })
	if failure != nil {
		return nil, failure
	}
	runtime.GC()
	iniMetrics, respMetrics := obs.NewRegistry(), obs.NewRegistry()
	on := stats.Repeat(cfg.repeats(), func() {
		itr, rtr := obs.NewTracer(), obs.NewTracer()
		icfg, rcfg := base, session.Config{}
		icfg.Trace, icfg.Metrics, icfg.Recorder = itr.Start("session"), iniMetrics, obs.NewFlightRecorder(0)
		rcfg.Trace, rcfg.Metrics, rcfg.Recorder = rtr.Start("session"), respMetrics, obs.NewFlightRecorder(0)
		migrate(icfg, rcfg)
		icfg.Trace.End()
	})
	if failure != nil {
		return nil, failure
	}
	return []ObsTracingOverheadRow{{
		Workload:    fmt.Sprintf("test_pointer depth %d, v3 over in-memory pipe", depth),
		Bytes:       bytes,
		Off:         off,
		On:          on,
		OverheadPct: (on.Seconds() - off.Seconds()) / off.Seconds() * 100,
		BoundPct:    2.0,
	}}, nil
}

// PrintObsTracingOverhead renders the E11b comparison.
func PrintObsTracingOverhead(w io.Writer, rows []ObsTracingOverheadRow) {
	t := stats.Table{
		Title:   "E11b (tracing): full v3 session untraced vs traced+recorded, in-memory pipe",
		Headers: []string{"Workload", "Bytes", "Trace off", "Trace on", "Overhead", "Budget"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, r.Bytes, r.Off, r.On,
			fmt.Sprintf("%+.1f%%", r.OverheadPct), fmt.Sprintf("<=%.0f%%", r.BoundPct))
	}
	fmt.Fprintln(w, t.String())
}
