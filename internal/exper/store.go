package exper

// E12 — the content-addressed checkpoint store (internal/store) and the
// warm migration path built on it. Two views:
//
//   - E12a checkpoints a mutating sharded-list workload at intervals of
//     1, 2, and 5 mutation rounds and measures the incremental dedup
//     ratio: with 10 lists and one list dirtied per round, a checkpoint
//     every round rewrites ~10% of the heap, so content addressing should
//     compress incremental checkpoints by well over 2x;
//   - E12b migrates the same workload cold (plain v3) and warm
//     (store-assisted HAVE/WANT) and compares bytes on the wire: the
//     first warm transfer pays the full price, an unchanged re-migration
//     ships only the manifest, a one-shard mutation ships one component.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/vm"
	"repro/internal/workload"
)

// storeLists and storeRounds shape the E12 workload: one list is dirtied
// per round, so a checkpoint interval of 1 sees 1/storeLists of the heap
// changed — the "10%-mutation" point.
const (
	storeLists  = 10
	storeRounds = 10
)

func storeNodes(cfg Config) int {
	if cfg.Quick {
		return 60
	}
	return 300
}

// storeRoot resolves where an E12 store lives: under cfg.StoreDir when the
// caller wants the fixture kept, a temp directory otherwise.
func storeRoot(cfg Config, name string) (string, error) {
	if cfg.StoreDir != "" {
		dir := filepath.Join(cfg.StoreDir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", err
		}
		return dir, nil
	}
	return os.MkdirTemp("", "migstore-"+name+"-*")
}

// DedupRow is one checkpoint interval's E12a outcome.
type DedupRow struct {
	// Interval is the number of mutation rounds between checkpoints.
	Interval int
	// Checkpoints is how many checkpoints the run recorded (the first is
	// cold — an empty store — and excluded from the incremental columns).
	Checkpoints int
	Sections    int
	// SnapshotBytes and WrittenBytes sum the incremental checkpoints'
	// full snapshot sizes and actually-written (post-dedup) bytes; Ratio
	// is their quotient — the incremental dedup ratio.
	SnapshotBytes int64
	WrittenBytes  int64
	Ratio         float64
	// ColdBytes is the first checkpoint's written size (nothing dedups
	// against an empty store).
	ColdBytes int64
	// SweptBlobs and SweptBytes are what a KeepPerRef=1 GC reclaimed
	// after the run — the superseded generations.
	SweptBlobs int
	SweptBytes int64
	// Elapsed is the total checkpointing wall time.
	Elapsed time.Duration
	// ExitCode is the workload's final exit: 0 proves every mutation
	// survived the checkpoint cadence (the checksum re-verifies).
	ExitCode int
}

// StoreDedup runs E12a: checkpoint the mutating workload every interval-th
// migration point and measure how much the content-addressed store dedups
// incremental checkpoints.
func StoreDedup(cfg Config) ([]DedupRow, error) {
	var rows []DedupRow
	for _, interval := range []int{1, 2, 5} {
		e, err := core.NewEngine(
			workload.MutatingShardsSource(storeLists, storeNodes(cfg), storeRounds),
			minic.PollPolicy{})
		if err != nil {
			return nil, err
		}
		dir, err := storeRoot(cfg, fmt.Sprintf("interval-%d", interval))
		if err != nil {
			return nil, err
		}
		if cfg.StoreDir == "" {
			defer os.RemoveAll(dir)
		}
		st, err := store.Open(dir, obs.NewRegistry())
		if err != nil {
			return nil, err
		}
		p, err := e.NewProcess(arch.Ultra5)
		if err != nil {
			return nil, err
		}
		p.MaxSteps = maxSteps
		stopEvery := func(*vm.Process, *minic.Site) bool { return true }
		p.PollHook = stopEvery

		row := DedupRow{Interval: interval}
		polls := 0
		for {
			res, err := p.Run()
			if err != nil {
				return nil, err
			}
			if !res.Migrated {
				row.ExitCode = res.ExitCode
				break
			}
			polls++
			if polls%interval == 0 {
				start := time.Now()
				_, _, cst, err := e.CheckpointProcess(st, p, arch.Ultra5, "shards", 0)
				if err != nil {
					return nil, err
				}
				row.Elapsed += time.Since(start)
				row.Checkpoints++
				row.Sections = cst.Sections
				if row.Checkpoints == 1 {
					row.ColdBytes = cst.WrittenBytes
				} else {
					row.SnapshotBytes += cst.SnapshotBytes
					row.WrittenBytes += cst.WrittenBytes
				}
			}
			// A stopped process cannot resume and re-capture; every hop
			// restores a fresh process from the captured state, exactly as a
			// real migration would.
			p, err = vm.RestoreProcess(e.Prog, arch.Ultra5, res.State)
			if err != nil {
				return nil, err
			}
			p.MaxSteps = maxSteps
			p.PollHook = stopEvery
		}
		if row.WrittenBytes > 0 {
			row.Ratio = float64(row.SnapshotBytes) / float64(row.WrittenBytes)
		}
		gc, err := st.GC(store.GCPolicy{KeepPerRef: 1})
		if err != nil {
			return nil, err
		}
		row.SweptBlobs = gc.SweptBlobs
		row.SweptBytes = gc.SweptBytes
		// The retained head must still materialize after the sweep.
		if h, ok, err := st.Ref("shards"); err != nil || !ok {
			return nil, fmt.Errorf("exper: store ref after gc: ok=%v err=%v", ok, err)
		} else if _, err := st.Materialize(h); err != nil {
			return nil, fmt.Errorf("exper: materialize after gc: %w", err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintStoreDedup renders the E12a table.
func PrintStoreDedup(w io.Writer, rows []DedupRow) {
	t := stats.Table{
		Title: fmt.Sprintf("E12a (checkpoint store): incremental dedup vs checkpoint interval, %d lists, 1 dirtied/round, Ultra 5", storeLists),
		Headers: []string{"Interval", "Checkpoints", "Sections", "Cold bytes",
			"Incr snapshot", "Incr written", "Dedup", "GC swept", "Exit"},
	}
	for _, r := range rows {
		t.AddRow(r.Interval, r.Checkpoints, r.Sections, r.ColdBytes,
			r.SnapshotBytes, r.WrittenBytes, fmt.Sprintf("%.2fx", r.Ratio),
			fmt.Sprintf("%d blobs/%d B", r.SweptBlobs, r.SweptBytes), r.ExitCode)
	}
	fmt.Fprintln(w, t.String())
}

// StoreWireRow is one E12b migration mode.
type StoreWireRow struct {
	Mode     string
	Sections int
	// SectionsSent is how many section bodies crossed the wire (cold
	// transfers ship the whole snapshot and report all sections).
	SectionsSent int
	// SnapshotBytes is the full sectioned snapshot; WireBytes what the
	// transfer actually put on the wire; PctOfCold the latter relative to
	// the cold v3 transfer of the same state.
	SnapshotBytes int
	WireBytes     int
	PctOfCold     float64
	// ExitCode is the restored process run to completion (0 = checksum
	// verified on the destination).
	ExitCode int
}

// storeTransfer runs one full session over a pipe with per-side configs
// and returns the initiator result plus the restored process.
func storeTransfer(e *core.Engine, p *vm.Process, srcCfg, dstCfg session.Config) (*session.Result, *vm.Process, error) {
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	reg := session.NewRegistry()
	reg.Add("shards", e)
	type rr struct {
		q   *vm.Process
		err error
	}
	c := make(chan rr, 1)
	go func() {
		_, q, _, err := session.Respond(b, reg, arch.Ultra5, dstCfg)
		if err != nil {
			b.Close()
		}
		c <- rr{q, err}
	}()
	res, err := session.Initiate(a, e, p.Mach, "shards", p, srcCfg)
	if err != nil {
		a.Close()
		b.Close()
	}
	r := <-c
	if err != nil {
		return nil, nil, fmt.Errorf("exper: initiate: %w", err)
	}
	if r.err != nil {
		return nil, nil, fmt.Errorf("exper: respond: %w", r.err)
	}
	return res, r.q, nil
}

// runOut drives a restored process to completion.
func runOut(q *vm.Process) (int, error) {
	q.MaxSteps = maxSteps
	res, err := q.Run()
	if err != nil {
		return 0, err
	}
	return res.ExitCode, nil
}

// StoreWire runs E12b: the same stopped process migrates cold (plain v3),
// warm into an empty destination store, warm again unchanged, and warm
// after one more mutation round — comparing bytes on the wire.
func StoreWire(cfg Config) ([]StoreWireRow, error) {
	e, err := core.NewEngine(
		workload.MutatingShardsSource(storeLists, storeNodes(cfg), storeRounds),
		minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	srcDir, err := storeRoot(cfg, "wire-src")
	if err != nil {
		return nil, err
	}
	dstDir, err := storeRoot(cfg, "wire-dst")
	if err != nil {
		return nil, err
	}
	if cfg.StoreDir == "" {
		defer os.RemoveAll(srcDir)
		defer os.RemoveAll(dstDir)
	}
	srcStore, err := store.Open(srcDir, obs.NewRegistry())
	if err != nil {
		return nil, err
	}
	dstStore, err := store.Open(dstDir, obs.NewRegistry())
	if err != nil {
		return nil, err
	}

	// Stop at the first mutation round's poll.
	p, state, err := stopAtMigration(e, arch.Ultra5)
	if err != nil {
		return nil, err
	}
	snap, err := p.CaptureSections(0)
	if err != nil {
		return nil, err
	}

	var rows []StoreWireRow
	add := func(mode string, res *session.Result, q *vm.Process, coldBytes int) error {
		exit, err := runOut(q)
		if err != nil {
			return err
		}
		row := StoreWireRow{Mode: mode, SnapshotBytes: len(snap), WireBytes: res.Timing.Bytes, ExitCode: exit}
		if res.Warm != nil {
			row.Sections = res.Warm.Sections
			row.SectionsSent = res.Warm.SectionsSent
			row.WireBytes = res.Warm.WireBytes
			row.SnapshotBytes = res.Warm.SnapshotBytes
		}
		if coldBytes > 0 {
			row.PctOfCold = 100 * float64(row.WireBytes) / float64(coldBytes)
		}
		rows = append(rows, row)
		return nil
	}

	// Cold baseline: plain sectioned transfer, no stores anywhere.
	res, q, err := storeTransfer(e, p, session.Config{}, session.Config{})
	if err != nil {
		return nil, err
	}
	cold := res.Timing.Bytes
	if err := add("cold v3", res, q, cold); err != nil {
		return nil, err
	}

	// First warm transfer: the destination store is empty, every section
	// crosses — plus the manifest overhead.
	res, q, err = storeTransfer(e, p, session.Config{Store: srcStore}, session.Config{Store: dstStore})
	if err != nil {
		return nil, err
	}
	if err := add("warm, empty dst store", res, q, cold); err != nil {
		return nil, err
	}

	// Unchanged process re-migrates: only the manifest crosses.
	res, q, err = storeTransfer(e, p, session.Config{Store: srcStore}, session.Config{Store: dstStore})
	if err != nil {
		return nil, err
	}
	if err := add("warm, unchanged", res, q, cold); err != nil {
		return nil, err
	}

	// One more mutation round dirties one of the lists; the warm transfer
	// ships that component (and the changed frame) only. The stopped
	// process cannot resume directly — restore a fresh one and run it to
	// the next migration point.
	p, err = vm.RestoreProcess(e.Prog, arch.Ultra5, state)
	if err != nil {
		return nil, err
	}
	p.MaxSteps = maxSteps
	var req core.Request
	req.Raise()
	p.PollHook = req.Hook()
	mres, err := p.Run()
	if err != nil {
		return nil, err
	}
	if !mres.Migrated {
		return nil, fmt.Errorf("exper: workload completed before its next migration point")
	}
	snap, err = p.CaptureSections(0)
	if err != nil {
		return nil, err
	}
	res, q, err = storeTransfer(e, p, session.Config{Store: srcStore}, session.Config{Store: dstStore})
	if err != nil {
		return nil, err
	}
	if err := add("warm, 1 of 10 lists mutated", res, q, cold); err != nil {
		return nil, err
	}
	return rows, nil
}

// PrintStoreWire renders the E12b table.
func PrintStoreWire(w io.Writer, rows []StoreWireRow) {
	t := stats.Table{
		Title:   "E12b (warm migration): cold v3 vs store-assisted transfer, bytes on the wire",
		Headers: []string{"Mode", "Sections sent", "Snapshot", "Wire bytes", "% of cold", "Exit"},
	}
	for _, r := range rows {
		sent := "-"
		if r.Sections > 0 {
			sent = fmt.Sprintf("%d/%d", r.SectionsSent, r.Sections)
		}
		t.AddRow(r.Mode, sent, r.SnapshotBytes, r.WireBytes,
			fmt.Sprintf("%.1f%%", r.PctOfCold), r.ExitCode)
	}
	fmt.Fprintln(w, t.String())
}
