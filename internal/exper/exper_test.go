package exper

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

var quick = Config{Quick: true, Repeats: 1}

func TestHeterogeneityAllPass(t *testing.T) {
	rows, err := Heterogeneity(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s failed with exit %d", r.Program, r.ExitCode)
		}
		if r.StateBytes == 0 {
			t.Errorf("%s transferred no bytes", r.Program)
		}
	}
	var buf bytes.Buffer
	PrintHeterogeneity(&buf, rows)
	if !strings.Contains(buf.String(), "test_pointer") || !strings.Contains(buf.String(), "PASS") {
		t.Errorf("render:\n%s", buf.String())
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Collect <= 0 || r.Restore <= 0 || r.Tx <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Program, r)
		}
	}
	// Linpack transfers far more bytes than quick bitonic, so its Tx
	// must dominate (Tx is bandwidth-bound).
	if rows[0].Bytes > rows[1].Bytes && rows[0].Tx <= rows[1].Tx {
		t.Errorf("Tx not monotone in bytes: %+v", rows)
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "Linpack") {
		t.Error("render missing linpack row")
	}
}

func TestFig2aLinearity(t *testing.T) {
	res, err := Fig2aLinpack(Config{Quick: true, Repeats: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The paper's claim: collection and restoration scale linearly with
	// the size of live data. Quick sizes carry real timing noise (this
	// is a correctness test, not the measurement run), so check the
	// trend robustly: the largest problem is 16x the smallest in bytes
	// and its collection must cost several times more, with exponents
	// in a generous band around 1. The full-size sweep in cmd/migbench
	// is the precise version.
	ce := res.CollectSeries().GrowthExponent()
	re := res.RestoreSeries().GrowthExponent()
	if ce < 0.35 || ce > 2.0 {
		t.Errorf("collect growth exponent = %.2f, expected ~1", ce)
	}
	if re < 0.2 || re > 2.2 {
		t.Errorf("restore growth exponent = %.2f, expected ~1", re)
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.Collect < 3*first.Collect {
		t.Errorf("collect time barely grew: %v -> %v across a 16x size span",
			first.Collect, last.Collect)
	}
	// Block count must stay constant as the problem scales (no dynamic
	// allocation in linpack) — the paper's explanation for the constant
	// MSRLT term.
	for _, p := range res.Points[1:] {
		if p.Blocks != res.Points[0].Blocks {
			t.Errorf("linpack blocks changed with size: %d vs %d", p.Blocks, res.Points[0].Blocks)
		}
	}
	var buf bytes.Buffer
	PrintScaling(&buf, "fig2a", res)
	if !strings.Contains(buf.String(), "Data bytes") {
		t.Error("render problem")
	}
}

func TestFig2bBlocksGrow(t *testing.T) {
	res, err := Fig2bBitonic(Config{Quick: true, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	// In bitonic both n (blocks) and total bytes grow with problem size.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Blocks <= res.Points[i-1].Blocks {
			t.Errorf("blocks not increasing: %+v", res.Points)
		}
		if res.Points[i].SearchSteps <= res.Points[i-1].SearchSteps {
			t.Errorf("search steps not increasing: %+v", res.Points)
		}
	}
	// Search steps per block must grow (log n term).
	first := res.Points[0]
	last := res.Points[len(res.Points)-1]
	if float64(last.SearchSteps)/float64(last.Blocks) <=
		float64(first.SearchSteps)/float64(first.Blocks) {
		t.Error("per-block search work did not grow with n (no log n term visible)")
	}
}

func TestBreakdown(t *testing.T) {
	rows, err := Breakdown(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	lin, bit := rows[0], rows[1]
	// Linpack: few blocks, encode dominates search overwhelmingly.
	if lin.Blocks > 20 {
		t.Errorf("linpack blocks = %d", lin.Blocks)
	}
	if lin.EncodeTime <= lin.SearchTime {
		t.Errorf("linpack encode (%v) should dominate search (%v)", lin.EncodeTime, lin.SearchTime)
	}
	// Bitonic: thousands of blocks; search work is substantial.
	if bit.Blocks < 1000 {
		t.Errorf("bitonic blocks = %d", bit.Blocks)
	}
	if bit.SearchSteps < 10*lin.SearchSteps {
		t.Errorf("bitonic search steps (%d) should dwarf linpack's (%d)", bit.SearchSteps, lin.SearchSteps)
	}
	var buf bytes.Buffer
	PrintBreakdown(&buf, rows)
	if !strings.Contains(buf.String(), "Search") {
		t.Error("render problem")
	}
}

func TestPollPlacementOverhead(t *testing.T) {
	rows, err := PollPlacementOverhead(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, outer, inner := rows[0], rows[1], rows[2]
	if base.PollChecks != 0 {
		t.Errorf("baseline polled %d times", base.PollChecks)
	}
	if outer.PollChecks == 0 || inner.PollChecks <= outer.PollChecks {
		t.Errorf("poll counts: outer=%d inner=%d", outer.PollChecks, inner.PollChecks)
	}
	// The inner-kernel placement must check polls at least an order of
	// magnitude more often than the outer placement.
	if inner.PollChecks < 10*outer.PollChecks {
		t.Errorf("kernel placement polls only %dx more", inner.PollChecks/max64(outer.PollChecks, 1))
	}
	var buf bytes.Buffer
	PrintOverhead(&buf, "polls", rows)
	if !strings.Contains(buf.String(), "kernel") {
		t.Error("render problem")
	}
}

func TestAllocationOverhead(t *testing.T) {
	rows, err := AllocationOverhead(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	base, perBlock, pooled := rows[0], rows[1], rows[2]
	if base.MSRLTOps != 0 {
		t.Errorf("baseline did %d MSRLT ops", base.MSRLTOps)
	}
	if perBlock.MSRLTOps < 1000 {
		t.Errorf("per-block variant did only %d MSRLT ops", perBlock.MSRLTOps)
	}
	// The pooled (smart allocation) variant nearly eliminates MSRLT
	// maintenance, the paper's suggested mitigation.
	if pooled.MSRLTOps*100 > perBlock.MSRLTOps {
		t.Errorf("pooled ops = %d vs per-block %d", pooled.MSRLTOps, perBlock.MSRLTOps)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestObsStitched(t *testing.T) {
	r, err := ObsStitched(Config{Quick: true, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitCode != 0 || r.Version != 3 || !r.Stitched {
		t.Fatalf("result = %+v", r)
	}
	// Every phase histogram saw every migration.
	if len(r.Phases) != 7 {
		t.Fatalf("phase rows = %d, want 7", len(r.Phases))
	}
	for _, row := range r.Phases {
		if row.Count != int64(r.Migrations) {
			t.Errorf("%s/%s count = %d, want %d", row.Side, row.Phase, row.Count, r.Migrations)
		}
		if row.P50 <= 0 || row.P90 < row.P50 || row.P99 < row.P90 {
			t.Errorf("%s/%s quantiles not monotone: %+v", row.Side, row.Phase, row)
		}
	}
	var buf bytes.Buffer
	PrintObsStitched(&buf, r)
	out := buf.String()
	if !strings.Contains(out, "(remote)") || !strings.Contains(out, r.TraceID) {
		t.Errorf("render missing stitched trace:\n%s", out)
	}
}

func TestGrowthExponentSanity(t *testing.T) {
	// Guard against a broken exponent helper silently passing the
	// linearity test.
	if math.IsNaN((&ScalingResult{}).CollectSeries().GrowthExponent()) {
		t.Skip("degenerate series returns NaN-free zero; nothing to check")
	}
}
