package exper

// E14 — live pre-copy migration: downtime versus total migration time
// across write rates.
//
// The stop-and-copy paths pay the whole capture + wire + restore as
// downtime. The v4 live path overlaps all but the final delta round with
// execution, so its downtime is bounded by what the workload re-dirties
// between polls — the write rate. E14 sweeps that knob: 16 heap lists,
// k of them mutated per poll round (k/16 of the heap dirty per round),
// k in {1, 2, 8, 16}.
//
// Each row compares the same paused state both ways. The stop-and-copy
// reference is a sectioned capture + restore with the 100 Mb/s Ethernet
// model supplying the wire term; the live transfer runs the real v4
// protocol over a pipe, with per-round wire sizes feeding the same link
// model. Pipes move bytes in microseconds, so — as in E9a/E13 — each
// measured column is paired with a modeled one; the migbench gate takes
// the better of the two (for downtime, the smaller ratio: a 1-core host
// inflates the measured numerator with scheduling noise the model
// excludes). Acceptance: at low/moderate write rates (k <= 2 of 16) live
// downtime is at most 25% of the stop-and-copy total, and at every rate
// the transfer degrades gracefully — never meaningfully worse than
// stop-and-copy plus one delta round. The downtime floor is structural:
// a steady writer re-dirties its write-rate share of the heap between
// polls, so the final round ships at least that fraction — a 50% write
// rate cannot land under a 25% ratio no matter the link.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

// liveLists is the heap shard count of the E14 workload; the swept write
// rates are k/liveLists for k in LiveWriteCounts.
const liveLists = 16

// LiveWriteCounts is the write-rate sweep: lists mutated per round.
var LiveWriteCounts = []int{1, 2, 8, 16}

// LiveRow is one write rate's stop-and-copy vs live comparison.
type LiveRow struct {
	// Mutated of Lists lists are rewritten per poll round; WriteRate is
	// the fraction.
	Lists     int
	Mutated   int
	WriteRate float64
	// SnapshotBytes is the full sectioned snapshot of the paused state —
	// what stop-and-copy puts on the wire.
	SnapshotBytes int
	// Rounds is the live round count (full + deltas + final); FinalBytes
	// and WireBytes are the final round's and the cumulative wire sizes.
	Rounds     int
	FinalBytes int
	WireBytes  int
	StopReason string
	// StopTotal is the stop-and-copy downtime (== its total migration
	// time): measured capture+restore on this host, and modeled with the
	// Ethernet wire term in between.
	StopTotalMeasured time.Duration
	StopTotalModeled  time.Duration
	// Downtime is the live pause window: measured from the final pause
	// to RESTORED over the pipe, and modeled as the final round's wire
	// time plus the measured restore.
	DowntimeMeasured time.Duration
	DowntimeModeled  time.Duration
	// TotalModeled is the live transfer's cumulative wire + restore time
	// under the link model — the price paid for the bounded downtime.
	TotalModeled time.Duration
	// RatioMeasured and RatioModeled are downtime over stop-and-copy
	// total, same basis on both sides of the division.
	RatioMeasured float64
	RatioModeled  float64
	// ExitCode is the restored process's exit after finishing its
	// remaining rounds (0 = every mutation survived the migration).
	ExitCode int
}

// stopLiveAt runs the program on m to its first poll in NoAutoCapture
// mode — paused but resumable, as the live driver requires.
func stopLiveAt(e *core.Engine, m *arch.Machine) (*vm.Process, error) {
	p, err := e.NewProcess(m)
	if err != nil {
		return nil, err
	}
	p.MaxSteps = 500_000_000
	p.NoAutoCapture = true
	p.PollHook = func(_ *vm.Process, _ *minic.Site) bool { return true }
	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	if !res.Migrated {
		return nil, fmt.Errorf("exper: workload exited (code %d) before its first poll", res.ExitCode)
	}
	return p, nil
}

// Live runs E14: the write-rate sweep of live pre-copy migration against
// the stop-and-copy reference.
func Live(cfg Config) ([]LiveRow, error) {
	nnodes, rounds := 750, 10
	if cfg.Quick {
		nnodes = 200
	}
	var out []LiveRow
	for _, k := range LiveWriteCounts {
		e, err := core.NewEngine(workload.WriteRateSource(liveLists, nnodes, k, rounds), minic.PollPolicy{})
		if err != nil {
			return nil, err
		}

		// Stop-and-copy reference on the same paused state: measured
		// capture and restore bracket the modeled Ethernet wire term.
		ref, err := stopLiveAt(e, arch.Ultra5)
		if err != nil {
			return nil, err
		}
		var snap []byte
		var failure error
		capT := stats.Repeat(cfg.repeats(), func() {
			s, err := ref.CaptureSections(0)
			if err != nil {
				failure = err
				return
			}
			snap = s
		})
		if failure != nil {
			return nil, failure
		}
		resT := stats.Repeat(cfg.repeats(), func() {
			if _, err := vm.RestoreProcess(e.Prog, arch.Ultra5, snap); err != nil {
				failure = err
			}
		})
		if failure != nil {
			return nil, failure
		}
		stopMeasured := capT + resT
		stopModeled := capT + link.Ethernet100.TxTime(len(snap)) + resT

		// The live transfer: real v4 protocol over a pipe. One shot per
		// rate — the source advances between rounds, so the run is not
		// repeatable in place.
		p, err := stopLiveAt(e, arch.Ultra5)
		if err != nil {
			return nil, err
		}
		q, res, timing, err := session.TransferLive(e, "write-rate", p, arch.Ultra5,
			session.Config{PrecopyRounds: 4, DirtyThreshold: 4})
		if err != nil {
			return nil, err
		}
		st := res.Live
		finalBytes := st.Rounds[len(st.Rounds)-1].Bytes
		wireModel := time.Duration(0)
		for _, r := range st.Rounds {
			wireModel += link.Ethernet100.TxTime(r.Bytes)
		}
		row := LiveRow{
			Lists: liveLists, Mutated: k, WriteRate: float64(k) / liveLists,
			SnapshotBytes: len(snap),
			Rounds:        len(st.Rounds),
			FinalBytes:    finalBytes,
			WireBytes:     st.WireBytes,
			StopReason:    st.StopReason,

			StopTotalMeasured: stopMeasured,
			StopTotalModeled:  stopModeled,
			DowntimeMeasured:  st.Downtime,
			DowntimeModeled:   link.Ethernet100.TxTime(finalBytes) + timing.Restore,
			TotalModeled:      wireModel + timing.Restore,
		}
		row.RatioMeasured = ratio(row.DowntimeMeasured, row.StopTotalMeasured)
		row.RatioModeled = ratio(row.DowntimeModeled, row.StopTotalModeled)

		// The restored process finishes its remaining rounds; exit 0
		// proves every pre-migration mutation crossed intact.
		q.MaxSteps = 500_000_000
		r, err := q.Run()
		if err != nil {
			return nil, err
		}
		row.ExitCode = r.ExitCode
		out = append(out, row)
	}
	return out, nil
}

func ratio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// PrintLive renders the E14 sweep.
func PrintLive(w io.Writer, rows []LiveRow) {
	t := stats.Table{
		Title: "E14 (live pre-copy): downtime vs stop-and-copy total across write rates, 100Mb/s model, Ultra 5",
		Headers: []string{"Write rate", "Snapshot", "Rounds", "Stop", "Final B", "Wire B",
			"S&C meas", "S&C model", "Down meas", "Down model", "Ratio m", "Ratio M", "Exit"},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%d/%d (%.0f%%)", r.Mutated, r.Lists, r.WriteRate*100),
			r.SnapshotBytes, r.Rounds, r.StopReason, r.FinalBytes, r.WireBytes,
			r.StopTotalMeasured, r.StopTotalModeled,
			r.DowntimeMeasured, r.DowntimeModeled,
			fmt.Sprintf("%.2f", r.RatioMeasured), fmt.Sprintf("%.2f", r.RatioModeled),
			r.ExitCode)
	}
	fmt.Fprintln(w, t.String())
	fmt.Fprintln(w, "Ratio = live downtime / stop-and-copy total, measured (pipe) and modeled (Ethernet wire terms).")
	fmt.Fprintln(w, "The pipe moves bytes in microseconds, so the measured ratio understates the wire's share on")
	fmt.Fprintln(w, "both sides of the division; the modeled column is the like-for-like comparison.")
	fmt.Fprintln(w)
}
