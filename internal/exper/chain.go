package exper

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ChainHop documents one hop of a migration chain.
type ChainHop struct {
	From, To   string
	StateBytes int
}

// ChainResult is the outcome of the E7 extension experiment.
type ChainResult struct {
	Program  string
	Hops     []ChainHop
	ExitCode int
	OK       bool
}

// Chain is the generality extension (E7): a single process migrates
// through every registered platform in turn — seven machines spanning
// both endiannesses and both data models — and then verifies its own data
// structures. The paper claims the method is general; one process
// surviving LE32 -> BE32 -> BE32 -> LE32 -> LE64 -> BE64 -> LE64 with all
// pointers intact is a stronger version of the Section 4.1 experiment.
func Chain(cfg Config) (*ChainResult, error) {
	treeDepth := 9
	if cfg.Quick {
		treeDepth = 5
	}
	e, err := core.NewEngine(workload.TestPointerSource(treeDepth), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}

	// test_pointer has a single migration point, so chain hops restart
	// the process state each time: run to the poll, hop through every
	// machine, then resume on the last.
	machines := arch.Machines()
	p, err := e.NewProcess(machines[0])
	if err != nil {
		return nil, err
	}
	p.MaxSteps = maxSteps
	var req core.Request
	req.Raise()
	p.PollHook = req.Hook()
	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	if !res.Migrated {
		return nil, fmt.Errorf("exper: chain program did not reach its migration point")
	}

	result := &ChainResult{Program: fmt.Sprintf("test_pointer depth %d", treeDepth)}
	state := res.State
	cur := machines[0]
	var q *vm.Process
	for _, m := range machines[1:] {
		q, err = vm.RestoreProcess(e.Prog, m, state)
		if err != nil {
			return nil, fmt.Errorf("exper: hop %s -> %s: %w", cur.Name, m.Name, err)
		}
		result.Hops = append(result.Hops, ChainHop{From: cur.Name, To: m.Name, StateBytes: len(state)})
		cur = m
		if m == machines[len(machines)-1] {
			break
		}
		// Re-capture on the new machine for the next hop: the state is
		// re-encoded from the new layout, so each hop exercises a
		// different source representation.
		state, err = q.Recapture()
		if err != nil {
			return nil, fmt.Errorf("exper: recapture on %s: %w", m.Name, err)
		}
	}
	q.MaxSteps = maxSteps
	final, err := q.Run()
	if err != nil {
		return nil, err
	}
	result.ExitCode = final.ExitCode
	result.OK = final.ExitCode == 0
	return result, nil
}

// PrintChain renders E7.
func PrintChain(w io.Writer, r *ChainResult) {
	t := stats.Table{
		Title:   "E7 (extension): one process migrated through every platform, then self-verified",
		Headers: []string{"Hop", "From", "To", "State bytes"},
	}
	for i, h := range r.Hops {
		t.AddRow(i+1, h.From, h.To, h.StateBytes)
	}
	fmt.Fprintln(w, t.String())
	verdict := "PASS"
	if !r.OK {
		verdict = fmt.Sprintf("FAIL (exit %d)", r.ExitCode)
	}
	fmt.Fprintf(w, "%s after %d hops: %s\n\n", r.Program, len(r.Hops), verdict)
}
