package exper

import (
	"fmt"
	"io"
	"time"

	"repro/internal/arch"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xdr"
)

// This file measures the design-choice ablations listed in DESIGN.md
// (D1–D3, D5): they are not paper experiments, but quantify why the
// paper's design decisions matter.

// AblationRow is one measured configuration.
type AblationRow struct {
	Name    string
	Detail  string
	Value   float64
	Unit    string
	Elapsed time.Duration
}

// DedupAblation (D1) compares collection with and without visit marking
// on a sharing-heavy structure (a diamond DAG): marking keeps the stream
// proportional to the number of blocks; without it, every path through
// the sharing is re-collected.
func DedupAblation(cfg Config) ([]AblationRow, error) {
	// A DAG program: levels nodes, each pointing twice at the next.
	depth := 16
	if cfg.Quick {
		depth = 10
	}
	src := fmt.Sprintf(`
		struct d { double v; struct d *l; struct d *r; };
		struct d *root;
		int main() {
			struct d *prev, *cur;
			int i;
			prev = 0;
			for (i = 0; i < %d; i++) {
				cur = (struct d *) malloc(sizeof(struct d));
				cur->v = i;
				cur->l = prev;
				cur->r = prev;
				prev = cur;
			}
			root = prev;
			migrate_here();
			return 0;
		}
	`, depth)
	e, err := core.NewEngine(src, minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	p, state, err := stopAtMigration(e, arch.Ultra5)
	if err != nil {
		return nil, err
	}

	var rows []AblationRow
	elapsed, size, err := timeCollect(p, cfg.repeats())
	if err != nil {
		return nil, err
	}
	rows = append(rows, AblationRow{
		Name:    "visit marking on (paper design)",
		Detail:  fmt.Sprintf("depth-%d diamond DAG", depth),
		Value:   float64(size),
		Unit:    "stream bytes",
		Elapsed: elapsed,
	})
	_ = state

	// Without marking: collect by hand through the MSRM library.
	var noSize int
	var failure error
	elapsed2 := stats.Repeat(cfg.repeats(), func() {
		enc := xdr.NewEncoder(1 << 16)
		s := collect.NewSaver(p.Space, p.Table, p.TI, enc)
		s.NoDedup = true
		s.DedupDepthLimit = depth + 8
		addr, _, ok := p.GlobalByName("root")
		if !ok {
			failure = fmt.Errorf("no root global")
			return
		}
		if err := s.SaveVariable(addr); err != nil {
			failure = err
			return
		}
		noSize = enc.Len()
	})
	if failure != nil {
		return nil, failure
	}
	rows = append(rows, AblationRow{
		Name:    "visit marking off (ablated)",
		Detail:  fmt.Sprintf("2^%d path re-collections", depth),
		Value:   float64(noSize),
		Unit:    "stream bytes",
		Elapsed: elapsed2,
	})
	return rows, nil
}

// MSRLTIndexAblation (D3) compares the paper's ordered-table MSRLT
// (binary search, the O(n log n) collection term) against a base-address
// hash index on the bitonic workload, whose pointers all target block
// bases.
func MSRLTIndexAblation(cfg Config) ([]AblationRow, error) {
	n := 50000
	if cfg.Quick {
		n = 4000
	}
	var rows []AblationRow
	for _, idx := range []bool{false, true} {
		e, err := core.NewEngine(workload.BitonicSource(n, 61803), minic.PollPolicy{})
		if err != nil {
			return nil, err
		}
		p, _, err := stopAtMigration(e, arch.Ultra5)
		if err != nil {
			return nil, err
		}
		p.Table.UseBaseIndex = idx
		p.Table.ResetStats()
		elapsed, _, err := timeCollect(p, cfg.repeats())
		if err != nil {
			return nil, err
		}
		name := "ordered table, binary search (paper design)"
		detail := fmt.Sprintf("%d search steps", p.Table.Stats.SearchSteps)
		if idx {
			name = "base-address hash index (modern alternative)"
			detail = fmt.Sprintf("%d hash hits, %d residual steps",
				p.Table.Stats.BaseHits, p.Table.Stats.SearchSteps)
		}
		rows = append(rows, AblationRow{
			Name:    name,
			Detail:  detail,
			Value:   float64(p.Table.Stats.SearchSteps),
			Unit:    "search steps",
			Elapsed: elapsed,
		})
	}
	return rows, nil
}

// PointerEncodingCost (D2) analyzes the stream composition of the
// bitonic image: how many bytes the machine-independent (header, offset)
// pointer encoding adds over the raw data bytes. The paper's encoding
// spends 16 bytes per non-null pointer and 4 per null; a raw-address
// scheme would spend the pointer width but could not be translated.
func PointerEncodingCost(cfg Config) ([]AblationRow, error) {
	n := 50000
	if cfg.Quick {
		n = 4000
	}
	e, err := core.NewEngine(workload.BitonicSource(n, 141421), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	p, state, err := stopAtMigration(e, arch.Ultra5)
	if err != nil {
		return nil, err
	}
	st := p.CaptureStats()
	ptrBytes := 16*(st.Save.Pointers-st.Save.NullPointers) + 4*st.Save.NullPointers
	rows := []AblationRow{
		{Name: "total stream", Detail: fmt.Sprintf("%d blocks", st.Save.Blocks),
			Value: float64(len(state)), Unit: "bytes"},
		{Name: "scalar data (canonical XDR-style)", Detail: fmt.Sprintf("%d pointers among scalars", st.Save.Pointers),
			Value: float64(st.Save.DataBytes), Unit: "bytes"},
		{Name: "pointer refs (header+offset form)", Detail: "16 B non-null, 4 B null",
			Value: float64(ptrBytes), Unit: "bytes"},
		{Name: "raw-address alternative (not translatable)", Detail: "pointer width only",
			Value: float64(8 * st.Save.Pointers), Unit: "bytes"},
	}
	return rows, nil
}

// PrintAblation renders an ablation group.
func PrintAblation(w io.Writer, title string, rows []AblationRow) {
	t := stats.Table{
		Title:   title,
		Headers: []string{"Configuration", "Detail", "Value", "Unit", "Time (s)"},
	}
	for _, r := range rows {
		t.AddRow(r.Name, r.Detail, fmt.Sprintf("%.0f", r.Value), r.Unit, r.Elapsed)
	}
	fmt.Fprintln(w, t.String())
}
