package exper

// E8 — pipelined transfer: the streamed (overlap-collect-and-transmit)
// migration path of internal/stream against the paper's stop-and-copy
// baseline. Two views:
//
//   - a model timeline on the calibrated link models, replaying the
//     recorded chunk-ready instants of a real collection run against the
//     analytic wire time, so the overlap gain is measured at the paper's
//     network speeds rather than loopback speed;
//   - a real transfer over a loopback TCP connection, confirming both
//     paths restore the identical machine-independent state.

import (
	"fmt"
	"io"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/vm"
	"repro/internal/workload"
	"repro/internal/xdr"
)

// chunkEvent marks one chunk of the encoded snapshot becoming ready for
// the wire, at elapsed collection time ready.
type chunkEvent struct {
	bytes int
	ready time.Duration
}

// chunkTimeline captures p through a sinked encoder and records when each
// chunk-sized prefix of the snapshot became available. It returns the
// events, the total snapshot size, and the total collection time.
func chunkTimeline(p *vm.Process, chunkSize int) ([]chunkEvent, int, time.Duration, error) {
	enc := xdr.NewEncoder(chunkSize + 1024)
	var events []chunkEvent
	start := time.Now()
	enc.SetSink(chunkSize, func(b []byte) error {
		events = append(events, chunkEvent{bytes: len(b), ready: time.Since(start)})
		return nil
	})
	if err := p.CaptureTo(enc); err != nil {
		return nil, 0, 0, err
	}
	if err := enc.FlushSink(); err != nil {
		return nil, 0, 0, err
	}
	return events, enc.Len(), time.Since(start), nil
}

// pipelineTime replays a chunk timeline against a link model: chunk i
// starts on the wire when both the previous chunk has drained and chunk i
// is ready, so wire time hides behind collection time (and vice versa).
// The per-connection latency is paid once, to fill the pipeline.
func pipelineTime(events []chunkEvent, m link.Model) time.Duration {
	eff := m.Efficiency
	if eff <= 0 {
		eff = 1
	}
	var done time.Duration
	for _, ev := range events {
		if ev.ready > done {
			done = ev.ready
		}
		done += time.Duration(float64(ev.bytes*8) / (m.BitsPerSecond * eff) * float64(time.Second))
	}
	return m.Latency + done
}

// PipelineRow is one program x link comparison of the two transfer modes.
type PipelineRow struct {
	Program string
	Link    string
	Bytes   int
	Chunks  int
	// Collect is the pure collection time (phase 1 of stop-and-copy).
	Collect time.Duration
	// Monolithic is collect + analytic wire time of the whole snapshot.
	Monolithic time.Duration
	// Pipelined is the overlapped timeline finish time.
	Pipelined time.Duration
	Speedup   float64
}

// PipelinedModel runs the model-timeline comparison for linpack (few large
// blocks) and bitonic (many small blocks) over the paper's two Ethernets.
// The overlap gain approaches 2x when collection speed matches wire speed
// and shrinks toward 1x when either side dominates.
func PipelinedModel(cfg Config) ([]PipelineRow, error) {
	linpackN, bitonicN := 500, 50000
	if cfg.Quick {
		linpackN, bitonicN = 100, 4000
	}
	const chunkSize = 64 << 10
	cases := []struct {
		name string
		src  string
	}{
		{fmt.Sprintf("linpack %dx%d", linpackN, linpackN), workload.LinpackSource(linpackN, false)},
		{fmt.Sprintf("bitonic %d", bitonicN), workload.BitonicSource(bitonicN, 271828)},
	}
	// The paper's two Ethernets plus a modern LAN: the overlap gain is
	// largest where wire speed is close to collection speed.
	links := []link.Model{
		link.Ethernet10,
		link.Ethernet100,
		{Name: "1Gb/s Ethernet", BitsPerSecond: 1e9, Latency: 50 * time.Microsecond, Efficiency: 0.9},
	}
	var rows []PipelineRow
	for _, c := range cases {
		e, err := core.NewEngine(c.src, minic.PollPolicy{})
		if err != nil {
			return nil, err
		}
		p, _, err := stopAtMigration(e, arch.Ultra5)
		if err != nil {
			return nil, err
		}
		// Min-of-N over whole timeline runs: keep the run with the
		// fastest total collection so scheduler noise does not inflate
		// the ready instants.
		var events []chunkEvent
		var total int
		best := time.Duration(1<<63 - 1)
		for i := 0; i < cfg.repeats(); i++ {
			ev, n, elapsed, err := chunkTimeline(p, chunkSize)
			if err != nil {
				return nil, err
			}
			if elapsed < best {
				best, events, total = elapsed, ev, n
			}
		}
		for _, m := range links {
			pipe := pipelineTime(events, m)
			mono := best + m.TxTime(total)
			rows = append(rows, PipelineRow{
				Program:    c.name,
				Link:       m.Name,
				Bytes:      total,
				Chunks:     len(events),
				Collect:    best,
				Monolithic: mono,
				Pipelined:  pipe,
				Speedup:    mono.Seconds() / pipe.Seconds(),
			})
		}
	}
	return rows, nil
}

// PrintPipelinedModel renders the E8 model comparison.
func PrintPipelinedModel(w io.Writer, rows []PipelineRow) {
	t := stats.Table{
		Title:   "E8a (streamed transfer): stop-and-copy vs pipelined chunk streaming, model timeline, Ultra 5",
		Headers: []string{"Program", "Link", "Bytes", "Chunks", "Collect", "Stop-and-copy", "Pipelined", "Speedup"},
	}
	for _, r := range rows {
		t.AddRow(r.Program, r.Link, r.Bytes, r.Chunks, r.Collect, r.Monolithic, r.Pipelined,
			fmt.Sprintf("%.2fx", r.Speedup))
	}
	fmt.Fprintln(w, t.String())
}

// WireRow is one program's real-transfer comparison over loopback TCP.
type WireRow struct {
	Program string
	Bytes   int
	// MonoWall is capture + seal + send + restore, strictly sequential.
	MonoWall time.Duration
	// StreamWall is the overlapped SendStream + incremental receive +
	// restore.
	StreamWall time.Duration
	// Identical reports that both restored processes re-collect to the
	// same machine-independent state.
	Identical bool
	ExitCode  int
}

// PipelinedWire runs both transfer modes over a real TCP loopback
// connection. Loopback bandwidth dwarfs collection speed, so this is a
// correctness demonstration (and shows streaming adds no material
// overhead), not the place the speedup appears — that is E8a.
func PipelinedWire(cfg Config) ([]WireRow, error) {
	linpackN, bitonicN := 300, 20000
	if cfg.Quick {
		linpackN, bitonicN = 80, 2000
	}
	scfg := stream.Config{ChunkSize: 64 << 10, Window: 8}
	cases := []struct {
		name string
		src  string
	}{
		{fmt.Sprintf("linpack %dx%d", linpackN, linpackN), workload.LinpackSource(linpackN, false)},
		{fmt.Sprintf("bitonic %d", bitonicN), workload.BitonicSource(bitonicN, 271828)},
	}
	var rows []WireRow
	for _, c := range cases {
		e, err := core.NewEngine(c.src, minic.PollPolicy{})
		if err != nil {
			return nil, err
		}
		p, direct, err := stopAtMigration(e, arch.Ultra5)
		if err != nil {
			return nil, err
		}

		// Stop-and-copy over TCP: collect, seal, one big send, restore.
		srv, cli, cleanup, err := link.LoopbackPair()
		if err != nil {
			return nil, err
		}
		type recvRes struct {
			q   *vm.Process
			err error
		}
		recvc := make(chan recvRes, 1)
		go func() {
			q, _, rerr := e.ReceiveAndRestore(srv, arch.Ultra5)
			recvc <- recvRes{q, rerr}
		}()
		monoStart := time.Now()
		state, err := p.Recapture()
		if err != nil {
			cleanup()
			return nil, err
		}
		if _, err := e.Send(cli, p.Mach, state); err != nil {
			cleanup()
			return nil, err
		}
		mono := <-recvc
		monoWall := time.Since(monoStart)
		cleanup()
		if mono.err != nil {
			return nil, mono.err
		}

		// Streamed over TCP: chunks leave while collection is running.
		srv, cli, cleanup, err = link.LoopbackPair()
		if err != nil {
			return nil, err
		}
		go func() {
			r := stream.NewReader(srv, scfg)
			q, _, rerr := e.ReceiveAndRestoreStream(r, arch.Ultra5)
			recvc <- recvRes{q, rerr}
		}()
		streamStart := time.Now()
		sw := stream.NewWriter(cli, scfg)
		tx, err := e.SendStream(sw, p.Mach, p, scfg.ChunkSize)
		if err != nil {
			cleanup()
			return nil, err
		}
		str := <-recvc
		streamWall := time.Since(streamStart)
		cleanup()
		if str.err != nil {
			return nil, str.err
		}

		monoRe, err := mono.q.Recapture()
		if err != nil {
			return nil, err
		}
		streamRe, err := str.q.Recapture()
		if err != nil {
			return nil, err
		}
		identical := string(monoRe) == string(direct) && string(streamRe) == string(direct)

		str.q.MaxSteps = maxSteps
		res, err := str.q.Run()
		if err != nil {
			return nil, err
		}
		rows = append(rows, WireRow{
			Program:    c.name,
			Bytes:      tx.Bytes,
			MonoWall:   monoWall,
			StreamWall: streamWall,
			Identical:  identical,
			ExitCode:   res.ExitCode,
		})
	}
	return rows, nil
}

// PrintPipelinedWire renders the E8 wire comparison.
func PrintPipelinedWire(w io.Writer, rows []WireRow) {
	t := stats.Table{
		Title:   "E8b (streamed transfer): both modes over real loopback TCP — correctness check",
		Headers: []string{"Program", "Bytes", "Stop-and-copy wall", "Streamed wall", "States identical", "Exit"},
	}
	for _, r := range rows {
		t.AddRow(r.Program, r.Bytes, r.MonoWall, r.StreamWall, r.Identical, r.ExitCode)
	}
	fmt.Fprintln(w, t.String())
}
