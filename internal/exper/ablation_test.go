package exper

import (
	"bytes"
	"strings"
	"testing"
)

func TestDedupAblation(t *testing.T) {
	rows, err := DedupAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	on, off := rows[0], rows[1]
	// Without visit marking, the diamond DAG stream explodes.
	if off.Value < 20*on.Value {
		t.Errorf("ablated stream %.0f bytes vs %.0f: blowup not visible", off.Value, on.Value)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, "D1", rows)
	if !strings.Contains(buf.String(), "visit marking") {
		t.Error("render problem")
	}
}

func TestMSRLTIndexAblation(t *testing.T) {
	rows, err := MSRLTIndexAblation(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	search, hash := rows[0], rows[1]
	if search.Value == 0 {
		t.Error("binary-search configuration recorded no steps")
	}
	// The hash index should eliminate nearly all search steps for
	// bitonic (all pointers target block bases).
	if hash.Value*10 > search.Value {
		t.Errorf("hash residual steps %.0f vs search %.0f", hash.Value, search.Value)
	}
}

func TestPointerEncodingCost(t *testing.T) {
	rows, err := PointerEncodingCost(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	total, data, refs := rows[0].Value, rows[1].Value, rows[2].Value
	if data+refs > total {
		t.Errorf("composition exceeds total: %f + %f > %f", data, refs, total)
	}
	// Bitonic is pointer-heavy: refs must be a visible share.
	if refs < total/10 {
		t.Errorf("pointer refs = %.0f of %.0f total; expected a visible share", refs, total)
	}
}

func TestChainExperiment(t *testing.T) {
	r, err := Chain(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Errorf("chain self-check failed: exit %d", r.ExitCode)
	}
	if len(r.Hops) != 6 { // 7 machines, 6 hops
		t.Errorf("hops = %d", len(r.Hops))
	}
	var buf bytes.Buffer
	PrintChain(&buf, r)
	if !strings.Contains(buf.String(), "PASS") {
		t.Errorf("render:\n%s", buf.String())
	}
}
