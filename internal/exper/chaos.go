package exper

// E15 — chaos matrix: survivor accounting and rollback latency under
// injected faults.
//
// The chaos harness (internal/chaos) kills one party of a migration at a
// chosen frame boundary; the session layer's recovery contract says every
// such kill leaves exactly one live copy of the process — the committed
// destination, the rolled-back source, or (live mode) the source run that
// finished locally between rounds. TestChaosMatrix enforces the contract
// cell by cell; E15 measures it: for each protocol configuration a clean
// recorded run enumerates its own frame boundaries, a seed-reproducible
// sample of boundary × when × victim cells is executed, and the rows
// report where the survivors landed, how each initiator failure
// classified, and the rollback latency distribution.
//
// Acceptance gate: the ZeroSurvivors and TwoSurvivors columns are zero in
// every row. A zero means a fault lost the process (the paper's data
// collection left nothing restorable); a two means the commit handshake
// failed to arbitrate (both sides kept a copy). Either is a protocol bug,
// and migbench exits nonzero.

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ChaosRow is one protocol configuration's sweep over sampled fault
// cells.
type ChaosRow struct {
	Mode string
	// Frames is the clean run's wire-frame count; Boundaries the
	// distinct injection points derived from it (per-class capped);
	// Cells the full boundary × when × victim matrix; Ran the
	// seed-sampled subset actually executed.
	Frames     int
	Boundaries int
	Cells      int
	Ran        int
	// Survivor accounting: every cell must land in exactly one of the
	// first three buckets. ZeroSurvivors and TwoSurvivors are the
	// contract violations the gate rejects.
	DestCompleted    int
	SourceRolledBack int
	SourceExited     int
	ZeroSurvivors    int
	TwoSurvivors     int
	// Initiator failure classes (ClassifyFailure over every non-nil
	// initiator error): injected kills must surface as transport, never
	// as an unclassified mystery.
	FailTransport int
	FailCorrupt   int
	FailOther     int
	// Rollback latency quantiles from the session.rollback histogram —
	// the price of the "or rollback" arm of the contract.
	Rollbacks   int64
	RollbackP50 time.Duration
	RollbackP99 time.Duration
	OK          bool
}

// chaosExp is one protocol-configuration row of the E15 sweep — the
// bench-side analogue of the test matrix's chaosMode.
type chaosExp struct {
	name string
	live bool
	cfg  session.Config
}

func chaosExps() []chaosExp {
	return []chaosExp{
		{name: "v1-mono", cfg: session.Config{MinVersion: core.VersionMono, MaxVersion: core.VersionMono}},
		{name: "v3-sectioned", cfg: session.Config{ChunkSize: 1024, Window: 4}},
		{name: "v4-live", live: true,
			cfg: session.Config{ChunkSize: 4096, Window: 8, PrecopyRounds: 3, DirtyThreshold: 1, Live: true}},
	}
}

// chaosEngine compiles the mode's workload: a sharded-list builder with a
// single migration point for stop-and-copy modes, the mutating-shards
// workload (one poll per mutation round) for live. Both exit 0 iff every
// byte survived.
func (x chaosExp) chaosEngine() (*core.Engine, error) {
	if x.live {
		return core.NewEngine(workload.MutatingShardsSource(4, 20, 8), minic.PollPolicy{})
	}
	return core.NewEngine(workload.ShardedListsSource(4, 30), minic.PollPolicy{})
}

// chaosFixture pauses a fresh process at its migration point: captured
// for stop-and-copy, NoAutoCapture with an always-granting poll hook for
// live.
func (x chaosExp) chaosFixture(e *core.Engine) (*vm.Process, error) {
	p, err := e.NewProcess(arch.DEC5000)
	if err != nil {
		return nil, err
	}
	p.MaxSteps = 50_000_000
	if x.live {
		p.NoAutoCapture = true
		p.PollHook = func(_ *vm.Process, _ *minic.Site) bool { return true }
	} else {
		var req core.Request
		req.Raise()
		p.PollHook = req.Hook()
	}
	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	if !res.Migrated {
		return nil, fmt.Errorf("exper: chaos workload exited (code %d) before its migration point", res.ExitCode)
	}
	return p, nil
}

// chaosMigrate drives one migration of p over a pipe with both transport
// ends wrapped by inj, returning both sides' outcomes. On initiator
// failure the raw pipe is closed so the responder always joins.
func chaosMigrate(x chaosExp, e *core.Engine, p *vm.Process, inj *chaos.Injector, cfg session.Config) (initErr error, q *vm.Process, respErr error) {
	a, b := link.Pipe()
	defer a.Close()
	defer b.Close()
	srcT, dstT := inj.Source(a), inj.Dest(b)
	reg := session.NewRegistry()
	reg.Add("prog", e)
	type rr struct {
		q   *vm.Process
		err error
	}
	c := make(chan rr, 1)
	go func() {
		_, q, _, err := session.Respond(dstT, reg, arch.SPARC20, cfg)
		c <- rr{q, err}
	}()
	if x.live {
		_, initErr = session.InitiateLive(srcT, e, p.Mach, "prog", p, cfg)
	} else {
		_, initErr = session.Initiate(srcT, e, p.Mach, "prog", p, cfg)
	}
	if initErr != nil {
		a.Close()
		b.Close()
	}
	r := <-c
	return initErr, r.q, r.err
}

// chaosVerify runs a surviving copy to completion; exit 0 proves the
// workload's checksum crossed intact.
func chaosVerify(q *vm.Process) error {
	q.MaxSteps = 50_000_000
	q.PollHook = nil
	res, err := q.Run()
	if err != nil {
		return err
	}
	if res.Migrated || res.ExitCode != 0 {
		return fmt.Errorf("exper: surviving copy ran to %+v, want exit 0", res)
	}
	return nil
}

// Chaos runs E15: for each protocol configuration, derive the fault
// matrix from a clean recorded run, execute a seed-sampled subset of
// cells, and account for every survivor.
func Chaos(cfg Config) ([]ChaosRow, error) {
	sampleN := 24
	if cfg.Quick {
		sampleN = 10
	}
	var out []ChaosRow
	for _, x := range chaosExps() {
		e, err := x.chaosEngine()
		if err != nil {
			return nil, err
		}
		metrics := obs.NewRegistry()
		scfg := x.cfg
		scfg.Metrics = metrics

		// A clean record-only run enumerates the configuration's own
		// frame boundaries — the matrix is generated, not hand-picked.
		p, err := x.chaosFixture(e)
		if err != nil {
			return nil, err
		}
		rec := chaos.NewRecordOnly()
		initErr, q, respErr := chaosMigrate(x, e, p, rec, scfg)
		if initErr != nil || respErr != nil || q == nil {
			return nil, fmt.Errorf("exper: clean %s run failed: init=%v resp=%v", x.name, initErr, respErr)
		}
		if err := chaosVerify(q); err != nil {
			return nil, fmt.Errorf("exper: clean %s run: %w", x.name, err)
		}
		trace := rec.Trace()
		points := chaos.Points(trace, 3)
		cells := chaos.Cells(points, chaos.Victims)
		row := ChaosRow{Mode: x.name, Frames: len(trace), Boundaries: len(points), Cells: len(cells)}
		sampled := chaos.Sample(cells, 1, sampleN)
		row.Ran = len(sampled)

		for _, cell := range sampled {
			p, err := x.chaosFixture(e)
			if err != nil {
				return nil, err
			}
			inj := chaos.New(cell)
			initErr, q, respErr := chaosMigrate(x, e, p, inj, scfg)
			destAlive := respErr == nil && q != nil
			if initErr != nil && !errors.Is(initErr, session.ErrSourceExited) {
				switch session.ClassifyFailure(initErr) {
				case session.FailTransport:
					row.FailTransport++
				case session.FailCorrupt:
					row.FailCorrupt++
				default:
					row.FailOther++
				}
			}
			switch {
			case initErr == nil && !destAlive:
				row.ZeroSurvivors++
			case initErr == nil:
				if err := chaosVerify(q); err != nil {
					return nil, fmt.Errorf("exper: %s cell %s: %w", x.name, cell, err)
				}
				row.DestCompleted++
			case errors.Is(initErr, session.ErrSourceExited):
				if destAlive {
					row.TwoSurvivors++
				} else {
					row.SourceExited++
				}
			case destAlive:
				row.TwoSurvivors++
			default:
				// The source is the intended survivor: roll it back and
				// run it to the workload's correct exit.
				p.PollHook = nil
				res, err := session.Rollback(p, scfg)
				if err != nil || res.Migrated || res.ExitCode != 0 {
					row.ZeroSurvivors++
				} else {
					row.SourceRolledBack++
				}
			}
		}

		h := metrics.Histogram("session.rollback")
		row.Rollbacks = h.Count()
		if row.Rollbacks > 0 {
			row.RollbackP50 = h.Quantile(0.5)
			row.RollbackP99 = h.Quantile(0.99)
		}
		row.OK = row.ZeroSurvivors == 0 && row.TwoSurvivors == 0
		out = append(out, row)
	}
	return out, nil
}

// PrintChaos renders the E15 survivor and fail-class accounting.
func PrintChaos(w io.Writer, rows []ChaosRow) {
	t := stats.Table{
		Title: "E15 (chaos matrix): survivors and rollback latency under injected faults, DEC5000 -> SPARC20",
		Headers: []string{"Mode", "Frames", "Bnds", "Cells", "Ran",
			"Dest", "Rolled", "Exited", "Zero", "Two",
			"transport", "corrupt", "other", "RB p50", "RB p99", "OK"},
	}
	for _, r := range rows {
		t.AddRow(r.Mode, r.Frames, r.Boundaries, r.Cells, r.Ran,
			r.DestCompleted, r.SourceRolledBack, r.SourceExited,
			r.ZeroSurvivors, r.TwoSurvivors,
			r.FailTransport, r.FailCorrupt, r.FailOther,
			r.RollbackP50, r.RollbackP99, r.OK)
	}
	fmt.Fprintln(w, t.String())
	fmt.Fprintln(w, "Each Ran cell kills one party at one frame boundary. Dest + Rolled + Exited must equal Ran:")
	fmt.Fprintln(w, "Zero (process lost) and Two (commit arbitration failed) are contract violations and fail the run.")
	fmt.Fprintln(w)
}
