package exper

// E10 — observability: the cost and the content of the obs layer.
//
//   - E10a measures the sectioned capture path (the E9a workload) with
//     tracing disabled (a nil span, the default everywhere) and enabled,
//     bounding what an uninstrumented migration pays for the hooks;
//   - E10b migrates the shared/cyclic test_pointer workload over real
//     loopback TCP at v3 with per-session tracing on both ends and
//     reports the initiator's and responder's phase-span trees — the
//     same trees migd -trace logs and the same SpanData JSON the shared
//     report schema carries.

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ObsOverheadRow is one workload's traced-vs-untraced capture comparison.
type ObsOverheadRow struct {
	Workload string
	Bytes    int
	// Off is the min-of-N sectioned capture wall time with tracing
	// disabled (nil span); On is the same capture under a live tracer.
	Off         time.Duration
	On          time.Duration
	OverheadPct float64
}

// ObsOverhead runs E10a: time CaptureSections(1) on the E9a sharded-lists
// workload with p.Obs nil, then with a live span, and report the delta.
// The disabled case is the bar: tracing off must cost only nil-checks.
func ObsOverhead(cfg Config) ([]ObsOverheadRow, error) {
	nnodes := 4000
	if cfg.Quick {
		nnodes = 600
	}
	e, err := core.NewEngine(workload.ShardedListsSource(8, nnodes), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	p, _, err := stopAtMigration(e, arch.Ultra5)
	if err != nil {
		return nil, err
	}

	var snap []byte
	var failure error
	capture := func() {
		s, err := p.CaptureSections(1)
		if err != nil {
			failure = err
			return
		}
		snap = s
	}
	runtime.GC()
	p.Obs = nil
	off := stats.Repeat(cfg.repeats(), capture)
	if failure != nil {
		return nil, failure
	}
	runtime.GC()
	tr := obs.NewTracer()
	on := stats.Repeat(cfg.repeats(), func() {
		root := tr.Start("capture")
		p.Obs = root
		capture()
		root.End()
	})
	p.Obs = nil
	if failure != nil {
		return nil, failure
	}
	return []ObsOverheadRow{{
		Workload:    fmt.Sprintf("sharded lists 8x%d", nnodes),
		Bytes:       len(snap),
		Off:         off,
		On:          on,
		OverheadPct: (on.Seconds() - off.Seconds()) / off.Seconds() * 100,
	}}, nil
}

// PrintObsOverhead renders the E10a comparison.
func PrintObsOverhead(w io.Writer, rows []ObsOverheadRow) {
	t := stats.Table{
		Title:   "E10a (observability): sectioned capture with tracing off (nil span) vs on, Ultra 5",
		Headers: []string{"Workload", "Bytes", "Trace off", "Trace on", "Overhead"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, r.Bytes, r.Off, r.On, fmt.Sprintf("%+.1f%%", r.OverheadPct))
	}
	fmt.Fprintln(w, t.String())
}

// ObsTraceResult is the traced v3 migration of E10b: the wire outcome
// plus both ends' exported span trees.
type ObsTraceResult struct {
	Version  uint32        `json:"version"`
	Bytes    int           `json:"bytes"`
	Wall     time.Duration `json:"wall_ns"`
	ExitCode int           `json:"exit_code"`
	// Initiator and Responder are the per-session phase-span trees in
	// the shared obs JSON form (handshake, collect, transport, restore,
	// confirm, with per-section children).
	Initiator []*obs.SpanData `json:"initiator"`
	Responder []*obs.SpanData `json:"responder"`

	initTree, respTree string
}

// ObsTrace runs E10b: one v3 migration of test_pointer over loopback TCP
// with Config.Trace set on both sides.
func ObsTrace(cfg Config) (*ObsTraceResult, error) {
	depth := 8
	if cfg.Quick {
		depth = 5
	}
	e, err := core.NewEngine(workload.TestPointerSource(depth), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	reg := session.NewRegistry()
	reg.Add("test_pointer", e)
	p, _, err := stopAtMigration(e, arch.Ultra5)
	if err != nil {
		return nil, err
	}
	srv, cli, cleanup, err := link.LoopbackPair()
	if err != nil {
		return nil, err
	}
	itr, rtr := obs.NewTracer(), obs.NewTracer()
	iroot, rroot := itr.Start("session"), rtr.Start("session")
	type recvRes struct {
		q   *vm.Process
		err error
	}
	recvc := make(chan recvRes, 1)
	go func() {
		_, q, _, rerr := session.Respond(srv, reg, arch.Ultra5, session.Config{Trace: rroot})
		recvc <- recvRes{q, rerr}
	}()
	start := time.Now()
	res, err := session.Initiate(cli, e, p.Mach, "test_pointer", p, session.Config{
		MinVersion: core.VersionSectioned, MaxVersion: core.VersionSectioned,
		ChunkSize: 4096, Window: 4, Trace: iroot,
	})
	if err != nil {
		cleanup()
		return nil, fmt.Errorf("exper: traced initiate: %w", err)
	}
	recv := <-recvc
	wall := time.Since(start)
	cleanup()
	if recv.err != nil {
		return nil, fmt.Errorf("exper: traced respond: %w", recv.err)
	}
	iroot.End()
	rroot.End()
	recv.q.MaxSteps = maxSteps
	run, err := recv.q.Run()
	if err != nil {
		return nil, err
	}
	return &ObsTraceResult{
		Version:   res.Params.Version,
		Bytes:     res.Timing.Bytes,
		Wall:      wall,
		ExitCode:  run.ExitCode,
		Initiator: itr.Export(),
		Responder: rtr.Export(),
		initTree:  itr.Tree(),
		respTree:  rtr.Tree(),
	}, nil
}

// PrintObsTrace renders the E10b phase trees.
func PrintObsTrace(w io.Writer, r *ObsTraceResult) {
	fmt.Fprintf(w, "E10b (observability): traced v%d migration over loopback TCP, %d bytes in %v, exit %d\n",
		r.Version, r.Bytes, r.Wall.Round(time.Microsecond), r.ExitCode)
	fmt.Fprintf(w, "initiator:\n%s", indentTree(r.initTree))
	fmt.Fprintf(w, "responder:\n%s\n", indentTree(r.respTree))
}

// indentTree shifts a rendered span tree under its heading.
func indentTree(tree string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(tree, "\n"), "\n") {
		b.WriteString("  ")
		b.WriteString(line)
		b.WriteString("\n")
	}
	return b.String()
}
