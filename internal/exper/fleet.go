package exper

// E16 — fleet telemetry plane: multi-node aggregation fidelity, drain
// semantics, and SLO burn accounting.
//
// Three in-process daemons — each with its own metrics registry, session
// listener, and HTTP telemetry endpoint (the same fleet.Node mux migd
// serves) — take concurrent migrations, including one guaranteed
// negotiation failure per node. A fleet.Scraper then aggregates the
// three /metrics reports over real HTTP exactly the way migtop does, and
// the rows compare the roll-up against ground truth:
//
//   - counts: the aggregated accepted/restored/failed totals must equal
//     both the sum of the per-node rows and the number of sessions the
//     experiment actually drove;
//   - quantiles: the merged session.duration histogram must agree with a
//     single reference registry that observed the identical samples
//     (every OnSessionEnd feeds both) — within one bucket, per the
//     bucket-wise merge contract;
//   - drain: after node 0's Shutdown, its /readyz flips to 503 while
//     /healthz stays 200, and the next scrape round reports the node as
//     draining without losing its metrics;
//   - SLO: a deliberately unmeetable session budget makes every session
//     burn, so the fleet burn counter must equal the driven total;
//   - journal: every daemon journals to one shared sink; the structured
//     record counts must match the driven totals.
//
// Acceptance gate: every Match column true; migbench exits nonzero
// otherwise.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/workload"

	"log/slog"
)

// FleetNodeRow is one node's slice of the E16 roll-up, read back through
// the scraper.
type FleetNodeRow struct {
	Name     string `json:"name"`
	Driven   int    `json:"driven"`
	Accepted int64  `json:"accepted"`
	Restored int64  `json:"restored"`
	Failed   int64  `json:"failed"`
	Ready    bool   `json:"ready"`
	BurnSess int64  `json:"slo_session_burn"`
}

// FleetResult is E16's aggregate outcome with one boolean gate per
// telemetry property.
type FleetResult struct {
	Rows   []FleetNodeRow `json:"rows"`
	Driven int            `json:"driven"` // total sessions driven, failures included

	Accepted int64 `json:"accepted"`
	Restored int64 `json:"restored"`
	Failed   int64 `json:"failed"`

	// Merged (scraped, bucket-wise) vs reference (single registry fed the
	// identical samples) session.duration quantiles.
	MergedCount int64 `json:"merged_count"`
	RefCount    int64 `json:"ref_count"`
	MergedP50US int64 `json:"merged_p50_us"`
	RefP50US    int64 `json:"ref_p50_us"`
	MergedP99US int64 `json:"merged_p99_us"`
	RefP99US    int64 `json:"ref_p99_us"`

	FailClasses map[string]int64 `json:"fail_classes"`

	SLOSessionBurn  int64 `json:"slo_session_burn"`
	JournalRestored int   `json:"journal_restored"`
	JournalFailed   int   `json:"journal_failed"`
	DrainReadyAfter int   `json:"drain_ready_after"` // ready nodes on the post-drain scrape

	CountsMatch    bool `json:"counts_match"`
	QuantilesMatch bool `json:"quantiles_match"`
	DrainMatch     bool `json:"drain_match"`
	SLOMatch       bool `json:"slo_match"`
	JournalMatch   bool `json:"journal_match"`
	OK             bool `json:"ok"`
}

// fleetNode is one in-process daemon plus its telemetry endpoint.
type fleetNode struct {
	metrics *obs.Registry
	daemon  *session.Daemon
	served  chan error
	httpSrv *http.Server
	addr    string // telemetry (HTTP) address
	migAddr string // migration (link) address
}

func (n *fleetNode) close() {
	n.daemon.Shutdown()
	<-n.served // zero immediately if the drain step already joined Serve
	n.httpSrv.Close()
}

// Fleet runs E16. perNode successful migrations plus one forced
// negotiation failure are driven into each of three daemons; the scraper
// aggregates them over HTTP and every gate is checked against ground
// truth.
func Fleet(cfg Config) (*FleetResult, error) {
	perNode := 6
	if cfg.Quick {
		perNode = 3
	}
	const nodes = 3

	e, err := core.NewEngine(workload.ShardedListsSource(2, 12), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	// A different program the daemons do not register: offering it fails
	// the handshake deterministically (fail class "negotiation").
	stranger, err := core.NewEngine(`int main() { migrate_here(); return 5; }`, minic.PollPolicy{})
	if err != nil {
		return nil, err
	}

	// One reference registry observes the identical elapsed samples the
	// per-node registries observe — the merged histogram must agree with
	// it. One shared journal sink counts structured records fleet-wide.
	refReg := obs.NewRegistry()
	var journal lockedJournal
	jlog := slog.New(slog.NewJSONHandler(&journal, nil))

	var ns []*fleetNode
	defer func() {
		for _, n := range ns {
			n.close()
		}
	}()
	for i := 0; i < nodes; i++ {
		n, err := startFleetNode(e, refReg, jlog)
		if err != nil {
			return nil, err
		}
		ns = append(ns, n)
	}

	// Drive perNode successes and one failure into every node
	// concurrently — the pool gauges and the journal handler are under
	// real contention, as on a busy daemon.
	var wg sync.WaitGroup
	errc := make(chan error, nodes*(perNode+1))
	for _, n := range ns {
		for range perNode {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				if err := fleetMigrate(addr, e, true); err != nil {
					errc <- err
				}
			}(n.migAddr)
		}
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			if err := fleetMigrate(addr, stranger, false); err != nil {
				errc <- err
			}
		}(n.migAddr)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return nil, err
	}

	// The client returns once COMMIT is sent; the daemon's counters and
	// journal land moments later. The SLO total is the last per-session
	// write, so it is the barrier.
	for _, n := range ns {
		if err := waitCounter(n.metrics, "slo.session.total", int64(perNode+1)); err != nil {
			return nil, err
		}
	}

	res := &FleetResult{Driven: nodes * (perNode + 1)}

	var targets []fleet.Target
	for _, n := range ns {
		targets = append(targets, fleet.NormalizeTarget(n.addr))
	}
	sc := &fleet.Scraper{Targets: targets}
	sc.Scrape(context.Background())
	r := sc.Rollup()

	var rowSum int64
	for _, row := range r.Rows {
		res.Rows = append(res.Rows, FleetNodeRow{
			Name: row.Name, Driven: perNode + 1,
			Accepted: row.Accepted, Restored: row.Restored, Failed: row.Failed,
			Ready: row.Ready, BurnSess: row.SLOSessionBurn,
		})
		rowSum += row.Accepted
	}
	res.Accepted, res.Restored, res.Failed = r.Accepted, r.Restored, r.Failed
	res.FailClasses = r.FailClasses
	res.CountsMatch = r.Accepted == int64(res.Driven) &&
		rowSum == r.Accepted &&
		r.Restored == int64(nodes*perNode) &&
		r.Failed == nodes &&
		r.FailClasses["negotiation"] == nodes

	ref := refReg.Snapshot().Histograms["session.duration"]
	res.MergedCount, res.RefCount = r.Session.Count, ref.Count
	res.MergedP50US, res.RefP50US = r.Session.P50US, ref.P50US
	res.MergedP99US, res.RefP99US = r.Session.P99US, ref.P99US
	res.QuantilesMatch = r.Session.Count == ref.Count &&
		withinOneBucket(r.Session.P50US, ref.P50US) &&
		withinOneBucket(r.Session.P99US, ref.P99US)

	// SLO: the 1ns budget is unmeetable, so burn must equal the driven
	// total.
	res.SLOSessionBurn = r.SLOSessionBurn
	res.SLOMatch = r.SLOSessionBurn == int64(res.Driven)

	res.JournalRestored, res.JournalFailed = journal.count()
	res.JournalMatch = res.JournalRestored == nodes*perNode && res.JournalFailed == nodes

	// Drain node 0: its migration listener closes and readiness flips,
	// while liveness — and the telemetry endpoint itself — stay up. The
	// next scrape round must report the node draining with its metrics
	// intact.
	readyBefore, healthBefore, err := probeNode(ns[0].addr)
	if err != nil {
		return nil, err
	}
	ns[0].daemon.Shutdown()
	if err := <-ns[0].served; err != nil {
		return nil, fmt.Errorf("exper: fleet node 0 serve: %w", err)
	}
	close(ns[0].served) // the deferred close re-reads it as an immediate zero
	readyAfter, healthAfter, err := probeNode(ns[0].addr)
	if err != nil {
		return nil, err
	}
	sc.Scrape(context.Background())
	r2 := sc.Rollup()
	res.DrainReadyAfter = r2.Ready
	res.DrainMatch = readyBefore && healthBefore &&
		!readyAfter && healthAfter &&
		r2.Ready == nodes-1 && r2.Nodes == nodes &&
		r2.Accepted == r.Accepted

	res.OK = res.CountsMatch && res.QuantilesMatch && res.DrainMatch &&
		res.SLOMatch && res.JournalMatch
	return res, nil
}

// startFleetNode builds one daemon with its own registry, serving
// migrations on a link listener and telemetry on an HTTP listener.
func startFleetNode(e *core.Engine, refReg *obs.Registry, jlog *slog.Logger) (*fleetNode, error) {
	metrics := obs.NewRegistry()
	sreg := session.NewRegistry()
	sreg.Add("prog", e)
	tracker := &fleet.Tracker{SLO: fleet.SLO{Session: time.Nanosecond}, Metrics: metrics}

	l, err := link.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	d := &session.Daemon{
		Registry: sreg, Mach: arch.SPARC20, Metrics: metrics,
		MaxConcurrent: 4,
		Journal:       jlog,
		OnSessionEnd: func(_ session.Info, elapsed time.Duration, _ error) {
			tracker.ObserveSession(elapsed)
			refReg.Histogram("session.duration").Observe(elapsed)
		},
	}
	served := make(chan error, 1)
	go func() { served <- d.Serve(l) }()

	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		l.Close()
		return nil, err
	}
	node := fleet.NewNode(arch.SPARC20.Name, hln.Addr().String(), metrics)
	node.Ready = func() bool { return !d.Draining() }
	srv := &http.Server{Handler: node.Mux()}
	go srv.Serve(hln)

	return &fleetNode{
		metrics: metrics, daemon: d, served: served, httpSrv: srv,
		addr: hln.Addr().String(), migAddr: l.Addr().String(),
	}, nil
}

// fleetMigrate drives one client migration to addr. wantOK selects
// whether the session is expected to restore or to be rejected.
func fleetMigrate(addr string, e *core.Engine, wantOK bool) error {
	p, _, err := stopAtMigration(e, arch.DEC5000)
	if err != nil {
		return err
	}
	conn, err := link.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = session.Initiate(conn, e, p.Mach, "prog", p, session.Config{})
	if wantOK && err != nil {
		return fmt.Errorf("exper: fleet migration failed: %w", err)
	}
	if !wantOK && err == nil {
		return fmt.Errorf("exper: fleet migration of unregistered program succeeded")
	}
	return nil
}

// waitCounter polls reg's counter until it reaches want — the barrier
// between client-side completion and the daemon's asynchronous
// bookkeeping.
func waitCounter(reg *obs.Registry, name string, want int64) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter(name).Value() >= want {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("exper: counter %s = %d, want %d (daemon bookkeeping stalled)",
		name, reg.Counter(name).Value(), want)
}

// probeNode GETs a node's /readyz and /healthz, reporting each as ok/not.
func probeNode(addr string) (ready, healthy bool, err error) {
	for _, p := range []struct {
		path string
		dst  *bool
	}{{"/readyz", &ready}, {"/healthz", &healthy}} {
		resp, gerr := http.Get("http://" + addr + p.path)
		if gerr != nil {
			return false, false, gerr
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		*p.dst = resp.StatusCode == http.StatusOK
	}
	return ready, healthy, nil
}

// withinOneBucket reports whether two bucket-quantized microsecond values
// agree to one power-of-two bucket — the merge contract's tolerance.
// (With identical samples they agree exactly; the tolerance keeps the
// gate honest about what bucket-wise merging promises.)
func withinOneBucket(a, b int64) bool {
	if a == b {
		return true
	}
	if a > b {
		a, b = b, a
	}
	return a > 0 && b <= 2*a
}

// lockedJournal is a concurrency-safe journal sink that counts the
// structured lifecycle records written to it.
type lockedJournal struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (j *lockedJournal) Write(p []byte) (int, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.buf.Write(p)
}

func (j *lockedJournal) count() (restored, failed int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.buf.String()
	return strings.Count(s, `"msg":"session.restored"`),
		strings.Count(s, `"msg":"session.failed"`)
}

// PrintFleet renders the E16 aggregation-fidelity table and gate
// summary.
func PrintFleet(w io.Writer, r *FleetResult) {
	t := stats.Table{
		Title:   "E16 (fleet): 3-daemon aggregation fidelity, drain semantics, SLO burn",
		Headers: []string{"Node", "Driven", "Acc", "Rest", "Fail", "Ready", "Burn"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Driven, row.Accepted, row.Restored, row.Failed,
			row.Ready, row.BurnSess)
	}
	fmt.Fprintln(w, t.String())
	fmt.Fprintf(w, "counts:    driven %d = aggregated %d (restored %d, failed %d, negotiation %d)  match=%v\n",
		r.Driven, r.Accepted, r.Restored, r.Failed, r.FailClasses["negotiation"], r.CountsMatch)
	fmt.Fprintf(w, "quantiles: merged p50 %s p99 %s (n=%d) vs reference p50 %s p99 %s (n=%d)  match=%v\n",
		durUS(r.MergedP50US), durUS(r.MergedP99US), r.MergedCount,
		durUS(r.RefP50US), durUS(r.RefP99US), r.RefCount, r.QuantilesMatch)
	fmt.Fprintf(w, "drain:     node 0 readyz flipped 200 -> 503 with healthz 200; %d/%d ready after  match=%v\n",
		r.DrainReadyAfter, len(r.Rows), r.DrainMatch)
	fmt.Fprintf(w, "slo:       1ns budget burned %d of %d sessions  match=%v\n",
		r.SLOSessionBurn, r.Driven, r.SLOMatch)
	fmt.Fprintf(w, "journal:   %d restored + %d failed structured records  match=%v\n",
		r.JournalRestored, r.JournalFailed, r.JournalMatch)
	fmt.Fprintln(w)
}

func durUS(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}
