package exper

// E13 — hot-path round trip: the pooled-encoder, zero-copy-framing,
// parallel-restore path against the seed (monolithic v1) path, measured
// as capture→restore round-trip throughput on a large sharded heap.
//
// Three rows: the monolithic v1 path (the seed baseline), the sectioned
// path fully serial (pool width 1 on both sides), and the hotpath —
// pooled per-section encoders feeding the zero-copy section framing on
// capture, and the heap-component fills on a worker pool on restore. As
// in E9a, a host with fewer cores than the pool cannot show the gain in
// the measured column, so each sectioned row also carries a modeled
// round trip: the measured serial per-section times scheduled on an
// ideal pool, plus the residual that stays serial (partition, exec,
// frames, globals, block allocation). The acceptance gate in
// cmd/migbench takes max(measured, modeled) hotpath throughput against
// the seed row — and every row must restore to the identical state.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/minic"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

// hotpathWorkers is the pool width E13 measures and models, on both the
// capture and the restore side.
const hotpathWorkers = 4

// HotpathRow is one path's capture→restore round trip.
type HotpathRow struct {
	Path string
	// Bytes is the snapshot size this path round-trips.
	Bytes int
	// Capture, Restore, and RoundTrip are min-of-N measured wall times.
	Capture   time.Duration
	Restore   time.Duration
	RoundTrip time.Duration
	// Throughput is Bytes / RoundTrip in MB/s.
	Throughput float64
	// ModelRoundTrip schedules the serial row's measured per-section
	// times on an ideal hotpathWorkers-wide pool (capture and restore
	// separately, residuals kept serial); zero for the seed row.
	ModelRoundTrip  time.Duration
	ModelThroughput float64
	// CaptureWorkers and RestoreWorkers are the pool widths engaged.
	CaptureWorkers int
	RestoreWorkers int
	// Identical reports the restored process re-collects to the same
	// machine-independent (v1) state the source captured directly.
	Identical bool
}

// HotpathResult is the E13 outcome: the rows plus the gate inputs.
type HotpathResult struct {
	Rows []HotpathRow
	// Speedup and ModelSpeedup are the hotpath row's measured and
	// modeled round-trip throughput over the seed (mono v1) row's.
	Speedup      float64
	ModelSpeedup float64
	// RestoreIdentical reports the serial-restore and parallel-restore
	// processes re-collect to byte-identical states.
	RestoreIdentical bool
}

// Hotpath runs E13 on a sharded-lists heap large enough that the heap
// components dominate both encode and fill time.
func Hotpath(cfg Config) (*HotpathResult, error) {
	nnodes := 6000
	if cfg.Quick {
		nnodes = 800
	}
	e, err := core.NewEngine(workload.ShardedListsSource(8, nnodes), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	p, direct, err := stopAtMigration(e, arch.Ultra5)
	if err != nil {
		return nil, err
	}

	// restoreOnce rebuilds a fresh process from state with the given
	// restore pool width and returns it (for recapture and metrics).
	restoreOnce := func(state []byte, workers int) (*vm.Process, error) {
		q, err := e.NewProcess(arch.Ultra5)
		if err != nil {
			return nil, err
		}
		q.RestoreWorkers = workers
		if err := q.RestoreInto(state); err != nil {
			return nil, err
		}
		return q, nil
	}
	// verify recaptures q at v1 and compares against the direct capture.
	verify := func(q *vm.Process) (bool, []byte, error) {
		re, err := q.Recapture()
		if err != nil {
			return false, nil, err
		}
		return string(re) == string(direct), re, nil
	}

	var failure error
	res := &HotpathResult{}

	// Row 1 — the seed path: monolithic v1 capture and restore.
	runtime.GC()
	monoCap := stats.Repeat(cfg.repeats(), func() {
		if _, err := p.Recapture(); err != nil {
			failure = err
		}
	})
	var monoProc *vm.Process
	monoRes := stats.Repeat(cfg.repeats(), func() {
		q, err := vm.RestoreProcess(e.Prog, arch.Ultra5, direct)
		if err != nil {
			failure = err
			return
		}
		monoProc = q
	})
	if failure != nil {
		return nil, failure
	}
	monoOK, _, err := verify(monoProc)
	if err != nil {
		return nil, err
	}
	monoRT := monoCap + monoRes
	res.Rows = append(res.Rows, HotpathRow{
		Path: "mono v1 (seed)", Bytes: len(direct),
		Capture: monoCap, Restore: monoRes, RoundTrip: monoRT,
		Throughput: mbps(len(direct), monoRT),
		Identical:  monoOK,
	})

	// Row 2 — sectioned, fully serial on both sides.
	runtime.GC()
	var snap []byte
	serCap := stats.Repeat(cfg.repeats(), func() {
		s, err := p.CaptureSections(1)
		if err != nil {
			failure = err
			return
		}
		snap = s
	})
	if failure != nil {
		return nil, failure
	}
	capBreakdown := p.SectionCaptureMetrics()
	var serProc *vm.Process
	serRes := stats.Repeat(cfg.repeats(), func() {
		q, err := restoreOnce(snap, 1)
		if err != nil {
			failure = err
			return
		}
		serProc = q
	})
	if failure != nil {
		return nil, failure
	}
	resBreakdown := serProc.SectionRestoreMetrics()
	serOK, serRe, err := verify(serProc)
	if err != nil {
		return nil, err
	}

	// Model both phases on an ideal pool: the per-section times of the
	// serial runs schedule onto hotpathWorkers workers (capture: every
	// section; restore: the heap components — frames and globals fill
	// serially on both paths), the remainder stays serial.
	var capDurs []time.Duration
	var capSum time.Duration
	for _, s := range capBreakdown {
		capDurs = append(capDurs, s.Elapsed)
		capSum += s.Elapsed
	}
	capResidual := serCap - capSum
	if capResidual < 0 {
		capResidual = 0
	}
	modelCap := capResidual + makespan(capDurs, hotpathWorkers)

	var heapDurs []time.Duration
	var heapSum time.Duration
	for _, s := range resBreakdown {
		if s.Kind == "heap" {
			heapDurs = append(heapDurs, s.Elapsed)
			heapSum += s.Elapsed
		}
	}
	resResidual := serRes - heapSum
	if resResidual < 0 {
		resResidual = 0
	}
	modelRes := resResidual + makespan(heapDurs, hotpathWorkers)
	modelRT := modelCap + modelRes

	serRT := serCap + serRes
	res.Rows = append(res.Rows, HotpathRow{
		Path: "sectioned serial", Bytes: len(snap),
		Capture: serCap, Restore: serRes, RoundTrip: serRT,
		Throughput:     mbps(len(snap), serRT),
		CaptureWorkers: 1, RestoreWorkers: serProc.RestoreWorkersEngaged(),
		Identical: serOK,
	})

	// Row 3 — the hotpath: pooled encoders and parallel restore.
	runtime.GC()
	var hotSnap []byte
	var capWorkers int
	hotCap := stats.Repeat(cfg.repeats(), func() {
		s, err := p.CaptureSections(hotpathWorkers)
		if err != nil {
			failure = err
			return
		}
		hotSnap = s
		if w := p.SectionWorkersEngaged(); w > capWorkers {
			capWorkers = w
		}
	})
	if failure != nil {
		return nil, failure
	}
	var hotProc *vm.Process
	hotRes := stats.Repeat(cfg.repeats(), func() {
		q, err := restoreOnce(hotSnap, hotpathWorkers)
		if err != nil {
			failure = err
			return
		}
		hotProc = q
	})
	if failure != nil {
		return nil, failure
	}
	hotOK, hotRe, err := verify(hotProc)
	if err != nil {
		return nil, err
	}
	hotRT := hotCap + hotRes
	res.Rows = append(res.Rows, HotpathRow{
		Path: "sectioned hotpath", Bytes: len(hotSnap),
		Capture: hotCap, Restore: hotRes, RoundTrip: hotRT,
		Throughput:      mbps(len(hotSnap), hotRT),
		ModelRoundTrip:  modelRT,
		ModelThroughput: mbps(len(hotSnap), modelRT),
		CaptureWorkers:  capWorkers, RestoreWorkers: hotProc.RestoreWorkersEngaged(),
		Identical: hotOK && string(hotSnap) == string(snap),
	})

	seed := res.Rows[0].Throughput
	res.Speedup = res.Rows[2].Throughput / seed
	res.ModelSpeedup = res.Rows[2].ModelThroughput / seed
	res.RestoreIdentical = string(serRe) == string(hotRe)
	return res, nil
}

// mbps converts a byte count over a duration to MB/s.
func mbps(bytes int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / d.Seconds()
}

// PrintHotpath renders the E13 comparison.
func PrintHotpath(w io.Writer, r *HotpathResult) {
	t := stats.Table{
		Title: fmt.Sprintf("E13 (hot path): capture+restore round trip, seed vs pooled/zero-copy/parallel, %d-worker pools, Ultra 5", hotpathWorkers),
		Headers: []string{"Path", "Bytes", "Capture", "Restore", "Round trip",
			"MB/s", "Model RT", "Model MB/s", "Cap W", "Res W", "Identical"},
	}
	for _, row := range r.Rows {
		model, modelTp := "-", "-"
		if row.ModelRoundTrip > 0 {
			model = row.ModelRoundTrip.String()
			modelTp = fmt.Sprintf("%.1f", row.ModelThroughput)
		}
		t.AddRow(row.Path, row.Bytes, row.Capture, row.Restore, row.RoundTrip,
			fmt.Sprintf("%.1f", row.Throughput), model, modelTp,
			row.CaptureWorkers, row.RestoreWorkers, row.Identical)
	}
	fmt.Fprintln(w, t.String())
	fmt.Fprintf(w, "hotpath vs seed: measured %.2fx, modeled %.2fx; serial and parallel restores identical: %v\n",
		r.Speedup, r.ModelSpeedup, r.RestoreIdentical)
	if runtime.GOMAXPROCS(0) < hotpathWorkers {
		fmt.Fprintf(w, "note: host has GOMAXPROCS=%d < %d pool workers; the measured columns cannot show\n"+
			"the parallel gain here — the Model columns schedule the measured serial per-section\n"+
			"times on an ideal %d-worker pool (the E9a device, applied to the whole round trip).\n",
			runtime.GOMAXPROCS(0), hotpathWorkers, hotpathWorkers)
	}
	fmt.Fprintln(w)
}
