package exper

// E9 — sectioned snapshots: the v3 format of internal/snapshot, whose
// heap components are collected by a worker pool. Two views:
//
//   - E9a measures the parallel encode against the serial encode of the
//     same partition, on a workload whose heap splits into many
//     independent components (sharded lists) and on one where it barely
//     splits (2 lists) — the speedup is bounded by the largest component;
//   - E9b migrates the shared/cyclic test_pointer workload over real
//     loopback TCP at negotiated versions 1, 2, and 3 and checks all
//     three restore the identical machine-independent state.

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/link"
	"repro/internal/minic"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workload"
)

// SectionRow is one workload's serial-vs-parallel sectioned collection.
type SectionRow struct {
	Workload string
	// Components is the number of heap connected components the
	// partition produced; Sections the total section count.
	Components int
	Sections   int
	Blocks     int64
	Bytes      int
	// Serial is the min-of-N capture wall time with a one-worker pool,
	// Parallel with a four-worker pool. On a single-CPU host the two are
	// equal up to noise; the modeled columns carry the parallel gain.
	Serial   time.Duration
	Parallel time.Duration
	Speedup  float64
	// ModelParallel replays the measured per-section encode times of the
	// serial capture on an ideal four-worker schedule (plus the serial
	// partition residual), the same modeling device E8a uses for wire
	// speed — so the attainable speedup is visible even when the host
	// has fewer cores than the pool.
	ModelParallel time.Duration
	ModelSpeedup  float64
	// Workers is the number of pool workers that encoded at least one
	// section during the parallel run.
	Workers int
	// Identical reports the serial and parallel snapshots are
	// byte-identical (the format's determinism guarantee).
	Identical bool
}

// sectionWorkers is the pool size E9a measures and models.
const sectionWorkers = 4

// makespan schedules the durations on w ideal workers (greedy
// longest-first) and returns the finish time of the longest-loaded one.
func makespan(durs []time.Duration, w int) time.Duration {
	if w < 1 {
		w = 1
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	loads := make([]time.Duration, w)
	for _, d := range sorted {
		least := 0
		for i := 1; i < w; i++ {
			if loads[i] < loads[least] {
				least = i
			}
		}
		loads[least] += d
	}
	var max time.Duration
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// SectionParallel runs E9a: time CaptureSections(1) against
// CaptureSections(sectionWorkers) on a many-component and a
// few-component heap.
func SectionParallel(cfg Config) ([]SectionRow, error) {
	nnodes := 6000
	if cfg.Quick {
		nnodes = 800
	}
	cases := []struct {
		name   string
		nlists int
	}{
		{fmt.Sprintf("sharded lists 8x%d", nnodes), 8},
		{fmt.Sprintf("sharded lists 2x%d", 4*nnodes), 2},
	}
	var rows []SectionRow
	for _, c := range cases {
		nn := nnodes
		if c.nlists == 2 {
			nn = 4 * nnodes // same total data, fewer components
		}
		e, err := core.NewEngine(workload.ShardedListsSource(c.nlists, nn), minic.PollPolicy{})
		if err != nil {
			return nil, err
		}
		p, _, err := stopAtMigration(e, arch.Ultra5)
		if err != nil {
			return nil, err
		}

		var serialSnap, parallelSnap []byte
		var failure error
		runtime.GC()
		serial := stats.Repeat(cfg.repeats(), func() {
			s, err := p.CaptureSections(1)
			if err != nil {
				failure = err
				return
			}
			serialSnap = s
		})
		if failure != nil {
			return nil, failure
		}
		serialStats := p.CaptureStats()
		serialBreakdown := p.SectionCaptureMetrics()
		runtime.GC()
		var workers int
		parallel := stats.Repeat(cfg.repeats(), func() {
			s, err := p.CaptureSections(sectionWorkers)
			if err != nil {
				failure = err
				return
			}
			parallelSnap = s
			if w := p.SectionWorkersEngaged(); w > workers {
				workers = w
			}
		})
		if failure != nil {
			return nil, failure
		}
		breakdown := p.SectionCaptureMetrics()

		// Model: the serial capture minus its per-section encode sum is
		// the partition-and-assembly residual, which stays serial; the
		// sections themselves schedule onto the pool.
		durs := make([]time.Duration, 0, len(serialBreakdown))
		var encodeSum time.Duration
		for _, s := range serialBreakdown {
			durs = append(durs, s.Elapsed)
			encodeSum += s.Elapsed
		}
		residual := serial - encodeSum
		if residual < 0 {
			residual = 0
		}
		modelParallel := residual + makespan(durs, sectionWorkers)
		components := 0
		for _, s := range breakdown {
			if s.Kind == "heap" {
				components++
			}
		}
		rows = append(rows, SectionRow{
			Workload:      c.name,
			Components:    components,
			Sections:      len(breakdown),
			Blocks:        serialStats.Save.Blocks,
			Bytes:         len(serialSnap),
			Serial:        serial,
			Parallel:      parallel,
			Speedup:       serial.Seconds() / parallel.Seconds(),
			ModelParallel: modelParallel,
			ModelSpeedup:  serial.Seconds() / modelParallel.Seconds(),
			Workers:       workers,
			Identical:     string(serialSnap) == string(parallelSnap),
		})
	}
	return rows, nil
}

// PrintSectionParallel renders the E9a comparison, with the per-section
// cost profile of the last parallel capture of the final workload.
func PrintSectionParallel(w io.Writer, rows []SectionRow) {
	t := stats.Table{
		Title: fmt.Sprintf("E9a (sectioned snapshots): serial vs parallel heap collection, %d-worker pool, Ultra 5", sectionWorkers),
		Headers: []string{"Workload", "Heap comps", "Sections", "Blocks", "Bytes",
			"Serial", "Parallel", "Speedup", "Model 4w", "Model speedup", "Workers", "Identical"},
	}
	for _, r := range rows {
		t.AddRow(r.Workload, r.Components, r.Sections, r.Blocks, r.Bytes,
			r.Serial, r.Parallel, fmt.Sprintf("%.2fx", r.Speedup),
			r.ModelParallel, fmt.Sprintf("%.2fx", r.ModelSpeedup), r.Workers, r.Identical)
	}
	fmt.Fprintln(w, t.String())
	if runtime.GOMAXPROCS(0) < sectionWorkers {
		fmt.Fprintf(w, "note: host has GOMAXPROCS=%d < %d pool workers; the measured Parallel column cannot\n"+
			"show the gain here — the Model column schedules the measured per-section times on an\n"+
			"ideal %d-worker pool (the E8a device, applied to cores instead of wire speed).\n\n",
			runtime.GOMAXPROCS(0), sectionWorkers, sectionWorkers)
	}
}

// SectionWireRow is one negotiated-version migration of the shared/cyclic
// test_pointer workload over loopback TCP.
type SectionWireRow struct {
	Version uint32
	Bytes   int
	Wall    time.Duration
	// Identical reports the restored process re-collects to the same
	// machine-independent state the source captured directly.
	Identical bool
	ExitCode  int
}

// SectionWire runs E9b: the same stopped test_pointer process (shared
// child, cycle, pointer arrays) migrates at forced versions 1, 2, and 3
// through the full session handshake, and every restored process must
// re-collect to the identical v1 state and run to exit 0.
func SectionWire(cfg Config) ([]SectionWireRow, error) {
	depth := 10
	if cfg.Quick {
		depth = 6
	}
	e, err := core.NewEngine(workload.TestPointerSource(depth), minic.PollPolicy{})
	if err != nil {
		return nil, err
	}
	reg := session.NewRegistry()
	reg.Add("test_pointer", e)

	var rows []SectionWireRow
	for _, v := range []uint32{core.VersionMono, core.VersionStream, core.VersionSectioned} {
		p, direct, err := stopAtMigration(e, arch.Ultra5)
		if err != nil {
			return nil, err
		}
		srv, cli, cleanup, err := link.LoopbackPair()
		if err != nil {
			return nil, err
		}
		type recvRes struct {
			q   *vm.Process
			err error
		}
		recvc := make(chan recvRes, 1)
		go func() {
			_, q, _, rerr := session.Respond(srv, reg, arch.Ultra5, session.Config{})
			recvc <- recvRes{q, rerr}
		}()
		start := time.Now()
		res, err := session.Initiate(cli, e, p.Mach, "test_pointer", p,
			session.Config{MinVersion: v, MaxVersion: v, ChunkSize: 4096, Window: 4})
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("exper: v%d initiate: %w", v, err)
		}
		recv := <-recvc
		wall := time.Since(start)
		cleanup()
		if recv.err != nil {
			return nil, fmt.Errorf("exper: v%d respond: %w", v, recv.err)
		}
		if res.Params.Version != v {
			return nil, fmt.Errorf("exper: negotiated v%d, forced v%d", res.Params.Version, v)
		}
		re, err := recv.q.Recapture()
		if err != nil {
			return nil, err
		}
		recv.q.MaxSteps = maxSteps
		run, err := recv.q.Run()
		if err != nil {
			return nil, err
		}
		rows = append(rows, SectionWireRow{
			Version:   v,
			Bytes:     res.Timing.Bytes,
			Wall:      wall,
			Identical: string(re) == string(direct),
			ExitCode:  run.ExitCode,
		})
	}
	return rows, nil
}

// PrintSectionWire renders the E9b round-trip table.
func PrintSectionWire(w io.Writer, rows []SectionWireRow) {
	t := stats.Table{
		Title:   "E9b (sectioned snapshots): test_pointer over loopback TCP at negotiated v1/v2/v3",
		Headers: []string{"Version", "Bytes", "Wall", "State identical", "Exit"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("v%d", r.Version), r.Bytes, r.Wall, r.Identical, r.ExitCode)
	}
	fmt.Fprintln(w, t.String())
}
